#!/usr/bin/env sh
# Full local gate: formatting, lints as errors, and the whole test
# suite. CI and pre-commit both run exactly this.
#
#   scripts/check.sh           # the full gate
#   scripts/check.sh --tsan    # ThreadSanitizer pass over the threaded
#                              # and fan-out event-stream tests (needs
#                              # nightly + rust-src; skips gracefully)
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--tsan" ]; then
    # ThreadSanitizer needs an instrumented std (-Zbuild-std), hence
    # nightly with the rust-src component. Skip — not fail — when the
    # toolchain isn't available, so the mode is safe to wire anywhere.
    if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
        echo "tsan: nightly toolchain not installed; skipping"
        exit 0
    fi
    if ! rustup component list --toolchain nightly --installed 2>/dev/null \
            | grep -q '^rust-src'; then
        echo "tsan: rust-src not installed for nightly; skipping"
        exit 0
    fi
    host=$(rustc +nightly -vV | sed -n 's/^host: //p')
    echo "== tsan: event_stream threaded/fanout tests on $host"
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$host" \
        --test event_stream -- threaded fanout
    # The guest crate carries the interior-mutable L0 page cache
    # (Cell-based, Send-not-Sync by design); run its unit tests under
    # the sanitizer too so a future Sync impl can't slip a race in.
    echo "== tsan: darco-guest unit tests on $host"
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$host" \
        -p darco-guest
    echo "tsan checks passed"
    exit 0
fi

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets --all-features -- -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "== RUSTDOCFLAGS=-Dwarnings cargo doc --no-deps --workspace"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "== cargo test -q --release --test event_stream --test properties"
cargo test -q --release --test event_stream --test properties

echo "all checks passed"
