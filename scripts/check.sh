#!/usr/bin/env sh
# Full local gate: formatting, lints as errors, and the whole test
# suite. CI and pre-commit both run exactly this.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "== cargo test -q --release --test event_stream --test properties"
cargo test -q --release --test event_stream --test properties

echo "all checks passed"
