#!/usr/bin/env sh
# End-to-end performance gate: runs the full-system criterion bench and
# then writes BENCH_report.json (guest MIPS, host-events/sec, per-mode
# dynamic shares, the timing-layer replay block: sink events/sec fast
# vs oracle, per-backend wall seconds, the `analysis` block: guest
# MIPS with the deadflags/rangesimp passes on vs off, dead flag defs
# killed, per-pass wall time, and the `code_cache` block: flush vs
# fifo under a constrained capacity — installs, flushes, evictions,
# unchains, retranslations, occupancy and dead-space ratio) from
# repeated timed runs of the same configuration.
#
#   scripts/bench.sh [--scale S] [--reps N]
set -eu

cd "$(dirname "$0")/.."

echo "== cargo bench --bench bench_system (full System::run_to_completion)"
cargo bench -p darco-bench --bench bench_system

echo "== cargo bench --bench retire_throughput (retirement-path ablation)"
cargo bench -p darco-bench --bench retire_throughput

echo "== cargo bench --bench timing_throughput (timing-layer replay)"
cargo bench -p darco-bench --bench timing_throughput

echo "== bench_report -> BENCH_report.json"
cargo run --release -p darco-bench --bin bench_report -- BENCH_report.json "$@"
