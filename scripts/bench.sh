#!/usr/bin/env sh
# End-to-end performance gate: runs the full-system criterion bench and
# then writes BENCH_report.json (guest MIPS, host-events/sec, per-mode
# dynamic shares, the `host` block: cores/available parallelism, the
# timing-layer replay block: sink events/sec fast vs oracle,
# per-backend wall seconds, the `analysis` block: guest MIPS with the
# deadflags/rangesimp passes on vs off, dead flag defs killed,
# per-pass wall time, the `code_cache` block: flush vs fifo under a
# constrained capacity — installs, flushes, evictions, unchains,
# retranslations, occupancy and dead-space ratio, the `translation`
# block: synchronous vs background-pool wall seconds, job/stall/discard
# counters and worker utilization, the `block_memo` block:
# steady-state block timing memoization on vs off with engine and
# timing-side memo counters, and the `guest_exec` block: raw
# functional-emulation MIPS through the guest-layer fast path vs the
# decode-per-step byte oracle with micro-op/lazy-flag engagement
# counters — each speed switch's two serialized reports asserted
# byte-identical) from repeated timed runs of the same configuration.
#
# Every report is also appended as a timestamped copy under
# bench_history/, so regressions can be traced across commits.
#
#   scripts/bench.sh [--scale S] [--reps N]
#   scripts/bench.sh --smoke       # CI: bench_report only, tiny scale,
#                                  # then assert the report is sane
set -eu

cd "$(dirname "$0")/.."

# Appends the freshly written report to the local bench history as a
# timestamped copy (bench_history/ is append-only evidence; the current
# report stays at BENCH_report.json).
archive_report() {
    mkdir -p bench_history
    cp BENCH_report.json "bench_history/BENCH_report.$(date -u +%Y%m%dT%H%M%SZ).json"
}

if [ "${1:-}" = "--smoke" ]; then
    shift
    echo "== bench smoke: bench_report at quicktest scale"
    cargo run --release -p darco-bench --bin bench_report -- \
        BENCH_report.json --scale 0.02 --reps 1 "$@"
    python3 - <<'EOF'
import json, sys

with open("BENCH_report.json") as f:
    r = json.load(f)
assert r["guest_mips"] > 0, f"guest_mips {r['guest_mips']} must be positive"
t = r["translation"]
assert t["workers"] >= 1, "pool must have spawned workers"
assert t["sync_wall_seconds"] > 0 and t["pool_wall_seconds"] > 0
assert t["comparison"] in ("overlap", "channel-overhead-only")
m = r["block_memo"]
assert m["macro_events"] > 0, "steady-state blocks must emit macro-events"
assert m["memo_hits"] > 0, f"memo_hits {m['memo_hits']} must be positive"
assert m["insts_replayed"] > 0, "replayed footprints must cover instructions"
g = r["guest_exec"]
assert g["guest_insts"] > 0, "guest_exec must retire instructions"
assert g["speedup"] > 0, "guest_exec speedup must be recorded"
assert g["uop_hits"] > 0, "fast path must execute from cached micro-op buffers"
assert g["blocks_built"] > 0, "fast path must pre-decode blocks"
assert g["flag_forces"] < g["flag_defs"], \
    f"lazy flags must elide materializations ({g['flag_forces']}/{g['flag_defs']})"
assert r["timing"]["comparison"] in ("overlap", "channel-overhead-only")
print(
    f"bench smoke OK: {r['guest_mips']:.2f} guest MIPS, "
    f"translation {t['workers']} worker(s) [{t['comparison']}], "
    f"sync {t['sync_wall_seconds']:.3f}s vs pool {t['pool_wall_seconds']:.3f}s, "
    f"block memo {m['memo_hits']} hits / {m['memo_records']} records "
    f"({m['insts_replayed']} insts replayed), "
    f"guest exec {g['fast_mips']:.2f} vs {g['oracle_mips']:.2f} MIPS "
    f"({g['speedup']:.2f}x, {g['uop_hits']} uop hits)"
)
EOF
    archive_report
    exit 0
fi

echo "== cargo bench --bench bench_system (full System::run_to_completion)"
cargo bench -p darco-bench --bench bench_system

echo "== cargo bench --bench retire_throughput (retirement-path ablation)"
cargo bench -p darco-bench --bench retire_throughput

echo "== cargo bench --bench timing_throughput (timing-layer replay)"
cargo bench -p darco-bench --bench timing_throughput

echo "== cargo bench --bench guest_exec (functional-emulation fast path)"
cargo bench -p darco-bench --bench guest_exec

echo "== bench_report -> BENCH_report.json"
cargo run --release -p darco-bench --bin bench_report -- BENCH_report.json "$@"
archive_report
