//! Integration tests spanning the whole stack: workload generation →
//! software layer → timing → experiment reduction, with co-simulation
//! (the authoritative emulator) checking architectural state throughout.

use darco::core::experiments::{self, RunConfig};
use darco::core::{scaled_tol_config, System, SystemConfig};
use darco::guest::{exec, CpuState};
use darco::host::{Component, Owner};
use darco::tol::TolConfig;
use darco::workloads::{generate, suites};

fn quick_cfg() -> SystemConfig {
    SystemConfig { cosim: true, ..SystemConfig::default() }
}

/// The central correctness claim: the software layer emulates the guest
/// *exactly* — same final state, same instruction count — across all
/// three execution modes and their transitions.
#[test]
fn tol_execution_is_architecturally_exact_across_modes() {
    let profile = suites::quicktest_profile();
    let w = generate(&profile, 0.4);

    // Reference: pure functional execution.
    let mut ref_cpu = w.initial.clone();
    let mut ref_mem = w.mem.clone();
    let mut ref_n = 0u64;
    while !ref_cpu.halted {
        exec::step(&mut ref_cpu, &mut ref_mem).unwrap();
        ref_n += 1;
    }

    // Full system with co-simulation enabled (every dispatch boundary
    // checked internally).
    let mut sys = System::new(generate(&profile, 0.4), quick_cfg());
    let report = sys.run_to_completion();
    assert_eq!(report.guest_insts, ref_n, "instruction counts must match");
    assert!(report.cosim_checks > 100, "checker ran at dispatch granularity");

    // All three modes actually ran.
    assert!(report.tol.dyn_dist.iter().all(|&d| d > 0), "IM, BBM and SBM all executed");
}

/// Co-simulation must also hold under unusual configurations: ablated
/// optimizations, tiny code cache (frequent flushes), tiny IBTC.
#[test]
fn cosimulation_holds_under_stress_configs() {
    let profile = suites::quicktest_profile();
    for (label, tol) in [
        ("no optimization", TolConfig::no_optimization()),
        ("tiny code cache", TolConfig { code_cache_capacity: 4_000, ..scaled_tol_config() }),
        ("tiny ibtc", TolConfig { ibtc_entries: 2, ..scaled_tol_config() }),
        ("no chaining", TolConfig { chaining: false, ..scaled_tol_config() }),
        (
            "eager promotion",
            TolConfig { im_bb_threshold: 1, bb_sb_threshold: 2, ..scaled_tol_config() },
        ),
    ] {
        let cfg = SystemConfig { tol, cosim: true, ..SystemConfig::default() };
        let mut sys = System::new(generate(&profile, 0.15), cfg);
        let r = sys.run_to_completion(); // panics on divergence
        assert!(r.guest_insts > 0, "{label}: made progress");
    }
}

/// The tiny-code-cache configuration must actually flush, and flushing
/// must not perturb architectural results.
#[test]
fn code_cache_flushes_preserve_results() {
    let profile = suites::quicktest_profile();
    let tol = TolConfig { code_cache_capacity: 1_200, ..scaled_tol_config() };
    let cfg = SystemConfig { tol, cosim: true, ..SystemConfig::default() };
    let mut sys = System::new(generate(&profile, 0.2), cfg);
    let r = sys.run_to_completion();
    assert!(r.tol.flushes > 0, "capacity 1200 must force flushes");

    let mut base = System::new(generate(&profile, 0.2), quick_cfg());
    let rb = base.run_to_completion();
    assert_eq!(r.guest_insts, rb.guest_insts, "flushing is performance-only");
}

/// Every figure builder runs end to end on a real (small) run and
/// produces internally consistent data.
#[test]
fn experiment_pipeline_end_to_end() {
    let mut profiles = vec![suites::quicktest_profile()];
    profiles[0].name = "it-a".into();
    let mut b = suites::quicktest_profile();
    b.name = "it-b".into();
    b.suite = darco::workloads::Suite::Media;
    b.seed = 1234;
    b.indirect_freq = 0.004;
    profiles.push(b);

    let runs = experiments::run_set(&profiles, &RunConfig::quick());

    let f5 = experiments::fig5(&runs);
    let f6 = experiments::fig6(&runs);
    let f7 = experiments::fig7(&runs);
    let f8 = experiments::fig8(&runs);
    let f9 = experiments::fig9(&runs);
    let f10 = experiments::fig10(&runs);
    let f11a = experiments::fig11_tol(&runs);
    let f11b = experiments::fig11_app(&runs);
    assert_eq!(
        [f5.len(), f6.len(), f7.len(), f8.len(), f9.len(), f10.len(), f11a.len(), f11b.len()],
        [2; 8]
    );

    // Cross-figure consistency: Fig 7 decomposes Fig 6's overhead.
    for (r6, r7) in f6.iter().zip(f7.iter()) {
        let s: f64 = r7.shares.iter().sum();
        assert!((s - r6.overhead).abs() < 1e-6);
    }
    // Fig 9 stacks to 100%.
    for r in &f9 {
        assert!((r.categories.iter().sum::<f64>() - 1.0).abs() < 0.02);
    }
    // The indirect-heavy profile does more lookups and transitions.
    let lookup = |i: usize| f7[i].shares[5];
    assert!(
        lookup(1) > lookup(0),
        "indirect-heavy profile must spend more in Code$ look-up: {} vs {}",
        lookup(1),
        lookup(0)
    );
}

/// Interaction on shared resources hurts; filtered pipelines partition
/// the stream exactly.
#[test]
fn interaction_analysis_is_consistent() {
    let profile = suites::quicktest_profile();
    let runs = experiments::run_set(&[profile], &RunConfig::quick());
    let r = &runs[0].report;

    let app = r.app_only.as_ref().unwrap();
    let tol = r.tol_only.as_ref().unwrap();
    assert_eq!(
        app.total_insts() + tol.total_insts(),
        r.timing.total_insts(),
        "filtered pipelines partition the stream"
    );
    assert_eq!(app.owner_insts(Owner::Tol), 0);
    assert_eq!(tol.owner_insts(Owner::App), 0);
    assert!(app.total_cycles <= r.timing.total_cycles);
}

/// Determinism: two identical systems produce identical reports.
#[test]
fn full_system_is_deterministic() {
    let profile = suites::quicktest_profile();
    let run_once = || {
        let mut sys = System::new(
            generate(&profile, 0.15),
            SystemConfig { cosim: false, ..SystemConfig::default() },
        );
        sys.run_to_completion()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.guest_insts, b.guest_insts);
    assert_eq!(a.timing.total_cycles, b.timing.total_cycles);
    assert_eq!(a.timing.total_insts(), b.timing.total_insts());
    assert_eq!(a.tol.static_dist, b.tol.static_dist);
    for c in Component::ALL {
        assert_eq!(a.timing.component_insts(c), b.timing.component_insts(c));
    }
}

/// The final guest state of the emulated run matches a fresh functional
/// run even when the timing configuration changes (timing never affects
/// functional behavior).
#[test]
fn timing_configuration_never_affects_function() {
    let profile = suites::quicktest_profile();
    let small_caches = darco::timing::TimingConfig {
        l1d: darco::timing::config::CacheParams { size: 1024, block: 64, ways: 2, hit_latency: 1 },
        ..darco::timing::TimingConfig::default()
    };
    let mut a = System::new(
        generate(&profile, 0.15),
        SystemConfig { cosim: true, ..SystemConfig::default() },
    );
    let mut b = System::new(
        generate(&profile, 0.15),
        SystemConfig { cosim: true, timing: small_caches, ..SystemConfig::default() },
    );
    let ra = a.run_to_completion();
    let rb = b.run_to_completion();
    assert_eq!(ra.guest_insts, rb.guest_insts);
    assert!(rb.timing.total_cycles > ra.timing.total_cycles, "tiny caches must cost cycles");
}

/// Paper sanity: a high-repetition profile amortizes TOL overhead far
/// better than a low-repetition one (the Fig. 6 gradient).
#[test]
fn overhead_tracks_repetition() {
    let mut hot = suites::quicktest_profile();
    hot.name = "hot".into();
    hot.static_insts = 600;
    hot.dyn_base = 400_000;

    let mut cold = suites::quicktest_profile();
    cold.name = "cold".into();
    cold.static_insts = 6_000;
    cold.dyn_base = 400_000;
    cold.seed = 5;

    let cfg = RunConfig { scale: 1.0, ..RunConfig::default() };
    let runs = experiments::run_set(&[hot, cold], &cfg);
    let f6 = experiments::fig6(&runs);
    assert!(
        f6[1].overhead > 1.5 * f6[0].overhead,
        "low repetition must cost more: {} vs {}",
        f6[1].overhead,
        f6[0].overhead
    );
}

/// `CpuState` exposed by the system equals what the checker tracked.
#[test]
fn reported_state_is_final() {
    let profile = suites::quicktest_profile();
    let w = generate(&profile, 0.1);
    let mut ref_cpu: CpuState = w.initial.clone();
    let mut ref_mem = w.mem.clone();
    while !ref_cpu.halted {
        exec::step(&mut ref_cpu, &mut ref_mem).unwrap();
    }
    // Run the system on an identical workload; co-sim internally asserts
    // equality at every step, so completing at all proves the final
    // state matched.
    let mut sys = System::new(generate(&profile, 0.1), quick_cfg());
    let r = sys.run_to_completion();
    assert!(r.guest_insts > 0);
}
