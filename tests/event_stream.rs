//! Determinism of the host-event stream across timing-sink schedules.
//!
//! The contract of the event bus (DESIGN.md §9) is that consumers see
//! the exact retire-order stream in the exact same batches regardless of
//! where they run. These tests pin the strongest observable consequence:
//! a run with the timing pipelines overlapped on one worker thread
//! (`Threaded`) or fanned out one worker per pipeline (`Fanout`)
//! produces a byte-identical [`Report`] to the inline run — at any
//! event-batch size.
//!
//! [`Report`]: darco::core::Report

use darco::core::{Report, System, SystemConfig, TimingBackendKind};
use darco::workloads::{generate, suites};

const BACKENDS: [TimingBackendKind; 3] =
    [TimingBackendKind::Inline, TimingBackendKind::Threaded, TimingBackendKind::Fanout];

fn run_with(
    profile_idx: usize,
    scale: f64,
    backend: TimingBackendKind,
    cosim: bool,
    event_batch: usize,
) -> Report {
    let profiles = suites::all_profiles();
    let mut cfg = SystemConfig {
        cosim,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        timing_backend: backend,
        ..SystemConfig::default()
    };
    if event_batch > 0 {
        cfg.tol.event_batch = event_batch;
    }
    let mut sys = System::new(generate(&profiles[profile_idx], scale), cfg);
    sys.run_to_completion()
}

fn run(profile_idx: usize, scale: f64, backend: TimingBackendKind, cosim: bool) -> Report {
    run_with(profile_idx, scale, backend, cosim, 0)
}

/// Like [`run`], but with an explicit background-translation pool size
/// (DESIGN.md §15). `0` is the synchronous oracle.
fn run_pool(profile_idx: usize, scale: f64, backend: TimingBackendKind, workers: usize) -> Report {
    let profiles = suites::all_profiles();
    let mut cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        timing_backend: backend,
        ..SystemConfig::default()
    };
    cfg.tol.translate_workers = workers;
    let mut sys = System::new(generate(&profiles[profile_idx], scale), cfg);
    sys.run_to_completion()
}

/// Like [`run`], but with the retirement-template and decode-cache fast
/// paths switched together (both on = shipping config, both off = the
/// per-retire re-derivation oracle kept for exactly this comparison).
fn run_fast_paths(profile_idx: usize, scale: f64, cosim: bool, fast: bool) -> Report {
    let profiles = suites::all_profiles();
    let mut cfg = SystemConfig {
        cosim,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        ..SystemConfig::default()
    };
    cfg.tol.retire_templates = fast;
    cfg.tol.interp_decode_cache = fast;
    let mut sys = System::new(generate(&profiles[profile_idx], scale), cfg);
    sys.run_to_completion()
}

/// Like [`run`], but with the memory-model fast paths (flat tag layout
/// and last-line/last-page shortcuts) switched together — both off is
/// the full-probe legacy-layout oracle.
fn run_mem_paths(profile_idx: usize, scale: f64, cosim: bool, fast: bool) -> Report {
    let profiles = suites::all_profiles();
    let mut cfg = SystemConfig {
        cosim,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        ..SystemConfig::default()
    };
    cfg.timing.flat_mem = fast;
    cfg.timing.mem_shortcuts = fast;
    let mut sys = System::new(generate(&profiles[profile_idx], scale), cfg);
    sys.run_to_completion()
}

/// Like [`run_with`], but with the block-timing memo (DESIGN.md §16)
/// switched on both sides of the event bus together — the engine's
/// steady-state macro-retire emission and the timing sinks' replay
/// tables — versus the always-available per-instruction oracle.
fn run_memo(
    profile_idx: usize,
    scale: f64,
    backend: TimingBackendKind,
    cosim: bool,
    event_batch: usize,
    memo: bool,
) -> Report {
    let profiles = suites::all_profiles();
    let mut cfg = SystemConfig {
        cosim,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        timing_backend: backend,
        ..SystemConfig::default()
    };
    if event_batch > 0 {
        cfg.tol.event_batch = event_batch;
    }
    cfg.tol.block_memo = memo;
    cfg.timing.block_memo = memo;
    let mut sys = System::new(generate(&profiles[profile_idx], scale), cfg);
    sys.run_to_completion()
}

/// Like [`run_with`], but with the guest-layer fast path (DESIGN.md
/// §17) switched: pre-decoded micro-op buffers with lazy flag
/// materialization plus the width-native memory access path, versus the
/// decode-per-step byte-oracle interpreter. The switch spans the engine
/// and the cosim checker's private authoritative emulator.
fn run_guest_fast(
    profile_idx: usize,
    scale: f64,
    backend: TimingBackendKind,
    cosim: bool,
    event_batch: usize,
    fast: bool,
) -> Report {
    let profiles = suites::all_profiles();
    let mut cfg = SystemConfig {
        cosim,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        timing_backend: backend,
        ..SystemConfig::default()
    };
    if event_batch > 0 {
        cfg.tol.event_batch = event_batch;
    }
    cfg.tol.guest_fast_path = fast;
    let mut sys = System::new(generate(&profiles[profile_idx], scale), cfg);
    sys.run_to_completion()
}

/// Serializes a value (for a whole [`Report`]: timing stats, filtered
/// pipelines, timeline windows, TOL summary, trace statistics) so any
/// divergence anywhere fails the comparison.
fn fingerprint<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serialize")
}

#[test]
fn threaded_timing_is_bit_identical_across_profiles() {
    for idx in 0..3 {
        let inline = run(idx, 0.05, TimingBackendKind::Inline, false);
        let threaded = run(idx, 0.05, TimingBackendKind::Threaded, false);
        assert!(inline.timing.total_cycles > 0);
        assert!(inline.trace.batches > 0, "event stream must be batched");
        assert_eq!(
            fingerprint(&inline),
            fingerprint(&threaded),
            "profile {} diverged between inline and threaded timing",
            inline.name
        );
    }
}

#[test]
fn fanout_timing_is_bit_identical_across_profiles() {
    for idx in 0..3 {
        let inline = run(idx, 0.05, TimingBackendKind::Inline, false);
        let fanout = run(idx, 0.05, TimingBackendKind::Fanout, false);
        assert!(inline.app_only.is_some() && inline.tol_only.is_some());
        assert_eq!(
            fingerprint(&inline),
            fingerprint(&fanout),
            "profile {} diverged between inline and fan-out timing",
            inline.name
        );
    }
}

#[test]
fn all_backends_agree_at_extreme_batch_sizes() {
    // The acceptance matrix: every backend, at per-instruction delivery
    // (batch 1), a mid batch and the default-sized 4096 batch, produces
    // the same report byte for byte. Only trace batch *accounting*
    // (batches/max_batch) legitimately differs across batch sizes, so
    // compare fingerprints within one batch size across backends.
    for &batch in &[1usize, 64, 4096] {
        let reference = run_with(0, 0.04, TimingBackendKind::Inline, false, batch);
        for &backend in &BACKENDS[1..] {
            let other = run_with(0, 0.04, backend, false, batch);
            assert_eq!(
                fingerprint(&reference),
                fingerprint(&other),
                "backend {backend:?} diverged at event_batch {batch}"
            );
        }
    }
}

#[test]
fn threaded_timing_is_bit_identical_with_cosim() {
    let inline = run(0, 0.03, TimingBackendKind::Inline, true);
    let threaded = run(0, 0.03, TimingBackendKind::Threaded, true);
    assert!(inline.cosim_checks > 0, "checker must run as a sink");
    assert_eq!(fingerprint(&inline), fingerprint(&threaded));
}

#[test]
fn fanout_timing_is_bit_identical_with_cosim() {
    let inline = run(0, 0.03, TimingBackendKind::Inline, true);
    let fanout = run(0, 0.03, TimingBackendKind::Fanout, true);
    assert!(fanout.cosim_checks > 0, "checker stays inline under fan-out");
    assert_eq!(fingerprint(&inline), fingerprint(&fanout));
}

#[test]
fn threaded_and_fanout_timing_with_translation_pool() {
    // The two thread-spawning timing backends with the background
    // translation pool on top (four compile workers): the maximum
    // cross-thread configuration. Byte-identical to the fully
    // synchronous inline run. Named "threaded"/"fanout" so the
    // ThreadSanitizer gate (scripts/check.sh --tsan) picks it up.
    let reference = run_pool(0, 0.04, TimingBackendKind::Inline, 0);
    for backend in [TimingBackendKind::Threaded, TimingBackendKind::Fanout] {
        let pooled = run_pool(0, 0.04, backend, 4);
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&pooled),
            "backend {backend:?} with translate_workers 4 diverged from the synchronous run"
        );
    }
}

#[test]
fn retirement_templates_are_bit_identical_across_profiles() {
    // The precomputed-template exec path and the interpreter decode
    // cache are pure simulator-speed optimizations: the whole Report
    // (timing, filtered pipelines, timeline, TOL summary, trace) must
    // match the re-derivation oracle byte for byte.
    for idx in 0..3 {
        let fast = run_fast_paths(idx, 0.05, false, true);
        let oracle = run_fast_paths(idx, 0.05, false, false);
        assert!(fast.timing.total_cycles > 0);
        assert_eq!(
            fingerprint(&fast),
            fingerprint(&oracle),
            "profile {} diverged between template and re-derivation paths",
            fast.name
        );
    }
}

#[test]
fn retirement_templates_are_bit_identical_with_cosim() {
    let fast = run_fast_paths(0, 0.03, true, true);
    let oracle = run_fast_paths(0, 0.03, true, false);
    assert!(fast.cosim_checks > 0, "checker must run as a sink");
    assert_eq!(fast.cosim_checks, oracle.cosim_checks);
    assert_eq!(fingerprint(&fast), fingerprint(&oracle));
}

#[test]
fn memory_fast_paths_are_bit_identical_across_profiles() {
    // The flattened cache/TLB layout and the last-line/last-page hit
    // shortcuts are pure simulator-speed optimizations: same hits, same
    // victims, same counters, same cycles — the whole Report must match
    // the full-probe legacy-layout oracle byte for byte.
    for idx in 0..3 {
        let fast = run_mem_paths(idx, 0.05, false, true);
        let oracle = run_mem_paths(idx, 0.05, false, false);
        assert!(fast.timing.total_cycles > 0);
        assert_eq!(
            fingerprint(&fast),
            fingerprint(&oracle),
            "profile {} diverged between flat/shortcut and legacy memory paths",
            fast.name
        );
    }
}

#[test]
fn block_memo_is_bit_identical_across_backends_and_batches() {
    // The acceptance matrix for the block-timing memo: against the
    // memo-off per-instruction oracle, every timing backend at
    // per-instruction delivery (batch 1), a mid batch and the
    // default-sized 4096 batch produces a byte-identical report with
    // the memo on — macro-retire bulk-apply included.
    for &batch in &[1usize, 64, 4096] {
        let oracle = run_memo(0, 0.04, TimingBackendKind::Inline, false, batch, false);
        for &backend in &BACKENDS {
            let memo = run_memo(0, 0.04, backend, false, batch, true);
            assert_eq!(
                fingerprint(&oracle),
                fingerprint(&memo),
                "block memo diverged on backend {backend:?} at event_batch {batch}"
            );
        }
    }
}

#[test]
fn block_memo_is_bit_identical_with_cosim() {
    // The cosim checker consumes the same expanded stream the memo
    // suppresses on the timing side, so it must still see every retire
    // and still agree with the oracle run check for check.
    let oracle = run_memo(0, 0.03, TimingBackendKind::Inline, true, 0, false);
    for backend in [TimingBackendKind::Threaded, TimingBackendKind::Fanout] {
        let memo = run_memo(0, 0.03, backend, true, 0, true);
        assert!(memo.cosim_checks > 0, "checker must run as a sink");
        assert_eq!(memo.cosim_checks, oracle.cosim_checks);
        assert_eq!(
            fingerprint(&oracle),
            fingerprint(&memo),
            "block memo diverged under cosim on backend {backend:?}"
        );
    }
}

#[test]
fn block_memo_actually_engages() {
    // Guard that the equalities above are not vacuous: under the
    // default (memo-on) configuration the timing sinks must see
    // macro-events and score real replay hits.
    let profiles = suites::all_profiles();
    let cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        ..SystemConfig::default()
    };
    let mut sys = System::new(generate(&profiles[0], 0.05), cfg);
    sys.run_to_completion();
    let engine = sys.tol().memo_stats();
    let timing = sys.memo_stats();
    assert!(engine.macro_events > 0, "steady-state blocks must emit macro-events");
    assert!(engine.insts_suppressed > 0);
    assert!(timing.hits > 0, "replay must score hits on a loopy workload");
    assert!(timing.insts_replayed > 0);
}

#[test]
fn guest_fast_path_is_bit_identical_across_backends_and_batches() {
    // The acceptance matrix for the guest-layer fast path: against the
    // decode-per-step byte oracle, every timing backend at
    // per-instruction delivery (batch 1), a mid batch and the
    // default-sized 4096 batch produces a byte-identical report with
    // the micro-op buffers and lazy flags on.
    for &batch in &[1usize, 64, 4096] {
        let oracle = run_guest_fast(0, 0.04, TimingBackendKind::Inline, false, batch, false);
        for &backend in &BACKENDS {
            let fast = run_guest_fast(0, 0.04, backend, false, batch, true);
            assert_eq!(
                fingerprint(&oracle),
                fingerprint(&fast),
                "guest fast path diverged on backend {backend:?} at event_batch {batch}"
            );
        }
    }
}

#[test]
fn guest_fast_path_is_bit_identical_across_profiles() {
    // Cross-profile sweep (different instruction mixes stress different
    // micro-op handlers and flag producers/consumers).
    for idx in 0..3 {
        let fast = run_guest_fast(idx, 0.05, TimingBackendKind::Inline, false, 0, true);
        let oracle = run_guest_fast(idx, 0.05, TimingBackendKind::Inline, false, 0, false);
        assert!(fast.timing.total_cycles > 0);
        assert_eq!(
            fingerprint(&fast),
            fingerprint(&oracle),
            "profile {} diverged between micro-op and byte-oracle guest paths",
            fast.name
        );
    }
}

#[test]
fn guest_fast_path_threaded_and_fanout_with_cosim() {
    // The cosim checker runs its own ExecCtx on its private memory copy,
    // so this exercises two independent fast paths against one oracle
    // run, under both thread-spawning backends. Named
    // "threaded"/"fanout" so the ThreadSanitizer gate picks it up.
    let oracle = run_guest_fast(0, 0.03, TimingBackendKind::Inline, true, 0, false);
    for backend in [TimingBackendKind::Threaded, TimingBackendKind::Fanout] {
        let fast = run_guest_fast(0, 0.03, backend, true, 0, true);
        assert!(fast.cosim_checks > 0, "checker must run as a sink");
        assert_eq!(fast.cosim_checks, oracle.cosim_checks);
        assert_eq!(
            fingerprint(&oracle),
            fingerprint(&fast),
            "guest fast path diverged under cosim on backend {backend:?}"
        );
    }
}

#[test]
fn guest_fast_path_actually_engages() {
    // Guard that the equalities above are not vacuous: under the
    // default (fast-path-on) configuration the interpreter must hit the
    // pre-decoded micro-op buffers and elide flag materializations.
    let profiles = suites::all_profiles();
    let cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        ..SystemConfig::default()
    };
    let mut sys = System::new(generate(&profiles[0], 0.05), cfg);
    sys.run_to_completion();
    let stats = sys.tol().fast_stats();
    assert!(stats.uop_hits > 0, "interpreter must execute from cached micro-op buffers");
    assert!(stats.blocks_built > 0);
    assert!(
        stats.flag_forces < stats.flag_defs,
        "lazy flags must elide some materializations ({} forces / {} defs)",
        stats.flag_forces,
        stats.flag_defs
    );
}

#[test]
fn per_instruction_batching_matches_default() {
    // `event_batch = 1` degenerates to per-instruction delivery; the
    // stream contents (and thus the report) must not depend on the
    // batch size, only the batch structure does.
    let mut cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        ..SystemConfig::default()
    };
    let profiles = suites::all_profiles();
    let batched = {
        let mut sys = System::new(generate(&profiles[0], 0.05), cfg.clone());
        sys.run_to_completion()
    };
    cfg.tol.event_batch = 1;
    let per_inst = {
        let mut sys = System::new(generate(&profiles[0], 0.05), cfg);
        sys.run_to_completion()
    };
    assert!(batched.trace.max_batch > 1);
    assert_eq!(per_inst.trace.max_batch, 1);
    // Everything except the batch accounting is identical.
    assert_eq!(batched.timing.total_cycles, per_inst.timing.total_cycles);
    assert_eq!(batched.guest_insts, per_inst.guest_insts);
    assert_eq!(batched.trace.retired, per_inst.trace.retired);
    assert_eq!(batched.trace.component_insts, per_inst.trace.component_insts);
    assert_eq!(fingerprint(&batched.timeline), fingerprint(&per_inst.timeline));
}
