//! The analysis-driven passes (`deadflags`, `rangesimp`) are pure
//! host-code transformations: switching them off (the oracle
//! configuration, using the translator's intrinsic flag elision and no
//! branch folding) must leave every guest-architectural result of a run
//! untouched. Host-side code layout and timing may legitimately differ
//! — rangesimp can delete never-taken branches — so these tests compare
//! the guest-visible projection of the [`Report`], not its fingerprint.
//!
//! [`Report`]: darco::core::Report

use darco::core::{Report, System, SystemConfig};
use darco::workloads::{generate, suites};

fn run(profile_idx: usize, cosim: bool, analysis_on: bool) -> Report {
    let profiles = suites::all_profiles();
    let mut cfg = SystemConfig {
        cosim,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        ..SystemConfig::default()
    };
    cfg.tol.opt_deadflags = analysis_on;
    cfg.tol.opt_rangesimp = analysis_on;
    let mut sys = System::new(generate(&profiles[profile_idx], 0.05), cfg);
    sys.run_to_completion()
}

fn assert_guest_architectural_match(on: &Report, off: &Report) {
    assert_eq!(on.guest_insts, off.guest_insts, "{}: guest length", on.name);
    assert_eq!(on.tol.counters.guest_insts, off.tol.counters.guest_insts, "{}", on.name);
    assert_eq!(
        on.tol.counters.indirect_branches, off.tol.counters.indirect_branches,
        "{}: indirect branches",
        on.name
    );
    assert_eq!(on.tol.dyn_dist, off.tol.dyn_dist, "{}: dynamic mode distribution", on.name);
    assert_eq!(on.tol.static_dist, off.tol.static_dist, "{}: static mode distribution", on.name);
    assert_eq!(on.cosim_checks, off.cosim_checks, "{}: checker cadence", on.name);
}

#[test]
fn analysis_passes_preserve_guest_results_across_profiles() {
    for idx in 0..3 {
        let on = run(idx, false, true);
        let off = run(idx, false, false);
        assert_guest_architectural_match(&on, &off);
        assert!(
            on.tol.counters.flags_killed > 0,
            "{}: eager translation must give deadflags work",
            on.name
        );
        assert_eq!(off.tol.counters.flags_killed, 0, "{}: oracle config kills nothing", off.name);
        assert_eq!(
            off.tol.counters.branches_folded, 0,
            "{}: oracle config folds nothing",
            off.name
        );
    }
}

#[test]
fn analysis_passes_preserve_guest_results_under_cosim() {
    // Co-simulation checks every architectural register and every store
    // against the authoritative emulator — running it at all is the
    // strongest per-instruction oracle; equal check counts pin that both
    // configurations took the identical guest path.
    let on = run(0, true, true);
    let off = run(0, true, false);
    assert!(on.cosim_checks > 0, "checker must run");
    assert_guest_architectural_match(&on, &off);
}

#[test]
fn deadflags_reports_per_pass_shrinkage() {
    let on = run(0, false, true);
    let df = on
        .tol
        .pass_deltas
        .iter()
        .find(|d| d.pass == "deadflags")
        .expect("deadflags delta reported");
    assert!(df.runs > 0);
    assert!(df.flags_killed > 0);
    assert!(df.insts_removed > 0, "killing flag defs shrinks blocks");
    assert_eq!(df.flags_killed, on.tol.counters.flags_killed);
}
