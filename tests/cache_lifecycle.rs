//! Code-cache lifecycle integration tests: self-modifying code through
//! the *translated* path, and the FIFO partial-eviction policy exercised
//! across the full system (DESIGN.md §14).
//!
//! The SMC tests hand-assemble a guest program whose hot inner loop is
//! promoted all the way to SBM and then patched by the program itself
//! (the immediate of an `add` flips from 1 to 5). The architecturally
//! exact outcome is pinned against the reference functional emulator,
//! co-simulation checks every dispatch boundary, and the report must
//! show the translation being evicted for SMC and re-translated.

use darco::core::{Report, System, SystemConfig, TimingBackendKind};
use darco::guest::asm::Asm;
use darco::guest::encode::encode_to_vec;
use darco::guest::{exec, AluOp, Cond, CpuState, Gpr, GuestMem, Inst, MemRef, MemWidth};
use darco::tol::codecache::CachePolicy;
use darco::tol::TolConfig;
use darco::workloads::gen::Workload;
use darco::workloads::{generate, suites};

const CODE_BASE: u32 = 0x1000;
/// Inner-loop trip count (hot enough to promote IM → BBM → SBM).
const INNER: i32 = 40;
/// Outer-loop trip count.
const OUTER: i32 = 60;
/// Outer iteration after which the program patches its own code.
const TRIGGER: i32 = 30;

/// Builds a guest program that overwrites the immediate byte of the hot
/// inner loop's `add eax, 1`, turning it into `add eax, 5` mid-run:
///
/// ```text
/// entry:  eax = 0; ebx = 0
/// outer:  ecx = 0
/// inner:  add eax, 1        <- patched to `add eax, 5` (same length)
///         add ecx, 1
///         cmp ecx, INNER; jne inner
///         cmp ebx, TRIGGER; jne skip
///         edx = 5; store.b [imm byte of the add] <- dl
/// skip:   add ebx, 1
///         cmp ebx, OUTER; jne outer
///         halt
/// ```
///
/// Both immediates fit a signed byte, so the canonical encoding length
/// is identical and the patch never shifts later instructions.
fn smc_workload() -> Workload {
    // Locate the byte that differs between the two encodings.
    let old = encode_to_vec(&Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
    let new = encode_to_vec(&Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 5 });
    assert_eq!(old.len(), new.len(), "patch must not change instruction length");
    let diff: Vec<usize> =
        old.iter().zip(&new).enumerate().filter(|(_, (a, b))| a != b).map(|(i, _)| i).collect();
    assert_eq!(diff.len(), 1, "encodings differ in exactly the immediate byte");

    let mut a = Asm::new(CODE_BASE);
    a.push(Inst::MovRI { dst: Gpr::Eax, imm: 0 });
    a.push(Inst::MovRI { dst: Gpr::Ebx, imm: 0 });
    let outer = a.fresh_label();
    a.bind(outer);
    a.push(Inst::MovRI { dst: Gpr::Ecx, imm: 0 });
    let inner = a.fresh_label();
    a.bind(inner);
    let site = a.here() + diff[0] as u32;
    a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
    a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Ecx, imm: 1 });
    a.push(Inst::CmpRI { a: Gpr::Ecx, imm: INNER });
    a.push_jcc(Cond::Ne, inner);
    a.push(Inst::CmpRI { a: Gpr::Ebx, imm: TRIGGER });
    let skip = a.fresh_label();
    a.push_jcc(Cond::Ne, skip);
    // Executed exactly once: store the new immediate over the old one.
    a.push(Inst::MovRI { dst: Gpr::Edx, imm: 5 });
    a.push(Inst::StoreN { addr: MemRef::abs(site), src: Gpr::Edx, width: MemWidth::B1 });
    a.bind(skip);
    a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Ebx, imm: 1 });
    a.push(Inst::CmpRI { a: Gpr::Ebx, imm: OUTER });
    a.push_jcc(Cond::Ne, outer);
    a.push(Inst::Halt);
    let p = a.assemble();

    let mut mem = GuestMem::new();
    mem.write_bytes(p.base, &p.bytes);
    let mut initial = CpuState::at(p.base);
    initial.set_gpr(Gpr::Esp, 0x00F0_0000);
    Workload {
        name: "smc-patch".into(),
        mem,
        entry: p.base,
        initial,
        static_insts: p.static_len() as u32,
        dyn_estimate: (OUTER as u64) * (INNER as u64) * 4,
    }
}

/// Final accumulator value if — and only if — the patch takes effect at
/// the architecturally correct iteration.
fn smc_expected_eax() -> u32 {
    (INNER * (TRIGGER + 1) + 5 * INNER * (OUTER - 1 - TRIGGER)) as u32
}

/// The reference functional emulator honours the self-modification.
#[test]
fn smc_reference_execution_sees_the_patch() {
    let w = smc_workload();
    let mut cpu = w.initial.clone();
    let mut mem = w.mem.clone();
    while !cpu.halted {
        exec::step(&mut cpu, &mut mem).unwrap();
    }
    assert_eq!(cpu.gpr(Gpr::Eax), smc_expected_eax());
}

/// Satellite (c): SMC through the *translated* path. The inner loop is
/// promoted to SBM long before the patch lands (2400 executions against
/// a BB/SB threshold of 50), so the store hits a page backing live
/// translations. The run must stay architecturally exact (co-simulation
/// checks every dispatch; the final instruction count is pinned against
/// the reference emulator) and the report must show the SMC eviction
/// plus the re-translation of the patched entry.
#[test]
fn smc_invalidates_translated_code_exactly() {
    let w = smc_workload();
    let mut ref_cpu = w.initial.clone();
    let mut ref_mem = w.mem.clone();
    let mut ref_n = 0u64;
    while !ref_cpu.halted {
        exec::step(&mut ref_cpu, &mut ref_mem).unwrap();
        ref_n += 1;
    }

    for policy in [CachePolicy::Flush, CachePolicy::Fifo] {
        let tol = TolConfig { bb_sb_threshold: 50, cache_policy: policy, ..TolConfig::default() };
        let cfg = SystemConfig { tol, cosim: true, ..SystemConfig::default() };
        let mut sys = System::new(smc_workload(), cfg);
        let r = sys.run_to_completion(); // co-sim panics on divergence
        assert_eq!(r.guest_insts, ref_n, "{policy:?}: instruction counts must match");
        assert!(r.cosim_checks > 0, "{policy:?}: checker ran");
        assert!(r.tol.dyn_dist[2] > 0, "{policy:?}: the hot loop reached SBM");
        assert!(
            r.tol.cache.smc_evictions >= 1,
            "{policy:?}: the code write must evict stale translations"
        );
        assert!(
            r.tol.cache.retranslations >= 1,
            "{policy:?}: the patched entry must be re-translated"
        );
    }
}

// ---------------------------------------------------------------------
// FIFO partial eviction across the full system.
// ---------------------------------------------------------------------

const BACKENDS: [TimingBackendKind; 3] =
    [TimingBackendKind::Inline, TimingBackendKind::Threaded, TimingBackendKind::Fanout];

/// Capacity small enough that the quicktest working set churns the
/// cache — evicted hot translations actually come back rather than
/// just cold code falling off the FIFO end.
const TIGHT_CAPACITY: u32 = 600;

fn run_fifo(backend: TimingBackendKind, cosim: bool, event_batch: usize) -> Report {
    let profile = suites::quicktest_profile();
    let mut cfg = SystemConfig {
        cosim,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        timing_backend: backend,
        ..SystemConfig::default()
    };
    cfg.tol.code_cache_capacity = TIGHT_CAPACITY;
    cfg.tol.cache_policy = CachePolicy::Fifo;
    if event_batch > 0 {
        cfg.tol.event_batch = event_batch;
    }
    let mut sys = System::new(generate(&profile, 0.2), cfg);
    sys.run_to_completion()
}

fn fingerprint<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serialize")
}

/// FIFO under pressure evicts instead of flushing, keeps the guest run
/// architecturally identical to an unconstrained run, and re-translates
/// evicted entries when they come back.
#[test]
fn fifo_pressure_preserves_architectural_results() {
    let r = run_fifo(TimingBackendKind::Inline, true, 0);
    assert!(r.tol.cache.evictions > 0, "capacity {TIGHT_CAPACITY} must force evictions");
    assert_eq!(r.tol.flushes, 0, "fifo evicts instead of flushing");
    assert!(r.tol.cache.retranslations > 0, "evicted hot code comes back");
    assert!(r.tol.cache.unchains > 0, "evictions unlink incoming chains");
    assert!(r.tol.cache.used <= r.tol.cache.capacity, "allocator respects capacity");

    let profile = suites::quicktest_profile();
    let mut base = System::new(
        generate(&profile, 0.2),
        SystemConfig { cosim: true, ..SystemConfig::default() },
    );
    let rb = base.run_to_completion();
    assert_eq!(r.guest_insts, rb.guest_insts, "partial eviction is performance-only");
}

/// The acceptance matrix for the FIFO policy: every timing backend, at
/// per-instruction delivery (batch 1), a mid batch and the default 4096
/// batch, produces a byte-identical report — eviction and unchain events
/// ride the same deterministic retire-order stream as everything else.
#[test]
fn fifo_reports_are_bit_identical_across_backends_and_batches() {
    for &batch in &[1usize, 64, 4096] {
        let reference = run_fifo(TimingBackendKind::Inline, false, batch);
        assert!(reference.tol.cache.evictions > 0, "the comparison must exercise eviction");
        for &backend in &BACKENDS[1..] {
            let other = run_fifo(backend, false, batch);
            assert_eq!(
                fingerprint(&reference),
                fingerprint(&other),
                "backend {backend:?} diverged under fifo at event_batch {batch}"
            );
        }
    }
}

/// Same matrix with the co-simulation checker running as a sink.
#[test]
fn fifo_reports_are_bit_identical_with_cosim() {
    let inline = run_fifo(TimingBackendKind::Inline, true, 0);
    assert!(inline.cosim_checks > 0, "checker must run as a sink");
    for &backend in &BACKENDS[1..] {
        let other = run_fifo(backend, true, 0);
        assert_eq!(fingerprint(&inline), fingerprint(&other));
    }
}

/// With ample capacity neither policy runs out of space, yet they stay
/// distinguishable in the lifecycle accounting: flush leaves a replaced
/// BBM translation as dead space (a redirect), while FIFO eagerly
/// reclaims it as a `Replaced` eviction. Guest-architectural execution
/// must be identical either way.
#[test]
fn policies_agree_architecturally_without_pressure() {
    let profile = suites::quicktest_profile();
    let run_policy = |policy: CachePolicy| {
        let mut cfg = SystemConfig {
            cosim: false,
            app_only_pipeline: true,
            tol_only_pipeline: true,
            window_guest_insts: 20_000,
            ..SystemConfig::default()
        };
        cfg.tol.cache_policy = policy;
        let mut sys = System::new(generate(&profile, 0.1), cfg);
        sys.run_to_completion()
    };
    let flush = run_policy(CachePolicy::Flush);
    let fifo = run_policy(CachePolicy::Fifo);
    assert_eq!(flush.tol.flushes, 0, "ample capacity: no flushes");
    assert_eq!(fifo.tol.flushes, 0, "fifo never flushes");
    assert_eq!(fifo.tol.cache.smc_evictions, 0, "no code writes in generated workloads");
    // Promotion replaces the BBM entry: flush keeps it as dead space,
    // fifo reclaims it immediately.
    assert!(flush.tol.cache.dead_space_ratio() > 0.0, "flush accumulates dead space");
    assert_eq!(fifo.tol.cache.live_used, fifo.tol.cache.used, "fifo carries no dead space");
    assert_eq!(flush.guest_insts, fifo.guest_insts, "the policy is performance-only");
    assert_eq!(flush.tol.static_dist, fifo.tol.static_dist);
    assert_eq!(flush.tol.dyn_dist, fifo.tol.dyn_dist);
}
