//! Property-based tests on the core invariants of the infrastructure,
//! driven by a seeded deterministic generator (the environment has no
//! crates.io access, so `proptest` is replaced by explicit case loops
//! over a `SmallRng`; failures print the seed for replay).
//!
//! The heavyweight property here mirrors DARCO's reason for existing:
//! *any* guest program must execute identically under the functional
//! reference, the interpreter, plain BBM translation, and the full SBM
//! optimization pipeline.

use darco::guest::asm::Asm;
use darco::guest::{
    exec, AluOp, Cond, CpuState, FpOp, FpReg, Gpr, GuestMem, Inst, MemRef, MemWidth, Scale, ShiftOp,
};
use darco::host::NullSink;
use darco::tol::{Tol, TolConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------- generators

const GPRS: [Gpr; 7] = [Gpr::Eax, Gpr::Ecx, Gpr::Edx, Gpr::Ebx, Gpr::Ebp, Gpr::Esi, Gpr::Edi];

fn gpr(rng: &mut SmallRng) -> Gpr {
    GPRS[rng.gen_range(0..GPRS.len())]
}

fn fpr(rng: &mut SmallRng) -> FpReg {
    FpReg(rng.gen_range(0u8..8))
}

fn memref(rng: &mut SmallRng) -> MemRef {
    // Data region: within a 64 KiB window at 0x40000 so accesses never
    // touch code or stack.
    let idx = rng.gen_bool(0.5);
    MemRef {
        base: None,
        index: if idx { Some(gpr(rng)) } else { None },
        scale: Scale::from_bits(rng.gen_range(0u8..4)),
        disp: 0x4_0000 + rng.gen_range(0i32..0x4000),
    }
}

fn alu_op(rng: &mut SmallRng) -> AluOp {
    [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor][rng.gen_range(0..5)]
}

fn shift_op(rng: &mut SmallRng) -> ShiftOp {
    [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][rng.gen_range(0..3)]
}

fn fp_op(rng: &mut SmallRng) -> FpOp {
    [FpOp::Add, FpOp::Sub, FpOp::Mul][rng.gen_range(0..3)]
}

fn narrow_width(rng: &mut SmallRng) -> MemWidth {
    if rng.gen_bool(0.5) {
        MemWidth::B2
    } else {
        MemWidth::B1
    }
}

/// Straight-line (non-control-flow) instructions.
fn straightline_inst(rng: &mut SmallRng) -> Inst {
    match rng.gen_range(0..28) {
        0 => Inst::MovRR { dst: gpr(rng), src: gpr(rng) },
        1 => Inst::MovRI { dst: gpr(rng), imm: rng.gen::<u32>() as i32 },
        2 => Inst::AluRR { op: alu_op(rng), dst: gpr(rng), src: gpr(rng) },
        3 => Inst::AluRI { op: alu_op(rng), dst: gpr(rng), imm: rng.gen_range(-1000i32..1000) },
        4 => Inst::Load { dst: gpr(rng), addr: memref(rng) },
        5 => Inst::Store { addr: memref(rng), src: gpr(rng) },
        6 => Inst::AluRM { op: alu_op(rng), dst: gpr(rng), addr: memref(rng) },
        7 => Inst::AluMR { op: alu_op(rng), addr: memref(rng), src: gpr(rng) },
        8 => Inst::Lea { dst: gpr(rng), addr: memref(rng) },
        9 => Inst::LoadZx { dst: gpr(rng), addr: memref(rng), width: narrow_width(rng) },
        10 => Inst::LoadSx { dst: gpr(rng), addr: memref(rng), width: narrow_width(rng) },
        11 => Inst::StoreN { addr: memref(rng), src: gpr(rng), width: narrow_width(rng) },
        12 => Inst::CmpRR { a: gpr(rng), b: gpr(rng) },
        13 => Inst::CmpRI { a: gpr(rng), imm: rng.gen::<u32>() as i32 },
        14 => Inst::TestRR { a: gpr(rng), b: gpr(rng) },
        15 => Inst::Shift { op: shift_op(rng), dst: gpr(rng), amount: rng.gen_range(0u8..32) },
        16 => Inst::ShiftCl { op: shift_op(rng), dst: gpr(rng) },
        17 => Inst::Imul { dst: gpr(rng), src: gpr(rng) },
        18 => Inst::Idiv { dst: gpr(rng), src: gpr(rng) },
        19 => Inst::Neg { dst: gpr(rng) },
        20 => Inst::Not { dst: gpr(rng) },
        21 => Inst::Push { src: gpr(rng) },
        22 => Inst::Pop { dst: gpr(rng) },
        23 => Inst::FMovRR { dst: fpr(rng), src: fpr(rng) },
        24 => Inst::FLoad { dst: fpr(rng), addr: memref(rng) },
        25 => Inst::FStore { addr: memref(rng), src: fpr(rng) },
        26 => Inst::FArith { op: fp_op(rng), dst: fpr(rng), src: fpr(rng) },
        _ => match rng.gen_range(0..3) {
            0 => Inst::CvtIF { dst: fpr(rng), src: gpr(rng) },
            1 => Inst::CvtFI { dst: gpr(rng), src: fpr(rng) },
            _ => Inst::Nop,
        },
    }
}

/// Any instruction, including control flow with bounded targets
/// (conditional branches are re-targeted by the program builder).
fn any_inst(rng: &mut SmallRng) -> Inst {
    if rng.gen_range(0..9) < 8 {
        straightline_inst(rng)
    } else {
        Inst::Jcc { cond: Cond::from_bits(rng.gen_range(0u8..12)).unwrap(), target: 0 }
    }
}

/// Builds a runnable program: a counted loop whose body is the random
/// instruction sequence (conditional branches become short forward
/// skips), so it always terminates and exercises IM, BBM and SBM.
fn build_program(body: &[Inst], iters: i32) -> (GuestMem, CpuState) {
    let mut a = Asm::new(0x1000);
    let top = a.fresh_label();
    a.push(Inst::MovRI { dst: Gpr::Ebp, imm: iters });
    a.bind(top);
    let mut i = 0;
    while i < body.len() {
        match body[i] {
            Inst::Jcc { cond, .. } => {
                let skip = a.fresh_label();
                a.push_jcc(cond, skip);
                // Up to two skipped instructions (must be straight-line).
                let mut skipped = 0;
                while skipped < 2 && i + 1 + skipped < body.len() {
                    if let Inst::Jcc { .. } = body[i + 1 + skipped] {
                        break;
                    }
                    a.push(sanitize_ebp(body[i + 1 + skipped]));
                    skipped += 1;
                }
                a.bind(skip);
                i += 1 + skipped;
            }
            // ebp is the loop counter: redirect writes away from it.
            inst => {
                a.push(sanitize_ebp(inst));
                i += 1;
            }
        }
    }
    a.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Ebp, imm: 1 });
    a.push_jcc(Cond::Ne, top);
    a.push(Inst::Halt);
    let p = a.assemble();
    let mut mem = GuestMem::new();
    mem.write_bytes(p.base, &p.bytes);
    // Seed the data window with nonzero values.
    for w in (0..0x8000u32).step_by(4) {
        mem.write_u32(0x4_0000 + w, w.wrapping_mul(2654435761));
    }
    let mut cpu = CpuState::at(p.base);
    cpu.set_gpr(Gpr::Esp, 0x9_0000);
    (mem, cpu)
}

/// Replaces writes to `ebp` (the harness loop counter) with `edx`.
fn sanitize_ebp(inst: Inst) -> Inst {
    let fix = |r: Gpr| if r == Gpr::Ebp { Gpr::Edx } else { r };
    use Inst::*;
    match inst {
        MovRR { dst, src } => MovRR { dst: fix(dst), src },
        MovRI { dst, imm } => MovRI { dst: fix(dst), imm },
        Load { dst, addr } => Load { dst: fix(dst), addr },
        LoadZx { dst, addr, width } => LoadZx { dst: fix(dst), addr, width },
        LoadSx { dst, addr, width } => LoadSx { dst: fix(dst), addr, width },
        Lea { dst, addr } => Lea { dst: fix(dst), addr },
        AluRR { op, dst, src } => AluRR { op, dst: fix(dst), src },
        AluRI { op, dst, imm } => AluRI { op, dst: fix(dst), imm },
        AluRM { op, dst, addr } => AluRM { op, dst: fix(dst), addr },
        Shift { op, dst, amount } => Shift { op, dst: fix(dst), amount },
        ShiftCl { op, dst } => ShiftCl { op, dst: fix(dst) },
        Imul { dst, src } => Imul { dst: fix(dst), src },
        Idiv { dst, src } => Idiv { dst: fix(dst), src },
        Neg { dst } => Neg { dst: fix(dst) },
        Not { dst } => Not { dst: fix(dst) },
        Pop { dst } => Pop { dst: fix(dst) },
        CvtFI { dst, src } => CvtFI { dst: fix(dst), src },
        other => other,
    }
}

fn run_reference(mem: &GuestMem, cpu: &CpuState) -> (CpuState, u64) {
    let mut mem = mem.clone();
    let mut cpu = cpu.clone();
    let mut n = 0;
    while !cpu.halted {
        exec::step(&mut cpu, &mut mem).expect("reference decode");
        n += 1;
        assert!(n < 10_000_000, "reference runaway");
    }
    (cpu, n)
}

fn run_tol(mem: &GuestMem, cpu: &CpuState, cfg: TolConfig) -> (CpuState, u64) {
    let mut mem = mem.clone();
    let mut tol = Tol::new(cfg, cpu.eip);
    tol.set_state(cpu);
    let mut sink = NullSink;
    let n = tol.run(&mut mem, &mut sink, 10_000_000).expect("tol run");
    (tol.emulated_state(), n)
}

// ---------------------------------------------------------------- properties

/// The co-simulation invariant, as a property over random programs:
/// interpreter-only, BBM-only and full-SBM executions all match the
/// functional reference bit-for-bit, at every threshold setting.
#[test]
fn translation_preserves_architecture() {
    for case in 0u64..24 {
        let mut rng = SmallRng::seed_from_u64(0xDA_0001 + case);
        let len = rng.gen_range(4usize..40);
        let body: Vec<Inst> = (0..len).map(|_| any_inst(&mut rng)).collect();
        let iters = rng.gen_range(3i32..40);
        let (mem, cpu) = build_program(&body, iters);
        let (ref_cpu, ref_n) = run_reference(&mem, &cpu);

        for cfg in [
            // Interpreter only (promotion unreachable).
            TolConfig { im_bb_threshold: u32::MAX, ..TolConfig::default() },
            // BBM only.
            TolConfig { im_bb_threshold: 1, bb_sb_threshold: u32::MAX, ..TolConfig::default() },
            // Aggressive SBM.
            TolConfig { im_bb_threshold: 1, bb_sb_threshold: 2, ..TolConfig::default() },
            // SBM with no optimization passes.
            TolConfig { im_bb_threshold: 1, bb_sb_threshold: 2, ..TolConfig::no_optimization() },
        ] {
            let (emu_cpu, emu_n) = run_tol(&mem, &cpu, cfg.clone());
            assert_eq!(emu_n, ref_n, "case {case}: instruction count under {cfg:?}");
            assert!(
                ref_cpu.arch_eq(&emu_cpu),
                "case {case}: state mismatch\nref: {ref_cpu}\nemu: {emu_cpu}"
            );
        }
    }
}

/// The retirement-template fast path must emit the *exact* same
/// `DynInst` stream as a straight re-derivation: for random programs,
/// run the full TOL twice — templates plus decode cache on, then both
/// off (the oracle) — and compare the streams element-wise.
#[test]
fn retirement_templates_match_rederivation_oracle() {
    use darco::host::{events::RetireSink, DynInst};
    for case in 0u64..12 {
        let mut rng = SmallRng::seed_from_u64(0xDA_0007 + case);
        let len = rng.gen_range(4usize..40);
        let body: Vec<Inst> = (0..len).map(|_| any_inst(&mut rng)).collect();
        let iters = rng.gen_range(3i32..40);
        let (mem, cpu) = build_program(&body, iters);

        let stream = |fast: bool| -> (CpuState, Vec<DynInst>) {
            let mut mem = mem.clone();
            let cfg = TolConfig {
                im_bb_threshold: 1,
                bb_sb_threshold: 2,
                retire_templates: fast,
                interp_decode_cache: fast,
                ..TolConfig::default()
            };
            let mut tol = Tol::new(cfg, cpu.eip);
            tol.set_state(&cpu);
            let mut v = Vec::new();
            let mut sink = RetireSink(|d: &DynInst| v.push(*d));
            tol.run(&mut mem, &mut sink, 10_000_000).expect("tol run");
            (tol.emulated_state(), v)
        };
        let (cpu_fast, fast) = stream(true);
        let (cpu_oracle, oracle) = stream(false);
        assert!(cpu_fast.arch_eq(&cpu_oracle), "case {case}: state mismatch");
        assert_eq!(fast.len(), oracle.len(), "case {case}: stream length");
        if let Some(i) = fast.iter().zip(oracle.iter()).position(|(a, b)| a != b) {
            panic!(
                "case {case}: DynInst {i} differs\ntemplate: {:?}\noracle:   {:?}",
                fast[i], oracle[i]
            );
        }
    }
}

/// The guest-layer fast path (pre-decoded micro-op buffers, lazy flag
/// materialization, width-native memory access) against the
/// decode-per-step byte oracle, compared at *every step*: full
/// architectural state including every EFLAGS bit. The running fast
/// context keeps its lazy state — flags are forced on a probe clone so
/// the comparison cannot mask an elision bug by materializing early.
#[test]
fn guest_fast_path_matches_oracle_per_step() {
    use darco::guest::ExecCtx;
    for case in 0u64..16 {
        let mut rng = SmallRng::seed_from_u64(0xDA_0009 + case);
        let len = rng.gen_range(4usize..40);
        let body: Vec<Inst> = (0..len).map(|_| any_inst(&mut rng)).collect();
        let iters = rng.gen_range(3i32..20);
        let (mem, cpu) = build_program(&body, iters);

        let mut oracle_mem = mem.clone();
        oracle_mem.set_fast_path(false);
        let mut oracle_cpu = cpu.clone();
        let mut fast_mem = mem;
        let mut fast_cpu = cpu;
        let mut ctx = ExecCtx::new();

        let mut steps = 0u64;
        while !oracle_cpu.halted {
            let o = exec::step(&mut oracle_cpu, &mut oracle_mem).expect("oracle decode");
            let f = ctx.step(&mut fast_cpu, &mut fast_mem).expect("fast decode");
            assert_eq!(o, f, "case {case} step {steps}: StepInfo mismatch");
            let mut probe_cpu = fast_cpu.clone();
            let mut probe_ctx = ctx.clone();
            probe_ctx.force_flags(&mut probe_cpu);
            assert!(
                oracle_cpu.arch_eq(&probe_cpu),
                "case {case} step {steps}: state mismatch\noracle: {oracle_cpu}\nfast:   {probe_cpu}"
            );
            steps += 1;
            assert!(steps < 10_000_000, "runaway");
        }
        assert!(fast_cpu.halted, "case {case}: fast path must halt with the oracle");
        assert_eq!(
            oracle_mem.first_difference(&fast_mem),
            None,
            "case {case}: guest memory diverged"
        );
        assert!(ctx.stats.uop_hits > 0, "case {case}: micro-op cache never engaged");
    }
}

/// Self-modifying code invalidates *both* generation-stamped caches —
/// the interpreter decode cache and the pre-decoded micro-op buffers:
/// a program that patches an immediate byte inside its own loop body
/// every iteration must converge to the reference result under the
/// plain interpreter, the decode-cache path and the fast path alike.
#[test]
fn smc_invalidates_decode_cache_and_uop_buffers() {
    use darco::guest::ExecCtx;
    for case in 0u64..8 {
        let mut rng = SmallRng::seed_from_u64(0xDA_000A + case);
        let iters = rng.gen_range(8i32..40);
        // seed + iters stays below 128 so the patched byte always
        // decodes as the same positive imm8 the accumulator expects.
        let seed_imm = rng.gen_range(1i32..80);

        // base:      MovRI Ebp, iters         ; loop counter
        // top:       MovRI Edx, seed_imm      ; patch target
        //            AluRR Add Eax, Edx       ; accumulate the patched imm
        //            LoadZx Ecx, [patch], B1  ; read the imm byte,
        //            AluRI Add Ecx, 1         ; bump it,
        //            StoreN [patch], Ecx, B1  ; write it back (SMC)
        //            AluRI Sub Ebp, 1
        //            Jcc Ne top
        //            Halt
        // The short MovRI encoding places the imm8 at offset +2, so the
        // store rewrites a byte inside an already-cached block; both
        // caches must observe the new generation stamp next iteration.
        let base = 0x1000u32;
        let head = darco::guest::encode::encode_to_vec(&Inst::MovRI { dst: Gpr::Ebp, imm: iters });
        let patch = MemRef {
            base: None,
            index: None,
            scale: Scale::from_bits(0),
            disp: (base + head.len() as u32 + 2) as i32,
        };
        let mut a = Asm::new(base);
        let top = a.fresh_label();
        a.push(Inst::MovRI { dst: Gpr::Ebp, imm: iters });
        a.bind(top);
        a.push(Inst::MovRI { dst: Gpr::Edx, imm: seed_imm });
        a.push(Inst::AluRR { op: AluOp::Add, dst: Gpr::Eax, src: Gpr::Edx });
        a.push(Inst::LoadZx { dst: Gpr::Ecx, addr: patch, width: MemWidth::B1 });
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Ecx, imm: 1 });
        a.push(Inst::StoreN { addr: patch, src: Gpr::Ecx, width: MemWidth::B1 });
        a.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Ebp, imm: 1 });
        a.push_jcc(Cond::Ne, top);
        a.push(Inst::Halt);
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        let mut cpu = CpuState::at(p.base);
        cpu.set_gpr(Gpr::Esp, 0x9_0000);

        // The accumulator must see a *different* imm every iteration:
        // seed, seed+1, ... — only true if caches revalidate.
        let expect: i64 = (0..iters as i64).map(|i| seed_imm as i64 + i).sum();

        let (ref_cpu, ref_n) = run_reference(&mem, &cpu);
        assert_eq!(
            ref_cpu.gpr(Gpr::Eax) as i32 as i64,
            expect,
            "case {case}: reference must accumulate the patched immediates"
        );

        // Micro-op fast path, stepped directly so invalidations are
        // observable.
        {
            let mut m = mem.clone();
            let mut c = cpu.clone();
            let mut ctx = ExecCtx::new();
            let mut n = 0u64;
            while !c.halted {
                ctx.step(&mut c, &mut m).expect("fast decode");
                n += 1;
                assert!(n < 10_000_000, "runaway");
            }
            ctx.force_flags(&mut c);
            assert_eq!(n, ref_n, "case {case}: fast-path instruction count");
            assert!(ref_cpu.arch_eq(&c), "case {case}: fast path missed the patch");
            assert!(
                ctx.stats.invalidations > 0,
                "case {case}: SMC must invalidate cached micro-op blocks"
            );
        }

        // Full TOL, decode cache on / fast path off, then fast path on:
        // both must land on the reference state.
        for (label, cfg) in [
            (
                "decode-cache",
                TolConfig {
                    interp_decode_cache: true,
                    guest_fast_path: false,
                    im_bb_threshold: u32::MAX,
                    ..TolConfig::default()
                },
            ),
            (
                "fast-path",
                TolConfig {
                    guest_fast_path: true,
                    im_bb_threshold: u32::MAX,
                    ..TolConfig::default()
                },
            ),
        ] {
            let (emu_cpu, emu_n) = run_tol(&mem, &cpu, cfg);
            assert_eq!(emu_n, ref_n, "case {case}: {label} instruction count");
            assert!(
                ref_cpu.arch_eq(&emu_cpu),
                "case {case}: {label} missed the patch\nref: {ref_cpu}\nemu: {emu_cpu}"
            );
        }
    }
}

/// Decoder round-trip on random straight-line instructions.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xDA_0002);
    for case in 0..512 {
        let inst = straightline_inst(&mut rng);
        let bytes = darco::guest::encode::encode_to_vec(&inst);
        let (back, len) = darco::guest::decode(&bytes).expect("decode");
        assert_eq!(back, inst, "case {case}");
        assert_eq!(len, bytes.len(), "case {case}");
    }
}

/// The decoder never panics on arbitrary bytes and never reads past
/// the declared instruction length.
#[test]
fn decoder_is_total() {
    let mut rng = SmallRng::seed_from_u64(0xDA_0003);
    for _ in 0..2048 {
        let len = rng.gen_range(1usize..16);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u16..256) as u8).collect();
        if let Ok((_, len)) = darco::guest::decode(&bytes) {
            assert!(len <= bytes.len());
            assert!(len <= darco::guest::exec::MAX_INST_LEN);
        }
    }
}

/// Flag algebra matches two's-complement arithmetic.
#[test]
fn flag_semantics() {
    use darco::guest::Flags;
    let mut rng = SmallRng::seed_from_u64(0xDA_0004);
    for _ in 0..4096 {
        let a: u32 = rng.gen();
        let b: u32 = rng.gen();
        let add = Flags::add(a, b);
        assert_eq!(add.zf, a.wrapping_add(b) == 0);
        assert_eq!(add.cf, a.checked_add(b).is_none());
        assert_eq!(add.sf, (a.wrapping_add(b) as i32) < 0);
        assert_eq!(add.of, (a as i32).checked_add(b as i32).is_none());
        let sub = Flags::sub(a, b);
        assert_eq!(sub.zf, a == b);
        assert_eq!(sub.cf, a < b);
        assert_eq!(sub.of, (a as i32).checked_sub(b as i32).is_none());
    }
}

/// Caches: an access immediately after an access to the same line is
/// always a hit, regardless of history.
#[test]
fn cache_hit_after_fill() {
    use darco::timing::cache::{Cache, Lookup};
    let mut rng = SmallRng::seed_from_u64(0xDA_0005);
    for _ in 0..32 {
        let mut c = Cache::new(darco::timing::TimingConfig::default().l1d);
        let n = rng.gen_range(1usize..200);
        for _ in 0..n {
            let a = rng.gen_range(0u64..(1 << 22));
            c.access(a);
            assert_eq!(c.access(a), Lookup::Hit);
        }
    }
}

/// The flattened cache layout against an *independent* reference model:
/// a plain per-set `Vec<Option<u64>>` tag array with a hand-rolled
/// tree-PLRU (re-derived from the replacement-policy spec, not reusing
/// the crate's `PlruSet`). For random streams of demand accesses,
/// prefetch fills and presence probes, every hit/miss outcome, every
/// victim (observed through `contains`) and the final counters must
/// agree across shapes covering 1/2/4/8-way associativity.
#[test]
fn flat_cache_matches_reference_plru_model() {
    use darco::timing::{Cache, CacheParams, Lookup};

    /// Textbook tree-PLRU over a `u64` bit heap: node 0 is the root,
    /// children of `n` are `2n+1` / `2n+2`; a set bit points left.
    struct RefSet {
        tags: Vec<Option<u64>>,
        bits: u64,
    }

    impl RefSet {
        fn touch(&mut self, way: usize) {
            let ways = self.tags.len();
            let (mut lo, mut hi, mut node) = (0usize, ways, 0usize);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if way < mid {
                    self.bits |= 1 << node;
                    node = 2 * node + 1;
                    hi = mid;
                } else {
                    self.bits &= !(1 << node);
                    node = 2 * node + 2;
                    lo = mid;
                }
            }
        }

        fn victim(&self) -> usize {
            let ways = self.tags.len();
            let (mut lo, mut hi, mut node) = (0usize, ways, 0usize);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if self.bits & (1 << node) != 0 {
                    node = 2 * node + 2;
                    lo = mid;
                } else {
                    node = 2 * node + 1;
                    hi = mid;
                }
            }
            lo
        }

        fn probe_fill(&mut self, tag: u64) -> Lookup {
            if let Some(w) = self.tags.iter().position(|&t| t == Some(tag)) {
                self.touch(w);
                return Lookup::Hit;
            }
            let w = self.tags.iter().position(Option::is_none).unwrap_or_else(|| self.victim());
            self.tags[w] = Some(tag);
            self.touch(w);
            Lookup::Miss
        }
    }

    struct RefCache {
        sets: Vec<RefSet>,
        block: u64,
        accesses: u64,
        misses: u64,
    }

    impl RefCache {
        fn new(p: CacheParams) -> RefCache {
            let sets = (p.size / (p.block * p.ways)) as usize;
            RefCache {
                sets: (0..sets)
                    .map(|_| RefSet { tags: vec![None; p.ways as usize], bits: 0 })
                    .collect(),
                block: p.block as u64,
                accesses: 0,
                misses: 0,
            }
        }

        fn index(&self, addr: u64) -> (usize, u64) {
            let line = addr / self.block;
            ((line % self.sets.len() as u64) as usize, line / self.sets.len() as u64)
        }

        fn access(&mut self, addr: u64) -> Lookup {
            self.accesses += 1;
            let (s, tag) = self.index(addr);
            let r = self.sets[s].probe_fill(tag);
            if r == Lookup::Miss {
                self.misses += 1;
            }
            r
        }

        fn fill(&mut self, addr: u64) {
            let (s, tag) = self.index(addr);
            let _ = self.sets[s].probe_fill(tag);
        }

        fn contains(&self, addr: u64) -> bool {
            let (s, tag) = self.index(addr);
            self.sets[s].tags.contains(&Some(tag))
        }
    }

    let mut rng = SmallRng::seed_from_u64(0xDA_0008);
    for &(size, block, ways) in &[(256u32, 16u32, 1u32), (128, 16, 2), (2048, 32, 4), (4096, 64, 8)]
    {
        for case in 0..4 {
            let p = CacheParams { size, block, ways, hit_latency: 1 };
            let mut dut = Cache::new(p);
            let mut model = RefCache::new(p);
            // 6x capacity in lines keeps sets contended so PLRU victims
            // are exercised, not just cold fills.
            let span = 6 * size as u64;
            for i in 0..5000u64 {
                let addr = rng.gen_range(0u64..span);
                if rng.gen_range(0u32..5) == 0 {
                    dut.fill(addr);
                    model.fill(addr);
                } else {
                    assert_eq!(
                        dut.access(addr),
                        model.access(addr),
                        "shape {size}/{block}/{ways} case {case}: access {i} @{addr:#x}"
                    );
                }
                // Presence of the touched line and of a same-set rival
                // (victim visibility): the model and the cache must agree
                // on exactly which lines survived.
                let rival = addr ^ (size as u64);
                assert_eq!(dut.contains(addr), model.contains(addr), "touched line");
                assert_eq!(
                    dut.contains(rival),
                    model.contains(rival),
                    "shape {size}/{block}/{ways} case {case}: victim mismatch @{rival:#x}"
                );
            }
            assert_eq!(dut.accesses(), model.accesses, "demand access count");
            assert_eq!(dut.misses(), model.misses, "demand miss count");
        }
    }
}

/// Timing monotonicity: extending an instruction stream never
/// reduces total cycles, and cycles always cover insts/width.
#[test]
fn pipeline_monotone() {
    use darco::host::stream::{int_reg, DynInst};
    use darco::host::{Component, ExecClass};
    use darco::timing::{Pipeline, TimingConfig};
    let mut rng = SmallRng::seed_from_u64(0xDA_0006);
    for _ in 0..16 {
        let n = rng.gen_range(1usize..400);
        let seed: u64 = rng.gen();
        let mut p = Pipeline::new(TimingConfig::default());
        let mut x = seed | 1;
        let mut prev = 0;
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            let d = if x & 3 == 0 {
                DynInst::plain(i as u64 * 4, ExecClass::Load, Component::AppCode)
                    .with_dst(int_reg(2))
                    .with_mem((x >> 8) % (1 << 20), 4, false)
            } else {
                DynInst::plain(i as u64 * 4, ExecClass::SimpleInt, Component::AppCode)
                    .with_dst(int_reg(3))
                    .with_srcs(int_reg(2), u8::MAX)
            };
            p.retire(&d);
            let s = p.snapshot();
            assert!(s.total_cycles >= prev, "cycles must be monotone");
            prev = s.total_cycles;
        }
        let s = p.snapshot();
        assert!(s.total_cycles as f64 >= n as f64 / 2.0);
        assert_eq!(s.total_insts(), n as u64);
    }
}
