//! Property-based tests on the core invariants of the infrastructure.
//!
//! The heavyweight property here mirrors DARCO's reason for existing:
//! *any* guest program must execute identically under the functional
//! reference, the interpreter, plain BBM translation, and the full SBM
//! optimization pipeline.

use darco::guest::asm::Asm;
use darco::guest::{exec, AluOp, Cond, CpuState, FpOp, FpReg, Gpr, GuestMem, Inst, MemRef, MemWidth, Scale, ShiftOp};
use darco::host::DynInst;
use darco::tol::{Tol, TolConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------- strategies

fn gpr() -> impl Strategy<Value = Gpr> {
    prop_oneof![
        Just(Gpr::Eax),
        Just(Gpr::Ecx),
        Just(Gpr::Edx),
        Just(Gpr::Ebx),
        Just(Gpr::Ebp),
        Just(Gpr::Esi),
        Just(Gpr::Edi),
    ]
}

fn fpr() -> impl Strategy<Value = FpReg> {
    (0u8..8).prop_map(FpReg)
}

fn memref() -> impl Strategy<Value = MemRef> {
    // Data region: within a 64 KiB window at 0x40000 so accesses never
    // touch code or stack.
    (gpr().prop_map(Some), any::<bool>(), 0u8..4, 0i32..0x4000).prop_map(|(base, idx, sc, disp)| {
        MemRef {
            base: None,
            index: if idx { base } else { None },
            scale: Scale::from_bits(sc),
            disp: 0x4_0000 + disp,
        }
    })
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![Just(AluOp::Add), Just(AluOp::Sub), Just(AluOp::And), Just(AluOp::Or), Just(AluOp::Xor)]
}

fn shift_op() -> impl Strategy<Value = ShiftOp> {
    prop_oneof![Just(ShiftOp::Shl), Just(ShiftOp::Shr), Just(ShiftOp::Sar)]
}

fn fp_op() -> impl Strategy<Value = FpOp> {
    prop_oneof![Just(FpOp::Add), Just(FpOp::Sub), Just(FpOp::Mul)]
}

/// Straight-line (non-control-flow) instructions.
fn straightline_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (gpr(), gpr()).prop_map(|(dst, src)| Inst::MovRR { dst, src }),
        (gpr(), any::<i32>()).prop_map(|(dst, imm)| Inst::MovRI { dst, imm }),
        (alu_op(), gpr(), gpr()).prop_map(|(op, dst, src)| Inst::AluRR { op, dst, src }),
        (alu_op(), gpr(), -1000i32..1000).prop_map(|(op, dst, imm)| Inst::AluRI { op, dst, imm }),
        (gpr(), memref()).prop_map(|(dst, addr)| Inst::Load { dst, addr }),
        (memref(), gpr()).prop_map(|(addr, src)| Inst::Store { addr, src }),
        (alu_op(), gpr(), memref()).prop_map(|(op, dst, addr)| Inst::AluRM { op, dst, addr }),
        (alu_op(), memref(), gpr()).prop_map(|(op, addr, src)| Inst::AluMR { op, addr, src }),
        (gpr(), memref()).prop_map(|(dst, addr)| Inst::Lea { dst, addr }),
        (gpr(), memref(), any::<bool>()).prop_map(|(dst, addr, w)| Inst::LoadZx {
            dst,
            addr,
            width: if w { MemWidth::B2 } else { MemWidth::B1 },
        }),
        (gpr(), memref(), any::<bool>()).prop_map(|(dst, addr, w)| Inst::LoadSx {
            dst,
            addr,
            width: if w { MemWidth::B2 } else { MemWidth::B1 },
        }),
        (memref(), gpr(), any::<bool>()).prop_map(|(addr, src, w)| Inst::StoreN {
            addr,
            src,
            width: if w { MemWidth::B2 } else { MemWidth::B1 },
        }),
        (gpr(), gpr()).prop_map(|(a, b)| Inst::CmpRR { a, b }),
        (gpr(), any::<i32>()).prop_map(|(a, imm)| Inst::CmpRI { a, imm }),
        (gpr(), gpr()).prop_map(|(a, b)| Inst::TestRR { a, b }),
        (shift_op(), gpr(), 0u8..32).prop_map(|(op, dst, amount)| Inst::Shift { op, dst, amount }),
        (shift_op(), gpr()).prop_map(|(op, dst)| Inst::ShiftCl { op, dst }),
        (gpr(), gpr()).prop_map(|(dst, src)| Inst::Imul { dst, src }),
        (gpr(), gpr()).prop_map(|(dst, src)| Inst::Idiv { dst, src }),
        gpr().prop_map(|dst| Inst::Neg { dst }),
        gpr().prop_map(|dst| Inst::Not { dst }),
        gpr().prop_map(|src| Inst::Push { src }),
        gpr().prop_map(|dst| Inst::Pop { dst }),
        (fpr(), fpr()).prop_map(|(dst, src)| Inst::FMovRR { dst, src }),
        (fpr(), memref()).prop_map(|(dst, addr)| Inst::FLoad { dst, addr }),
        (memref(), fpr()).prop_map(|(addr, src)| Inst::FStore { addr, src }),
        (fp_op(), fpr(), fpr()).prop_map(|(op, dst, src)| Inst::FArith { op, dst, src }),
        (fpr(), gpr()).prop_map(|(dst, src)| Inst::CvtIF { dst, src }),
        (gpr(), fpr()).prop_map(|(dst, src)| Inst::CvtFI { dst, src }),
        Just(Inst::Nop),
    ]
}

/// Any instruction, including control flow with bounded targets.
fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        8 => straightline_inst(),
        1 => (0u8..12, 0u32..64).prop_map(|(c, _t)| Inst::Jcc {
            cond: Cond::from_bits(c).unwrap(),
            target: 0, // patched by the program builder
        }),
    ]
}

/// Builds a runnable program: a counted loop whose body is the random
/// instruction sequence (conditional branches become short forward
/// skips), so it always terminates and exercises IM, BBM and SBM.
fn build_program(body: &[Inst], iters: i32) -> (GuestMem, CpuState) {
    let mut a = Asm::new(0x1000);
    let top = a.fresh_label();
    a.push(Inst::MovRI { dst: Gpr::Ebp, imm: iters });
    a.bind(top);
    let mut i = 0;
    while i < body.len() {
        match body[i] {
            Inst::Jcc { cond, .. } => {
                let skip = a.fresh_label();
                a.push_jcc(cond, skip);
                // Up to two skipped instructions (must be straight-line).
                let mut skipped = 0;
                while skipped < 2 && i + 1 + skipped < body.len() {
                    if let Inst::Jcc { .. } = body[i + 1 + skipped] {
                        break;
                    }
                    a.push(sanitize_ebp(body[i + 1 + skipped]));
                    skipped += 1;
                }
                a.bind(skip);
                i += 1 + skipped;
            }
            // ebp is the loop counter: redirect writes away from it.
            inst => {
                a.push(sanitize_ebp(inst));
                i += 1;
            }
        }
    }
    a.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Ebp, imm: 1 });
    a.push_jcc(Cond::Ne, top);
    a.push(Inst::Halt);
    let p = a.assemble();
    let mut mem = GuestMem::new();
    mem.write_bytes(p.base, &p.bytes);
    // Seed the data window with nonzero values.
    for w in (0..0x8000u32).step_by(4) {
        mem.write_u32(0x4_0000 + w, w.wrapping_mul(2654435761));
    }
    let mut cpu = CpuState::at(p.base);
    cpu.set_gpr(Gpr::Esp, 0x9_0000);
    (mem, cpu)
}

/// Replaces writes to `ebp` (the harness loop counter) with `edx`.
fn sanitize_ebp(inst: Inst) -> Inst {
    let fix = |r: Gpr| if r == Gpr::Ebp { Gpr::Edx } else { r };
    use Inst::*;
    match inst {
        MovRR { dst, src } => MovRR { dst: fix(dst), src },
        MovRI { dst, imm } => MovRI { dst: fix(dst), imm },
        Load { dst, addr } => Load { dst: fix(dst), addr },
        LoadZx { dst, addr, width } => LoadZx { dst: fix(dst), addr, width },
        LoadSx { dst, addr, width } => LoadSx { dst: fix(dst), addr, width },
        Lea { dst, addr } => Lea { dst: fix(dst), addr },
        AluRR { op, dst, src } => AluRR { op, dst: fix(dst), src },
        AluRI { op, dst, imm } => AluRI { op, dst: fix(dst), imm },
        AluRM { op, dst, addr } => AluRM { op, dst: fix(dst), addr },
        Shift { op, dst, amount } => Shift { op, dst: fix(dst), amount },
        ShiftCl { op, dst } => ShiftCl { op, dst: fix(dst) },
        Imul { dst, src } => Imul { dst: fix(dst), src },
        Idiv { dst, src } => Idiv { dst: fix(dst), src },
        Neg { dst } => Neg { dst: fix(dst) },
        Not { dst } => Not { dst: fix(dst) },
        Pop { dst } => Pop { dst: fix(dst) },
        CvtFI { dst, src } => CvtFI { dst: fix(dst), src },
        other => other,
    }
}

fn run_reference(mem: &GuestMem, cpu: &CpuState) -> (CpuState, u64) {
    let mut mem = mem.clone();
    let mut cpu = cpu.clone();
    let mut n = 0;
    while !cpu.halted {
        exec::step(&mut cpu, &mut mem).expect("reference decode");
        n += 1;
        assert!(n < 10_000_000, "reference runaway");
    }
    (cpu, n)
}

fn run_tol(mem: &GuestMem, cpu: &CpuState, cfg: TolConfig) -> (CpuState, u64) {
    let mut mem = mem.clone();
    let mut tol = Tol::new(cfg, cpu.eip);
    tol.set_state(cpu);
    let mut sink = |_: &DynInst| {};
    let n = tol.run(&mut mem, &mut sink, 10_000_000).expect("tol run");
    (tol.emulated_state(), n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The co-simulation invariant, as a property over random programs:
    /// interpreter-only, BBM-only and full-SBM executions all match the
    /// functional reference bit-for-bit, at every threshold setting.
    #[test]
    fn translation_preserves_architecture(
        body in proptest::collection::vec(any_inst(), 4..40),
        iters in 3i32..40,
    ) {
        let (mem, cpu) = build_program(&body, iters);
        let (ref_cpu, ref_n) = run_reference(&mem, &cpu);

        for cfg in [
            // Interpreter only (promotion unreachable).
            TolConfig { im_bb_threshold: u32::MAX, ..TolConfig::default() },
            // BBM only.
            TolConfig { im_bb_threshold: 1, bb_sb_threshold: u32::MAX, ..TolConfig::default() },
            // Aggressive SBM.
            TolConfig { im_bb_threshold: 1, bb_sb_threshold: 2, ..TolConfig::default() },
            // SBM with no optimization passes.
            TolConfig { im_bb_threshold: 1, bb_sb_threshold: 2, ..TolConfig::no_optimization() },
        ] {
            let (emu_cpu, emu_n) = run_tol(&mem, &cpu, cfg.clone());
            prop_assert_eq!(emu_n, ref_n, "instruction count under {:?}", cfg);
            prop_assert!(
                ref_cpu.arch_eq(&emu_cpu),
                "state mismatch\nref: {}\nemu: {}",
                ref_cpu,
                emu_cpu
            );
        }
    }

    /// Decoder round-trip on random straight-line instructions.
    #[test]
    fn encode_decode_roundtrip(inst in straightline_inst()) {
        let bytes = darco::guest::encode::encode_to_vec(&inst);
        let (back, len) = darco::guest::decode(&bytes).expect("decode");
        prop_assert_eq!(back, inst);
        prop_assert_eq!(len, bytes.len());
    }

    /// The decoder never panics on arbitrary bytes and never reads past
    /// the declared instruction length.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 1..16)) {
        if let Ok((_, len)) = darco::guest::decode(&bytes) {
            prop_assert!(len <= bytes.len());
            prop_assert!(len <= darco::guest::exec::MAX_INST_LEN);
        }
    }

    /// Flag algebra matches two's-complement arithmetic.
    #[test]
    fn flag_semantics(a in any::<u32>(), b in any::<u32>()) {
        use darco::guest::Flags;
        let add = Flags::add(a, b);
        prop_assert_eq!(add.zf, a.wrapping_add(b) == 0);
        prop_assert_eq!(add.cf, a.checked_add(b).is_none());
        prop_assert_eq!(add.sf, (a.wrapping_add(b) as i32) < 0);
        prop_assert_eq!(add.of, (a as i32).checked_add(b as i32).is_none());
        let sub = Flags::sub(a, b);
        prop_assert_eq!(sub.zf, a == b);
        prop_assert_eq!(sub.cf, a < b);
        prop_assert_eq!(sub.of, (a as i32).checked_sub(b as i32).is_none());
    }

    /// Caches: an access immediately after an access to the same line is
    /// always a hit, regardless of history.
    #[test]
    fn cache_hit_after_fill(addrs in proptest::collection::vec(0u64..(1 << 22), 1..200)) {
        use darco::timing::cache::{Cache, Lookup};
        let mut c = Cache::new(darco::timing::TimingConfig::default().l1d);
        for a in addrs {
            c.access(a);
            prop_assert_eq!(c.access(a), Lookup::Hit);
        }
    }

    /// Timing monotonicity: extending an instruction stream never
    /// reduces total cycles, and cycles always cover insts/width.
    #[test]
    fn pipeline_monotone(n in 1usize..400, seed in any::<u64>()) {
        use darco::host::stream::{int_reg, DynInst};
        use darco::host::{Component, ExecClass};
        use darco::timing::{Pipeline, TimingConfig};
        let mut p = Pipeline::new(TimingConfig::default());
        let mut x = seed | 1;
        let mut prev = 0;
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            let d = if x & 3 == 0 {
                DynInst::plain(i as u64 * 4, ExecClass::Load, Component::AppCode)
                    .with_dst(int_reg(2))
                    .with_mem((x >> 8) % (1 << 20), 4, false)
            } else {
                DynInst::plain(i as u64 * 4, ExecClass::SimpleInt, Component::AppCode)
                    .with_dst(int_reg(3))
                    .with_srcs(int_reg(2), u8::MAX)
            };
            p.retire(&d);
            let s = p.snapshot();
            prop_assert!(s.total_cycles >= prev, "cycles must be monotone");
            prev = s.total_cycles;
        }
        let s = p.snapshot();
        prop_assert!(s.total_cycles as f64 >= n as f64 / 2.0);
        prop_assert_eq!(s.total_insts(), n as u64);
    }
}
