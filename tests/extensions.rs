//! Integration tests for the implemented Sec. III-E proposals: each
//! extension must (a) keep emulation architecturally exact and (b) move
//! the microarchitectural needle in the direction the paper predicts.

use darco::core::experiments::{run_bench, RunConfig};
use darco::host::Owner;
use darco::tol::TolConfig;
use darco::workloads::suites;

fn run_with(tol: TolConfig, scale: f64) -> darco::core::BenchRun {
    let profile = suites::quicktest_profile();
    // Co-simulation on: any functional deviation panics.
    let cfg = RunConfig { scale, cosim: true, tol, ..RunConfig::default() };
    run_bench(&profile, &cfg)
}

fn base_tol() -> TolConfig {
    darco::core::scaled_tol_config()
}

#[test]
fn software_prefetching_reduces_app_dcache_misses() {
    let base = run_with(base_tol(), 1.0);
    let pf = run_with(TolConfig { opt_sw_prefetch: true, ..base_tol() }, 1.0);
    // Same functional run (co-sim checked in both); misses must not grow
    // meaningfully and should typically shrink.
    let b = base.report.timing.d_miss_rate(Owner::App);
    let p = pf.report.timing.d_miss_rate(Owner::App);
    assert!(p <= b * 1.02, "prefetching must not increase the app D$ miss rate: {p} vs {b}");
    assert_eq!(base.report.guest_insts, pf.report.guest_insts);
}

#[test]
fn speculative_indirect_resolution_pays_off_on_stable_targets() {
    let base = run_with(base_tol(), 1.0);
    let spec = run_with(TolConfig { speculate_indirect: true, ..base_tol() }, 1.0);
    let c = spec.report.tol.counters;
    assert!(c.spec_hits > 0, "stable return sites must speculate");
    assert!(c.spec_hits > c.spec_misses, "hits {} must beat misses {}", c.spec_hits, c.spec_misses);
    // Fewer IBTC probes: speculation short-circuits them.
    assert!(
        spec.report.tol.ibtc_hits + spec.report.tol.ibtc_misses
            < base.report.tol.ibtc_hits + base.report.tol.ibtc_misses,
        "speculation must shed IBTC traffic"
    );
    assert_eq!(base.report.guest_insts, spec.report.guest_insts);
}

#[test]
fn scattered_code_placement_costs_icache_misses_and_cycles() {
    let packed = run_with(base_tol(), 1.0);
    let scattered = run_with(TolConfig { codecache_scattered: true, ..base_tol() }, 1.0);
    let pi = packed.report.timing.i_miss_rate(Owner::App);
    let si = scattered.report.timing.i_miss_rate(Owner::App);
    assert!(si > pi * 1.5, "page-aligned placement must inflate I$ misses: {si} vs {pi}");
    assert!(
        scattered.report.timing.total_cycles > packed.report.timing.total_cycles,
        "and that must cost cycles: {} vs {}",
        scattered.report.timing.total_cycles,
        packed.report.timing.total_cycles
    );
    assert_eq!(packed.report.guest_insts, scattered.report.guest_insts);
}

#[test]
fn all_extensions_together_remain_exact() {
    // Everything on at once, co-sim checked.
    let all = run_with(
        TolConfig {
            opt_sw_prefetch: true,
            speculate_indirect: true,
            codecache_scattered: true,
            ..base_tol()
        },
        0.5,
    );
    assert!(all.report.cosim_checks > 0);
    assert!(all.report.guest_insts > 0);
}
