//! Calibration regression tests: the cross-benchmark *orderings* the
//! paper's analysis rests on must hold whenever the workload generator or
//! the cost models change. These run at a reduced scale, so they check
//! ordering, not magnitude (magnitudes are EXPERIMENTS.md's job).

use darco::core::experiments::{fig6, run_bench, run_set_parallel, RunConfig};
use darco::host::{Component, Owner};
use darco::workloads::suites;

fn cfg() -> RunConfig {
    RunConfig { scale: 0.35, ..RunConfig::default() }
}

fn named(names: &[&str]) -> Vec<darco::workloads::BenchProfile> {
    names.iter().map(|n| suites::by_name(n).expect("known benchmark")).collect()
}

#[test]
fn repetition_gradient_drives_overhead() {
    // Paper Sec. III-B: 462.libquantum (385K dyn/static) amortizes the
    // layer; 000.cjpeg (low repetition) does not. 433.milc shares
    // cjpeg's footprint but not its dynamic length.
    let runs = run_set_parallel(&named(&["462.libquantum", "433.milc", "000.cjpeg"]), &cfg(), 3);
    let f6 = fig6(&runs);
    let by = |n: &str| f6.iter().find(|r| r.name == n).unwrap().overhead;
    assert!(
        by("462.libquantum") < by("433.milc"),
        "libquantum {} !< milc {}",
        by("462.libquantum"),
        by("433.milc")
    );
    assert!(
        by("433.milc") < by("000.cjpeg"),
        "milc {} !< cjpeg {}",
        by("433.milc"),
        by("000.cjpeg")
    );
    // And the dynamic/static ratios line up the same way, inverted.
    let ratio = |n: &str| runs.iter().find(|r| r.name == n).unwrap().dyn_static_ratio;
    assert!(ratio("462.libquantum") > ratio("433.milc"));
    assert!(ratio("433.milc") > ratio("000.cjpeg"));
}

#[test]
fn indirect_branches_drive_lookup_time() {
    // Paper Sec. III-B: 400.perlbench (22.7M indirect branches) vs
    // 401.bzip2 (1933): code-cache lookups and transitions must differ
    // accordingly.
    let runs = run_set_parallel(&named(&["400.perlbench", "401.bzip2"]), &cfg(), 2);
    let perl = &runs[0];
    let bzip = &runs[1];

    let ind_rate = |r: &darco::core::BenchRun| {
        r.report.tol.counters.indirect_branches as f64 / r.report.guest_insts as f64
    };
    // At this reduced scale bzip2's warm-up calls inflate its density
    // floor; the full-scale separation is an order of magnitude
    // (EXPERIMENTS.md).
    assert!(
        ind_rate(perl) > 2.5 * ind_rate(bzip),
        "indirect density must separate the two: {} vs {}",
        ind_rate(perl),
        ind_rate(bzip)
    );

    let lookup_share =
        |r: &darco::core::BenchRun| r.report.timing.component_share(Component::TolLookup);
    // At this reduced scale both pay start-up lookup costs, so the gap
    // is a factor, not an order of magnitude (the full-scale gap is in
    // EXPERIMENTS.md).
    assert!(
        lookup_share(perl) > 1.3 * lookup_share(bzip),
        "perlbench must pay more in Code$ look-up: {} vs {}",
        lookup_share(perl),
        lookup_share(bzip)
    );
    assert!(
        perl.report.tol.counters.tol_entries > 2 * bzip.report.tol.counters.tol_entries,
        "perlbench transitions into the layer more"
    );
}

#[test]
fn fp_suite_character() {
    // SPEC FP profiles produce FP-heavy, streaming, low-overhead runs
    // relative to a branchy INT profile.
    let runs = run_set_parallel(&named(&["436.cactusADM", "445.gobmk"]), &cfg(), 2);
    let fp = &runs[0].report;
    let int = &runs[1].report;
    assert!(
        fp.timing.tol_overhead_share() < int.timing.tol_overhead_share(),
        "FP overhead {} !< INT overhead {}",
        fp.timing.tol_overhead_share(),
        int.timing.tol_overhead_share()
    );
    // Streaming FP code predicts better than branchy game-tree code.
    assert!(
        fp.timing.mispredict_rate(Owner::App) < int.timing.mispredict_rate(Owner::App),
        "FP mispredicts {} !< INT {}",
        fp.timing.mispredict_rate(Owner::App),
        int.timing.mispredict_rate(Owner::App)
    );
}

#[test]
fn concentrated_vs_spread_superblocks() {
    // Paper Sec. III-B: 006.jpg2000dec concentrates execution in few
    // blocks; 007.jpg2000enc spreads it near the promotion threshold,
    // creating far more superblocks (96 vs 450 in the paper).
    let runs = run_set_parallel(&named(&["006.jpg2000dec", "007.jpg2000enc"]), &cfg(), 2);
    let dec = runs[0].report.tol.counters.sbm_invocations;
    let enc = runs[1].report.tol.counters.sbm_invocations;
    assert!(enc > 2 * dec, "spread execution must create more superblocks: {enc} vs {dec}");
}

#[test]
fn interaction_worst_case_is_perlbench_class() {
    // Paper Sec. III-D / Fig. 10: frequent TOL transitions (perlbench)
    // produce a clearly larger interaction penalty than the amortized
    // case (lbm).
    let runs = run_set_parallel(&named(&["400.perlbench", "470.lbm"]), &cfg(), 2);
    let f10 = darco::core::experiments::fig10(&runs);
    let penalty = |i: usize| 1.0 - (f10[i].app_rel + f10[i].tol_rel) / 2.0;
    assert!(
        penalty(0) > penalty(1),
        "perlbench penalty {} !> lbm penalty {}",
        penalty(0),
        penalty(1)
    );
}

#[test]
fn quicktest_overhead_stable_band() {
    // A coarse tripwire against accidental cost-model drift: the
    // quicktest profile's overhead at a fixed scale stays within a wide
    // band. If this fails after an intentional recalibration, update the
    // band and EXPERIMENTS.md together.
    let run =
        run_bench(&suites::quicktest_profile(), &RunConfig { scale: 1.0, ..RunConfig::default() });
    let ov = run.report.timing.tol_overhead_share();
    assert!((0.05..0.45).contains(&ov), "quicktest overhead drifted: {ov}");
}
