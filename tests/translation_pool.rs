//! Determinism of the background translation pool (DESIGN.md §15).
//!
//! The pool moves the Rust-side compile work of a BBM/SBM translation
//! onto worker threads, overlapped with emulation, but joins every job
//! at the same deterministic simulated install point the synchronous
//! path uses. The contract these tests pin: the serialized [`Report`]
//! (and the engine-level [`RunSummary`]) is byte-identical for
//! `translate_workers` ∈ {0, 1, 4} — across timing backends, with and
//! without co-simulation, and under self-modifying code that lands
//! between enqueue and install.
//!
//! [`Report`]: darco::core::Report
//! [`RunSummary`]: darco::tol::RunSummary

use darco::core::{Report, System, SystemConfig, TimingBackendKind};
use darco::guest::asm::Asm;
use darco::guest::{AluOp, Cond, CpuState, Gpr, GuestMem, Inst};
use darco::tol::{Tol, TolConfig};
use darco::workloads::{generate, suites};

/// The pool sizes under test: the synchronous oracle, one worker
/// (maximum queueing pressure), and more workers than this container
/// typically has cores.
const WORKERS: [usize; 3] = [0, 1, 4];

fn fingerprint<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serialize")
}

fn run_system(backend: TimingBackendKind, cosim: bool, workers: usize, scale: f64) -> Report {
    let mut cfg = SystemConfig {
        cosim,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        window_guest_insts: 20_000,
        timing_backend: backend,
        ..SystemConfig::default()
    };
    cfg.tol.translate_workers = workers;
    let mut sys = System::new(generate(&suites::all_profiles()[0], scale), cfg);
    sys.run_to_completion()
}

#[test]
fn pool_reports_are_bit_identical_across_backends() {
    // The acceptance matrix: every timing backend, every pool size,
    // one serialized report.
    for backend in
        [TimingBackendKind::Inline, TimingBackendKind::Threaded, TimingBackendKind::Fanout]
    {
        let reference = run_system(backend, false, 0, 0.04);
        assert!(reference.timing.total_cycles > 0);
        for &w in &WORKERS[1..] {
            let pooled = run_system(backend, false, w, 0.04);
            assert_eq!(
                fingerprint(&reference),
                fingerprint(&pooled),
                "backend {backend:?} diverged between translate_workers 0 and {w}"
            );
        }
    }
}

#[test]
fn pool_reports_are_bit_identical_with_cosim() {
    let reference = run_system(TimingBackendKind::Inline, true, 0, 0.03);
    assert!(reference.cosim_checks > 0, "checker must run as a sink");
    for &w in &WORKERS[1..] {
        let pooled = run_system(TimingBackendKind::Inline, true, w, 0.03);
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&pooled),
            "cosim run diverged between translate_workers 0 and {w}"
        );
    }
}

/// A call-in-a-counted-loop program (the engine tests' shape): the loop
/// body and the callee both cross the BBM and SBM thresholds, so the
/// run exercises both job kinds.
fn loop_program(iters: i32) -> (GuestMem, u32) {
    let mut a = Asm::new(0x1000);
    let top = a.fresh_label();
    let func = a.fresh_label();
    let start = a.fresh_label();
    a.push_jmp(start);
    a.bind(func);
    a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Ebx, imm: 3 });
    a.push(Inst::Ret);
    a.bind(start);
    a.push(Inst::MovRI { dst: Gpr::Eax, imm: 0 });
    a.push(Inst::MovRI { dst: Gpr::Ebx, imm: 0 });
    a.bind(top);
    a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
    a.push_call(func);
    a.push(Inst::CmpRI { a: Gpr::Eax, imm: iters });
    a.push_jcc(Cond::Ne, top);
    a.push(Inst::Halt);
    let p = a.assemble();
    let mut mem = GuestMem::new();
    mem.write_bytes(p.base, &p.bytes);
    (mem, p.base)
}

fn fresh_tol(cfg: &TolConfig, entry: u32) -> Tol {
    let mut tol = Tol::new(cfg.clone(), entry);
    let mut cpu = CpuState::at(entry);
    cpu.set_gpr(Gpr::Esp, 0x10_0000);
    tol.set_state(&cpu);
    tol
}

/// SplitMix64 — a tiny deterministic stream for the step budgets.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Steps the engine with a seeded pseudo-random budget schedule and
/// performs (idempotent) guest code-page writes at fixed step indices —
/// so every `translate_workers` setting sees the identical interleaving
/// of emulation, SMC writes, and install points. Returns the summary
/// and final architectural state.
fn run_interleaved(
    cfg: &TolConfig,
    seed: u64,
    write_steps: &[usize],
) -> (darco::tol::RunSummary, CpuState, darco::tol::TranslationPoolStats) {
    let (mut mem, entry) = loop_program(4_000);
    let mut tol = fresh_tol(cfg, entry);
    let mut sink = darco::host::NullSink;
    let mut rng = seed;
    let mut step = 0usize;
    while !tol.is_done() {
        if write_steps.contains(&step) {
            // An idempotent write still bumps the page write generation,
            // which must invalidate resident translations *and* pending
            // pool jobs whose snapshot covers the page.
            let byte = mem.read_u8(entry);
            mem.write_u8(entry, byte);
        }
        let budget = 1 + splitmix(&mut rng) % 400;
        tol.step(&mut mem, &mut sink, budget).expect("step");
        step += 1;
    }
    (tol.summary(), tol.emulated_state(), tol.pool_stats())
}

#[test]
fn interleaved_smc_runs_are_bit_identical_across_pool_sizes() {
    // A randomized (but seeded) enqueue/SMC-write/install interleaving:
    // writes land early (during BBM warm-up, when jobs are in flight),
    // mid-run, and late (SBM territory). The engine-level summary and
    // the architectural state must not depend on the pool size.
    for seed in [1u64, 0xDEAD_BEEF, 42] {
        let write_steps = [3usize, 11, 29, 64];
        let mut cfg =
            TolConfig { bb_sb_threshold: 60, translate_workers: 0, ..TolConfig::default() };
        let (ref_summary, ref_cpu, _) = run_interleaved(&cfg, seed, &write_steps);
        assert!(ref_summary.cache.smc_evictions > 0, "writes must hit translated pages");
        for &w in &WORKERS[1..] {
            cfg.translate_workers = w;
            let (summary, cpu, _) = run_interleaved(&cfg, seed, &write_steps);
            assert_eq!(
                fingerprint(&ref_summary),
                fingerprint(&summary),
                "seed {seed:#x}: summary diverged between translate_workers 0 and {w}"
            );
            assert!(ref_cpu.arch_eq(&cpu), "seed {seed:#x}: architectural state diverged");
        }
    }
}

/// Drives a run with `translate_workers = 1`, waits (in simulated
/// steps) until a compile job is actually in flight, then writes the
/// code page under it: the pending job must be discarded at its install
/// point and the block recompiled from the fresh bytes.
#[test]
fn code_page_write_invalidates_pending_jobs() {
    let (mut mem, entry) = loop_program(4_000);
    let mut cfg = TolConfig { bb_sb_threshold: 60, translate_workers: 1, ..TolConfig::default() };
    let mut tol = fresh_tol(&cfg, entry);
    let mut sink = darco::host::NullSink;
    // Single-instruction budgets give the finest install granularity:
    // a BBM job is enqueued at the threshold-reaching dispatch and
    // consumed one dispatch of that block later, so stepping by one
    // guest instruction is guaranteed to observe the in-flight window.
    let mut write_step = None;
    let mut step = 0usize;
    while !tol.is_done() {
        let s = tol.pool_stats();
        let settled = s.installed_from_pool + s.discarded_smc + s.discarded_stale;
        if write_step.is_none() && s.jobs_enqueued > settled {
            let byte = mem.read_u8(entry);
            mem.write_u8(entry, byte);
            write_step = Some(step);
        }
        tol.step(&mut mem, &mut sink, 1).expect("step");
        step += 1;
    }
    let write_step = write_step.expect("a compile job must have been in flight");
    let stats = tol.pool_stats();
    assert!(stats.jobs_enqueued >= 1, "pool must have been used");
    assert!(
        stats.discarded_smc >= 1,
        "the code-page write must invalidate the pending job: {stats:?}"
    );

    // The same schedule against the synchronous oracle: byte-identical
    // summary and architectural state.
    let (mut mem0, _) = loop_program(4_000);
    cfg.translate_workers = 0;
    let mut tol0 = fresh_tol(&cfg, entry);
    let mut step = 0usize;
    while !tol0.is_done() {
        if step == write_step {
            let byte = mem0.read_u8(entry);
            mem0.write_u8(entry, byte);
        }
        tol0.step(&mut mem0, &mut sink, 1).expect("step");
        step += 1;
    }
    assert_eq!(fingerprint(&tol0.summary()), fingerprint(&tol.summary()));
    assert!(tol0.emulated_state().arch_eq(&tol.emulated_state()));
}

/// `translate_workers = 0` must not spawn any pool machinery, and the
/// stats must say so.
#[test]
fn zero_workers_disables_the_pool() {
    let (mut mem, entry) = loop_program(1_000);
    let cfg = TolConfig { translate_workers: 0, ..TolConfig::default() };
    let mut tol = fresh_tol(&cfg, entry);
    let mut sink = darco::host::NullSink;
    tol.run(&mut mem, &mut sink, u64::MAX).expect("run");
    let stats = tol.pool_stats();
    assert_eq!(stats.workers, 0);
    assert_eq!(stats.jobs_enqueued, 0);
    assert_eq!(stats.installed_from_pool, 0);
    assert!(tol.summary().installed > 0, "translations still happen synchronously");
}
