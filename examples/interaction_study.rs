//! Reproduce the paper's Sec. III-D interaction study on one benchmark:
//! how much does sharing the core's caches, predictor and prefetcher
//! between the software layer and the application cost each of them?
//!
//! One functional run feeds three timing pipelines (shared, APP-only,
//! TOL-only) — the same methodology as Figs. 10 and 11.
//!
//! ```text
//! cargo run --release --example interaction_study [benchmark-name]
//! ```

use darco::core::experiments::{fig10, fig11_app, fig11_tol, run_bench, RunConfig};
use darco::timing::BubbleCause;
use darco::workloads::suites;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "400.perlbench".to_string());
    let profile = suites::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name}; try e.g. 400.perlbench or 470.lbm");
        std::process::exit(2);
    });

    println!("running {name} with shared and isolated timing pipelines ...");
    let cfg = RunConfig { scale: 1.0, ..RunConfig::default() };
    let runs = vec![run_bench(&profile, &cfg)];

    let f10 = fig10(&runs);
    let row = &f10[0];
    println!("\nFig. 10 view (cycles without interaction / with):");
    println!(
        "  application : {:.3}  ({:.1}% faster alone)",
        row.app_rel,
        (1.0 - row.app_rel) * 100.0
    );
    println!(
        "  TOL         : {:.3}  ({:.1}% faster alone)",
        row.tol_rel,
        (1.0 - row.tol_rel) * 100.0
    );

    let labels = ["D$ miss", "I$ miss", "scheduling", "branch"];
    println!("\nFig. 11 view (potential gain per resource, % of execution time):");
    let tol = &fig11_tol(&runs)[0];
    let app = &fig11_app(&runs)[0];
    println!("  {:12} {:>8} {:>8}", "resource", "TOL", "APP");
    for (label, (t, a)) in labels.iter().zip(tol.gains.iter().zip(app.gains.iter())) {
        println!("  {label:12} {:>7.2}% {:>7.2}%", t * 100.0, a * 100.0);
    }

    let shared = &runs[0].report.timing;
    println!("\nshared-run bubble profile (of total time):");
    for c in BubbleCause::ALL {
        let t = (shared.owner_bubbles(darco::host::Owner::App, c)
            + shared.owner_bubbles(darco::host::Owner::Tol, c))
            / shared.attributed_time();
        println!("  {:24} {:5.1}%", c.label(), t * 100.0);
    }
    println!(
        "\nThe paper's conclusion holds when the data-cache row dominates: the \
         code-cache lookup tables and the guest's working set evict each other \
         (the 'ping-pong' of Sec. III-D)."
    );
}
