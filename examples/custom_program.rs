//! Run your *own* guest program through the co-designed processor.
//!
//! The roster in `darco_workloads` covers the paper's benchmarks, but the
//! stack is a library: write guest assembly with [`darco::guest::asm::Asm`],
//! hand it to the software layer, and watch it move through the three
//! execution modes while the timing model meters every host instruction.
//!
//! The program below computes a checksum over a table with a hot inner
//! loop (promoted to an optimized superblock), a function call per outer
//! iteration (exercising the IBTC on returns), and cold setup code
//! (which stays interpreted).
//!
//! ```text
//! cargo run --release --example custom_program
//! ```

use darco::guest::asm::Asm;
use darco::guest::{exec, AluOp, Cond, CpuState, Gpr, GuestMem, Inst, MemRef};
use darco::host::{DynInst, RetireSink};
use darco::timing::{Pipeline, TimingConfig};
use darco::tol::{Tol, TolConfig};

fn build_program() -> (GuestMem, CpuState) {
    let mut a = Asm::new(0x1000);
    let table = 0x10_0000u32;

    let sum_fn = a.fresh_label();
    let start = a.fresh_label();
    a.push_jmp(start);

    // u32 sum_fn(): checksum 256 table entries into ebx.
    a.bind(sum_fn);
    let loop_top = a.fresh_label();
    a.push(Inst::MovRI { dst: Gpr::Esi, imm: 0 });
    a.push(Inst::MovRI { dst: Gpr::Ecx, imm: 256 });
    a.bind(loop_top);
    a.push(Inst::AluRM {
        op: AluOp::Add,
        dst: Gpr::Ebx,
        addr: MemRef::base(Gpr::Esi, table as i32),
    });
    a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Esi, imm: 4 });
    a.push(Inst::Shift { op: darco::guest::ShiftOp::Shl, dst: Gpr::Ebx, amount: 1 });
    a.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Ecx, imm: 1 });
    a.push_jcc(Cond::Ne, loop_top);
    a.push(Inst::Ret);

    // Cold setup: fill the table once (stays in the interpreter).
    a.bind(start);
    let fill_top = a.fresh_label();
    a.push(Inst::MovRI { dst: Gpr::Esi, imm: 0 });
    a.push(Inst::MovRI { dst: Gpr::Eax, imm: 0x1234_5678u32 as i32 });
    a.bind(fill_top);
    a.push(Inst::Store { addr: MemRef::base(Gpr::Esi, table as i32), src: Gpr::Eax });
    a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 0x9E37 });
    a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Esi, imm: 4 });
    a.push(Inst::CmpRI { a: Gpr::Esi, imm: 1024 });
    a.push_jcc(Cond::Ne, fill_top);

    // Hot phase: call the checksum 400 times.
    let outer = a.fresh_label();
    a.push(Inst::MovRI { dst: Gpr::Ebp, imm: 400 });
    a.bind(outer);
    a.push_call(sum_fn);
    a.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Ebp, imm: 1 });
    a.push_jcc(Cond::Ne, outer);
    a.push(Inst::Halt);

    let p = a.assemble();
    let mut mem = GuestMem::new();
    mem.write_bytes(p.base, &p.bytes);
    let mut cpu = CpuState::at(p.base);
    cpu.set_gpr(Gpr::Esp, 0x20_0000);
    (mem, cpu)
}

fn main() {
    let (mem, initial) = build_program();

    // Reference run on the authoritative emulator.
    let mut ref_mem = mem.clone();
    let mut ref_cpu = initial.clone();
    while !ref_cpu.halted {
        exec::step(&mut ref_cpu, &mut ref_mem).expect("reference");
    }

    // The co-designed stack: TOL + timing pipeline.
    let mut tol = Tol::new(TolConfig { bb_sb_threshold: 100, ..TolConfig::default() }, initial.eip);
    tol.set_state(&initial);
    let mut pipeline = Pipeline::new(TimingConfig::default());
    let mut emu_mem = mem;
    let mut sink = RetireSink(|d: &DynInst| pipeline.retire(d));
    let guest_insts = tol.run(&mut emu_mem, &mut sink, u64::MAX).expect("tol run");

    // Verify against the reference, then report.
    assert!(ref_cpu.arch_eq(&tol.emulated_state()), "architectural mismatch!");
    println!("checksum (ebx)      : {:#010x}", tol.emulated_state().gpr(Gpr::Ebx));
    println!("guest instructions  : {guest_insts}");
    let stats = pipeline.finish();
    println!("host cycles         : {}", stats.total_cycles);
    println!("IPC                 : {:.3}", stats.ipc());
    println!("TOL overhead        : {:.1}%", stats.tol_overhead_share() * 100.0);
    let s = tol.summary();
    println!(
        "modes (dyn insts)   : IM {} / BBM {} / SBM {}",
        s.dyn_dist[0], s.dyn_dist[1], s.dyn_dist[2]
    );
    println!("superblocks formed  : {}", s.counters.sbm_invocations);
    println!("returns through IBTC: {} hits / {} misses", s.ibtc_hits, s.ibtc_misses);
    println!("\nThe hot checksum loop was promoted to an optimized superblock; the cold");
    println!("table-fill ran interpreted; the call's returns went through the IBTC —");
    println!("the same staged pipeline the paper characterizes.");
}
