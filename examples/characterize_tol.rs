//! Characterize the software layer across contrasting workloads — a
//! miniature of the paper's Sec. III analysis.
//!
//! Picks the benchmarks the paper keeps returning to (the high-repetition
//! 462.libquantum and 470.lbm, the indirect-branch-heavy 400.perlbench,
//! and the interpreter-bound 000.cjpeg / 107.novis_ragdoll), runs each at
//! a reduced scale, and prints the TOL-centric view: overhead, module
//! split, and the TOL-in-isolation performance characteristics of Fig. 8.
//!
//! ```text
//! cargo run --release --example characterize_tol
//! ```

use darco::core::experiments::{run_bench, RunConfig};
use darco::host::{Component, Owner};
use darco::workloads::suites;

const PICKS: [&str; 5] =
    ["462.libquantum", "470.lbm", "400.perlbench", "000.cjpeg", "107.novis_ragdoll"];

fn main() {
    let cfg = RunConfig { scale: 0.5, ..RunConfig::default() };
    println!(
        "{:18} {:>9} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8} {:>9}",
        "benchmark", "dyn/stat", "ovhd%", "IM%", "SBM%", "look%", "TOL IPC", "TOL D$%", "TOL bp%"
    );
    for name in PICKS {
        let profile = suites::by_name(name).expect("known benchmark");
        let run = run_bench(&profile, &cfg);
        let t = &run.report.timing;
        let tol = run.report.tol_only.as_ref().expect("TOL pipeline");
        println!(
            "{:18} {:>9.0} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>8.2} {:>7.2}% {:>8.2}%",
            run.name,
            run.dyn_static_ratio,
            t.tol_overhead_share() * 100.0,
            t.component_share(Component::TolIm) * 100.0,
            t.component_share(Component::TolSbm) * 100.0,
            t.component_share(Component::TolLookup) * 100.0,
            tol.ipc(),
            tol.d_miss_rate(Owner::Tol) * 100.0,
            tol.mispredict_rate(Owner::Tol) * 100.0,
        );
    }
    println!(
        "\nReading the table the paper's way: high dyn/static ratio amortizes the layer \
         (libquantum, lbm); indirect branches inflate look-ups and transitions (perlbench); \
         low-repetition code leans on the interpreter (cjpeg, ragdoll). TOL's own IPC and \
         miss rates vary with the guest — it is not a constant-cost layer (Sec. III-C)."
    );
}
