//! Quickstart: run one workload through the full DARCO stack and print
//! the headline numbers the paper's evaluation is built from.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use darco::core::{Report, System};
use darco::host::Component;
use darco::workloads::suites;

fn main() {
    // A small synthetic workload (see `darco_workloads::suites` for the
    // paper's full 48-benchmark roster).
    let profile = suites::quicktest_profile();
    println!("benchmark: {} ({} target static instructions)", profile.name, profile.static_insts);

    // A System couples the software layer (TOL), the authoritative
    // functional emulator (co-simulation) and the cycle-level host
    // timing model.
    let mut system = System::from_profile(&profile);
    let report: Report = system.run_to_completion();

    println!("guest instructions retired : {}", report.guest_insts);
    println!("host instructions executed : {}", report.timing.total_insts());
    println!("host cycles                : {}", report.timing.total_cycles);
    println!("overall IPC                : {:.3}", report.timing.ipc());
    println!("co-simulation checks       : {} (all passed)", report.cosim_checks);

    println!("\nexecution-time breakdown (the paper's Fig. 6/7 view):");
    for c in Component::ALL {
        println!(
            "  {:14} {:6.2}%  ({} instructions)",
            c.label(),
            report.timing.component_share(c) * 100.0,
            report.timing.component_insts(c)
        );
    }

    let s = &report.tol;
    println!("\nguest code distribution (the paper's Fig. 5 view):");
    println!("  static [IM, BBM, SBM]  : {:?}", s.static_dist);
    println!("  dynamic [IM, BBM, SBM] : {:?}", s.dyn_dist);
    println!(
        "\nsoftware layer: {} superblocks, {} chains, {} IBTC hits / {} misses, {} flushes",
        s.counters.sbm_invocations, s.chains, s.ibtc_hits, s.ibtc_misses, s.flushes
    );
}
