//! # darco — umbrella crate for the DARCO reproduction
//!
//! A from-scratch Rust reproduction of the system behind *"Quantitative
//! Characterization of the Software Layer of a HW/SW Co-Designed
//! Processor"* (IISWC 2016): a DARCO-style simulation infrastructure with
//! a guest ISA, a Translation Optimization Layer (TOL), a cycle-level
//! in-order host timing model, and the paper's workloads and experiments.
//!
//! This crate simply re-exports the workspace members under one roof so
//! examples and downstream users can depend on a single crate:
//!
//! * [`guest`] — the x86-like guest ISA and functional emulator,
//! * [`host`] — the RISC host ISA and functional executor,
//! * [`tol`] — the software layer (the paper's subject),
//! * [`timing`] — the host pipeline timing model,
//! * [`workloads`] — benchmark profiles and the program generator,
//! * [`core`] — the DARCO controller, co-simulation and experiments.
//!
//! ```
//! use darco::core::System;
//! use darco::workloads::suites;
//!
//! // Run a tiny workload end to end and look at the execution breakdown.
//! let profile = suites::quicktest_profile();
//! let mut system = System::from_profile(&profile);
//! let report = system.run_to_completion();
//! assert!(report.timing.total_cycles > 0);
//! ```

pub use darco_core as core;
pub use darco_guest as guest;
pub use darco_host as host;
pub use darco_timing as timing;
pub use darco_tol as tol;
pub use darco_workloads as workloads;
