//! `darco` — the controller CLI (the paper's Fig. 2 *Controller*:
//! "the main interface of DARCO with the user. It provides full control
//! over the execution of the application, as well as debugging
//! utilities").
//!
//! ```text
//! darco list                         # the 48-benchmark roster
//! darco run <benchmark> [opts]      # full system run + report
//! darco run-set [benchmark ...]     # batch of runs across worker
//!                                    # threads (default: whole roster)
//! darco verify <benchmark> [opts]   # run with the IR verifier forced on
//! darco analyze <benchmark> [opts]  # dataflow facts + analysis-pass report
//! darco trace <benchmark> [opts]    # guest instruction trace
//! darco disasm <benchmark> [opts]   # hottest translations, disassembled
//! darco timeline <benchmark> [opts] # start-up/steady-state windows
//! darco export-profile <benchmark> <file.json>
//!                                    # dump a profile for editing
//! darco run --profile <file.json>   # run a custom edited profile
//!
//! options: --scale S            dynamic-length scale (default 0.5)
//!          --cache-policy P     code-cache overflow policy: flush
//!                               (default, whole-cache flush) or fifo
//!                               (partial eviction with space reuse and
//!                               selective unchaining)
//!          --cosim              enable co-simulation checking (run)
//!          --timing-backend B   schedule the timing simulator: auto
//!                               (default: inline on a single-CPU host,
//!                               fanout otherwise), inline, threaded
//!                               (one overlapped worker) or fanout (one
//!                               worker per pipeline); results are
//!                               bit-identical
//!          --threaded-timing    alias for --timing-backend threaded
//!          --block-memo on|off  steady-state block timing memoization
//!                               over macro-retire events (default on);
//!                               off expands every block through the
//!                               per-instruction oracle — reports are
//!                               byte-identical either way
//!          --guest-fast-path on|off
//!                               guest-layer fast path: pre-decoded
//!                               micro-op buffers with lazy flag
//!                               materialization plus width-native
//!                               memory access (default on); off runs
//!                               the decode-per-step byte oracle —
//!                               reports are byte-identical either way
//!          --translate-workers N
//!                               background translation pool size: the
//!                               Rust-side BBM/SBM compile work overlaps
//!                               with emulation on N threads, joined at
//!                               the deterministic install point so
//!                               reports are byte-identical; 0 =
//!                               synchronous oracle (default: all
//!                               available cores)
//!          --jobs N             worker threads for run-set (default:
//!                               all available cores)
//!          --n N                rows/instructions to print (trace/disasm)
//!          --json               machine-readable output (run, run-set)
//! ```

use darco_core::{Report, System, SystemConfig, TimingBackendKind};
use darco_host::{Component, HInst, Owner};
use darco_tol::codecache::{BlockKind, CachePolicy};
use darco_tol::{Tol, TolConfig};
use darco_workloads::{generate, suites, BenchProfile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return;
    };
    let rest = &args[1..];
    match command.as_str() {
        "list" => list(),
        "run" => run(rest),
        "run-set" => run_set(rest),
        "verify" => verify(rest),
        "analyze" => analyze(rest),
        "trace" => trace(rest),
        "disasm" => disasm(rest),
        "timeline" => timeline(rest),
        "export-profile" => export_profile(rest),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command: {other}");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "darco <list|run|run-set|verify|analyze|trace|disasm|timeline|export-profile> [benchmark ...] \
         [--profile FILE] [--scale S] [--cache-policy flush|fifo] [--cosim] \
         [--timing-backend auto|inline|threaded|fanout] [--threaded-timing] [--block-memo on|off] \
         [--guest-fast-path on|off] [--translate-workers N] [--jobs N] [--n N] [--json]"
    );
}

struct Opts {
    profile: BenchProfile,
    scale: f64,
    cosim: bool,
    timing_backend: TimingBackendKind,
    cache_policy: CachePolicy,
    /// `None` keeps [`TolConfig`]'s default (available parallelism).
    translate_workers: Option<usize>,
    /// `None` keeps both configs' default (on).
    block_memo: Option<bool>,
    /// `None` keeps [`TolConfig`]'s default (on).
    guest_fast_path: Option<bool>,
    n: usize,
    json: bool,
}

impl Opts {
    /// Applies the optional flags onto a TOL config.
    fn apply_tol(&self, tol: &mut TolConfig) {
        tol.cache_policy = self.cache_policy;
        if let Some(w) = self.translate_workers {
            tol.translate_workers = w;
        }
        if let Some(on) = self.block_memo {
            tol.block_memo = on;
        }
        if let Some(on) = self.guest_fast_path {
            tol.guest_fast_path = on;
        }
    }

    /// Applies the optional flags onto a full system config (the memo
    /// switch spans the engine and the timing side).
    fn apply_system(&self, cfg: &mut SystemConfig) {
        self.apply_tol(&mut cfg.tol);
        if let Some(on) = self.block_memo {
            cfg.timing.block_memo = on;
        }
    }
}

fn parse_cache_policy(v: &str) -> CachePolicy {
    v.parse().unwrap_or_else(|e: String| bail(&e))
}

fn parse_backend(v: &str) -> TimingBackendKind {
    match v {
        "auto" => TimingBackendKind::Auto,
        "inline" => TimingBackendKind::Inline,
        "threaded" => TimingBackendKind::Threaded,
        "fanout" => TimingBackendKind::Fanout,
        other => bail(&format!("unknown timing backend {other} (auto|inline|threaded|fanout)")),
    }
}

fn parse_on_off(flag: &str, v: &str) -> bool {
    match v {
        "on" => true,
        "off" => false,
        other => bail(&format!("{flag} needs on|off, got {other}")),
    }
}

fn parse(rest: &[String]) -> Opts {
    let mut profile = None;
    let mut scale = 0.5;
    let mut cosim = false;
    let mut timing_backend = TimingBackendKind::Auto;
    let mut cache_policy = CachePolicy::Flush;
    let mut translate_workers = None;
    let mut block_memo = None;
    let mut guest_fast_path = None;
    let mut n = 20;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => {
                let path = it.next().unwrap_or_else(|| bail("--profile needs a path"));
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| bail(&format!("read {path}: {e}")));
                let p: BenchProfile = serde_json::from_str(&text)
                    .unwrap_or_else(|e| bail(&format!("parse {path}: {e}")));
                p.validate().unwrap_or_else(|e| bail(&format!("invalid profile: {e}")));
                profile = Some(p);
            }
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bail("--scale needs a number"));
            }
            "--cosim" => cosim = true,
            "--timing-backend" => {
                let v = it.next().unwrap_or_else(|| bail("--timing-backend needs a mode"));
                timing_backend = parse_backend(v);
            }
            "--threaded-timing" => timing_backend = TimingBackendKind::Threaded,
            "--cache-policy" => {
                let v = it.next().unwrap_or_else(|| bail("--cache-policy needs flush|fifo"));
                cache_policy = parse_cache_policy(v);
            }
            "--translate-workers" => {
                translate_workers = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bail("--translate-workers needs a count")),
                );
            }
            "--block-memo" => {
                let v = it.next().unwrap_or_else(|| bail("--block-memo needs on|off"));
                block_memo = Some(parse_on_off("--block-memo", v));
            }
            "--guest-fast-path" => {
                let v = it.next().unwrap_or_else(|| bail("--guest-fast-path needs on|off"));
                guest_fast_path = Some(parse_on_off("--guest-fast-path", v));
            }
            "--json" => json = true,
            "--n" => {
                n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bail("--n needs a count"));
            }
            name if !name.starts_with('-') => {
                profile = Some(suites::by_name(name).unwrap_or_else(|| {
                    if name == "quicktest" {
                        suites::quicktest_profile()
                    } else {
                        bail(&format!("unknown benchmark {name}; try `darco list`"))
                    }
                }))
            }
            other => bail(&format!("unknown flag {other}")),
        }
    }
    Opts {
        profile: profile.unwrap_or_else(suites::quicktest_profile),
        scale,
        cosim,
        timing_backend,
        cache_policy,
        translate_workers,
        block_memo,
        guest_fast_path,
        n,
        json,
    }
}

fn bail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

// ----------------------------------------------------------------- list

fn list() {
    println!(
        "{:22} {:18} {:>8} {:>12} {:>6} {:>9}",
        "benchmark", "suite", "static", "dyn (base)", "fp%", "indirect"
    );
    for p in suites::all_profiles() {
        println!(
            "{:22} {:18} {:>8} {:>12} {:>5.0}% {:>9.5}",
            p.name,
            p.suite.label(),
            p.static_insts,
            p.dyn_base,
            p.fp_fraction * 100.0,
            p.indirect_freq,
        );
    }
    println!("\nplus `quicktest`, a small profile for experiments");
}

// ------------------------------------------------------------------ run

fn run(rest: &[String]) {
    let o = parse(rest);
    eprintln!("running {} at scale {} ...", o.profile.name, o.scale);
    let mut cfg = SystemConfig {
        cosim: o.cosim,
        timing_backend: o.timing_backend,
        ..SystemConfig::default()
    };
    o.apply_system(&mut cfg);
    let mut sys = System::new(generate(&o.profile, o.scale), cfg);
    let report = sys.run_to_completion();
    if o.json {
        println!("{}", serde_json::to_string_pretty(&report).expect("serialize"));
        return;
    }
    print_report(&report);
}

// -------------------------------------------------------------- run-set

/// `darco run-set`: runs a batch of benchmarks (the whole roster when
/// none are named) across `--jobs` worker threads. Each benchmark is an
/// independent system, so results are identical at any thread count;
/// only the wall-clock changes.
fn run_set(rest: &[String]) {
    let mut names: Vec<String> = Vec::new();
    let mut scale = 0.5;
    let mut jobs: Option<usize> = None;
    let mut cosim = false;
    let mut timing_backend = TimingBackendKind::Auto;
    let mut cache_policy = CachePolicy::Flush;
    let mut translate_workers: Option<usize> = None;
    let mut block_memo: Option<bool> = None;
    let mut guest_fast_path: Option<bool> = None;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bail("--scale needs a number"));
            }
            "--jobs" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bail("--jobs needs a thread count"));
                if n == 0 {
                    bail("--jobs must be at least 1");
                }
                jobs = Some(n);
            }
            "--cosim" => cosim = true,
            "--timing-backend" => {
                let v = it.next().unwrap_or_else(|| bail("--timing-backend needs a mode"));
                timing_backend = parse_backend(v);
            }
            "--threaded-timing" => timing_backend = TimingBackendKind::Threaded,
            "--cache-policy" => {
                let v = it.next().unwrap_or_else(|| bail("--cache-policy needs flush|fifo"));
                cache_policy = parse_cache_policy(v);
            }
            "--translate-workers" => {
                translate_workers = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bail("--translate-workers needs a count")),
                );
            }
            "--block-memo" => {
                let v = it.next().unwrap_or_else(|| bail("--block-memo needs on|off"));
                block_memo = Some(parse_on_off("--block-memo", v));
            }
            "--guest-fast-path" => {
                let v = it.next().unwrap_or_else(|| bail("--guest-fast-path needs on|off"));
                guest_fast_path = Some(parse_on_off("--guest-fast-path", v));
            }
            "--json" => json = true,
            name if !name.starts_with('-') => names.push(name.to_owned()),
            other => bail(&format!("unknown flag {other}")),
        }
    }
    let profiles: Vec<BenchProfile> = if names.is_empty() {
        suites::all_profiles()
    } else {
        names
            .iter()
            .map(|n| {
                suites::by_name(n).unwrap_or_else(|| {
                    if n == "quicktest" {
                        suites::quicktest_profile()
                    } else {
                        bail(&format!("unknown benchmark {n}; try `darco list`"))
                    }
                })
            })
            .collect()
    };
    let jobs = jobs.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let mut cfg = darco_core::RunConfig { scale, cosim, timing_backend, ..Default::default() };
    cfg.tol.cache_policy = cache_policy;
    if let Some(w) = translate_workers {
        cfg.tol.translate_workers = w;
    }
    if let Some(on) = block_memo {
        cfg.tol.block_memo = on;
        cfg.timing.block_memo = on;
    }
    if let Some(on) = guest_fast_path {
        cfg.tol.guest_fast_path = on;
    }
    eprintln!("running {} benchmark(s) at scale {scale} on {jobs} thread(s) ...", profiles.len());
    let t0 = std::time::Instant::now();
    let runs = darco_core::experiments::run_set_parallel(&profiles, &cfg, jobs);
    let elapsed = t0.elapsed();
    if json {
        println!("{}", serde_json::to_string_pretty(&runs).expect("serialize"));
    } else {
        println!(
            "{:22} {:>14} {:>14} {:>7} {:>9}",
            "benchmark", "guest insts", "host cycles", "IPC", "TOL ovh"
        );
        for r in &runs {
            println!(
                "{:22} {:>14} {:>14} {:>7.3} {:>8.1}%",
                r.name,
                r.report.guest_insts,
                r.report.timing.total_cycles,
                r.report.timing.ipc(),
                r.report.timing.tol_overhead_share() * 100.0,
            );
        }
    }
    eprintln!("run-set: {} benchmark(s) in {:.2?} with --jobs {jobs}", runs.len(), elapsed);
}

// --------------------------------------------------------------- verify

/// `darco verify`: a full run with co-simulation on and the IR verifier
/// forced on (structural invariants plus translation validation after
/// every optimization pass), even in release builds. Exits nonzero if
/// any superblock failed verification.
fn verify(rest: &[String]) {
    let o = parse(rest);
    eprintln!("verifying {} at scale {} ...", o.profile.name, o.scale);
    let mut cfg = SystemConfig { cosim: true, ..SystemConfig::default() };
    o.apply_system(&mut cfg);
    cfg.tol.verify = true;
    let mut sys = System::new(generate(&o.profile, o.scale), cfg);
    let report = sys.run_to_completion();
    if o.json {
        println!("{}", serde_json::to_string_pretty(&report).expect("serialize"));
    } else {
        print_report(&report);
    }
    let c = &report.tol.counters;
    if c.verify_failures > 0 {
        eprintln!(
            "verify: FAIL — {} superblock(s) rejected by the verifier \
             (miscompiling pass reported above)",
            c.verify_failures
        );
        std::process::exit(1);
    }
    eprintln!(
        "verify: OK — {} superblock(s) verified, {} co-sim checks passed",
        c.verified_blocks, report.cosim_checks
    );
}

// -------------------------------------------------------------- analyze

/// `darco analyze`: a full run followed by the static-analysis report —
/// per-region known-bits/liveness facts for the hottest translations
/// (what `deadflags`/`rangesimp` saw), the per-pass instruction deltas,
/// and the aggregate analysis counters. `--n` bounds how many regions
/// are dumped.
fn analyze(rest: &[String]) {
    let o = parse(rest);
    eprintln!("analyzing {} at scale {} ...", o.profile.name, o.scale);
    let w = generate(&o.profile, o.scale);
    // Pre-execution snapshot of guest memory, for re-decoding the
    // regions the layer translated (workload code is not self-modifying).
    let analysis_mem = w.mem.clone();
    let mut cfg = SystemConfig {
        cosim: o.cosim,
        timing_backend: o.timing_backend,
        ..SystemConfig::default()
    };
    o.apply_system(&mut cfg);
    let mut sys = System::new(w, cfg);
    let report = sys.run_to_completion();
    if o.json {
        println!("{}", serde_json::to_string_pretty(&report).expect("serialize"));
        return;
    }
    let tol = sys.tol();

    // Hottest translated regions, deduplicated by guest entry.
    let mut blocks: Vec<(u32, u64)> =
        tol.cc.blocks().map(|(_, b)| (b.guest_entry, b.exec_count)).collect();
    blocks.sort_by_key(|&(entry, execs)| (std::cmp::Reverse(execs), entry));
    let mut seen = std::collections::HashSet::new();
    let mut dumped = 0usize;
    for &(entry, _) in &blocks {
        if dumped >= o.n {
            break;
        }
        if !seen.insert(entry) {
            continue;
        }
        match darco_tol::analyze_region_text(&analysis_mem, entry) {
            Ok(text) => {
                println!("{text}");
                dumped += 1;
            }
            Err(e) => eprintln!("region {entry:#x}: decode fault: {e}"),
        }
    }

    // Per-pass deltas with the wall-clock timing the serialized report
    // deliberately omits.
    let nanos = tol.pass_nanos();
    println!(
        "{:18} {:>7} {:>14} {:>13} {:>16} {:>10}",
        "pass", "runs", "insts removed", "flags killed", "branches folded", "time"
    );
    for d in &report.tol.pass_deltas {
        let ns = nanos.iter().find(|(p, _)| *p == d.pass).map_or(0, |(_, n)| *n);
        println!(
            "{:18} {:>7} {:>14} {:>13} {:>16} {:>9.2}ms",
            d.pass,
            d.runs,
            d.insts_removed,
            d.flags_killed,
            d.branches_folded,
            ns as f64 / 1e6,
        );
    }
    let c = &report.tol.counters;
    println!(
        "\nanalysis: {} dead FlagsArith killed, {} branches folded, {:.2}ms in analysis passes",
        c.flags_killed,
        c.branches_folded,
        tol.analysis_ns() as f64 / 1e6,
    );
    println!(
        "host insts {} over {} guest insts ({:.3} host/guest)",
        report.timing.total_insts(),
        report.guest_insts,
        report.timing.total_insts() as f64 / report.guest_insts.max(1) as f64,
    );
    // The owner split separates translated-code quality (App) from the
    // software layer's own modeled execution (Tol).
    let guests = report.guest_insts.max(1) as f64;
    println!(
        "  app-owned {:.3} host/guest, tol-owned {:.3} host/guest",
        report.timing.owner_insts(Owner::App) as f64 / guests,
        report.timing.owner_insts(Owner::Tol) as f64 / guests,
    );
}

fn print_report(r: &Report) {
    println!("benchmark          : {}", r.name);
    println!("guest instructions : {}", r.guest_insts);
    println!("host instructions  : {}", r.timing.total_insts());
    println!("host cycles        : {}", r.timing.total_cycles);
    println!("IPC                : {:.3}", r.timing.ipc());
    println!("TOL overhead       : {:.1}%", r.timing.tol_overhead_share() * 100.0);
    if r.cosim_checks > 0 {
        println!("co-sim checks      : {} (all passed)", r.cosim_checks);
    }
    println!(
        "event stream       : {} events in {} batches (largest {})",
        r.trace.retired, r.trace.batches, r.trace.max_batch
    );
    println!("\ntime by component:");
    for c in Component::ALL {
        println!("  {:14} {:6.2}%", c.label(), r.timing.component_share(c) * 100.0);
    }
    println!("\nsoftware layer:");
    let s = &r.tol;
    println!("  static  [IM,BBM,SBM]: {:?}", s.static_dist);
    println!("  dynamic [IM,BBM,SBM]: {:?}", s.dyn_dist);
    println!(
        "  translations {} / superblocks {} / chains {} / flushes {}",
        s.installed, s.counters.sbm_invocations, s.chains, s.flushes
    );
    println!(
        "  cache: {:.1}% occupied ({:.1}% dead) / {} evictions ({} smc) / {} unchains / {} retranslations",
        s.cache.occupancy() * 100.0,
        s.cache.dead_space_ratio() * 100.0,
        s.cache.evictions,
        s.cache.smc_evictions,
        s.cache.unchains,
        s.cache.retranslations
    );
    println!(
        "  indirect branches {} / IBTC {} hits {} misses",
        s.counters.indirect_branches, s.ibtc_hits, s.ibtc_misses
    );
    if s.counters.verified_blocks > 0 || s.counters.verify_failures > 0 {
        println!(
            "  verifier: {} blocks verified / {} differential fallbacks / {} failures",
            s.counters.verified_blocks, s.counters.tv_differential, s.counters.verify_failures
        );
    }
    println!(
        "\ncaches: APP D$ miss {:.2}%  APP I$ miss {:.2}%  TOL D$ miss {:.2}%  BP miss {:.2}%",
        r.timing.d_miss_rate(Owner::App) * 100.0,
        r.timing.i_miss_rate(Owner::App) * 100.0,
        r.timing.d_miss_rate(Owner::Tol) * 100.0,
        r.timing.mispredict_rate(Owner::App) * 100.0,
    );
}

// ---------------------------------------------------------------- trace

fn trace(rest: &[String]) {
    let o = parse(rest);
    let w = generate(&o.profile, o.scale);
    let mut mem = w.mem.clone();
    let mut cpu = w.initial.clone();
    println!("first {} guest instructions of {}:", o.n, w.name);
    for i in 0..o.n {
        if cpu.halted {
            println!("[halted]");
            break;
        }
        let pc = cpu.eip;
        match darco_guest::exec::step(&mut cpu, &mut mem) {
            Ok(info) => println!("{i:6}  {pc:#010x}  {}", info.inst),
            Err(e) => {
                println!("{i:6}  {pc:#010x}  <decode fault: {e}>");
                break;
            }
        }
    }
}

// --------------------------------------------------------------- disasm

fn disasm(rest: &[String]) {
    let o = parse(rest);
    let w = generate(&o.profile, o.scale);
    let mut mem = w.mem.clone();
    let mut tol_cfg = TolConfig { bb_sb_threshold: 50, ..TolConfig::default() };
    o.apply_tol(&mut tol_cfg);
    let mut tol = Tol::new(tol_cfg, w.entry);
    tol.set_state(&w.initial);
    let mut sink = darco_host::NullSink;
    tol.run(&mut mem, &mut sink, u64::MAX).expect("run");

    // Rank resident translations by execution count.
    let mut blocks: Vec<darco_host::BlockId> = tol.cc.blocks().map(|(id, _)| id).collect();
    blocks.sort_by_key(|&b| {
        let blk = tol.cc.block(b).expect("resident block");
        (std::cmp::Reverse(blk.exec_count), blk.guest_entry)
    });
    println!(
        "hottest {} of {} resident translations in {}:",
        o.n.min(blocks.len()),
        tol.cc.resident(),
        w.name
    );
    for &b in blocks.iter().take(o.n) {
        let blk = tol.cc.block(b).expect("resident block");
        let kind = match blk.kind {
            BlockKind::Bb => "BBM",
            BlockKind::Sb => "SBM",
        };
        println!(
            "\nblock {b} [{kind}] guest {:#x} ({} guest insts, {} host insts, {} executions)",
            blk.guest_entry,
            blk.guest_len,
            blk.insts.len(),
            blk.exec_count
        );
        for (i, inst) in blk.insts.iter().enumerate() {
            let marker = if i as u32 == blk.body_len { "  --- exits ---\n" } else { "" };
            print!("{marker}");
            println!("  {:#010x}  {}", blk.host_base + 4 * i as u64, inst);
            if matches!(inst, HInst::Exit(_)) && i as u32 > blk.body_len + blk.stubs_len() {
                break;
            }
        }
    }
}

// ------------------------------------------------------------- timeline

fn timeline(rest: &[String]) {
    let o = parse(rest);
    let mut cfg =
        SystemConfig { cosim: false, window_guest_insts: 50_000, ..SystemConfig::default() };
    o.apply_system(&mut cfg);
    let mut sys = System::new(generate(&o.profile, o.scale), cfg);
    let r = sys.run_to_completion();
    println!(
        "{}: per-window (50K guest insts) cycles and TOL share — the start-up transient:",
        r.name
    );
    println!("{:>12} {:>12} {:>10}", "guest insts", "cycles", "TOL share");
    for w in r.timeline.iter().take(o.n) {
        println!("{:>12} {:>12} {:>9.1}%", w.guest_insts, w.cycles, w.overhead_share() * 100.0);
    }
}

// A tiny extension trait so disasm can know where stubs end.
trait StubsLen {
    fn stubs_len(&self) -> u32;
}

impl StubsLen for darco_tol::codecache::TranslatedBlock {
    fn stubs_len(&self) -> u32 {
        self.stub_guest_counts.len() as u32
    }
}

// -------------------------------------------------------- export-profile

fn export_profile(rest: &[String]) {
    let (Some(name), Some(path)) = (rest.first(), rest.get(1)) else {
        bail("usage: darco export-profile <benchmark> <file.json>")
    };
    let profile = suites::by_name(name).unwrap_or_else(|| {
        if name == "quicktest" {
            suites::quicktest_profile()
        } else {
            bail(&format!("unknown benchmark {name}"))
        }
    });
    let json = serde_json::to_string_pretty(&profile).expect("serialize profile");
    std::fs::write(path, json).unwrap_or_else(|e| bail(&format!("write {path}: {e}")));
    eprintln!("wrote {path}; edit it and run `darco run --profile {path}`");
}
