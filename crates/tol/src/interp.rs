//! The interpreter (IM).
//!
//! Cold guest code is decode-and-dispatch interpreted against the
//! *emulated* guest state, with the per-instruction host cost charged
//! through [`Emitter::interp_step`](crate::emission::Emitter::interp_step).
//! The paper counts interpretation as overhead despite its forward
//! progress because of the high per-instruction emulation cost
//! (Sec. III-B) — the emitted stream reflects that cost.
//!
//! Hot not-yet-translated loops re-decode the same guest bytes every
//! iteration; [`DecodeCache`] memoizes decode results per guest pc,
//! using [`GuestMem`]'s per-page write generation to stay correct under
//! self-modifying code. The cache changes simulator speed only — the
//! executed semantics and the emitted cost stream are identical.

use crate::emission::Emitter;
use darco_guest::exec::{self, StepInfo, MAX_INST_LEN};
use darco_guest::uops::ExecCtx;
use darco_guest::{decode, CpuState, DecodeError, GuestMem, Inst};
use darco_host::events::EventBuffer;

/// Entries in the direct-mapped decode cache (power of two).
pub const DECODE_CACHE_ENTRIES: usize = 1024;

#[derive(Debug, Clone, Copy)]
struct DecodeEntry {
    pc: u32,
    /// Highest page write generation over the instruction's bytes at
    /// fill time; any later store to those pages bumps it.
    gen: u64,
    inst: Inst,
    len: u8,
}

/// Direct-mapped cache of decoded guest instructions, keyed by guest pc
/// and invalidated by the memory write generation of the pages the
/// encoding spans.
#[derive(Debug)]
pub struct DecodeCache {
    entries: Box<[Option<DecodeEntry>]>,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to `decode()`.
    pub misses: u64,
}

impl Default for DecodeCache {
    fn default() -> DecodeCache {
        DecodeCache::new()
    }
}

/// Highest write generation over the pages `[pc, pc + len)` spans (an
/// encoding crosses at most one page boundary).
fn span_gen(mem: &GuestMem, pc: u32, len: u32) -> u64 {
    mem.page_gen(pc).max(mem.page_gen(pc.wrapping_add(len - 1)))
}

impl DecodeCache {
    /// Creates an empty cache.
    pub fn new() -> DecodeCache {
        DecodeCache {
            entries: vec![None; DECODE_CACHE_ENTRIES].into_boxed_slice(),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the decoded instruction at `pc`, from the cache when the
    /// entry is still valid (same pc, no store to the spanned pages
    /// since fill), decoding and filling otherwise.
    ///
    /// # Errors
    ///
    /// Propagates decode failures; a failing pc is not cached.
    pub fn lookup_or_decode(
        &mut self,
        pc: u32,
        mem: &GuestMem,
    ) -> Result<(Inst, usize), DecodeError> {
        let slot = pc as usize & (DECODE_CACHE_ENTRIES - 1);
        if let Some(e) = self.entries[slot] {
            if e.pc == pc && e.gen == span_gen(mem, pc, e.len as u32) {
                self.hits += 1;
                return Ok((e.inst, e.len as usize));
            }
        }
        self.misses += 1;
        let window = mem.window(pc, MAX_INST_LEN);
        let (inst, len) = decode(&window)?;
        self.entries[slot] =
            Some(DecodeEntry { pc, gen: span_gen(mem, pc, len as u32), inst, len: len as u8 });
        Ok((inst, len))
    }
}

/// Interprets one guest instruction: executes it functionally on `cpu`
/// and emits the IM host-cost stream.
///
/// # Errors
///
/// Propagates decode failures from the guest instruction stream.
pub fn step(
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    em: &mut Emitter,
    ev: &mut EventBuffer<'_>,
) -> Result<StepInfo, DecodeError> {
    let pc = cpu.eip;
    let info = exec::step(cpu, mem)?;
    em.interp_step(ev, pc, &info);
    Ok(info)
}

/// [`step`] with decode memoized through `cache`. Functionally and
/// stream-identical to [`step`]; only the simulator-side decode work is
/// skipped on a hit.
///
/// # Errors
///
/// Propagates decode failures from the guest instruction stream.
pub fn step_cached(
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    em: &mut Emitter,
    cache: &mut DecodeCache,
    ev: &mut EventBuffer<'_>,
) -> Result<StepInfo, DecodeError> {
    let pc = cpu.eip;
    let (inst, len) = cache.lookup_or_decode(pc, mem)?;
    let info = exec::exec_decoded(cpu, mem, inst, len);
    em.interp_step(ev, pc, &info);
    Ok(info)
}

/// [`step`] through the guest layer's pre-decoded micro-op buffers with
/// lazy flag materialization (`--guest-fast-path`, DESIGN.md §17).
/// Functionally and stream-identical to [`step`] — the op carries its
/// precomputed emission shape, so the cost stream is emitted through
/// [`Emitter::interp_step_shaped`] without re-deriving the shape key.
///
/// `cpu.flags` may be stale after this returns (a lazy definition
/// pending in `ctx`); the engine forces materialization before any
/// consumer reads architectural flags (`store_cpu` at block end).
///
/// # Errors
///
/// Propagates decode failures from the guest instruction stream.
pub fn step_fast(
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    em: &mut Emitter,
    ctx: &mut ExecCtx,
    ev: &mut EventBuffer<'_>,
) -> Result<StepInfo, DecodeError> {
    let pc = cpu.eip;
    let (info, shape) = ctx.step_shaped(cpu, mem)?;
    em.interp_step_shaped(ev, pc, &info, shape);
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::asm::Asm;
    use darco_guest::{Gpr, Inst};

    #[test]
    fn interpretation_matches_direct_execution() {
        let mut a = Asm::new(0x1000);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 5 });
        a.push(Inst::AluRI { op: darco_guest::AluOp::Add, dst: Gpr::Eax, imm: 37 });
        a.push(Inst::Halt);
        let p = a.assemble();

        let mut mem_a = GuestMem::new();
        mem_a.write_bytes(p.base, &p.bytes);
        let mut mem_b = mem_a.clone();

        let mut direct = CpuState::at(p.base);
        while !direct.halted {
            exec::step(&mut direct, &mut mem_a).unwrap();
        }

        let mut interp = CpuState::at(p.base);
        let mut em = Emitter::new();
        let mut n = 0u64;
        let mut sink = darco_host::events::RetireSink(|_: &darco_host::DynInst| n += 1);
        let mut ev = EventBuffer::new(64, &mut sink);
        while !interp.halted {
            step(&mut interp, &mut mem_b, &mut em, &mut ev).unwrap();
        }
        ev.flush();

        assert!(direct.arch_eq(&interp));
        assert!(n > 20, "interpretation must cost host instructions, got {n}");
    }

    #[test]
    fn decode_errors_propagate() {
        let mut mem = GuestMem::new();
        mem.write_u8(0x100, 0xFF); // invalid opcode
        let mut cpu = CpuState::at(0x100);
        let mut em = Emitter::new();
        let mut sink = darco_host::events::NullSink;
        let mut ev = EventBuffer::new(64, &mut sink);
        assert!(step(&mut cpu, &mut mem, &mut em, &mut ev).is_err());
        let mut cache = DecodeCache::new();
        assert!(step_cached(&mut cpu, &mut mem, &mut em, &mut cache, &mut ev).is_err());
    }

    #[test]
    fn cached_interpretation_matches_uncached() {
        // A counted loop: the same pcs are interpreted many times, so the
        // cached run must both hit and agree with the uncached run.
        let mut a = Asm::new(0x1000);
        a.push(Inst::MovRI { dst: Gpr::Ecx, imm: 50 });
        let top = a.here();
        a.push(Inst::AluRI { op: darco_guest::AluOp::Add, dst: Gpr::Eax, imm: 3 });
        a.push(Inst::AluRI { op: darco_guest::AluOp::Sub, dst: Gpr::Ecx, imm: 1 });
        a.push(Inst::Jcc { cond: darco_guest::Cond::Ne, target: top });
        a.push(Inst::Halt);
        let p = a.assemble();

        let run = |cached: bool| -> (CpuState, u64, u64) {
            let mut mem = GuestMem::new();
            mem.write_bytes(p.base, &p.bytes);
            let mut cpu = CpuState::at(p.base);
            let mut em = Emitter::new();
            let mut n = 0u64;
            let mut sink = darco_host::events::RetireSink(|_: &darco_host::DynInst| n += 1);
            let mut ev = EventBuffer::new(64, &mut sink);
            let mut cache = DecodeCache::new();
            while !cpu.halted {
                if cached {
                    step_cached(&mut cpu, &mut mem, &mut em, &mut cache, &mut ev).unwrap();
                } else {
                    step(&mut cpu, &mut mem, &mut em, &mut ev).unwrap();
                }
            }
            ev.flush();
            (cpu, n, cache.hits)
        };

        let (cpu_u, n_u, _) = run(false);
        let (cpu_c, n_c, hits) = run(true);
        assert!(cpu_u.arch_eq(&cpu_c));
        assert_eq!(n_u, n_c, "cost stream must be identical");
        assert!(hits > 100, "loop body must hit the decode cache, got {hits}");
    }

    #[test]
    fn fast_interpretation_matches_uncached() {
        // Same loop as the decode-cache test, driven through the micro-op
        // fast path. State and cost stream must be identical; the
        // debug_assert inside interp_step_shaped additionally pins the
        // static emission shape against the dynamic key on every step.
        let mut a = Asm::new(0x1000);
        a.push(Inst::MovRI { dst: Gpr::Ecx, imm: 50 });
        let top = a.here();
        a.push(Inst::AluRI { op: darco_guest::AluOp::Add, dst: Gpr::Eax, imm: 3 });
        a.push(Inst::AluRI { op: darco_guest::AluOp::Sub, dst: Gpr::Ecx, imm: 1 });
        a.push(Inst::Jcc { cond: darco_guest::Cond::Ne, target: top });
        a.push(Inst::Halt);
        let p = a.assemble();

        let run = |fast: bool| -> (CpuState, u64, u64) {
            let mut mem = GuestMem::new();
            mem.set_fast_path(fast);
            mem.write_bytes(p.base, &p.bytes);
            let mut cpu = CpuState::at(p.base);
            let mut em = Emitter::new();
            let mut n = 0u64;
            let mut sink = darco_host::events::RetireSink(|_: &darco_host::DynInst| n += 1);
            let mut ev = EventBuffer::new(64, &mut sink);
            let mut ctx = ExecCtx::new();
            while !cpu.halted {
                if fast {
                    step_fast(&mut cpu, &mut mem, &mut em, &mut ctx, &mut ev).unwrap();
                } else {
                    step(&mut cpu, &mut mem, &mut em, &mut ev).unwrap();
                }
            }
            ev.flush();
            ctx.force_flags(&mut cpu);
            (cpu, n, ctx.stats.uop_hits)
        };

        let (cpu_u, n_u, _) = run(false);
        let (cpu_f, n_f, hits) = run(true);
        assert!(cpu_u.arch_eq(&cpu_f));
        assert_eq!(n_u, n_f, "cost stream must be identical");
        assert!(hits > 100, "loop body must hit the micro-op cache, got {hits}");
    }

    #[test]
    fn decode_cache_invalidated_by_guest_stores() {
        // Self-modifying code at the cache level: decode, hit, overwrite
        // the immediate byte, and the next lookup must re-decode.
        let mut a = Asm::new(0x2000);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 5 });
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);

        let mut cache = DecodeCache::new();
        let (i0, len) = cache.lookup_or_decode(0x2000, &mem).unwrap();
        assert_eq!(i0, Inst::MovRI { dst: Gpr::Eax, imm: 5 });
        let (i1, _) = cache.lookup_or_decode(0x2000, &mem).unwrap();
        assert_eq!(i1, i0);
        assert_eq!(cache.hits, 1);

        // Patch the last byte of the encoding (the immediate's MSB).
        let imm_byte = 0x2000 + len as u32 - 1;
        mem.write_u8(imm_byte, 0x01);
        let (i2, _) = cache.lookup_or_decode(0x2000, &mem).unwrap();
        assert_ne!(i2, i0, "stale decode served after a store to the encoding");
        assert_eq!(cache.hits, 1, "store must force a re-decode");
        assert_eq!(cache.misses, 2);

        // And the refilled entry hits again until the next store.
        let (i3, _) = cache.lookup_or_decode(0x2000, &mem).unwrap();
        assert_eq!(i3, i2);
        assert_eq!(cache.hits, 2);
    }
}
