//! The interpreter (IM).
//!
//! Cold guest code is decode-and-dispatch interpreted against the
//! *emulated* guest state, with the per-instruction host cost charged
//! through [`Emitter::interp_step`](crate::emission::Emitter::interp_step).
//! The paper counts interpretation as overhead despite its forward
//! progress because of the high per-instruction emulation cost
//! (Sec. III-B) — the emitted stream reflects that cost.

use crate::emission::Emitter;
use darco_guest::exec::{self, StepInfo};
use darco_guest::{CpuState, DecodeError, GuestMem};
use darco_host::events::EventBuffer;

/// Interprets one guest instruction: executes it functionally on `cpu`
/// and emits the IM host-cost stream.
///
/// # Errors
///
/// Propagates decode failures from the guest instruction stream.
pub fn step(
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    em: &mut Emitter,
    ev: &mut EventBuffer<'_>,
) -> Result<StepInfo, DecodeError> {
    let pc = cpu.eip;
    let info = exec::step(cpu, mem)?;
    em.interp_step(ev, pc, &info);
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::asm::Asm;
    use darco_guest::{Gpr, Inst};

    #[test]
    fn interpretation_matches_direct_execution() {
        let mut a = Asm::new(0x1000);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 5 });
        a.push(Inst::AluRI { op: darco_guest::AluOp::Add, dst: Gpr::Eax, imm: 37 });
        a.push(Inst::Halt);
        let p = a.assemble();

        let mut mem_a = GuestMem::new();
        mem_a.write_bytes(p.base, &p.bytes);
        let mut mem_b = mem_a.clone();

        let mut direct = CpuState::at(p.base);
        while !direct.halted {
            exec::step(&mut direct, &mut mem_a).unwrap();
        }

        let mut interp = CpuState::at(p.base);
        let mut em = Emitter::new();
        let mut n = 0u64;
        let mut sink = darco_host::events::RetireSink(|_: &darco_host::DynInst| n += 1);
        let mut ev = EventBuffer::new(64, &mut sink);
        while !interp.halted {
            step(&mut interp, &mut mem_b, &mut em, &mut ev).unwrap();
        }
        ev.flush();

        assert!(direct.arch_eq(&interp));
        assert!(n > 20, "interpretation must cost host instructions, got {n}");
    }

    #[test]
    fn decode_errors_propagate() {
        let mut mem = GuestMem::new();
        mem.write_u8(0x100, 0xFF); // invalid opcode
        let mut cpu = CpuState::at(0x100);
        let mut em = Emitter::new();
        let mut sink = darco_host::events::NullSink;
        let mut ev = EventBuffer::new(64, &mut sink);
        assert!(step(&mut cpu, &mut mem, &mut em, &mut ev).is_err());
    }
}
