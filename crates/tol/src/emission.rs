//! Dynamic-footprint cost models for the software layer's own execution.
//!
//! The paper measures TOL as *a workload running on the host*: its
//! instruction volume, mix, memory behavior and branch behavior
//! (Sec. III-C). Rather than compiling the layer itself to host code,
//! each service emits a calibrated host-instruction stream with the
//! properties that matter to the timing model:
//!
//! * **volume** — interpreting a guest instruction costs tens of host
//!   instructions; translating costs more; optimizing much more,
//! * **memory pattern** — code-cache lookups probe hash buckets spread
//!   across a large table in TOL's data region (the source of the D$
//!   "ping-pong" of Sec. III-D); decode tables are small and hot;
//!   the interpreter reads guest *code* as data,
//! * **branch pattern** — the interpreter/translator dispatch on the
//!   guest opcode through an indirect jump whose target tracks the guest
//!   instruction mix, which is exactly why TOL's branch misprediction
//!   rate varies per application (Sec. III-C),
//! * **locality of TOL's own code** — each service's PCs cycle inside a
//!   small footprint, so TOL mostly hits in the L1 I-cache, as the paper
//!   observes.
//!
//! The calibration constants are collected in [`costs`] and justified in
//! DESIGN.md §2.

use crate::profile::StaticMode;
use crate::translate::RegionInst;
use darco_guest::exec::{Control, StepInfo};
use darco_guest::{GuestClass, Inst};
use darco_host::events::EventBuffer;
use darco_host::layout::{guest_to_host, TOL_CODE_BASE, TOL_DATA_BASE};
use darco_host::stream::int_reg;
use darco_host::{BranchKind, Component, DynInst, ExecClass};

/// Cost-model constants (host instructions per activity, table sizes).
pub mod costs {
    /// ALU work in one interpreter handler for a simple integer guest
    /// instruction; other classes scale from this.
    pub const INTERP_BASE_ALU: usize = 8;
    /// Host instructions of translator work per guest instruction.
    pub const TRANSLATE_PER_INST_ALU: usize = 14;
    /// Optimizer ALU work per IR instruction (all passes together).
    pub const OPTIMIZE_PER_INST_ALU: usize = 26;
    /// Translation-map buckets (spread over 256 KiB of TOL data — large
    /// enough to contend with the application in L1/L2).
    pub const MAP_BUCKETS: u64 = 8192;
    /// Bytes per map bucket.
    pub const MAP_BUCKET_BYTES: u64 = 32;
}

/// TOL data-region layout (offsets from [`TOL_DATA_BASE`]).
mod data {
    pub const MAP: u64 = 0x0;
    pub const IBTC: u64 = 0x10_0000;
    pub const PROFILE: u64 = 0x20_0000;
    pub const DECODE_TABLE: u64 = 0x30_0000;
    pub const WORKSPACE: u64 = 0x40_0000;
    pub const CONTEXT: u64 = 0x50_0000;
    /// Block descriptors (entry metadata read on every successful
    /// lookup), indexed by a block hash.
    pub const DESCRIPTORS: u64 = 0x60_0000;
    /// Edge-profile records updated by BBM instrumentation.
    pub const EDGES: u64 = 0x70_0000;
    /// Free-space list of the partial-eviction policy (extent records
    /// pushed on evict, popped on install).
    pub const FREELIST: u64 = 0x80_0000;
}

/// TOL code-region layout (offsets from [`TOL_CODE_BASE`]).
mod code {
    pub const DISPATCH: u64 = 0x0;
    pub const INTERP: u64 = 0x1000;
    pub const HANDLERS: u64 = 0x2000;
    pub const TRANSLATOR: u64 = 0x8000;
    pub const OPTIMIZER: u64 = 0xC000;
    pub const CHAINER: u64 = 0x1_0000;
    pub const LOOKUP: u64 = 0x1_4000;
    pub const TRANSITION: u64 = 0x1_8000;
    pub const EVICTOR: u64 = 0x1_C000;
}

/// Emits the host-instruction streams of TOL services into a sink.
#[derive(Debug)]
pub struct Emitter {
    /// Cursor for code-cache writes performed by the translator.
    emit_cursor: u64,
    /// Per-component dynamic instruction counters (for reports that do
    /// not involve the timing simulator).
    pub emitted: [u64; 7],
    /// Build [`Emitter::interp_step`] streams from per-shape templates
    /// (patching only the per-step fields) instead of re-emitting the
    /// whole sequence each step. Output is bit-identical either way —
    /// both paths run the same emission code, once at template-build
    /// time versus every step.
    pub interp_templates: bool,
    /// Per-shape interpreter stream templates, indexed by
    /// [`shape_key`]. Filled lazily on first encounter of a shape.
    interp_tpl: Vec<Option<InterpTemplate>>,
}

/// A recorded interpreter stream for one step shape, plus the indices of
/// the instructions whose fields vary per step.
#[derive(Debug)]
struct InterpTemplate {
    insts: Vec<DynInst>,
    marks: InterpMarks,
}

/// Patch points of an [`InterpTemplate`]: indices into its `insts`.
#[derive(Debug, Clone, Copy, Default)]
struct InterpMarks {
    /// First guest-code fetch (mem addr tracks the guest pc).
    fetch0: usize,
    /// Second guest-code fetch (guest pc + 4).
    fetch1: usize,
    /// The dispatch branch (its *own* pc is hashed from the guest pc;
    /// the handler target is shape-static).
    dispatch: usize,
    /// Guest data accesses (mem addrs are per-step).
    acc: [usize; 2],
    /// The guest-direction conditional branch (taken bit is per-step).
    jump: usize,
}

/// Number of distinct interpreter step shapes: opcode (11) × writes-flags
/// (2) × access pattern (none/load/store per slot, order-preserving: 9)
/// × has-control-jump (2).
const INTERP_SHAPES: usize = 11 * 2 * 9 * 2;

/// Flat index of a step's emission shape. Two steps with the same key
/// emit identical streams up to the fields recorded in [`InterpMarks`]:
/// the handler body depends only on the class (determined by the
/// opcode), and every pc and scratch register in the sequence is reset
/// per call.
fn shape_key(info: &StepInfo) -> usize {
    let opcode = opcode_of(&info.inst) as usize;
    let wf = usize::from(info.inst.writes_flags());
    let mut acc = 0usize;
    for (i, a) in info.accesses.iter().enumerate() {
        let kind = if a.is_store { 2 } else { 1 };
        acc += kind * 3usize.pow(i as u32);
    }
    let jump = usize::from(matches!(info.control, Control::Jump { .. }));
    ((opcode * 2 + wf) * 9 + acc) * 2 + jump
}

/// The single implementation of the interpreter's per-step host-cost
/// stream, generic over the retire target so the live path and the
/// template recorder run identical code. When `marks` is given, the
/// indices of the per-step-variable instructions are recorded into it.
fn emit_interp<T: RetireTarget>(
    c: &mut Cur<'_, T>,
    guest_pc: u32,
    info: &StepInfo,
    mut marks: Option<&mut InterpMarks>,
) {
    let comp = c.comp;
    let opcode = opcode_of(&info.inst);
    // Fetch guest code bytes as data (variable length: two probes).
    if let Some(m) = marks.as_deref_mut() {
        m.fetch0 = c.count as usize;
    }
    c.ld(guest_to_host(guest_pc));
    c.use_load();
    if let Some(m) = marks.as_deref_mut() {
        m.fetch1 = c.count as usize;
    }
    c.ld(guest_to_host(guest_pc.wrapping_add(4)));
    c.alu(2);
    // Decode-table lookup (small, hot table).
    c.ld(TOL_DATA_BASE + data::DECODE_TABLE + opcode * 64);
    c.use_load();
    // Dispatch: indirect jump to the handler for this opcode. The
    // interpreter is context-threaded — the dispatch point is
    // replicated per guest instruction (hashed), so the BTB learns
    // per-site targets on repeats; predictability still tracks the
    // guest instruction mix and footprint (the Sec. III-C effect).
    let handler = TOL_CODE_BASE + code::HANDLERS + opcode * 0x80;
    c.pc = TOL_CODE_BASE + code::INTERP + 0x400 + ((guest_pc as u64 >> 1) & 0xFF) * 4;
    if let Some(m) = marks.as_deref_mut() {
        m.dispatch = c.count as usize;
    }
    c.br(BranchKind::Indirect, handler, true);
    // Handler body.
    c.pc = handler;
    match info.inst.class() {
        GuestClass::Int | GuestClass::Other => c.alu(costs::INTERP_BASE_ALU),
        GuestClass::IntComplex => {
            c.alu(costs::INTERP_BASE_ALU);
            let d = DynInst::plain(c.pc, ExecClass::ComplexInt, comp).with_dst(int_reg(c.reg()));
            c.push(d);
        }
        GuestClass::Fp | GuestClass::FpComplex => {
            c.alu(costs::INTERP_BASE_ALU - 2);
            let class = if info.inst.class() == GuestClass::Fp {
                ExecClass::SimpleFp
            } else {
                ExecClass::ComplexFp
            };
            c.push(DynInst::plain(c.pc, class, comp));
        }
        GuestClass::Load | GuestClass::Store => c.alu(3), // EA computation
        GuestClass::Branch | GuestClass::Call | GuestClass::Ret | GuestClass::IndirectBranch => {
            c.alu(4) // target computation
        }
    }
    // The emulated guest data accesses, at their real addresses.
    for (i, a) in info.accesses.iter().enumerate() {
        let addr = guest_to_host(a.addr);
        if let Some(m) = marks.as_deref_mut() {
            m.acc[i] = c.count as usize;
        }
        if a.is_store {
            c.st(addr);
        } else {
            c.ld(addr);
            c.use_load();
        }
    }
    // Flag emulation.
    if info.inst.writes_flags() {
        c.alu(2);
    }
    // Guest branch direction decided by a TOL-side conditional branch
    // whose outcome follows the guest's — one shared static branch
    // for all guest branches, hence poorly predictable guests hurt.
    if let Control::Jump { taken, .. } = info.control {
        if let Some(m) = marks {
            m.jump = c.count as usize;
        }
        c.br(BranchKind::CondDirect, TOL_CODE_BASE + code::INTERP + 0x200, taken);
    }
    // Loop back to the interpreter top.
    c.br(BranchKind::UncondDirect, TOL_CODE_BASE + code::INTERP, true);
}

fn comp_idx(c: Component) -> usize {
    Component::ALL.iter().position(|x| *x == c).expect("component in ALL")
}

/// Where a stream-building cursor retires to: the live event buffer, or
/// a plain vector when recording a template. Using one generic emission
/// function for both guarantees a template can never diverge from the
/// stream it stands in for.
trait RetireTarget {
    fn retire(&mut self, d: DynInst);
}

impl RetireTarget for EventBuffer<'_> {
    #[inline]
    fn retire(&mut self, d: DynInst) {
        EventBuffer::retire(self, d);
    }
}

impl RetireTarget for Vec<DynInst> {
    #[inline]
    fn retire(&mut self, d: DynInst) {
        self.push(d);
    }
}

/// Stream-building cursor: sequential PCs, cycling TOL scratch registers,
/// one-deep load-use chaining.
struct Cur<'a, T: RetireTarget> {
    pc: u64,
    comp: Component,
    ev: &'a mut T,
    next_reg: u8,
    last_load: u8,
    count: u64,
}

impl<'a, T: RetireTarget> Cur<'a, T> {
    fn new(pc: u64, comp: Component, ev: &'a mut T) -> Self {
        Cur { pc, comp, ev, next_reg: 48, last_load: 40, count: 0 }
    }

    fn reg(&mut self) -> u8 {
        self.next_reg = if self.next_reg >= 62 { 48 } else { self.next_reg + 1 };
        self.next_reg
    }

    fn push(&mut self, d: DynInst) {
        self.pc += 4;
        self.count += 1;
        self.ev.retire(d);
    }

    fn alu(&mut self, n: usize) {
        // Two interleaved dependence chains: real compiled code has
        // instruction-level parallelism, so the layer sustains close to
        // the 2-wide issue rate on ALU stretches.
        for i in 0..n {
            let dst = self.reg();
            let src = if dst >= 50 { dst - 2 } else { 48 + (i as u8 & 1) };
            let d = DynInst::plain(self.pc, ExecClass::SimpleInt, self.comp)
                .with_dst(int_reg(dst))
                .with_srcs(int_reg(src), u8::MAX);
            self.push(d);
        }
    }

    /// A load into a fresh register; remembered for [`Cur::use_load`].
    fn ld(&mut self, addr: u64) {
        let dst = self.reg();
        self.last_load = dst;
        let d = DynInst::plain(self.pc, ExecClass::Load, self.comp)
            .with_dst(int_reg(dst))
            .with_mem(addr, 8, false);
        self.push(d);
    }

    /// An ALU op consuming the last load (creates the load-use edge the
    /// scoreboard stalls on when the load missed).
    fn use_load(&mut self) {
        let dst = self.reg();
        let src = self.last_load;
        let d = DynInst::plain(self.pc, ExecClass::SimpleInt, self.comp)
            .with_dst(int_reg(dst))
            .with_srcs(int_reg(src), u8::MAX);
        self.push(d);
    }

    fn st(&mut self, addr: u64) {
        let d = DynInst::plain(self.pc, ExecClass::Store, self.comp).with_mem(addr, 8, true);
        self.push(d);
    }

    fn br(&mut self, kind: BranchKind, target: u64, taken: bool) {
        let class =
            if kind == BranchKind::CondDirect { ExecClass::Branch } else { ExecClass::Jump };
        let d = DynInst::plain(self.pc, class, self.comp).with_branch(kind, target, taken);
        self.push(d);
    }
}

fn opcode_of(inst: &Inst) -> u64 {
    // A stable per-variant discriminator for handler targets and decode
    // table indexing.
    match inst.class() {
        GuestClass::Int => 0,
        GuestClass::IntComplex => 1,
        GuestClass::Fp => 2,
        GuestClass::FpComplex => 3,
        GuestClass::Load => 4,
        GuestClass::Store => 5,
        GuestClass::Branch => 6,
        GuestClass::Call => 7,
        GuestClass::Ret => 8,
        GuestClass::IndirectBranch => 9,
        GuestClass::Other => 10,
    }
}

/// Hash used for map buckets and profile slots.
fn bucket_of(pc: u32) -> u64 {
    (pc.wrapping_mul(0x9E37_79B9) as u64 >> 13) % costs::MAP_BUCKETS
}

impl Default for Emitter {
    fn default() -> Emitter {
        Emitter::new()
    }
}

impl Emitter {
    /// Creates an emitter.
    pub fn new() -> Emitter {
        Emitter {
            emit_cursor: darco_host::layout::CODE_CACHE_BASE,
            emitted: [0; 7],
            interp_templates: true,
            interp_tpl: std::iter::repeat_with(|| None).take(INTERP_SHAPES).collect(),
        }
    }

    fn track<T: RetireTarget>(&mut self, comp: Component, cur: Cur<'_, T>) {
        self.emitted[comp_idx(comp)] += cur.count;
    }

    /// One interpreted guest instruction (IM): dispatch, decode, handler
    /// body, guest data accesses, loop back.
    ///
    /// With [`Emitter::interp_templates`] on, the stream for this step's
    /// shape is recorded once (through the same `emit_interp` code the
    /// direct path runs) and replayed with only the per-step fields
    /// patched; otherwise the sequence is rebuilt from scratch.
    pub fn interp_step(&mut self, ev: &mut EventBuffer<'_>, guest_pc: u32, info: &StepInfo) {
        self.interp_step_keyed(ev, guest_pc, info, None);
    }

    /// [`Emitter::interp_step`] with the emission shape precomputed by
    /// the caller — the guest layer's micro-op buffers carry
    /// [`darco_guest::uops::emission_shape`] per op, so the fast
    /// interpreter loop skips re-deriving `shape_key` every step. The
    /// emitted stream is identical; debug builds assert the static key
    /// matches the dynamic one.
    pub fn interp_step_shaped(
        &mut self,
        ev: &mut EventBuffer<'_>,
        guest_pc: u32,
        info: &StepInfo,
        shape: u16,
    ) {
        debug_assert_eq!(
            shape as usize,
            shape_key(info),
            "static emission shape diverged from the dynamic key for {:?}",
            info.inst
        );
        self.interp_step_keyed(ev, guest_pc, info, Some(shape as usize));
    }

    fn interp_step_keyed(
        &mut self,
        ev: &mut EventBuffer<'_>,
        guest_pc: u32,
        info: &StepInfo,
        key: Option<usize>,
    ) {
        let comp = Component::TolIm;
        if !self.interp_templates {
            let mut c = Cur::new(TOL_CODE_BASE + code::INTERP, comp, ev);
            emit_interp(&mut c, guest_pc, info, None);
            self.track(comp, c);
            return;
        }
        let key = key.unwrap_or_else(|| shape_key(info));
        if self.interp_tpl[key].is_none() {
            let mut insts = Vec::new();
            let mut marks = InterpMarks::default();
            let mut c = Cur::new(TOL_CODE_BASE + code::INTERP, comp, &mut insts);
            emit_interp(&mut c, guest_pc, info, Some(&mut marks));
            self.interp_tpl[key] = Some(InterpTemplate { insts, marks });
        }
        let tpl = self.interp_tpl[key].as_mut().expect("template just ensured");
        let m = tpl.marks;
        tpl.insts[m.fetch0].mem.as_mut().expect("fetch is a load").addr = guest_to_host(guest_pc);
        tpl.insts[m.fetch1].mem.as_mut().expect("fetch is a load").addr =
            guest_to_host(guest_pc.wrapping_add(4));
        tpl.insts[m.dispatch].pc =
            TOL_CODE_BASE + code::INTERP + 0x400 + ((guest_pc as u64 >> 1) & 0xFF) * 4;
        for (i, a) in info.accesses.iter().enumerate() {
            tpl.insts[m.acc[i]].mem.as_mut().expect("access has a mem event").addr =
                guest_to_host(a.addr);
        }
        if let Control::Jump { taken, .. } = info.control {
            tpl.insts[m.jump].branch.as_mut().expect("jump has a branch").2 = taken;
        }
        for d in &tpl.insts {
            ev.retire(*d);
        }
        self.emitted[comp_idx(comp)] += tpl.insts.len() as u64;
    }

    /// Basic-block translation (BBM): decode each guest instruction and
    /// emit host code into the code cache, then insert into the map.
    pub fn bb_translate(
        &mut self,
        ev: &mut EventBuffer<'_>,
        guest_entry: u32,
        insts: &[RegionInst],
        host_len: usize,
    ) {
        let comp = Component::TolBbm;
        let mut c = Cur::new(TOL_CODE_BASE + code::TRANSLATOR, comp, ev);
        for r in insts {
            let opcode = opcode_of(&r.inst);
            c.ld(guest_to_host(r.pc)); // read guest code
            c.use_load();
            c.ld(TOL_DATA_BASE + data::DECODE_TABLE + opcode * 64);
            c.use_load();
            // Table-driven translation: one mostly-biased class check per
            // instruction (Gshare learns the dominant class), not an
            // indirect dispatch — translators are batchy, unlike the
            // interpreter's per-instruction dispatch loop.
            c.br(
                BranchKind::CondDirect,
                TOL_CODE_BASE + code::TRANSLATOR + 0x100,
                opcode != 9, // "needs indirect-branch handling?" — rare
            );
            c.alu(costs::TRANSLATE_PER_INST_ALU);
            // Flag-writing guests need the EFLAGS emulation path too.
            if r.inst.writes_flags() {
                c.alu(4);
                c.br(BranchKind::CondDirect, TOL_CODE_BASE + code::TRANSLATOR + 0x800, true);
            }
        }
        // Write the produced host code into the code cache.
        for _ in 0..host_len {
            c.st(self.emit_cursor);
            self.emit_cursor += 4;
        }
        // Map insertion: hash, bucket read-modify-write.
        c.alu(4);
        let bucket = TOL_DATA_BASE + data::MAP + bucket_of(guest_entry) * costs::MAP_BUCKET_BYTES;
        c.ld(bucket);
        c.use_load();
        c.st(bucket);
        c.st(bucket + 8);
        self.track(comp, c);
    }

    /// Superblock formation and optimization (SBM).
    pub fn sb_optimize(
        &mut self,
        ev: &mut EventBuffer<'_>,
        bbs_followed: usize,
        ir_len: usize,
        host_len: usize,
    ) {
        let comp = Component::TolSbm;
        let mut c = Cur::new(TOL_CODE_BASE + code::OPTIMIZER, comp, ev);
        // Formation: read edge profiles of the followed blocks.
        for i in 0..bbs_followed.max(1) {
            c.ld(TOL_DATA_BASE + data::PROFILE + ((i as u64 * 37) % 512) * 16);
            c.use_load();
            c.alu(6);
            c.br(BranchKind::CondDirect, c.pc + 64, i % 2 == 0);
        }
        // Passes: per-IR-instruction work over workspace arrays.
        for i in 0..ir_len {
            let slot = TOL_DATA_BASE + data::WORKSPACE + (i as u64 % 4096) * 16;
            c.ld(slot);
            c.use_load();
            c.alu(costs::OPTIMIZE_PER_INST_ALU);
            c.st(slot);
            if i % 4 == 0 {
                c.br(BranchKind::CondDirect, c.pc + 32, i % 8 == 0);
            }
        }
        // Code emission and map update.
        for _ in 0..host_len {
            c.st(self.emit_cursor);
            self.emit_cursor += 4;
        }
        c.alu(6);
        self.track(comp, c);
    }

    /// Chaining: patch a direct exit to its successor translation.
    pub fn chain(&mut self, ev: &mut EventBuffer<'_>, exit_host_pc: u64) {
        let comp = Component::TolChaining;
        let mut c = Cur::new(TOL_CODE_BASE + code::CHAINER, comp, ev);
        c.alu(4);
        c.ld(exit_host_pc); // read the exit instruction
        c.use_load();
        c.st(exit_host_pc); // patch it
        c.alu(2);
        self.track(comp, c);
    }

    /// Unchaining: restore a direct exit whose target is being evicted
    /// to its dispatcher-bound form (read-modify-write of the patched
    /// site, like [`Emitter::chain`] in reverse).
    pub fn unchain(&mut self, ev: &mut EventBuffer<'_>, exit_host_pc: u64) {
        let comp = Component::TolChaining;
        let mut c = Cur::new(TOL_CODE_BASE + code::CHAINER + 0x400, comp, ev);
        c.alu(3);
        c.ld(exit_host_pc); // read the patched exit
        c.use_load();
        c.st(exit_host_pc); // restore it
        self.track(comp, c);
    }

    /// Per-block eviction bookkeeping (partial-eviction policy): remove
    /// the victim from the translation map and push its storage extent
    /// onto the free list. Per-site unchaining and IBTC invalidation are
    /// charged separately via [`Emitter::unchain`].
    pub fn evict(&mut self, ev: &mut EventBuffer<'_>, guest_entry: u32) {
        let comp = Component::TolOthers;
        let mut c = Cur::new(TOL_CODE_BASE + code::EVICTOR, comp, ev);
        c.alu(5);
        let bucket = TOL_DATA_BASE + data::MAP + bucket_of(guest_entry) * costs::MAP_BUCKET_BYTES;
        c.ld(bucket);
        c.use_load();
        c.st(bucket); // clear the map entry
        c.ld(TOL_DATA_BASE + data::FREELIST);
        c.use_load();
        c.st(TOL_DATA_BASE + data::FREELIST); // free-list push
        c.alu(2);
        self.track(comp, c);
    }

    /// Full translation-map lookup (the data-intensive probe of
    /// Sec. III-D).
    pub fn map_lookup(&mut self, ev: &mut EventBuffer<'_>, guest_pc: u32, found: bool) {
        let comp = Component::TolLookup;
        let mut c = Cur::new(TOL_CODE_BASE + code::LOOKUP, comp, ev);
        c.alu(4); // hash
                  // Open-addressed probe sequence: two buckets on distinct lines.
        let b0 = TOL_DATA_BASE + data::MAP + bucket_of(guest_pc) * costs::MAP_BUCKET_BYTES;
        let b1 = TOL_DATA_BASE
            + data::MAP
            + bucket_of(guest_pc.rotate_left(13) ^ 0x5bd1_e995) * costs::MAP_BUCKET_BYTES;
        c.ld(b0);
        c.use_load();
        c.br(BranchKind::CondDirect, c.pc + 32, found);
        c.ld(b1);
        c.use_load();
        c.alu(2);
        if found {
            // Block descriptor (separate array) plus a lookup-stats bump.
            let desc = TOL_DATA_BASE + data::DESCRIPTORS + (bucket_of(guest_pc) % 4096) * 64;
            c.ld(desc);
            c.use_load();
            c.st(desc + 8);
        } else {
            c.br(BranchKind::CondDirect, c.pc + 48, true); // chain walk ends
        }
        c.alu(3);
        self.track(comp, c);
    }

    /// IBTC entry update after a miss (two stores into the table).
    pub fn ibtc_update(&mut self, ev: &mut EventBuffer<'_>, slot: u32) {
        let comp = Component::TolLookup;
        let mut c = Cur::new(TOL_CODE_BASE + code::LOOKUP + 0x400, comp, ev);
        let e = TOL_DATA_BASE + data::IBTC + slot as u64 * 16;
        c.st(e);
        c.st(e + 8);
        self.track(comp, c);
    }

    /// Transition between translated code and the software layer
    /// (context save or restore): the cost reflected in "TOL others".
    pub fn transition(&mut self, ev: &mut EventBuffer<'_>) {
        let comp = Component::TolOthers;
        let mut c = Cur::new(TOL_CODE_BASE + code::TRANSITION, comp, ev);
        for i in 0..6u64 {
            c.st(TOL_DATA_BASE + data::CONTEXT + i * 8);
        }
        for i in 0..6u64 {
            c.ld(TOL_DATA_BASE + data::CONTEXT + 64 + i * 8);
        }
        c.alu(4);
        c.br(BranchKind::UncondDirect, TOL_CODE_BASE + code::DISPATCH, true);
        self.track(comp, c);
    }

    /// The dispatcher's decision work per TOL entry.
    pub fn dispatch(&mut self, ev: &mut EventBuffer<'_>, mode: StaticMode) {
        let comp = Component::TolOthers;
        let mut c = Cur::new(TOL_CODE_BASE + code::DISPATCH, comp, ev);
        c.alu(5);
        c.ld(TOL_DATA_BASE + data::CONTEXT + 128);
        c.use_load();
        // Mode decision branch: its direction tracks the execution phase.
        c.br(BranchKind::CondDirect, TOL_CODE_BASE + code::DISPATCH + 0x80, mode != StaticMode::Im);
        self.track(comp, c);
    }

    /// The inline IBTC probe executed *by translated code* (application
    /// side) at an indirect-branch exit.
    #[allow(clippy::too_many_arguments)]
    pub fn ibtc_probe_inline(
        &mut self,
        ev: &mut EventBuffer<'_>,
        site_pc: u64,
        slot: u32,
        hit: bool,
        target_host: u64,
    ) {
        let comp = Component::AppCode;
        let mut c = Cur::new(site_pc, comp, ev);
        c.alu(2); // hash of the guest target
        c.ld(TOL_DATA_BASE + data::IBTC + slot as u64 * 16);
        c.use_load(); // compare
        c.br(BranchKind::CondDirect, site_pc + 24, hit);
        if hit {
            // Jump straight to the cached translation.
            c.br(BranchKind::Indirect, target_host, true);
        }
        self.track(comp, c);
    }

    /// Inline speculative indirect-branch check (optional feature,
    /// Sec. III-E): compare the computed guest target against the
    /// hard-coded last target and jump straight to its translation on a
    /// match. Application-side cost: one compare plus one well-biased
    /// conditional branch, plus the direct jump on a hit.
    pub fn spec_check(
        &mut self,
        ev: &mut EventBuffer<'_>,
        site_pc: u64,
        hit: bool,
        target_host: u64,
    ) {
        let comp = Component::AppCode;
        let mut c = Cur::new(site_pc, comp, ev);
        c.alu(1); // compare against the inlined constant
        c.br(BranchKind::CondDirect, site_pc + 16, hit);
        if hit {
            c.br(BranchKind::UncondDirect, target_host, true);
        }
        self.track(comp, c);
    }

    /// BBM edge-profiling instrumentation executed per block run
    /// (application-side counter update).
    pub fn bbm_instrumentation(&mut self, ev: &mut EventBuffer<'_>, host_pc: u64, bb_entry: u32) {
        let comp = Component::AppCode;
        let mut c = Cur::new(host_pc, comp, ev);
        let slot = TOL_DATA_BASE + data::PROFILE + (bucket_of(bb_entry) % 4096) * 16;
        c.ld(slot);
        c.use_load();
        c.st(slot);
        // Edge-profile record on its own line (read-modify-write).
        let edge = TOL_DATA_BASE + data::EDGES + (bucket_of(bb_entry ^ 0x9e37) % 2048) * 64;
        c.ld(edge);
        c.st(edge);
        self.track(comp, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::exec::{AccessList, Control};
    use darco_guest::Gpr;
    use darco_host::events::RetireSink;
    use darco_host::Owner;

    fn collect(f: impl FnOnce(&mut Emitter, &mut EventBuffer<'_>)) -> Vec<DynInst> {
        let mut v = Vec::new();
        let mut e = Emitter::new();
        let mut sink = RetireSink(|d: &DynInst| v.push(*d));
        let mut ev = EventBuffer::new(64, &mut sink);
        f(&mut e, &mut ev);
        ev.flush();
        v
    }

    fn step_info(inst: Inst) -> StepInfo {
        StepInfo { inst, len: 2, control: Control::Next, accesses: AccessList::default() }
    }

    fn ri(pc: u32, inst: Inst) -> RegionInst {
        RegionInst { pc, inst, len: 2, follow_taken: false }
    }

    #[test]
    fn interp_step_costs_tens_of_instructions() {
        let v = collect(|e, s| {
            e.interp_step(s, 0x1000, &step_info(Inst::MovRR { dst: Gpr::Eax, src: Gpr::Ebx }))
        });
        assert!((8..40).contains(&v.len()), "got {}", v.len());
        assert!(v.iter().all(|d| d.owner() == Owner::Tol));
        assert!(v.iter().any(|d| d.component == Component::TolIm));
        // The interpreter reads guest code as data.
        assert!(v.iter().any(|d| d.mem.is_some_and(|m| m.addr == 0x1000)));
        // Dispatch is an indirect branch.
        assert!(v.iter().any(|d| matches!(d.branch, Some((BranchKind::Indirect, _, _)))));
    }

    #[test]
    fn flag_writers_cost_more_to_interpret_and_translate() {
        let mov = collect(|e, s| {
            e.interp_step(s, 0, &step_info(Inst::MovRR { dst: Gpr::Eax, src: Gpr::Ebx }))
        });
        let add = collect(|e, s| {
            e.interp_step(
                s,
                0,
                &step_info(Inst::AluRR {
                    op: darco_guest::AluOp::Add,
                    dst: Gpr::Eax,
                    src: Gpr::Ebx,
                }),
            )
        });
        assert!(add.len() > mov.len());

        let t_mov = collect(|e, s| {
            e.bb_translate(s, 0, &[ri(0, Inst::MovRR { dst: Gpr::Eax, src: Gpr::Ebx })], 2)
        });
        let t_add = collect(|e, s| {
            e.bb_translate(
                s,
                0,
                &[ri(0, Inst::AluRR { op: darco_guest::AluOp::Add, dst: Gpr::Eax, src: Gpr::Ebx })],
                3,
            )
        });
        assert!(t_add.len() > t_mov.len());
    }

    #[test]
    fn optimization_costs_dominate_translation() {
        let t = collect(|e, s| e.bb_translate(s, 0, &[ri(0, Inst::Nop); 8], 16));
        let o = collect(|e, s| e.sb_optimize(s, 4, 32, 40));
        assert!(o.len() > 3 * t.len(), "SBM {} vs BBM {}", o.len(), t.len());
        assert!(o.iter().all(|d| d.component == Component::TolSbm));
    }

    #[test]
    fn map_lookup_is_data_intensive() {
        let v = collect(|e, s| e.map_lookup(s, 0x1234, true));
        let loads = v.iter().filter(|d| d.mem.is_some_and(|m| !m.is_store)).count();
        assert!(loads >= 3);
        assert!(v.iter().all(|d| d.component == Component::TolLookup));
        // Probes land in the TOL data region.
        assert!(v.iter().filter_map(|d| d.mem).all(|m| m.addr >= TOL_DATA_BASE));
    }

    #[test]
    fn ibtc_inline_probe_is_application_side() {
        let v = collect(|e, s| e.ibtc_probe_inline(s, 0x2_0000_1000, 17, true, 0x2_0000_4000));
        assert!(v.iter().all(|d| d.owner() == Owner::App));
        assert!(v.iter().any(
            |d| matches!(d.branch, Some((BranchKind::Indirect, t, true)) if t == 0x2_0000_4000)
        ));
        let miss = collect(|e, s| e.ibtc_probe_inline(s, 0x2_0000_1000, 17, false, 0));
        assert!(miss.len() < v.len());
    }

    #[test]
    fn spec_check_costs_two_or_three_app_instructions() {
        let hit = collect(|e, s| e.spec_check(s, 0x2_0000_0000, true, 0x2_0000_4000));
        assert_eq!(hit.len(), 3, "compare + branch + direct jump");
        assert!(hit.iter().all(|d| d.owner() == Owner::App));
        assert!(hit.iter().any(
            |d| matches!(d.branch, Some((BranchKind::UncondDirect, t, true)) if t == 0x2_0000_4000)
        ));
        let miss = collect(|e, s| e.spec_check(s, 0x2_0000_0000, false, 0));
        assert_eq!(miss.len(), 2, "compare + fall-through branch only");
    }

    #[test]
    fn emitted_counters_accumulate() {
        let mut e = Emitter::new();
        let mut n = 0u64;
        let mut sink = RetireSink(|_: &DynInst| n += 1);
        let mut ev = EventBuffer::new(64, &mut sink);
        e.transition(&mut ev);
        e.dispatch(&mut ev, StaticMode::Bbm);
        ev.flush();
        let others = e.emitted[comp_idx(Component::TolOthers)];
        assert_eq!(others, n);
        assert!(others > 10);
    }

    #[test]
    fn tol_code_footprint_is_small() {
        // All emitted TOL pcs must stay within a 128 KiB window, so the
        // layer's code largely fits in the L1 I-cache (paper Sec. III-C).
        let mut pcs = Vec::new();
        let mut e = Emitter::new();
        let mut sink = RetireSink(|d: &DynInst| pcs.push(d.pc));
        let mut ev = EventBuffer::new(64, &mut sink);
        e.interp_step(&mut ev, 0, &step_info(Inst::Ret));
        e.map_lookup(&mut ev, 77, false);
        e.transition(&mut ev);
        e.dispatch(&mut ev, StaticMode::Im);
        e.chain(&mut ev, darco_host::layout::CODE_CACHE_BASE);
        ev.flush();
        for pc in pcs {
            if pc >= TOL_CODE_BASE {
                assert!(pc < TOL_CODE_BASE + 0x2_0000, "pc {pc:#x} outside TOL code window");
            }
        }
    }
}
