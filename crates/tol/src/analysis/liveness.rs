//! Backward flag- and register-liveness over the linear IR.
//!
//! The boundary condition encodes the architectural contract of
//! translated code: every exit point — each `BrFlags` side exit and
//! the fall-through at the body end — observes the entire pinned guest
//! state (GPRs, the flags word, the exit-target register, FPRs). A
//! pinned definition is therefore dead only when another definition
//! overwrites it before any use, side exit, or the body end; virtual
//! temporaries are dead when no later op reads them.

use super::{Analysis, Direction, Lattice};
use crate::ir::{IrBlock, IrFreg, IrInst, IrOp, IrReg, FSCRATCH_BASE};
use darco_host::{HFreg, HReg};
use std::collections::HashSet;

/// The set of registers live at a program point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LiveSet {
    /// Live integer registers (pinned and virtual).
    pub int: HashSet<IrReg>,
    /// Live FP registers (pinned and virtual).
    pub fp: HashSet<IrFreg>,
}

impl LiveSet {
    /// Whether integer register `r` is live.
    pub fn contains_int(&self, r: IrReg) -> bool {
        self.int.contains(&r)
    }
}

impl Lattice for LiveSet {
    fn join(&mut self, other: &LiveSet) {
        self.int.extend(other.int.iter().copied());
        self.fp.extend(other.fp.iter().copied());
    }
}

/// The full pinned architectural state (what every exit observes):
/// integer r1..=r10 (guest GPRs, flags, exit target) and FP f0..f7.
fn pinned() -> LiveSet {
    LiveSet {
        int: (1..=10).map(|r| IrReg::Phys(HReg(r))).collect(),
        fp: (0..FSCRATCH_BASE).map(|f| IrFreg::Phys(HFreg(f))).collect(),
    }
}

/// The backward liveness analysis.
pub struct Liveness;

impl Analysis for Liveness {
    type Fact = LiveSet;
    const DIRECTION: Direction = Direction::Backward;

    fn boundary(&self, _block: &IrBlock) -> LiveSet {
        pinned()
    }

    fn transfer(&self, op: &IrOp, _idx: usize, fact: &mut LiveSet, _block: &IrBlock) {
        if op.inst == IrInst::Nop {
            return;
        }
        if op.inst.is_branch() {
            // A side exit may leave the block: everything pinned is
            // observable there, in addition to whatever the fall-through
            // path needs.
            fact.join(&pinned());
        }
        if let Some(d) = op.inst.dst() {
            fact.int.remove(&d);
        }
        if let Some(d) = op.inst.fdst() {
            fact.fp.remove(&d);
        }
        for s in op.inst.srcs().into_iter().flatten() {
            fact.int.insert(s);
        }
        for s in op.inst.fsrcs().into_iter().flatten() {
            fact.fp.insert(s);
        }
    }
}

/// Liveness facts per program point: `facts[i]` holds before op `i`,
/// so the set live *after* op `i` is `facts[i + 1]`.
pub fn facts(block: &IrBlock) -> Vec<LiveSet> {
    super::solve(&Liveness, block)
}

/// Indices of `FlagsArith` ops whose definition is dead: no later op
/// reads it before it is overwritten, and control cannot leave the
/// block in between. These are exactly the materializations the
/// translator's intrinsic elision would have skipped.
pub fn dead_flag_defs(block: &IrBlock) -> Vec<usize> {
    let live = facts(block);
    block
        .ops
        .iter()
        .enumerate()
        .filter(|(i, op)| match op.inst {
            IrInst::FlagsArith { rd, .. } => !live[i + 1].contains_int(rd),
            _ => false,
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrOp, FLAGS_REG};
    use darco_guest::Cond;
    use darco_host::{Exit, FlagsKind, HAluOp};

    const FLAGS: IrReg = IrReg::Phys(FLAGS_REG);

    fn block(ops: Vec<IrInst>, stubs: usize) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![Exit::Halt; stubs],
            stub_guest_counts: vec![1; stubs],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    fn fa(ra: IrReg) -> IrInst {
        IrInst::FlagsArith { kind: FlagsKind::Sub, rd: FLAGS, ra, rb: IrReg::Phys(HReg(2)) }
    }

    #[test]
    fn flag_def_overwritten_before_any_use_is_dead() {
        let b = block(
            vec![
                fa(IrReg::Phys(HReg(1))), // dead: overwritten below, no exit between
                fa(IrReg::Phys(HReg(3))), // live-out at the body end
            ],
            0,
        );
        assert_eq!(dead_flag_defs(&b), vec![0]);
    }

    #[test]
    fn branch_between_def_and_redef_keeps_flags_live() {
        let b = block(
            vec![
                fa(IrReg::Phys(HReg(1))),
                IrInst::BrFlags { cond: Cond::E, flags: FLAGS, stub: 0 },
                fa(IrReg::Phys(HReg(3))),
            ],
            1,
        );
        assert_eq!(dead_flag_defs(&b), Vec::<usize>::new());
    }

    #[test]
    fn dead_virtual_flag_def_is_reported() {
        let b = block(vec![fa(IrReg::Phys(HReg(1)))], 0);
        // Redirect the def to a virtual nobody reads.
        let mut b = b;
        if let IrInst::FlagsArith { rd, .. } = &mut b.ops[0].inst {
            *rd = IrReg::Virt(0);
        }
        assert_eq!(dead_flag_defs(&b), vec![0]);
    }

    #[test]
    fn plain_defs_kill_and_uses_gen() {
        let b = block(
            vec![
                IrInst::Li { rd: IrReg::Virt(0), imm: 1 },
                IrInst::AluI {
                    op: HAluOp::Add,
                    rd: IrReg::Phys(HReg(1)),
                    ra: IrReg::Virt(0),
                    imm: 0,
                },
            ],
            0,
        );
        let live = facts(&b);
        assert!(live[1].contains_int(IrReg::Virt(0)), "live between def and use");
        assert!(!live[0].contains_int(IrReg::Virt(0)), "dead before its def");
        assert!(live[0].contains_int(IrReg::Phys(HReg(2))), "pinned live-in");
    }
}
