//! Known-bits + unsigned-range abstract interpretation over IR values.
//!
//! Each integer register is abstracted by an [`AbsVal`]: a mask of bits
//! known to be zero, a mask of bits known to be one, and an inclusive
//! unsigned range `[lo, hi]`. The two views refine each other (a value
//! below `hi` cannot set bits above `hi`'s leading bit; known ones lift
//! `lo`), and the transfer functions mirror the reference host
//! semantics ([`eval_alu`], [`eval_flags`]) exactly — when both
//! operands are constants the abstract result *is* the concrete one.
//!
//! `FlagsArith` kinds are tracked precisely enough to decide `BrFlags`
//! conditions statically: logic flags always clear CF/OF, and disjoint
//! operand ranges decide the carry/zero flags of a compare. [`decide`]
//! turns a flags-word fact into a taken/untaken verdict where the
//! known bits determine the condition.

use super::{Analysis, Direction, Lattice};
use crate::ir::{IrBlock, IrInst, IrOp, IrReg};
use darco_guest::Cond;
use darco_host::{eval_alu, eval_flags, FlagsKind, HAluOp, HReg, Width};
use std::collections::HashMap;

/// Flags-word bit positions (the guest `Flags::to_word` layout).
const CF: u32 = 1 << 0;
const ZF: u32 = 1 << 1;
const SF: u32 = 1 << 2;
const OF: u32 = 1 << 3;
/// All architecturally meaningful flags bits (CF/ZF/SF/OF/PF).
const FLAGS_MASK: u32 = 0x1F;

/// Lowest mask covering every value `<= x` (all bits up to `x`'s
/// leading one).
fn mask_up(x: u32) -> u32 {
    if x == 0 {
        0
    } else {
        u32::MAX >> x.leading_zeros()
    }
}

/// An abstract 32-bit value: known bits plus an unsigned range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Bits known to be `0`.
    pub zeros: u32,
    /// Bits known to be `1`.
    pub ones: u32,
    /// Smallest possible unsigned value.
    pub lo: u32,
    /// Largest possible unsigned value.
    pub hi: u32,
}

impl AbsVal {
    /// No knowledge: any 32-bit value.
    pub fn top() -> AbsVal {
        AbsVal { zeros: 0, ones: 0, lo: 0, hi: u32::MAX }
    }

    /// Exact knowledge of constant `c`.
    pub fn constant(c: u32) -> AbsVal {
        AbsVal { zeros: !c, ones: c, lo: c, hi: c }
    }

    /// The constant this value is pinned to, if fully known.
    pub fn as_const(&self) -> Option<u32> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Whether concrete value `v` satisfies every claim this fact makes
    /// (the soundness predicate the runtime oracle asserts).
    pub fn contains(&self, v: u32) -> bool {
        v & self.zeros == 0 && v & self.ones == self.ones && self.lo <= v && v <= self.hi
    }

    /// Mutually refines the bit and range views; an inconsistent
    /// combination (possible only for dataflow-unreachable values)
    /// widens back to top rather than claim the impossible.
    fn normalize(mut self) -> AbsVal {
        self.lo = self.lo.max(self.ones);
        self.hi = self.hi.min(!self.zeros);
        if self.hi < u32::MAX {
            self.zeros |= !mask_up(self.hi);
        }
        if self.lo > self.hi || self.zeros & self.ones != 0 {
            return AbsVal::top();
        }
        self
    }

    /// Least upper bound (keeps only the knowledge both sides share).
    pub fn join(&mut self, other: &AbsVal) {
        self.zeros &= other.zeros;
        self.ones &= other.ones;
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        *self = self.normalize();
    }
}

impl std::fmt::Display for AbsVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(c) = self.as_const() {
            write!(f, "const {c:#x}")
        } else {
            write!(
                f,
                "ones={:#x} zeros={:#x} [{:#x},{:#x}]",
                self.ones, self.zeros, self.lo, self.hi
            )
        }
    }
}

/// Abstract evaluation of a host ALU op (agrees with [`eval_alu`] on
/// constants by construction).
pub fn alu_result(op: HAluOp, a: AbsVal, b: AbsVal) -> AbsVal {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return AbsVal::constant(eval_alu(op, x, y));
    }
    let mut r = AbsVal::top();
    match op {
        HAluOp::Add => {
            if let (Some(lo), Some(hi)) = (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
                r.lo = lo;
                r.hi = hi;
            }
            if !a.zeros & !b.zeros == 0 {
                // No bit position can carry: addition degenerates to OR.
                r.zeros |= a.zeros & b.zeros;
                r.ones |= a.ones | b.ones;
            }
        }
        HAluOp::Sub => {
            if a.lo >= b.hi {
                // No borrow possible for any operand pair.
                r.lo = a.lo - b.hi;
                r.hi = a.hi - b.lo;
            }
        }
        HAluOp::And => {
            r.zeros = a.zeros | b.zeros;
            r.ones = a.ones & b.ones;
            r.lo = 0;
            r.hi = a.hi.min(b.hi);
        }
        HAluOp::Or => {
            r.zeros = a.zeros & b.zeros;
            r.ones = a.ones | b.ones;
            r.lo = a.lo.max(b.lo);
            r.hi = mask_up(a.hi) | mask_up(b.hi);
        }
        HAluOp::Xor => {
            r.zeros = (a.zeros & b.zeros) | (a.ones & b.ones);
            r.ones = (a.zeros & b.ones) | (a.ones & b.zeros);
            r.lo = 0;
            r.hi = mask_up(a.hi) | mask_up(b.hi);
        }
        HAluOp::Shl => {
            if let Some(c) = b.as_const() {
                let c = c & 31;
                r.ones = a.ones << c;
                r.zeros = !(!a.zeros << c);
                if a.hi <= u32::MAX >> c {
                    r.lo = a.lo << c;
                    r.hi = a.hi << c;
                }
            }
        }
        HAluOp::Shr => {
            if let Some(c) = b.as_const() {
                let c = c & 31;
                r.ones = a.ones >> c;
                r.zeros = !(!a.zeros >> c);
                r.lo = a.lo >> c;
                r.hi = a.hi >> c;
            } else {
                // Any shift amount: the result never exceeds the input.
                r.lo = 0;
                r.hi = a.hi;
            }
        }
        HAluOp::Sar => {
            let width_mask = |c: u32| if c == 0 { u32::MAX } else { u32::MAX >> c };
            if a.zeros >> 31 != 0 {
                // Sign known clear: behaves exactly like a logical shift.
                return alu_result(HAluOp::Shr, a, b);
            }
            if let Some(c) = b.as_const() {
                let c = c & 31;
                r.zeros = (a.zeros >> c) & width_mask(c);
                r.ones = (a.ones >> c) & width_mask(c);
                if a.ones >> 31 != 0 && c > 0 {
                    // Sign known set: the vacated bits fill with ones.
                    r.ones |= !width_mask(c);
                }
            }
        }
        HAluOp::SltU => {
            r = bool_range();
            if a.hi < b.lo {
                r = AbsVal::constant(1);
            } else if a.lo >= b.hi {
                r = AbsVal::constant(0);
            }
        }
        HAluOp::SltS => r = bool_range(),
    }
    r.normalize()
}

/// The abstract value of a boolean result (`{0, 1}`).
fn bool_range() -> AbsVal {
    AbsVal { zeros: !1, ones: 0, lo: 0, hi: 1 }
}

/// Abstract evaluation of a `FlagsArith` materialization: what is known
/// about the produced flags word (agrees with [`eval_flags`] on
/// constants).
pub fn flags_result(kind: FlagsKind, a: AbsVal, b: AbsVal) -> AbsVal {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return AbsVal::constant(eval_flags(kind, x, y));
    }
    if kind == FlagsKind::Logic {
        // Logic flags depend on operand `a` alone.
        if let Some(x) = a.as_const() {
            return AbsVal::constant(eval_flags(kind, x, 0));
        }
    }
    let mut zeros = !FLAGS_MASK;
    let mut ones = 0;
    match kind {
        FlagsKind::Logic => {
            zeros |= CF | OF;
            if a.lo > 0 {
                zeros |= ZF;
            }
            if a.zeros >> 31 != 0 {
                zeros |= SF;
            } else if a.ones >> 31 != 0 {
                ones |= SF;
            }
        }
        FlagsKind::Sub => {
            if a.hi < b.lo {
                // a < b for every operand pair: borrow, never equal.
                ones |= CF;
                zeros |= ZF;
            } else if a.lo >= b.hi {
                // a >= b always: no borrow; strictly greater rules out ZF.
                zeros |= CF;
                if a.lo > b.hi {
                    zeros |= ZF;
                }
            }
        }
        FlagsKind::Add if a.hi.checked_add(b.hi).is_some() => {
            // The true sum never wraps: no carry-out. The minimum sum
            // cannot overflow either (lo <= hi on both sides), so a
            // positive minimum rules out a zero result.
            zeros |= CF;
            if a.lo + b.lo > 0 {
                zeros |= ZF;
            }
        }
        _ => {}
    }
    AbsVal { zeros, ones, lo: 0, hi: FLAGS_MASK }.normalize()
}

/// Decides a branch condition from a flags-word fact: `Some(taken)`
/// when the known bits determine the outcome, `None` otherwise.
pub fn decide(cond: Cond, f: &AbsVal) -> Option<bool> {
    let bit = |m: u32| {
        if f.ones & m != 0 {
            Some(true)
        } else if f.zeros & m != 0 {
            Some(false)
        } else {
            None
        }
    };
    let (cf, zf, sf, of) = (bit(CF), bit(ZF), bit(SF), bit(OF));
    let ne = |x: Option<bool>, y: Option<bool>| Some(x? != y?);
    let and = |x: Option<bool>, y: Option<bool>| match (x, y) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    };
    let or = |x: Option<bool>, y: Option<bool>| match (x, y) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    };
    let not = |x: Option<bool>| x.map(|v| !v);
    match cond {
        Cond::E => zf,
        Cond::Ne => not(zf),
        Cond::L => ne(sf, of),
        Cond::Le => or(zf, ne(sf, of)),
        Cond::G => and(not(zf), not(ne(sf, of))),
        Cond::Ge => not(ne(sf, of)),
        Cond::B => cf,
        Cond::Be => or(cf, zf),
        Cond::A => and(not(cf), not(zf)),
        Cond::Ae => not(cf),
        Cond::S => sf,
        Cond::Ns => not(sf),
    }
}

/// Abstract state at one program point: facts per integer register.
/// Absent registers are unconstrained (top); `r0` is the hardwired
/// zero register.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValMap(HashMap<IrReg, AbsVal>);

impl ValMap {
    /// The fact for `r`, if anything is known.
    pub fn get(&self, r: IrReg) -> Option<AbsVal> {
        if r == IrReg::Phys(HReg(0)) {
            return Some(AbsVal::constant(0));
        }
        self.0.get(&r).copied()
    }

    /// The fact for `r`, defaulting to top.
    pub fn get_or_top(&self, r: IrReg) -> AbsVal {
        self.get(r).unwrap_or_else(AbsVal::top)
    }

    fn set(&mut self, r: IrReg, v: AbsVal) {
        if v == AbsVal::top() {
            self.0.remove(&r);
        } else {
            self.0.insert(r, v);
        }
    }
}

impl Lattice for ValMap {
    fn join(&mut self, other: &ValMap) {
        self.0.retain(|k, _| other.0.contains_key(k));
        for (k, v) in &mut self.0 {
            v.join(&other.0[k]);
        }
    }
}

/// The forward known-bits/range analysis.
pub struct KnownBits;

impl Analysis for KnownBits {
    type Fact = ValMap;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary(&self, _block: &IrBlock) -> ValMap {
        ValMap::default()
    }

    fn transfer(&self, op: &IrOp, _idx: usize, fact: &mut ValMap, _block: &IrBlock) {
        match op.inst {
            IrInst::Alu { op, rd, ra, rb } => {
                let v = alu_result(op, fact.get_or_top(ra), fact.get_or_top(rb));
                fact.set(rd, v);
            }
            IrInst::AluI { op, rd, ra, imm } => {
                let v = alu_result(op, fact.get_or_top(ra), AbsVal::constant(imm as u32));
                fact.set(rd, v);
            }
            IrInst::Li { rd, imm } => fact.set(rd, AbsVal::constant(imm as u32)),
            IrInst::FlagsArith { kind, rd, ra, rb } => {
                let v = flags_result(kind, fact.get_or_top(ra), fact.get_or_top(rb));
                fact.set(rd, v);
            }
            IrInst::Ld { rd, width, .. } => {
                let v = match width {
                    Width::W1 => AbsVal { zeros: !0xFF, ones: 0, lo: 0, hi: 0xFF },
                    Width::W2 => AbsVal { zeros: !0xFFFF, ones: 0, lo: 0, hi: 0xFFFF },
                    Width::W4 | Width::W8 => AbsVal::top(),
                };
                fact.set(rd, v);
            }
            IrInst::Mul { rd, .. } | IrInst::Div { rd, .. } | IrInst::CvtFI { rd, .. } => {
                fact.set(rd, AbsVal::top());
            }
            IrInst::Nop
            | IrInst::Prefetch { .. }
            | IrInst::St { .. }
            | IrInst::FSt { .. }
            | IrInst::FLd { .. }
            | IrInst::FMov { .. }
            | IrInst::FArith { .. }
            | IrInst::CvtIF { .. }
            | IrInst::BrFlags { .. } => {}
        }
    }
}

/// Known-bits facts per program point: `facts[i]` holds immediately
/// before `block.ops[i]`, so an op's result fact is `facts[i + 1]` at
/// its destination.
pub fn facts(block: &IrBlock) -> Vec<ValMap> {
    super::solve(&KnownBits, block)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u32) -> AbsVal {
        AbsVal::constant(x)
    }

    #[test]
    fn constants_fold_exactly_through_every_op() {
        for op in [
            HAluOp::Add,
            HAluOp::Sub,
            HAluOp::And,
            HAluOp::Or,
            HAluOp::Xor,
            HAluOp::Shl,
            HAluOp::Shr,
            HAluOp::Sar,
            HAluOp::SltS,
            HAluOp::SltU,
        ] {
            for (a, b) in [(5, 3), (0xFFFF_FFFF, 1), (0x8000_0000, 33), (0, 0)] {
                assert_eq!(alu_result(op, c(a), c(b)).as_const(), Some(eval_alu(op, a, b)));
            }
        }
    }

    #[test]
    fn and_masks_are_tracked() {
        let a = AbsVal::top();
        let r = alu_result(HAluOp::And, a, c(0xFF));
        assert_eq!(r.zeros, !0xFF);
        assert_eq!(r.hi, 0xFF);
        assert!(r.contains(0x37) && !r.contains(0x100));
    }

    #[test]
    fn narrow_range_sub_decides_compare_flags() {
        // a in [0,255], b = 1000: a < b always -> CF set, ZF clear.
        let a = AbsVal { zeros: !0xFF, ones: 0, lo: 0, hi: 0xFF };
        let f = flags_result(FlagsKind::Sub, a, c(1000));
        assert_eq!(decide(Cond::B, &f), Some(true), "below is decided taken");
        assert_eq!(decide(Cond::E, &f), Some(false), "equality ruled out");
        assert_eq!(decide(Cond::Ae, &f), Some(false));
        assert_eq!(decide(Cond::L, &f), None, "signed compare needs SF/OF");
    }

    #[test]
    fn logic_flags_clear_carry_and_overflow() {
        let f = flags_result(FlagsKind::Logic, AbsVal::top(), c(0));
        assert_eq!(decide(Cond::B, &f), Some(false), "CF known clear");
        assert_eq!(decide(Cond::Ae, &f), Some(true));
        assert_eq!(decide(Cond::E, &f), None, "ZF unknown for a top operand");
    }

    #[test]
    fn join_keeps_only_common_knowledge() {
        let mut a = c(8);
        a.join(&c(12));
        assert!(a.contains(8) && a.contains(12));
        assert_eq!(a.lo, 8);
        assert_eq!(a.hi, 12);
        assert!(a.zeros & 0x4 == 0, "bit 2 differs between 8 and 12");
        assert!(a.ones & 0x8 != 0, "bit 3 common to both");
    }

    #[test]
    fn shifts_and_ranges_compose() {
        let byte = AbsVal { zeros: !0xFF, ones: 0, lo: 0, hi: 0xFF };
        let r = alu_result(HAluOp::Shl, byte, c(8));
        assert_eq!(r.hi, 0xFF00);
        assert_eq!(r.zeros & 0xFF, 0xFF, "low byte vacated");
        let r = alu_result(HAluOp::Shr, AbsVal::top(), c(24));
        assert_eq!(r.hi, 0xFF);
    }

    #[test]
    fn contains_is_the_soundness_predicate() {
        let v = AbsVal { zeros: 1, ones: 2, lo: 2, hi: 100 };
        assert!(v.contains(2) && v.contains(98));
        assert!(!v.contains(3), "bit 0 claimed zero");
        assert!(!v.contains(4), "bit 1 claimed one");
        assert!(!v.contains(102), "above hi");
    }
}
