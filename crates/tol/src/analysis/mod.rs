//! Reusable dataflow / abstract-interpretation framework for the
//! linear IR (DESIGN.md §13).
//!
//! Translated blocks are straight-line bodies whose branches only exit
//! forward into stubs, so every dataflow problem over them is solved by
//! a sweep per direction; the generic driver in [`solve`] still
//! iterates to a fixpoint so analyses stay correct if richer control
//! flow ever appears. Two analyses are provided:
//!
//! * [`liveness`] — backward flag- and register-liveness. Exit points
//!   (side exits and the block end) observe the whole pinned guest
//!   state, so a pinned definition is dead only when it is re-defined
//!   before the next use, branch, or the body end. This is what powers
//!   the `deadflags` pass (IR-level dead-flag elision).
//! * [`knownbits`] — a forward known-bits + unsigned-range abstract
//!   domain over [`IrReg`] values, tracking `FlagsArith` kinds
//!   precisely enough to statically decide `BrFlags` conditions. This
//!   powers the `rangesimp` pass (branch folding and masked-ALU
//!   strength reduction).
//!
//! The analyses are themselves checkable: [`oracle`] replays a block
//! concretely through the reference host semantics and asserts every
//! claimed fact, and the structural verifier recomputes both analyses
//! independently when checking the consuming passes.
//!
//! [`IrReg`]: crate::ir::IrReg

pub mod knownbits;
pub mod liveness;
pub mod oracle;

use crate::ir::{IrBlock, IrOp};

/// Sweep direction of an [`Analysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the block entry toward the exit.
    Forward,
    /// Facts flow from the exits toward the entry.
    Backward,
}

/// A join-semilattice of dataflow facts.
pub trait Lattice: Clone + PartialEq {
    /// Joins `other` into `self` (least upper bound).
    fn join(&mut self, other: &Self);
}

/// One dataflow problem over a linear [`IrBlock`].
pub trait Analysis {
    /// The fact attached to every program point.
    type Fact: Lattice;

    /// Which way facts propagate.
    const DIRECTION: Direction;

    /// The fact holding at the boundary: block entry for forward
    /// analyses, every exit point for backward analyses.
    fn boundary(&self, block: &IrBlock) -> Self::Fact;

    /// Applies `op`'s effect to `fact`. For a forward analysis `fact`
    /// is the state before the op and becomes the state after; for a
    /// backward analysis it is the state after and becomes the state
    /// before.
    fn transfer(&self, op: &IrOp, idx: usize, fact: &mut Self::Fact, block: &IrBlock);
}

/// Generic fixpoint driver: returns one fact per program point,
/// `facts[i]` holding immediately before `block.ops[i]` and
/// `facts[len]` after the last op. Linear blocks converge after one
/// sweep (plus one confirming pass); the driver iterates regardless,
/// so it remains a true fixpoint computation.
pub fn solve<A: Analysis>(a: &A, block: &IrBlock) -> Vec<A::Fact> {
    let n = block.ops.len();
    let boundary = a.boundary(block);
    let mut facts: Vec<A::Fact> = vec![boundary.clone(); n + 1];
    loop {
        let mut changed = false;
        match A::DIRECTION {
            Direction::Forward => {
                for i in 0..n {
                    let mut f = facts[i].clone();
                    a.transfer(&block.ops[i], i, &mut f, block);
                    if f != facts[i + 1] {
                        facts[i + 1] = f;
                        changed = true;
                    }
                }
            }
            Direction::Backward => {
                if facts[n] != boundary {
                    facts[n] = boundary.clone();
                    changed = true;
                }
                for i in (0..n).rev() {
                    let mut f = facts[i + 1].clone();
                    a.transfer(&block.ops[i], i, &mut f, block);
                    if f != facts[i] {
                        facts[i] = f;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return facts;
        }
    }
}

/// Per-region analysis dump for `darco analyze`: decodes the basic
/// block at `entry`, translates it with eager flag materialization,
/// and renders each op with its known-bits/range fact, flag-liveness
/// verdict, and statically decided branches, followed by the pass
/// opportunity counts.
///
/// # Errors
///
/// Propagates the guest [`DecodeError`] if `entry` does not decode.
///
/// [`DecodeError`]: darco_guest::DecodeError
pub fn analyze_region_text(
    mem: &darco_guest::GuestMem,
    entry: u32,
) -> Result<String, darco_guest::DecodeError> {
    use crate::ir::{IrInst, IrReg, FLAGS_REG};
    use std::fmt::Write as _;

    let region = crate::translate::decode_bb(mem, entry)?;
    let block = crate::translate::translate_region_with(&region, true);
    let vals = knownbits::facts(&block);
    let live = liveness::facts(&block);
    let mut out = String::new();
    let mut dead_flags = 0usize;
    let mut decided = 0usize;
    let _ = writeln!(
        out,
        "region @ {entry:#x}: {} guest insts, {} IR ops",
        region.len(),
        block.ops.len()
    );
    for (i, op) in block.ops.iter().enumerate() {
        let mut note = String::new();
        if let Some(d) = op.inst.dst() {
            if let Some(v) = vals[i + 1].get(d) {
                let _ = write!(note, " {d}={v}");
            }
            if matches!(op.inst, IrInst::FlagsArith { .. }) && !live[i + 1].contains_int(d) {
                dead_flags += 1;
                note.push_str("  DEAD (deadflags kills)");
            }
        }
        if let IrInst::BrFlags { cond, flags, .. } = op.inst {
            let f = vals[i].get(flags).unwrap_or_else(knownbits::AbsVal::top);
            match knownbits::decide(cond, &f) {
                Some(true) => {
                    decided += 1;
                    note.push_str("  ALWAYS taken (rangesimp folds tail)");
                }
                Some(false) => {
                    decided += 1;
                    note.push_str("  NEVER taken (rangesimp deletes)");
                }
                None => note.push_str("  undecided"),
            }
        }
        let _ = writeln!(out, "{i:4}: {}   ; g{}{}", op.inst, op.guest_idx, note);
    }
    let flags_live_out = live[block.ops.len()].contains_int(IrReg::Phys(FLAGS_REG));
    let _ = writeln!(
        out,
        "opportunities: {dead_flags} dead flag def(s), {decided} decided branch(es); flags live-out: {flags_live_out}"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrInst, IrOp, IrReg};
    use darco_host::{Exit, HAluOp, HReg};

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![],
            stub_guest_counts: vec![],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn forward_driver_reaches_fixpoint_in_one_sweep() {
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 7 },
            IrInst::AluI { op: HAluOp::Add, rd: IrReg::Phys(HReg(1)), ra: IrReg::Virt(0), imm: 1 },
        ]);
        let facts = knownbits::facts(&b);
        assert_eq!(facts.len(), 3);
        assert_eq!(facts[1].get(IrReg::Virt(0)).and_then(|v| v.as_const()), Some(7));
        assert_eq!(facts[2].get(IrReg::Phys(HReg(1))).and_then(|v| v.as_const()), Some(8));
    }
}
