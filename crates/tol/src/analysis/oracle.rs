//! Runtime soundness oracle for the abstract interpreter.
//!
//! Static analyses earn no trust by construction: this oracle replays a
//! block concretely through the reference host semantics (the same
//! [`exec_inst`]-backed interpreter translation validation uses) on
//! randomized pinned states and seeded memory, and asserts after every
//! op that the concrete destination value satisfies the known-bits/range
//! fact the analysis claimed for that program point — and that every
//! statically decided `BrFlags` resolves the way the concrete execution
//! actually went. Any violation is a soundness bug in the analysis, not
//! in the block, and is reported as a miscompile by the pipeline when
//! checking is enabled (debug and cosim builds).
//!
//! [`exec_inst`]: darco_host::exec_inst

use super::knownbits::{self, AbsVal};
use crate::ir::{IrBlock, IrInst};
use crate::verify::tv;

/// Replays `block` concretely `trials` times, asserting every abstract
/// fact against the executed values.
///
/// # Errors
///
/// A description of the first violated claim: the op index, the
/// register, the claimed fact, and the concrete value that escapes it.
pub fn check_block(block: &IrBlock, trials: u64) -> Result<(), String> {
    let facts = knownbits::facts(block);
    // Decorrelate from the differential validator's trial stream.
    let mut rng = tv::SplitMix64(tv::block_seed(block) ^ 0xA5A5_5A5A_0BAD_CAFE);
    for trial in 0..trials {
        let (init, mut mem) = tv::random_init(&mut rng);
        let mut violation: Option<String> = None;
        let mut env = tv::ExecEnv::new(init);
        env.run_with(block, &mut mem, |i, env, taken| {
            if violation.is_some() {
                return;
            }
            let op = &block.ops[i];
            if let IrInst::BrFlags { cond, flags, .. } = op.inst {
                let f = facts[i].get(flags).unwrap_or_else(AbsVal::top);
                if let (Some(dec), Some(t)) = (knownbits::decide(cond, &f), taken) {
                    if dec != t {
                        violation = Some(format!(
                            "trial {trial}, op {i} ({}): branch decided {dec} but concretely taken={t} (flags fact {f})",
                            op.inst
                        ));
                    }
                }
                return;
            }
            if let Some(d) = op.inst.dst() {
                if let Some(fact) = facts[i + 1].get(d) {
                    let v = env.read(d);
                    if !fact.contains(v) {
                        violation = Some(format!(
                            "trial {trial}, op {i} ({}): {d} = {v:#x} escapes claimed fact {fact}",
                            op.inst
                        ));
                    }
                }
            }
        });
        if let Some(v) = violation {
            return Err(v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrOp, IrReg};
    use darco_host::{Exit, HAluOp, HReg, Width};

    fn block(ops: Vec<IrInst>, stubs: usize) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![Exit::Halt; stubs],
            stub_guest_counts: vec![1; stubs],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    fn phys(i: u8) -> IrReg {
        IrReg::Phys(HReg(i))
    }

    #[test]
    fn facts_hold_on_a_mixed_block() {
        let b = block(
            vec![
                IrInst::AluI { op: HAluOp::And, rd: IrReg::Virt(0), ra: phys(2), imm: 0xFF },
                IrInst::Ld { rd: phys(3), base: phys(1), off: 0, width: Width::W1 },
                IrInst::Alu { op: HAluOp::Add, rd: phys(4), ra: IrReg::Virt(0), rb: phys(3) },
                IrInst::AluI { op: HAluOp::Shr, rd: phys(5), ra: phys(4), imm: 4 },
            ],
            0,
        );
        check_block(&b, 8).expect("abstract facts must hold concretely");
    }

    #[test]
    fn decided_branches_match_concrete_execution() {
        use crate::ir::FLAGS_REG;
        use darco_guest::Cond;
        use darco_host::FlagsKind;
        // v0 = r2 & 0xFF; flags = sub(v0, 0x100): always below -> B taken.
        let b = block(
            vec![
                IrInst::AluI { op: HAluOp::And, rd: IrReg::Virt(0), ra: phys(2), imm: 0xFF },
                IrInst::Li { rd: IrReg::Virt(1), imm: 0x100 },
                IrInst::FlagsArith {
                    kind: FlagsKind::Sub,
                    rd: IrReg::Phys(FLAGS_REG),
                    ra: IrReg::Virt(0),
                    rb: IrReg::Virt(1),
                },
                IrInst::BrFlags { cond: Cond::B, flags: IrReg::Phys(FLAGS_REG), stub: 0 },
            ],
            1,
        );
        check_block(&b, 8).expect("decided branch agrees with execution");
    }
}
