//! Superblock formation (SBM).
//!
//! When a translated basic block crosses the `BB/SBth` execution
//! threshold, the software layer builds a superblock starting there: it
//! follows the hottest profiled control-flow path across basic blocks —
//! inlining strongly-biased conditional edges and unconditional jumps —
//! until it meets an indirect transfer, a call/return, a block already in
//! the superblock (a loop back-edge), a weakly-biased branch, or the size
//! caps (paper Sec. II-A-1).

use crate::config::TolConfig;
use crate::profile::Profiler;
use crate::translate::{decode_bb_into, RegionInst};
use darco_guest::{DecodeError, GuestMem, Inst};
use std::collections::HashSet;

/// Forms the superblock region rooted at `entry`.
///
/// Returns the guest-instruction path ready for
/// [`translate_region`](crate::translate::translate_region), and the
/// number of basic blocks it spans.
///
/// # Errors
///
/// Propagates decode failures (the region root must already have been
/// translated once, so failures indicate guest self-modification, which
/// is unsupported).
pub fn form_region(
    mem: &GuestMem,
    entry: u32,
    prof: &Profiler,
    cfg: &TolConfig,
) -> Result<(Vec<RegionInst>, u32), DecodeError> {
    let mut region: Vec<RegionInst> = Vec::new();
    let mut visited = HashSet::new();
    let bbs = form_region_into(mem, entry, prof, cfg, &mut region, &mut visited)?;
    Ok((region, bbs))
}

/// [`form_region`] into caller-provided buffers: the region vector is
/// appended to and the visited set filled in, both assumed empty on
/// entry. Lets the engine's scratch arena reuse the allocations across
/// superblock formations.
///
/// # Errors
///
/// Same as [`form_region`]; on error the buffers hold partial contents.
pub(crate) fn form_region_into(
    mem: &GuestMem,
    entry: u32,
    prof: &Profiler,
    cfg: &TolConfig,
    region: &mut Vec<RegionInst>,
    visited: &mut HashSet<u32>,
) -> Result<u32, DecodeError> {
    let mut pc = entry;
    let mut bbs = 0u32;

    loop {
        if !visited.insert(pc) {
            break; // closed a loop: stop before re-entering the superblock
        }
        let start = region.len();
        decode_bb_into(mem, pc, region)?;
        let bb_len = region.len() - start;
        bbs += 1;

        if bbs >= cfg.sb_max_bbs || region.len() as u32 >= cfg.sb_max_insts {
            break;
        }

        // Decide whether to grow through this block's terminal.
        let term_idx = region.len() - 1;
        let term = region[term_idx];
        // A basic block capped at MAX_BB_INSTS has no terminal transfer;
        // stop there.
        if bb_len > 0 && !term.inst.is_block_end() {
            break;
        }
        match term.inst {
            Inst::Jmp { target } => {
                pc = target;
            }
            Inst::Jcc { target, .. } => {
                let Some(edge) = prof.edge(pc) else { break };
                if edge.total() == 0 || edge.bias() < cfg.sb_edge_bias {
                    break;
                }
                let taken = edge.majority_taken();
                region[term_idx].follow_taken = taken;
                pc = if taken { target } else { term.next_pc() };
            }
            _ => break, // call/ret/indirect/halt terminate the superblock
        }
    }
    Ok(bbs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::asm::Asm;
    use darco_guest::{AluOp, Cond, Gpr};

    /// Program: A: cmp;jcc->C | B: add;jmp->D | C: add;jmp->D | D: halt
    fn diamond() -> (GuestMem, u32, u32, u32) {
        let mut a = Asm::new(0x1000);
        let (lc, ld) = (a.fresh_label(), a.fresh_label());
        let entry = a.here();
        a.push(Inst::CmpRI { a: Gpr::Eax, imm: 0 });
        a.push_jcc(Cond::E, lc);
        let b_pc = a.here();
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Ebx, imm: 1 });
        a.push_jmp(ld);
        a.bind(lc);
        let c_pc = a.here();
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Ecx, imm: 1 });
        a.push_jmp(ld);
        a.bind(ld);
        a.push(Inst::Halt);
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        (mem, entry, b_pc, c_pc)
    }

    #[test]
    fn follows_biased_taken_edge() {
        let (mem, entry, _b, c_pc) = diamond();
        let mut prof = Profiler::new();
        for _ in 0..95 {
            prof.record_edge(entry, true);
        }
        for _ in 0..5 {
            prof.record_edge(entry, false);
        }
        let (region, bbs) = form_region(&mem, entry, &prof, &TolConfig::default()).unwrap();
        assert!(bbs >= 3, "A, C and D inlined, got {bbs}");
        assert!(region.iter().any(|r| r.pc == c_pc), "taken path inlined");
        assert!(region[1].follow_taken);
        assert!(matches!(region.last().unwrap().inst, Inst::Halt));
    }

    #[test]
    fn weak_bias_stops_growth() {
        let (mem, entry, _, _) = diamond();
        let mut prof = Profiler::new();
        for _ in 0..50 {
            prof.record_edge(entry, true);
            prof.record_edge(entry, false);
        }
        let (region, bbs) = form_region(&mem, entry, &prof, &TolConfig::default()).unwrap();
        assert_eq!(bbs, 1, "50/50 edge must not be followed");
        assert!(matches!(region.last().unwrap().inst, Inst::Jcc { .. }));
    }

    #[test]
    fn unprofiled_branch_stops_growth() {
        let (mem, entry, _, _) = diamond();
        let prof = Profiler::new();
        let (_, bbs) = form_region(&mem, entry, &prof, &TolConfig::default()).unwrap();
        assert_eq!(bbs, 1);
    }

    #[test]
    fn loops_close_without_unrolling() {
        // L: add ; cmp ; jcc->L (always taken)
        let mut a = Asm::new(0x2000);
        let top = a.fresh_label();
        a.bind(top);
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
        a.push(Inst::CmpRI { a: Gpr::Eax, imm: 1000 });
        a.push_jcc(Cond::Ne, top);
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);

        let mut prof = Profiler::new();
        for _ in 0..100 {
            prof.record_edge(0x2000, true);
        }
        let (region, bbs) = form_region(&mem, 0x2000, &prof, &TolConfig::default()).unwrap();
        assert_eq!(bbs, 1, "back-edge to self terminates formation");
        // The Jcc is followed-marked but last, so it is still the
        // region terminal.
        assert!(matches!(region.last().unwrap().inst, Inst::Jcc { .. }));
    }

    #[test]
    fn caps_respected() {
        // A long chain of single-jump blocks.
        let mut a = Asm::new(0x3000);
        let mut labels = Vec::new();
        for _ in 0..20 {
            labels.push(a.fresh_label());
        }
        for i in 0..20 {
            a.bind(labels[i]);
            a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
            if i + 1 < 20 {
                a.push_jmp(labels[i + 1]);
            } else {
                a.push(Inst::Halt);
            }
        }
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        let cfg = TolConfig { sb_max_bbs: 4, ..TolConfig::default() };
        let (_, bbs) = form_region(&mem, 0x3000, &Profiler::new(), &cfg).unwrap();
        assert_eq!(bbs, 4);
    }
}
