//! Common-subexpression elimination by local value numbering.
//!
//! A forward sweep assigns value numbers to register contents and hashes
//! pure computations. When a computation whose operands carry the same
//! value numbers reappears **and** its previous result lives in a
//! still-valid *virtual* register, the instruction is replaced by a copy
//! (which copy propagation then folds away). Loads participate with a
//! memory version number that every store bumps, so loads are only
//! reused when no store intervened.
//!
//! Only virtual-destination results are reused: pinned guest registers
//! are overwritten unpredictably, while virtuals are single-assignment
//! by construction.

use crate::ir::{IrBlock, IrInst, IrReg};
use darco_host::HAluOp;
use std::collections::HashMap;

type Vn = u32;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Expr {
    Alu(HAluOp, Vn, Vn),
    AluI(HAluOp, Vn, i32),
    Mul(Vn, Vn),
    Const(i64),
    Load(Vn, i32, u8, u64), // base vn, offset, width bytes, memory version
}

#[derive(Default)]
struct Numbering {
    next: Vn,
    reg_vn: HashMap<IrReg, Vn>,
    expr_vn: HashMap<Expr, (Vn, IrReg)>, // value + the virtual holding it
    mem_version: u64,
}

impl Numbering {
    fn fresh(&mut self) -> Vn {
        self.next += 1;
        self.next - 1
    }

    fn vn_of(&mut self, r: IrReg) -> Vn {
        if r == IrReg::ZERO {
            return self.vn_expr_only(Expr::Const(0));
        }
        if let Some(&v) = self.reg_vn.get(&r) {
            return v;
        }
        let v = self.fresh();
        self.reg_vn.insert(r, v);
        v
    }

    /// Value number for an expression without recording a holder.
    fn vn_expr_only(&mut self, e: Expr) -> Vn {
        if let Some(&(v, _)) = self.expr_vn.get(&e) {
            return v;
        }
        let v = self.fresh();
        self.expr_vn.insert(e, (v, IrReg::ZERO));
        v
    }

    fn kill(&mut self, r: IrReg) {
        self.reg_vn.remove(&r);
        self.expr_vn.retain(|_, (_, holder)| *holder != r);
    }
}

/// Runs CSE in place.
pub fn run(block: &mut IrBlock) {
    let mut n = Numbering::default();
    for op in &mut block.ops {
        let expr = match op.inst {
            IrInst::Alu { op: o, ra, rb, .. } => {
                let (va, vb) = (n.vn_of(ra), n.vn_of(rb));
                // Canonicalize commutative operand order.
                let (va, vb) = match o {
                    HAluOp::Add | HAluOp::And | HAluOp::Or | HAluOp::Xor => {
                        (va.min(vb), va.max(vb))
                    }
                    _ => (va, vb),
                };
                Some(Expr::Alu(o, va, vb))
            }
            IrInst::AluI { op: o, ra, imm, .. } => Some(Expr::AluI(o, n.vn_of(ra), imm)),
            IrInst::Mul { ra, rb, .. } => {
                let (va, vb) = (n.vn_of(ra), n.vn_of(rb));
                Some(Expr::Mul(va.min(vb), va.max(vb)))
            }
            IrInst::Li { imm, .. } => Some(Expr::Const(imm)),
            IrInst::Ld { base, off, width, .. } => {
                Some(Expr::Load(n.vn_of(base), off, width.bytes(), n.mem_version))
            }
            _ => None,
        };

        if op.inst.is_store() {
            n.mem_version += 1;
        }

        let Some(rd) = op.inst.dst() else { continue };
        let Some(expr) = expr else {
            // Opaque definition (div, flags, cvt): fresh value.
            n.kill(rd);
            let v = n.fresh();
            n.reg_vn.insert(rd, v);
            continue;
        };

        match n.expr_vn.get(&expr) {
            Some(&(v, holder)) if matches!(holder, IrReg::Virt(_)) && holder != rd => {
                // Reuse: replace with a copy from the holder.
                op.inst = IrInst::AluI { op: HAluOp::Or, rd, ra: holder, imm: 0 };
                n.kill(rd);
                n.reg_vn.insert(rd, v);
            }
            _ => {
                let v = n.fresh();
                n.kill(rd);
                n.reg_vn.insert(rd, v);
                // Record the holder only for single-assignment virtuals.
                if matches!(rd, IrReg::Virt(_)) {
                    n.expr_vn.insert(expr, (v, rd));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrOp;
    use darco_host::{Exit, HReg, Width};

    fn phys(i: u8) -> IrReg {
        IrReg::Phys(HReg(i))
    }

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![],
            stub_guest_counts: vec![],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    fn is_copy_from(inst: &IrInst, src: IrReg) -> bool {
        matches!(*inst, IrInst::AluI { op: HAluOp::Or, ra, imm: 0, .. } if ra == src)
    }

    #[test]
    fn repeated_address_computation_reused() {
        // Twice: t = r2 << 2 ; second becomes a copy of the first.
        let mut b = block(vec![
            IrInst::AluI { op: HAluOp::Shl, rd: IrReg::Virt(0), ra: phys(2), imm: 2 },
            IrInst::AluI { op: HAluOp::Shl, rd: IrReg::Virt(1), ra: phys(2), imm: 2 },
        ]);
        run(&mut b);
        assert!(is_copy_from(&b.ops[1].inst, IrReg::Virt(0)), "{:?}", b.ops[1].inst);
    }

    #[test]
    fn operand_redefinition_blocks_reuse() {
        let mut b = block(vec![
            IrInst::AluI { op: HAluOp::Shl, rd: IrReg::Virt(0), ra: phys(2), imm: 2 },
            IrInst::AluI { op: HAluOp::Add, rd: phys(2), ra: phys(2), imm: 4 },
            IrInst::AluI { op: HAluOp::Shl, rd: IrReg::Virt(1), ra: phys(2), imm: 2 },
        ]);
        run(&mut b);
        assert!(!is_copy_from(&b.ops[2].inst, IrReg::Virt(0)), "r2 changed; recompute required");
    }

    #[test]
    fn loads_reused_until_a_store_intervenes() {
        let ld = |rd| IrInst::Ld { rd, base: phys(3), off: 0, width: Width::W4 };
        let mut b = block(vec![
            ld(IrReg::Virt(0)),
            ld(IrReg::Virt(1)), // reusable
            IrInst::St { rs: phys(1), base: phys(4), off: 0, width: Width::W4 },
            ld(IrReg::Virt(2)), // must reload
        ]);
        run(&mut b);
        assert!(is_copy_from(&b.ops[1].inst, IrReg::Virt(0)));
        assert!(b.ops[3].inst.is_load(), "store invalidates memory values");
    }

    #[test]
    fn commutative_operands_canonicalized() {
        let mut b = block(vec![
            IrInst::Alu { op: HAluOp::Add, rd: IrReg::Virt(0), ra: phys(1), rb: phys(2) },
            IrInst::Alu { op: HAluOp::Add, rd: IrReg::Virt(1), ra: phys(2), rb: phys(1) },
        ]);
        run(&mut b);
        assert!(is_copy_from(&b.ops[1].inst, IrReg::Virt(0)));
    }

    #[test]
    fn loads_of_different_widths_are_distinct_values() {
        // A byte load and a word load from the same address are not the
        // same value: the width is part of the value number.
        let mut b = block(vec![
            IrInst::Ld { rd: IrReg::Virt(0), base: phys(3), off: 0, width: Width::W1 },
            IrInst::Ld { rd: IrReg::Virt(1), base: phys(3), off: 0, width: Width::W4 },
        ]);
        run(&mut b);
        assert!(b.ops[1].inst.is_load(), "different widths must both load");
    }

    #[test]
    fn phys_results_not_reused() {
        // Same expression into pinned registers: both must stay (the
        // holder could be clobbered between uses).
        let mut b = block(vec![
            IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(2), rb: phys(3) },
            IrInst::Alu { op: HAluOp::Add, rd: phys(4), ra: phys(2), rb: phys(3) },
        ]);
        run(&mut b);
        assert!(matches!(b.ops[1].inst, IrInst::Alu { .. }));
    }
}
