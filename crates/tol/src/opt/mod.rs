//! The SBM optimization pipeline.
//!
//! The paper lists the passes the software layer applies to superblocks
//! (Sec. II-A-1): copy/constant propagation, constant folding, common
//! subexpression elimination, dead code elimination, register allocation
//! and instruction scheduling. Each lives in its own module here and
//! operates on the linear [`IrBlock`](crate::ir::IrBlock) form — no join
//! points, side exits observe the pinned guest state.
//!
//! [`optimize`] runs the pipeline in the canonical order; individual
//! passes can be switched off through [`TolConfig`](crate::TolConfig)
//! for the ablation experiments.

pub mod constprop;
pub mod cse;
pub mod dce;
pub mod regalloc;
pub mod schedule;
pub mod swprefetch;

use crate::config::TolConfig;
use crate::ir::{IrBlock, RegMap};

/// Why optimization could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptError {
    /// Register pressure exceeded the scratch register file; the caller
    /// falls back to unoptimized lowering (the optimizer bails, which
    /// real dynamic optimizers also do under pressure).
    OutOfRegisters,
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::OutOfRegisters => write!(f, "register pressure exceeds scratch file"),
        }
    }
}

impl std::error::Error for OptError {}

/// Runs the enabled passes over `block` and allocates registers.
///
/// Returns the optimized block and the virtual-register assignment.
///
/// # Errors
///
/// [`OptError::OutOfRegisters`] if allocation fails; the block is
/// unusable in that case and the caller should lower the unoptimized IR.
pub fn optimize(mut block: IrBlock, cfg: &TolConfig) -> Result<(IrBlock, RegMap), OptError> {
    if cfg.opt_const_prop || cfg.opt_const_fold {
        constprop::run(&mut block, cfg.opt_const_fold);
    }
    if cfg.opt_cse {
        cse::run(&mut block);
        // CSE introduces copies; clean them up.
        constprop::run(&mut block, cfg.opt_const_fold);
    }
    if cfg.opt_dce {
        dce::run(&mut block);
    }
    if cfg.opt_sw_prefetch {
        swprefetch::run(&mut block);
    }
    if cfg.opt_schedule {
        schedule::run(&mut block);
    }
    let map = regalloc::run(&block)?;
    Ok((block, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrInst, IrOp, IrReg};
    use darco_host::{Exit, HAluOp, HReg};

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops
                .into_iter()
                .enumerate()
                .map(|(i, inst)| IrOp { inst, guest_idx: i as u32 })
                .collect(),
            stubs: vec![],
            stub_guest_counts: vec![],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn full_pipeline_shrinks_redundant_code() {
        // li t0, 5 ; add r1 <- r1 + t0 ; li t1, 5 ; add r2 <- r2 + t1
        // After const prop + DCE the two `li`s fold into AluI and vanish.
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 5 },
            IrInst::Alu { op: HAluOp::Add, rd: IrReg::Phys(HReg(1)), ra: IrReg::Phys(HReg(1)), rb: IrReg::Virt(0) },
            IrInst::Li { rd: IrReg::Virt(1), imm: 5 },
            IrInst::Alu { op: HAluOp::Add, rd: IrReg::Phys(HReg(2)), ra: IrReg::Phys(HReg(2)), rb: IrReg::Virt(1) },
        ]);
        let (opt, map) = optimize(b, &TolConfig::default()).unwrap();
        let live: Vec<_> = opt.ops.iter().filter(|o| o.inst != IrInst::Nop).collect();
        assert_eq!(live.len(), 2, "only the two AluIs remain: {live:?}");
        assert!(map.int.is_empty(), "no virtuals survive");
    }

    #[test]
    fn disabled_passes_preserve_block() {
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 5 },
            IrInst::Alu { op: HAluOp::Add, rd: IrReg::Phys(HReg(1)), ra: IrReg::Phys(HReg(1)), rb: IrReg::Virt(0) },
        ]);
        let cfg = TolConfig::no_optimization();
        let (opt, map) = optimize(b.clone(), &cfg).unwrap();
        assert_eq!(opt.ops.len(), b.ops.len());
        assert_eq!(map.int.len(), 1);
    }
}
