//! The SBM optimization pipeline and its self-verifying pass manager.
//!
//! The paper lists the passes the software layer applies to superblocks
//! (Sec. II-A-1): copy/constant propagation, constant folding, common
//! subexpression elimination, dead code elimination, register allocation
//! and instruction scheduling. Each lives in its own module here and
//! operates on the linear [`IrBlock`] form — no join
//! points, side exits observe the pinned guest state.
//!
//! [`optimize`] runs the pipeline in the canonical order; individual
//! passes can be switched off through [`TolConfig`]
//! for the ablation experiments.
//!
//! The pass manager snapshots the block around every pass and hands the
//! pair to the [`crate::verify`] layer (structural invariants plus
//! translation validation). Verification is always on in debug and test
//! builds; release builds opt in via [`TolConfig::verify`]. A failure
//! aborts optimization with [`OptError::Miscompile`] naming the pass,
//! the invariant, and an IR diff — the engine then falls back to
//! unoptimized lowering, exactly like a register-pressure bailout.

pub mod constprop;
pub mod cse;
pub mod dce;
pub mod deadflags;
pub mod rangesimp;
pub mod regalloc;
pub mod schedule;
pub mod swprefetch;

use crate::config::TolConfig;
use crate::ir::{self, IrBlock, IrInst, RegMap};
use crate::verify::{self, PassDelta, PassKind, VerifyFailure, VerifyStats};

/// Why optimization could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// Register pressure exceeded the scratch register file; the caller
    /// falls back to unoptimized lowering (the optimizer bails, which
    /// real dynamic optimizers also do under pressure).
    OutOfRegisters,
    /// The verifier caught a pass producing a non-equivalent or
    /// ill-formed block. The payload names the pass and invariant and
    /// carries an IR diff; the caller must discard the optimized block.
    Miscompile(Box<VerifyFailure>),
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::OutOfRegisters => write!(f, "register pressure exceeds scratch file"),
            OptError::Miscompile(failure) => write!(f, "{failure}"),
        }
    }
}

impl std::error::Error for OptError {}

/// Analysis-level effects a pass reports back to the pipeline driver
/// for the per-pass accounting (`RunSummary::pass_deltas`).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PassEffect {
    /// Dead `FlagsArith` definitions deleted.
    pub flags_killed: u32,
    /// `BrFlags` statically folded.
    pub branches_folded: u32,
}

/// One pipeline pass: a name for verifier reports, the transformation
/// shape the verifier holds it to, and the transformation itself.
pub(crate) struct Pass {
    pub name: &'static str,
    pub kind: PassKind,
    pub run: fn(&mut IrBlock, &TolConfig) -> PassEffect,
}

/// Builds the canonical pass order for `cfg` (Sec. II-A-1), extended
/// with the analysis-driven passes (DESIGN.md §13): `deadflags` first —
/// it restores the intrinsically elided flag shapes the later passes
/// expect — and `rangesimp` after the propagation passes have seeded
/// constants, before DCE sweeps what folding freed.
fn pipeline(cfg: &TolConfig) -> Vec<Pass> {
    let mut passes = Vec::new();
    if cfg.opt_deadflags {
        passes.push(Pass {
            name: "deadflags",
            kind: PassKind::DeadFlags,
            run: |b, _| PassEffect { flags_killed: deadflags::run(b), branches_folded: 0 },
        });
    }
    if cfg.opt_const_prop || cfg.opt_const_fold {
        passes.push(Pass {
            name: "constprop",
            kind: PassKind::Rewrite,
            run: |b, c| {
                constprop::run(b, c.opt_const_fold);
                PassEffect::default()
            },
        });
    }
    if cfg.opt_cse {
        passes.push(Pass {
            name: "cse",
            kind: PassKind::Rewrite,
            run: |b, _| {
                cse::run(b);
                PassEffect::default()
            },
        });
        // CSE introduces copies; clean them up.
        passes.push(Pass {
            name: "constprop-cleanup",
            kind: PassKind::Rewrite,
            run: |b, c| {
                constprop::run(b, c.opt_const_fold);
                PassEffect::default()
            },
        });
    }
    if cfg.opt_rangesimp {
        passes.push(Pass {
            name: "rangesimp",
            kind: PassKind::BranchFold,
            run: |b, _| {
                let stats = rangesimp::run(b);
                PassEffect { flags_killed: 0, branches_folded: stats.branches_folded }
            },
        });
    }
    if cfg.opt_dce {
        passes.push(Pass {
            name: "dce",
            kind: PassKind::Dce,
            run: |b, _| {
                dce::run(b);
                PassEffect::default()
            },
        });
    }
    if cfg.opt_sw_prefetch {
        passes.push(Pass {
            name: "swprefetch",
            kind: PassKind::Insert,
            run: |b, _| {
                swprefetch::run(b);
                PassEffect::default()
            },
        });
    }
    if cfg.opt_schedule {
        passes.push(Pass {
            name: "schedule",
            kind: PassKind::Schedule,
            run: |b, _| {
                schedule::run(b);
                PassEffect::default()
            },
        });
    }
    passes
}

/// Concrete replay trials the soundness oracle runs per optimized
/// block when checking is enabled.
const ORACLE_TRIALS: u64 = 2;

/// Non-`Nop` instruction count (the measure the per-pass deltas use).
fn count_live(block: &IrBlock) -> usize {
    block.ops.iter().filter(|o| o.inst != IrInst::Nop).count()
}

/// Runs the enabled passes over `block` and allocates registers.
///
/// Returns the optimized block and the virtual-register assignment.
///
/// # Errors
///
/// [`OptError::OutOfRegisters`] if allocation fails, or
/// [`OptError::Miscompile`] if the verifier rejects a pass; the block is
/// unusable in either case and the caller should lower the unoptimized
/// IR.
pub fn optimize(block: IrBlock, cfg: &TolConfig) -> Result<(IrBlock, RegMap), OptError> {
    optimize_stats(block, cfg).map(|(b, m, _)| (b, m))
}

/// [`optimize`], additionally reporting what the verifier did.
///
/// # Errors
///
/// Same as [`optimize`].
pub fn optimize_stats(
    block: IrBlock,
    cfg: &TolConfig,
) -> Result<(IrBlock, RegMap, VerifyStats), OptError> {
    run_pipeline(block, cfg, &pipeline(cfg))
}

/// Pipeline driver, parameterized over the pass list so tests can
/// inject deliberately broken passes and prove the verifier catches
/// them.
pub(crate) fn run_pipeline(
    mut block: IrBlock,
    cfg: &TolConfig,
    passes: &[Pass],
) -> Result<(IrBlock, RegMap, VerifyStats), OptError> {
    let checking = cfg.verify || cfg!(debug_assertions);
    let mut stats = VerifyStats::default();
    let original = checking.then(|| block.clone());
    for pass in passes {
        let pre = checking.then(|| block.clone());
        let live_before = count_live(&block);
        let start = std::time::Instant::now();
        let effect = (pass.run)(&mut block, cfg);
        verify::merge_nanos(&mut stats.pass_nanos, pass.name, start.elapsed().as_nanos() as u64);
        verify::merge_delta(
            &mut stats.pass_deltas,
            &PassDelta {
                pass: pass.name.to_string(),
                runs: 1,
                insts_removed: live_before as i64 - count_live(&block) as i64,
                flags_killed: u64::from(effect.flags_killed),
                branches_folded: u64::from(effect.branches_folded),
            },
        );
        if let Some(pre) = &pre {
            if *pre != block {
                verify::check_pass(pass.name, pass.kind, pre, &block, &mut stats)
                    .map_err(OptError::Miscompile)?;
            }
        }
    }
    if checking {
        // Soundness oracle: replay the optimized block concretely and
        // assert every abstract fact the analyses claim about it.
        if let Err(detail) = crate::analysis::oracle::check_block(&block, ORACLE_TRIALS) {
            return Err(OptError::Miscompile(Box::new(VerifyFailure {
                pass: "analysis",
                invariant: "abstract facts sound on concrete execution",
                detail,
                pre_ir: ir::pretty(&block),
                post_ir: ir::pretty(&block),
            })));
        }
    }
    let map = regalloc::run(&block)?;
    if let Some(original) = &original {
        verify::check_result(original, &block, &map, &mut stats).map_err(OptError::Miscompile)?;
    }
    Ok((block, map, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrInst, IrOp, IrReg};
    use darco_host::{Exit, HAluOp, HReg, Width};

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops
                .into_iter()
                .enumerate()
                .map(|(i, inst)| IrOp { inst, guest_idx: i as u32 })
                .collect(),
            stubs: vec![],
            stub_guest_counts: vec![],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn full_pipeline_shrinks_redundant_code() {
        // li t0, 5 ; add r1 <- r1 + t0 ; li t1, 5 ; add r2 <- r2 + t1
        // After const prop + DCE the two `li`s fold into AluI and vanish.
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 5 },
            IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(1)),
                ra: IrReg::Phys(HReg(1)),
                rb: IrReg::Virt(0),
            },
            IrInst::Li { rd: IrReg::Virt(1), imm: 5 },
            IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(2)),
                ra: IrReg::Phys(HReg(2)),
                rb: IrReg::Virt(1),
            },
        ]);
        let (opt, map) = optimize(b, &TolConfig::default()).unwrap();
        let live: Vec<_> = opt.ops.iter().filter(|o| o.inst != IrInst::Nop).collect();
        assert_eq!(live.len(), 2, "only the two AluIs remain: {live:?}");
        assert!(map.int.is_empty(), "no virtuals survive");
    }

    #[test]
    fn disabled_passes_preserve_block() {
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 5 },
            IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(1)),
                ra: IrReg::Phys(HReg(1)),
                rb: IrReg::Virt(0),
            },
        ]);
        let cfg = TolConfig::no_optimization();
        let (opt, map) = optimize(b.clone(), &cfg).unwrap();
        assert_eq!(opt.ops.len(), b.ops.len());
        assert_eq!(map.int.len(), 1);
    }

    #[test]
    fn verified_pipeline_reports_stats() {
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 5 },
            IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(1)),
                ra: IrReg::Phys(HReg(1)),
                rb: IrReg::Virt(0),
            },
        ]);
        let cfg = TolConfig { verify: true, ..TolConfig::default() };
        let (_, _, stats) = optimize_stats(b, &cfg).unwrap();
        assert_eq!(stats.blocks_verified, 1);
        assert!(stats.passes_checked >= 1);
        assert_eq!(stats.tv_differential, 0, "pipeline algebra proves symbolically");
    }

    /// Mutation test: a DCE that tombstones a live store must be caught,
    /// and the report must name the pass.
    #[test]
    fn broken_dce_removing_live_store_is_caught() {
        let broken = Pass {
            name: "dce",
            kind: PassKind::Dce,
            run: |b, _| {
                if let Some(op) = b.ops.iter_mut().find(|o| o.inst.is_store()) {
                    op.inst = IrInst::Nop;
                }
                PassEffect::default()
            },
        };
        let b = block(vec![
            IrInst::St {
                rs: IrReg::Phys(HReg(1)),
                base: IrReg::Phys(HReg(2)),
                off: 0,
                width: Width::W4,
            },
            IrInst::AluI {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(1)),
                ra: IrReg::Phys(HReg(1)),
                imm: 1,
            },
        ]);
        let cfg = TolConfig { verify: true, ..TolConfig::default() };
        match run_pipeline(b, &cfg, &[broken]) {
            Err(OptError::Miscompile(f)) => {
                assert_eq!(f.pass, "dce");
                assert_eq!(f.invariant, "side-effecting instructions never removed");
            }
            other => panic!("verifier missed the broken pass: {other:?}"),
        }
    }

    /// Mutation test: a "constant folder" that miscomputes a constant is
    /// caught by translation validation even though the block stays
    /// structurally legal.
    #[test]
    fn broken_fold_is_caught_by_translation_validation() {
        let broken = Pass {
            name: "constprop",
            kind: PassKind::Rewrite,
            run: |b, _| {
                for op in &mut b.ops {
                    if let IrInst::Li { rd, imm } = op.inst {
                        op.inst = IrInst::Li { rd, imm: imm + 1 };
                    }
                }
                PassEffect::default()
            },
        };
        let b = block(vec![IrInst::Li { rd: IrReg::Phys(HReg(1)), imm: 5 }]);
        let cfg = TolConfig { verify: true, ..TolConfig::default() };
        match run_pipeline(b, &cfg, &[broken]) {
            Err(OptError::Miscompile(f)) => assert_eq!(f.pass, "constprop"),
            other => panic!("verifier missed the wrong constant: {other:?}"),
        }
    }

    /// Mutation test: a scheduler that swaps dependent instructions is
    /// caught structurally.
    #[test]
    fn broken_schedule_violating_raw_is_caught() {
        let broken = Pass {
            name: "schedule",
            kind: PassKind::Schedule,
            run: |b, _| {
                b.ops.reverse();
                PassEffect::default()
            },
        };
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 7 },
            IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(1)),
                ra: IrReg::Phys(HReg(1)),
                rb: IrReg::Virt(0),
            },
        ]);
        let cfg = TolConfig { verify: true, ..TolConfig::default() };
        match run_pipeline(b, &cfg, &[broken]) {
            Err(OptError::Miscompile(f)) => assert_eq!(f.pass, "schedule"),
            other => panic!("verifier missed the reorder: {other:?}"),
        }
    }
}
