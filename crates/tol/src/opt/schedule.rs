//! List scheduling for the 2-issue in-order back-end.
//!
//! Reorders instructions inside *windows* delimited by side exits
//! (`BrFlags`), since moving code across an exit would require
//! compensation code (noted as future work in the paper's Sec. III-E).
//! Within a window, a greedy list scheduler fills two issue slots per
//! virtual cycle, prioritizing by critical-path height, respecting:
//!
//! * register RAW/WAR/WAW dependences (physical and virtual),
//! * memory order: stores are ordered with all other memory operations;
//!   loads may reorder among themselves (the software layer has no
//!   disambiguation — listed in Sec. III-E as an opportunity).

use crate::ir::{IrBlock, IrInst, IrOp};
use std::collections::HashMap;

/// Approximate result latency used for priority (matches Table I).
fn latency(inst: &IrInst) -> u32 {
    use IrInst::*;
    match inst {
        Ld { .. } | FLd { .. } => 3, // optimistic L1 hit + use delay
        Mul { .. } | Div { .. } | FlagsArith { .. } => 2,
        FArith { op, .. } => match op {
            darco_guest::FpOp::Add | darco_guest::FpOp::Sub => 2,
            _ => 5,
        },
        _ => 1,
    }
}

/// Runs the scheduler in place.
pub fn run(block: &mut IrBlock) {
    let ops = std::mem::take(&mut block.ops);
    let mut out = Vec::with_capacity(ops.len());
    let mut window = Vec::new();
    for op in ops {
        if op.inst == IrInst::Nop {
            continue; // drop tombstones while we are re-laying out
        }
        let is_barrier = op.inst.is_branch();
        if is_barrier {
            schedule_window(&mut window, &mut out);
            out.push(op); // the barrier keeps its position
        } else {
            window.push(op);
        }
    }
    schedule_window(&mut window, &mut out);
    block.ops = out;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Res {
    Int(crate::ir::IrReg),
    Fp(crate::ir::IrFreg),
}

fn schedule_window(window: &mut Vec<IrOp>, out: &mut Vec<IrOp>) {
    if window.len() <= 2 {
        out.append(window);
        return;
    }
    let n = window.len();
    // Build the dependence DAG.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut preds: Vec<u32> = vec![0; n];
    let mut last_def: HashMap<Res, usize> = HashMap::new();
    let mut uses_since_def: HashMap<Res, Vec<usize>> = HashMap::new();
    let mut last_store: Option<usize> = None;
    let mut loads_since_store: Vec<usize> = Vec::new();

    let add_edge = |succs: &mut Vec<Vec<usize>>, preds: &mut Vec<u32>, a: usize, b: usize| {
        if a != b && !succs[a].contains(&b) {
            succs[a].push(b);
            preds[b] += 1;
        }
    };

    for (i, op) in window.iter().enumerate() {
        let srcs: Vec<Res> = op
            .inst
            .srcs()
            .into_iter()
            .flatten()
            .map(Res::Int)
            .chain(op.inst.fsrcs().into_iter().flatten().map(Res::Fp))
            .collect();
        let dsts: Vec<Res> =
            op.inst.dst().map(Res::Int).into_iter().chain(op.inst.fdst().map(Res::Fp)).collect();

        // RAW: this use depends on the last def.
        for s in &srcs {
            if let Some(&d) = last_def.get(s) {
                add_edge(&mut succs, &mut preds, d, i);
            }
            uses_since_def.entry(*s).or_default().push(i);
        }
        for d in &dsts {
            // WAW on the previous def.
            if let Some(&p) = last_def.get(d) {
                add_edge(&mut succs, &mut preds, p, i);
            }
            // WAR on uses since that def.
            if let Some(us) = uses_since_def.get(d) {
                for &u in us {
                    add_edge(&mut succs, &mut preds, u, i);
                }
            }
            last_def.insert(*d, i);
            uses_since_def.insert(*d, Vec::new());
        }
        // Memory order (prefetches order like loads).
        if op.inst.is_load() || matches!(op.inst, IrInst::Prefetch { .. }) {
            if let Some(s) = last_store {
                add_edge(&mut succs, &mut preds, s, i);
            }
            loads_since_store.push(i);
        } else if op.inst.is_store() {
            if let Some(s) = last_store {
                add_edge(&mut succs, &mut preds, s, i);
            }
            for &l in &loads_since_store {
                add_edge(&mut succs, &mut preds, l, i);
            }
            loads_since_store.clear();
            last_store = Some(i);
        }
    }

    // Critical-path heights.
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        let h = succs[i].iter().map(|&s| height[s]).max().unwrap_or(0);
        height[i] = h + latency(&window[i].inst);
    }

    // Greedy list schedule, two slots per cycle.
    let mut ready: Vec<usize> = (0..n).filter(|&i| preds[i] == 0).collect();
    let mut emitted = 0usize;
    let mut order = Vec::with_capacity(n);
    while emitted < n {
        // Pick up to 2 from the ready list by (height desc, index asc).
        ready.sort_by_key(|&i| (std::cmp::Reverse(height[i]), i));
        let take = ready.len().min(2);
        let picked: Vec<usize> = ready.drain(..take).collect();
        debug_assert!(!picked.is_empty(), "cyclic dependence graph");
        for i in picked {
            order.push(i);
            emitted += 1;
            for &s in &succs[i] {
                preds[s] -= 1;
                if preds[s] == 0 {
                    ready.push(s);
                }
            }
        }
    }
    out.extend(order.into_iter().map(|i| window[i]));
    window.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrBlock, IrReg};
    use darco_host::{Exit, HAluOp, HReg, Width};

    fn phys(i: u8) -> IrReg {
        IrReg::Phys(HReg(i))
    }

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![Exit::Halt],
            stub_guest_counts: vec![1],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    fn positions(b: &IrBlock) -> HashMap<IrInst, usize> {
        b.ops.iter().enumerate().map(|(i, o)| (o.inst, i)).collect()
    }

    #[test]
    fn independent_work_fills_load_shadow() {
        // ld t0 ; use t0 ; three independent adds — the adds should move
        // between the load and its user.
        let ld = IrInst::Ld { rd: IrReg::Virt(0), base: phys(2), off: 0, width: Width::W4 };
        let use_it = IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(1), rb: IrReg::Virt(0) };
        let indep =
            |i: u8| IrInst::AluI { op: HAluOp::Add, rd: phys(3 + i), ra: phys(3 + i), imm: 1 };
        let mut b = block(vec![ld, use_it, indep(0), indep(1), indep(2)]);
        run(&mut b);
        let pos = positions(&b);
        assert!(pos[&ld] < pos[&use_it]);
        assert!(
            pos[&use_it] > pos[&indep(0)] || pos[&use_it] > pos[&indep(1)],
            "independent work should fill the load-use gap: {:?}",
            b.ops
        );
    }

    #[test]
    fn raw_dependences_preserved() {
        let a = IrInst::Li { rd: IrReg::Virt(0), imm: 1 };
        let b_i = IrInst::Alu {
            op: HAluOp::Add,
            rd: IrReg::Virt(1),
            ra: IrReg::Virt(0),
            rb: IrReg::Virt(0),
        };
        let c = IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(1), rb: IrReg::Virt(1) };
        let mut blk = block(vec![a, b_i, c]);
        run(&mut blk);
        let pos = positions(&blk);
        assert!(pos[&a] < pos[&b_i] && pos[&b_i] < pos[&c]);
    }

    #[test]
    fn stores_keep_order_loads_may_pass_loads() {
        let st1 = IrInst::St { rs: phys(1), base: phys(2), off: 0, width: Width::W4 };
        let st2 = IrInst::St { rs: phys(1), base: phys(2), off: 4, width: Width::W4 };
        let mut blk = block(vec![st1, st2]);
        run(&mut blk);
        let pos = positions(&blk);
        assert!(pos[&st1] < pos[&st2]);
    }

    #[test]
    fn load_never_crosses_prior_store() {
        let st = IrInst::St { rs: phys(1), base: phys(2), off: 0, width: Width::W4 };
        let ld = IrInst::Ld { rd: IrReg::Virt(0), base: phys(3), off: 0, width: Width::W4 };
        let sink = IrInst::Alu { op: HAluOp::Add, rd: phys(4), ra: phys(4), rb: IrReg::Virt(0) };
        let mut blk = block(vec![st, ld, sink]);
        run(&mut blk);
        let pos = positions(&blk);
        assert!(pos[&st] < pos[&ld], "no memory disambiguation modeled");
    }

    #[test]
    fn branches_are_barriers() {
        use darco_guest::Cond;
        let before = IrInst::AluI { op: HAluOp::Add, rd: phys(1), ra: phys(1), imm: 1 };
        let br = IrInst::BrFlags { cond: Cond::E, flags: phys(9), stub: 0 };
        let after = IrInst::AluI { op: HAluOp::Add, rd: phys(2), ra: phys(2), imm: 1 };
        let mut blk = block(vec![before, br, after]);
        run(&mut blk);
        let pos = positions(&blk);
        assert!(pos[&before] < pos[&br]);
        assert!(pos[&br] < pos[&after]);
    }

    #[test]
    fn war_and_waw_preserved() {
        // use r5 then redefine r5: order must hold.
        let use_r5 = IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(5), rb: phys(1) };
        let def_r5 = IrInst::Li { rd: phys(5), imm: 9 };
        let def_r5_again = IrInst::Li { rd: phys(5), imm: 10 };
        let mut blk = block(vec![use_r5, def_r5, def_r5_again]);
        run(&mut blk);
        let pos = positions(&blk);
        assert!(pos[&use_r5] < pos[&def_r5]);
        assert!(pos[&def_r5] < pos[&def_r5_again]);
    }
}
