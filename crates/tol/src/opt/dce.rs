//! Dead-code elimination by backward liveness.
//!
//! Pinned physical registers hold emulated guest state, so they are
//! live-out at the end of the body and at every side exit (a `BrFlags`
//! revives them when sweeping backward). Virtual temporaries are only
//! live between definition and last use and are never observable at
//! exits. Dead definitions are replaced with `Nop` tombstones, which
//! lowering drops.

use crate::ir::{IrBlock, IrFreg, IrInst, IrReg};
use std::collections::HashSet;

#[derive(Default)]
struct Live {
    int: HashSet<IrReg>,
    fp: HashSet<IrFreg>,
    all_phys: bool, // shorthand for "every physical register is live"
}

impl Live {
    fn at_exit() -> Live {
        Live { int: HashSet::new(), fp: HashSet::new(), all_phys: true }
    }

    fn is_live_int(&self, r: IrReg) -> bool {
        match r {
            IrReg::Phys(_) => self.all_phys || self.int.contains(&r),
            IrReg::Virt(_) => self.int.contains(&r),
        }
    }

    fn is_live_fp(&self, r: IrFreg) -> bool {
        match r {
            IrFreg::Phys(_) => self.all_phys || self.fp.contains(&r),
            IrFreg::Virt(_) => self.fp.contains(&r),
        }
    }

    fn def_int(&mut self, r: IrReg) {
        self.int.remove(&r);
        if let IrReg::Phys(_) = r {
            if self.all_phys {
                // Materialize "all phys except r": switch to explicit
                // tracking is wasteful; instead keep all_phys and accept
                // the (sound) over-approximation. A killed phys def
                // before any exit is rare after flag elision.
            }
        }
    }

    fn def_fp(&mut self, r: IrFreg) {
        self.fp.remove(&r);
    }

    fn use_int(&mut self, r: IrReg) {
        self.int.insert(r);
    }

    fn use_fp(&mut self, r: IrFreg) {
        self.fp.insert(r);
    }
}

/// Runs DCE in place.
pub fn run(block: &mut IrBlock) {
    let mut live = Live::at_exit();
    for op in block.ops.iter_mut().rev() {
        if op.inst.is_branch() {
            // Side exit: all guest state observable.
            live.all_phys = true;
        }
        let inst = op.inst;
        let dead = !inst.has_side_effect() && inst != IrInst::Nop && {
            let d_int = inst.dst().map(|d| live.is_live_int(d));
            let d_fp = inst.fdst().map(|d| live.is_live_fp(d));
            match (d_int, d_fp) {
                (None, None) => false, // no destination: keep (Nop only)
                (a, b) => !a.unwrap_or(false) && !b.unwrap_or(false),
            }
        };
        if dead {
            op.inst = IrInst::Nop;
            continue;
        }
        if let Some(d) = inst.dst() {
            live.def_int(d);
        }
        if let Some(d) = inst.fdst() {
            live.def_fp(d);
        }
        for s in inst.srcs().into_iter().flatten() {
            live.use_int(s);
        }
        for s in inst.fsrcs().into_iter().flatten() {
            live.use_fp(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrOp;
    use darco_guest::Cond;
    use darco_host::{Exit, HAluOp, HReg, Width};

    fn phys(i: u8) -> IrReg {
        IrReg::Phys(HReg(i))
    }

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![Exit::Halt],
            stub_guest_counts: vec![1],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn unused_virtual_removed() {
        let mut b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 1 }, // dead
            IrInst::AluI { op: HAluOp::Add, rd: phys(1), ra: phys(1), imm: 2 },
        ]);
        run(&mut b);
        assert_eq!(b.ops[0].inst, IrInst::Nop);
        assert_ne!(b.ops[1].inst, IrInst::Nop, "pinned result stays");
    }

    #[test]
    fn used_virtual_kept() {
        let mut b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 1 },
            IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(1), rb: IrReg::Virt(0) },
        ]);
        run(&mut b);
        assert!(matches!(b.ops[0].inst, IrInst::Li { .. }));
    }

    #[test]
    fn chains_of_dead_code_collapse() {
        // t0 feeds t1 feeds nothing: both die (single backward pass
        // suffices in linear code).
        let mut b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 1 },
            IrInst::AluI { op: HAluOp::Add, rd: IrReg::Virt(1), ra: IrReg::Virt(0), imm: 1 },
        ]);
        run(&mut b);
        assert_eq!(b.ops[0].inst, IrInst::Nop);
        assert_eq!(b.ops[1].inst, IrInst::Nop);
    }

    #[test]
    fn stores_and_branches_never_die() {
        let mut b = block(vec![
            IrInst::St { rs: phys(1), base: phys(2), off: 0, width: Width::W4 },
            IrInst::BrFlags { cond: Cond::E, flags: phys(9), stub: 0 },
        ]);
        run(&mut b);
        assert!(b.ops.iter().all(|o| o.inst != IrInst::Nop));
    }

    #[test]
    fn virtual_live_only_into_side_exit_region() {
        // A virtual used by a branch-flag register? Virtuals feeding the
        // BrFlags source must stay.
        let mut b = block(vec![
            IrInst::FlagsArith {
                kind: darco_host::FlagsKind::Sub,
                rd: IrReg::Virt(0),
                ra: phys(1),
                rb: phys(2),
            },
            IrInst::BrFlags { cond: Cond::E, flags: IrReg::Virt(0), stub: 0 },
        ]);
        run(&mut b);
        assert!(matches!(b.ops[0].inst, IrInst::FlagsArith { .. }));
    }

    #[test]
    fn dead_fp_removed_live_fp_kept() {
        use crate::ir::IrFreg;
        let mut b = block(vec![
            IrInst::FMov { fd: IrFreg::Virt(0), fa: IrFreg::Phys(darco_host::HFreg(1)) }, // dead
            IrInst::FMov { fd: IrFreg::Virt(1), fa: IrFreg::Phys(darco_host::HFreg(2)) },
            IrInst::FSt { fs: IrFreg::Virt(1), base: phys(2), off: 0 },
        ]);
        run(&mut b);
        assert_eq!(b.ops[0].inst, IrInst::Nop);
        assert!(matches!(b.ops[1].inst, IrInst::FMov { .. }));
    }
}
