//! Range/known-bits simplification: branch folding and masked-ALU
//! strength reduction driven by the [`knownbits`] abstract domain.
//!
//! Three rewrites, each justified by a fact the forward analysis proved
//! from in-block computation alone (the entry state is unconstrained,
//! so every fact holds for *all* inputs — which is also why the
//! translation validator's randomized differential fallback discharges
//! these rewrites):
//!
//! * a `BrFlags` whose condition the flags fact decides **never** taken
//!   is deleted,
//! * after a branch decided **always** taken the rest of the body is
//!   unreachable and is tombstoned (the branch itself stays: it performs
//!   the exit),
//! * an ALU op whose result fact is a single constant becomes `li`, and
//!   an `and` masking bits already known clear degenerates to a copy
//!   (`or rd, ra, 0`).
//!
//! [`knownbits`]: crate::analysis::knownbits

use crate::analysis::knownbits::{self, AbsVal};
use crate::ir::{IrBlock, IrInst};
use darco_host::HAluOp;

/// Statistics of one run: what was folded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeSimpStats {
    /// Branches deleted (never taken) or made terminal (always taken).
    pub branches_folded: u32,
    /// ALU ops rewritten to `li` or reduced to copies.
    pub alu_simplified: u32,
}

/// Runs range simplification over `block`.
pub fn run(block: &mut IrBlock) -> RangeSimpStats {
    let facts = knownbits::facts(block);
    let mut stats = RangeSimpStats::default();
    for i in 0..block.ops.len() {
        match block.ops[i].inst {
            IrInst::BrFlags { cond, flags, .. } => {
                let f = facts[i].get(flags).unwrap_or_else(AbsVal::top);
                match knownbits::decide(cond, &f) {
                    Some(false) => {
                        block.ops[i].inst = IrInst::Nop;
                        stats.branches_folded += 1;
                    }
                    Some(true) => {
                        // Control always leaves through this side exit:
                        // the rest of the body is unreachable.
                        for op in &mut block.ops[i + 1..] {
                            op.inst = IrInst::Nop;
                        }
                        stats.branches_folded += 1;
                        break;
                    }
                    None => {}
                }
            }
            IrInst::Alu { rd, .. } => {
                if let Some(c) = facts[i + 1].get(rd).and_then(|v| v.as_const()) {
                    block.ops[i].inst = IrInst::Li { rd, imm: c as i64 };
                    stats.alu_simplified += 1;
                }
            }
            IrInst::AluI { op, rd, ra, imm } => {
                if let Some(c) = facts[i + 1].get(rd).and_then(|v| v.as_const()) {
                    block.ops[i].inst = IrInst::Li { rd, imm: c as i64 };
                    stats.alu_simplified += 1;
                } else if op == HAluOp::And {
                    let a = facts[i].get(ra).unwrap_or_else(AbsVal::top);
                    if !a.zeros & !(imm as u32) == 0 {
                        // Every maskable bit is already known clear: the
                        // mask is an identity.
                        block.ops[i].inst = IrInst::AluI { op: HAluOp::Or, rd, ra, imm: 0 };
                        stats.alu_simplified += 1;
                    }
                }
            }
            _ => {}
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TolConfig;
    use crate::ir::{IrOp, IrReg, FLAGS_REG};
    use crate::opt::{run_pipeline, OptError, Pass};
    use crate::verify::PassKind;
    use darco_guest::Cond;
    use darco_host::{Exit, FlagsKind, HReg, Width};

    const FLAGS: IrReg = IrReg::Phys(FLAGS_REG);

    fn phys(i: u8) -> IrReg {
        IrReg::Phys(HReg(i))
    }

    fn block(ops: Vec<IrInst>, stubs: usize) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![Exit::Halt; stubs],
            stub_guest_counts: vec![1; stubs],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn never_taken_branch_is_deleted() {
        // flags = sub(r2 & 0xFF, 0x100): always below, so Ae never holds.
        let mut b = block(
            vec![
                IrInst::AluI { op: HAluOp::And, rd: IrReg::Virt(0), ra: phys(2), imm: 0xFF },
                IrInst::Li { rd: IrReg::Virt(1), imm: 0x100 },
                IrInst::FlagsArith {
                    kind: FlagsKind::Sub,
                    rd: FLAGS,
                    ra: IrReg::Virt(0),
                    rb: IrReg::Virt(1),
                },
                IrInst::BrFlags { cond: Cond::Ae, flags: FLAGS, stub: 0 },
            ],
            1,
        );
        let stats = run(&mut b);
        assert_eq!(stats.branches_folded, 1);
        assert_eq!(b.ops[3].inst, IrInst::Nop);
    }

    #[test]
    fn always_taken_branch_tombstones_the_tail() {
        let mut b = block(
            vec![
                IrInst::AluI { op: HAluOp::And, rd: IrReg::Virt(0), ra: phys(2), imm: 0xFF },
                IrInst::Li { rd: IrReg::Virt(1), imm: 0x100 },
                IrInst::FlagsArith {
                    kind: FlagsKind::Sub,
                    rd: FLAGS,
                    ra: IrReg::Virt(0),
                    rb: IrReg::Virt(1),
                },
                IrInst::BrFlags { cond: Cond::B, flags: FLAGS, stub: 0 },
                IrInst::St { rs: phys(1), base: phys(2), off: 0, width: Width::W4 },
            ],
            1,
        );
        let stats = run(&mut b);
        assert_eq!(stats.branches_folded, 1);
        assert!(matches!(b.ops[3].inst, IrInst::BrFlags { .. }), "the exit itself stays");
        assert_eq!(b.ops[4].inst, IrInst::Nop, "unreachable store removed");
    }

    #[test]
    fn redundant_mask_becomes_copy_and_const_result_becomes_li() {
        let mut b = block(
            vec![
                IrInst::Ld { rd: phys(1), base: phys(2), off: 0, width: Width::W1 },
                // Masking a byte-ranged value with 0xFF is an identity.
                IrInst::AluI { op: HAluOp::And, rd: phys(3), ra: phys(1), imm: 0xFF },
                // A byte shifted right by 8 is always zero.
                IrInst::AluI { op: HAluOp::Shr, rd: phys(4), ra: phys(1), imm: 8 },
            ],
            0,
        );
        let stats = run(&mut b);
        assert_eq!(stats.alu_simplified, 2);
        assert_eq!(
            b.ops[1].inst,
            IrInst::AluI { op: HAluOp::Or, rd: phys(3), ra: phys(1), imm: 0 }
        );
        assert_eq!(b.ops[2].inst, IrInst::Li { rd: phys(4), imm: 0 });
    }

    /// Mutation test: a rangesimp that folds an *undecided* branch must
    /// be rejected by the verifier.
    #[test]
    fn broken_rangesimp_folding_undecided_branch_is_caught() {
        let broken = Pass {
            name: "rangesimp",
            kind: PassKind::BranchFold,
            run: |b, _| {
                if let Some(op) = b.ops.iter_mut().find(|o| o.inst.is_branch()) {
                    op.inst = IrInst::Nop;
                }
                crate::opt::PassEffect::default()
            },
        };
        let b = block(
            vec![
                IrInst::FlagsArith { kind: FlagsKind::Sub, rd: FLAGS, ra: phys(1), rb: phys(2) },
                IrInst::BrFlags { cond: Cond::E, flags: FLAGS, stub: 0 },
            ],
            1,
        );
        let cfg = TolConfig { verify: true, ..TolConfig::default() };
        match run_pipeline(b, &cfg, &[broken]) {
            Err(OptError::Miscompile(f)) => assert_eq!(f.pass, "rangesimp"),
            other => panic!("verifier missed the undecided fold: {other:?}"),
        }
    }
}
