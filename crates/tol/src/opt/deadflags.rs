//! IR-level dead flag elimination (analysis-driven flag elision).
//!
//! Guest flag semantics are the dominant translation overhead the paper
//! measures (Sec. III-C): most flag definitions are overwritten before
//! any consumer. With this pass enabled the translator materializes a
//! `FlagsArith` for *every* flag-writing guest instruction and the
//! decision of which ones to keep moves here, driven by the backward
//! [`liveness`] analysis: a flags definition is deleted when no use,
//! side exit, or block end can observe it.
//!
//! After the kill, two local cleanups restore the exact instruction
//! shapes the intrinsic elision would have produced, so the final host
//! streams are byte-identical with the pass on or off:
//!
//! * an immediate staged through `li t, imm` solely for the killed
//!   `FlagsArith` folds back into the consuming ALU op (`AluI`), and
//! * pure ops defining virtual temporaries nobody reads any more are
//!   swept backward into `Nop`s.
//!
//! [`liveness`]: crate::analysis::liveness

use crate::analysis::liveness;
use crate::ir::{IrBlock, IrInst, IrReg};
use std::collections::HashSet;

/// Runs dead-flag elimination over `block`; returns how many flag
/// definitions were deleted.
pub fn run(block: &mut IrBlock) -> u32 {
    // A region with no materialized flag definition has nothing this
    // pass could ever delete — skip the backward liveness fixpoint
    // outright (common for pure-FP and address-arithmetic regions).
    if !block.ops.iter().any(|o| matches!(o.inst, IrInst::FlagsArith { .. })) {
        return 0;
    }
    let dead = liveness::dead_flag_defs(block);
    if dead.is_empty() {
        return 0;
    }
    for &i in &dead {
        block.ops[i].inst = IrInst::Nop;
    }
    for &i in &dead {
        fold_staged_imm(block, i);
    }
    sweep_dead_virts(block);
    dead.len() as u32
}

/// Folds `li t, imm ; [killed flags] ; alu rd, ra, t` back into a
/// single `AluI` when the staged immediate has no other reader — the
/// shape the translator emits directly when it knows the flags are
/// dead.
fn fold_staged_imm(block: &mut IrBlock, i: usize) {
    if i == 0 || i + 1 >= block.ops.len() {
        return;
    }
    let IrInst::Li { rd: li_rd @ IrReg::Virt(_), imm: li_imm } = block.ops[i - 1].inst else {
        return;
    };
    let IrInst::Alu { op, rd, ra, rb } = block.ops[i + 1].inst else {
        return;
    };
    if rb != li_rd || ra == li_rd {
        return;
    }
    let uses = block
        .ops
        .iter()
        .filter(|o| o.inst != IrInst::Nop)
        .flat_map(|o| o.inst.srcs().into_iter().flatten())
        .filter(|&s| s == li_rd)
        .count();
    if uses != 1 {
        return;
    }
    // `Li` truncates its immediate to 32 bits on write, so the round
    // trip through `u32` is value-preserving.
    block.ops[i + 1].inst = IrInst::AluI { op, rd, ra, imm: li_imm as u32 as i32 };
    block.ops[i - 1].inst = IrInst::Nop;
}

/// Backward sweep deleting pure ops that define a virtual temporary no
/// later op reads. Virtuals are block-local and invisible to side
/// exits, so an unread definition is unobservable.
fn sweep_dead_virts(block: &mut IrBlock) {
    let mut used: HashSet<IrReg> = HashSet::new();
    for i in (0..block.ops.len()).rev() {
        let inst = &block.ops[i].inst;
        if *inst == IrInst::Nop {
            continue;
        }
        let dead_virt_def = !inst.has_side_effect()
            && inst.fdst().is_none()
            && matches!(inst.dst(), Some(IrReg::Virt(_)))
            && !used.contains(&inst.dst().unwrap());
        if dead_virt_def {
            block.ops[i].inst = IrInst::Nop;
            continue;
        }
        used.extend(inst.srcs().into_iter().flatten());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TolConfig;
    use crate::ir::{IrOp, FLAGS_REG};
    use crate::opt::{run_pipeline, OptError, Pass};
    use crate::verify::PassKind;
    use darco_guest::Cond;
    use darco_host::{Exit, FlagsKind, HAluOp, HReg};

    const FLAGS: IrReg = IrReg::Phys(FLAGS_REG);

    fn phys(i: u8) -> IrReg {
        IrReg::Phys(HReg(i))
    }

    fn block(ops: Vec<IrInst>, stubs: usize) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![Exit::Halt; stubs],
            stub_guest_counts: vec![1; stubs],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn overwritten_flags_are_killed_and_imm_refolds() {
        // Eager lowering of `add r1, 5` (flags dead, overwritten below).
        let mut b = block(
            vec![
                IrInst::Li { rd: IrReg::Virt(0), imm: 5 },
                IrInst::FlagsArith {
                    kind: FlagsKind::Add,
                    rd: FLAGS,
                    ra: phys(1),
                    rb: IrReg::Virt(0),
                },
                IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(1), rb: IrReg::Virt(0) },
                IrInst::FlagsArith { kind: FlagsKind::Sub, rd: FLAGS, ra: phys(1), rb: phys(2) },
            ],
            0,
        );
        assert_eq!(run(&mut b), 1);
        let live: Vec<_> = b.ops.iter().map(|o| o.inst).filter(|i| *i != IrInst::Nop).collect();
        assert_eq!(
            live,
            vec![
                IrInst::AluI { op: HAluOp::Add, rd: phys(1), ra: phys(1), imm: 5 },
                IrInst::FlagsArith { kind: FlagsKind::Sub, rd: FLAGS, ra: phys(1), rb: phys(2) },
            ],
            "converges to the intrinsically elided shape"
        );
    }

    #[test]
    fn flags_observed_by_branch_survive() {
        let mut b = block(
            vec![
                IrInst::FlagsArith { kind: FlagsKind::Sub, rd: FLAGS, ra: phys(1), rb: phys(2) },
                IrInst::BrFlags { cond: Cond::E, flags: FLAGS, stub: 0 },
                IrInst::FlagsArith { kind: FlagsKind::Sub, rd: FLAGS, ra: phys(3), rb: phys(4) },
            ],
            1,
        );
        assert_eq!(run(&mut b), 0, "both defs observable (branch, then block end)");
    }

    #[test]
    fn dead_test_sequence_vanishes_entirely() {
        // Eager lowering of `test r1, r2` whose flags are overwritten.
        let mut b = block(
            vec![
                IrInst::Alu { op: HAluOp::And, rd: IrReg::Virt(0), ra: phys(1), rb: phys(2) },
                IrInst::FlagsArith {
                    kind: FlagsKind::Logic,
                    rd: FLAGS,
                    ra: IrReg::Virt(0),
                    rb: phys(0),
                },
                IrInst::FlagsArith { kind: FlagsKind::Sub, rd: FLAGS, ra: phys(1), rb: phys(2) },
            ],
            0,
        );
        assert_eq!(run(&mut b), 1);
        let live = b.ops.iter().filter(|o| o.inst != IrInst::Nop).count();
        assert_eq!(live, 1, "the And feeding only the dead flags is swept too");
    }

    /// Mutation test: a deadflags that deletes a *live* flag definition
    /// (one a branch observes) must be rejected by the verifier.
    #[test]
    fn broken_deadflags_killing_live_flags_is_caught() {
        let broken = Pass {
            name: "deadflags",
            kind: PassKind::DeadFlags,
            run: |b, _| {
                if let Some(op) =
                    b.ops.iter_mut().find(|o| matches!(o.inst, IrInst::FlagsArith { .. }))
                {
                    op.inst = IrInst::Nop;
                }
                crate::opt::PassEffect::default()
            },
        };
        let b = block(
            vec![
                IrInst::FlagsArith { kind: FlagsKind::Sub, rd: FLAGS, ra: phys(1), rb: phys(2) },
                IrInst::BrFlags { cond: Cond::E, flags: FLAGS, stub: 0 },
            ],
            1,
        );
        let cfg = TolConfig { verify: true, ..TolConfig::default() };
        match run_pipeline(b, &cfg, &[broken]) {
            Err(OptError::Miscompile(f)) => assert_eq!(f.pass, "deadflags"),
            other => panic!("verifier missed the live-flag kill: {other:?}"),
        }
    }
}
