//! Software prefetching (optional pass).
//!
//! The paper's first Sec. III-E recommendation: "the data cache is the
//! main problem, making techniques such as software prefetching … of
//! major importance". This pass implements the simplest profitable form:
//! for every load in a superblock whose address is register-relative, it
//! inserts a next-line [`IrInst::Prefetch`] a few instructions *ahead* of
//! the load, so the line for the next loop iteration is (probably) being
//! fetched while this iteration computes.
//!
//! The pass is deliberately conservative: one prefetch per distinct
//! `(base, offset-line)` pair per block, inserted only when the block is
//! long enough for the prefetch distance to matter.

use crate::ir::{IrBlock, IrInst, IrOp, IrReg};
use std::collections::HashSet;

/// Cache line size assumed by the prefetch distance (Table I L1-D).
const LINE: i32 = 64;

/// Minimum block length worth prefetching.
const MIN_OPS: usize = 8;

/// Runs the pass in place; returns the number of prefetches inserted.
///
/// Block length and prefetch distance are measured in *live* (non-`Nop`)
/// instructions: earlier passes tombstone what they delete, and a pile
/// of tombstones must not talk a short block into prefetching or shrink
/// the real distance between a prefetch and its load.
pub fn run(block: &mut IrBlock) -> usize {
    if block.ops.iter().filter(|o| o.inst != IrInst::Nop).count() < MIN_OPS {
        return 0;
    }
    let mut seen: HashSet<(crate::ir::IrReg, i32)> = HashSet::new();
    let mut insertions: Vec<(usize, IrOp)> = Vec::new();
    for (i, op) in block.ops.iter().enumerate() {
        let (base, off) = match op.inst {
            IrInst::Ld { base, off, .. } => (base, off),
            IrInst::FLd { base, off, .. } => (base, off),
            _ => continue,
        };
        // One prefetch per (base, line) target.
        if !seen.insert((base, off.wrapping_add(LINE) / LINE)) {
            continue;
        }
        // Insert a few live ops ahead of the load (clamped to the block
        // start); the scheduler may hoist it further. A virtual base
        // must not be read before its definition, so the prefetch never
        // hoists past it.
        let mut at = i;
        let mut dist = 0;
        while at > 0 && dist < 4 {
            at -= 1;
            if block.ops[at].inst != IrInst::Nop {
                dist += 1;
            }
        }
        if matches!(base, IrReg::Virt(_)) {
            if let Some(def) = block.ops[..i].iter().position(|o| o.inst.dst() == Some(base)) {
                at = at.max(def + 1);
            }
        }
        insertions.push((
            at,
            IrOp {
                inst: IrInst::Prefetch { base, off: off.wrapping_add(LINE) },
                guest_idx: op.guest_idx,
            },
        ));
    }
    // Insert back-to-front so earlier indices stay valid.
    let n = insertions.len();
    for (at, op) in insertions.into_iter().rev() {
        block.ops.insert(at, op);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrReg;
    use darco_host::{Exit, HAluOp, HReg, Width};

    fn phys(i: u8) -> IrReg {
        IrReg::Phys(HReg(i))
    }

    fn load(base: u8, off: i32) -> IrInst {
        IrInst::Ld { rd: IrReg::Virt(0), base: phys(base), off, width: Width::W4 }
    }

    fn filler() -> IrInst {
        IrInst::AluI { op: HAluOp::Add, rd: phys(1), ra: phys(1), imm: 1 }
    }

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![],
            stub_guest_counts: vec![],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn inserts_next_line_prefetch_before_load() {
        let mut ops = vec![filler(); 8];
        ops.push(load(2, 0));
        let mut b = block(ops);
        let n = run(&mut b);
        assert_eq!(n, 1);
        let pf_pos = b
            .ops
            .iter()
            .position(|o| matches!(o.inst, IrInst::Prefetch { .. }))
            .expect("prefetch inserted");
        let ld_pos = b.ops.iter().position(|o| o.inst.is_load()).unwrap();
        assert!(pf_pos < ld_pos, "prefetch ahead of the load");
        match b.ops[pf_pos].inst {
            IrInst::Prefetch { base, off } => {
                assert_eq!(base, phys(2));
                assert_eq!(off, 64, "next line");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn deduplicates_same_line_targets() {
        let mut ops = vec![filler(); 8];
        ops.push(load(2, 0));
        ops.push(load(2, 4)); // same target line
        ops.push(load(2, 256)); // different line
        let mut b = block(ops);
        assert_eq!(run(&mut b), 2);
    }

    #[test]
    fn short_blocks_left_alone() {
        let mut b = block(vec![load(2, 0), filler()]);
        assert_eq!(run(&mut b), 0);
    }

    #[test]
    fn prefetch_never_hoists_past_virtual_base_definition() {
        // The base is a virtual defined one op before the load: the
        // prefetch must land after that definition, not 4 slots up.
        let mut ops = vec![filler(); 8];
        ops.push(IrInst::AluI { op: HAluOp::Add, rd: IrReg::Virt(7), ra: phys(2), imm: 8 });
        ops.push(IrInst::Ld { rd: phys(3), base: IrReg::Virt(7), off: 0, width: Width::W4 });
        let mut b = block(ops);
        assert_eq!(run(&mut b), 1);
        let def = b.ops.iter().position(|o| o.inst.dst() == Some(IrReg::Virt(7))).unwrap();
        let pf = b.ops.iter().position(|o| matches!(o.inst, IrInst::Prefetch { .. })).unwrap();
        assert!(def < pf, "prefetch reads the base after its definition");
    }

    #[test]
    fn prefetch_survives_dce() {
        let mut ops = vec![filler(); 8];
        ops.push(load(2, 0));
        // Make the load's result used so it stays, then DCE.
        ops.push(IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(1), rb: IrReg::Virt(0) });
        let mut b = block(ops);
        run(&mut b);
        crate::opt::dce::run(&mut b);
        assert!(
            b.ops.iter().any(|o| matches!(o.inst, IrInst::Prefetch { .. })),
            "prefetches have a microarchitectural side effect"
        );
    }
}
