//! Copy/constant propagation and constant folding.
//!
//! A single forward sweep over the linear body tracking, per register,
//! whether it currently holds a known constant or is a copy of another
//! register. Uses are rewritten to the oldest equivalent register or to
//! an immediate form; fully-constant ALU operations fold to `Li`.
//! Rewrites never extend a *virtual* register's live range across its
//! original definition point backwards, because the copy source always
//! dominates the use in linear code.

use crate::ir::{IrBlock, IrInst, IrReg};
use darco_host::{eval_alu, HAluOp, HReg};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Value {
    Const(u32),
    CopyOf(IrReg),
}

#[derive(Default)]
struct Facts {
    map: HashMap<IrReg, Value>,
}

impl Facts {
    fn invalidate(&mut self, r: IrReg) {
        self.map.remove(&r);
        self.map.retain(|_, v| *v != Value::CopyOf(r));
    }

    /// Resolves `r` through copy chains to a known constant. Iterative
    /// with a visited set: the facts map should be acyclic (copies point
    /// backward in linear code), but a cyclic entry must degrade to
    /// "unknown" rather than recurse forever.
    fn constant(&self, r: IrReg) -> Option<u32> {
        let mut cur = r;
        let mut visited: Vec<IrReg> = Vec::new();
        loop {
            if cur == IrReg::ZERO {
                return Some(0);
            }
            match self.map.get(&cur)? {
                Value::Const(c) => return Some(*c),
                Value::CopyOf(s) => {
                    if visited.contains(&cur) {
                        return None;
                    }
                    visited.push(cur);
                    cur = *s;
                }
            }
        }
    }

    /// Resolves a register to its oldest live equivalent.
    fn resolve(&self, r: IrReg) -> IrReg {
        match self.map.get(&r) {
            Some(Value::CopyOf(s)) => *s,
            _ => r,
        }
    }
}

/// Detects the canonical copy forms the translator and CSE emit.
fn as_copy(inst: &IrInst) -> Option<(IrReg, IrReg)> {
    match *inst {
        IrInst::AluI { op: HAluOp::Or | HAluOp::Add, rd, ra, imm: 0 } => Some((rd, ra)),
        IrInst::Alu { op: HAluOp::Or | HAluOp::Add, rd, ra, rb } if rb == IrReg::ZERO => {
            Some((rd, ra))
        }
        _ => None,
    }
}

/// Runs the pass in place. `fold` additionally evaluates fully-constant
/// operations.
pub fn run(block: &mut IrBlock, fold: bool) {
    let mut facts = Facts::default();
    for op in &mut block.ops {
        // 1. Rewrite sources: copies to their origin, constants into
        //    immediate forms where the shape allows it.
        rewrite_sources(&mut op.inst, &facts, fold);

        // 2. Fold fully-constant computations.
        if fold {
            if let Some(c) = fold_inst(&op.inst, &facts) {
                if let Some(rd) = op.inst.dst() {
                    op.inst = IrInst::Li { rd, imm: c as i32 as i64 };
                }
            }
        }

        // 3. Update facts from this definition.
        let copy = as_copy(&op.inst);
        if let Some(rd) = op.inst.dst() {
            facts.invalidate(rd);
            match op.inst {
                IrInst::Li { imm, .. } => {
                    facts.map.insert(rd, Value::Const(imm as u32));
                }
                _ => {
                    if let Some((dst, src)) = copy {
                        debug_assert_eq!(dst, rd);
                        if let Some(c) = facts.constant(src) {
                            facts.map.insert(rd, Value::Const(c));
                        } else if src != rd {
                            facts.map.insert(rd, Value::CopyOf(facts.resolve(src)));
                        }
                    }
                }
            }
        }
        if let Some(fd) = op.inst.fdst() {
            // FP facts are not tracked; just make sure no stale integer
            // fact involves an FP-written register (they are disjoint
            // spaces, so nothing to do). Kept for symmetry.
            let _ = fd;
        }
    }
}

fn rewrite_sources(inst: &mut IrInst, facts: &Facts, fold: bool) {
    use IrInst::*;
    let res = |r: IrReg| facts.resolve(r);
    match inst {
        Alu { ra, rb, op, rd } => {
            *ra = res(*ra);
            *rb = res(*rb);
            // reg->imm strength reduction when rb is constant.
            if fold {
                if let Some(c) = facts.constant(*rb) {
                    *inst = AluI { op: *op, rd: *rd, ra: *ra, imm: c as i32 };
                }
            }
        }
        AluI { ra, .. } => *ra = res(*ra),
        Mul { ra, rb, .. } | Div { ra, rb, .. } | FlagsArith { ra, rb, .. } => {
            *ra = res(*ra);
            *rb = res(*rb);
        }
        Ld { base, off, .. } | FLd { base, off, .. } | Prefetch { base, off } => {
            *base = res(*base);
            if let Some(c) = facts.constant(*base) {
                *base = IrReg::ZERO;
                *off = off.wrapping_add(c as i32);
            }
        }
        St { rs, base, off, .. } => {
            *rs = res(*rs);
            *base = res(*base);
            if let Some(c) = facts.constant(*base) {
                *base = IrReg::ZERO;
                *off = off.wrapping_add(c as i32);
            }
        }
        FSt { base, off, .. } => {
            *base = res(*base);
            if let Some(c) = facts.constant(*base) {
                *base = IrReg::ZERO;
                *off = off.wrapping_add(c as i32);
            }
        }
        CvtIF { ra, .. } => *ra = res(*ra),
        BrFlags { flags, .. } => *flags = res(*flags),
        Nop | Li { .. } | FMov { .. } | FArith { .. } | CvtFI { .. } => {}
    }
}

fn fold_inst(inst: &IrInst, facts: &Facts) -> Option<u32> {
    match *inst {
        IrInst::Alu { op, ra, rb, .. } => {
            Some(eval_alu(op, facts.constant(ra)?, facts.constant(rb)?))
        }
        IrInst::AluI { op, ra, imm, .. } => Some(eval_alu(op, facts.constant(ra)?, imm as u32)),
        IrInst::Mul { ra, rb, .. } => {
            Some((facts.constant(ra)? as i32).wrapping_mul(facts.constant(rb)? as i32) as u32)
        }
        _ => None,
    }
}

#[allow(dead_code)]
fn phys(i: u8) -> IrReg {
    IrReg::Phys(HReg(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrOp;
    use darco_host::{Exit, Width};

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![],
            stub_guest_counts: vec![],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn constants_fold_through_chains() {
        // li t0, 6 ; li t1, 7 ; mul t2 = t0 * t1 ; add r1 = t2 + t2
        let mut b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 6 },
            IrInst::Li { rd: IrReg::Virt(1), imm: 7 },
            IrInst::Mul { rd: IrReg::Virt(2), ra: IrReg::Virt(0), rb: IrReg::Virt(1) },
            IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: IrReg::Virt(2), rb: IrReg::Virt(2) },
        ]);
        run(&mut b, true);
        assert_eq!(b.ops[2].inst, IrInst::Li { rd: IrReg::Virt(2), imm: 42 });
        assert_eq!(b.ops[3].inst, IrInst::Li { rd: phys(1), imm: 84 });
    }

    #[test]
    fn copy_uses_are_redirected() {
        // copy t0 <- r2 ; st t0 -> [r3]
        let mut b = block(vec![
            IrInst::AluI { op: HAluOp::Or, rd: IrReg::Virt(0), ra: phys(2), imm: 0 },
            IrInst::St { rs: IrReg::Virt(0), base: phys(3), off: 0, width: Width::W4 },
        ]);
        run(&mut b, true);
        match b.ops[1].inst {
            IrInst::St { rs, .. } => assert_eq!(rs, phys(2)),
            ref o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn redefinition_kills_facts() {
        // copy t0 <- r2 ; r2 changes ; use of t0 must NOT become r2.
        let mut b = block(vec![
            IrInst::AluI { op: HAluOp::Or, rd: IrReg::Virt(0), ra: phys(2), imm: 0 },
            IrInst::AluI { op: HAluOp::Add, rd: phys(2), ra: phys(2), imm: 1 },
            IrInst::St { rs: IrReg::Virt(0), base: phys(3), off: 0, width: Width::W4 },
        ]);
        run(&mut b, true);
        match b.ops[2].inst {
            IrInst::St { rs, .. } => assert_eq!(rs, IrReg::Virt(0), "stale copy not propagated"),
            ref o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn constant_base_becomes_absolute_address() {
        let mut b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 0x4000 },
            IrInst::Ld { rd: phys(1), base: IrReg::Virt(0), off: 8, width: Width::W4 },
        ]);
        run(&mut b, true);
        match b.ops[1].inst {
            IrInst::Ld { base, off, .. } => {
                assert_eq!(base, IrReg::ZERO);
                assert_eq!(off, 0x4008);
            }
            ref o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn copy_cycle_in_facts_terminates_as_unknown() {
        // A cyclic fact set (t0 copy-of t1, t1 copy-of t0) cannot arise
        // from the forward sweep, but `constant` must not hang or
        // overflow the stack if it ever does.
        let mut f = Facts::default();
        f.map.insert(IrReg::Virt(0), Value::CopyOf(IrReg::Virt(1)));
        f.map.insert(IrReg::Virt(1), Value::CopyOf(IrReg::Virt(0)));
        assert_eq!(f.constant(IrReg::Virt(0)), None);
        assert_eq!(f.constant(IrReg::Virt(1)), None);
        // Self-cycle degenerate case.
        f.map.insert(IrReg::Virt(2), Value::CopyOf(IrReg::Virt(2)));
        assert_eq!(f.constant(IrReg::Virt(2)), None);
        // Chains ending in a constant still resolve through the guard.
        f.map.insert(IrReg::Virt(3), Value::Const(9));
        f.map.insert(IrReg::Virt(4), Value::CopyOf(IrReg::Virt(3)));
        assert_eq!(f.constant(IrReg::Virt(4)), Some(9));
    }

    #[test]
    fn reg_operand_strength_reduced_to_imm() {
        let mut b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 3 },
            IrInst::Alu { op: HAluOp::Shl, rd: phys(1), ra: phys(1), rb: IrReg::Virt(0) },
        ]);
        run(&mut b, true);
        assert_eq!(
            b.ops[1].inst,
            IrInst::AluI { op: HAluOp::Shl, rd: phys(1), ra: phys(1), imm: 3 }
        );
    }
}
