//! Linear-scan register allocation for virtual temporaries.
//!
//! Virtuals are single-assignment and live ranges in linear code are
//! simple `[def, last_use]` intervals, so a classic linear scan over the
//! scratch half of the application register file (integer `r11`–`r31`,
//! FP `f8`–`f15`) suffices. There is no spilling: spills would have to
//! go through guest memory (which translated code must not touch beyond
//! the guest's own accesses), so exhaustion is reported and the caller
//! falls back to unoptimized lowering.

use crate::ir::{
    IrBlock, IrFreg, IrReg, RegMap, FSCRATCH_BASE, FSCRATCH_END, SCRATCH_BASE, SCRATCH_END,
};
use crate::opt::OptError;
use darco_host::{HFreg, HReg};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Interval {
    start: usize,
    end: usize,
}

fn intervals<T: Copy + Eq + std::hash::Hash>(
    defs_uses: impl Iterator<Item = (usize, T, bool)>, // (pos, reg, is_def)
) -> Vec<(T, Interval)> {
    let mut map: HashMap<T, Interval> = HashMap::new();
    let mut order: Vec<T> = Vec::new();
    for (pos, reg, _is_def) in defs_uses {
        map.entry(reg).and_modify(|iv| iv.end = pos).or_insert_with(|| {
            order.push(reg);
            Interval { start: pos, end: pos }
        });
    }
    order.into_iter().map(|r| (r, map[&r])).collect()
}

fn scan<T: Copy + Eq + std::hash::Hash, P: Copy>(
    ivs: Vec<(T, Interval)>,
    pool: Vec<P>,
) -> Result<HashMap<T, P>, OptError> {
    let mut free = pool;
    let mut active: Vec<(usize, P)> = Vec::new(); // (end, reg)
    let mut out = HashMap::new();
    for (v, iv) in ivs {
        // Expire finished intervals.
        active.retain(|&(end, p)| {
            if end < iv.start {
                free.push(p);
                false
            } else {
                true
            }
        });
        let p = free.pop().ok_or(OptError::OutOfRegisters)?;
        active.push((iv.end, p));
        out.insert(v, p);
    }
    Ok(out)
}

/// Allocates every virtual register in `block` to a scratch physical.
///
/// # Errors
///
/// [`OptError::OutOfRegisters`] when live virtuals exceed the scratch
/// file at some point.
pub fn run(block: &IrBlock) -> Result<RegMap, OptError> {
    let mut int_events = Vec::new();
    let mut fp_events = Vec::new();
    for (pos, op) in block.ops.iter().enumerate() {
        for s in op.inst.srcs().into_iter().flatten() {
            if let IrReg::Virt(v) = s {
                int_events.push((pos, v, false));
            }
        }
        if let Some(IrReg::Virt(v)) = op.inst.dst() {
            int_events.push((pos, v, true));
        }
        for s in op.inst.fsrcs().into_iter().flatten() {
            if let IrFreg::Virt(v) = s {
                fp_events.push((pos, v, false));
            }
        }
        if let Some(IrFreg::Virt(v)) = op.inst.fdst() {
            fp_events.push((pos, v, true));
        }
    }
    let int_pool: Vec<HReg> = (SCRATCH_BASE..SCRATCH_END).rev().map(HReg).collect();
    let fp_pool: Vec<HFreg> = (FSCRATCH_BASE..FSCRATCH_END).rev().map(HFreg).collect();
    let int = scan(intervals(int_events.into_iter()), int_pool)?;
    let fp = scan(intervals(fp_events.into_iter()), fp_pool)?;
    Ok(RegMap { int, fp })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrInst, IrOp};
    use darco_host::{Exit, HAluOp};

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![],
            stub_guest_counts: vec![],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn disjoint_lifetimes_share_a_register() {
        // t0 dies before t1 is born: same physical register.
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 1 },
            IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(1)),
                ra: IrReg::Phys(HReg(1)),
                rb: IrReg::Virt(0),
            },
            IrInst::Li { rd: IrReg::Virt(1), imm: 2 },
            IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(2)),
                ra: IrReg::Phys(HReg(2)),
                rb: IrReg::Virt(1),
            },
        ]);
        let m = run(&b).unwrap();
        assert_eq!(m.int[&0], m.int[&1]);
    }

    #[test]
    fn overlapping_lifetimes_get_distinct_registers() {
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 1 },
            IrInst::Li { rd: IrReg::Virt(1), imm: 2 },
            IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(1)),
                ra: IrReg::Virt(0),
                rb: IrReg::Virt(1),
            },
        ]);
        let m = run(&b).unwrap();
        assert_ne!(m.int[&0], m.int[&1]);
    }

    #[test]
    fn allocations_stay_in_scratch_range() {
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 1 },
            IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(1)),
                ra: IrReg::Phys(HReg(1)),
                rb: IrReg::Virt(0),
            },
        ]);
        let m = run(&b).unwrap();
        let r = m.int[&0];
        assert!((SCRATCH_BASE..SCRATCH_END).contains(&r.0));
        assert!(!r.is_tol(), "allocation must stay in the application half");
    }

    #[test]
    fn exhaustion_reports_out_of_registers() {
        // 22 simultaneously-live virtuals exceed the 21-register pool.
        let n = (SCRATCH_END - SCRATCH_BASE) as u32 + 1;
        let mut ops: Vec<IrInst> =
            (0..n).map(|v| IrInst::Li { rd: IrReg::Virt(v), imm: v as i64 }).collect();
        // One instruction using them all pairwise keeps them live to the end.
        for v in 0..n {
            ops.push(IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(1)),
                ra: IrReg::Virt(v),
                rb: IrReg::Virt((v + 1) % n),
            });
        }
        let b = block(ops);
        assert!(matches!(run(&b), Err(OptError::OutOfRegisters)));
    }

    #[test]
    fn fp_virtuals_allocated_separately() {
        use crate::ir::IrFreg;
        let b = block(vec![
            IrInst::FMov { fd: IrFreg::Virt(0), fa: IrFreg::Phys(HFreg(0)) },
            IrInst::FMov { fd: IrFreg::Phys(HFreg(1)), fa: IrFreg::Virt(0) },
        ]);
        let m = run(&b).unwrap();
        let f = m.fp[&0];
        assert!((FSCRATCH_BASE..FSCRATCH_END).contains(&f.0));
    }
}
