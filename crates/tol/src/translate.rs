//! Guest → host-IR translation.
//!
//! One translator serves both translation modes: BBM translates a single
//! basic block, SBM translates a superblock (a hot path of several basic
//! blocks glued together, with side exits). Both produce a linear
//! [`IrBlock`].
//!
//! The translator performs the paper's *dead-flag elision* intrinsically:
//! a guest instruction's EFLAGS update is materialized (via
//! `FlagsArith`) only if some later instruction in the region reads the
//! flags, or control can leave the region, before another instruction
//! overwrites them. This is what makes a `mov` cheaper to translate than
//! an `add` (Sec. III-C) without sacrificing architectural correctness at
//! exits.

use crate::ir::{
    guest_fpr_reg, guest_gpr_reg, IrBlock, IrInst, IrOp, IrReg, EXIT_TARGET_REG, FLAGS_REG,
};
use darco_guest::{decode, AluOp, DecodeError, Gpr, GuestMem, Inst, MemRef, ShiftOp};
use darco_host::{Exit, FlagsKind, HAluOp, Width};

/// Longest basic block the translator will form before splitting.
pub const MAX_BB_INSTS: usize = 64;

/// One decoded guest instruction in a translation region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionInst {
    /// Guest address of the instruction.
    pub pc: u32,
    /// The instruction.
    pub inst: Inst,
    /// Encoded length in bytes.
    pub len: u32,
    /// For an internal conditional branch in a superblock: `true` if the
    /// superblock inlines the *taken* path (so the not-taken direction
    /// becomes the side exit). Ignored for other instructions.
    pub follow_taken: bool,
}

impl RegionInst {
    /// Guest address of the next sequential instruction.
    pub fn next_pc(&self) -> u32 {
        self.pc.wrapping_add(self.len)
    }
}

/// Decodes the basic block starting at `entry`: instructions up to and
/// including the first control transfer (or [`MAX_BB_INSTS`]).
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes at some instruction boundary do
/// not decode — the interpreter surfaces the same error when reaching
/// such bytes, so callers treat this as a guest fault.
pub fn decode_bb(mem: &GuestMem, entry: u32) -> Result<Vec<RegionInst>, DecodeError> {
    let mut out = Vec::new();
    decode_bb_into(mem, entry, &mut out)?;
    Ok(out)
}

/// [`decode_bb`] into a caller-provided buffer, appending the decoded
/// block to `out`. Callers clear (or measure) the buffer themselves; on
/// a decode error the instructions decoded before the fault remain
/// appended.
pub(crate) fn decode_bb_into(
    mem: &GuestMem,
    entry: u32,
    out: &mut Vec<RegionInst>,
) -> Result<(), DecodeError> {
    let mut pc = entry;
    for _ in 0..MAX_BB_INSTS {
        let window = mem.window(pc, darco_guest::exec::MAX_INST_LEN);
        let (inst, len) = decode(&window)?;
        out.push(RegionInst { pc, inst, len: len as u32, follow_taken: false });
        pc = pc.wrapping_add(len as u32);
        if inst.is_block_end() {
            break;
        }
    }
    Ok(())
}

/// Reusable IR-side translation buffers: the op, stub and stub-count
/// vectors a translation builds its [`IrBlock`] from. A fresh
/// translation takes the (empty, but sized) buffers, and
/// [`IrScratch::recycle`] returns a finished block's allocations so the
/// next translation on the same engine or pool worker starts with
/// capacity instead of `Vec::new()`.
#[derive(Debug, Default)]
pub struct IrScratch {
    ops: Vec<IrOp>,
    stubs: Vec<Exit>,
    counts: Vec<u32>,
}

impl IrScratch {
    fn take(&mut self) -> (Vec<IrOp>, Vec<Exit>, Vec<u32>) {
        (
            std::mem::take(&mut self.ops),
            std::mem::take(&mut self.stubs),
            std::mem::take(&mut self.counts),
        )
    }

    /// Reclaims a finished block's buffers, keeping whichever allocation
    /// (current or reclaimed) has more capacity.
    pub fn recycle(&mut self, block: IrBlock) {
        let IrBlock { mut ops, mut stubs, mut stub_guest_counts, .. } = block;
        ops.clear();
        stubs.clear();
        stub_guest_counts.clear();
        if ops.capacity() > self.ops.capacity() {
            self.ops = ops;
        }
        if stubs.capacity() > self.stubs.capacity() {
            self.stubs = stubs;
        }
        if stub_guest_counts.capacity() > self.counts.capacity() {
            self.counts = stub_guest_counts;
        }
    }
}

/// Reusable translation buffers for an engine's synchronous compile
/// path: the decoded-region vector, the superblock-formation visited
/// set, and the IR-side [`IrScratch`]. One translation is in flight per
/// engine at a time, so a single arena suffices; pool workers own one
/// [`IrScratch`] each instead.
#[derive(Debug, Default)]
pub(crate) struct TranslateScratch {
    pub(crate) region: Vec<RegionInst>,
    pub(crate) visited: std::collections::HashSet<u32>,
    pub(crate) ir: IrScratch,
}

/// Whether instruction `i`'s flag definition must be materialized:
/// `true` if a later instruction reads flags, or an exit point occurs,
/// before the next flag write.
fn flags_live_after(region: &[RegionInst], i: usize) -> bool {
    for r in &region[i + 1..] {
        if r.inst.reads_flags() {
            return true;
        }
        if r.inst.is_block_end() {
            // A followed unconditional jump keeps control inside the
            // superblock and is not an exit point.
            if matches!(r.inst, Inst::Jmp { .. }) && !std::ptr::eq(r, region.last().unwrap()) {
                continue;
            }
            return true;
        }
        if r.inst.writes_flags() {
            return false;
        }
    }
    true // live-out at the region end
}

fn host_alu(op: AluOp) -> HAluOp {
    match op {
        AluOp::Add => HAluOp::Add,
        AluOp::Sub => HAluOp::Sub,
        AluOp::And => HAluOp::And,
        AluOp::Or => HAluOp::Or,
        AluOp::Xor => HAluOp::Xor,
    }
}

fn arith_flags_kind(op: AluOp) -> Option<FlagsKind> {
    match op {
        AluOp::Add => Some(FlagsKind::Add),
        AluOp::Sub => Some(FlagsKind::Sub),
        AluOp::And | AluOp::Or | AluOp::Xor => None, // logic: flags from result
    }
}

fn shift_alu(op: ShiftOp) -> (HAluOp, FlagsKind) {
    match op {
        ShiftOp::Shl => (HAluOp::Shl, FlagsKind::Shl),
        ShiftOp::Shr => (HAluOp::Shr, FlagsKind::Shr),
        ShiftOp::Sar => (HAluOp::Sar, FlagsKind::Sar),
    }
}

/// Translation context for one region.
struct Ctx {
    ops: Vec<IrOp>,
    stubs: Vec<Exit>,
    stub_guest_counts: Vec<u32>,
    next_virt: u32,
    gi: u32,
}

impl Ctx {
    fn virt(&mut self) -> IrReg {
        self.next_virt += 1;
        IrReg::Virt(self.next_virt - 1)
    }

    fn emit(&mut self, inst: IrInst) {
        self.ops.push(IrOp { inst, guest_idx: self.gi });
    }

    fn stub(&mut self, exit: Exit) -> u32 {
        self.stubs.push(exit);
        // Exiting via this stub retires the guest instructions up to and
        // including the branch being translated.
        self.stub_guest_counts.push(self.gi + 1);
        (self.stubs.len() - 1) as u32
    }

    /// Materializes the effective address of `m` as `(base_reg, offset)`.
    fn ea(&mut self, m: &MemRef) -> (IrReg, i32) {
        let base = m.base.map(|b| IrReg::Phys(guest_gpr_reg(b.index())));
        let index = m.index.map(|i| IrReg::Phys(guest_gpr_reg(i.index())));
        match (base, index) {
            (None, None) => (IrReg::ZERO, m.disp),
            (Some(b), None) => (b, m.disp),
            (b, Some(ix)) => {
                let scaled = if m.scale.factor() == 1 {
                    ix
                } else {
                    let t = self.virt();
                    self.emit(IrInst::AluI {
                        op: HAluOp::Shl,
                        rd: t,
                        ra: ix,
                        imm: m.scale.factor().trailing_zeros() as i32,
                    });
                    t
                };
                match b {
                    None => (scaled, m.disp),
                    Some(b) => {
                        let t = self.virt();
                        self.emit(IrInst::Alu { op: HAluOp::Add, rd: t, ra: b, rb: scaled });
                        (t, m.disp)
                    }
                }
            }
        }
    }

    /// Copies `src` into the dedicated exit-target register.
    fn move_to_exit_reg(&mut self, src: IrReg) {
        self.emit(IrInst::AluI {
            op: HAluOp::Or,
            rd: IrReg::Phys(EXIT_TARGET_REG),
            ra: src,
            imm: 0,
        });
    }

    /// Pushes `value_reg` onto the guest stack (esp-relative).
    fn push_guest(&mut self, value: IrReg) {
        let esp = IrReg::Phys(guest_gpr_reg(Gpr::Esp.index()));
        self.emit(IrInst::AluI { op: HAluOp::Sub, rd: esp, ra: esp, imm: 4 });
        self.emit(IrInst::St { rs: value, base: esp, off: 0, width: Width::W4 });
    }
}

const FLAGS: IrReg = IrReg::Phys(FLAGS_REG);

/// Translates a region (basic block or superblock path) to IR.
///
/// The region must be non-empty; its last instruction determines the
/// fall-through exit. Internal control transfers may only be `Jcc`
/// (side exit on the non-followed direction) or `Jmp` (followed,
/// no code emitted).
///
/// # Panics
///
/// Panics if an internal instruction is a call, return or indirect jump
/// (superblock formation must stop at those).
pub fn translate_region(region: &[RegionInst]) -> IrBlock {
    translate_region_with(region, false)
}

/// [`translate_region`] with a choice of flag-materialization policy.
///
/// With `eager_flags` the translator emits a `FlagsArith` for **every**
/// flag-writing guest instruction and leaves the elision decision to
/// the IR-level `deadflags` pass (DESIGN.md §13), which the analysis
/// framework drives; without it the intrinsic guest-level elision of
/// `flags_live_after` applies. Both policies converge to the same
/// final host code when the pass pipeline runs.
///
/// # Panics
///
/// Same as [`translate_region`].
pub fn translate_region_with(region: &[RegionInst], eager_flags: bool) -> IrBlock {
    translate_region_scratch(region, eager_flags, &mut IrScratch::default())
}

/// [`translate_region_with`] building the block out of `scratch`'s
/// recycled buffers instead of fresh allocations. The emitted block is
/// identical; only the allocation behavior differs.
///
/// # Panics
///
/// Same as [`translate_region`].
pub fn translate_region_scratch(
    region: &[RegionInst],
    eager_flags: bool,
    scratch: &mut IrScratch,
) -> IrBlock {
    assert!(!region.is_empty(), "empty translation region");
    let (ops, stubs, stub_guest_counts) = scratch.take();
    let mut cx = Ctx { ops, stubs, stub_guest_counts, next_virt: 0, gi: 0 };
    let mut fallthrough = None;
    for (i, r) in region.iter().enumerate() {
        cx.gi = i as u32;
        let last = i == region.len() - 1;
        let flags_live = r.inst.writes_flags() && (eager_flags || flags_live_after(region, i));
        match r.inst {
            inst if !inst.is_block_end() => emit_straightline(&mut cx, &inst, flags_live),
            Inst::Jcc { cond, target } => {
                if last {
                    let stub = cx.stub(Exit::Direct { guest_target: target, link: None });
                    cx.emit(IrInst::BrFlags { cond, flags: FLAGS, stub });
                    fallthrough = Some(Exit::Direct { guest_target: r.next_pc(), link: None });
                } else if r.follow_taken {
                    // Inline the taken path: exit on the negated condition.
                    let stub = cx.stub(Exit::Direct { guest_target: r.next_pc(), link: None });
                    cx.emit(IrInst::BrFlags { cond: cond.negated(), flags: FLAGS, stub });
                } else {
                    // Inline the fall-through: exit when taken.
                    let stub = cx.stub(Exit::Direct { guest_target: target, link: None });
                    cx.emit(IrInst::BrFlags { cond, flags: FLAGS, stub });
                }
            }
            Inst::Jmp { target } => {
                if last {
                    fallthrough = Some(Exit::Direct { guest_target: target, link: None });
                }
                // Followed internal jump: no code at all.
            }
            Inst::Call { target } => {
                assert!(last, "call inside a superblock body");
                let t = cx.virt();
                cx.emit(IrInst::Li { rd: t, imm: r.next_pc() as i64 });
                cx.push_guest(t);
                fallthrough = Some(Exit::Direct { guest_target: target, link: None });
            }
            Inst::CallInd { reg } => {
                assert!(last, "indirect call inside a superblock body");
                cx.move_to_exit_reg(IrReg::Phys(guest_gpr_reg(reg.index())));
                let t = cx.virt();
                cx.emit(IrInst::Li { rd: t, imm: r.next_pc() as i64 });
                cx.push_guest(t);
                fallthrough = Some(Exit::Indirect { reg: EXIT_TARGET_REG });
            }
            Inst::JmpInd { reg } => {
                assert!(last, "indirect jump inside a superblock body");
                cx.move_to_exit_reg(IrReg::Phys(guest_gpr_reg(reg.index())));
                fallthrough = Some(Exit::Indirect { reg: EXIT_TARGET_REG });
            }
            Inst::JmpMem { addr } => {
                assert!(last, "indirect jump inside a superblock body");
                let (base, off) = cx.ea(&addr);
                let t = cx.virt();
                cx.emit(IrInst::Ld { rd: t, base, off, width: Width::W4 });
                cx.move_to_exit_reg(t);
                fallthrough = Some(Exit::Indirect { reg: EXIT_TARGET_REG });
            }
            Inst::Ret => {
                assert!(last, "return inside a superblock body");
                let esp = IrReg::Phys(guest_gpr_reg(Gpr::Esp.index()));
                let t = cx.virt();
                cx.emit(IrInst::Ld { rd: t, base: esp, off: 0, width: Width::W4 });
                cx.emit(IrInst::AluI { op: HAluOp::Add, rd: esp, ra: esp, imm: 4 });
                cx.move_to_exit_reg(t);
                fallthrough = Some(Exit::Indirect { reg: EXIT_TARGET_REG });
            }
            Inst::Halt => {
                assert!(last, "halt inside a superblock body");
                fallthrough = Some(Exit::Halt);
            }
            other => unreachable!("unhandled terminal {other:?}"),
        }
    }
    let fallthrough = fallthrough
        .unwrap_or(Exit::Direct { guest_target: region.last().unwrap().next_pc(), link: None });
    IrBlock {
        ops: cx.ops,
        stubs: cx.stubs,
        stub_guest_counts: cx.stub_guest_counts,
        fallthrough,
        guest_len: region.len() as u32,
    }
}

/// Emits IR for a non-control-flow guest instruction.
fn emit_straightline(cx: &mut Ctx, inst: &Inst, flags_live: bool) {
    let g = |r: Gpr| IrReg::Phys(guest_gpr_reg(r.index()));
    match *inst {
        Inst::Nop | Inst::Syscall => cx.emit(IrInst::Nop),
        Inst::Halt
        | Inst::Jcc { .. }
        | Inst::Jmp { .. }
        | Inst::JmpInd { .. }
        | Inst::JmpMem { .. }
        | Inst::Call { .. }
        | Inst::CallInd { .. }
        | Inst::Ret => unreachable!("control flow handled by translate_region"),
        Inst::MovRR { dst, src } => {
            cx.emit(IrInst::AluI { op: HAluOp::Or, rd: g(dst), ra: g(src), imm: 0 });
        }
        Inst::MovRI { dst, imm } => cx.emit(IrInst::Li { rd: g(dst), imm: imm as i64 }),
        Inst::Load { dst, addr } => {
            let (base, off) = cx.ea(&addr);
            cx.emit(IrInst::Ld { rd: g(dst), base, off, width: Width::W4 });
        }
        Inst::LoadZx { dst, addr, width } => {
            let (base, off) = cx.ea(&addr);
            let w = if width == darco_guest::MemWidth::B1 { Width::W1 } else { Width::W2 };
            cx.emit(IrInst::Ld { rd: g(dst), base, off, width: w });
        }
        Inst::LoadSx { dst, addr, width } => {
            // RISC lowering: zero-extending load plus a shift pair.
            let (base, off) = cx.ea(&addr);
            let (w, sh) =
                if width == darco_guest::MemWidth::B1 { (Width::W1, 24) } else { (Width::W2, 16) };
            cx.emit(IrInst::Ld { rd: g(dst), base, off, width: w });
            cx.emit(IrInst::AluI { op: HAluOp::Shl, rd: g(dst), ra: g(dst), imm: sh });
            cx.emit(IrInst::AluI { op: HAluOp::Sar, rd: g(dst), ra: g(dst), imm: sh });
        }
        Inst::StoreN { addr, src, width } => {
            let (base, off) = cx.ea(&addr);
            let w = if width == darco_guest::MemWidth::B1 { Width::W1 } else { Width::W2 };
            cx.emit(IrInst::St { rs: g(src), base, off, width: w });
        }
        Inst::Store { addr, src } => {
            let (base, off) = cx.ea(&addr);
            cx.emit(IrInst::St { rs: g(src), base, off, width: Width::W4 });
        }
        Inst::StoreI { addr, imm } => {
            let t = cx.virt();
            cx.emit(IrInst::Li { rd: t, imm: imm as i64 });
            let (base, off) = cx.ea(&addr);
            cx.emit(IrInst::St { rs: t, base, off, width: Width::W4 });
        }
        Inst::Lea { dst, addr } => {
            let (base, off) = cx.ea(&addr);
            cx.emit(IrInst::AluI { op: HAluOp::Add, rd: g(dst), ra: base, imm: off });
        }
        Inst::AluRR { op, dst, src } => {
            emit_alu(cx, op, g(dst), AluSrc::Reg(g(src)), flags_live);
        }
        Inst::AluRI { op, dst, imm } => {
            emit_alu(cx, op, g(dst), AluSrc::Imm(imm), flags_live);
        }
        Inst::AluRM { op, dst, addr } => {
            let (base, off) = cx.ea(&addr);
            let t = cx.virt();
            cx.emit(IrInst::Ld { rd: t, base, off, width: Width::W4 });
            emit_alu(cx, op, g(dst), AluSrc::Reg(t), flags_live);
        }
        Inst::AluMR { op, addr, src } => {
            let (base, off) = cx.ea(&addr);
            let t = cx.virt();
            cx.emit(IrInst::Ld { rd: t, base, off, width: Width::W4 });
            emit_alu(cx, op, t, AluSrc::Reg(g(src)), flags_live);
            cx.emit(IrInst::St { rs: t, base, off, width: Width::W4 });
        }
        Inst::CmpRR { a, b } => {
            if flags_live {
                cx.emit(IrInst::FlagsArith { kind: FlagsKind::Sub, rd: FLAGS, ra: g(a), rb: g(b) });
            }
        }
        Inst::CmpRI { a, imm } => {
            if flags_live {
                let t = cx.virt();
                cx.emit(IrInst::Li { rd: t, imm: imm as i64 });
                cx.emit(IrInst::FlagsArith { kind: FlagsKind::Sub, rd: FLAGS, ra: g(a), rb: t });
            }
        }
        Inst::TestRR { a, b } => {
            if flags_live {
                let t = cx.virt();
                cx.emit(IrInst::Alu { op: HAluOp::And, rd: t, ra: g(a), rb: g(b) });
                cx.emit(IrInst::FlagsArith {
                    kind: FlagsKind::Logic,
                    rd: FLAGS,
                    ra: t,
                    rb: IrReg::ZERO,
                });
            }
        }
        Inst::Shift { op, dst, amount } => {
            let amt = (amount & 31) as i32;
            if amt == 0 {
                return; // architecturally a no-op, flags preserved
            }
            let (alu, kind) = shift_alu(op);
            if flags_live {
                let t = cx.virt();
                cx.emit(IrInst::Li { rd: t, imm: amt as i64 });
                cx.emit(IrInst::FlagsArith { kind, rd: FLAGS, ra: g(dst), rb: t });
            }
            cx.emit(IrInst::AluI { op: alu, rd: g(dst), ra: g(dst), imm: amt });
        }
        Inst::ShiftCl { op, dst } => {
            let (alu, kind) = shift_alu(op);
            let amt = cx.virt();
            cx.emit(IrInst::AluI { op: HAluOp::And, rd: amt, ra: g(Gpr::Ecx), imm: 31 });
            if flags_live {
                cx.emit(IrInst::FlagsArith { kind, rd: FLAGS, ra: g(dst), rb: amt });
            }
            cx.emit(IrInst::Alu { op: alu, rd: g(dst), ra: g(dst), rb: amt });
        }
        Inst::Imul { dst, src } => {
            if flags_live {
                cx.emit(IrInst::FlagsArith {
                    kind: FlagsKind::Mul,
                    rd: FLAGS,
                    ra: g(dst),
                    rb: g(src),
                });
            }
            cx.emit(IrInst::Mul { rd: g(dst), ra: g(dst), rb: g(src) });
        }
        Inst::Idiv { dst, src } => {
            cx.emit(IrInst::Div { rd: g(dst), ra: g(dst), rb: g(src) });
            if flags_live {
                cx.emit(IrInst::FlagsArith {
                    kind: FlagsKind::Logic,
                    rd: FLAGS,
                    ra: g(dst),
                    rb: IrReg::ZERO,
                });
            }
        }
        Inst::Neg { dst } => {
            if flags_live {
                cx.emit(IrInst::FlagsArith {
                    kind: FlagsKind::Sub,
                    rd: FLAGS,
                    ra: IrReg::ZERO,
                    rb: g(dst),
                });
            }
            cx.emit(IrInst::Alu { op: HAluOp::Sub, rd: g(dst), ra: IrReg::ZERO, rb: g(dst) });
        }
        Inst::Not { dst } => {
            cx.emit(IrInst::AluI { op: HAluOp::Xor, rd: g(dst), ra: g(dst), imm: -1 });
        }
        Inst::Push { src } => cx.push_guest(g(src)),
        Inst::Pop { dst } => {
            let esp = IrReg::Phys(guest_gpr_reg(Gpr::Esp.index()));
            if dst == Gpr::Esp {
                // `pop esp`: the loaded value *is* the final stack
                // pointer (no post-increment visible), matching the
                // reference semantics.
                let t = cx.virt();
                cx.emit(IrInst::Ld { rd: t, base: esp, off: 0, width: Width::W4 });
                cx.emit(IrInst::AluI { op: HAluOp::Or, rd: esp, ra: t, imm: 0 });
            } else {
                cx.emit(IrInst::Ld { rd: g(dst), base: esp, off: 0, width: Width::W4 });
                cx.emit(IrInst::AluI { op: HAluOp::Add, rd: esp, ra: esp, imm: 4 });
            }
        }
        Inst::FMovRR { dst, src } => {
            cx.emit(IrInst::FMov {
                fd: crate::ir::IrFreg::Phys(guest_fpr_reg(dst.index())),
                fa: crate::ir::IrFreg::Phys(guest_fpr_reg(src.index())),
            });
        }
        Inst::FLoad { dst, addr } => {
            let (base, off) = cx.ea(&addr);
            cx.emit(IrInst::FLd {
                fd: crate::ir::IrFreg::Phys(guest_fpr_reg(dst.index())),
                base,
                off,
            });
        }
        Inst::FStore { addr, src } => {
            let (base, off) = cx.ea(&addr);
            cx.emit(IrInst::FSt {
                fs: crate::ir::IrFreg::Phys(guest_fpr_reg(src.index())),
                base,
                off,
            });
        }
        Inst::FArith { op, dst, src } => {
            cx.emit(IrInst::FArith {
                op,
                fd: crate::ir::IrFreg::Phys(guest_fpr_reg(dst.index())),
                fa: crate::ir::IrFreg::Phys(guest_fpr_reg(dst.index())),
                fb: crate::ir::IrFreg::Phys(guest_fpr_reg(src.index())),
            });
        }
        Inst::CvtIF { dst, src } => {
            cx.emit(IrInst::CvtIF {
                fd: crate::ir::IrFreg::Phys(guest_fpr_reg(dst.index())),
                ra: g(src),
            });
        }
        Inst::CvtFI { dst, src } => {
            cx.emit(IrInst::CvtFI {
                rd: g(dst),
                fa: crate::ir::IrFreg::Phys(guest_fpr_reg(src.index())),
            });
        }
    }
}

enum AluSrc {
    Reg(IrReg),
    Imm(i32),
}

/// Emits `dst <- dst op src` plus flags when live, preserving operand
/// order for the flags computation (which needs the pre-op values).
fn emit_alu(cx: &mut Ctx, op: AluOp, dst: IrReg, src: AluSrc, flags_live: bool) {
    let hop = host_alu(op);
    match arith_flags_kind(op) {
        Some(kind) => {
            // add/sub: flags from the original operands, computed first.
            if flags_live {
                let rb = match src {
                    AluSrc::Reg(r) => r,
                    AluSrc::Imm(imm) => {
                        let t = cx.virt();
                        cx.emit(IrInst::Li { rd: t, imm: imm as i64 });
                        t
                    }
                };
                cx.emit(IrInst::FlagsArith { kind, rd: FLAGS, ra: dst, rb });
                cx.emit(IrInst::Alu { op: hop, rd: dst, ra: dst, rb });
            } else {
                match src {
                    AluSrc::Reg(r) => cx.emit(IrInst::Alu { op: hop, rd: dst, ra: dst, rb: r }),
                    AluSrc::Imm(imm) => cx.emit(IrInst::AluI { op: hop, rd: dst, ra: dst, imm }),
                }
            }
        }
        None => {
            // logic: flags from the result, computed after.
            match src {
                AluSrc::Reg(r) => cx.emit(IrInst::Alu { op: hop, rd: dst, ra: dst, rb: r }),
                AluSrc::Imm(imm) => cx.emit(IrInst::AluI { op: hop, rd: dst, ra: dst, imm }),
            }
            if flags_live {
                cx.emit(IrInst::FlagsArith {
                    kind: FlagsKind::Logic,
                    rd: FLAGS,
                    ra: dst,
                    rb: IrReg::ZERO,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::asm::Asm;
    use darco_guest::Cond;

    fn decode_prog(insts: &[Inst]) -> (GuestMem, u32) {
        let mut a = Asm::new(0x1000);
        for i in insts {
            a.push(*i);
        }
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        (mem, p.base)
    }

    #[test]
    fn bb_decoding_stops_at_branch() {
        let (mem, base) = decode_prog(&[
            Inst::MovRI { dst: Gpr::Eax, imm: 1 },
            Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 2 },
            Inst::Jmp { target: 0x2000 },
            Inst::Nop, // unreachable, not part of the BB
        ]);
        let bb = decode_bb(&mem, base).unwrap();
        assert_eq!(bb.len(), 3);
        assert!(bb[2].inst.is_block_end());
    }

    #[test]
    fn dead_flags_are_elided() {
        // add (flags dead: overwritten by cmp) ; cmp ; jcc reads them.
        let (mem, base) = decode_prog(&[
            Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 },
            Inst::CmpRI { a: Gpr::Eax, imm: 10 },
            Inst::Jcc { cond: Cond::Ne, target: 0x1000 },
        ]);
        let bb = decode_bb(&mem, base).unwrap();
        let ir = translate_region(&bb);
        let flag_writes =
            ir.ops.iter().filter(|o| matches!(o.inst, IrInst::FlagsArith { .. })).count();
        assert_eq!(flag_writes, 1, "only the cmp materializes flags");
    }

    #[test]
    fn trailing_arith_keeps_flags_live_out() {
        let (mem, base) = decode_prog(&[
            Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 },
            Inst::Jmp { target: 0x9000 },
        ]);
        let bb = decode_bb(&mem, base).unwrap();
        let ir = translate_region(&bb);
        assert!(
            ir.ops.iter().any(|o| matches!(o.inst, IrInst::FlagsArith { .. })),
            "flags are architecturally live at the exit"
        );
    }

    #[test]
    fn conditional_branch_forms_stub_and_fallthrough() {
        let (mem, base) = decode_prog(&[
            Inst::CmpRI { a: Gpr::Eax, imm: 0 },
            Inst::Jcc { cond: Cond::E, target: 0x3000 },
        ]);
        let bb = decode_bb(&mem, base).unwrap();
        let ir = translate_region(&bb);
        assert_eq!(ir.stubs.len(), 1);
        assert_eq!(ir.stubs[0], Exit::Direct { guest_target: 0x3000, link: None });
        match ir.fallthrough {
            Exit::Direct { guest_target, .. } => assert_eq!(guest_target, bb[1].next_pc()),
            other => panic!("unexpected fallthrough {other:?}"),
        }
    }

    #[test]
    fn superblock_inlines_taken_path_with_negated_side_exit() {
        // Region: cmp; jcc (follow taken); add — as if the SB follows the
        // taken edge of the branch.
        let (mem, base) = decode_prog(&[
            Inst::CmpRI { a: Gpr::Eax, imm: 0 },
            Inst::Jcc { cond: Cond::E, target: 0x3000 },
        ]);
        let mut region = decode_bb(&mem, base).unwrap();
        region[1].follow_taken = true;
        region.push(RegionInst { pc: 0x3000, inst: Inst::Halt, len: 1, follow_taken: false });
        let ir = translate_region(&region);
        // Side exit goes to the *not-taken* successor under the negated
        // condition.
        let br = ir
            .ops
            .iter()
            .find_map(|o| match o.inst {
                IrInst::BrFlags { cond, stub, .. } => Some((cond, stub)),
                _ => None,
            })
            .expect("side exit branch");
        assert_eq!(br.0, Cond::Ne);
        assert_eq!(
            ir.stubs[br.1 as usize],
            Exit::Direct { guest_target: region[1].next_pc(), link: None }
        );
        assert_eq!(ir.fallthrough, Exit::Halt);
    }

    #[test]
    fn ret_loads_pops_and_exits_indirect() {
        let (mem, base) = decode_prog(&[Inst::Ret]);
        let bb = decode_bb(&mem, base).unwrap();
        let ir = translate_region(&bb);
        assert_eq!(ir.fallthrough, Exit::Indirect { reg: EXIT_TARGET_REG });
        assert!(ir.ops.iter().any(|o| o.inst.is_load()));
    }

    #[test]
    fn call_pushes_return_address() {
        let (mem, base) = decode_prog(&[Inst::Call { target: 0x4000 }]);
        let bb = decode_bb(&mem, base).unwrap();
        let ir = translate_region(&bb);
        assert!(ir.ops.iter().any(|o| o.inst.is_store()), "return address pushed");
        assert_eq!(ir.fallthrough, Exit::Direct { guest_target: 0x4000, link: None });
    }

    #[test]
    fn pop_esp_matches_reference_semantics() {
        use darco_host::{exec_inst, HostState, Outcome};
        // Reference: pop esp leaves esp = loaded value (not value + 4).
        let (mem, base) = decode_prog(&[Inst::Pop { dst: Gpr::Esp }, Inst::Halt]);
        let mut ref_cpu = darco_guest::CpuState::at(base);
        ref_cpu.set_gpr(Gpr::Esp, 0x5000);
        let mut ref_mem = mem.clone();
        ref_mem.write_u32(0x5000, 0x1234);
        darco_guest::exec::step(&mut ref_cpu, &mut ref_mem).unwrap();
        assert_eq!(ref_cpu.gpr(Gpr::Esp), 0x1234);

        // Translated execution must agree.
        let bb = decode_bb(&mem, base).unwrap();
        let ir = translate_region(&bb[..1]);
        let map = {
            let mut m = crate::ir::RegMap::default();
            m.int.insert(0, darco_host::HReg(11));
            m
        };
        let host = crate::ir::lower(&ir, &map);
        let mut st = HostState::new();
        st.set_reg(crate::ir::guest_gpr_reg(Gpr::Esp.index()), 0x5000);
        let mut hmem = darco_guest::GuestMem::new();
        hmem.write_u32(0x5000, 0x1234);
        for inst in &host {
            if let Outcome::Exited(_) = exec_inst(&mut st, inst, &mut hmem) {
                break;
            }
        }
        assert_eq!(st.reg(crate::ir::guest_gpr_reg(Gpr::Esp.index())), 0x1234);
    }

    #[test]
    fn mov_cheaper_than_add() {
        // The paper's Sec. III-C point: flag-writing instructions cost
        // more to translate. Compare IR lengths with flags live-out.
        let (mem_a, base_a) = decode_prog(&[Inst::MovRR { dst: Gpr::Eax, src: Gpr::Ebx }]);
        let (mem_b, base_b) =
            decode_prog(&[Inst::AluRR { op: AluOp::Add, dst: Gpr::Eax, src: Gpr::Ebx }]);
        let ir_a = translate_region(&decode_bb(&mem_a, base_a).unwrap());
        let ir_b = translate_region(&decode_bb(&mem_b, base_b).unwrap());
        assert!(ir_b.ops.len() > ir_a.ops.len());
    }
}
