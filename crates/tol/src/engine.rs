//! The software layer's main execution engine (the paper's Fig. 3 flow).
//!
//! `code cache hit? → execute translation (chained) ;
//!  miss → count; over IM/BBth? → translate BB ; else interpret ;
//!  BB over BB/SBth? → form + optimize superblock`
//!
//! [`Tol::step`] advances the emulated guest by (at least) one dispatch
//! unit — one interpreted basic block or one run of chained translations
//! bounded by a budget — emitting every retired host instruction (and
//! module-level markers: mode entries, translations, chaining,
//! code-cache installs, IBTC resolutions) as typed
//! [`HostEvent`]s. Events are staged in a fixed-capacity
//! [`EventBuffer`] and delivered to the caller's [`HostEventSink`] in
//! retire-order batches, flushed at budget boundaries. The caller
//! (DARCO's controller) dispatches those batches to the timing
//! simulator and co-simulates against the authoritative functional
//! emulator between steps.

use crate::codecache::{
    pages_dirty, BlockKind, CacheHealth, CodeCache, EvictCause, Evicted, Prepared, TranslatedBlock,
};
use crate::config::TolConfig;
use crate::emission::Emitter;
use crate::ibtc::Ibtc;
use crate::interp;
use crate::ir::{self, EXIT_TARGET_REG, FLAGS_REG};
use crate::pool::{
    compile_bb, compile_sb, stamp_region, JobKind, JobOut, PendingJob, SbOutcome, TranslatePool,
    TranslationPoolStats,
};
use crate::profile::{Profiler, StaticMode};
use crate::superblock::{form_region, form_region_into};
use crate::translate::{decode_bb, decode_bb_into, RegionInst, TranslateScratch};
use darco_guest::{CpuState, DecodeError, Flags, FpReg, Gpr, GuestMem};
use darco_host::events::{EventBuffer, ExecMode, HostEvent, HostEventSink, TranslationKind};
use darco_host::layout::{guest_to_host, TOL_CODE_BASE};
use darco_host::stream::{fp_reg, int_reg, NO_REG};
use darco_host::{
    exec_inst, BlockId, BranchKind, DynInst, Exit, HFreg, HInst, HostState, Outcome, RetireDyn,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Execution mode (re-export of the profiler's mode classification).
pub type Mode = StaticMode;

/// Where a block execution's retired instructions go: straight into the
/// event buffer (the per-instruction path), or into a collection buffer
/// the macro-event memo compares against the previous execution.
enum BlockOut<'e, 'b> {
    /// Emit per-instruction `Retire` events.
    Events(&'e mut EventBuffer<'b>),
    /// Collect into a scratch stream for the macro-event compare.
    Scratch(&'e mut Vec<DynInst>),
}

impl BlockOut<'_, '_> {
    #[inline]
    fn retire(&mut self, d: DynInst) {
        match self {
            BlockOut::Events(ev) => ev.retire(d),
            BlockOut::Scratch(v) => v.push(d),
        }
    }
}

/// Engine-side macro-event memo for one code-cache slot.
#[derive(Debug)]
struct BlockMemoSlot {
    /// Slot generation the memo was recorded under.
    gen: u32,
    /// The last execution's retired stream. Kept as a shared allocation
    /// so a matching execution re-emits the *same* `Arc` — downstream
    /// consumers key their own memos on its pointer identity.
    stream: Option<Arc<[DynInst]>>,
    /// Macro-events emitted against the current `stream`.
    iterations: u64,
    /// Consecutive executions whose stream differed from the stored
    /// one; at [`Tol::MEMO_ABANDON`] the block stops being collected.
    fails: u32,
}

/// Engine-side macro-event counters. Deliberately not part of
/// [`RunSummary`] or any serialized report: those stay byte-identical
/// across [`TolConfig::block_memo`] settings.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EngineMemoStats {
    /// `BlockRetire` macro-events emitted with a proven-identical
    /// (shared-`Arc`) stream.
    pub macro_events: u64,
    /// Per-instruction `Retire` events suppressed by those macro-events.
    pub insts_suppressed: u64,
    /// Executions whose stream differed from the stored one (or had no
    /// stored stream) and re-recorded the memo.
    pub records: u64,
    /// Memos dropped for evictions, flushes or generation bumps.
    pub invalidations: u64,
    /// Blocks abandoned after repeated stream changes.
    pub abandoned: u64,
}

/// Counters the engine maintains across a run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TolCounters {
    /// Guest instructions emulated (all modes).
    pub guest_insts: u64,
    /// Superblocks formed (the paper's "SBM invocations", Fig. 6).
    pub sbm_invocations: u64,
    /// Dynamic guest indirect branches (incl. returns), Fig. 7 overlay.
    pub indirect_branches: u64,
    /// Transitions from translated code into the software layer.
    pub tol_entries: u64,
    /// Superblocks whose optimization bailed (register pressure).
    pub opt_bailouts: u64,
    /// Speculative indirect-branch resolutions that hit (optional
    /// feature, Sec. III-E).
    pub spec_hits: u64,
    /// Speculative resolutions that missed (compensation taken).
    pub spec_misses: u64,
    /// Superblocks whose optimization was fully verified (always-on in
    /// debug builds, opt-in via [`TolConfig::verify`] in release).
    pub verified_blocks: u64,
    /// Translation validations that fell back to randomized differential
    /// execution (the symbolic engine could not prove the rewrite).
    pub tv_differential: u64,
    /// Verifier-detected miscompiles: the optimized block was discarded
    /// and the unoptimized lowering installed instead.
    pub verify_failures: u64,
    /// Dead `FlagsArith` definitions deleted by the `deadflags` pass
    /// (BBM and SBM combined).
    pub flags_killed: u64,
    /// `BrFlags` statically folded by the `rangesimp` pass.
    pub branches_folded: u64,
}

/// What one [`Tol::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Guest instructions retired during this step.
    pub guest_insts: u64,
    /// Whether the guest program has halted.
    pub done: bool,
    /// Mode the step (mostly) executed in.
    pub mode: Mode,
}

/// End-of-run summary used by the experiment drivers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Engine counters.
    pub counters: TolCounters,
    /// Static guest instructions per final mode `[IM, BBM, SBM]`.
    pub static_dist: [u64; 3],
    /// Dynamic guest instructions per mode `[IM, BBM, SBM]`.
    pub dyn_dist: [u64; 3],
    /// Translations installed / flushes / chains.
    pub installed: u64,
    /// Code cache flushes.
    pub flushes: u64,
    /// Chain links created.
    pub chains: u64,
    /// IBTC hits.
    pub ibtc_hits: u64,
    /// IBTC misses.
    pub ibtc_misses: u64,
    /// Host instructions emitted per component (engine-side counts).
    pub emitted: [u64; 7],
    /// End-of-run code-cache health: occupancy, dead space, and the
    /// lifecycle counters (evictions, unchains, retranslations).
    pub cache: CacheHealth,
    /// Per-pass instruction deltas across every optimized block, in
    /// pipeline order (`darco verify` / `darco analyze` report these).
    pub pass_deltas: Vec<crate::verify::PassDelta>,
}

/// The Translation Optimization Layer engine.
#[derive(Debug)]
pub struct Tol {
    cfg: TolConfig,
    /// The code cache (public for inspection by experiments).
    pub cc: CodeCache,
    /// The indirect-branch translation cache.
    pub ibtc: Ibtc,
    /// The profiler.
    pub prof: Profiler,
    /// The cost-model emitter.
    pub em: Emitter,
    host: HostState,
    guest_pc: u32,
    halted: bool,
    counters: TolCounters,
    /// Set when a step ended mid-translated-run purely for budget
    /// reasons, so the next entry does not re-charge a transition.
    resume_translated: bool,
    /// Last observed target per indirect exit site, for the optional
    /// speculative-resolution feature: `(block, exit) -> (guest, block)`.
    /// Entries naming an evicted block are purged eagerly.
    spec_targets: std::collections::HashMap<(BlockId, u32), (u32, BlockId)>,
    /// Reused allocation for the retirement event buffer.
    ev_storage: Vec<HostEvent>,
    /// The interpreter's decoded-instruction cache.
    dcache: interp::DecodeCache,
    /// The guest layer's micro-op execution context (pre-decoded block
    /// buffers + lazy flags), used by the interpreter when
    /// [`TolConfig::guest_fast_path`] is on.
    fastctx: darco_guest::uops::ExecCtx,
    /// Accumulated per-pass deltas across every optimized block.
    pass_deltas: Vec<crate::verify::PassDelta>,
    /// Wall-clock nanoseconds per pass, keyed like `pass_deltas`. Kept
    /// outside [`TolCounters`] so serialized reports stay deterministic.
    pass_nanos: Vec<(String, u64)>,
    /// Total wall-clock nanoseconds in the analysis-driven passes
    /// (`deadflags` + `rangesimp`), BBM and SBM combined.
    analysis_ns: u64,
    /// Reusable translation buffers for the synchronous compile path
    /// (the pool workers each own their own IR scratch).
    scratch: TranslateScratch,
    /// Background translation pool; `None` when
    /// [`TolConfig::translate_workers`] is 0 (the synchronous oracle).
    pool: Option<TranslatePool>,
    /// In-flight background jobs keyed by (kind, guest entry).
    pending: std::collections::HashMap<(JobKind, u32), PendingJob>,
    /// Engine-side pool counters (enqueues, joins, discards).
    pool_counts: TranslationPoolStats,
    /// Per-slot macro-event memos, keyed by code-cache slot index
    /// (invalidated on eviction, flush, and generation bump).
    block_memo: std::collections::HashMap<u32, BlockMemoSlot>,
    /// Reused collection buffer for the macro-event compare.
    memo_scratch: Vec<DynInst>,
    /// Engine-side macro-event counters (not serialized into reports).
    memo_counts: EngineMemoStats,
}

impl Tol {
    /// Creates the layer with the emulated guest starting at `entry`.
    pub fn new(cfg: TolConfig, entry: u32) -> Tol {
        let mut cc = if cfg.codecache_scattered {
            CodeCache::new_scattered(cfg.code_cache_capacity)
        } else {
            CodeCache::new(cfg.code_cache_capacity)
        };
        cc.set_policy(cfg.cache_policy);
        let mut em = Emitter::new();
        em.interp_templates = cfg.retire_templates;
        let pool = (cfg.translate_workers > 0)
            .then(|| TranslatePool::new(cfg.translate_workers, cfg.clone()));
        let mut tol = Tol {
            cc,
            ibtc: Ibtc::new(cfg.ibtc_entries),
            prof: Profiler::new(),
            em,
            host: HostState::new(),
            guest_pc: entry,
            halted: false,
            counters: TolCounters::default(),
            resume_translated: false,
            spec_targets: std::collections::HashMap::new(),
            ev_storage: Vec::new(),
            dcache: interp::DecodeCache::new(),
            fastctx: darco_guest::uops::ExecCtx::new(),
            pass_deltas: Vec::new(),
            pass_nanos: Vec::new(),
            analysis_ns: 0,
            scratch: TranslateScratch::default(),
            pool,
            pending: std::collections::HashMap::new(),
            pool_counts: TranslationPoolStats::default(),
            block_memo: std::collections::HashMap::new(),
            memo_scratch: Vec::new(),
            memo_counts: EngineMemoStats::default(),
            cfg,
        };
        tol.store_cpu(&CpuState::at(entry));
        tol
    }

    /// Seeds the emulated guest state (e.g. initial stack pointer).
    pub fn set_state(&mut self, cpu: &CpuState) {
        self.guest_pc = cpu.eip;
        self.halted = cpu.halted;
        self.store_cpu(cpu);
    }

    /// Materializes the emulated guest state from the pinned host
    /// registers (the *Emulated x86 Register State* of the paper's
    /// Fig. 2), for the state checker.
    pub fn emulated_state(&self) -> CpuState {
        let mut cpu = CpuState::at(self.guest_pc);
        for (i, r) in Gpr::ALL.iter().enumerate() {
            cpu.set_gpr(*r, self.host.reg(ir::guest_gpr_reg(i)));
        }
        cpu.flags = Flags::from_word(self.host.reg(FLAGS_REG));
        for i in 0..8 {
            cpu.set_fpr(FpReg(i), self.host.freg(HFreg(i)));
        }
        cpu.halted = self.halted;
        cpu
    }

    fn store_cpu(&mut self, cpu: &CpuState) {
        for (i, r) in Gpr::ALL.iter().enumerate() {
            self.host.set_reg(ir::guest_gpr_reg(i), cpu.gpr(*r));
        }
        self.host.set_reg(FLAGS_REG, cpu.flags.to_word());
        for i in 0..8 {
            self.host.set_freg(HFreg(i), cpu.fpr(FpReg(i)));
        }
    }

    /// Engine counters so far.
    pub fn counters(&self) -> TolCounters {
        self.counters
    }

    /// Wall-clock nanoseconds spent in the analysis-driven passes
    /// (`deadflags` + `rangesimp`) so far. Deliberately not part of
    /// [`TolCounters`] or [`RunSummary`]: serialized reports must stay
    /// bit-identical across reruns.
    pub fn analysis_ns(&self) -> u64 {
        self.analysis_ns
    }

    /// Wall-clock nanoseconds per optimization pass, keyed like
    /// [`RunSummary::pass_deltas`]. Same determinism caveat as
    /// [`Tol::analysis_ns`].
    pub fn pass_nanos(&self) -> &[(String, u64)] {
        &self.pass_nanos
    }

    /// Whether the guest has halted.
    pub fn is_done(&self) -> bool {
        self.halted
    }

    /// Current guest program counter.
    pub fn guest_pc(&self) -> u32 {
        self.guest_pc
    }

    /// Builds the end-of-run summary.
    pub fn summary(&self) -> RunSummary {
        let s = self.cc.stats();
        RunSummary {
            counters: self.counters,
            static_dist: self.prof.static_distribution(),
            dyn_dist: self.prof.dyn_insts,
            installed: s.installed,
            flushes: s.flushes,
            chains: s.chains,
            ibtc_hits: self.ibtc.hits(),
            ibtc_misses: self.ibtc.misses(),
            emitted: self.em.emitted,
            cache: self.cc.health(),
            pass_deltas: self.pass_deltas.clone(),
        }
    }

    /// Advances the emulated guest by one dispatch unit, or up to
    /// `budget` guest instructions of chained translated execution.
    /// Events are delivered to `sink` in retire-order batches of at most
    /// [`TolConfig::event_batch`]; the buffer is always drained before
    /// this returns (a budget boundary is a flush boundary).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the guest jumps into undecodable
    /// bytes.
    pub fn step(
        &mut self,
        mem: &mut GuestMem,
        sink: &mut dyn HostEventSink,
        budget: u64,
    ) -> Result<StepOutcome, DecodeError> {
        let storage = std::mem::take(&mut self.ev_storage);
        let capacity = self.cfg.event_batch;
        let mut ev = EventBuffer::from_storage(storage, capacity, sink);
        let out = self.step_buffered(mem, &mut ev, budget);
        self.ev_storage = ev.into_storage();
        out
    }

    fn step_buffered(
        &mut self,
        mem: &mut GuestMem,
        ev: &mut EventBuffer<'_>,
        budget: u64,
    ) -> Result<StepOutcome, DecodeError> {
        if self.halted {
            return Ok(StepOutcome { guest_insts: 0, done: true, mode: Mode::Im });
        }
        let pc = self.guest_pc;
        if self.cc.lookup(pc).is_some() {
            ev.push(HostEvent::ModeEnter(ExecMode::Sbm));
            let n = self.run_translated(mem, ev, budget)?;
            return Ok(StepOutcome { guest_insts: n, done: self.halted, mode: Mode::Sbm });
        }

        // Miss: the dispatcher decides between interpretation and
        // translation (Fig. 3, left vs. middle path).
        let count = self.prof.bump_target(pc);
        let promote = count > self.cfg.im_bb_threshold;
        ev.push(HostEvent::ModeEnter(if promote { ExecMode::Bbm } else { ExecMode::Im }));
        self.em.dispatch(ev, if promote { Mode::Bbm } else { Mode::Im });
        self.em.map_lookup(ev, pc, false);

        if promote {
            let mut region = std::mem::take(&mut self.scratch.region);
            region.clear();
            if let Err(e) = decode_bb_into(mem, pc, &mut region) {
                self.scratch.region = region;
                return Err(e);
            }
            let installed = self.install_bb(pc, &region, mem, ev);
            self.scratch.region = region;
            if installed.is_none() {
                // The translation alone exceeds the whole cache: it can
                // never be installed, so this block stays interpreted.
                let n = self.interpret_bb(mem, ev)?;
                return Ok(StepOutcome { guest_insts: n, done: self.halted, mode: Mode::Im });
            }
            let n = self.run_translated(mem, ev, budget)?;
            Ok(StepOutcome { guest_insts: n, done: self.halted, mode: Mode::Bbm })
        } else {
            self.maybe_enqueue_bb(pc, count, mem);
            let n = self.interpret_bb(mem, ev)?;
            Ok(StepOutcome { guest_insts: n, done: self.halted, mode: Mode::Im })
        }
    }

    /// Runs the program to completion (or `max_guest_insts`), returning
    /// total guest instructions executed. One event buffer spans the
    /// whole run, so batches stay full across dispatch units.
    ///
    /// # Errors
    ///
    /// Propagates guest decode errors.
    pub fn run(
        &mut self,
        mem: &mut GuestMem,
        sink: &mut dyn HostEventSink,
        max_guest_insts: u64,
    ) -> Result<u64, DecodeError> {
        let storage = std::mem::take(&mut self.ev_storage);
        let capacity = self.cfg.event_batch;
        let mut ev = EventBuffer::from_storage(storage, capacity, sink);
        let mut total = 0;
        let mut fault = None;
        while !self.halted && total < max_guest_insts {
            match self.step_buffered(mem, &mut ev, max_guest_insts - total) {
                Ok(out) => total += out.guest_insts,
                Err(e) => {
                    fault = Some(e);
                    break;
                }
            }
        }
        self.ev_storage = ev.into_storage();
        match fault {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    fn interpret_bb(
        &mut self,
        mem: &mut GuestMem,
        ev: &mut EventBuffer<'_>,
    ) -> Result<u64, DecodeError> {
        let mut cpu = self.emulated_state();
        debug_assert!(
            !self.fastctx.lazy.is_pending(),
            "pending lazy flags across interpret_bb entries"
        );
        let mut n = 0u64;
        let fast = self.cfg.guest_fast_path;
        loop {
            let gpc = cpu.eip;
            self.prof.mark_static([gpc], StaticMode::Im);
            let r = if fast {
                interp::step_fast(&mut cpu, mem, &mut self.em, &mut self.fastctx, ev)
            } else if self.cfg.interp_decode_cache {
                interp::step_cached(&mut cpu, mem, &mut self.em, &mut self.dcache, ev)
            } else {
                interp::step(&mut cpu, mem, &mut self.em, ev)
            };
            let info = match r {
                Ok(info) => info,
                Err(e) => {
                    // The local `cpu` (which any pending lazy definition
                    // refers to) is discarded with the error.
                    self.fastctx.discard_pending();
                    return Err(e);
                }
            };
            n += 1;
            if info.inst.is_indirect() {
                self.counters.indirect_branches += 1;
            }
            if cpu.halted || info.inst.is_block_end() {
                break;
            }
        }
        // Materialize any pending flag definition before the state
        // becomes visible to `StepBoundary` consumers via `store_cpu`.
        self.fastctx.force_flags(&mut cpu);
        self.prof.count_dynamic(StaticMode::Im, n);
        self.counters.guest_insts += n;
        self.guest_pc = cpu.eip;
        self.halted = cpu.halted;
        self.store_cpu(&cpu);
        Ok(n)
    }

    /// Engagement counters of the guest-layer fast path (micro-op
    /// cache hits, lazy-flag elisions); zeros when
    /// [`TolConfig::guest_fast_path`] is off.
    pub fn fast_stats(&self) -> darco_guest::uops::FastStats {
        self.fastctx.stats
    }

    /// Lifecycle fallout of an install or SMC check: emits the
    /// `Unchain`/`Evict` events and their software-layer costs, and
    /// eagerly drops every engine-side reference (IBTC entries,
    /// speculation targets) naming the evicted blocks, so no stale
    /// handle can ever be dispatched through them.
    fn note_evictions(&mut self, evicted: &[Evicted], ev: &mut EventBuffer<'_>) {
        for e in evicted {
            for &site in &e.unchained {
                self.em.unchain(ev, site);
                ev.push(HostEvent::Unchain { site });
            }
            self.em.evict(ev, e.entry);
            ev.push(HostEvent::Evict { entry: e.entry, smc: e.smc });
            self.ibtc.invalidate(e.id);
            self.spec_targets.retain(|&(b, _), &mut (_, to)| b != e.id && to != e.id);
            if self.block_memo.remove(&e.id.idx).is_some() {
                self.memo_counts.invalidations += 1;
            }
        }
    }

    /// Translates and installs the basic block at `entry` (BBM).
    /// Returns `None` if the translation is larger than the whole cache
    /// (it is rejected, and the caller falls back to interpretation).
    fn install_bb(
        &mut self,
        entry: u32,
        region: &[RegionInst],
        mem: &GuestMem,
        ev: &mut EventBuffer<'_>,
    ) -> Option<BlockId> {
        // Join the in-flight background translation if a valid one
        // exists; otherwise compile synchronously. Both are the same
        // pure function of (region, cfg), so the installed code, the
        // simulated cost and every event are identical either way.
        let (compiled, templates) = match self.take_pooled(JobKind::Bb, entry, region, mem) {
            Some(JobOut::Bb { compiled, templates }) => (compiled, Some(templates)),
            _ => (compile_bb(region, &self.cfg, &mut self.scratch.ir), None),
        };
        if let Some(d) = &compiled.deadflags {
            self.counters.flags_killed += d.flags_killed;
            self.analysis_ns += d.nanos;
            crate::verify::merge_nanos(&mut self.pass_nanos, "deadflags", d.nanos);
            crate::verify::merge_delta(
                &mut self.pass_deltas,
                &crate::verify::PassDelta {
                    pass: "deadflags".to_string(),
                    runs: 1,
                    insts_removed: d.insts_removed,
                    flags_killed: d.flags_killed,
                    branches_folded: 0,
                },
            );
        }
        let host_len = compiled.insts.len() as u32;
        self.em.bb_translate(ev, entry, region, compiled.insts.len());
        self.prof.mark_static(region.iter().map(|r| r.pc), StaticMode::Bbm);
        let ins = self
            .cc
            .install_prepared(
                entry,
                Prepared {
                    insts: compiled.insts,
                    kind: BlockKind::Bb,
                    body_len: compiled.body_len,
                    stub_guest_counts: compiled.stub_guest_counts,
                    guest_len: compiled.guest_len,
                    guest_pcs: region.iter().map(|r| r.pc).collect(),
                    templates,
                },
                mem,
            )
            .ok()?;
        if ins.flushed {
            self.ibtc.clear();
            self.spec_targets.clear();
            self.memo_counts.invalidations += self.block_memo.len() as u64;
            self.block_memo.clear();
        }
        self.note_evictions(&ins.evicted, ev);
        ev.push(HostEvent::Translated { entry, kind: TranslationKind::Bb, host_len });
        ev.push(HostEvent::CacheInsert { entry, flushed: ins.flushed });
        Some(ins.id)
    }

    /// Forms, optimizes and installs a superblock rooted at `entry`.
    /// `Ok(None)` means the superblock was larger than the whole cache
    /// and was discarded (the BBM block keeps running).
    fn install_sb(
        &mut self,
        entry: u32,
        mem: &GuestMem,
        ev: &mut EventBuffer<'_>,
    ) -> Result<Option<(BlockId, bool)>, DecodeError> {
        let mut region = std::mem::take(&mut self.scratch.region);
        let mut visited = std::mem::take(&mut self.scratch.visited);
        region.clear();
        visited.clear();
        let formed = form_region_into(mem, entry, &self.prof, &self.cfg, &mut region, &mut visited);
        self.scratch.visited = visited;
        let bbs = match formed {
            Ok(bbs) => bbs,
            Err(e) => {
                self.scratch.region = region;
                return Err(e);
            }
        };
        // Join the in-flight background optimization if a valid one
        // exists; otherwise compile synchronously (same pure function of
        // (region, cfg) — see `install_bb`).
        let (compiled, templates) = match self.take_pooled(JobKind::Sb, entry, &region, mem) {
            Some(JobOut::Sb { compiled, templates }) => (compiled, Some(templates)),
            _ => (compile_sb(&region, &self.cfg, &mut self.scratch.ir), None),
        };
        match &compiled.outcome {
            SbOutcome::Optimized(stats) => {
                self.counters.verified_blocks += stats.blocks_verified;
                self.counters.tv_differential += stats.tv_differential;
                for d in &stats.pass_deltas {
                    self.counters.flags_killed += d.flags_killed;
                    self.counters.branches_folded += d.branches_folded;
                    crate::verify::merge_delta(&mut self.pass_deltas, d);
                }
                for (pass, ns) in &stats.pass_nanos {
                    if pass == "deadflags" || pass == "rangesimp" {
                        self.analysis_ns += ns;
                    }
                    crate::verify::merge_nanos(&mut self.pass_nanos, pass, *ns);
                }
            }
            SbOutcome::OutOfRegisters => self.counters.opt_bailouts += 1,
            SbOutcome::Miscompile => self.counters.verify_failures += 1,
        }
        let host_len = compiled.insts.len() as u32;
        self.em.sb_optimize(ev, bbs as usize, compiled.ir_len, compiled.insts.len());
        self.counters.sbm_invocations += 1;
        self.prof.mark_static(region.iter().map(|r| r.pc), StaticMode::Sbm);
        let res = self.cc.install_prepared(
            entry,
            Prepared {
                insts: compiled.insts,
                kind: BlockKind::Sb,
                body_len: compiled.body_len,
                stub_guest_counts: compiled.stub_guest_counts,
                guest_len: compiled.guest_len,
                guest_pcs: region.iter().map(|r| r.pc).collect(),
                templates,
            },
            mem,
        );
        self.scratch.region = region;
        let Ok(ins) = res else {
            return Ok(None);
        };
        if ins.flushed {
            self.ibtc.clear();
            self.spec_targets.clear();
            self.memo_counts.invalidations += self.block_memo.len() as u64;
            self.block_memo.clear();
        }
        self.note_evictions(&ins.evicted, ev);
        ev.push(HostEvent::Translated { entry, kind: TranslationKind::Sb, host_len });
        ev.push(HostEvent::CacheInsert { entry, flushed: ins.flushed });
        Ok(Some((ins.id, ins.flushed)))
    }

    /// Lead (in block executions) between the SBM background-enqueue
    /// trigger and the promotion threshold: how much emulation the
    /// superblock compile can overlap with. Any constant is
    /// deterministic (the join validates the snapshot against
    /// install-time state); a small one keeps the profile snapshot close
    /// to what the install point sees, so jobs are rarely discarded as
    /// stale.
    const SB_ENQUEUE_LEAD: u64 = 8;

    /// Background-translation trigger for BBM: the last interpreted
    /// visit before promotion (`count == IM/BBth`; the next visit
    /// crosses the strict `count > IM/BBth` check) snapshots the block
    /// and hands the compile work to the pool. The trigger is a pure
    /// function of the deterministic profile counter, and the join in
    /// [`Tol::install_bb`] validates the snapshot, so emitted streams
    /// never depend on pool timing. A block re-translated after an
    /// eviction passes this count only once, so re-translations stay
    /// synchronous — rare by construction.
    fn maybe_enqueue_bb(&mut self, pc: u32, count: u32, mem: &GuestMem) {
        if self.pool.is_none()
            || count != self.cfg.im_bb_threshold
            || self.pending.contains_key(&(JobKind::Bb, pc))
        {
            return;
        }
        // A decode fault stays synchronous: the promote path surfaces
        // the same fault to the caller.
        let Ok(region) = decode_bb(mem, pc) else { return };
        self.enqueue(JobKind::Bb, pc, region, mem);
    }

    /// Background-translation trigger for SBM, [`Tol::SB_ENQUEUE_LEAD`]
    /// executions before the promotion check in `run_translated` (which
    /// fires at `BB/SBth`, or at 4x that for blocks already covered by a
    /// superblock). A covered block's trigger can fire twice (once per
    /// threshold); the second fire drops the first snapshot, whose
    /// profile is out of date.
    fn maybe_enqueue_sb(&mut self, entry: u32, exec_count: u64, mem: &GuestMem) {
        if self.pool.is_none() {
            return;
        }
        let th = self.cfg.bb_sb_threshold as u64;
        let covered = self.prof.static_mode(entry) == Some(StaticMode::Sbm);
        let fire_at = if covered {
            (4 * th).saturating_sub(Self::SB_ENQUEUE_LEAD).max(1)
        } else {
            th.saturating_sub(Self::SB_ENQUEUE_LEAD).max(1)
        };
        if exec_count != fire_at {
            return;
        }
        if self.pending.remove(&(JobKind::Sb, entry)).is_some() {
            self.pool_counts.discarded_stale += 1;
        }
        let Ok((region, _bbs)) = form_region(mem, entry, &self.prof, &self.cfg) else { return };
        self.enqueue(JobKind::Sb, entry, region, mem);
    }

    /// Stamps the snapshot's code pages and submits the job.
    fn enqueue(&mut self, kind: JobKind, entry: u32, region: Vec<RegionInst>, mem: &GuestMem) {
        let Some(pool) = self.pool.as_mut() else { return };
        let (pages, gen) = stamp_region(mem, &region);
        let rx = pool.submit(kind, region.clone());
        self.pending.insert((kind, entry), PendingJob { rx, region, pages, gen });
        self.pool_counts.jobs_enqueued += 1;
        self.pool_counts.max_in_flight =
            self.pool_counts.max_in_flight.max(self.pending.len() as u64);
    }

    /// Removes and joins the pending background job for `(kind, entry)`,
    /// validating it against the *install-time* inputs: the covered code
    /// pages must be unwritten since enqueue (the pending-job arm of SMC
    /// invalidation) and the snapshot region must equal the freshly
    /// formed one. Any mismatch discards the job and returns `None`; the
    /// caller then recompiles synchronously from the fresh inputs — so
    /// the installed artifact is always a pure function of install-time
    /// state, independent of pool timing.
    fn take_pooled(
        &mut self,
        kind: JobKind,
        entry: u32,
        fresh: &[RegionInst],
        mem: &GuestMem,
    ) -> Option<JobOut> {
        let job = self.pending.remove(&(kind, entry))?;
        if pages_dirty(mem, &job.pages, job.gen) {
            self.pool_counts.discarded_smc += 1;
            return None;
        }
        if job.region.as_slice() != fresh {
            self.pool_counts.discarded_stale += 1;
            return None;
        }
        let out = match job.rx.try_recv() {
            Ok(out) => {
                self.pool_counts.ready_at_install += 1;
                Some(out)
            }
            Err(std::sync::mpsc::TryRecvError::Empty) => {
                self.pool_counts.stalls_at_install += 1;
                job.rx.recv().ok()
            }
            // Every worker died (a compile panicked): fall back to the
            // synchronous path for this and all later installs.
            Err(std::sync::mpsc::TryRecvError::Disconnected) => None,
        };
        if out.is_some() {
            self.pool_counts.installed_from_pool += 1;
        }
        out
    }

    /// Background-translation pool statistics (wall-clock side only).
    /// Deliberately not part of [`RunSummary`] or any serialized report:
    /// those stay byte-identical across `translate_workers` settings.
    pub fn pool_stats(&self) -> TranslationPoolStats {
        let mut s = self.pool_counts;
        if let Some(p) = &self.pool {
            s.workers = p.workers();
            s.jobs_completed = p.completed();
            s.worker_busy_ns = p.busy_ns();
        }
        s
    }

    /// Engine-side macro-event memo statistics (simulator-speed side
    /// only). Deliberately not part of [`RunSummary`] or any serialized
    /// report: those stay byte-identical across
    /// [`TolConfig::block_memo`] settings.
    pub fn memo_stats(&self) -> EngineMemoStats {
        self.memo_counts
    }

    /// Follows promotion redirects (the patched entry jump of a promoted
    /// BBM block), charging one application-side jump per hop. A stale
    /// redirect target (the replacing superblock was itself evicted) is
    /// cleared and the original block keeps running.
    fn resolve_redirects(&mut self, mut bid: BlockId, ev: &mut EventBuffer<'_>) -> BlockId {
        while let Some(r) = self.cc.get(bid).and_then(|b| b.redirect) {
            let Some(target) = self.cc.get(r).map(|b| b.host_base) else {
                if let Some(b) = self.cc.get_mut(bid) {
                    b.redirect = None;
                }
                break;
            };
            let pc = self.cc.get(bid).expect("redirect read from live block").host_base;
            ev.retire(
                DynInst::plain(pc, darco_host::ExecClass::Jump, darco_host::Component::AppCode)
                    .with_branch(BranchKind::UncondDirect, target, true),
            );
            self.em.emitted[0] += 1;
            bid = r;
        }
        bid
    }

    /// Executes chained translations starting at the current guest pc
    /// (which must be translated), until control returns to the software
    /// layer, the program halts, or the budget expires.
    fn run_translated(
        &mut self,
        mem: &mut GuestMem,
        ev: &mut EventBuffer<'_>,
        budget: u64,
    ) -> Result<u64, DecodeError> {
        if !self.resume_translated {
            self.em.transition(ev); // context restore, TOL -> app
        }
        self.resume_translated = false;
        let mut executed = 0u64;
        let mut bid = self.cc.lookup(self.guest_pc).expect("caller checked lookup");

        loop {
            // Dispatch guard: every hop (entry, chain link, IBTC hit,
            // speculation, redirect) lands here before executing, so a
            // handle gone stale since it was issued — or a translation
            // invalidated by a guest write to its code pages — returns
            // control to the dispatcher instead of running dead code.
            if self.cc.get(bid).is_none() {
                self.counters.tol_entries += 1;
                self.em.transition(ev);
                return Ok(executed);
            }
            if self.cc.smc_stale(bid, mem) {
                if let Some(e) = self.cc.evict_block(bid, EvictCause::Smc) {
                    self.note_evictions(&[e], ev);
                }
                self.counters.tol_entries += 1;
                self.em.transition(ev);
                return Ok(executed);
            }

            let (exit, exit_idx, guest_n, cond_taken) = self.exec_block_memo(bid, mem, ev);
            executed += guest_n;
            self.counters.guest_insts += guest_n;

            // Per-execution bookkeeping of BBM blocks: instrumentation
            // cost, execution counting, edge profiling.
            let (kind, entry, host_base, exec_count, promoted) = {
                let b = self.cc.block_mut(bid).expect("guarded live at dispatch");
                b.exec_count += 1;
                (b.kind, b.guest_entry, b.host_base, b.exec_count, b.promoted)
            };
            let mode = if kind == BlockKind::Bb { StaticMode::Bbm } else { StaticMode::Sbm };
            self.prof.count_dynamic(mode, guest_n);
            if kind == BlockKind::Bb {
                self.em.bbm_instrumentation(ev, host_base + 4 * exit_idx as u64, entry);
                if let Some(taken) = cond_taken {
                    self.prof.record_edge(entry, taken);
                }
                if !promoted {
                    self.maybe_enqueue_sb(entry, exec_count, mem);
                }
            }

            // Decide where control goes next (possibly through the
            // software layer), before any promotion can invalidate ids.
            let mut next: Option<BlockId> = match exit {
                Exit::Halt => {
                    self.halted = true;
                    self.em.transition(ev);
                    return Ok(executed);
                }
                Exit::Direct { guest_target, link } => {
                    self.guest_pc = guest_target;
                    // Eager unchaining keeps links live; the filter is a
                    // defensive backstop (a stale link re-dispatches).
                    if let Some(to) = link.filter(|&to| self.cc.get(to).is_some()) {
                        Some(to)
                    } else if let Some(to) = self.cc.lookup(guest_target) {
                        // One trip into the layer either way: to patch
                        // the exit (chaining) or just to re-dispatch.
                        self.counters.tol_entries += 1;
                        self.em.transition(ev);
                        if self.cfg.chaining && self.cc.chain(bid, exit_idx, to).is_ok() {
                            let site = host_base + 4 * exit_idx as u64;
                            self.em.chain(ev, site);
                            ev.push(HostEvent::Chained { site });
                        } else {
                            self.em.dispatch(ev, mode);
                            self.em.map_lookup(ev, guest_target, true);
                        }
                        self.em.transition(ev);
                        Some(to)
                    } else {
                        // Unknown target: back to the dispatcher.
                        self.counters.tol_entries += 1;
                        self.em.transition(ev);
                        return Ok(executed);
                    }
                }
                Exit::Indirect { reg } => {
                    debug_assert_eq!(reg, EXIT_TARGET_REG);
                    let target = self.host.reg(reg);
                    self.guest_pc = target;
                    self.counters.indirect_branches += 1;
                    let site_pc = host_base + 4 * exit_idx as u64;
                    // Optional speculative resolution (Sec. III-E): the
                    // exit inlines a compare against its last observed
                    // target and jumps straight to the cached translation
                    // on a match, skipping even the IBTC probe.
                    let spec_key = (bid, exit_idx as u32);
                    let mut speculated = None;
                    if self.cfg.speculate_indirect {
                        if let Some(&(t, to)) = self.spec_targets.get(&spec_key) {
                            let hit = t == target;
                            // Entries are purged on eviction, so `to` is
                            // live; the fallback is defensive only.
                            let to_base = self.cc.get(to).map_or(TOL_CODE_BASE, |b| b.host_base);
                            self.em.spec_check(ev, site_pc, hit, to_base);
                            if hit {
                                self.counters.spec_hits += 1;
                                speculated = Some(to);
                            } else {
                                self.counters.spec_misses += 1;
                            }
                        }
                    }
                    if let Some(to) = speculated {
                        Some(to)
                    } else {
                        let slot = self.ibtc.slot(target);
                        let resolved = match self.ibtc.lookup(target) {
                            Some(to) => {
                                // Eager invalidation keeps IBTC entries
                                // live; defensive fallback as above.
                                let to_base =
                                    self.cc.get(to).map_or(TOL_CODE_BASE, |b| b.host_base);
                                ev.push(HostEvent::IbtcResolve { target, hit: true });
                                self.em.ibtc_probe_inline(ev, site_pc, slot, true, to_base);
                                Some(to)
                            }
                            None => {
                                ev.push(HostEvent::IbtcResolve { target, hit: false });
                                self.em.ibtc_probe_inline(ev, site_pc, slot, false, 0);
                                self.counters.tol_entries += 1;
                                self.em.transition(ev);
                                let found = self.cc.lookup(target);
                                self.em.map_lookup(ev, target, found.is_some());
                                match found {
                                    Some(to) => {
                                        self.ibtc.update(target, to);
                                        self.em.ibtc_update(ev, slot);
                                        self.em.transition(ev);
                                        Some(to)
                                    }
                                    None => return Ok(executed),
                                }
                            }
                        };
                        // Remember this site's target for next time.
                        if self.cfg.speculate_indirect {
                            if let Some(to) = resolved {
                                self.spec_targets.insert(spec_key, (target, to));
                            }
                        }
                        resolved
                    }
                }
            };

            // SBM promotion of the block just executed (Fig. 3, right
            // path): install the superblock and patch the old entry.
            if kind == BlockKind::Bb
                && exec_count >= self.cfg.bb_sb_threshold as u64
                && !promoted
                // Blocks already swallowed into an existing superblock
                // (reached through its side exits) are not re-optimized
                // at the normal threshold — that would spawn an avalanche
                // of overlapping superblocks. But a covered block that
                // *keeps* being entered at its own address (a loop head
                // reached by a back edge, while the covering superblock
                // was rooted at the function entry) earns its own
                // superblock at 4x the threshold.
                && (self.prof.static_mode(entry) != Some(StaticMode::Sbm)
                    || exec_count >= 4 * self.cfg.bb_sb_threshold as u64)
            {
                self.cc.block_mut(bid).expect("guarded live at dispatch").promoted = true;
                self.counters.tol_entries += 1;
                self.em.transition(ev);
                match self.install_sb(entry, mem, ev)? {
                    Some((sb, true)) => {
                        // Every id (including `next` and chain links) is
                        // stale; re-enter through the dispatcher.
                        self.em.transition(ev);
                        let _ = sb;
                        next = self.cc.lookup(self.guest_pc);
                        if next.is_none() {
                            return Ok(executed);
                        }
                    }
                    Some((sb, false)) => {
                        // Under fifo the same-entry install evicted the
                        // BBM block already (bid is stale and `next` may
                        // be too — the dispatch guard re-routes); under
                        // flush it stays as dead code behind a redirect.
                        if let Some(b) = self.cc.get_mut(bid) {
                            b.redirect = Some(sb);
                        }
                        self.em.transition(ev);
                    }
                    None => {
                        // Superblock larger than the cache: discarded.
                        // The (promoted) BBM block just keeps running.
                        self.em.transition(ev);
                    }
                }
            }

            bid = self.resolve_redirects(next.expect("next block decided"), ev);

            if executed >= budget {
                // Budget pause (simulation artifact): no transition cost.
                self.resume_translated = true;
                return Ok(executed);
            }
        }
    }

    /// Executions before a translated block is considered steady-state
    /// and its retirement collapses into one
    /// [`HostEvent::BlockRetire`] macro-event per execution (gated by
    /// [`TolConfig::block_memo`]). Cold blocks keep emitting
    /// per-instruction events so short-lived translations never pay the
    /// collection overhead.
    pub const MEMO_STEADY: u64 = 8;

    /// Consecutive executions with a changed retirement stream after
    /// which macro-event collection for the block is abandoned (it
    /// reverts to per-instruction events). Matching executions reset
    /// the count, so an occasional divergent iteration — a loop's final
    /// trip, a rare side exit — never abandons a block.
    const MEMO_ABANDON: u32 = 4;

    /// Macro-event dispatch: cold blocks (and memo-disabled, stale or
    /// abandoned ones) execute straight into the event buffer; a
    /// steady-state block collects its retired stream into the scratch
    /// buffer, compares it with the previous execution's, and emits one
    /// [`HostEvent::BlockRetire`]. On a match the *stored* `Arc` is
    /// re-emitted, so downstream consumers can prove stream identity by
    /// pointer comparison; on a mismatch a fresh `Arc` is minted and
    /// stored (consumers transparently re-record). Either way the
    /// expanded stream is bit-identical to the per-instruction path.
    fn exec_block_memo(
        &mut self,
        bid: BlockId,
        mem: &mut GuestMem,
        ev: &mut EventBuffer<'_>,
    ) -> (Exit, usize, u64, Option<bool>) {
        // `exec_count` holds *prior* executions: `run_translated`
        // increments it after this returns.
        let exec_count = self.cc.block(bid).expect("guarded live at dispatch").exec_count;
        if !self.cfg.block_memo || exec_count < Self::MEMO_STEADY {
            return self.exec_block(bid, mem, &mut BlockOut::Events(ev));
        }
        match self.block_memo.get(&bid.idx) {
            // A reused slot index under a new generation is a different
            // translation; drop the stale memo and start over.
            Some(slot) if slot.gen != bid.gen => {
                self.block_memo.remove(&bid.idx);
                self.memo_counts.invalidations += 1;
            }
            Some(slot) if slot.fails >= Self::MEMO_ABANDON => {
                return self.exec_block(bid, mem, &mut BlockOut::Events(ev));
            }
            _ => {}
        }
        let mut scratch = std::mem::take(&mut self.memo_scratch);
        scratch.clear();
        let ret = self.exec_block(bid, mem, &mut BlockOut::Scratch(&mut scratch));
        let slot = self.block_memo.entry(bid.idx).or_insert(BlockMemoSlot {
            gen: bid.gen,
            stream: None,
            iterations: 0,
            fails: 0,
        });
        self.memo_counts.macro_events += 1;
        self.memo_counts.insts_suppressed += scratch.len() as u64;
        let stream = match &slot.stream {
            Some(s) if **s == *scratch => {
                slot.fails = 0;
                slot.iterations += 1;
                Arc::clone(s)
            }
            prior => {
                if prior.is_some() {
                    slot.fails += 1;
                    if slot.fails == Self::MEMO_ABANDON {
                        self.memo_counts.abandoned += 1;
                    }
                }
                let fresh: Arc<[DynInst]> = scratch.as_slice().into();
                slot.stream = Some(Arc::clone(&fresh));
                slot.iterations = 1;
                self.memo_counts.records += 1;
                fresh
            }
        };
        ev.push(HostEvent::BlockRetire { block: bid, iteration: slot.iterations, insts: stream });
        self.memo_scratch = scratch;
        ret
    }

    /// Executes one translated block functionally, emitting its dynamic
    /// host instructions. Returns the exit, the host index of the exit
    /// instruction, guest instructions retired, and — when the block ends
    /// in a conditional branch — whether it was taken.
    ///
    /// Dispatches to the template fast path or to the straight
    /// re-derivation oracle per [`TolConfig::retire_templates`]; both
    /// produce bit-identical retirement streams (asserted by the
    /// template-equivalence tests).
    fn exec_block(
        &mut self,
        bid: BlockId,
        mem: &mut GuestMem,
        out: &mut BlockOut<'_, '_>,
    ) -> (Exit, usize, u64, Option<bool>) {
        if self.cfg.retire_templates {
            self.exec_block_templates(bid, mem, out)
        } else {
            self.exec_block_rederive(bid, mem, out)
        }
    }

    /// Template fast path: execute, copy the prebuilt record, patch only
    /// the dynamic fields, retire. No per-retire metadata derivation and
    /// no match over [`HInst`].
    fn exec_block_templates(
        &mut self,
        bid: BlockId,
        mem: &mut GuestMem,
        out: &mut BlockOut<'_, '_>,
    ) -> (Exit, usize, u64, Option<bool>) {
        let block = self.cc.block(bid).expect("guarded live at dispatch");
        let mut idx = 0usize;
        let mut app_insts = 0u64;
        loop {
            let inst = &block.insts[idx];
            let tpl = &block.templates[idx];
            let mut d = tpl.inst;

            // The effective address must be read before execution: the
            // instruction may overwrite its own base register.
            if let RetireDyn::Mem { base, off } = tpl.dyn_kind {
                let addr = guest_to_host(self.host.reg(base).wrapping_add(off as u32));
                if let Some(m) = d.mem.as_mut() {
                    m.addr = addr;
                }
            }

            let outcome = exec_inst(&mut self.host, inst, mem);

            match tpl.dyn_kind {
                RetireDyn::CondBranch => {
                    if let Some(b) = d.branch.as_mut() {
                        b.2 = matches!(outcome, Outcome::Taken(_));
                    }
                }
                RetireDyn::DirectExit => {
                    if let Outcome::Exited(Exit::Direct { link, .. }) = outcome {
                        // Chained exits jump block-to-block; unchained
                        // ones jump into the dispatcher. The link is
                        // patched after install (chaining) and unpatched
                        // on eviction, so it must be resolved here, not
                        // baked into the template — and a stale handle
                        // falls back to the software-layer exit.
                        let target = link
                            .and_then(|to| self.cc.get(to))
                            .map_or(TOL_CODE_BASE, |b| b.host_base);
                        d = d.with_branch(BranchKind::UncondDirect, target, true);
                    }
                }
                RetireDyn::Fixed | RetireDyn::Mem { .. } => {}
            }
            app_insts += 1;
            out.retire(d);

            match outcome {
                Outcome::Next => idx += 1,
                Outcome::Taken(t) => idx = t as usize,
                Outcome::Exited(e) => {
                    let (guest_n, cond_taken) = exit_info(block, idx);
                    self.em.emitted[0] += app_insts; // AppCode counter
                    return (e, idx, guest_n, cond_taken);
                }
            }
        }
    }

    /// The re-derivation oracle: builds every retirement record from the
    /// instruction's own metadata, exactly as before templates existed.
    /// Kept reachable (`retire_templates: false`) so tests and benches
    /// can prove the fast path emits the same stream.
    fn exec_block_rederive(
        &mut self,
        bid: BlockId,
        mem: &mut GuestMem,
        out: &mut BlockOut<'_, '_>,
    ) -> (Exit, usize, u64, Option<bool>) {
        let block = self.cc.block(bid).expect("guarded live at dispatch");
        let host_base = block.host_base;
        let mut idx = 0usize;
        let mut app_insts = 0u64;
        loop {
            let inst = &block.insts[idx];
            let pc = host_base + 4 * idx as u64;

            // Pre-compute the memory event (operand registers may change).
            let mem_event = match *inst {
                HInst::Prefetch { base, off } => {
                    Some((guest_to_host(self.host.reg(base).wrapping_add(off as u32)), 64, false))
                }
                HInst::Ld { base, off, width, .. } => Some((
                    guest_to_host(self.host.reg(base).wrapping_add(off as u32)),
                    width.bytes(),
                    false,
                )),
                HInst::St { base, off, width, .. } => Some((
                    guest_to_host(self.host.reg(base).wrapping_add(off as u32)),
                    width.bytes(),
                    true,
                )),
                HInst::FLd { base, off, .. } => {
                    Some((guest_to_host(self.host.reg(base).wrapping_add(off as u32)), 8, false))
                }
                HInst::FSt { base, off, .. } => {
                    Some((guest_to_host(self.host.reg(base).wrapping_add(off as u32)), 8, true))
                }
                _ => None,
            };

            let outcome = exec_inst(&mut self.host, inst, mem);

            // Build the DynInst record.
            let mut d = DynInst::plain(pc, inst.class(), darco_host::Component::AppCode);
            if let Some((addr, size, is_store)) = mem_event {
                if matches!(inst, HInst::Prefetch { .. }) {
                    d = d.with_prefetch(addr);
                } else {
                    d = d.with_mem(addr, size, is_store);
                }
            }
            if let Some(r) = inst.dst() {
                d.dst = int_reg(r.0);
            } else if let Some(f) = inst.fdst() {
                d.dst = fp_reg(f.0);
            }
            let mut srcs = [NO_REG; 2];
            let mut si = 0;
            for s in inst.srcs().into_iter().flatten() {
                if si < 2 {
                    srcs[si] = int_reg(s.0);
                    si += 1;
                }
            }
            for s in inst.fsrcs().into_iter().flatten() {
                if si < 2 {
                    srcs[si] = fp_reg(s.0);
                    si += 1;
                }
            }
            d.srcs = srcs;
            d.recompute_ops();
            match (*inst, outcome) {
                (HInst::Br { target, .. }, out) | (HInst::BrFlags { target, .. }, out) => {
                    let taken = matches!(out, Outcome::Taken(_));
                    d = d.with_branch(BranchKind::CondDirect, host_base + 4 * target as u64, taken);
                }
                (HInst::Jump { target }, _) => {
                    d = d.with_branch(
                        BranchKind::UncondDirect,
                        host_base + 4 * target as u64,
                        true,
                    );
                }
                (HInst::Exit(Exit::Direct { link, .. }), _) => {
                    // Chained exits jump block-to-block; unchained ones
                    // (and stale links) jump into the dispatcher.
                    let t =
                        link.and_then(|to| self.cc.get(to)).map_or(TOL_CODE_BASE, |b| b.host_base);
                    d = d.with_branch(BranchKind::UncondDirect, t, true);
                }
                _ => {}
            }
            app_insts += 1;
            out.retire(d);

            match outcome {
                Outcome::Next => idx += 1,
                Outcome::Taken(t) => idx = t as usize,
                Outcome::Exited(e) => {
                    let (guest_n, cond_taken) = exit_info(block, idx);
                    self.em.emitted[0] += app_insts; // AppCode counter
                    return (e, idx, guest_n, cond_taken);
                }
            }
        }
    }
}

/// Guest instructions retired and — for a BBM block whose last guest
/// instruction is a conditional branch — the edge direction, given the
/// host index of the exit taken: leaving via a stub means the branch was
/// taken, via fall-through means not taken.
fn exit_info(block: &TranslatedBlock, idx: usize) -> (u64, Option<bool>) {
    let body_len = block.body_len as usize;
    let guest_n = if idx == body_len {
        block.guest_len as u64
    } else {
        block.stub_guest_counts[idx - body_len - 1] as u64
    };
    let cond_taken = if block.kind == BlockKind::Bb && !block.stub_guest_counts.is_empty() {
        Some(idx != body_len)
    } else {
        None
    };
    (guest_n, cond_taken)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codecache::CachePolicy;
    use darco_guest::asm::Asm;
    use darco_guest::{AluOp, Cond, Inst};

    /// A counting loop plus a function call per iteration.
    fn loop_program(iters: i32) -> (GuestMem, u32) {
        let mut a = Asm::new(0x1000);
        let top = a.fresh_label();
        let func = a.fresh_label();
        let start = a.fresh_label();
        a.push_jmp(start);
        a.bind(func);
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Ebx, imm: 3 });
        a.push(Inst::Ret);
        a.bind(start);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 0 });
        a.push(Inst::MovRI { dst: Gpr::Ebx, imm: 0 });
        a.bind(top);
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
        a.push_call(func);
        a.push(Inst::CmpRI { a: Gpr::Eax, imm: iters });
        a.push_jcc(Cond::Ne, top);
        a.push(Inst::Halt);
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        (mem, p.base)
    }

    fn run_tol(mem: &mut GuestMem, entry: u32, cfg: TolConfig) -> (Tol, u64) {
        let mut tol = Tol::new(cfg, entry);
        let mut cpu = CpuState::at(entry);
        cpu.set_gpr(Gpr::Esp, 0x10_0000);
        tol.set_state(&cpu);
        let mut count = 0u64;
        let mut sink = darco_host::RetireSink(|_: &DynInst| count += 1);
        tol.run(mem, &mut sink, 50_000_000).unwrap();
        (tol, count)
    }

    /// Runs the same program on the authoritative emulator.
    fn run_reference(mem: &mut GuestMem, entry: u32) -> (CpuState, u64) {
        let mut cpu = CpuState::at(entry);
        cpu.set_gpr(Gpr::Esp, 0x10_0000);
        let mut n = 0u64;
        while !cpu.halted {
            darco_guest::exec::step(&mut cpu, mem).unwrap();
            n += 1;
        }
        (cpu, n)
    }

    #[test]
    fn emulation_is_architecturally_exact() {
        let (mem0, entry) = loop_program(2_000);
        let mut mem_ref = mem0.clone();
        let (ref_cpu, ref_n) = run_reference(&mut mem_ref, entry);

        let mut mem = mem0.clone();
        let (tol, _) = run_tol(&mut mem, entry, TolConfig::default());
        let emu = tol.emulated_state();
        assert!(ref_cpu.arch_eq(&emu), "state diverged:\nref: {ref_cpu}\nemu: {emu}");
        assert_eq!(tol.counters().guest_insts, ref_n);
    }

    #[test]
    fn modes_progress_im_bbm_sbm() {
        let (mut mem, entry) = loop_program(30_000);
        let (tol, _) = run_tol(&mut mem, entry, TolConfig::default());
        let s = tol.summary();
        assert!(s.dyn_dist[0] > 0, "some interpretation");
        assert!(s.dyn_dist[1] > 0, "some BBM execution");
        assert!(s.dyn_dist[2] > 0, "SBM dominates eventually: {:?}", s.dyn_dist);
        assert!(s.counters.sbm_invocations >= 1);
        // With a 10K threshold and 30K iterations, the overwhelming share
        // of dynamic instructions comes from SBM (paper Fig. 5b shape).
        let total: u64 = s.dyn_dist.iter().sum();
        assert!(s.dyn_dist[2] as f64 / total as f64 > 0.5, "SBM share too low: {:?}", s.dyn_dist);
    }

    #[test]
    fn low_threshold_skips_interpretation_quickly() {
        let (mut mem, entry) = loop_program(1_000);
        let cfg = TolConfig { im_bb_threshold: 1, ..TolConfig::default() };
        let (tol, _) = run_tol(&mut mem, entry, cfg);
        let s = tol.summary();
        assert!(s.dyn_dist[0] < 20, "threshold 1 interprets each target once");
    }

    #[test]
    fn returns_go_through_the_ibtc() {
        let (mut mem, entry) = loop_program(5_000);
        let (tol, _) = run_tol(&mut mem, entry, TolConfig::default());
        let s = tol.summary();
        assert!(s.counters.indirect_branches >= 4_000, "one return per iteration");
        assert!(s.ibtc_hits > s.ibtc_misses, "stable return target must hit");
    }

    #[test]
    fn chaining_collapses_tol_entries() {
        let (mut mem_a, entry) = loop_program(20_000);
        let (with_chain, _) = run_tol(&mut mem_a, entry, TolConfig::default());
        let (mut mem_b, _) = loop_program(20_000);
        let cfg = TolConfig { chaining: false, ..TolConfig::default() };
        let (without, _) = run_tol(&mut mem_b, entry, cfg);
        assert!(
            with_chain.counters().tol_entries * 10 < without.counters().tol_entries,
            "chaining must collapse dispatcher entries: {} vs {}",
            with_chain.counters().tol_entries,
            without.counters().tol_entries
        );
    }

    #[test]
    fn step_budget_pauses_and_resumes_consistently() {
        let (mem0, entry) = loop_program(3_000);
        let mut mem_ref = mem0.clone();
        let (ref_cpu, _) = run_reference(&mut mem_ref, entry);

        let mut mem = mem0.clone();
        let mut tol = Tol::new(TolConfig::default(), entry);
        let mut cpu = CpuState::at(entry);
        cpu.set_gpr(Gpr::Esp, 0x10_0000);
        tol.set_state(&cpu);
        let mut sink = darco_host::NullSink;
        // Tiny budgets force many pauses inside translated execution.
        while !tol.is_done() {
            tol.step(&mut mem, &mut sink, 7).unwrap();
        }
        assert!(ref_cpu.arch_eq(&tol.emulated_state()));
    }

    #[test]
    fn speculative_indirect_resolution_is_exact_and_hits() {
        let (mem0, entry) = loop_program(5_000);
        let mut mem_ref = mem0.clone();
        let (ref_cpu, _) = run_reference(&mut mem_ref, entry);

        let mut mem = mem0.clone();
        let cfg = TolConfig { speculate_indirect: true, ..TolConfig::default() };
        let (tol, _) = run_tol(&mut mem, entry, cfg);
        assert!(ref_cpu.arch_eq(&tol.emulated_state()), "speculation must be transparent");
        let c = tol.counters();
        assert!(c.spec_hits > 0, "the stable return target must speculate successfully");
        assert!(
            c.spec_hits > 10 * c.spec_misses,
            "single-target site: hits {} misses {}",
            c.spec_hits,
            c.spec_misses
        );
    }

    #[test]
    fn software_prefetching_is_transparent_and_emits_prefetches() {
        // A memory-streaming loop: load, accumulate, advance, repeat.
        let mut a = Asm::new(0x1000);
        let top = a.fresh_label();
        a.push(Inst::MovRI { dst: Gpr::Esi, imm: 0x4000 });
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 0 });
        a.bind(top);
        a.push(Inst::AluRM {
            op: AluOp::Add,
            dst: Gpr::Ebx,
            addr: darco_guest::MemRef::base(Gpr::Esi, 0),
        });
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Esi, imm: 4 });
        a.push(Inst::AluRI { op: AluOp::And, dst: Gpr::Esi, imm: 0x7FFC });
        a.push(Inst::MovRR { dst: Gpr::Edx, src: Gpr::Ebx });
        a.push(Inst::Shift { op: darco_guest::ShiftOp::Sar, dst: Gpr::Edx, amount: 3 });
        a.push(Inst::AluRR { op: AluOp::Xor, dst: Gpr::Ecx, src: Gpr::Edx });
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
        a.push(Inst::CmpRI { a: Gpr::Eax, imm: 50_000 });
        a.push_jcc(Cond::Ne, top);
        a.push(Inst::Halt);
        let p = a.assemble();
        let mut mem0 = GuestMem::new();
        mem0.write_bytes(p.base, &p.bytes);
        let entry = p.base;

        let mut mem_ref = mem0.clone();
        let (ref_cpu, _) = run_reference(&mut mem_ref, entry);

        let mut mem = mem0.clone();
        let mut tol = Tol::new(TolConfig { opt_sw_prefetch: true, ..TolConfig::default() }, entry);
        let mut cpu = CpuState::at(entry);
        cpu.set_gpr(Gpr::Esp, 0x10_0000);
        tol.set_state(&cpu);
        let mut prefetches = 0u64;
        let mut sink = darco_host::RetireSink(|d: &DynInst| {
            if d.mem.is_some_and(|m| m.is_prefetch) {
                prefetches += 1;
            }
        });
        tol.run(&mut mem, &mut sink, 50_000_000).unwrap();
        assert!(ref_cpu.arch_eq(&tol.emulated_state()), "prefetching must be transparent");
        assert!(prefetches > 0, "superblocks with loads must carry prefetches");
    }

    #[test]
    fn scattered_placement_spreads_host_bases() {
        let (mut mem, entry) = loop_program(2_000);
        let cfg = TolConfig { codecache_scattered: true, ..TolConfig::default() };
        let (tol, _) = run_tol(&mut mem, entry, cfg);
        // Every resident block starts page-aligned.
        assert!(tol.cc.resident() > 0);
        for (_, b) in tol.cc.blocks() {
            assert_eq!(b.host_base & 0xFFF, 0);
        }
    }

    #[test]
    fn fifo_policy_is_architecturally_exact_under_pressure() {
        let (mem0, entry) = loop_program(30_000);
        let mut mem_ref = mem0.clone();
        let (ref_cpu, ref_n) = run_reference(&mut mem_ref, entry);

        // A cache smaller than the combined working set (the program
        // translates to ~25 host instructions across three blocks), so
        // resident translations keep capacity-evicting each other and
        // the hot ones are re-translated over and over.
        let cfg = TolConfig {
            code_cache_capacity: 20,
            cache_policy: CachePolicy::Fifo,
            bb_sb_threshold: 50,
            ..TolConfig::default()
        };
        let mut mem = mem0.clone();
        let (tol, _) = run_tol(&mut mem, entry, cfg);
        let emu = tol.emulated_state();
        assert!(ref_cpu.arch_eq(&emu), "state diverged:\nref: {ref_cpu}\nemu: {emu}");
        assert_eq!(tol.counters().guest_insts, ref_n);
        let s = tol.summary();
        assert_eq!(s.flushes, 0, "fifo never whole-flushes");
        assert!(s.cache.evictions > 0, "pressure must evict");
        assert!(s.cache.retranslations > 0, "evicted hot code re-translates");
        assert!(s.cache.used <= 20, "capacity bound holds");
    }

    #[test]
    fn oversized_translations_degrade_to_interpretation() {
        // A capacity smaller than any translated block: every install is
        // rejected and the whole program interprets — correctly.
        let (mem0, entry) = loop_program(500);
        let mut mem_ref = mem0.clone();
        let (ref_cpu, _) = run_reference(&mut mem_ref, entry);
        for policy in [CachePolicy::Flush, CachePolicy::Fifo] {
            let cfg =
                TolConfig { code_cache_capacity: 2, cache_policy: policy, ..TolConfig::default() };
            let mut mem = mem0.clone();
            let (tol, _) = run_tol(&mut mem, entry, cfg);
            assert!(ref_cpu.arch_eq(&tol.emulated_state()));
            let s = tol.summary();
            assert_eq!(s.installed, 0, "nothing fits a 2-inst cache");
            assert_eq!(s.dyn_dist[1] + s.dyn_dist[2], 0, "interpreter-only");
        }
    }

    #[test]
    fn smc_write_forces_eviction_and_retranslation() {
        // Overwrite the `add eax, 1` immediate (to 2) in the hot loop
        // after it has been translated, via a store the program itself
        // executes. Layout (short-form AluRI is 3 bytes):
        //   0x1000: mov ecx, imm(site+2)   ; patch address
        //   ...    store byte 2 at [ecx]   ; rewrites the immediate
        // Here we drive the engine directly instead: run until the loop
        // is translated, patch guest memory, keep running.
        let (mut mem, entry) = loop_program(5_000);
        let cfg = TolConfig { cache_policy: CachePolicy::Fifo, ..TolConfig::default() };
        let mut tol = Tol::new(cfg, entry);
        let mut cpu = CpuState::at(entry);
        cpu.set_gpr(Gpr::Esp, 0x10_0000);
        tol.set_state(&cpu);
        let mut sink = darco_host::NullSink;
        // Run enough steps that the loop body is translated.
        let mut guest = 0u64;
        while guest < 2_000 && !tol.is_done() {
            guest += tol.step(&mut mem, &mut sink, 256).unwrap().guest_insts;
        }
        assert!(tol.cc.resident() > 0, "loop must be translated by now");
        // A write to a translated code page (same byte value — even an
        // idempotent write must invalidate, as the stamp is a page
        // write-generation, not a content hash).
        let byte = mem.read_u8(entry);
        mem.write_u8(entry, byte);
        while !tol.is_done() {
            tol.step(&mut mem, &mut sink, 4096).unwrap();
        }
        let s = tol.summary();
        assert!(s.cache.smc_evictions > 0, "code-page write must evict");
        assert!(s.cache.retranslations > 0, "hot code must come back");
        // The run still retires exactly the reference instruction count.
        let (mut mem_ref, _) = loop_program(5_000);
        let (ref_cpu, ref_n) = run_reference(&mut mem_ref, entry);
        assert!(ref_cpu.arch_eq(&tol.emulated_state()));
        assert_eq!(tol.counters().guest_insts, ref_n);
    }

    /// Runs the program and collects the fully expanded retirement
    /// stream (macro-events expanded by [`darco_host::RetireSink`]).
    fn collect_stream(mem: &mut GuestMem, entry: u32, cfg: TolConfig) -> (Tol, Vec<DynInst>) {
        let mut tol = Tol::new(cfg, entry);
        let mut cpu = CpuState::at(entry);
        cpu.set_gpr(Gpr::Esp, 0x10_0000);
        tol.set_state(&cpu);
        let mut stream = Vec::new();
        let mut sink = darco_host::RetireSink(|d: &DynInst| stream.push(*d));
        tol.run(mem, &mut sink, 50_000_000).unwrap();
        (tol, stream)
    }

    #[test]
    fn macro_events_expand_to_the_per_instruction_stream() {
        let (mut mem_off, entry) = loop_program(20_000);
        let cfg_off = TolConfig { block_memo: false, ..TolConfig::default() };
        let (tol_off, stream_off) = collect_stream(&mut mem_off, entry, cfg_off);
        assert_eq!(tol_off.memo_stats().macro_events, 0, "memo off emits none");

        let (mut mem_on, _) = loop_program(20_000);
        let (tol_on, stream_on) = collect_stream(&mut mem_on, entry, TolConfig::default());
        let s = tol_on.memo_stats();
        assert!(s.macro_events > 0, "hot loop must go steady-state");
        assert!(s.insts_suppressed > s.records, "streams must mostly repeat");
        assert_eq!(tol_on.counters().guest_insts, tol_off.counters().guest_insts);
        assert_eq!(stream_on.len(), stream_off.len());
        assert!(stream_on == stream_off, "expanded streams must be bit-identical");
    }

    #[test]
    fn memo_survives_side_exit_divergence() {
        // The loop's final iteration leaves through a different exit
        // than the steady-state ones — one re-record, never an abandon.
        let (mut mem, entry) = loop_program(20_000);
        let (tol, _) = collect_stream(&mut mem, entry, TolConfig::default());
        let s = tol.memo_stats();
        assert_eq!(s.abandoned, 0, "occasional divergence must not abandon");
        assert!(s.records < s.macro_events / 10, "re-records must be rare");
    }

    #[test]
    fn overhead_share_is_plausible() {
        let (mut mem, entry) = loop_program(100_000);
        let (tol, total_host) = run_tol(&mut mem, entry, TolConfig::default());
        let s = tol.summary();
        let app = s.emitted[0];
        let tol_side: u64 = s.emitted[1..].iter().sum();
        assert_eq!(app + tol_side, total_host);
        let overhead = tol_side as f64 / total_host as f64;
        // A hot loop amortizes overhead to a small share.
        assert!(overhead < 0.30, "overhead share {overhead}");
    }
}
