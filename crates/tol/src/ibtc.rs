//! Indirect Branch Translation Cache.
//!
//! Translated code cannot jump through the translation map on every
//! indirect branch — the map probe is a data-intensive trip into the
//! software layer. The IBTC (Hiser et al., cited as \[20\] in the paper)
//! is a small direct-mapped table of `guest target → translation` pairs
//! probed inline by translated code; only a miss transitions to the
//! software layer for a full code-cache lookup, after which the entry is
//! updated (Sec. III-B).
//!
//! Entries hold generation-tagged [`BlockId`] handles. The engine keeps
//! them live eagerly: a whole-cache flush [`clear`](Ibtc::clear)s the
//! table, and a partial eviction [`invalidate`](Ibtc::invalidate)s only
//! the entries naming the evicted block — so a probe can never hand out
//! a handle to freed code.

use darco_host::BlockId;

/// Direct-mapped IBTC.
#[derive(Debug, Clone)]
pub struct Ibtc {
    entries: Vec<Option<(u32, BlockId)>>, // (guest target, block handle)
    mask: u32,
    hits: u64,
    misses: u64,
}

impl Ibtc {
    /// Creates an IBTC with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32) -> Ibtc {
        assert!(entries.is_power_of_two(), "IBTC entries must be a power of two");
        Ibtc { entries: vec![None; entries as usize], mask: entries - 1, hits: 0, misses: 0 }
    }

    /// Slot index a guest target maps to (exposed so the cost model can
    /// derive the probe's data address).
    pub fn slot(&self, guest_target: u32) -> u32 {
        // Multiplicative hash; guest code is byte-aligned so low bits
        // alone are fine but mixing avoids pathological strides.
        (guest_target.wrapping_mul(0x9E37_79B9) >> 16) & self.mask
    }

    /// Probes for a guest target; returns the cached block handle.
    pub fn lookup(&mut self, guest_target: u32) -> Option<BlockId> {
        let e = self.entries[self.slot(guest_target) as usize];
        match e {
            Some((g, b)) if g == guest_target => {
                self.hits += 1;
                Some(b)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs/overwrites the entry for a guest target.
    pub fn update(&mut self, guest_target: u32, block: BlockId) {
        let s = self.slot(guest_target) as usize;
        self.entries[s] = Some((guest_target, block));
    }

    /// Drops every entry naming `block` (after a partial eviction; a
    /// whole-cache flush uses [`Ibtc::clear`]).
    pub fn invalidate(&mut self, block: BlockId) {
        for e in self.entries.iter_mut() {
            if matches!(e, Some((_, b)) if *b == block) {
                *e = None;
            }
        }
    }

    /// Clears all entries (after a code-cache flush, every block handle
    /// is stale).
    pub fn clear(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
    }

    /// Probe hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(idx: u32) -> BlockId {
        BlockId { idx, gen: 0 }
    }

    #[test]
    fn miss_then_hit() {
        let mut i = Ibtc::new(512);
        assert_eq!(i.lookup(0x1234), None);
        i.update(0x1234, bid(7));
        assert_eq!(i.lookup(0x1234), Some(bid(7)));
        assert_eq!(i.hits(), 1);
        assert_eq!(i.misses(), 1);
    }

    #[test]
    fn conflicting_targets_evict() {
        let mut i = Ibtc::new(1); // everything collides
        i.update(0x100, bid(1));
        i.update(0x200, bid(2));
        assert_eq!(i.lookup(0x100), None, "evicted by 0x200");
        assert_eq!(i.lookup(0x200), Some(bid(2)));
    }

    #[test]
    fn clear_drops_everything() {
        let mut i = Ibtc::new(64);
        i.update(0x100, bid(1));
        i.clear();
        assert_eq!(i.lookup(0x100), None);
    }

    #[test]
    fn invalidate_is_selective() {
        let mut i = Ibtc::new(64);
        i.update(0x100, bid(1));
        i.update(0x200, bid(2));
        i.invalidate(bid(1));
        assert_eq!(i.lookup(0x100), None, "entries naming the block go");
        assert_eq!(i.lookup(0x200), Some(bid(2)), "others survive");
        // A different generation of the same slot is a different block.
        i.update(0x300, BlockId { idx: 2, gen: 1 });
        i.invalidate(bid(2));
        assert_eq!(i.lookup(0x300), Some(BlockId { idx: 2, gen: 1 }));
    }

    #[test]
    fn slots_stay_in_range() {
        let i = Ibtc::new(512);
        for t in (0..100_000u32).step_by(97) {
            assert!(i.slot(t) < 512);
        }
    }
}
