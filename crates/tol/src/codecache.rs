//! The code cache: storage for translations, the translation map, and
//! chaining.
//!
//! Translations are bounded by a host-instruction capacity; overflow
//! flushes the whole cache (the classic bounded-code-cache policy; see
//! Hazelwood & Smith, cited as [33] in the paper). Chaining patches a
//! block's direct exit to name its successor block, so steady-state
//! execution hops from translation to translation without entering the
//! software layer (Sec. III-B).

use darco_host::layout::CODE_CACHE_BASE;
use darco_host::{compile_block, Exit, HInst, RetireTemplate};
use std::collections::HashMap;

/// Which mode produced a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Basic-block translation (BBM): instrumented for edge profiling.
    Bb,
    /// Optimized superblock (SBM).
    Sb,
}

/// One installed translation.
#[derive(Debug, Clone)]
pub struct TranslatedBlock {
    /// Guest address this translation starts at.
    pub guest_entry: u32,
    /// Host address of the first instruction (for I-cache modeling).
    pub host_base: u64,
    /// The translated host code: body, then fall-through exit, then
    /// side-exit stubs.
    pub insts: Vec<HInst>,
    /// Per-instruction retirement templates (parallel to `insts`),
    /// compiled once at install time so the execution loop never
    /// re-derives static retirement metadata.
    pub templates: Vec<RetireTemplate>,
    /// Producing mode.
    pub kind: BlockKind,
    /// Host-instruction index of the fall-through exit (= body length).
    pub body_len: u32,
    /// Guest instructions retired when leaving via stub `i` (the exit at
    /// host index `body_len + 1 + i`).
    pub stub_guest_counts: Vec<u32>,
    /// Guest instructions retired on the fall-through exit.
    pub guest_len: u32,
    /// Guest addresses covered (for static-mode accounting).
    pub guest_pcs: Vec<u32>,
    /// Executions observed (drives SBM promotion of BBM blocks).
    pub exec_count: u64,
    /// Set once this BBM block has been promoted to a superblock.
    pub promoted: bool,
    /// When promoted, the block's entry is patched with a jump to the
    /// replacing superblock, so stale chain links reach the new code.
    pub redirect: Option<u32>,
}

/// Statistics the code cache keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodeCacheStats {
    /// Translations installed over the run (including re-translations
    /// after flushes).
    pub installed: u64,
    /// Whole-cache flushes.
    pub flushes: u64,
    /// Chain links patched.
    pub chains: u64,
}

/// The bounded code cache and translation map.
#[derive(Debug)]
pub struct CodeCache {
    blocks: Vec<TranslatedBlock>,
    map: HashMap<u32, u32>,
    capacity: u32,
    used: u32,
    next_host_base: u64,
    scattered: bool,
    stats: CodeCacheStats,
}

impl CodeCache {
    /// Creates a cache bounded to `capacity` host instructions, packing
    /// translations sequentially in emission order.
    pub fn new(capacity: u32) -> CodeCache {
        CodeCache {
            blocks: Vec::new(),
            map: HashMap::new(),
            capacity,
            used: 0,
            next_host_base: CODE_CACHE_BASE,
            scattered: false,
            stats: CodeCacheStats::default(),
        }
    }

    /// Creates a cache with page-aligned ("scattered") placement: every
    /// translation starts on a 4 KiB boundary, so block heads pile onto
    /// the same I-cache sets and lines are underused — the bad placement
    /// policy the paper's code-placement recommendation (Sec. III-E)
    /// implicitly argues against.
    pub fn new_scattered(capacity: u32) -> CodeCache {
        CodeCache { scattered: true, ..CodeCache::new(capacity) }
    }

    /// Looks up the translation covering guest address `pc` (entry match).
    pub fn lookup(&self, pc: u32) -> Option<u32> {
        self.map.get(&pc).copied()
    }

    /// Installs a translation; flushes first if it would not fit.
    ///
    /// Returns the new block id and whether a flush happened. A
    /// same-entry translation (e.g. an SBM block replacing a BBM block)
    /// takes over the map entry; the old block stays allocated until the
    /// next flush, as in a real code cache.
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        &mut self,
        guest_entry: u32,
        insts: Vec<HInst>,
        kind: BlockKind,
        body_len: u32,
        stub_guest_counts: Vec<u32>,
        guest_len: u32,
        guest_pcs: Vec<u32>,
    ) -> (u32, bool) {
        let mut flushed = false;
        if self.used + insts.len() as u32 > self.capacity {
            self.flush();
            flushed = true;
        }
        if self.scattered {
            self.next_host_base = (self.next_host_base + 0xFFF) & !0xFFF;
        }
        let host_base = self.next_host_base;
        self.next_host_base += (insts.len() as u64) * 4;
        self.used += insts.len() as u32;
        self.stats.installed += 1;
        let id = self.blocks.len() as u32;
        let templates = compile_block(&insts, host_base);
        self.blocks.push(TranslatedBlock {
            guest_entry,
            host_base,
            insts,
            templates,
            kind,
            body_len,
            stub_guest_counts,
            guest_len,
            guest_pcs,
            exec_count: 0,
            promoted: false,
            redirect: None,
        });
        self.map.insert(guest_entry, id);
        (id, flushed)
    }

    /// Drops every translation (bounded-cache overflow policy).
    pub fn flush(&mut self) {
        self.blocks.clear();
        self.map.clear();
        self.used = 0;
        self.next_host_base = CODE_CACHE_BASE;
        self.stats.flushes += 1;
    }

    /// Accesses a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (from before a flush).
    pub fn block(&self, id: u32) -> &TranslatedBlock {
        &self.blocks[id as usize]
    }

    /// Mutable access to a block (profiling counters, promotion flag).
    pub fn block_mut(&mut self, id: u32) -> &mut TranslatedBlock {
        &mut self.blocks[id as usize]
    }

    /// Patches the direct exit at host-instruction index `exit_idx` of
    /// block `from` to link directly to block `to`.
    ///
    /// # Panics
    ///
    /// Panics if the instruction at `exit_idx` is not a direct exit.
    pub fn chain(&mut self, from: u32, exit_idx: usize, to: u32) {
        let inst = &mut self.blocks[from as usize].insts[exit_idx];
        match inst {
            HInst::Exit(Exit::Direct { link, .. }) => {
                *link = Some(to);
                self.stats.chains += 1;
            }
            other => panic!("chaining a non-direct exit: {other:?}"),
        }
    }

    /// Host instructions currently resident.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> CodeCacheStats {
        self.stats
    }

    /// Number of currently resident translations.
    pub fn resident(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_block() -> Vec<HInst> {
        vec![HInst::Nop, HInst::Exit(Exit::Direct { guest_target: 0x200, link: None })]
    }

    #[test]
    fn install_and_lookup() {
        let mut cc = CodeCache::new(100);
        let (id, flushed) =
            cc.install(0x100, tiny_block(), BlockKind::Bb, 1, vec![], 3, vec![0x100]);
        assert!(!flushed);
        assert_eq!(cc.lookup(0x100), Some(id));
        assert_eq!(cc.lookup(0x104), None);
        assert_eq!(cc.block(id).guest_len, 3);
        assert_eq!(cc.used(), 2);
    }

    #[test]
    fn install_compiles_templates() {
        let mut cc = CodeCache::new(100);
        let (id, _) = cc.install(0x100, tiny_block(), BlockKind::Bb, 1, vec![], 3, vec![0x100]);
        let b = cc.block(id);
        assert_eq!(b.templates.len(), b.insts.len());
        assert_eq!(b.templates[0].inst.pc, b.host_base);
        assert_eq!(b.templates[1].inst.pc, b.host_base + 4);
    }

    #[test]
    fn sbm_replaces_map_entry() {
        let mut cc = CodeCache::new(100);
        let (bb, _) = cc.install(0x100, tiny_block(), BlockKind::Bb, 1, vec![], 3, vec![]);
        let (sb, _) = cc.install(0x100, tiny_block(), BlockKind::Sb, 1, vec![], 9, vec![]);
        assert_ne!(bb, sb);
        assert_eq!(cc.lookup(0x100), Some(sb));
    }

    #[test]
    fn overflow_flushes() {
        let mut cc = CodeCache::new(5);
        cc.install(0x100, tiny_block(), BlockKind::Bb, 1, vec![], 1, vec![]);
        cc.install(0x200, tiny_block(), BlockKind::Bb, 1, vec![], 1, vec![]);
        // Third block exceeds 5 instructions: flush, then install.
        let (_, flushed) = cc.install(0x300, tiny_block(), BlockKind::Bb, 1, vec![], 1, vec![]);
        assert!(flushed);
        assert_eq!(cc.stats().flushes, 1);
        assert_eq!(cc.lookup(0x100), None, "flushed");
        assert_eq!(cc.resident(), 1);
    }

    #[test]
    fn chaining_patches_direct_exits() {
        let mut cc = CodeCache::new(100);
        let (a, _) = cc.install(0x100, tiny_block(), BlockKind::Bb, 1, vec![], 1, vec![]);
        let (b, _) = cc.install(0x200, tiny_block(), BlockKind::Bb, 1, vec![], 1, vec![]);
        cc.chain(a, 1, b);
        match cc.block(a).insts[1] {
            HInst::Exit(Exit::Direct { link, .. }) => assert_eq!(link, Some(b)),
            ref o => panic!("unexpected {o:?}"),
        }
        assert_eq!(cc.stats().chains, 1);
    }

    #[test]
    #[should_panic(expected = "non-direct exit")]
    fn chaining_wrong_instruction_panics() {
        let mut cc = CodeCache::new(100);
        let (a, _) = cc.install(0x100, tiny_block(), BlockKind::Bb, 1, vec![], 1, vec![]);
        cc.chain(a, 0, a); // index 0 is a Nop
    }

    #[test]
    fn host_bases_are_disjoint() {
        let mut cc = CodeCache::new(100);
        let (a, _) = cc.install(0x100, tiny_block(), BlockKind::Bb, 1, vec![], 1, vec![]);
        let (b, _) = cc.install(0x200, tiny_block(), BlockKind::Bb, 1, vec![], 1, vec![]);
        let ba = cc.block(a);
        let bb = cc.block(b);
        assert!(bb.host_base >= ba.host_base + 4 * ba.insts.len() as u64);
    }
}
