//! The code cache: storage for translations, the translation map,
//! chaining, and the translation lifecycle (eviction, unlinking,
//! SMC invalidation).
//!
//! Translations are bounded by a host-instruction capacity. Two overflow
//! policies exist, selected by [`CachePolicy`]:
//!
//! * [`CachePolicy::Flush`] — the classic whole-cache flush (Hazelwood &
//!   Smith, cited as \[33\] in the paper). Dead space from replaced blocks
//!   accumulates until the next flush; every handle goes stale at once.
//!   This is the byte-equality oracle: its event stream is identical to
//!   the pre-lifecycle implementation.
//! * [`CachePolicy::Fifo`] — partial eviction: on overflow the oldest
//!   translations are evicted one at a time until the new one fits, a
//!   same-entry replacement (SBM promotion) evicts the replaced block
//!   immediately, and reclaimed address ranges go onto a free list for
//!   reuse. Only the chains *into* an evicted block are unpatched (each
//!   block tracks its incoming chain sites) and only the IBTC entries
//!   naming it are invalidated — the rest of the cache keeps running.
//!
//! Block handles are generation-tagged ([`BlockId`]): every eviction
//! bumps the slot generation, so a stale handle is detectable through
//! [`CodeCache::get`] instead of silently resolving to an unrelated
//! translation.
//!
//! Translations are additionally stamped against self-modifying code:
//! at install each block records the covered guest pages and the maximum
//! [`GuestMem`] page write-generation over them; [`CodeCache::smc_stale`]
//! compares the stamp on entry/dispatch so a guest that overwrites
//! translated code re-translates instead of executing stale host code.
//!
//! Chaining patches a block's direct exit to name its successor block,
//! so steady-state execution hops from translation to translation
//! without entering the software layer (Sec. III-B).

use darco_guest::GuestMem;
use darco_host::layout::CODE_CACHE_BASE;
use darco_host::{compile_block, rebase_templates, BlockId, Exit, HInst, RetireTemplate};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// Which mode produced a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Basic-block translation (BBM): instrumented for edge profiling.
    Bb,
    /// Optimized superblock (SBM).
    Sb,
}

/// Code-cache overflow policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePolicy {
    /// Whole-cache flush on overflow (the classic bounded-cache policy;
    /// Hazelwood & Smith). The byte-equality oracle.
    #[default]
    Flush,
    /// Partial eviction: evict the oldest translations until the new one
    /// fits, reclaim their space via a free list, unlink only the chains
    /// into them, and invalidate only the IBTC entries naming them.
    Fifo,
}

impl std::str::FromStr for CachePolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<CachePolicy, String> {
        match s {
            "flush" => Ok(CachePolicy::Flush),
            "fifo" => Ok(CachePolicy::Fifo),
            other => Err(format!("unknown cache policy {other} (flush|fifo)")),
        }
    }
}

/// Typed errors at the cache's public API boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheError {
    /// The handle's slot generation does not match: the block was
    /// evicted (or the cache flushed) after the handle was issued.
    Stale(BlockId),
    /// A chain request named an instruction that is not a direct exit.
    NotDirectExit {
        /// Block the bad site is in.
        id: BlockId,
        /// Host-instruction index that was not a direct exit.
        exit_idx: usize,
    },
    /// A translation larger than the whole cache capacity was rejected
    /// (installing it anyway would silently break the cache bound).
    TooLarge {
        /// Host instructions in the rejected translation.
        insts: usize,
        /// Cache capacity in host instructions.
        capacity: u32,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Stale(id) => write!(f, "stale block handle {id}"),
            CacheError::NotDirectExit { id, exit_idx } => {
                write!(f, "instruction {exit_idx} of {id} is not a direct exit")
            }
            CacheError::TooLarge { insts, capacity } => {
                write!(f, "translation of {insts} host insts exceeds cache capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Why a block was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictCause {
    /// Capacity pressure under [`CachePolicy::Fifo`].
    Capacity,
    /// A same-entry install replaced it (SBM promotion under fifo).
    Replaced,
    /// A guest write invalidated its SMC stamp.
    Smc,
}

/// One evicted translation, as reported to the engine so it can emit
/// lifecycle events and invalidate its own side tables.
#[derive(Debug, Clone)]
pub struct Evicted {
    /// The now-stale handle (IBTC entries naming it must go).
    pub id: BlockId,
    /// Guest entry address of the evicted translation.
    pub entry: u32,
    /// Whether a self-modifying-code stamp mismatch forced the eviction.
    pub smc: bool,
    /// Host PCs of chain sites that were unpatched because they linked
    /// into the evicted block.
    pub unchained: Vec<u64>,
}

/// Result of a successful [`CodeCache::install`].
#[derive(Debug)]
pub struct Installed {
    /// Handle of the new translation.
    pub id: BlockId,
    /// Whether installing forced a whole-cache flush
    /// ([`CachePolicy::Flush`] only).
    pub flushed: bool,
    /// Blocks evicted to make room ([`CachePolicy::Fifo`] only).
    pub evicted: Vec<Evicted>,
}

/// A finished translation ready to install: everything
/// [`CodeCache::install`] takes except the host placement, which the
/// cache decides at install time.
///
/// This is the handle a background translation worker produces — the
/// compile work happens off the emulation thread, and the engine passes
/// the handle to [`CodeCache::install_prepared`] at the same
/// deterministic point a synchronous translation would install.
#[derive(Debug)]
pub struct Prepared {
    /// The translated host instructions.
    pub insts: Vec<HInst>,
    /// Block kind (BBM basic block or SBM superblock).
    pub kind: BlockKind,
    /// Host instructions before the first exit stub.
    pub body_len: u32,
    /// Guest instructions retired when exiting through each stub.
    pub stub_guest_counts: Vec<u32>,
    /// Guest instructions the translation covers.
    pub guest_len: u32,
    /// Guest addresses of the covered instructions (for SMC stamping).
    pub guest_pcs: Vec<u32>,
    /// Retirement templates compiled at host base 0 by a worker, rebased
    /// by the cache to the chosen base; `None` means compile at install.
    pub templates: Option<Vec<RetireTemplate>>,
}

/// One installed translation.
#[derive(Debug, Clone)]
pub struct TranslatedBlock {
    /// Guest address this translation starts at.
    pub guest_entry: u32,
    /// Host address of the first instruction (for I-cache modeling).
    pub host_base: u64,
    /// The translated host code: body, then fall-through exit, then
    /// side-exit stubs.
    pub insts: Vec<HInst>,
    /// Per-instruction retirement templates (parallel to `insts`),
    /// compiled once at install time so the execution loop never
    /// re-derives static retirement metadata.
    pub templates: Vec<RetireTemplate>,
    /// Producing mode.
    pub kind: BlockKind,
    /// Host-instruction index of the fall-through exit (= body length).
    pub body_len: u32,
    /// Guest instructions retired when leaving via stub `i` (the exit at
    /// host index `body_len + 1 + i`).
    pub stub_guest_counts: Vec<u32>,
    /// Guest instructions retired on the fall-through exit.
    pub guest_len: u32,
    /// Guest addresses covered (for static-mode accounting).
    pub guest_pcs: Vec<u32>,
    /// Executions observed (drives SBM promotion of BBM blocks).
    pub exec_count: u64,
    /// Set once this BBM block has been promoted to a superblock.
    pub promoted: bool,
    /// When promoted, the block's entry is patched with a jump to the
    /// replacing superblock, so stale chain links reach the new code.
    pub redirect: Option<BlockId>,
    /// Chain sites patched to link into this block: `(from, exit_idx)`.
    /// Evicting this block unpatches every still-live site, so no live
    /// exit can keep jumping into freed code.
    pub incoming: Vec<(BlockId, u32)>,
    /// Guest page numbers (`addr >> 12`) the translated code was decoded
    /// from (over-approximated to instruction-length granularity).
    pub code_pages: Vec<u32>,
    /// Maximum [`GuestMem`] page write-generation over `code_pages` at
    /// install time: the block's self-modifying-code stamp.
    pub smc_gen: u64,
}

/// Statistics the code cache keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeCacheStats {
    /// Translations installed over the run (including re-translations
    /// after flushes/evictions).
    pub installed: u64,
    /// Whole-cache flushes.
    pub flushes: u64,
    /// Chain links patched.
    pub chains: u64,
    /// Per-block evictions (capacity, replacement, and SMC; whole-cache
    /// flushes are counted in `flushes`, not here).
    pub evictions: u64,
    /// Evictions forced by a self-modifying-code stamp mismatch.
    pub smc_evictions: u64,
    /// Chain links unpatched because their target was evicted.
    pub unchains: u64,
    /// Installs at a guest entry whose previous translation had been
    /// flushed or evicted — the re-translation work the lifecycle
    /// policies trade against cache space.
    pub retranslations: u64,
}

/// A serializable snapshot of cache health for end-of-run reports:
/// occupancy, dead space, and the lifetime lifecycle counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheHealth {
    /// Capacity in host instructions.
    pub capacity: u32,
    /// Host instructions currently allocated (live + dead).
    pub used: u32,
    /// Host instructions in map-reachable (live) translations.
    pub live_used: u32,
    /// Currently resident (live) translations.
    pub resident: u32,
    /// Per-block evictions over the run.
    pub evictions: u64,
    /// SMC-forced evictions over the run.
    pub smc_evictions: u64,
    /// Chain links unpatched over the run.
    pub unchains: u64,
    /// Re-translations of previously flushed/evicted entries.
    pub retranslations: u64,
}

impl CacheHealth {
    /// Fraction of the capacity currently allocated.
    pub fn occupancy(&self) -> f64 {
        self.used as f64 / self.capacity.max(1) as f64
    }

    /// Fraction of allocated space held by dead (unreachable) blocks —
    /// the leak the partial-eviction policy reclaims.
    pub fn dead_space_ratio(&self) -> f64 {
        (self.used - self.live_used) as f64 / self.used.max(1) as f64
    }
}

/// One storage slot: a generation counter plus the (possibly evicted)
/// occupant. The generation bumps on every eviction, invalidating every
/// outstanding [`BlockId`] that names the slot.
#[derive(Debug)]
struct Slot {
    gen: u32,
    block: Option<TranslatedBlock>,
}

/// The bounded code cache and translation map.
#[derive(Debug)]
pub struct CodeCache {
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    map: HashMap<u32, BlockId>,
    /// Install order of (possibly since-evicted) blocks, for fifo
    /// victim selection; cleaned lazily.
    order: VecDeque<BlockId>,
    /// Reclaimed host-address extents `(base, bytes)`, sorted by base
    /// and coalesced; first-fit allocation under fifo.
    free_space: Vec<(u64, u64)>,
    capacity: u32,
    used: u32,
    live_used: u32,
    next_host_base: u64,
    scattered: bool,
    policy: CachePolicy,
    /// Guest entries whose translation was flushed or evicted, for
    /// re-translation counting (cleared per entry on re-install).
    evicted_entries: HashSet<u32>,
    stats: CodeCacheStats,
}

impl CodeCache {
    /// Creates a cache bounded to `capacity` host instructions, packing
    /// translations sequentially in emission order, with the classic
    /// flush-on-overflow policy.
    pub fn new(capacity: u32) -> CodeCache {
        CodeCache {
            slots: Vec::new(),
            free_slots: Vec::new(),
            map: HashMap::new(),
            order: VecDeque::new(),
            free_space: Vec::new(),
            capacity,
            used: 0,
            live_used: 0,
            next_host_base: CODE_CACHE_BASE,
            scattered: false,
            policy: CachePolicy::Flush,
            evicted_entries: HashSet::new(),
            stats: CodeCacheStats::default(),
        }
    }

    /// Creates a cache with the given overflow policy.
    pub fn with_policy(capacity: u32, policy: CachePolicy) -> CodeCache {
        CodeCache { policy, ..CodeCache::new(capacity) }
    }

    /// Creates a cache with page-aligned ("scattered") placement: every
    /// translation starts on a 4 KiB boundary, so block heads pile onto
    /// the same I-cache sets and lines are underused — the bad placement
    /// policy the paper's code-placement recommendation (Sec. III-E)
    /// implicitly argues against. Under fifo, scattered placement skips
    /// address reuse (alignment padding breaks the extent bookkeeping);
    /// the instruction-count bound still holds.
    pub fn new_scattered(capacity: u32) -> CodeCache {
        CodeCache { scattered: true, ..CodeCache::new(capacity) }
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Sets the overflow policy (engine configuration time only).
    pub fn set_policy(&mut self, policy: CachePolicy) {
        self.policy = policy;
    }

    /// Looks up the translation covering guest address `pc` (entry match).
    pub fn lookup(&self, pc: u32) -> Option<BlockId> {
        self.map.get(&pc).copied()
    }

    /// Installs a translation.
    ///
    /// Under [`CachePolicy::Flush`], overflow flushes the whole cache
    /// first; a same-entry translation (e.g. an SBM block replacing a
    /// BBM block) takes over the map entry and the old block stays
    /// allocated as dead space until the next flush, as in a real
    /// flush-policy code cache. Under [`CachePolicy::Fifo`], the oldest
    /// translations are evicted until the new one fits, a same-entry
    /// install evicts the replaced block immediately, and reclaimed
    /// space is reused.
    ///
    /// The block is stamped against self-modifying code from `mem`'s
    /// current page write-generations over `guest_pcs`.
    ///
    /// # Errors
    ///
    /// [`CacheError::TooLarge`] if the translation alone exceeds the
    /// cache capacity (it is rejected, never partially installed).
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        &mut self,
        guest_entry: u32,
        insts: Vec<HInst>,
        kind: BlockKind,
        body_len: u32,
        stub_guest_counts: Vec<u32>,
        guest_len: u32,
        guest_pcs: Vec<u32>,
        mem: &GuestMem,
    ) -> Result<Installed, CacheError> {
        self.install_prepared(
            guest_entry,
            Prepared {
                insts,
                kind,
                body_len,
                stub_guest_counts,
                guest_len,
                guest_pcs,
                templates: None,
            },
            mem,
        )
    }

    /// [`CodeCache::install`] from a prepared handle. Same placement,
    /// eviction and stamping semantics; the difference is that a
    /// [`Prepared`] may carry base-relative retirement templates from a
    /// background translation worker, which are rebased to the chosen
    /// host base instead of recompiled (debug builds assert the rebased
    /// templates equal an install-time compilation).
    ///
    /// # Errors
    ///
    /// Same as [`CodeCache::install`].
    pub fn install_prepared(
        &mut self,
        guest_entry: u32,
        p: Prepared,
        mem: &GuestMem,
    ) -> Result<Installed, CacheError> {
        let Prepared { insts, kind, body_len, stub_guest_counts, guest_len, guest_pcs, templates } =
            p;
        let n = insts.len() as u32;
        if n > self.capacity {
            return Err(CacheError::TooLarge { insts: insts.len(), capacity: self.capacity });
        }
        let mut flushed = false;
        let mut evicted = Vec::new();
        match self.policy {
            CachePolicy::Flush => {
                if self.used + n > self.capacity {
                    self.flush();
                    flushed = true;
                }
                // A replaced block leaks as dead space until the flush.
                if let Some(&old) = self.map.get(&guest_entry) {
                    if let Some(b) = self.get(old) {
                        self.live_used -= b.insts.len() as u32;
                    }
                }
            }
            CachePolicy::Fifo => {
                if let Some(&old) = self.map.get(&guest_entry) {
                    if let Some(e) = self.evict(old, EvictCause::Replaced) {
                        evicted.push(e);
                    }
                }
                while self.used + n > self.capacity {
                    match self.pop_oldest() {
                        Some(victim) => {
                            if let Some(e) = self.evict(victim, EvictCause::Capacity) {
                                evicted.push(e);
                            }
                        }
                        None => break, // empty: n <= capacity fits
                    }
                }
            }
        }
        let host_base = self.alloc(n, &mut evicted);
        let (code_pages, smc_gen) = smc_stamp(mem, guest_pcs.iter().copied());
        let templates = match templates {
            Some(mut t) => {
                rebase_templates(&mut t, host_base);
                debug_assert_eq!(
                    t,
                    compile_block(&insts, host_base),
                    "rebased worker templates must equal install-time compilation"
                );
                t
            }
            None => compile_block(&insts, host_base),
        };
        let block = TranslatedBlock {
            guest_entry,
            host_base,
            insts,
            templates,
            kind,
            body_len,
            stub_guest_counts,
            guest_len,
            guest_pcs,
            exec_count: 0,
            promoted: false,
            redirect: None,
            incoming: Vec::new(),
            code_pages,
            smc_gen,
        };
        let id = self.alloc_slot(block);
        self.map.insert(guest_entry, id);
        self.order.push_back(id);
        self.used += n;
        self.live_used += n;
        self.stats.installed += 1;
        if self.evicted_entries.remove(&guest_entry) {
            self.stats.retranslations += 1;
        }
        Ok(Installed { id, flushed, evicted })
    }

    /// Places a block into a free slot (bumped-generation reuse) or a
    /// fresh one, returning its handle.
    fn alloc_slot(&mut self, block: TranslatedBlock) -> BlockId {
        match self.free_slots.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.block.is_none());
                slot.block = Some(block);
                BlockId { idx, gen: slot.gen }
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot { gen: 0, block: Some(block) });
                BlockId { idx, gen: 0 }
            }
        }
    }

    /// Allocates a host-address range for `n` instructions. Under fifo
    /// (non-scattered) the free list is tried first; exhaustion of the
    /// address window evicts further victims until an extent fits.
    fn alloc(&mut self, n: u32, evicted: &mut Vec<Evicted>) -> u64 {
        let bytes = n as u64 * 4;
        if self.scattered {
            self.next_host_base = (self.next_host_base + 0xFFF) & !0xFFF;
            let base = self.next_host_base;
            self.next_host_base += bytes;
            return base;
        }
        if self.policy == CachePolicy::Flush {
            let base = self.next_host_base;
            self.next_host_base += bytes;
            return base;
        }
        let window_end = CODE_CACHE_BASE + self.capacity as u64 * 4;
        loop {
            if let Some(base) = self.take_extent(bytes) {
                return base;
            }
            if self.next_host_base + bytes <= window_end {
                let base = self.next_host_base;
                self.next_host_base += bytes;
                return base;
            }
            // Fragmentation: no contiguous extent fits even though the
            // instruction budget does. Evict more until one opens up; an
            // empty cache resets the whole window.
            match self.pop_oldest() {
                Some(victim) => {
                    if let Some(e) = self.evict(victim, EvictCause::Capacity) {
                        evicted.push(e);
                    }
                }
                None => {
                    self.free_space.clear();
                    self.next_host_base = CODE_CACHE_BASE;
                }
            }
        }
    }

    /// First-fit over the free extents; splits the chosen one.
    fn take_extent(&mut self, bytes: u64) -> Option<u64> {
        let i = self.free_space.iter().position(|&(_, sz)| sz >= bytes)?;
        let (base, sz) = self.free_space[i];
        if sz == bytes {
            self.free_space.remove(i);
        } else {
            self.free_space[i] = (base + bytes, sz - bytes);
        }
        Some(base)
    }

    /// Returns an extent to the free list, coalescing with neighbors.
    fn free_extent(&mut self, base: u64, bytes: u64) {
        let i = self.free_space.partition_point(|&(b, _)| b < base);
        // Merge with the predecessor if adjacent.
        if i > 0 && self.free_space[i - 1].0 + self.free_space[i - 1].1 == base {
            self.free_space[i - 1].1 += bytes;
            // And with the successor, if now adjacent too.
            if i < self.free_space.len()
                && self.free_space[i - 1].0 + self.free_space[i - 1].1 == self.free_space[i].0
            {
                self.free_space[i - 1].1 += self.free_space[i].1;
                self.free_space.remove(i);
            }
            return;
        }
        if i < self.free_space.len() && base + bytes == self.free_space[i].0 {
            self.free_space[i] = (base, bytes + self.free_space[i].1);
            return;
        }
        self.free_space.insert(i, (base, bytes));
    }

    /// Oldest still-live block in install order (lazily skipping handles
    /// already invalidated by replacement or SMC eviction).
    fn pop_oldest(&mut self) -> Option<BlockId> {
        while let Some(id) = self.order.pop_front() {
            if self.get(id).is_some() {
                return Some(id);
            }
        }
        None
    }

    /// Evicts one block: bumps its slot generation (staling every
    /// outstanding handle), frees its space, removes its map entry, and
    /// unpatches every live chain site linking into it. Returns what was
    /// evicted (`None` if the handle was already stale).
    pub fn evict_block(&mut self, id: BlockId, cause: EvictCause) -> Option<Evicted> {
        self.evict(id, cause)
    }

    fn evict(&mut self, id: BlockId, cause: EvictCause) -> Option<Evicted> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        let b = slot.block.take()?;
        slot.gen += 1;
        self.free_slots.push(id.idx);
        let n = b.insts.len() as u32;
        self.used -= n;
        if self.map.get(&b.guest_entry) == Some(&id) {
            self.map.remove(&b.guest_entry);
            self.live_used -= n;
        }
        if !self.scattered && self.policy == CachePolicy::Fifo {
            self.free_extent(b.host_base, n as u64 * 4);
        }
        // Replacement means a new translation for the same entry is
        // being installed right now (promotion); counting that install
        // as a "retranslation" would misread deliberate new work as
        // lifecycle churn.
        if cause != EvictCause::Replaced {
            self.evicted_entries.insert(b.guest_entry);
        }
        self.stats.evictions += 1;
        if cause == EvictCause::Smc {
            self.stats.smc_evictions += 1;
        }
        let mut unchained = Vec::new();
        for &(from, exit_idx) in &b.incoming {
            let Some(fb) = self.get_mut(from) else { continue };
            if let Some(HInst::Exit(Exit::Direct { link, .. })) =
                fb.insts.get_mut(exit_idx as usize)
            {
                if *link == Some(id) {
                    *link = None;
                    unchained.push(fb.host_base + 4 * exit_idx as u64);
                }
            }
        }
        self.stats.unchains += unchained.len() as u64;
        Some(Evicted { id, entry: b.guest_entry, smc: cause == EvictCause::Smc, unchained })
    }

    /// Drops every translation (bounded-cache overflow policy), bumping
    /// every occupied slot's generation so all outstanding handles go
    /// stale.
    pub fn flush(&mut self) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if let Some(b) = s.block.take() {
                s.gen += 1;
                self.free_slots.push(i as u32);
                self.evicted_entries.insert(b.guest_entry);
            }
        }
        self.map.clear();
        self.order.clear();
        self.free_space.clear();
        self.used = 0;
        self.live_used = 0;
        self.next_host_base = CODE_CACHE_BASE;
        self.stats.flushes += 1;
    }

    /// Accesses a block by handle, `None` if the handle is stale.
    pub fn get(&self, id: BlockId) -> Option<&TranslatedBlock> {
        let slot = self.slots.get(id.idx as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.block.as_ref()
    }

    /// Mutable access by handle, `None` if the handle is stale.
    pub fn get_mut(&mut self, id: BlockId) -> Option<&mut TranslatedBlock> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.block.as_mut()
    }

    /// Accesses a block by handle.
    ///
    /// # Errors
    ///
    /// [`CacheError::Stale`] if the block was evicted (or the cache
    /// flushed) after the handle was issued.
    pub fn block(&self, id: BlockId) -> Result<&TranslatedBlock, CacheError> {
        self.get(id).ok_or(CacheError::Stale(id))
    }

    /// Mutable access to a block (profiling counters, promotion flag).
    ///
    /// # Errors
    ///
    /// [`CacheError::Stale`] if the handle no longer names a live block.
    pub fn block_mut(&mut self, id: BlockId) -> Result<&mut TranslatedBlock, CacheError> {
        self.get_mut(id).ok_or(CacheError::Stale(id))
    }

    /// Iterates over the live (still-installed) translations.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &TranslatedBlock)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.block.as_ref().map(|b| (BlockId { idx: i as u32, gen: s.gen }, b))
        })
    }

    /// Whether `id`'s SMC stamp is out of date: some covered guest page
    /// has been written since the block was translated. A stale handle
    /// reports `true` (its code is gone either way).
    pub fn smc_stale(&self, id: BlockId, mem: &GuestMem) -> bool {
        match self.get(id) {
            Some(b) => b.code_pages.iter().any(|&p| mem.page_gen(p << PAGE_SHIFT) > b.smc_gen),
            None => true,
        }
    }

    /// Patches the direct exit at host-instruction index `exit_idx` of
    /// block `from` to link directly to block `to`, and records the site
    /// on `to`'s incoming set so eviction can unpatch it.
    ///
    /// # Errors
    ///
    /// [`CacheError::Stale`] if either endpoint has been evicted;
    /// [`CacheError::NotDirectExit`] if the instruction at `exit_idx` is
    /// not a direct exit.
    pub fn chain(&mut self, from: BlockId, exit_idx: usize, to: BlockId) -> Result<(), CacheError> {
        if self.get(to).is_none() {
            return Err(CacheError::Stale(to));
        }
        let fb = self.get_mut(from).ok_or(CacheError::Stale(from))?;
        match fb.insts.get_mut(exit_idx) {
            Some(HInst::Exit(Exit::Direct { link, .. })) => *link = Some(to),
            _ => return Err(CacheError::NotDirectExit { id: from, exit_idx }),
        }
        self.stats.chains += 1;
        let tb = self.get_mut(to).expect("liveness checked above");
        tb.incoming.push((from, exit_idx as u32));
        Ok(())
    }

    /// Host instructions currently allocated (live + dead space).
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> CodeCacheStats {
        self.stats
    }

    /// Snapshot of occupancy, dead space, and lifecycle counters.
    pub fn health(&self) -> CacheHealth {
        CacheHealth {
            capacity: self.capacity,
            used: self.used,
            live_used: self.live_used,
            resident: self.map.len() as u32,
            evictions: self.stats.evictions,
            smc_evictions: self.stats.smc_evictions,
            unchains: self.stats.unchains,
            retranslations: self.stats.retranslations,
        }
    }

    /// Number of currently resident translations.
    pub fn resident(&self) -> usize {
        self.map.len()
    }
}

/// Guest page size shift shared with [`GuestMem`] (4 KiB pages).
const PAGE_SHIFT: u32 = 12;

/// Collects the guest pages a translation's code spans and the maximum
/// page write-generation over them. Each instruction is
/// over-approximated to [`darco_guest::exec::MAX_INST_LEN`] bytes; a
/// spurious page inclusion only makes invalidation more conservative,
/// never less safe.
pub(crate) fn smc_stamp(
    mem: &GuestMem,
    guest_pcs: impl IntoIterator<Item = u32>,
) -> (Vec<u32>, u64) {
    let span = darco_guest::exec::MAX_INST_LEN as u32 - 1;
    let mut pages: Vec<u32> = Vec::new();
    for pc in guest_pcs {
        for p in [pc >> PAGE_SHIFT, pc.saturating_add(span) >> PAGE_SHIFT] {
            if !pages.contains(&p) {
                pages.push(p);
            }
        }
    }
    let gen = pages.iter().map(|&p| mem.page_gen(p << PAGE_SHIFT)).max().unwrap_or(0);
    (pages, gen)
}

/// Whether any of `pages` has a write-generation newer than `gen` — the
/// pending-job variant of [`CodeCache::smc_stale`], used to invalidate a
/// background translation whose covered guest bytes were written between
/// enqueue and install.
pub(crate) fn pages_dirty(mem: &GuestMem, pages: &[u32], gen: u64) -> bool {
    pages.iter().any(|&p| mem.page_gen(p << PAGE_SHIFT) > gen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_block() -> Vec<HInst> {
        vec![HInst::Nop, HInst::Exit(Exit::Direct { guest_target: 0x200, link: None })]
    }

    /// `install` with the boilerplate arguments filled in.
    fn put(cc: &mut CodeCache, entry: u32, kind: BlockKind) -> Installed {
        let mem = GuestMem::new();
        cc.install(entry, tiny_block(), kind, 1, vec![], 1, vec![entry], &mem).expect("fits")
    }

    #[test]
    fn install_and_lookup() {
        let mut cc = CodeCache::new(100);
        let mem = GuestMem::new();
        let ins = cc
            .install(0x100, tiny_block(), BlockKind::Bb, 1, vec![], 3, vec![0x100], &mem)
            .unwrap();
        assert!(!ins.flushed);
        assert_eq!(cc.lookup(0x100), Some(ins.id));
        assert_eq!(cc.lookup(0x104), None);
        assert_eq!(cc.block(ins.id).unwrap().guest_len, 3);
        assert_eq!(cc.used(), 2);
    }

    #[test]
    fn install_compiles_templates() {
        let mut cc = CodeCache::new(100);
        let id = put(&mut cc, 0x100, BlockKind::Bb).id;
        let b = cc.block(id).unwrap();
        assert_eq!(b.templates.len(), b.insts.len());
        assert_eq!(b.templates[0].inst.pc, b.host_base);
        assert_eq!(b.templates[1].inst.pc, b.host_base + 4);
    }

    #[test]
    fn sbm_replaces_map_entry() {
        let mut cc = CodeCache::new(100);
        let bb = put(&mut cc, 0x100, BlockKind::Bb).id;
        let sb = put(&mut cc, 0x100, BlockKind::Sb).id;
        assert_ne!(bb, sb);
        assert_eq!(cc.lookup(0x100), Some(sb));
        // Under flush, the replaced block stays allocated as dead space.
        assert!(cc.get(bb).is_some());
        assert_eq!(cc.health().dead_space_ratio(), 0.5);
    }

    #[test]
    fn overflow_flushes() {
        let mut cc = CodeCache::new(5);
        put(&mut cc, 0x100, BlockKind::Bb);
        put(&mut cc, 0x200, BlockKind::Bb);
        // Third block exceeds 5 instructions: flush, then install.
        let ins = put(&mut cc, 0x300, BlockKind::Bb);
        assert!(ins.flushed);
        assert_eq!(cc.stats().flushes, 1);
        assert_eq!(cc.lookup(0x100), None, "flushed");
        assert_eq!(cc.resident(), 1);
    }

    #[test]
    fn flush_stales_outstanding_handles() {
        let mut cc = CodeCache::new(5);
        let a = put(&mut cc, 0x100, BlockKind::Bb).id;
        let b = put(&mut cc, 0x200, BlockKind::Bb).id;
        put(&mut cc, 0x300, BlockKind::Bb); // forces the flush
        assert!(cc.get(a).is_none());
        assert_eq!(cc.block(b).err(), Some(CacheError::Stale(b)));
        // Slot reuse must not resurrect the old handle.
        let c = put(&mut cc, 0x400, BlockKind::Bb).id;
        assert!(cc.get(c).is_some());
        assert!(cc.get(a).is_none());
    }

    #[test]
    fn oversized_translation_is_rejected() {
        for policy in [CachePolicy::Flush, CachePolicy::Fifo] {
            let mut cc = CodeCache::with_policy(4, policy);
            put(&mut cc, 0x100, BlockKind::Bb);
            let mem = GuestMem::new();
            let big: Vec<HInst> = (0..6).map(|_| HInst::Nop).collect();
            let err =
                cc.install(0x200, big, BlockKind::Bb, 5, vec![], 1, vec![0x200], &mem).unwrap_err();
            assert_eq!(err, CacheError::TooLarge { insts: 6, capacity: 4 });
            // The reject is clean: nothing was flushed or evicted, and
            // the resident block still runs.
            assert_eq!(cc.stats().flushes, 0);
            assert_eq!(cc.stats().evictions, 0);
            assert!(cc.lookup(0x100).is_some());
            assert!(cc.used() <= 4, "bound never exceeded");
        }
    }

    #[test]
    fn chaining_patches_direct_exits() {
        let mut cc = CodeCache::new(100);
        let a = put(&mut cc, 0x100, BlockKind::Bb).id;
        let b = put(&mut cc, 0x200, BlockKind::Bb).id;
        cc.chain(a, 1, b).unwrap();
        match cc.block(a).unwrap().insts[1] {
            HInst::Exit(Exit::Direct { link, .. }) => assert_eq!(link, Some(b)),
            ref o => panic!("unexpected {o:?}"),
        }
        assert_eq!(cc.stats().chains, 1);
        assert_eq!(cc.block(b).unwrap().incoming, vec![(a, 1)]);
    }

    #[test]
    fn chaining_wrong_instruction_errors() {
        let mut cc = CodeCache::new(100);
        let a = put(&mut cc, 0x100, BlockKind::Bb).id;
        // Index 0 is a Nop, not a direct exit.
        assert_eq!(cc.chain(a, 0, a), Err(CacheError::NotDirectExit { id: a, exit_idx: 0 }));
        // Out-of-range index reports the same typed error, not a panic.
        assert_eq!(cc.chain(a, 99, a), Err(CacheError::NotDirectExit { id: a, exit_idx: 99 }));
    }

    #[test]
    fn chaining_stale_endpoints_error() {
        let mut cc = CodeCache::with_policy(100, CachePolicy::Fifo);
        let a = put(&mut cc, 0x100, BlockKind::Bb).id;
        let b = put(&mut cc, 0x200, BlockKind::Bb).id;
        cc.evict_block(b, EvictCause::Capacity);
        assert_eq!(cc.chain(a, 1, b), Err(CacheError::Stale(b)));
        assert_eq!(cc.chain(b, 1, a), Err(CacheError::Stale(b)));
    }

    #[test]
    fn host_bases_are_disjoint() {
        let mut cc = CodeCache::new(100);
        let a = put(&mut cc, 0x100, BlockKind::Bb).id;
        let b = put(&mut cc, 0x200, BlockKind::Bb).id;
        let ba = cc.block(a).unwrap();
        let bb = cc.block(b).unwrap();
        assert!(bb.host_base >= ba.host_base + 4 * ba.insts.len() as u64);
    }

    #[test]
    fn fifo_evicts_oldest_and_unlinks_incoming_chains() {
        // Capacity 6 holds three 2-inst blocks.
        let mut cc = CodeCache::with_policy(6, CachePolicy::Fifo);
        let a = put(&mut cc, 0x100, BlockKind::Bb).id;
        let b = put(&mut cc, 0x200, BlockKind::Bb).id;
        let c = put(&mut cc, 0x300, BlockKind::Bb).id;
        cc.chain(b, 1, a).unwrap(); // b's exit jumps into a
        let ins = put(&mut cc, 0x400, BlockKind::Bb); // overflow: evict a
        assert_eq!(ins.evicted.len(), 1);
        assert_eq!(ins.evicted[0].entry, 0x100);
        assert_eq!(ins.evicted[0].id, a);
        assert!(cc.get(a).is_none(), "oldest evicted");
        assert!(cc.get(b).is_some() && cc.get(c).is_some(), "younger blocks survive");
        assert_eq!(cc.stats().flushes, 0, "fifo never flushes");
        // The chain into the victim was unpatched, at the right site.
        let bb = cc.block(b).unwrap();
        match bb.insts[1] {
            HInst::Exit(Exit::Direct { link, .. }) => assert_eq!(link, None, "unlinked"),
            ref o => panic!("unexpected {o:?}"),
        }
        assert_eq!(ins.evicted[0].unchained, vec![bb.host_base + 4]);
        assert_eq!(cc.stats().unchains, 1);
        assert!(cc.used() <= 6);
    }

    #[test]
    fn fifo_replacement_reclaims_space_and_addresses() {
        let mut cc = CodeCache::with_policy(8, CachePolicy::Fifo);
        let bb = put(&mut cc, 0x100, BlockKind::Bb);
        let old_base = cc.block(bb.id).unwrap().host_base;
        let sb = put(&mut cc, 0x100, BlockKind::Sb);
        assert_eq!(sb.evicted.len(), 1, "replaced block evicted eagerly");
        assert!(cc.get(bb.id).is_none());
        assert_eq!(cc.block(sb.id).unwrap().host_base, old_base, "address reused");
        assert_eq!(cc.used(), 2, "no dead space under fifo");
        assert_eq!(cc.health().dead_space_ratio(), 0.0);
    }

    #[test]
    fn fifo_free_extents_coalesce() {
        let mut cc = CodeCache::with_policy(6, CachePolicy::Fifo);
        let a = put(&mut cc, 0x100, BlockKind::Bb).id;
        let b = put(&mut cc, 0x200, BlockKind::Bb).id;
        put(&mut cc, 0x300, BlockKind::Bb);
        // Evict the two adjacent oldest blocks; their extents coalesce
        // into one 16-byte range that can hold a 4-inst block.
        cc.evict_block(a, EvictCause::Capacity);
        cc.evict_block(b, EvictCause::Capacity);
        let mem = GuestMem::new();
        let four: Vec<HInst> = (0..4).map(|_| HInst::Nop).collect();
        let ins = cc.install(0x400, four, BlockKind::Bb, 3, vec![], 1, vec![0x400], &mem).unwrap();
        assert_eq!(cc.block(ins.id).unwrap().host_base, CODE_CACHE_BASE, "coalesced head reused");
    }

    #[test]
    fn retranslation_counting() {
        let mut cc = CodeCache::with_policy(4, CachePolicy::Fifo);
        put(&mut cc, 0x100, BlockKind::Bb);
        put(&mut cc, 0x200, BlockKind::Bb); // fills the cache
        put(&mut cc, 0x300, BlockKind::Bb); // capacity-evicts 0x100
        assert_eq!(cc.stats().retranslations, 0);
        put(&mut cc, 0x100, BlockKind::Bb); // re-translation of 0x100
        assert_eq!(cc.stats().retranslations, 1);
        // Flush-policy flushes count re-installs too.
        let mut fc = CodeCache::new(4);
        put(&mut fc, 0x100, BlockKind::Bb);
        put(&mut fc, 0x200, BlockKind::Bb); // flush
        put(&mut fc, 0x100, BlockKind::Bb); // re-translation after flush
        assert_eq!(fc.stats().retranslations, 1);
        // A same-entry replacement (promotion) is deliberate new work,
        // not lifecycle churn: the eager fifo eviction it triggers must
        // not make the install count as a retranslation.
        let mut pc = CodeCache::with_policy(8, CachePolicy::Fifo);
        put(&mut pc, 0x100, BlockKind::Bb);
        put(&mut pc, 0x100, BlockKind::Sb); // replaces in place
        assert_eq!(pc.stats().evictions, 1, "replacement evicts eagerly");
        assert_eq!(pc.stats().retranslations, 0, "but is not a retranslation");
    }

    #[test]
    fn smc_stamp_detects_code_page_writes() {
        let mut mem = GuestMem::new();
        mem.write_u32(0x1000, 0xDEAD_BEEF);
        let mut cc = CodeCache::new(100);
        let id = cc
            .install(0x1000, tiny_block(), BlockKind::Bb, 1, vec![], 1, vec![0x1000], &mem)
            .unwrap()
            .id;
        assert!(!cc.smc_stale(id, &mem), "fresh stamp");
        mem.write_u8(0x0200_0000, 7); // unrelated page
        assert!(!cc.smc_stale(id, &mem), "writes elsewhere don't invalidate");
        mem.write_u8(0x1002, 7); // inside the covered page
        assert!(cc.smc_stale(id, &mem), "covered-page write invalidates");
        let e = cc.evict_block(id, EvictCause::Smc).unwrap();
        assert!(e.smc);
        assert_eq!(cc.stats().smc_evictions, 1);
        assert!(cc.smc_stale(id, &mem), "stale handle reports stale");
    }

    /// The acceptance property: over randomized install/evict/chain/
    /// flush sequences, every handle ever issued either still names a
    /// live block with the same guest entry it was issued for, or is
    /// detectably stale — and every chain link held by a live block
    /// points to a live block (eager unlinking), so a dispatch through
    /// any of them lands on live same-entry code or exits to the
    /// software layer. No operation panics.
    #[test]
    fn property_randomized_lifecycle_never_misdispatches() {
        let mut rng = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            // xorshift64*
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for policy in [CachePolicy::Flush, CachePolicy::Fifo] {
            let mut cc = CodeCache::with_policy(16, policy);
            let mem = GuestMem::new();
            // Every handle ever issued, with the entry it was issued for.
            let mut issued: Vec<(BlockId, u32)> = Vec::new();
            for _ in 0..2_000 {
                match next() % 10 {
                    0..=4 => {
                        let entry = 0x100 * (1 + (next() % 12) as u32);
                        let n = 1 + (next() % 4) as usize;
                        let mut insts: Vec<HInst> = vec![HInst::Nop; n];
                        insts.push(HInst::Exit(Exit::Direct { guest_target: 0x100, link: None }));
                        if let Ok(ins) = cc.install(
                            entry,
                            insts,
                            BlockKind::Bb,
                            n as u32,
                            vec![],
                            1,
                            vec![entry],
                            &mem,
                        ) {
                            issued.push((ins.id, entry));
                        }
                    }
                    5..=6 => {
                        if !issued.is_empty() {
                            let (id, _) = issued[(next() % issued.len() as u64) as usize];
                            cc.evict_block(id, EvictCause::Capacity);
                        }
                    }
                    7..=8 => {
                        if issued.len() >= 2 {
                            let (from, _) = issued[(next() % issued.len() as u64) as usize];
                            let (to, _) = issued[(next() % issued.len() as u64) as usize];
                            let exit_idx =
                                cc.get(from).map_or(0, |b| b.insts.len().saturating_sub(1));
                            let _ = cc.chain(from, exit_idx, to);
                        }
                    }
                    _ => {
                        if next() % 8 == 0 {
                            cc.flush();
                        }
                    }
                }
                // Invariants after every operation.
                for &(id, entry) in &issued {
                    if let Some(b) = cc.get(id) {
                        assert_eq!(b.guest_entry, entry, "handle resolved to wrong entry");
                    }
                }
                let live: Vec<BlockId> = cc.blocks().map(|(id, _)| id).collect();
                for &id in &live {
                    let b = cc.get(id).unwrap();
                    for inst in &b.insts {
                        if let HInst::Exit(Exit::Direct { link: Some(to), .. }) = inst {
                            assert!(
                                cc.get(*to).is_some(),
                                "live block holds a chain link into evicted code"
                            );
                        }
                    }
                    if let Some(r) = b.redirect {
                        // Redirects may go stale; they must at least be
                        // *detectably* stale (never resolve to a
                        // different entry).
                        if let Some(rb) = cc.get(r) {
                            assert_eq!(rb.guest_entry, b.guest_entry);
                        }
                    }
                }
                assert!(cc.used() <= 16, "instruction bound violated");
            }
        }
    }
}
