//! Software-layer configuration.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the Translation Optimization Layer.
///
/// Defaults are the paper's (Sec. III-A): promotion thresholds
/// `IM/BBth = 5` and `BB/SBth = 10_000`. The optimization-pass switches
/// exist for the ablation study in DESIGN.md §8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TolConfig {
    /// Interpreter-to-BBM promotion threshold: a branch target is
    /// translated once it has been reached this many times.
    pub im_bb_threshold: u32,
    /// BBM-to-SBM promotion threshold: a translated basic block is
    /// promoted to a superblock once it has executed this many times.
    pub bb_sb_threshold: u32,
    /// Maximum number of basic blocks merged into one superblock.
    pub sb_max_bbs: u32,
    /// Maximum guest instructions in one superblock.
    pub sb_max_insts: u32,
    /// Minimum profiled edge bias (`taken / total`) required to keep
    /// growing a superblock along an edge.
    pub sb_edge_bias: f64,
    /// Code cache capacity in host instructions; what happens on
    /// overflow is decided by [`TolConfig::cache_policy`].
    pub code_cache_capacity: u32,
    /// Code-cache overflow policy: whole-cache flush (the default, cf.
    /// Hazelwood & Smith) or partial FIFO eviction with space reuse and
    /// selective unchaining (`--cache-policy fifo`).
    pub cache_policy: crate::codecache::CachePolicy,
    /// IBTC entries (direct-mapped, power of two).
    pub ibtc_entries: u32,
    /// Enable chaining (linking) of translations.
    pub chaining: bool,
    /// Apply the BBM peephole pass (dead-flag elision is always on; this
    /// controls constant propagation inside the basic block).
    pub bbm_peephole: bool,
    /// SBM pass switches, for ablations.
    pub opt_const_prop: bool,
    /// Constant folding.
    pub opt_const_fold: bool,
    /// Common-subexpression elimination.
    pub opt_cse: bool,
    /// Dead-code elimination.
    pub opt_dce: bool,
    /// List scheduling for the 2-issue in-order back-end.
    pub opt_schedule: bool,
    /// Analysis-driven dead-flag elimination (DESIGN.md §13). When on,
    /// the translator materializes a `FlagsArith` for every flag-writing
    /// guest instruction and the liveness-driven `deadflags` pass
    /// deletes the dead ones — converging to byte-identical host code;
    /// when off, the translator's intrinsic elision is used unchanged
    /// (the oracle configuration).
    pub opt_deadflags: bool,
    /// Known-bits/range simplification (`rangesimp`): fold statically
    /// decided `BrFlags`, rewrite constant-valued ALU ops to `li`, and
    /// reduce redundant masks to copies.
    pub opt_rangesimp: bool,
    /// Insert next-line software prefetches into superblocks (the first
    /// Sec. III-E recommendation; off by default as in the paper).
    pub opt_sw_prefetch: bool,
    /// Speculatively resolve indirect-branch exits by inline-comparing
    /// against the last observed target (Sec. III-E, cf. McFarlin &
    /// Zilles' "bungee jumps"; off by default as in the paper).
    pub speculate_indirect: bool,
    /// Scatter translations across the code cache instead of packing
    /// them sequentially — the *bad* placement policy, used to quantify
    /// the paper's code-placement recommendation (Sec. III-E).
    pub codecache_scattered: bool,
    /// Verify every optimization pass (structural invariants plus
    /// translation validation) and discard miscompiled blocks. Always on
    /// in debug builds regardless of this switch; this opts release
    /// builds in (`darco verify` sets it).
    pub verify: bool,
    /// Capacity of the retirement [`EventBuffer`]: how many
    /// [`HostEvent`]s are staged before a batch is delivered to the
    /// sink. `1` degenerates to per-instruction delivery (the old
    /// closure-sink behavior, kept reachable for benchmarking).
    ///
    /// [`EventBuffer`]: darco_host::events::EventBuffer
    /// [`HostEvent`]: darco_host::events::HostEvent
    pub event_batch: usize,
    /// Retire translated code and interpreter cost streams through
    /// precompiled templates ([`RetireTemplate`] per block instruction,
    /// per-shape interpreter emission templates) instead of re-deriving
    /// every record on the hot path. `false` keeps the straight
    /// re-derivation paths reachable as an oracle for equivalence tests
    /// and benchmarks; the emitted streams are bit-identical either way.
    ///
    /// [`RetireTemplate`]: darco_host::template::RetireTemplate
    pub retire_templates: bool,
    /// Cache decoded guest instructions in the interpreter (direct-mapped
    /// by guest pc, invalidated by the [`GuestMem`] per-page write
    /// generation), so hot not-yet-translated loops skip `decode()`.
    /// Purely a simulator-speed switch: the emitted stream is unchanged.
    ///
    /// [`GuestMem`]: darco_guest::GuestMem
    pub interp_decode_cache: bool,
    /// Background translation workers: the Rust-side compile work of a
    /// BBM/SBM translation (decode → IR → analysis → optimization →
    /// verification → emission) runs on this many pool threads,
    /// overlapped with emulation, and joined at the same deterministic
    /// simulated install point the synchronous path uses — so every
    /// serialized report is byte-identical across settings (DESIGN.md
    /// §15). `0` disables the pool entirely (the synchronous oracle).
    /// Defaults to the host's available parallelism. Purely a
    /// wall-clock switch.
    #[serde(default = "default_translate_workers")]
    pub translate_workers: usize,
    /// Collapse steady-state translated-block retirement into one
    /// [`HostEvent::BlockRetire`] macro-event per execution: once a
    /// block has executed [`MEMO_STEADY`] times, the engine collects its
    /// retired stream, proves it identical to the previous execution's,
    /// and emits a single macro-event carrying the shared stream instead
    /// of per-instruction events (DESIGN.md §16). Consumers expand the
    /// macro-event (or memoize its timing), so every serialized report
    /// is byte-identical either way. `false` keeps the always-available
    /// per-instruction oracle. Purely a simulator-speed switch.
    ///
    /// [`HostEvent::BlockRetire`]: darco_host::events::HostEvent::BlockRetire
    /// [`MEMO_STEADY`]: crate::engine::Tol::MEMO_STEADY
    #[serde(default = "default_block_memo")]
    pub block_memo: bool,
    /// Guest-layer fast path: pre-decoded micro-op buffers with lazy
    /// flag materialization in the interpreter ([`ExecCtx`]), plus the
    /// width-native [`GuestMem`] access path with its L0 page-pointer
    /// cache. The byte-wise decode-per-step path stays reachable as the
    /// always-available oracle (`false`); architectural state, memory
    /// and every serialized report are byte-identical either way.
    /// Purely a simulator-speed switch (DESIGN.md §17).
    ///
    /// [`ExecCtx`]: darco_guest::uops::ExecCtx
    /// [`GuestMem`]: darco_guest::GuestMem
    #[serde(default = "default_guest_fast_path")]
    pub guest_fast_path: bool,
}

/// Serde default for [`TolConfig::guest_fast_path`] (profiles written
/// before the fast path existed deserialize with it enabled).
#[allow(dead_code)] // consumed via the serde attribute with real serde
fn default_guest_fast_path() -> bool {
    true
}

/// Serde default for [`TolConfig::block_memo`] (profiles written before
/// macro-events existed deserialize with them enabled).
#[allow(dead_code)] // consumed via the serde attribute with real serde
fn default_block_memo() -> bool {
    true
}

/// Serde default for [`TolConfig::translate_workers`] (profiles written
/// before the pool existed deserialize to the pool default).
fn default_translate_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Default for TolConfig {
    fn default() -> TolConfig {
        TolConfig {
            im_bb_threshold: 5,
            bb_sb_threshold: 10_000,
            sb_max_bbs: 8,
            sb_max_insts: 128,
            sb_edge_bias: 0.6,
            code_cache_capacity: 1 << 20,
            cache_policy: crate::codecache::CachePolicy::Flush,
            ibtc_entries: 512,
            chaining: true,
            bbm_peephole: true,
            opt_const_prop: true,
            opt_const_fold: true,
            opt_cse: true,
            opt_dce: true,
            opt_schedule: true,
            opt_deadflags: true,
            opt_rangesimp: true,
            opt_sw_prefetch: false,
            speculate_indirect: false,
            codecache_scattered: false,
            verify: false,
            event_batch: darco_host::events::EVENT_BATCH,
            retire_templates: true,
            interp_decode_cache: true,
            translate_workers: default_translate_workers(),
            block_memo: true,
            guest_fast_path: true,
        }
    }
}

impl TolConfig {
    /// Paper defaults with all SBM optimizations disabled (translation
    /// only), for ablations.
    pub fn no_optimization() -> TolConfig {
        TolConfig {
            opt_const_prop: false,
            opt_const_fold: false,
            opt_cse: false,
            opt_dce: false,
            opt_schedule: false,
            opt_deadflags: false,
            opt_rangesimp: false,
            bbm_peephole: false,
            ..TolConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds() {
        let c = TolConfig::default();
        assert_eq!(c.im_bb_threshold, 5);
        assert_eq!(c.bb_sb_threshold, 10_000);
        assert!(c.chaining);
    }

    #[test]
    fn ablation_config() {
        let c = TolConfig::no_optimization();
        assert!(!c.opt_cse && !c.opt_schedule && !c.bbm_peephole);
        assert_eq!(c.im_bb_threshold, 5, "thresholds unchanged");
    }
}
