//! Structural invariant checks run after every optimization pass.
//!
//! Each pass has a characteristic *shape* of legal transformation
//! (rewriting operands in place, tombstoning dead code, inserting
//! prefetches, permuting within dependence order), and each shape implies
//! cheap syntactic invariants that catch whole classes of pass bugs
//! without reasoning about values. Value-level equivalence is the
//! translation validator's job ([`super::tv`]).

use super::dataflow::Dataflow;
use super::{fail, PassKind, VerifyFailure};
use crate::analysis::{knownbits, liveness};
use crate::ir::{
    IrBlock, IrFreg, IrInst, IrReg, RegMap, FSCRATCH_BASE, FSCRATCH_END, SCRATCH_BASE, SCRATCH_END,
};
use std::collections::{HashMap, HashSet};

/// Checks block well-formedness: branches target existing stubs, stub
/// metadata is parallel, virtual registers are single-assignment, and no
/// virtual is read before (or without) its definition.
pub fn check_wellformed(pass: &'static str, block: &IrBlock) -> Result<(), Box<VerifyFailure>> {
    if block.stub_guest_counts.len() != block.stubs.len() {
        return fail(
            pass,
            "stub metadata parallel",
            format!(
                "{} stubs but {} stub_guest_counts",
                block.stubs.len(),
                block.stub_guest_counts.len()
            ),
            block,
            block,
        );
    }
    let mut defined_int: HashSet<u32> = HashSet::new();
    let mut defined_fp: HashSet<u32> = HashSet::new();
    for (i, op) in block.ops.iter().enumerate() {
        if op.inst == IrInst::Nop {
            continue;
        }
        if let IrInst::BrFlags { stub, .. } = op.inst {
            if stub as usize >= block.stubs.len() {
                return fail(
                    pass,
                    "branch targets an existing stub",
                    format!("op {i} branches to stub{stub} of {}", block.stubs.len()),
                    block,
                    block,
                );
            }
        }
        for s in op.inst.srcs().into_iter().flatten() {
            if let IrReg::Virt(v) = s {
                if !defined_int.contains(&v) {
                    return fail(
                        pass,
                        "no use of an undefined register",
                        format!("op {i} `{}` reads t{v} before any definition", op.inst),
                        block,
                        block,
                    );
                }
            }
        }
        for s in op.inst.fsrcs().into_iter().flatten() {
            if let IrFreg::Virt(v) = s {
                if !defined_fp.contains(&v) {
                    return fail(
                        pass,
                        "no use of an undefined register",
                        format!("op {i} `{}` reads ft{v} before any definition", op.inst),
                        block,
                        block,
                    );
                }
            }
        }
        if let Some(IrReg::Virt(v)) = op.inst.dst() {
            if !defined_int.insert(v) {
                return fail(
                    pass,
                    "virtual registers are single-assignment",
                    format!("op {i} `{}` redefines t{v}", op.inst),
                    block,
                    block,
                );
            }
        }
        if let Some(IrFreg::Virt(v)) = op.inst.fdst() {
            if !defined_fp.insert(v) {
                return fail(
                    pass,
                    "virtual registers are single-assignment",
                    format!("op {i} `{}` redefines ft{v}", op.inst),
                    block,
                    block,
                );
            }
        }
    }
    Ok(())
}

/// Invariants shared by every pass: the exit structure of the block is
/// never touched by body transformations.
fn check_exits(
    pass: &'static str,
    pre: &IrBlock,
    post: &IrBlock,
) -> Result<(), Box<VerifyFailure>> {
    if pre.stubs != post.stubs
        || pre.stub_guest_counts != post.stub_guest_counts
        || pre.fallthrough != post.fallthrough
        || pre.guest_len != post.guest_len
    {
        return fail(
            pass,
            "exit structure unchanged",
            "stubs/fallthrough/guest_len differ".into(),
            pre,
            post,
        );
    }
    Ok(())
}

/// Dispatches the per-shape check for `kind`.
pub fn check_transform(
    pass: &'static str,
    kind: PassKind,
    pre: &IrBlock,
    post: &IrBlock,
) -> Result<(), Box<VerifyFailure>> {
    check_exits(pass, pre, post)?;
    check_wellformed(pass, post)?;
    match kind {
        PassKind::Rewrite => check_rewrite(pass, pre, post),
        PassKind::Dce => check_dce(pass, pre, post),
        PassKind::Insert => check_insert(pass, pre, post),
        PassKind::Schedule => check_schedule(pass, pre, post),
        PassKind::DeadFlags => check_deadflags(pass, pre, post),
        PassKind::BranchFold => check_branchfold(pass, pre, post),
    }
}

/// How many non-`Nop` ops in `block` read integer register `r`.
fn int_uses(block: &IrBlock, r: IrReg) -> usize {
    block
        .ops
        .iter()
        .filter(|o| o.inst != IrInst::Nop)
        .flat_map(|o| o.inst.srcs().into_iter().flatten())
        .filter(|&s| s == r)
        .count()
}

/// Shared prefix for the analysis-driven passes: same length and
/// per-index guest provenance (they only replace `.inst` in place).
fn check_same_shape(
    pass: &'static str,
    pre: &IrBlock,
    post: &IrBlock,
) -> Result<(), Box<VerifyFailure>> {
    if pre.ops.len() != post.ops.len() {
        return fail(
            pass,
            "pass keeps instruction count",
            format!("{} ops became {}", pre.ops.len(), post.ops.len()),
            pre,
            post,
        );
    }
    for (i, (a, b)) in pre.ops.iter().zip(&post.ops).enumerate() {
        if a.guest_idx != b.guest_idx {
            return fail(
                pass,
                "guest provenance preserved",
                format!("op {i} guest_idx {} became {}", a.guest_idx, b.guest_idx),
                pre,
                post,
            );
        }
    }
    Ok(())
}

/// Dead-flag elimination may (a) tombstone a `FlagsArith` whose flags
/// word is dead — the checker recomputes the backward liveness on the
/// *pre* block independently of the pass — (b) tombstone a pure op
/// defining a virtual no surviving op reads, and (c) refold a staged
/// immediate (`li t, imm` + `alu rd, ra, t`) into the matching `AluI`.
fn check_deadflags(
    pass: &'static str,
    pre: &IrBlock,
    post: &IrBlock,
) -> Result<(), Box<VerifyFailure>> {
    check_same_shape(pass, pre, post)?;
    let live = liveness::facts(pre);
    for (i, (a, b)) in pre.ops.iter().zip(&post.ops).enumerate() {
        if a == b {
            continue;
        }
        match (a.inst, b.inst) {
            (IrInst::FlagsArith { rd, .. }, IrInst::Nop)
                if !live[i + 1].contains_int(rd) || no_virt_reader(post, rd) => {}
            (inst, IrInst::Nop)
                if !inst.has_side_effect()
                    && inst.fdst().is_none()
                    && matches!(inst.dst(), Some(IrReg::Virt(_)))
                    && int_uses(post, inst.dst().unwrap()) == 0 => {}
            (
                IrInst::Alu { op: oa, rd: ra_d, ra, rb: rb @ IrReg::Virt(_) },
                IrInst::AluI { op: ob, rd: rb_d, ra: ra2, imm },
            ) if oa == ob && ra_d == rb_d && ra == ra2 && int_uses(post, rb) == 0 => {
                // The immediate must be the one the (now deleted) `li`
                // staged into the virtual.
                let li_imm = pre.ops.iter().find_map(|o| match o.inst {
                    IrInst::Li { rd, imm } if rd == rb => Some(imm),
                    _ => None,
                });
                if li_imm.map(|v| v as u32 as i32) != Some(imm) {
                    return fail(
                        pass,
                        "refolded immediate matches the staged li",
                        format!("op {i}: `{}` became `{}` (staged {li_imm:?})", a.inst, b.inst),
                        pre,
                        post,
                    );
                }
            }
            _ => {
                return fail(
                    pass,
                    "deadflags only deletes dead flag defs and their feeders",
                    format!("op {i}: `{}` became `{}`", a.inst, b.inst),
                    pre,
                    post,
                );
            }
        }
    }
    Ok(())
}

/// Whether killed flag destination `rd` is a virtual with no reader
/// left in `post` (a dead virtual flags def needs no liveness proof).
fn no_virt_reader(post: &IrBlock, rd: IrReg) -> bool {
    matches!(rd, IrReg::Virt(_)) && int_uses(post, rd) == 0
}

/// Branch folding may delete a branch the known-bits analysis — here
/// recomputed independently on the *pre* block — decides never taken,
/// tombstone everything after a branch decided always taken, rewrite an
/// ALU op whose result fact is a single constant into `li`, and reduce
/// a mask of known-clear bits to a copy.
fn check_branchfold(
    pass: &'static str,
    pre: &IrBlock,
    post: &IrBlock,
) -> Result<(), Box<VerifyFailure>> {
    check_same_shape(pass, pre, post)?;
    let facts = knownbits::facts(pre);
    let decide_at = |i: usize| match pre.ops[i].inst {
        IrInst::BrFlags { cond, flags, .. } => {
            let f = facts[i].get(flags).unwrap_or_else(knownbits::AbsVal::top);
            knownbits::decide(cond, &f)
        }
        _ => None,
    };
    let mut always_cut: Option<usize> = None;
    for (i, (a, b)) in pre.ops.iter().zip(&post.ops).enumerate() {
        if a == b {
            if always_cut.is_none() && decide_at(i) == Some(true) {
                always_cut = Some(i);
            }
            continue;
        }
        if always_cut.is_some_and(|c| c < i) {
            if b.inst == IrInst::Nop {
                continue;
            }
            return fail(
                pass,
                "unreachable tail only tombstoned",
                format!("op {i}: `{}` became `{}` after the terminal branch", a.inst, b.inst),
                pre,
                post,
            );
        }
        match (a.inst, b.inst) {
            (IrInst::BrFlags { .. }, IrInst::Nop) if decide_at(i) == Some(false) => {}
            (IrInst::Alu { rd, .. }, IrInst::Li { rd: rd2, imm })
            | (IrInst::AluI { rd, .. }, IrInst::Li { rd: rd2, imm })
                if rd == rd2
                    && facts[i + 1].get(rd).and_then(|v| v.as_const()) == Some(imm as u32)
                    && u32::try_from(imm).is_ok() => {}
            (
                IrInst::AluI { op: op_a, rd, ra, imm: m },
                IrInst::AluI { op: op_b, rd: rd2, ra: ra2, imm: 0 },
            ) if op_a == darco_host::HAluOp::And
                && op_b == darco_host::HAluOp::Or
                && rd == rd2
                && ra == ra2
                && !facts[i].get(ra).unwrap_or_else(knownbits::AbsVal::top).zeros & !(m as u32)
                    == 0 => {}
            _ => {
                return fail(
                    pass,
                    "branch folds are justified by recomputed facts",
                    format!("op {i}: `{}` became `{}`", a.inst, b.inst),
                    pre,
                    post,
                );
            }
        }
    }
    Ok(())
}

/// A rewriting pass (constant propagation, CSE) may change how a value is
/// computed but not *which* architectural slot it lands in, and it may
/// never create, delete or reorder instructions or weaken side effects.
fn check_rewrite(
    pass: &'static str,
    pre: &IrBlock,
    post: &IrBlock,
) -> Result<(), Box<VerifyFailure>> {
    if pre.ops.len() != post.ops.len() {
        return fail(
            pass,
            "rewrite keeps instruction count",
            format!("{} ops became {}", pre.ops.len(), post.ops.len()),
            pre,
            post,
        );
    }
    for (i, (a, b)) in pre.ops.iter().zip(&post.ops).enumerate() {
        if a.guest_idx != b.guest_idx {
            return fail(
                pass,
                "guest provenance preserved",
                format!("op {i} guest_idx {} became {}", a.guest_idx, b.guest_idx),
                pre,
                post,
            );
        }
        if a.inst.dst() != b.inst.dst() || a.inst.fdst() != b.inst.fdst() {
            return fail(
                pass,
                "rewrite preserves destinations",
                format!("op {i}: `{}` became `{}`", a.inst, b.inst),
                pre,
                post,
            );
        }
        match (a.inst, b.inst) {
            (IrInst::St { width: wa, .. }, IrInst::St { width: wb, .. }) if wa == wb => {}
            (IrInst::St { .. }, _) => {
                return fail(
                    pass,
                    "side-effecting instructions never removed",
                    format!("op {i}: store `{}` became `{}`", a.inst, b.inst),
                    pre,
                    post,
                );
            }
            (IrInst::FSt { .. }, IrInst::FSt { .. }) => {}
            (IrInst::FSt { .. }, _) => {
                return fail(
                    pass,
                    "side-effecting instructions never removed",
                    format!("op {i}: FP store `{}` became `{}`", a.inst, b.inst),
                    pre,
                    post,
                );
            }
            (IrInst::Prefetch { .. }, IrInst::Prefetch { .. }) => {}
            (IrInst::Prefetch { .. }, _) => {
                return fail(
                    pass,
                    "side-effecting instructions never removed",
                    format!("op {i}: prefetch `{}` became `{}`", a.inst, b.inst),
                    pre,
                    post,
                );
            }
            (
                IrInst::BrFlags { cond: ca, stub: sa, .. },
                IrInst::BrFlags { cond: cb, stub: sb, .. },
            ) if ca == cb && sa == sb => {}
            (IrInst::BrFlags { .. }, _) => {
                return fail(
                    pass,
                    "branches stay terminal and intact",
                    format!("op {i}: branch `{}` became `{}`", a.inst, b.inst),
                    pre,
                    post,
                );
            }
            (IrInst::Nop, IrInst::Nop) => {}
            (IrInst::Nop, _) => {
                return fail(
                    pass,
                    "rewrite keeps instruction count",
                    format!("op {i}: Nop resurrected as `{}`", b.inst),
                    pre,
                    post,
                );
            }
            _ => {}
        }
    }
    Ok(())
}

/// DCE may only replace an instruction with a `Nop` tombstone, and only
/// when it has no side effect, writes a *virtual* (never a pinned guest
/// register), and that virtual is dead downstream.
fn check_dce(pass: &'static str, pre: &IrBlock, post: &IrBlock) -> Result<(), Box<VerifyFailure>> {
    if pre.ops.len() != post.ops.len() {
        return fail(
            pass,
            "DCE only tombstones",
            format!("{} ops became {}", pre.ops.len(), post.ops.len()),
            pre,
            post,
        );
    }
    let post_df = Dataflow::analyze(post);
    for (i, (a, b)) in pre.ops.iter().zip(&post.ops).enumerate() {
        if a == b {
            continue;
        }
        if b.inst != IrInst::Nop {
            return fail(
                pass,
                "DCE only tombstones",
                format!("op {i}: `{}` became `{}`", a.inst, b.inst),
                pre,
                post,
            );
        }
        if a.inst.has_side_effect() {
            return fail(
                pass,
                "side-effecting instructions never removed",
                format!("op {i}: removed `{}`", a.inst),
                pre,
                post,
            );
        }
        match (a.inst.dst(), a.inst.fdst()) {
            (Some(IrReg::Phys(r)), _) => {
                return fail(
                    pass,
                    "pinned guest registers never killed",
                    format!("op {i}: removed `{}` writing pinned r{}", a.inst, r.0),
                    pre,
                    post,
                );
            }
            (_, Some(IrFreg::Phys(r))) => {
                return fail(
                    pass,
                    "pinned guest registers never killed",
                    format!("op {i}: removed `{}` writing pinned f{}", a.inst, r.0),
                    pre,
                    post,
                );
            }
            (Some(IrReg::Virt(v)), _) if post_df.int_live_after(v, i) => {
                return fail(
                    pass,
                    "no use of a dead-killed register",
                    format!("op {i}: removed `{}` but t{v} is still read later", a.inst),
                    pre,
                    post,
                );
            }
            (_, Some(IrFreg::Virt(v))) if post_df.fp_live_after(v, i) => {
                return fail(
                    pass,
                    "no use of a dead-killed register",
                    format!("op {i}: removed `{}` but ft{v} is still read later", a.inst),
                    pre,
                    post,
                );
            }
            _ => {}
        }
    }
    Ok(())
}

/// An inserting pass (software prefetching) may add `Prefetch`
/// instructions but must leave the original sequence untouched.
fn check_insert(
    pass: &'static str,
    pre: &IrBlock,
    post: &IrBlock,
) -> Result<(), Box<VerifyFailure>> {
    let kept: Vec<_> =
        post.ops.iter().filter(|o| !matches!(o.inst, IrInst::Prefetch { .. })).collect();
    let orig: Vec<_> =
        pre.ops.iter().filter(|o| !matches!(o.inst, IrInst::Prefetch { .. })).collect();
    if kept.len() != orig.len() || kept.iter().zip(&orig).any(|(a, b)| a != b) {
        return fail(
            pass,
            "insertion leaves existing code untouched",
            "post minus prefetches differs from pre".into(),
            pre,
            post,
        );
    }
    Ok(())
}

/// Identity of an op for permutation matching; duplicates are
/// disambiguated by occurrence order, which is sound because identical
/// instructions are interchangeable.
type OpKey = (IrInst, u32);

/// Scheduling must be a permutation of the live instructions that keeps
/// every data and memory dependence in order and never moves code across
/// a side exit.
fn check_schedule(
    pass: &'static str,
    pre: &IrBlock,
    post: &IrBlock,
) -> Result<(), Box<VerifyFailure>> {
    let live: Vec<_> = pre.ops.iter().filter(|o| o.inst != IrInst::Nop).copied().collect();
    if post.ops.iter().any(|o| o.inst == IrInst::Nop) {
        return fail(
            pass,
            "scheduling drops tombstones",
            "Nop survived scheduling".into(),
            pre,
            post,
        );
    }
    if live.len() != post.ops.len() {
        return fail(
            pass,
            "scheduling is a permutation",
            format!("{} live ops became {}", live.len(), post.ops.len()),
            pre,
            post,
        );
    }

    // Match each post position back to a pre index (k-th occurrence of an
    // identical op maps to the k-th occurrence pre-side).
    let mut occ: HashMap<OpKey, Vec<usize>> = HashMap::new();
    for (i, op) in live.iter().enumerate() {
        occ.entry((op.inst, op.guest_idx)).or_default().push(i);
    }
    let mut taken: HashMap<OpKey, usize> = HashMap::new();
    let mut pos_in_post = vec![usize::MAX; live.len()];
    for (j, op) in post.ops.iter().enumerate() {
        let key = (op.inst, op.guest_idx);
        let k = taken.entry(key).or_insert(0);
        let Some(pre_idx) = occ.get(&key).and_then(|v| v.get(*k)) else {
            return fail(
                pass,
                "scheduling is a permutation",
                format!("post op {j} `{}` not present pre-side", op.inst),
                pre,
                post,
            );
        };
        pos_in_post[*pre_idx] = j;
        *k += 1;
    }

    // Dependence edges over the live pre sequence, mirroring what any
    // correct scheduler must respect: register RAW/WAR/WAW, memory
    // ordering (loads and prefetches vs. stores), and branches as full
    // barriers.
    #[derive(PartialEq, Eq, Hash, Clone, Copy)]
    enum Res {
        Int(IrReg),
        Fp(IrFreg),
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut last_def: HashMap<Res, usize> = HashMap::new();
    let mut uses_since: HashMap<Res, Vec<usize>> = HashMap::new();
    let mut last_store: Option<usize> = None;
    let mut loads_since: Vec<usize> = Vec::new();
    let mut last_branch: Option<usize> = None;
    let mut since_branch: Vec<usize> = Vec::new();
    for (i, op) in live.iter().enumerate() {
        if let Some(b) = last_branch {
            edges.push((b, i));
        }
        if op.inst.is_branch() {
            for &p in &since_branch {
                edges.push((p, i));
            }
            since_branch.clear();
            last_branch = Some(i);
        } else {
            since_branch.push(i);
        }
        let srcs: Vec<Res> = op
            .inst
            .srcs()
            .into_iter()
            .flatten()
            .map(Res::Int)
            .chain(op.inst.fsrcs().into_iter().flatten().map(Res::Fp))
            .collect();
        let dsts: Vec<Res> =
            op.inst.dst().map(Res::Int).into_iter().chain(op.inst.fdst().map(Res::Fp)).collect();
        for s in &srcs {
            if let Some(&d) = last_def.get(s) {
                edges.push((d, i));
            }
            uses_since.entry(*s).or_default().push(i);
        }
        for d in &dsts {
            if let Some(&p) = last_def.get(d) {
                edges.push((p, i));
            }
            for &u in uses_since.get(d).map(|v| v.as_slice()).unwrap_or(&[]) {
                edges.push((u, i));
            }
            last_def.insert(*d, i);
            uses_since.insert(*d, Vec::new());
        }
        if op.inst.is_load() || matches!(op.inst, IrInst::Prefetch { .. }) {
            if let Some(s) = last_store {
                edges.push((s, i));
            }
            loads_since.push(i);
        } else if op.inst.is_store() {
            if let Some(s) = last_store {
                edges.push((s, i));
            }
            for &l in &loads_since {
                edges.push((l, i));
            }
            loads_since.clear();
            last_store = Some(i);
        }
    }
    for (a, b) in edges {
        if a != b && pos_in_post[a] >= pos_in_post[b] {
            return fail(
                pass,
                "scheduling preserves dependences",
                format!(
                    "`{}` must stay before `{}` but moved after it",
                    live[a].inst, live[b].inst
                ),
                pre,
                post,
            );
        }
    }
    Ok(())
}

/// Checks a register assignment: every mentioned virtual is mapped (and
/// nothing else), assignments stay inside the scratch windows, and two
/// virtuals sharing a physical register never have overlapping live
/// ranges — i.e. the map restricted to any program point is a bijection.
pub fn check_allocation(
    pass: &'static str,
    block: &IrBlock,
    map: &RegMap,
) -> Result<(), Box<VerifyFailure>> {
    let df = Dataflow::analyze(block);
    let mut int_ivs: Vec<(u32, (usize, usize))> = Vec::new();
    for (r, du) in &df.int {
        if let IrReg::Virt(v) = r {
            match map.int.get(v) {
                None => {
                    return fail(
                        pass,
                        "every live virtual is allocated",
                        format!("t{v} has no assignment"),
                        block,
                        block,
                    );
                }
                Some(p) if !(SCRATCH_BASE..SCRATCH_END).contains(&p.0) => {
                    return fail(
                        pass,
                        "allocations stay in the scratch window",
                        format!("t{v} -> r{} outside r{SCRATCH_BASE}..r{SCRATCH_END}", p.0),
                        block,
                        block,
                    );
                }
                Some(_) => {}
            }
            if let Some(iv) = du.interval() {
                int_ivs.push((*v, iv));
            }
        }
    }
    let mut fp_ivs: Vec<(u32, (usize, usize))> = Vec::new();
    for (r, du) in &df.fp {
        if let IrFreg::Virt(v) = r {
            match map.fp.get(v) {
                None => {
                    return fail(
                        pass,
                        "every live virtual is allocated",
                        format!("ft{v} has no assignment"),
                        block,
                        block,
                    );
                }
                Some(p) if !(FSCRATCH_BASE..FSCRATCH_END).contains(&p.0) => {
                    return fail(
                        pass,
                        "allocations stay in the scratch window",
                        format!("ft{v} -> f{} outside f{FSCRATCH_BASE}..f{FSCRATCH_END}", p.0),
                        block,
                        block,
                    );
                }
                Some(_) => {}
            }
            if let Some(iv) = du.interval() {
                fp_ivs.push((*v, iv));
            }
        }
    }
    let mentioned_int: HashSet<u32> = int_ivs.iter().map(|&(v, _)| v).collect();
    let mentioned_fp: HashSet<u32> = fp_ivs.iter().map(|&(v, _)| v).collect();
    if let Some(v) = map.int.keys().find(|v| !mentioned_int.contains(v)) {
        return fail(
            pass,
            "no spurious assignments",
            format!("map assigns t{v} which the block never mentions"),
            block,
            block,
        );
    }
    if let Some(v) = map.fp.keys().find(|v| !mentioned_fp.contains(v)) {
        return fail(
            pass,
            "no spurious assignments",
            format!("map assigns ft{v} which the block never mentions"),
            block,
            block,
        );
    }
    for (i, &(va, (sa, ea))) in int_ivs.iter().enumerate() {
        for &(vb, (sb, eb)) in &int_ivs[i + 1..] {
            if map.int[&va] == map.int[&vb] && sa <= eb && sb <= ea {
                return fail(
                    pass,
                    "assignment is a bijection over live ranges",
                    format!("t{va} [{sa},{ea}] and t{vb} [{sb},{eb}] share r{}", map.int[&va].0),
                    block,
                    block,
                );
            }
        }
    }
    for (i, &(va, (sa, ea))) in fp_ivs.iter().enumerate() {
        for &(vb, (sb, eb)) in &fp_ivs[i + 1..] {
            if map.fp[&va] == map.fp[&vb] && sa <= eb && sb <= ea {
                return fail(
                    pass,
                    "assignment is a bijection over live ranges",
                    format!("ft{va} [{sa},{ea}] and ft{vb} [{sb},{eb}] share f{}", map.fp[&va].0),
                    block,
                    block,
                );
            }
        }
    }
    Ok(())
}
