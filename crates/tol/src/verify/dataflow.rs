//! Dataflow analysis over linear IR blocks.
//!
//! Because translated blocks are straight-line code whose branches only
//! exit forward into stubs, every classical dataflow problem degenerates
//! to a single sweep: reaching definitions forward, liveness backward.
//! This module computes the facts the structural verifier consumes:
//! definition/use sites per register, use-def chains, and live intervals
//! for virtual temporaries.

use crate::ir::{IrBlock, IrFreg, IrInst, IrReg};
use std::collections::HashMap;

/// Definition and use sites of one register within a block.
#[derive(Debug, Clone, Default)]
pub struct DefUse {
    /// Body indices of instructions defining the register.
    pub defs: Vec<usize>,
    /// Body indices of instructions reading the register.
    pub uses: Vec<usize>,
}

impl DefUse {
    /// Live interval as `[first mention, last mention]`, the shape the
    /// linear-scan allocator works with.
    pub fn interval(&self) -> Option<(usize, usize)> {
        let first = self.defs.iter().chain(&self.uses).min()?;
        let last = self.defs.iter().chain(&self.uses).max()?;
        Some((*first, *last))
    }
}

/// Per-block dataflow facts over virtual and pinned registers.
#[derive(Debug, Clone, Default)]
pub struct Dataflow {
    /// Facts per integer register (virtual and pinned).
    pub int: HashMap<IrReg, DefUse>,
    /// Facts per FP register (virtual and pinned).
    pub fp: HashMap<IrFreg, DefUse>,
    /// Use-def chains: for op `i`, the reaching definition index of each
    /// integer source (`None` means live-in, i.e. pinned initial state).
    pub reaching_int: Vec<Vec<(IrReg, Option<usize>)>>,
    /// Same for FP sources.
    pub reaching_fp: Vec<Vec<(IrFreg, Option<usize>)>>,
}

impl Dataflow {
    /// Runs the forward sweep over `block` (`Nop` tombstones are skipped:
    /// they neither define nor use anything).
    pub fn analyze(block: &IrBlock) -> Dataflow {
        let mut df = Dataflow::default();
        let mut last_int: HashMap<IrReg, usize> = HashMap::new();
        let mut last_fp: HashMap<IrFreg, usize> = HashMap::new();
        for (i, op) in block.ops.iter().enumerate() {
            let mut chain_int = Vec::new();
            let mut chain_fp = Vec::new();
            if op.inst == IrInst::Nop {
                df.reaching_int.push(chain_int);
                df.reaching_fp.push(chain_fp);
                continue;
            }
            for s in op.inst.srcs().into_iter().flatten() {
                df.int.entry(s).or_default().uses.push(i);
                chain_int.push((s, last_int.get(&s).copied()));
            }
            for s in op.inst.fsrcs().into_iter().flatten() {
                df.fp.entry(s).or_default().uses.push(i);
                chain_fp.push((s, last_fp.get(&s).copied()));
            }
            if let Some(d) = op.inst.dst() {
                df.int.entry(d).or_default().defs.push(i);
                last_int.insert(d, i);
            }
            if let Some(d) = op.inst.fdst() {
                df.fp.entry(d).or_default().defs.push(i);
                last_fp.insert(d, i);
            }
            df.reaching_int.push(chain_int);
            df.reaching_fp.push(chain_fp);
        }
        df
    }

    /// Whether virtual integer register `v` is live (has a later use) at
    /// any point strictly after body index `pos`.
    pub fn int_live_after(&self, v: u32, pos: usize) -> bool {
        self.int.get(&IrReg::Virt(v)).is_some_and(|du| du.uses.iter().any(|&u| u > pos))
    }

    /// FP counterpart of [`Dataflow::int_live_after`].
    pub fn fp_live_after(&self, v: u32, pos: usize) -> bool {
        self.fp.get(&IrFreg::Virt(v)).is_some_and(|du| du.uses.iter().any(|&u| u > pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrOp;
    use darco_host::{Exit, HAluOp, HReg};

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![],
            stub_guest_counts: vec![],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn use_def_chains_point_at_reaching_defs() {
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 1 },
            IrInst::AluI { op: HAluOp::Add, rd: IrReg::Virt(1), ra: IrReg::Virt(0), imm: 2 },
            IrInst::Alu {
                op: HAluOp::Add,
                rd: IrReg::Phys(HReg(1)),
                ra: IrReg::Virt(1),
                rb: IrReg::Phys(HReg(2)),
            },
        ]);
        let df = Dataflow::analyze(&b);
        assert_eq!(df.reaching_int[1], vec![(IrReg::Virt(0), Some(0))]);
        assert_eq!(
            df.reaching_int[2],
            vec![(IrReg::Virt(1), Some(1)), (IrReg::Phys(HReg(2)), None)],
            "pinned r2 is live-in"
        );
    }

    #[test]
    fn intervals_span_def_to_last_use() {
        let b = block(vec![
            IrInst::Li { rd: IrReg::Virt(3), imm: 1 },
            IrInst::Nop,
            IrInst::AluI { op: HAluOp::Or, rd: IrReg::Phys(HReg(1)), ra: IrReg::Virt(3), imm: 0 },
        ]);
        let df = Dataflow::analyze(&b);
        assert_eq!(df.int[&IrReg::Virt(3)].interval(), Some((0, 2)));
        assert!(df.int_live_after(3, 0));
        assert!(!df.int_live_after(3, 2));
    }
}
