//! Translation validation: per-block semantic equivalence checking.
//!
//! The validator proves an optimized block equivalent to its
//! pre-optimization snapshot without trusting any pass. Linear IR makes
//! this tractable: both bodies are evaluated **symbolically** into
//! hash-consed terms over the initial pinned guest state and memory, and
//! the observable behavior — every side exit (condition, target, pinned
//! snapshot), every store in order, and the final pinned state — must
//! produce identical terms.
//!
//! Term normalization mirrors exactly the algebra the optimizer is
//! allowed to use (constant folding through [`eval_alu`], copy
//! transparency of `or/add x, 0`, commutative operand ordering,
//! memory-version-indexed loads), so a correct pass yields syntactically
//! equal terms. The check is sound: equal terms always denote equal
//! values. It is incomplete — a rewrite outside the normalized algebra
//! produces unequal terms for equal behavior — so on mismatch the
//! validator falls back to **randomized differential execution** of both
//! blocks against the reference host semantics, and only reports a
//! miscompile when a concrete input actually diverges.

use super::{fail, VerifyFailure};
use crate::ir::{self, IrBlock, IrFreg, IrInst, IrReg};
use darco_guest::{Cond, FpOp, GuestMem};
use darco_host::{
    eval_alu, exec_inst, FlagsKind, HAluOp, HFreg, HInst, HReg, HostState, Outcome, Width,
};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// How the validator discharged a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proof {
    /// Symbolic terms matched: equivalence proven.
    Symbolic,
    /// Symbolic mismatch, but differential execution found no divergence.
    Differential,
}

/// Number of random input vectors tried by the differential fallback.
const DIFF_TRIALS: u64 = 4;

// ---------------------------------------------------------------------
// Symbolic evaluation
// ---------------------------------------------------------------------

/// A hash-consed term. Children are term ids into the interner, so
/// structurally equal computations get equal ids regardless of the order
/// the two blocks are evaluated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    /// Initial value of pinned integer register `r<n>`.
    InitInt(u8),
    /// Known 32-bit constant.
    Const(u32),
    /// Use of an undefined virtual (kept total; structural checks flag it).
    UndefInt(u32),
    Alu(HAluOp, u32, u32),
    Mul(u32, u32),
    Div(u32, u32),
    Flags(FlagsKind, u32, u32),
    /// Integer load: address term, width, memory version (stores so far).
    Load(u32, Width, u32),
    CvtFI(u32),
    /// Initial value of pinned FP register `f<n>`.
    InitFp(u8),
    UndefFp(u32),
    FArith(FpOp, u32, u32),
    /// FP load: address term, memory version.
    FLoad(u32, u32),
    CvtIF(u32),
}

#[derive(Default)]
struct Interner {
    ids: HashMap<Node, u32>,
    nodes: Vec<Node>,
}

impl Interner {
    fn intern(&mut self, n: Node) -> u32 {
        if let Some(&id) = self.ids.get(&n) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(n);
        self.ids.insert(n, id);
        id
    }

    fn as_const(&self, id: u32) -> Option<u32> {
        match self.nodes[id as usize] {
            Node::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Interns an ALU term, normalizing with the same algebra the
    /// optimizer uses: full constant folding, `x op 0` identities, and
    /// commutative operand ordering.
    fn alu(&mut self, op: HAluOp, a: u32, b: u32) -> u32 {
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.intern(Node::Const(eval_alu(op, x, y)));
        }
        match op {
            HAluOp::Add | HAluOp::Or | HAluOp::Xor => {
                if self.as_const(a) == Some(0) {
                    return b;
                }
                if self.as_const(b) == Some(0) {
                    return a;
                }
            }
            HAluOp::Sub | HAluOp::Shl | HAluOp::Shr | HAluOp::Sar
                if self.as_const(b) == Some(0) =>
            {
                return a;
            }
            _ => {}
        }
        let (a, b) = match op {
            HAluOp::Add | HAluOp::And | HAluOp::Or | HAluOp::Xor => (a.min(b), a.max(b)),
            _ => (a, b),
        };
        self.intern(Node::Alu(op, a, b))
    }

    fn mul(&mut self, a: u32, b: u32) -> u32 {
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.intern(Node::Const((x as i32).wrapping_mul(y as i32) as u32));
        }
        self.intern(Node::Mul(a.min(b), a.max(b)))
    }
}

/// One entry of the ordered store log: `(address, value, tag)` where the
/// tag is the integer width in bytes or `0xF` for an FP store.
type StoreObs = (u32, u32, u8);

/// A side exit's observable: stub index, condition, flags term, pinned
/// snapshot, and how many stores precede it (a store crossing a branch is
/// a miscompile even if the final logs agree).
type BranchObs = (u32, Cond, u32, Vec<u32>, usize);

/// Everything an external observer can see of one block execution.
#[derive(PartialEq, Eq)]
struct SymObs {
    branches: Vec<BranchObs>,
    stores: Vec<StoreObs>,
    final_pinned: Vec<u32>,
}

/// Pinned architectural snapshot: integer r1..=r10 (guest GPRs, flags,
/// exit target) then FP f0..f7 (guest FPRs).
fn snapshot(int: &HashMap<IrReg, u32>, fp: &HashMap<IrFreg, u32>, tt: &mut Interner) -> Vec<u32> {
    let mut out = Vec::with_capacity(18);
    for r in 1..=10u8 {
        let reg = IrReg::Phys(HReg(r));
        out.push(*int.get(&reg).unwrap_or(&tt.intern(Node::InitInt(r))));
    }
    for f in 0..ir::FSCRATCH_BASE {
        let reg = IrFreg::Phys(HFreg(f));
        out.push(*fp.get(&reg).unwrap_or(&tt.intern(Node::InitFp(f))));
    }
    out
}

/// Evaluates one block into its observable terms under `tt`.
fn sym_eval(block: &IrBlock, tt: &mut Interner) -> SymObs {
    let mut int: HashMap<IrReg, u32> = HashMap::new();
    let mut fp: HashMap<IrFreg, u32> = HashMap::new();
    let mut obs = SymObs { branches: Vec::new(), stores: Vec::new(), final_pinned: Vec::new() };

    macro_rules! read {
        ($r:expr) => {{
            let r = $r;
            match r {
                IrReg::Phys(HReg(0)) => tt.intern(Node::Const(0)),
                IrReg::Phys(HReg(p)) => {
                    *int.entry(r).or_insert_with(|| tt.intern(Node::InitInt(p)))
                }
                IrReg::Virt(v) => *int.entry(r).or_insert_with(|| tt.intern(Node::UndefInt(v))),
            }
        }};
    }
    macro_rules! fread {
        ($r:expr) => {{
            let r = $r;
            match r {
                IrFreg::Phys(HFreg(p)) => {
                    *fp.entry(r).or_insert_with(|| tt.intern(Node::InitFp(p)))
                }
                IrFreg::Virt(v) => *fp.entry(r).or_insert_with(|| tt.intern(Node::UndefFp(v))),
            }
        }};
    }

    for op in &block.ops {
        match op.inst {
            IrInst::Nop | IrInst::Prefetch { .. } => {}
            IrInst::Alu { op: o, rd, ra, rb } => {
                let (a, b) = (read!(ra), read!(rb));
                let t = tt.alu(o, a, b);
                int.insert(rd, t);
            }
            IrInst::AluI { op: o, rd, ra, imm } => {
                let a = read!(ra);
                let b = tt.intern(Node::Const(imm as u32));
                let t = tt.alu(o, a, b);
                int.insert(rd, t);
            }
            IrInst::Li { rd, imm } => {
                let t = tt.intern(Node::Const(imm as u32));
                int.insert(rd, t);
            }
            IrInst::Mul { rd, ra, rb } => {
                let (a, b) = (read!(ra), read!(rb));
                let t = tt.mul(a, b);
                int.insert(rd, t);
            }
            IrInst::Div { rd, ra, rb } => {
                let (a, b) = (read!(ra), read!(rb));
                let t = tt.intern(Node::Div(a, b));
                int.insert(rd, t);
            }
            IrInst::FlagsArith { kind, rd, ra, rb } => {
                let (a, b) = (read!(ra), read!(rb));
                let t = tt.intern(Node::Flags(kind, a, b));
                int.insert(rd, t);
            }
            IrInst::Ld { rd, base, off, width } => {
                let b = read!(base);
                let o = tt.intern(Node::Const(off as u32));
                let addr = tt.alu(HAluOp::Add, b, o);
                let ver = obs.stores.len() as u32;
                let t = tt.intern(Node::Load(addr, width, ver));
                int.insert(rd, t);
            }
            IrInst::St { rs, base, off, width } => {
                let v = read!(rs);
                let b = read!(base);
                let o = tt.intern(Node::Const(off as u32));
                let addr = tt.alu(HAluOp::Add, b, o);
                obs.stores.push((addr, v, width.bytes()));
            }
            IrInst::FLd { fd, base, off } => {
                let b = read!(base);
                let o = tt.intern(Node::Const(off as u32));
                let addr = tt.alu(HAluOp::Add, b, o);
                let ver = obs.stores.len() as u32;
                let t = tt.intern(Node::FLoad(addr, ver));
                fp.insert(fd, t);
            }
            IrInst::FSt { fs, base, off } => {
                let v = fread!(fs);
                let b = read!(base);
                let o = tt.intern(Node::Const(off as u32));
                let addr = tt.alu(HAluOp::Add, b, o);
                obs.stores.push((addr, v, 0xF));
            }
            IrInst::FMov { fd, fa } => {
                let t = fread!(fa);
                fp.insert(fd, t);
            }
            IrInst::FArith { op: o, fd, fa, fb } => {
                let (a, b) = (fread!(fa), fread!(fb));
                let t = tt.intern(Node::FArith(o, a, b));
                fp.insert(fd, t);
            }
            IrInst::CvtIF { fd, ra } => {
                let a = read!(ra);
                let t = tt.intern(Node::CvtIF(a));
                fp.insert(fd, t);
            }
            IrInst::CvtFI { rd, fa } => {
                let a = fread!(fa);
                let t = tt.intern(Node::CvtFI(a));
                int.insert(rd, t);
            }
            IrInst::BrFlags { cond, flags, stub } => {
                let f = read!(flags);
                let snap = snapshot(&int, &fp, tt);
                obs.branches.push((stub, cond, f, snap, obs.stores.len()));
            }
        }
    }
    obs.final_pinned = snapshot(&int, &fp, tt);
    obs
}

// ---------------------------------------------------------------------
// Differential execution
// ---------------------------------------------------------------------

/// Where a concrete execution of the block left to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConcreteExit {
    Stub(u32),
    Fallthrough,
}

/// Staging physical registers used to funnel IR operand values through
/// [`exec_inst`], so tricky semantics (flag materialization, converts,
/// division, FP rounding) come from the one reference implementation.
/// They sit in the scratch window, which pre-allocation IR never names.
const STAGE_A: HReg = HReg(ir::SCRATCH_BASE);
const STAGE_B: HReg = HReg(ir::SCRATCH_BASE + 1);
const STAGE_D: HReg = HReg(ir::SCRATCH_BASE + 2);
const FSTAGE_A: HFreg = HFreg(ir::FSCRATCH_BASE);
const FSTAGE_B: HFreg = HFreg(ir::FSCRATCH_BASE + 1);
const FSTAGE_D: HFreg = HFreg(ir::FSCRATCH_BASE + 2);

/// Concrete IR interpreter: virtuals live in side tables, pinned
/// registers in a [`HostState`], and every instruction is delegated to
/// the host's [`exec_inst`] via the staging registers. Shared with the
/// analysis soundness oracle, which replays blocks through it while
/// asserting abstract facts.
pub(crate) struct ExecEnv {
    pub(crate) st: HostState,
    virt: HashMap<u32, u32>,
    fvirt: HashMap<u32, f64>,
}

impl ExecEnv {
    pub(crate) fn new(st: HostState) -> ExecEnv {
        ExecEnv { st, virt: HashMap::new(), fvirt: HashMap::new() }
    }

    pub(crate) fn read(&self, r: IrReg) -> u32 {
        match r {
            IrReg::Phys(p) => self.st.reg(p),
            IrReg::Virt(v) => self.virt.get(&v).copied().unwrap_or(0),
        }
    }

    fn write(&mut self, r: IrReg, v: u32) {
        match r {
            IrReg::Phys(p) => self.st.set_reg(p, v),
            IrReg::Virt(n) => {
                self.virt.insert(n, v);
            }
        }
    }

    fn fref(&self, r: IrFreg) -> f64 {
        match r {
            IrFreg::Phys(p) => self.st.freg(p),
            IrFreg::Virt(v) => self.fvirt.get(&v).copied().unwrap_or(0.0),
        }
    }

    fn fwrite(&mut self, r: IrFreg, v: f64) {
        match r {
            IrFreg::Phys(p) => self.st.set_freg(p, v),
            IrFreg::Virt(n) => {
                self.fvirt.insert(n, v);
            }
        }
    }

    /// Stages operands, runs `make(staged)` through the reference
    /// executor, and returns the staged destination value.
    fn via_host(&mut self, a: u32, b: u32, mem: &mut GuestMem, h: HInst) -> u32 {
        self.st.set_reg(STAGE_A, a);
        self.st.set_reg(STAGE_B, b);
        exec_inst(&mut self.st, &h, mem);
        self.st.reg(STAGE_D)
    }

    fn run(&mut self, block: &IrBlock, mem: &mut GuestMem) -> ConcreteExit {
        self.run_with(block, mem, |_, _, _| {})
    }

    /// Runs the block, invoking `observe(idx, env, taken)` after every
    /// executed op — `taken` is `Some(t)` for a `BrFlags` (and the run
    /// stops when `t` is true), `None` otherwise. This is the hook the
    /// soundness oracle uses to compare abstract facts against the
    /// concrete state at each program point.
    pub(crate) fn run_with(
        &mut self,
        block: &IrBlock,
        mem: &mut GuestMem,
        mut observe: impl FnMut(usize, &ExecEnv, Option<bool>),
    ) -> ConcreteExit {
        for (i, op) in block.ops.iter().enumerate() {
            match op.inst {
                IrInst::Nop | IrInst::Prefetch { .. } => {}
                IrInst::Alu { op: o, rd, ra, rb } => {
                    let v = eval_alu(o, self.read(ra), self.read(rb));
                    self.write(rd, v);
                }
                IrInst::AluI { op: o, rd, ra, imm } => {
                    let v = eval_alu(o, self.read(ra), imm as u32);
                    self.write(rd, v);
                }
                IrInst::Li { rd, imm } => self.write(rd, imm as u32),
                IrInst::Mul { rd, ra, rb } => {
                    let (a, b) = (self.read(ra), self.read(rb));
                    let v = self.via_host(
                        a,
                        b,
                        mem,
                        HInst::Mul { rd: STAGE_D, ra: STAGE_A, rb: STAGE_B },
                    );
                    self.write(rd, v);
                }
                IrInst::Div { rd, ra, rb } => {
                    let (a, b) = (self.read(ra), self.read(rb));
                    let v = self.via_host(
                        a,
                        b,
                        mem,
                        HInst::Div { rd: STAGE_D, ra: STAGE_A, rb: STAGE_B },
                    );
                    self.write(rd, v);
                }
                IrInst::FlagsArith { kind, rd, ra, rb } => {
                    let (a, b) = (self.read(ra), self.read(rb));
                    let v = self.via_host(
                        a,
                        b,
                        mem,
                        HInst::FlagsArith { kind, rd: STAGE_D, ra: STAGE_A, rb: STAGE_B },
                    );
                    self.write(rd, v);
                }
                IrInst::Ld { rd, base, off, width } => {
                    let b = self.read(base);
                    let v = self.via_host(
                        b,
                        0,
                        mem,
                        HInst::Ld { rd: STAGE_D, base: STAGE_A, off, width },
                    );
                    self.write(rd, v);
                }
                IrInst::St { rs, base, off, width } => {
                    let (v, b) = (self.read(rs), self.read(base));
                    self.via_host(b, v, mem, HInst::St { rs: STAGE_B, base: STAGE_A, off, width });
                }
                IrInst::FLd { fd, base, off } => {
                    let b = self.read(base);
                    self.st.set_reg(STAGE_A, b);
                    exec_inst(&mut self.st, &HInst::FLd { fd: FSTAGE_D, base: STAGE_A, off }, mem);
                    let v = self.st.freg(FSTAGE_D);
                    self.fwrite(fd, v);
                }
                IrInst::FSt { fs, base, off } => {
                    let (v, b) = (self.fref(fs), self.read(base));
                    self.st.set_reg(STAGE_A, b);
                    self.st.set_freg(FSTAGE_A, v);
                    exec_inst(&mut self.st, &HInst::FSt { fs: FSTAGE_A, base: STAGE_A, off }, mem);
                }
                IrInst::FMov { fd, fa } => {
                    let v = self.fref(fa);
                    self.fwrite(fd, v);
                }
                IrInst::FArith { op: o, fd, fa, fb } => {
                    let (a, b) = (self.fref(fa), self.fref(fb));
                    self.st.set_freg(FSTAGE_A, a);
                    self.st.set_freg(FSTAGE_B, b);
                    exec_inst(
                        &mut self.st,
                        &HInst::FArith { op: o, fd: FSTAGE_D, fa: FSTAGE_A, fb: FSTAGE_B },
                        mem,
                    );
                    let v = self.st.freg(FSTAGE_D);
                    self.fwrite(fd, v);
                }
                IrInst::CvtIF { fd, ra } => {
                    let a = self.read(ra);
                    self.st.set_reg(STAGE_A, a);
                    exec_inst(&mut self.st, &HInst::CvtIF { fd: FSTAGE_D, ra: STAGE_A }, mem);
                    let v = self.st.freg(FSTAGE_D);
                    self.fwrite(fd, v);
                }
                IrInst::CvtFI { rd, fa } => {
                    let a = self.fref(fa);
                    self.st.set_freg(FSTAGE_A, a);
                    exec_inst(&mut self.st, &HInst::CvtFI { rd: STAGE_D, fa: FSTAGE_A }, mem);
                    let v = self.st.reg(STAGE_D);
                    self.write(rd, v);
                }
                IrInst::BrFlags { cond, flags, stub } => {
                    let f = self.read(flags);
                    self.st.set_reg(STAGE_A, f);
                    let out = exec_inst(
                        &mut self.st,
                        &HInst::BrFlags { cond, flags: STAGE_A, target: 1 },
                        mem,
                    );
                    let taken = out == Outcome::Taken(1);
                    observe(i, self, Some(taken));
                    if taken {
                        return ConcreteExit::Stub(stub);
                    }
                    continue;
                }
            }
            observe(i, self, None);
        }
        ConcreteExit::Fallthrough
    }
}

/// Minimal deterministic PRNG (SplitMix64) so the validator needs no
/// external randomness source and stays reproducible.
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(crate) fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
}

/// Deterministic seed derived from the block's instruction sequence, so
/// every validation of the same block replays the same trials.
pub(crate) fn block_seed(block: &IrBlock) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for op in &block.ops {
        op.inst.hash(&mut h);
        op.guest_idx.hash(&mut h);
    }
    h.finish()
}

/// Draws one random pinned state and seeded guest memory — the input
/// distribution shared by the differential fallback and the analysis
/// soundness oracle.
pub(crate) fn random_init(rng: &mut SplitMix64) -> (HostState, GuestMem) {
    let mut init = HostState::new();
    for r in 1..=10u8 {
        // Bias half the registers toward low addresses so loads hit the
        // seeded memory region below.
        let v = if rng.next() & 1 == 0 { rng.next_u32() & 0x7_FFFF } else { rng.next_u32() };
        init.set_reg(HReg(r), v);
    }
    for f in 0..ir::FSCRATCH_BASE {
        init.set_freg(HFreg(f), (rng.next_u32() as i32 as f64) / 16.0);
    }
    let mut mem0 = GuestMem::new();
    for _ in 0..256 {
        let a = rng.next_u32() & 0x7_FFFC;
        mem0.write_u32(a, rng.next_u32());
    }
    (init, mem0)
}

/// One random trial: identical initial state fed to both blocks; returns
/// a description of the first divergence, if any.
fn diff_trial(pre: &IrBlock, post: &IrBlock, rng: &mut SplitMix64) -> Option<String> {
    let (init, mem0) = random_init(rng);

    let mut env_a = ExecEnv::new(init.clone());
    let mut mem_a = mem0.clone();
    let exit_a = env_a.run(pre, &mut mem_a);

    let mut env_b = ExecEnv::new(init);
    let mut mem_b = mem0;
    let exit_b = env_b.run(post, &mut mem_b);

    if exit_a != exit_b {
        return Some(format!("exits diverge: pre {exit_a:?}, post {exit_b:?}"));
    }
    for r in 1..=10u8 {
        let (a, b) = (env_a.st.reg(HReg(r)), env_b.st.reg(HReg(r)));
        if a != b {
            return Some(format!("pinned r{r} diverges: pre {a:#x}, post {b:#x}"));
        }
    }
    for f in 0..ir::FSCRATCH_BASE {
        let (a, b) = (env_a.st.freg(HFreg(f)), env_b.st.freg(HFreg(f)));
        if a != b && !(a.is_nan() && b.is_nan()) {
            return Some(format!("pinned f{f} diverges: pre {a}, post {b}"));
        }
    }
    if let Some(addr) = mem_a.first_difference(&mem_b) {
        return Some(format!("memory diverges at {addr:#x}"));
    }
    None
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// Validates that `post` is observationally equivalent to `pre`.
///
/// # Errors
///
/// A [`VerifyFailure`] naming `pass` when a concrete differential trial
/// diverges (symbolic mismatch alone is never reported: the symbolic
/// engine is incomplete by design).
pub fn validate(
    pass: &'static str,
    pre: &IrBlock,
    post: &IrBlock,
) -> Result<Proof, Box<VerifyFailure>> {
    let mut tt = Interner::default();
    let obs_pre = sym_eval(pre, &mut tt);
    let obs_post = sym_eval(post, &mut tt);
    if obs_pre == obs_post {
        return Ok(Proof::Symbolic);
    }
    let mut rng = SplitMix64(block_seed(pre));
    for trial in 0..DIFF_TRIALS {
        if let Some(divergence) = diff_trial(pre, post, &mut rng) {
            return fail(
                pass,
                "optimized block equivalent to snapshot",
                format!("differential trial {trial}: {divergence}"),
                pre,
                post,
            );
        }
    }
    Ok(Proof::Differential)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrOp;
    use darco_host::Exit as HExit;

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![HExit::Halt],
            stub_guest_counts: vec![1],
            fallthrough: HExit::Halt,
            guest_len: 1,
        }
    }

    fn phys(i: u8) -> IrReg {
        IrReg::Phys(HReg(i))
    }

    #[test]
    fn copy_propagated_block_proved_symbolically() {
        // t0 <- r2 | 0 ; r1 <- r1 + t0   vs.   nop ; r1 <- r1 + r2
        let pre = block(vec![
            IrInst::AluI { op: HAluOp::Or, rd: IrReg::Virt(0), ra: phys(2), imm: 0 },
            IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(1), rb: IrReg::Virt(0) },
        ]);
        let post = block(vec![
            IrInst::Nop,
            IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(1), rb: phys(2) },
        ]);
        assert_eq!(validate("t", &pre, &post).unwrap(), Proof::Symbolic);
    }

    #[test]
    fn wrong_constant_is_caught() {
        let pre = block(vec![IrInst::Li { rd: phys(1), imm: 5 }]);
        let post = block(vec![IrInst::Li { rd: phys(1), imm: 6 }]);
        let err = validate("t", &pre, &post).unwrap_err();
        assert_eq!(err.pass, "t");
        assert!(err.detail.contains("r1 diverges"), "{}", err.detail);
    }

    #[test]
    fn dropped_store_is_caught() {
        let pre = block(vec![IrInst::St { rs: phys(1), base: phys(2), off: 0, width: Width::W4 }]);
        let post = block(vec![IrInst::Nop]);
        let err = validate("t", &pre, &post).unwrap_err();
        assert!(err.detail.contains("memory diverges"), "{}", err.detail);
    }

    #[test]
    fn commutation_proved_symbolically() {
        let pre =
            block(vec![IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(2), rb: phys(3) }]);
        let post =
            block(vec![IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(3), rb: phys(2) }]);
        assert_eq!(validate("t", &pre, &post).unwrap(), Proof::Symbolic);
    }

    #[test]
    fn equivalent_but_unnormalized_rewrite_passes_differentially() {
        // x*2 vs x+x: outside the normalized algebra, semantically equal.
        let pre = block(vec![
            IrInst::Li { rd: IrReg::Virt(0), imm: 2 },
            IrInst::Mul { rd: phys(1), ra: phys(2), rb: IrReg::Virt(0) },
        ]);
        let post = block(vec![
            IrInst::Nop,
            IrInst::Alu { op: HAluOp::Add, rd: phys(1), ra: phys(2), rb: phys(2) },
        ]);
        assert_eq!(validate("t", &pre, &post).unwrap(), Proof::Differential);
    }

    #[test]
    fn store_hoisted_across_branch_fails_symbolically_and_differentially() {
        use darco_guest::Cond;
        // pre: br ; st    post: st ; br  — diverges when the branch is taken.
        let st = IrInst::St { rs: phys(1), base: phys(2), off: 0, width: Width::W4 };
        let br = IrInst::BrFlags { cond: Cond::E, flags: phys(9), stub: 0 };
        let pre = block(vec![br, st]);
        let post = block(vec![st, br]);
        // Either a trial takes the branch (memory diverges) or all trials
        // fall through (accepted differentially); with flag words random,
        // at least one taken trial is overwhelmingly likely.
        match validate("t", &pre, &post) {
            Err(e) => assert!(e.detail.contains("diverges"), "{}", e.detail),
            Ok(p) => assert_eq!(p, Proof::Differential),
        }
    }
}
