//! `darco-verify`: static analysis and translation validation for the
//! TOL's IR.
//!
//! A HW/SW co-designed processor's software layer is part of the trusted
//! computing base — a miscompiled superblock is an architectural bug of
//! the "processor". This module makes every optimization pass
//! self-checking, in three layers:
//!
//! 1. **Dataflow engine** ([`dataflow`]) — liveness, reaching
//!    definitions and use-def chains over the linear IR.
//! 2. **Structural verifier** ([`structural`]) — shape invariants per
//!    pass kind: single-assignment, no use of undefined or dead-killed
//!    registers, side effects and pinned guest state never dropped,
//!    branches stay terminal, scheduling respects dependences, register
//!    assignment is a live-range bijection inside the scratch window.
//! 3. **Translation validator** ([`tv`]) — proves each optimized block
//!    observationally equivalent to its pre-optimization snapshot by
//!    symbolic evaluation, falling back to randomized differential
//!    execution against the reference host semantics.
//!
//! The pass manager in [`crate::opt`] snapshots the block around every
//! pass and calls [`check_pass`]; a failure pinpoints the pass, the
//! violated invariant, and an IR diff. Verification is always on in
//! debug and test builds, and opt-in in release via
//! [`TolConfig::verify`](crate::TolConfig) or the `darco verify`
//! subcommand.

pub mod dataflow;
pub mod structural;
pub mod tv;

use crate::ir::{self, IrBlock, RegMap};

/// The transformation shape a pass is allowed to perform, selecting
/// which structural invariants apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// In-place operand/instruction rewriting (constprop, CSE).
    Rewrite,
    /// Tombstoning dead definitions (DCE).
    Dce,
    /// Inserting side-effect-free hint instructions (sw prefetch).
    Insert,
    /// Permuting instructions within dependence order (scheduling).
    Schedule,
    /// Deleting `FlagsArith` ops whose flags word is dead, plus the
    /// immediate-refold and virtual cleanup that shape implies
    /// (deadflags).
    DeadFlags,
    /// Folding statically decided branches and strength-reducing
    /// masked ALU ops (rangesimp).
    BranchFold,
}

/// A verification failure: which pass broke which invariant, with the
/// IR before and after the offending transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyFailure {
    /// Name of the pass that produced the bad block.
    pub pass: &'static str,
    /// The invariant that no longer holds.
    pub invariant: &'static str,
    /// Human-readable specifics (which op, which register, …).
    pub detail: String,
    /// Pretty-printed IR before the pass.
    pub pre_ir: String,
    /// Pretty-printed IR after the pass.
    pub post_ir: String,
}

impl VerifyFailure {
    /// Line diff of the pre/post IR, `-`/`+` marking changed lines.
    pub fn ir_diff(&self) -> String {
        let pre: Vec<&str> = self.pre_ir.lines().collect();
        let post: Vec<&str> = self.post_ir.lines().collect();
        let mut out = String::new();
        for i in 0..pre.len().max(post.len()) {
            match (pre.get(i), post.get(i)) {
                (Some(a), Some(b)) if a == b => {
                    out.push_str(&format!("  {a}\n"));
                }
                (a, b) => {
                    if let Some(a) = a {
                        out.push_str(&format!("- {a}\n"));
                    }
                    if let Some(b) = b {
                        out.push_str(&format!("+ {b}\n"));
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "verifier: pass `{}` violated invariant `{}`", self.pass, self.invariant)?;
        writeln!(f, "  {}", self.detail)?;
        write!(f, "{}", self.ir_diff())
    }
}

impl std::error::Error for VerifyFailure {}

/// Shorthand used by the checkers to build a failure.
pub(crate) fn fail<T>(
    pass: &'static str,
    invariant: &'static str,
    detail: String,
    pre: &IrBlock,
    post: &IrBlock,
) -> Result<T, Box<VerifyFailure>> {
    Err(Box::new(VerifyFailure {
        pass,
        invariant,
        detail,
        pre_ir: ir::pretty(pre),
        post_ir: ir::pretty(post),
    }))
}

/// Per-pass transformation accounting: how often a pass ran and how
/// much it shrank the instruction stream. Deliberately holds no
/// wall-clock data — it is serialized into [`Report`] fingerprints that
/// must be bit-identical across reruns; pass timing travels separately
/// through [`VerifyStats::pass_nanos`].
///
/// [`Report`]: ../../darco_core/struct.Report.html
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PassDelta {
    /// Pass name (matches the pipeline's pass registry).
    pub pass: String,
    /// How many blocks the pass ran over.
    pub runs: u64,
    /// Net non-`Nop` instructions removed (negative if it grew).
    pub insts_removed: i64,
    /// `FlagsArith` definitions deleted.
    pub flags_killed: u64,
    /// `BrFlags` statically folded.
    pub branches_folded: u64,
}

/// Counters describing how blocks were verified, reported by the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Blocks that went through full post-pipeline verification.
    pub blocks_verified: u64,
    /// Individual pass applications checked (structural + TV).
    pub passes_checked: u64,
    /// Translation validations discharged symbolically.
    pub tv_symbolic: u64,
    /// Translation validations that needed the differential fallback.
    pub tv_differential: u64,
    /// Per-pass instruction deltas, in pipeline order.
    pub pass_deltas: Vec<PassDelta>,
    /// Wall-clock nanoseconds per pass, keyed like `pass_deltas`. Kept
    /// out of [`PassDelta`] (and thus out of every serialized report) so
    /// reports stay deterministic across reruns.
    pub pass_nanos: Vec<(String, u64)>,
}

impl VerifyStats {
    /// Accumulates another stats record into this one; per-pass deltas
    /// merge by pass name.
    pub fn merge(&mut self, other: &VerifyStats) {
        self.blocks_verified += other.blocks_verified;
        self.passes_checked += other.passes_checked;
        self.tv_symbolic += other.tv_symbolic;
        self.tv_differential += other.tv_differential;
        for d in &other.pass_deltas {
            merge_delta(&mut self.pass_deltas, d);
        }
        for (pass, ns) in &other.pass_nanos {
            merge_nanos(&mut self.pass_nanos, pass, *ns);
        }
    }
}

/// Folds one delta into a list keyed by pass name (appending new
/// passes in encounter order, which is pipeline order).
pub fn merge_delta(deltas: &mut Vec<PassDelta>, d: &PassDelta) {
    if let Some(e) = deltas.iter_mut().find(|e| e.pass == d.pass) {
        e.runs += d.runs;
        e.insts_removed += d.insts_removed;
        e.flags_killed += d.flags_killed;
        e.branches_folded += d.branches_folded;
    } else {
        deltas.push(d.clone());
    }
}

/// Folds one pass-timing sample into a `(pass, nanos)` list keyed by
/// pass name, appending new passes in encounter order.
pub fn merge_nanos(nanos: &mut Vec<(String, u64)>, pass: &str, ns: u64) {
    if let Some(e) = nanos.iter_mut().find(|(p, _)| p == pass) {
        e.1 += ns;
    } else {
        nanos.push((pass.to_string(), ns));
    }
}

fn count_proof(stats: &mut VerifyStats, proof: tv::Proof) {
    match proof {
        tv::Proof::Symbolic => stats.tv_symbolic += 1,
        tv::Proof::Differential => stats.tv_differential += 1,
    }
}

/// Verifies one pass application: structural shape invariants for
/// `kind`, then translation validation of `post` against `pre`.
///
/// # Errors
///
/// The first [`VerifyFailure`] found, naming `pass`.
pub fn check_pass(
    pass: &'static str,
    kind: PassKind,
    pre: &IrBlock,
    post: &IrBlock,
    stats: &mut VerifyStats,
) -> Result<(), Box<VerifyFailure>> {
    stats.passes_checked += 1;
    structural::check_transform(pass, kind, pre, post)?;
    let proof = tv::validate(pass, pre, post)?;
    count_proof(stats, proof);
    Ok(())
}

/// End-to-end validation of the whole pipeline's output against the
/// original translation, plus the register-assignment check.
///
/// # Errors
///
/// The first [`VerifyFailure`] found.
pub fn check_result(
    original: &IrBlock,
    block: &IrBlock,
    map: &RegMap,
    stats: &mut VerifyStats,
) -> Result<(), Box<VerifyFailure>> {
    structural::check_allocation("regalloc", block, map)?;
    let proof = tv::validate("pipeline", original, block)?;
    count_proof(stats, proof);
    stats.blocks_verified += 1;
    Ok(())
}

/// Standalone well-formedness check of a translated block (used by the
/// `darco verify` subcommand before any pass runs).
///
/// # Errors
///
/// A [`VerifyFailure`] attributed to the translator.
pub fn check_translation(block: &IrBlock) -> Result<(), Box<VerifyFailure>> {
    structural::check_wellformed("translate", block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrInst, IrOp, IrReg};
    use darco_host::{Exit, HAluOp, HReg, Width};

    fn phys(i: u8) -> IrReg {
        IrReg::Phys(HReg(i))
    }

    fn block(ops: Vec<IrInst>) -> IrBlock {
        IrBlock {
            ops: ops.into_iter().map(|inst| IrOp { inst, guest_idx: 0 }).collect(),
            stubs: vec![],
            stub_guest_counts: vec![],
            fallthrough: Exit::Halt,
            guest_len: 1,
        }
    }

    #[test]
    fn failure_report_names_pass_invariant_and_diffs_ir() {
        // A "DCE" that drops a live store.
        let pre = block(vec![
            IrInst::St { rs: phys(1), base: phys(2), off: 0, width: Width::W4 },
            IrInst::AluI { op: HAluOp::Add, rd: phys(1), ra: phys(1), imm: 1 },
        ]);
        let mut post = pre.clone();
        post.ops[0].inst = IrInst::Nop;
        let mut stats = VerifyStats::default();
        let err = check_pass("dce", PassKind::Dce, &pre, &post, &mut stats).unwrap_err();
        assert_eq!(err.pass, "dce");
        assert_eq!(err.invariant, "side-effecting instructions never removed");
        let report = err.to_string();
        assert!(report.contains("pass `dce`"), "{report}");
        assert!(report.contains("- "), "diff shows the removed store: {report}");
    }

    #[test]
    fn stats_accumulate_per_check() {
        let b = block(vec![IrInst::AluI { op: HAluOp::Add, rd: phys(1), ra: phys(1), imm: 1 }]);
        let mut stats = VerifyStats::default();
        check_pass("constprop", PassKind::Rewrite, &b, &b.clone(), &mut stats).unwrap();
        assert_eq!(stats.passes_checked, 1);
        assert_eq!(stats.tv_symbolic, 1);
        assert_eq!(stats.tv_differential, 0);
    }
}
