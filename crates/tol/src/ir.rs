//! Translation intermediate representation.
//!
//! The translator emits *linear* IR blocks: a straight-line body whose
//! conditional branches only jump **forward to exit stubs** appended
//! after the body. This structure (standard for traces/superblocks) is
//! what makes the optimization passes simple and safe: there are no
//! internal join points, so dataflow is a single forward or backward
//! sweep, with side exits acting as observation points for the pinned
//! guest state.
//!
//! Registers come in two flavors: **pinned physical registers** holding
//! the emulated guest state (guest GPR *i* lives in host `r(i+1)`, the
//! flags word in `r9`, guest FP *i* in host `f(i)`), and **virtual
//! registers** for temporaries, assigned to host scratch registers by
//! register allocation at lowering time.

use darco_guest::{Cond, FpOp};
use darco_host::{Exit, FlagsKind, HAluOp, HFreg, HInst, HReg, Width};
use std::collections::HashMap;

/// Dedicated physical register an indirect exit's guest target is moved
/// into before the block's [`Exit::Indirect`].
pub const EXIT_TARGET_REG: HReg = HReg(10);
/// First host register available for integer temporaries.
pub const SCRATCH_BASE: u8 = 11;
/// One past the last host register available for integer temporaries
/// (the application half ends at r31).
pub const SCRATCH_END: u8 = 32;
/// First host FP register available for FP temporaries.
pub const FSCRATCH_BASE: u8 = 8;
/// One past the last FP temporary register (application half ends at f15).
pub const FSCRATCH_END: u8 = 16;

/// Host register pinned to a guest GPR.
pub fn guest_gpr_reg(i: usize) -> HReg {
    debug_assert!(i < 8);
    HReg(1 + i as u8)
}

/// Host register pinned to the guest flags word.
pub const FLAGS_REG: HReg = HReg(9);

/// Host FP register pinned to a guest FP register.
pub fn guest_fpr_reg(i: usize) -> HFreg {
    debug_assert!(i < 8);
    HFreg(i as u8)
}

/// An integer IR register: pinned physical or virtual temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrReg {
    /// A pinned physical host register (guest state or `r0`).
    Phys(HReg),
    /// A virtual temporary, numbered from zero.
    Virt(u32),
}

impl IrReg {
    /// The hardwired zero register.
    pub const ZERO: IrReg = IrReg::Phys(HReg(0));
}

/// An FP IR register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrFreg {
    /// A pinned physical host FP register (guest FP state).
    Phys(HFreg),
    /// A virtual FP temporary.
    Virt(u32),
}

/// One IR instruction. Mirrors [`HInst`] with IR registers; conditional
/// branches target exit-stub indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrInst {
    /// No operation (used as a tombstone by passes).
    Nop,
    /// `rd <- ra op rb`.
    Alu {
        /// Operation.
        op: HAluOp,
        /// Destination.
        rd: IrReg,
        /// Left operand.
        ra: IrReg,
        /// Right operand.
        rb: IrReg,
    },
    /// `rd <- ra op imm`.
    AluI {
        /// Operation.
        op: HAluOp,
        /// Destination.
        rd: IrReg,
        /// Left operand.
        ra: IrReg,
        /// Immediate.
        imm: i32,
    },
    /// `rd <- imm`.
    Li {
        /// Destination.
        rd: IrReg,
        /// Immediate.
        imm: i64,
    },
    /// 32-bit multiply.
    Mul {
        /// Destination.
        rd: IrReg,
        /// Left operand.
        ra: IrReg,
        /// Right operand.
        rb: IrReg,
    },
    /// 32-bit total signed divide.
    Div {
        /// Destination.
        rd: IrReg,
        /// Dividend.
        ra: IrReg,
        /// Divisor.
        rb: IrReg,
    },
    /// Guest flags materialization.
    FlagsArith {
        /// Flags computation kind.
        kind: FlagsKind,
        /// Destination (flags word).
        rd: IrReg,
        /// First operand.
        ra: IrReg,
        /// Second operand.
        rb: IrReg,
    },
    /// Software prefetch of a guest line (inserted by the optional
    /// prefetching pass; never faults, never stalls).
    Prefetch {
        /// Base address register.
        base: IrReg,
        /// Byte offset.
        off: i32,
    },
    /// Load from guest memory.
    Ld {
        /// Destination.
        rd: IrReg,
        /// Base address register.
        base: IrReg,
        /// Byte offset.
        off: i32,
        /// Width.
        width: Width,
    },
    /// Store to guest memory.
    St {
        /// Source.
        rs: IrReg,
        /// Base address register.
        base: IrReg,
        /// Byte offset.
        off: i32,
        /// Width.
        width: Width,
    },
    /// FP load.
    FLd {
        /// Destination.
        fd: IrFreg,
        /// Base address register.
        base: IrReg,
        /// Byte offset.
        off: i32,
    },
    /// FP store.
    FSt {
        /// Source.
        fs: IrFreg,
        /// Base address register.
        base: IrReg,
        /// Byte offset.
        off: i32,
    },
    /// FP move.
    FMov {
        /// Destination.
        fd: IrFreg,
        /// Source.
        fa: IrFreg,
    },
    /// FP arithmetic.
    FArith {
        /// Operation.
        op: FpOp,
        /// Destination.
        fd: IrFreg,
        /// Left operand.
        fa: IrFreg,
        /// Right operand.
        fb: IrFreg,
    },
    /// Integer-to-FP convert.
    CvtIF {
        /// Destination.
        fd: IrFreg,
        /// Source.
        ra: IrReg,
    },
    /// FP-to-integer convert.
    CvtFI {
        /// Destination.
        rd: IrReg,
        /// Source.
        fa: IrFreg,
    },
    /// Branch to exit stub `stub` if `cond` holds on the flags in
    /// `flags`.
    BrFlags {
        /// Guest condition.
        cond: Cond,
        /// Flags word register.
        flags: IrReg,
        /// Target exit-stub index.
        stub: u32,
    },
}

impl IrInst {
    /// Integer destination, if any.
    pub fn dst(&self) -> Option<IrReg> {
        use IrInst::*;
        match *self {
            Alu { rd, .. }
            | AluI { rd, .. }
            | Li { rd, .. }
            | Mul { rd, .. }
            | Div { rd, .. }
            | FlagsArith { rd, .. }
            | Ld { rd, .. }
            | CvtFI { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Integer sources (up to two).
    pub fn srcs(&self) -> [Option<IrReg>; 2] {
        use IrInst::*;
        match *self {
            Alu { ra, rb, .. }
            | Mul { ra, rb, .. }
            | Div { ra, rb, .. }
            | FlagsArith { ra, rb, .. } => [Some(ra), Some(rb)],
            AluI { ra, .. } | CvtIF { ra, .. } => [Some(ra), None],
            Ld { base, .. } | FLd { base, .. } | Prefetch { base, .. } => [Some(base), None],
            St { rs, base, .. } => [Some(rs), Some(base)],
            FSt { base, .. } => [Some(base), None],
            BrFlags { flags, .. } => [Some(flags), None],
            _ => [None, None],
        }
    }

    /// FP destination, if any.
    pub fn fdst(&self) -> Option<IrFreg> {
        use IrInst::*;
        match *self {
            FLd { fd, .. } | FMov { fd, .. } | FArith { fd, .. } | CvtIF { fd, .. } => Some(fd),
            _ => None,
        }
    }

    /// FP sources (up to two).
    pub fn fsrcs(&self) -> [Option<IrFreg>; 2] {
        use IrInst::*;
        match *self {
            FArith { fa, fb, .. } => [Some(fa), Some(fb)],
            FMov { fa, .. } | CvtFI { fa, .. } => [Some(fa), None],
            FSt { fs, .. } => [Some(fs), None],
            _ => [None, None],
        }
    }

    /// Whether this is a memory read.
    pub fn is_load(&self) -> bool {
        matches!(self, IrInst::Ld { .. } | IrInst::FLd { .. })
    }

    /// Whether this is a memory write.
    pub fn is_store(&self) -> bool {
        matches!(self, IrInst::St { .. } | IrInst::FSt { .. })
    }

    /// Whether this is a control-flow instruction (side exit).
    pub fn is_branch(&self) -> bool {
        matches!(self, IrInst::BrFlags { .. })
    }

    /// Whether the instruction has a side effect beyond its register
    /// destination (memory write or control flow) and therefore must
    /// never be removed by DCE.
    pub fn has_side_effect(&self) -> bool {
        self.is_store() || self.is_branch() || matches!(self, IrInst::Prefetch { .. })
    }
}

impl std::fmt::Display for IrReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrReg::Phys(r) => write!(f, "r{}", r.0),
            IrReg::Virt(v) => write!(f, "t{v}"),
        }
    }
}

impl std::fmt::Display for IrFreg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrFreg::Phys(r) => write!(f, "f{}", r.0),
            IrFreg::Virt(v) => write!(f, "ft{v}"),
        }
    }
}

impl std::fmt::Display for IrInst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use IrInst::*;
        match *self {
            Nop => write!(f, "nop"),
            Alu { op, rd, ra, rb } => write!(f, "{rd} <- {op:?}({ra}, {rb})"),
            AluI { op, rd, ra, imm } => write!(f, "{rd} <- {op:?}({ra}, #{imm})"),
            Li { rd, imm } => write!(f, "{rd} <- #{imm}"),
            Mul { rd, ra, rb } => write!(f, "{rd} <- mul({ra}, {rb})"),
            Div { rd, ra, rb } => write!(f, "{rd} <- div({ra}, {rb})"),
            FlagsArith { kind, rd, ra, rb } => write!(f, "{rd} <- flags.{kind:?}({ra}, {rb})"),
            Prefetch { base, off } => write!(f, "prefetch [{base}{off:+}]"),
            Ld { rd, base, off, width } => write!(f, "{rd} <- ld.{width:?} [{base}{off:+}]"),
            St { rs, base, off, width } => write!(f, "st.{width:?} [{base}{off:+}] <- {rs}"),
            FLd { fd, base, off } => write!(f, "{fd} <- fld [{base}{off:+}]"),
            FSt { fs, base, off } => write!(f, "fst [{base}{off:+}] <- {fs}"),
            FMov { fd, fa } => write!(f, "{fd} <- {fa}"),
            FArith { op, fd, fa, fb } => write!(f, "{fd} <- f{op:?}({fa}, {fb})"),
            CvtIF { fd, ra } => write!(f, "{fd} <- cvt.if({ra})"),
            CvtFI { rd, fa } => write!(f, "{rd} <- cvt.fi({fa})"),
            BrFlags { cond, flags, stub } => write!(f, "br.{cond:?}({flags}) -> stub{stub}"),
        }
    }
}

/// Renders a block as one line per operation, for verifier reports and
/// debugging.
pub fn pretty(block: &IrBlock) -> String {
    let mut out = String::new();
    for (i, op) in block.ops.iter().enumerate() {
        out.push_str(&format!("{i:4}: {}   ; g{}\n", op.inst, op.guest_idx));
    }
    for (i, stub) in block.stubs.iter().enumerate() {
        out.push_str(&format!(
            "stub{i}: {stub:?} (retires {})\n",
            block.stub_guest_counts.get(i).copied().unwrap_or(0)
        ));
    }
    out.push_str(&format!("fall: {:?} (guest_len {})\n", block.fallthrough, block.guest_len));
    out
}

/// One IR operation with provenance (which guest instruction produced
/// it), used by debugging and by the BBM scratch allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrOp {
    /// The instruction.
    pub inst: IrInst,
    /// Index of the originating guest instruction within the translated
    /// region.
    pub guest_idx: u32,
}

/// A linear IR block: body, exit stubs, and the fall-through exit.
#[derive(Debug, Clone, PartialEq)]
pub struct IrBlock {
    /// Straight-line body.
    pub ops: Vec<IrOp>,
    /// Exit stubs; [`IrInst::BrFlags`] targets index into this list.
    pub stubs: Vec<Exit>,
    /// Guest instructions retired when leaving via each stub (parallel to
    /// `stubs`). Needed by co-simulation: a side exit retires fewer guest
    /// instructions than the whole region.
    pub stub_guest_counts: Vec<u32>,
    /// Where control goes when the body falls through.
    pub fallthrough: Exit,
    /// Number of guest instructions this block translates.
    pub guest_len: u32,
}

/// Register assignment produced by allocation: virtual → physical.
#[derive(Debug, Clone, Default)]
pub struct RegMap {
    /// Integer assignment.
    pub int: HashMap<u32, HReg>,
    /// FP assignment.
    pub fp: HashMap<u32, HFreg>,
}

impl RegMap {
    fn r(&self, r: IrReg) -> HReg {
        match r {
            IrReg::Phys(p) => p,
            IrReg::Virt(v) => *self.int.get(&v).expect("unallocated virtual register"),
        }
    }

    fn f(&self, r: IrFreg) -> HFreg {
        match r {
            IrFreg::Phys(p) => p,
            IrFreg::Virt(v) => *self.fp.get(&v).expect("unallocated virtual FP register"),
        }
    }
}

/// Lowers an IR block to host instructions using a register assignment.
///
/// Layout: body first (with `Nop` tombstones dropped), then the
/// fall-through exit, then each stub in order. `BrFlags` stub indices are
/// rewritten to host instruction indices.
///
/// # Panics
///
/// Panics if a virtual register has no assignment in `map` or a branch
/// targets a non-existent stub.
pub fn lower(block: &IrBlock, map: &RegMap) -> Vec<HInst> {
    let body: Vec<&IrOp> = block.ops.iter().filter(|op| op.inst != IrInst::Nop).collect();
    let body_len = body.len() as u32;
    let stub_pos = |stub: u32| -> u32 {
        assert!((stub as usize) < block.stubs.len(), "branch to missing stub");
        body_len + 1 + stub
    };
    let mut out = Vec::with_capacity(body.len() + 1 + block.stubs.len());
    for op in body {
        let h = match op.inst {
            IrInst::Nop => unreachable!("tombstones filtered"),
            IrInst::Alu { op, rd, ra, rb } => {
                HInst::Alu { op, rd: map.r(rd), ra: map.r(ra), rb: map.r(rb) }
            }
            IrInst::AluI { op, rd, ra, imm } => {
                HInst::AluI { op, rd: map.r(rd), ra: map.r(ra), imm }
            }
            IrInst::Li { rd, imm } => HInst::Li { rd: map.r(rd), imm },
            IrInst::Mul { rd, ra, rb } => {
                HInst::Mul { rd: map.r(rd), ra: map.r(ra), rb: map.r(rb) }
            }
            IrInst::Div { rd, ra, rb } => {
                HInst::Div { rd: map.r(rd), ra: map.r(ra), rb: map.r(rb) }
            }
            IrInst::FlagsArith { kind, rd, ra, rb } => {
                HInst::FlagsArith { kind, rd: map.r(rd), ra: map.r(ra), rb: map.r(rb) }
            }
            IrInst::Prefetch { base, off } => HInst::Prefetch { base: map.r(base), off },
            IrInst::Ld { rd, base, off, width } => {
                HInst::Ld { rd: map.r(rd), base: map.r(base), off, width }
            }
            IrInst::St { rs, base, off, width } => {
                HInst::St { rs: map.r(rs), base: map.r(base), off, width }
            }
            IrInst::FLd { fd, base, off } => HInst::FLd { fd: map.f(fd), base: map.r(base), off },
            IrInst::FSt { fs, base, off } => HInst::FSt { fs: map.f(fs), base: map.r(base), off },
            IrInst::FMov { fd, fa } => HInst::FMov { fd: map.f(fd), fa: map.f(fa) },
            IrInst::FArith { op, fd, fa, fb } => {
                HInst::FArith { op, fd: map.f(fd), fa: map.f(fa), fb: map.f(fb) }
            }
            IrInst::CvtIF { fd, ra } => HInst::CvtIF { fd: map.f(fd), ra: map.r(ra) },
            IrInst::CvtFI { rd, fa } => HInst::CvtFI { rd: map.r(rd), fa: map.f(fa) },
            IrInst::BrFlags { cond, flags, stub } => {
                HInst::BrFlags { cond, flags: map.r(flags), target: stub_pos(stub) }
            }
        };
        out.push(h);
    }
    out.push(HInst::Exit(block.fallthrough));
    for &stub in &block.stubs {
        out.push(HInst::Exit(stub));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_register_mapping() {
        assert_eq!(guest_gpr_reg(0), HReg(1));
        assert_eq!(guest_gpr_reg(7), HReg(8));
        assert_eq!(FLAGS_REG, HReg(9));
        assert_eq!(guest_fpr_reg(3), HFreg(3));
        const { assert!(SCRATCH_BASE > FLAGS_REG.0) };
        const { assert!(SCRATCH_END <= HReg::TOL_BASE) };
    }

    #[test]
    fn lower_resolves_stub_targets_and_drops_nops() {
        let mut map = RegMap::default();
        map.int.insert(0, HReg(10));
        let block = IrBlock {
            ops: vec![
                IrOp { inst: IrInst::Li { rd: IrReg::Virt(0), imm: 1 }, guest_idx: 0 },
                IrOp { inst: IrInst::Nop, guest_idx: 0 },
                IrOp {
                    inst: IrInst::BrFlags { cond: Cond::E, flags: IrReg::Phys(FLAGS_REG), stub: 0 },
                    guest_idx: 1,
                },
            ],
            stubs: vec![Exit::Direct { guest_target: 0x100, link: None }],
            stub_guest_counts: vec![2],
            fallthrough: Exit::Direct { guest_target: 0x200, link: None },
            guest_len: 2,
        };
        let host = lower(&block, &map);
        // body(2) + fallthrough + 1 stub
        assert_eq!(host.len(), 4);
        match host[1] {
            HInst::BrFlags { target, .. } => {
                assert_eq!(target, 3, "stub 0 lands after fallthrough")
            }
            ref other => panic!("expected BrFlags, got {other:?}"),
        }
        assert_eq!(host[2], HInst::Exit(Exit::Direct { guest_target: 0x200, link: None }));
        assert_eq!(host[3], HInst::Exit(Exit::Direct { guest_target: 0x100, link: None }));
    }

    #[test]
    fn ir_metadata() {
        let ld =
            IrInst::Ld { rd: IrReg::Virt(1), base: IrReg::Phys(HReg(2)), off: 4, width: Width::W4 };
        assert!(ld.is_load() && !ld.is_store() && !ld.has_side_effect());
        assert_eq!(ld.dst(), Some(IrReg::Virt(1)));
        let st =
            IrInst::St { rs: IrReg::Virt(1), base: IrReg::Phys(HReg(2)), off: 0, width: Width::W4 };
        assert!(st.has_side_effect());
        let br = IrInst::BrFlags { cond: Cond::Ne, flags: IrReg::Phys(FLAGS_REG), stub: 0 };
        assert!(br.is_branch() && br.has_side_effect());
    }

    #[test]
    #[should_panic(expected = "unallocated virtual register")]
    fn missing_allocation_panics() {
        let block = IrBlock {
            ops: vec![IrOp { inst: IrInst::Li { rd: IrReg::Virt(7), imm: 0 }, guest_idx: 0 }],
            stubs: vec![],
            stub_guest_counts: vec![],
            fallthrough: Exit::Halt,
            guest_len: 1,
        };
        let _ = lower(&block, &RegMap::default());
    }
}
