//! Background translation pool: overlap TOL compile work with emulation.
//!
//! The paper's central cost is the software layer itself — translation
//! and optimization cycles stolen from the application — and real
//! co-designed processors hide that cost by running the layer
//! concurrently with execution. This module does the same for the
//! *wall-clock* side of our simulator without perturbing the *simulated*
//! side by a single event:
//!
//! * When the profiler reaches a deterministic trigger a little before a
//!   BBM/SBM promotion threshold, the engine snapshots the guest region
//!   (plus its SMC page stamps) and submits the actual Rust work —
//!   decode → IR → analysis → optimization passes → verification →
//!   emission → retirement-template compilation — to a pool of worker
//!   threads, then keeps emulating.
//! * At the exact simulated point where the synchronous path would
//!   translate (the promotion check in the dispatcher), the engine joins
//!   the in-flight job. The join **validates** the snapshot against the
//!   install-time state: the covered code pages must be unwritten since
//!   enqueue ([`crate::codecache::pages_dirty`]) and the snapshot region
//!   must equal the freshly formed one. Any mismatch discards the job
//!   and the engine compiles synchronously from the fresh inputs.
//!
//! Because every compile here is a pure function of `(region, config)` —
//! including the translation validator, whose differential fallback is
//! seeded from block content — the installed artifact is byte-identical
//! whether it came from a worker or from the synchronous fallback, and
//! therefore identical to `translate_workers = 0` (the oracle). Only
//! wall-clock observables (pass nanoseconds, [`TranslationPoolStats`])
//! differ, and those are deliberately excluded from every serialized
//! report.

use crate::codecache::smc_stamp;
use crate::config::TolConfig;
use crate::ir::{lower, RegMap};
use crate::opt;
use crate::translate::{translate_region, translate_region_scratch, IrScratch, RegionInst};
use crate::verify::VerifyStats;
use darco_guest::GuestMem;
use darco_host::{compile_block, HFreg, HInst, RetireTemplate};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// What the `deadflags` analysis did to a BBM block, reported back so
/// the engine can merge counters at the install point exactly as the
/// synchronous path does.
#[derive(Debug)]
pub(crate) struct DeadflagsDelta {
    /// Dead `FlagsArith` definitions deleted.
    pub flags_killed: u64,
    /// Net live instructions removed.
    pub insts_removed: i64,
    /// Wall-clock nanoseconds the pass took (worker- or engine-side).
    pub nanos: u64,
}

/// A compiled BBM basic block, ready to stamp and install.
#[derive(Debug)]
pub(crate) struct BbCompiled {
    pub insts: Vec<HInst>,
    pub stub_guest_counts: Vec<u32>,
    pub guest_len: u32,
    pub body_len: u32,
    pub deadflags: Option<DeadflagsDelta>,
}

/// How a superblock's optimization pipeline ended.
#[derive(Debug)]
pub(crate) enum SbOutcome {
    /// Pipeline ran (and, where enabled, verified) successfully.
    Optimized(VerifyStats),
    /// Register allocation failed; the unoptimized lowering was used.
    OutOfRegisters,
    /// The verifier rejected a pass; the unoptimized lowering was used.
    Miscompile,
}

/// A compiled SBM superblock, ready to stamp and install.
#[derive(Debug)]
pub(crate) struct SbCompiled {
    pub insts: Vec<HInst>,
    pub stub_guest_counts: Vec<u32>,
    pub guest_len: u32,
    pub body_len: u32,
    /// Unoptimized (eager-flags) IR length, for the cost model.
    pub ir_len: usize,
    pub outcome: SbOutcome,
}

/// BBM register allocation: temporaries never live across guest
/// instruction boundaries, so a per-guest-instruction round-robin over
/// the scratch file suffices (and can never run out).
pub(crate) fn bbm_allocate(block: &crate::ir::IrBlock) -> RegMap {
    use crate::ir::{IrFreg, IrReg, FSCRATCH_BASE, SCRATCH_BASE};
    let mut map = RegMap::default();
    let mut gi = u32::MAX;
    let mut next_int = SCRATCH_BASE;
    let mut next_fp = FSCRATCH_BASE;
    for op in &block.ops {
        if op.guest_idx != gi {
            gi = op.guest_idx;
            next_int = SCRATCH_BASE;
            next_fp = FSCRATCH_BASE;
        }
        let alloc_int = |v: u32, map: &mut RegMap, next: &mut u8| {
            map.int.entry(v).or_insert_with(|| {
                let r = darco_host::HReg(*next);
                *next += 1;
                assert!(*next <= crate::ir::SCRATCH_END, "BBM scratch overflow");
                r
            });
        };
        for s in op.inst.srcs().into_iter().flatten() {
            if let IrReg::Virt(v) = s {
                alloc_int(v, &mut map, &mut next_int);
            }
        }
        if let Some(IrReg::Virt(v)) = op.inst.dst() {
            alloc_int(v, &mut map, &mut next_int);
        }
        let alloc_fp = |v: u32, map: &mut RegMap, next: &mut u8| {
            map.fp.entry(v).or_insert_with(|| {
                let r = HFreg(*next);
                *next += 1;
                assert!(*next <= crate::ir::FSCRATCH_END, "BBM FP scratch overflow");
                r
            });
        };
        for s in op.inst.fsrcs().into_iter().flatten() {
            if let IrFreg::Virt(v) = s {
                alloc_fp(v, &mut map, &mut next_fp);
            }
        }
        if let Some(IrFreg::Virt(v)) = op.inst.fdst() {
            alloc_fp(v, &mut map, &mut next_fp);
        }
    }
    map
}

/// The BBM compile pipeline as a pure function of `(region, cfg)`:
/// translate, optionally run the analysis-driven `deadflags` kill and
/// the peephole passes, allocate, lower. Shared verbatim by the engine's
/// synchronous path and the pool workers so both produce byte-identical
/// host code.
pub(crate) fn compile_bb(
    region: &[RegionInst],
    cfg: &TolConfig,
    scratch: &mut IrScratch,
) -> BbCompiled {
    let mut block = translate_region_scratch(region, cfg.opt_deadflags, scratch);
    let deadflags = if cfg.opt_deadflags {
        // Eager flag materialization + liveness-driven kill converges
        // to the same host code the intrinsic elision produces.
        let live_before = block.ops.iter().filter(|o| o.inst != crate::ir::IrInst::Nop).count();
        let start = std::time::Instant::now();
        let killed = opt::deadflags::run(&mut block);
        let nanos = start.elapsed().as_nanos() as u64;
        let live_after = block.ops.iter().filter(|o| o.inst != crate::ir::IrInst::Nop).count();
        Some(DeadflagsDelta {
            flags_killed: u64::from(killed),
            insts_removed: live_before as i64 - live_after as i64,
            nanos,
        })
    } else {
        None
    };
    if cfg.bbm_peephole {
        opt::constprop::run(&mut block, true);
        opt::dce::run(&mut block);
    }
    let map = bbm_allocate(&block);
    let insts = lower(&block, &map);
    let body_len = insts.len() as u32 - 1 - block.stubs.len() as u32;
    let stub_guest_counts = std::mem::take(&mut block.stub_guest_counts);
    let guest_len = block.guest_len;
    scratch.recycle(block);
    BbCompiled { insts, stub_guest_counts, guest_len, body_len, deadflags }
}

/// The SBM compile pipeline as a pure function of `(region, cfg)`:
/// translate eagerly, run the full optimization pipeline (falling back
/// to the unoptimized lowering on allocation failure or a verifier
/// rejection), lower. Shared by the synchronous path and the workers.
pub(crate) fn compile_sb(
    region: &[RegionInst],
    cfg: &TolConfig,
    scratch: &mut IrScratch,
) -> SbCompiled {
    let block = translate_region_scratch(region, cfg.opt_deadflags, scratch);
    let ir_len = block.ops.len();
    let (mut block, map, outcome) = match opt::optimize_stats(block, cfg) {
        Ok((opt_block, map, stats)) => (opt_block, map, SbOutcome::Optimized(stats)),
        Err(opt::OptError::OutOfRegisters) => {
            // Fall back to the intrinsically elided translation so the
            // unoptimized lowering matches the non-eager path exactly.
            let block = translate_region(region);
            let map = bbm_allocate(&block);
            (block, map, SbOutcome::OutOfRegisters)
        }
        Err(opt::OptError::Miscompile(_)) => {
            // The verifier rejected a pass's output: never install
            // unverified code; fall back to the unoptimized lowering.
            let block = translate_region(region);
            let map = bbm_allocate(&block);
            (block, map, SbOutcome::Miscompile)
        }
    };
    let insts = lower(&block, &map);
    let body_len = insts.len() as u32 - 1 - block.stubs.len() as u32;
    let stub_guest_counts = std::mem::take(&mut block.stub_guest_counts);
    let guest_len = block.guest_len;
    scratch.recycle(block);
    SbCompiled { insts, stub_guest_counts, guest_len, body_len, ir_len, outcome }
}

/// Stamps a snapshot region's code pages: the covered guest pages and
/// the maximum page write-generation over them, exactly as the code
/// cache stamps an installed block.
pub(crate) fn stamp_region(mem: &GuestMem, region: &[RegionInst]) -> (Vec<u32>, u64) {
    smc_stamp(mem, region.iter().map(|r| r.pc))
}

/// Which translation pipeline a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum JobKind {
    /// BBM basic-block translation.
    Bb,
    /// SBM superblock optimization.
    Sb,
}

/// A submitted compile job.
struct Job {
    kind: JobKind,
    region: Vec<RegionInst>,
    tx: Sender<JobOut>,
}

/// A finished compile, including base-relative retirement templates
/// (compiled at host base 0; the code cache rebases them at install).
#[derive(Debug)]
pub(crate) enum JobOut {
    Bb { compiled: BbCompiled, templates: Vec<RetireTemplate> },
    Sb { compiled: SbCompiled, templates: Vec<RetireTemplate> },
}

/// Engine-side record of an in-flight job: the result channel plus the
/// enqueue-time snapshot the join validates against install-time state.
#[derive(Debug)]
pub(crate) struct PendingJob {
    /// Receives the worker's finished compile.
    pub rx: Receiver<JobOut>,
    /// The snapshot region the worker is compiling.
    pub region: Vec<RegionInst>,
    /// Guest code pages the snapshot spans.
    pub pages: Vec<u32>,
    /// Maximum page write-generation over `pages` at enqueue time.
    pub gen: u64,
}

#[derive(Debug, Default)]
struct PoolShared {
    busy_ns: AtomicU64,
    completed: AtomicU64,
}

/// The worker pool. Threads are spawned lazily on the first submit (so
/// a run that never crosses a promotion threshold costs nothing) and
/// joined on drop by closing the job channel.
#[derive(Debug)]
pub(crate) struct TranslatePool {
    workers: usize,
    cfg: TolConfig,
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<PoolShared>,
}

impl TranslatePool {
    pub fn new(workers: usize, cfg: TolConfig) -> TranslatePool {
        TranslatePool {
            workers: workers.max(1),
            cfg,
            tx: None,
            handles: Vec::new(),
            shared: Arc::new(PoolShared::default()),
        }
    }

    fn ensure_spawned(&mut self) -> &Sender<Job> {
        if self.tx.is_none() {
            let (tx, rx) = mpsc::channel::<Job>();
            let rx = Arc::new(Mutex::new(rx));
            for _ in 0..self.workers {
                let rx = Arc::clone(&rx);
                let cfg = self.cfg.clone();
                let shared = Arc::clone(&self.shared);
                self.handles.push(std::thread::spawn(move || worker_loop(&rx, &cfg, &shared)));
            }
            self.tx = Some(tx);
        }
        self.tx.as_ref().expect("spawned above")
    }

    /// Submits a compile job, returning the receiver for its result. A
    /// send can only fail if every worker died; the receiver then reports
    /// disconnection at join time and the engine recompiles synchronously.
    pub fn submit(&mut self, kind: JobKind, region: Vec<RegionInst>) -> Receiver<JobOut> {
        let (tx, rx) = mpsc::channel();
        let _ = self.ensure_spawned().send(Job { kind, region, tx });
        rx
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total wall-clock nanoseconds workers spent compiling.
    pub fn busy_ns(&self) -> u64 {
        self.shared.busy_ns.load(Ordering::Relaxed)
    }

    /// Jobs fully compiled by workers (including later-discarded ones).
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }
}

impl Drop for TranslatePool {
    fn drop(&mut self) {
        self.tx = None; // closing the channel ends every worker loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, cfg: &TolConfig, shared: &PoolShared) {
    let mut scratch = IrScratch::default();
    loop {
        // A poisoned lock cannot corrupt a Receiver (recv holds no
        // invariants across panics), so it is taken anyway.
        let job = match rx.lock() {
            Ok(g) => g.recv(),
            Err(p) => p.into_inner().recv(),
        };
        let Ok(job) = job else { break };
        let t0 = std::time::Instant::now();
        let out = match job.kind {
            JobKind::Bb => {
                let compiled = compile_bb(&job.region, cfg, &mut scratch);
                let templates = compile_block(&compiled.insts, 0);
                JobOut::Bb { compiled, templates }
            }
            JobKind::Sb => {
                let compiled = compile_sb(&job.region, cfg, &mut scratch);
                let templates = compile_block(&compiled.insts, 0);
                JobOut::Sb { compiled, templates }
            }
        };
        shared.busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        // The engine may already have discarded the job (SMC write or
        // stale snapshot); a dropped receiver is fine.
        let _ = job.tx.send(out);
    }
}

/// Wall-clock statistics of the background translation pool.
///
/// Deliberately excluded from [`RunSummary`](crate::RunSummary) and
/// every other serialized report: those must stay byte-identical across
/// `translate_workers` settings and reruns. The bench driver reads these
/// through [`Tol::pool_stats`](crate::Tol::pool_stats) instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationPoolStats {
    /// Configured worker threads (0 = synchronous oracle).
    pub workers: usize,
    /// Jobs handed to the pool.
    pub jobs_enqueued: u64,
    /// Joins whose pooled result was installed.
    pub installed_from_pool: u64,
    /// Joins where the result was already finished (full overlap).
    pub ready_at_install: u64,
    /// Joins that had to block on an unfinished job.
    pub stalls_at_install: u64,
    /// Pending jobs invalidated by a guest write to a covered code page.
    pub discarded_smc: u64,
    /// Pending jobs discarded because the install-time region differed
    /// from the snapshot (profile drift or a re-fired trigger).
    pub discarded_stale: u64,
    /// Jobs fully compiled by workers (including discarded ones).
    pub jobs_completed: u64,
    /// Peak number of simultaneously pending jobs.
    pub max_in_flight: u64,
    /// Total wall-clock nanoseconds workers spent compiling.
    pub worker_busy_ns: u64,
}
