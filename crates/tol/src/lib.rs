//! # darco-tol — the Translation Optimization Layer
//!
//! The subject of the paper: the software layer of a HW/SW co-designed
//! processor. It dynamically translates guest (g86) code to the host RISC
//! ISA through three execution modes (paper Fig. 3):
//!
//! * **IM** — interpretation, for cold code ([`interp`]),
//! * **BBM** — basic-block translation with light peephole optimization
//!   and edge profiling, once a branch target executes more than
//!   `IM/BBth` times ([`translate`]),
//! * **SBM** — superblock formation along the hot profiled path plus an
//!   optimization pipeline (copy/constant propagation, constant folding,
//!   common-subexpression elimination, dead-code elimination, register
//!   allocation, instruction scheduling), once a block executes more than
//!   `BB/SBth` times ([`superblock`], [`opt`]).
//!
//! Translations live in a bounded [`codecache`], are linked to each other
//! by [chaining](codecache::CodeCache::chain), and indirect control
//! transfers go through an [`ibtc`] (Indirect Branch Translation Cache)
//! backed by a full translation-map lookup on miss.
//!
//! Every activity reports its dynamic host instruction footprint through
//! the [`emission`] cost models, tagged with the paper's execution-time
//! categories ([`darco_host::Component`]), so the timing simulator can
//! attribute cycles and microarchitectural events to the layer exactly as
//! DARCO does. The [`engine::Tol`] type ties the modes together into the
//! execution flow of Fig. 3.
//!
//! ```
//! use darco_guest::{asm::Asm, AluOp, CpuState, Gpr, GuestMem, Inst};
//! use darco_tol::{Tol, TolConfig};
//!
//! // A tiny guest program: eax = 5 + 37, then halt.
//! let mut a = Asm::new(0x1000);
//! a.push(Inst::MovRI { dst: Gpr::Eax, imm: 5 });
//! a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 37 });
//! a.push(Inst::Halt);
//! let p = a.assemble();
//! let mut mem = GuestMem::new();
//! mem.write_bytes(p.base, &p.bytes);
//!
//! let mut tol = Tol::new(TolConfig::default(), p.base);
//! let mut host_insts = 0u64;
//! let mut sink = darco_host::RetireSink(|_d: &darco_host::DynInst| host_insts += 1);
//! tol.run(&mut mem, &mut sink, u64::MAX)?;
//! assert_eq!(tol.emulated_state().gpr(Gpr::Eax), 42);
//! assert!(host_insts > 3, "emulation costs host instructions");
//! # Ok::<(), darco_guest::DecodeError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod codecache;
pub mod config;
pub mod emission;
pub mod engine;
pub mod ibtc;
pub mod interp;
pub mod ir;
pub mod opt;
mod pool;
pub mod profile;
pub mod superblock;
pub mod translate;
pub mod verify;

pub use analysis::analyze_region_text;
pub use config::TolConfig;
pub use engine::{EngineMemoStats, Mode, RunSummary, StepOutcome, Tol, TolCounters};
pub use pool::TranslationPoolStats;
pub use verify::{PassDelta, VerifyFailure, VerifyStats};
