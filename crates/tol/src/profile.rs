//! Runtime profiling: promotion counters, edge profiles and the
//! static/dynamic mode accounting behind the paper's Fig. 5.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Highest execution mode a static guest instruction has reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StaticMode {
    /// Only ever interpreted.
    Im,
    /// Translated as part of a basic block.
    Bbm,
    /// Included in an optimized superblock.
    Sbm,
}

/// Direction counts of a basic block's terminal conditional branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeProfile {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times it fell through.
    pub not_taken: u64,
}

impl EdgeProfile {
    /// Total executions.
    pub fn total(&self) -> u64 {
        self.taken + self.not_taken
    }

    /// Bias toward the majority direction, in `0.5..=1.0` (1.0 when
    /// empty, so formation treats unprofiled edges as unfollowable only
    /// via the count check).
    pub fn bias(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        self.taken.max(self.not_taken) as f64 / t as f64
    }

    /// `true` if the majority direction is *taken*.
    pub fn majority_taken(&self) -> bool {
        self.taken >= self.not_taken
    }
}

/// The profiler: IM promotion counters, BBM edge profiles, and
/// per-static-instruction mode tracking.
#[derive(Debug, Default)]
pub struct Profiler {
    target_counts: HashMap<u32, u32>,
    edges: HashMap<u32, EdgeProfile>, // keyed by BB guest entry
    static_modes: HashMap<u32, StaticMode>,
    /// Dynamic guest instructions executed per mode `[IM, BBM, SBM]`.
    pub dyn_insts: [u64; 3],
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Bumps and returns the execution count of a branch target
    /// (IM-phase promotion counter).
    pub fn bump_target(&mut self, pc: u32) -> u32 {
        let c = self.target_counts.entry(pc).or_insert(0);
        *c += 1;
        *c
    }

    /// Records the direction of the terminal branch of the BB at
    /// `bb_entry` (gathered by BBM instrumentation).
    pub fn record_edge(&mut self, bb_entry: u32, taken: bool) {
        let e = self.edges.entry(bb_entry).or_default();
        if taken {
            e.taken += 1;
        } else {
            e.not_taken += 1;
        }
    }

    /// Edge profile of a BB, if any was collected.
    pub fn edge(&self, bb_entry: u32) -> Option<EdgeProfile> {
        self.edges.get(&bb_entry).copied()
    }

    /// Marks static instructions as having reached `mode` (monotonic:
    /// a pc never moves back down).
    pub fn mark_static(&mut self, pcs: impl IntoIterator<Item = u32>, mode: StaticMode) {
        for pc in pcs {
            let e = self.static_modes.entry(pc).or_insert(mode);
            if *e < mode {
                *e = mode;
            }
        }
    }

    /// Highest mode a static instruction has reached, if seen.
    pub fn static_mode(&self, pc: u32) -> Option<StaticMode> {
        self.static_modes.get(&pc).copied()
    }

    /// Counts `n` dynamic guest instructions executed in `mode`.
    pub fn count_dynamic(&mut self, mode: StaticMode, n: u64) {
        self.dyn_insts[mode as usize] += n;
    }

    /// Static instruction counts per final mode `[IM, BBM, SBM]`
    /// (the paper's Fig. 5a).
    pub fn static_distribution(&self) -> [u64; 3] {
        let mut out = [0; 3];
        for m in self.static_modes.values() {
            out[*m as usize] += 1;
        }
        out
    }

    /// Total distinct static guest instructions observed.
    pub fn static_total(&self) -> u64 {
        self.static_modes.len() as u64
    }

    /// Total dynamic guest instructions.
    pub fn dynamic_total(&self) -> u64 {
        self.dyn_insts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_counter() {
        let mut p = Profiler::new();
        for expect in 1..=6 {
            assert_eq!(p.bump_target(0x100), expect);
        }
        assert_eq!(p.bump_target(0x200), 1, "independent targets");
    }

    #[test]
    fn edge_bias() {
        let mut p = Profiler::new();
        for _ in 0..9 {
            p.record_edge(0x100, true);
        }
        p.record_edge(0x100, false);
        let e = p.edge(0x100).unwrap();
        assert_eq!(e.total(), 10);
        assert!((e.bias() - 0.9).abs() < 1e-12);
        assert!(e.majority_taken());
        assert_eq!(p.edge(0x999), None);
    }

    #[test]
    fn static_modes_are_monotonic() {
        let mut p = Profiler::new();
        p.mark_static([0x100, 0x104], StaticMode::Im);
        p.mark_static([0x104], StaticMode::Sbm);
        p.mark_static([0x104], StaticMode::Im); // must not demote
        assert_eq!(p.static_distribution(), [1, 0, 1]);
        assert_eq!(p.static_total(), 2);
    }

    #[test]
    fn dynamic_counting() {
        let mut p = Profiler::new();
        p.count_dynamic(StaticMode::Im, 10);
        p.count_dynamic(StaticMode::Sbm, 90);
        assert_eq!(p.dyn_insts, [10, 0, 90]);
        assert_eq!(p.dynamic_total(), 100);
    }
}
