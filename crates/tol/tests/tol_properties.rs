//! Property tests for the software layer's compilation pipeline:
//! lowering shape, register-allocation validity and optimizer
//! semantic preservation on random basic blocks.

use darco_guest::asm::Asm;
use darco_guest::{AluOp, CpuState, Gpr, GuestMem, Inst, MemRef, MemWidth, ShiftOp};
use darco_host::{exec_inst, HostState, Outcome};
use darco_tol::config::TolConfig;
use darco_tol::ir::{self, lower};
use darco_tol::opt;
use darco_tol::translate::{decode_bb, translate_region};
use proptest::prelude::*;

fn gpr() -> impl Strategy<Value = Gpr> {
    prop_oneof![
        Just(Gpr::Eax),
        Just(Gpr::Ecx),
        Just(Gpr::Edx),
        Just(Gpr::Ebx),
        Just(Gpr::Esi),
        Just(Gpr::Edi),
    ]
}

fn straightline() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (gpr(), gpr()).prop_map(|(dst, src)| Inst::MovRR { dst, src }),
        (gpr(), any::<i16>()).prop_map(|(dst, imm)| Inst::MovRI { dst, imm: imm as i32 }),
        (gpr(), gpr()).prop_map(|(dst, src)| Inst::AluRR { op: AluOp::Add, dst, src }),
        (gpr(), -100i32..100).prop_map(|(dst, imm)| Inst::AluRI { op: AluOp::Xor, dst, imm }),
        (gpr(), 0u8..31).prop_map(|(dst, amount)| Inst::Shift { op: ShiftOp::Shr, dst, amount }),
        (gpr(), 0i32..0x1000).prop_map(|(dst, off)| Inst::Load {
            dst,
            addr: MemRef { base: None, index: None, scale: darco_guest::Scale::S1, disp: 0x4_0000 + off },
        }),
        (gpr(), 0i32..0x1000).prop_map(|(src, off)| Inst::Store {
            addr: MemRef { base: None, index: None, scale: darco_guest::Scale::S1, disp: 0x4_0000 + off },
            src,
        }),
        (gpr(), gpr()).prop_map(|(dst, src)| Inst::Imul { dst, src }),
        (gpr(), 0i32..0x1000, any::<bool>()).prop_map(|(dst, off, w)| Inst::LoadSx {
            dst,
            addr: MemRef { base: None, index: None, scale: darco_guest::Scale::S1, disp: 0x4_0000 + off },
            width: if w { MemWidth::B2 } else { MemWidth::B1 },
        }),
        (gpr(), 0i32..0x1000, any::<bool>()).prop_map(|(src, off, w)| Inst::StoreN {
            addr: MemRef { base: None, index: None, scale: darco_guest::Scale::S1, disp: 0x4_0000 + off },
            src,
            width: if w { MemWidth::B2 } else { MemWidth::B1 },
        }),
        gpr().prop_map(|dst| Inst::Neg { dst }),
    ]
}

/// Assembles `body` + `halt` into guest memory and returns the decoded
/// basic block region.
fn make_bb(body: &[Inst]) -> (GuestMem, u32, Vec<darco_tol::translate::RegionInst>) {
    let mut a = Asm::new(0x1000);
    for i in body {
        a.push(*i);
    }
    a.push(Inst::Halt);
    let p = a.assemble();
    let mut mem = GuestMem::new();
    mem.write_bytes(p.base, &p.bytes);
    let bb = decode_bb(&mem, p.base).expect("decode");
    (mem, p.base, bb)
}

/// Runs lowered host code for a one-exit block, returning the final
/// host state.
fn run_lowered(host: &[darco_host::HInst], mem: &mut GuestMem, init: &CpuState) -> HostState {
    let mut st = HostState::new();
    for (i, g) in darco_guest::Gpr::ALL.iter().enumerate() {
        st.set_reg(ir::guest_gpr_reg(i), init.gpr(*g));
    }
    st.set_reg(ir::FLAGS_REG, init.flags.to_word());
    let mut idx = 0usize;
    loop {
        match exec_inst(&mut st, &host[idx], mem) {
            Outcome::Next => idx += 1,
            Outcome::Taken(t) => idx = t as usize,
            Outcome::Exited(_) => return st,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The optimizer never changes what a basic block computes: the
    /// unoptimized and fully optimized lowerings finish in identical
    /// pinned guest state and identical memory.
    #[test]
    fn optimizer_preserves_block_semantics(
        body in proptest::collection::vec(straightline(), 1..25),
        seed in any::<u32>(),
    ) {
        let (mem0, _, bb) = make_bb(&body);
        let ir_block = translate_region(&bb);

        // Baseline: no passes, trivial allocation via the optimizer with
        // everything off.
        let off = TolConfig::no_optimization();
        let (plain_block, plain_map) = opt::optimize(ir_block.clone(), &off).expect("alloc");
        let plain = lower(&plain_block, &plain_map);

        // Full pipeline (including the software-prefetch pass).
        let on = TolConfig { opt_sw_prefetch: true, ..TolConfig::default() };
        let (opt_block, opt_map) = opt::optimize(ir_block, &on).expect("alloc");
        let optimized = lower(&opt_block, &opt_map);

        let mut init = CpuState::at(0x1000);
        let mut x = seed | 1;
        for g in darco_guest::Gpr::ALL {
            x = x.wrapping_mul(2654435761).wrapping_add(12345);
            if g != Gpr::Esp {
                init.set_gpr(g, x);
            }
        }
        init.set_gpr(Gpr::Esp, 0x8_0000);

        let mut mem_a = mem0.clone();
        let sa = run_lowered(&plain, &mut mem_a, &init);
        let mut mem_b = mem0.clone();
        let sb = run_lowered(&optimized, &mut mem_b, &init);

        for i in 0..8 {
            prop_assert_eq!(
                sa.reg(ir::guest_gpr_reg(i)),
                sb.reg(ir::guest_gpr_reg(i)),
                "guest register {} differs", i
            );
        }
        prop_assert_eq!(
            sa.reg(ir::FLAGS_REG),
            sb.reg(ir::FLAGS_REG),
            "flags differ"
        );
        prop_assert_eq!(mem_a.first_difference(&mem_b), None, "memory differs");
    }

    /// Register allocation keeps every assignment inside the scratch
    /// window of the application register half.
    #[test]
    fn regalloc_stays_in_scratch_range(body in proptest::collection::vec(straightline(), 1..25)) {
        let (_, _, bb) = make_bb(&body);
        let block = translate_region(&bb);
        let (block, map) = opt::optimize(block, &TolConfig::default()).expect("alloc");
        for r in map.int.values() {
            prop_assert!((ir::SCRATCH_BASE..ir::SCRATCH_END).contains(&r.0));
        }
        for f in map.fp.values() {
            prop_assert!((ir::FSCRATCH_BASE..ir::FSCRATCH_END).contains(&f.0));
        }
        // Lowering covers the whole block: body + fallthrough + stubs.
        let host = lower(&block, &map);
        let live_ops = block.ops.iter().filter(|o| o.inst != darco_tol::ir::IrInst::Nop).count();
        prop_assert_eq!(host.len(), live_ops + 1 + block.stubs.len());
    }
}
