//! Property tests for the software layer's compilation pipeline:
//! lowering shape, register-allocation validity and optimizer
//! semantic preservation on random basic blocks. Driven by a seeded
//! deterministic generator (no crates.io access, so `proptest` is
//! replaced by case loops over a `SmallRng`).

use darco_guest::asm::Asm;
use darco_guest::{AluOp, CpuState, Gpr, GuestMem, Inst, MemRef, MemWidth, ShiftOp};
use darco_host::{exec_inst, HostState, Outcome};
use darco_tol::analysis::oracle;
use darco_tol::config::TolConfig;
use darco_tol::ir::{self, lower};
use darco_tol::opt;
use darco_tol::translate::{decode_bb, translate_region, translate_region_with};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const GPRS: [Gpr; 6] = [Gpr::Eax, Gpr::Ecx, Gpr::Edx, Gpr::Ebx, Gpr::Esi, Gpr::Edi];

fn gpr(rng: &mut SmallRng) -> Gpr {
    GPRS[rng.gen_range(0..GPRS.len())]
}

fn data_ref(rng: &mut SmallRng) -> MemRef {
    MemRef {
        base: None,
        index: None,
        scale: darco_guest::Scale::S1,
        disp: 0x4_0000 + rng.gen_range(0i32..0x1000),
    }
}

fn narrow_width(rng: &mut SmallRng) -> MemWidth {
    if rng.gen_bool(0.5) {
        MemWidth::B2
    } else {
        MemWidth::B1
    }
}

fn straightline(rng: &mut SmallRng) -> Inst {
    match rng.gen_range(0..11) {
        0 => Inst::MovRR { dst: gpr(rng), src: gpr(rng) },
        1 => Inst::MovRI { dst: gpr(rng), imm: rng.gen_range(-0x8000i32..0x8000) },
        2 => Inst::AluRR { op: AluOp::Add, dst: gpr(rng), src: gpr(rng) },
        3 => Inst::AluRI { op: AluOp::Xor, dst: gpr(rng), imm: rng.gen_range(-100i32..100) },
        4 => Inst::Shift { op: ShiftOp::Shr, dst: gpr(rng), amount: rng.gen_range(0u8..31) },
        5 => Inst::Load { dst: gpr(rng), addr: data_ref(rng) },
        6 => Inst::Store { addr: data_ref(rng), src: gpr(rng) },
        7 => Inst::Imul { dst: gpr(rng), src: gpr(rng) },
        8 => Inst::LoadSx { dst: gpr(rng), addr: data_ref(rng), width: narrow_width(rng) },
        9 => Inst::StoreN { addr: data_ref(rng), src: gpr(rng), width: narrow_width(rng) },
        _ => Inst::Neg { dst: gpr(rng) },
    }
}

/// Assembles `body` + `halt` into guest memory and returns the decoded
/// basic block region.
fn make_bb(body: &[Inst]) -> (GuestMem, u32, Vec<darco_tol::translate::RegionInst>) {
    let mut a = Asm::new(0x1000);
    for i in body {
        a.push(*i);
    }
    a.push(Inst::Halt);
    let p = a.assemble();
    let mut mem = GuestMem::new();
    mem.write_bytes(p.base, &p.bytes);
    let bb = decode_bb(&mem, p.base).expect("decode");
    (mem, p.base, bb)
}

/// Runs lowered host code for a one-exit block, returning the final
/// host state.
fn run_lowered(host: &[darco_host::HInst], mem: &mut GuestMem, init: &CpuState) -> HostState {
    let mut st = HostState::new();
    for (i, g) in darco_guest::Gpr::ALL.iter().enumerate() {
        st.set_reg(ir::guest_gpr_reg(i), init.gpr(*g));
    }
    st.set_reg(ir::FLAGS_REG, init.flags.to_word());
    let mut idx = 0usize;
    loop {
        match exec_inst(&mut st, &host[idx], mem) {
            Outcome::Next => idx += 1,
            Outcome::Taken(t) => idx = t as usize,
            Outcome::Exited(_) => return st,
        }
    }
}

/// The optimizer never changes what a basic block computes: the
/// unoptimized and fully optimized lowerings finish in identical
/// pinned guest state and identical memory.
#[test]
fn optimizer_preserves_block_semantics() {
    for case in 0u64..32 {
        let mut rng = SmallRng::seed_from_u64(0x70_0001 + case);
        let len = rng.gen_range(1usize..25);
        let body: Vec<Inst> = (0..len).map(|_| straightline(&mut rng)).collect();
        let seed: u32 = rng.gen();

        let (mem0, _, bb) = make_bb(&body);
        let ir_block = translate_region(&bb);

        // Baseline: no passes, trivial allocation via the optimizer with
        // everything off.
        let off = TolConfig::no_optimization();
        let (plain_block, plain_map) = opt::optimize(ir_block.clone(), &off).expect("alloc");
        let plain = lower(&plain_block, &plain_map);

        // Full pipeline (including the software-prefetch pass).
        let on = TolConfig { opt_sw_prefetch: true, ..TolConfig::default() };
        let (opt_block, opt_map) = opt::optimize(ir_block, &on).expect("alloc");
        let optimized = lower(&opt_block, &opt_map);

        let mut init = CpuState::at(0x1000);
        let mut x = seed | 1;
        for g in darco_guest::Gpr::ALL {
            x = x.wrapping_mul(2654435761).wrapping_add(12345);
            if g != Gpr::Esp {
                init.set_gpr(g, x);
            }
        }
        init.set_gpr(Gpr::Esp, 0x8_0000);

        let mut mem_a = mem0.clone();
        let sa = run_lowered(&plain, &mut mem_a, &init);
        let mut mem_b = mem0.clone();
        let sb = run_lowered(&optimized, &mut mem_b, &init);

        for i in 0..8 {
            assert_eq!(
                sa.reg(ir::guest_gpr_reg(i)),
                sb.reg(ir::guest_gpr_reg(i)),
                "case {case}: guest register {i} differs"
            );
        }
        assert_eq!(sa.reg(ir::FLAGS_REG), sb.reg(ir::FLAGS_REG), "case {case}: flags differ");
        assert_eq!(mem_a.first_difference(&mem_b), None, "case {case}: memory differs");
    }
}

/// Register allocation keeps every assignment inside the scratch
/// window of the application register half.
#[test]
fn regalloc_stays_in_scratch_range() {
    for case in 0u64..32 {
        let mut rng = SmallRng::seed_from_u64(0x70_1001 + case);
        let len = rng.gen_range(1usize..25);
        let body: Vec<Inst> = (0..len).map(|_| straightline(&mut rng)).collect();

        let (_, _, bb) = make_bb(&body);
        let block = translate_region(&bb);
        let (block, map) = opt::optimize(block, &TolConfig::default()).expect("alloc");
        for r in map.int.values() {
            assert!((ir::SCRATCH_BASE..ir::SCRATCH_END).contains(&r.0), "case {case}");
        }
        for f in map.fp.values() {
            assert!((ir::FSCRATCH_BASE..ir::FSCRATCH_END).contains(&f.0), "case {case}");
        }
        // Lowering covers the whole block: body + fallthrough + stubs.
        let host = lower(&block, &map);
        let live_ops = block.ops.iter().filter(|o| o.inst != darco_tol::ir::IrInst::Nop).count();
        assert_eq!(host.len(), live_ops + 1 + block.stubs.len(), "case {case}");
    }
}

// --------------------------------------------------------------------
// Random IR blocks, generated directly at the IR level (not through the
// guest decoder), exercising the verifier layer: the full pipeline with
// verification forced on must never reject a legal block (no false
// positives), and the optimized result must match a reference execution
// of the unoptimized block instruction-for-instruction in observable
// state.

use darco_guest::{Cond, FpOp};
use darco_host::{Exit, FlagsKind, HAluOp, HFreg, HInst, Width};
use darco_tol::ir::{IrBlock, IrFreg, IrInst, IrOp, IrReg};

const ALUS: [HAluOp; 7] =
    [HAluOp::Add, HAluOp::Sub, HAluOp::And, HAluOp::Or, HAluOp::Xor, HAluOp::Shl, HAluOp::Shr];
const FLAG_KINDS: [FlagsKind; 6] = [
    FlagsKind::Add,
    FlagsKind::Sub,
    FlagsKind::Logic,
    FlagsKind::Shl,
    FlagsKind::Shr,
    FlagsKind::Sar,
];

/// An integer source: a previously defined virtual, a pinned guest
/// register, or the hard zero.
fn isrc(rng: &mut SmallRng, pool: &[IrReg]) -> IrReg {
    if !pool.is_empty() && rng.gen_bool(0.5) {
        pool[rng.gen_range(0..pool.len())]
    } else if rng.gen_bool(0.1) {
        IrReg::ZERO
    } else {
        IrReg::Phys(ir::guest_gpr_reg(rng.gen_range(0usize..8)))
    }
}

fn fsrc(rng: &mut SmallRng, pool: &[IrFreg]) -> IrFreg {
    if !pool.is_empty() && rng.gen_bool(0.5) {
        pool[rng.gen_range(0..pool.len())]
    } else {
        IrFreg::Phys(HFreg(rng.gen_range(0u8..8)))
    }
}

fn mem_width(rng: &mut SmallRng) -> Width {
    match rng.gen_range(0..3) {
        0 => Width::W1,
        1 => Width::W2,
        _ => Width::W4,
    }
}

/// A memory operand confined to a small data region so loads observe
/// values the test seeded and constprop can fold absolute addresses.
fn mem_operand(rng: &mut SmallRng, pool: &[IrReg]) -> (IrReg, i32) {
    if rng.gen_bool(0.5) {
        (IrReg::ZERO, 0x4_0000 + 4 * rng.gen_range(0i32..256))
    } else {
        (isrc(rng, pool), 4 * rng.gen_range(0i32..64))
    }
}

/// Generates a well-formed random [`IrBlock`]: virtual registers are in
/// SSA form (defined once, before every use), branch stubs are valid,
/// and the shape mirrors what the translator emits.
fn random_ir_block(rng: &mut SmallRng) -> IrBlock {
    let n_stubs = rng.gen_range(0u32..3);
    let len = rng.gen_range(4usize..28);
    let mut next_virt = 0u32;
    let mut next_fvirt = 0u32;
    let mut ipool: Vec<IrReg> = Vec::new();
    let mut fpool: Vec<IrFreg> = Vec::new();
    let mut ops = Vec::new();

    for i in 0..len {
        // Destinations: fresh virtual (single assignment) or a pinned
        // guest register, as the translator produces.
        let mut idst = |rng: &mut SmallRng, ipool: &mut Vec<IrReg>| {
            if rng.gen_bool(0.6) {
                let r = IrReg::Virt(next_virt);
                next_virt += 1;
                ipool.push(r);
                r
            } else {
                IrReg::Phys(ir::guest_gpr_reg(rng.gen_range(0usize..8)))
            }
        };
        let inst = match rng.gen_range(0..14) {
            0 | 1 => {
                IrInst::Li { rd: idst(rng, &mut ipool), imm: rng.gen_range(-0x8000i64..0x8000) }
            }
            2 | 3 => {
                // Pick sources before the destination: `idst` may mint a
                // fresh virtual, which must not be readable yet.
                let (ra, rb) = (isrc(rng, &ipool), isrc(rng, &ipool));
                IrInst::Alu {
                    op: ALUS[rng.gen_range(0..ALUS.len())],
                    rd: idst(rng, &mut ipool),
                    ra,
                    rb,
                }
            }
            4 => {
                let ra = isrc(rng, &ipool);
                IrInst::AluI {
                    op: ALUS[rng.gen_range(0..ALUS.len())],
                    rd: idst(rng, &mut ipool),
                    ra,
                    imm: rng.gen_range(-100i32..100),
                }
            }
            5 => {
                let (ra, rb) = (isrc(rng, &ipool), isrc(rng, &ipool));
                IrInst::Mul { rd: idst(rng, &mut ipool), ra, rb }
            }
            6 => {
                let (base, off) = mem_operand(rng, &ipool);
                IrInst::Ld { rd: idst(rng, &mut ipool), base, off, width: mem_width(rng) }
            }
            7 => {
                let (base, off) = mem_operand(rng, &ipool);
                IrInst::St { rs: isrc(rng, &ipool), base, off, width: mem_width(rng) }
            }
            8 => {
                let (ra, rb) = (isrc(rng, &ipool), isrc(rng, &ipool));
                IrInst::FlagsArith {
                    kind: FLAG_KINDS[rng.gen_range(0..FLAG_KINDS.len())],
                    rd: if rng.gen_bool(0.5) {
                        idst(rng, &mut ipool)
                    } else {
                        IrReg::Phys(ir::FLAGS_REG)
                    },
                    ra,
                    rb,
                }
            }
            9 if n_stubs > 0 => IrInst::BrFlags {
                cond: Cond::ALL[rng.gen_range(0..Cond::ALL.len())],
                flags: isrc(rng, &ipool),
                stub: rng.gen_range(0..n_stubs),
            },
            10 => IrInst::CvtIF {
                fd: {
                    let f = IrFreg::Virt(next_fvirt);
                    next_fvirt += 1;
                    fpool.push(f);
                    f
                },
                ra: isrc(rng, &ipool),
            },
            11 => IrInst::FArith {
                op: FpOp::ALL[rng.gen_range(0..FpOp::ALL.len())],
                fd: IrFreg::Phys(HFreg(rng.gen_range(0u8..8))),
                fa: fsrc(rng, &fpool),
                fb: fsrc(rng, &fpool),
            },
            12 => {
                let (base, off) = mem_operand(rng, &ipool);
                IrInst::FSt { fs: fsrc(rng, &fpool), base, off }
            }
            _ => IrInst::CvtFI { rd: idst(rng, &mut ipool), fa: fsrc(rng, &fpool) },
        };
        ops.push(IrOp { inst, guest_idx: i as u32 });
    }

    IrBlock {
        ops,
        stubs: (0..n_stubs)
            .map(|i| Exit::Direct { guest_target: 0x5000 + i * 16, link: None })
            .collect(),
        stub_guest_counts: (1..=n_stubs).collect(),
        fallthrough: Exit::Direct { guest_target: 0x2000, link: None },
        guest_len: len as u32,
    }
}

/// Deterministic pinned host state for a differential run.
fn seeded_state(seed: u32) -> HostState {
    let mut st = HostState::new();
    let mut x = seed | 1;
    for i in 0..8 {
        x = x.wrapping_mul(2654435761).wrapping_add(97);
        st.set_reg(ir::guest_gpr_reg(i), x);
    }
    st.set_reg(ir::FLAGS_REG, 0x46);
    for i in 0..8u8 {
        st.set_freg(HFreg(i), f64::from(i) * 1.25 - 3.0);
    }
    st
}

/// Interprets lowered host code until it exits, returning the final
/// state and the exit taken.
fn run_host(host: &[HInst], mem: &mut GuestMem, mut st: HostState) -> (HostState, Exit) {
    let mut idx = 0usize;
    loop {
        match exec_inst(&mut st, &host[idx], mem) {
            Outcome::Next => idx += 1,
            Outcome::Taken(t) => idx = t as usize,
            Outcome::Exited(e) => return (st, e),
        }
    }
}

/// The verifier never rejects a legal block: the full pipeline with
/// verification forced on succeeds on random well-formed IR (zero false
/// positives) and reports one verified block each time.
#[test]
fn random_ir_blocks_pass_the_verifier() {
    let cfg = TolConfig { verify: true, opt_sw_prefetch: true, ..TolConfig::default() };
    let mut verified = 0u32;
    for case in 0u64..64 {
        let mut rng = SmallRng::seed_from_u64(0x70_2001 + case);
        let block = random_ir_block(&mut rng);
        match opt::optimize_stats(block, &cfg) {
            Ok((_, _, stats)) => {
                assert_eq!(stats.blocks_verified, 1, "case {case}");
                verified += 1;
            }
            // Register-pressure bailouts are legal, just rare.
            Err(opt::OptError::OutOfRegisters) => {}
            Err(opt::OptError::Miscompile(f)) => panic!("case {case}: false positive:\n{f}"),
        }
    }
    assert!(verified >= 48, "too many pressure bailouts: {verified}/64 verified");
}

/// Every fact the abstract domains claim holds on concrete executions:
/// the soundness oracle replays random IR blocks — and eagerly
/// translated random guest blocks — through the reference host
/// semantics from randomized initial states and checks every known-bits
/// fact and every statically decided branch against what actually
/// happened.
#[test]
fn abstract_domain_is_sound_on_random_ir() {
    for case in 0u64..64 {
        let mut rng = SmallRng::seed_from_u64(0x70_4001 + case);
        let block = random_ir_block(&mut rng);
        oracle::check_block(&block, 3).unwrap_or_else(|e| panic!("IR case {case}: {e}"));
    }
    for case in 0u64..32 {
        let mut rng = SmallRng::seed_from_u64(0x70_5001 + case);
        let len = rng.gen_range(1usize..25);
        let body: Vec<Inst> = (0..len).map(|_| straightline(&mut rng)).collect();
        let (_, _, bb) = make_bb(&body);
        let block = translate_region_with(&bb, true);
        oracle::check_block(&block, 3).unwrap_or_else(|e| panic!("guest case {case}: {e}"));
    }
}

/// Eager flag materialization plus the liveness-driven `deadflags` pass
/// converges to the same host code as the translator's intrinsic
/// dead-flag elision, byte for byte — the invariant that makes the old
/// translation path a drop-in oracle for the new one.
#[test]
fn eager_flags_plus_deadflags_converges_to_elided_translation() {
    for case in 0u64..64 {
        let mut rng = SmallRng::seed_from_u64(0x70_6001 + case);
        let len = rng.gen_range(1usize..25);
        let body: Vec<Inst> = (0..len).map(|_| straightline(&mut rng)).collect();
        let (_, _, bb) = make_bb(&body);

        let elided = translate_region(&bb);
        let mut eager = translate_region_with(&bb, true);
        opt::deadflags::run(&mut eager);

        let map_a = opt::regalloc::run(&elided).expect("alloc elided");
        let map_b = opt::regalloc::run(&eager).expect("alloc eager");
        assert_eq!(
            lower(&elided, &map_a),
            lower(&eager, &map_b),
            "case {case}: host code diverged"
        );
    }
}

/// The optimized lowering of a random IR block takes the same exit and
/// leaves identical pinned registers and memory as a reference
/// interpretation of the unoptimized block.
#[test]
fn optimized_random_ir_matches_reference_execution() {
    for case in 0u64..48 {
        let mut rng = SmallRng::seed_from_u64(0x70_3001 + case);
        let block = random_ir_block(&mut rng);
        let seed: u32 = rng.gen();

        let off = TolConfig::no_optimization();
        let Ok((plain_block, plain_map)) = opt::optimize(block.clone(), &off) else {
            continue;
        };
        let cfg = TolConfig { verify: true, opt_sw_prefetch: true, ..TolConfig::default() };
        let (opt_block, opt_map) = match opt::optimize(block, &cfg) {
            Ok(v) => v,
            Err(opt::OptError::OutOfRegisters) => continue,
            Err(opt::OptError::Miscompile(f)) => panic!("case {case}:\n{f}"),
        };
        let plain = lower(&plain_block, &plain_map);
        let optimized = lower(&opt_block, &opt_map);

        let mut mem0 = GuestMem::new();
        for i in 0..256u32 {
            mem0.write_u32(0x4_0000 + 4 * i, i.wrapping_mul(2654435761) ^ seed);
        }

        let mut mem_a = mem0.clone();
        let (sa, ea) = run_host(&plain, &mut mem_a, seeded_state(seed));
        let mut mem_b = mem0.clone();
        let (sb, eb) = run_host(&optimized, &mut mem_b, seeded_state(seed));

        assert_eq!(ea, eb, "case {case}: exits differ");
        for i in 0..8 {
            assert_eq!(
                sa.reg(ir::guest_gpr_reg(i)),
                sb.reg(ir::guest_gpr_reg(i)),
                "case {case}: guest register {i} differs"
            );
        }
        assert_eq!(sa.reg(ir::FLAGS_REG), sb.reg(ir::FLAGS_REG), "case {case}: flags differ");
        for i in 0..8u8 {
            assert_eq!(
                sa.freg(HFreg(i)).to_bits(),
                sb.freg(HFreg(i)).to_bits(),
                "case {case}: fp register {i} differs"
            );
        }
        assert_eq!(mem_a.first_difference(&mem_b), None, "case {case}: memory differs");
    }
}
