//! End-to-end throughput report: runs one small profile through the full
//! system a few times, keeps the best wall-clock, and writes a
//! machine-readable JSON summary (`scripts/bench.sh` drives this).
//!
//! ```text
//! bench_report [OUT.json] [--scale S] [--reps N]
//! ```
//!
//! Reported metrics:
//!
//! * `guest_mips`            — emulated guest instructions per second,
//! * `host_events_per_sec`   — retired host events through the bus,
//! * `mode_shares`           — dynamic guest-instruction share per
//!   execution mode `[IM, BBM, SBM]` (they describe the workload, and
//!   pin that a speed change did not alter what was simulated),
//! * `timing`                — the timing layer in isolation: a
//!   prerecorded host-event stream replayed through the `TimingSink`
//!   (1 vs 3 pipelines, shipping memory model vs the legacy full-probe
//!   oracle) and through each full backend (inline/threaded/fanout);
//!   events/sec, per-backend wall seconds, and the sink-level speedup
//!   of the shipping model over the oracle,
//! * `analysis`              — the IR analysis framework: guest MIPS
//!   with `deadflags`/`rangesimp` on vs off, dead flag defs killed,
//!   branches folded, host-insts-per-guest-inst both ways, and per-pass
//!   wall time,
//! * `code_cache`            — the translation lifecycle under a
//!   deliberately constrained capacity: whole-cache flush vs partial
//!   FIFO eviction (retranslations, evictions, unchains, occupancy,
//!   dead-space ratio), with identical guest-architectural results
//!   asserted across the two policies,
//! * `host`                  — the machine the numbers were taken on
//!   (core count, available parallelism), so wall-clock rows can be
//!   compared across runs,
//! * `translation`           — the background translation pool
//!   (DESIGN.md §15): wall seconds with `translate_workers = 0` (the
//!   synchronous oracle) vs the pool, job/install/stall/discard
//!   counters, and worker utilization — with the two serialized
//!   reports asserted byte-identical. On a single-CPU host the
//!   comparison is labeled `channel-overhead-only`: the pool cannot
//!   overlap anything there, so a speedup at or below 1.0 is the
//!   expected cost of the channels, not a regression,
//! * `block_memo`            — steady-state block timing memoization
//!   over `BlockRetire` macro-events (DESIGN.md §16): wall seconds
//!   with the memo on (shipping) vs off (the per-instruction oracle),
//!   engine-side macro-event counters and timing-side memo hit/record
//!   counters — with the two serialized reports asserted
//!   byte-identical in the same run,
//! * `guest_exec`            — the guest-layer fast path (DESIGN.md
//!   §17): raw functional-emulation MIPS with the pre-decoded micro-op
//!   buffers, lazy flags and width-native memory access on vs the
//!   decode-per-step byte oracle (final architectural state and guest
//!   memory asserted identical), engagement counters, plus full-system
//!   wall seconds both ways with the two serialized reports asserted
//!   byte-identical.

use darco_bench::replay::{record_stream, replay_backend, replay_sink};
use darco_core::{Report, System, SystemConfig, TimingBackendKind};
use darco_host::Owner;
use darco_workloads::{generate, suites};
use serde::Serialize;

#[derive(Serialize)]
struct ModeShares {
    im: f64,
    bbm: f64,
    sbm: f64,
}

#[derive(Serialize)]
struct SinkRates {
    one_pipeline: f64,
    three_pipeline: f64,
}

#[derive(Serialize)]
struct BackendWall {
    inline: f64,
    threaded: f64,
    fanout: f64,
}

#[derive(Serialize)]
struct TimingBlock {
    /// What the threaded/fanout backend wall numbers (and by extension
    /// `sink_speedup_3p` read against them) measure on this host:
    /// `"overlap"` on a multi-core machine, or
    /// `"channel-overhead-only"` when only one CPU is available — the
    /// spawned timing workers cannot run alongside the producer there,
    /// so their walls carry the broadcast-channel cost with none of the
    /// overlap benefit and must not be read as a regression.
    comparison: &'static str,
    /// Events in the replayed stream.
    replay_events: u64,
    /// `TimingSink::consume` events/sec, shipping memory model.
    sink_events_per_sec: SinkRates,
    /// Same replay, legacy layout + shortcuts off (PR 3 configuration).
    oracle_events_per_sec: SinkRates,
    /// Shipping model over oracle, 3-pipeline sink replay.
    sink_speedup_3p: f64,
    /// Full-backend wall seconds (spawn + broadcast + join), 3 pipelines.
    backend_wall_seconds: BackendWall,
}

#[derive(Serialize)]
struct PassRow {
    pass: String,
    runs: u64,
    insts_removed: i64,
    flags_killed: u64,
    branches_folded: u64,
    wall_ms: f64,
}

#[derive(Serialize)]
struct AnalysisBlock {
    /// Guest MIPS with the analysis passes on (shipping) vs off (the
    /// intrinsic-elision oracle) — the simulator-throughput cost of
    /// running the dataflow analyses on every translation.
    guest_mips_on: f64,
    guest_mips_off: f64,
    /// Dead `FlagsArith` definitions deleted across the run.
    flags_killed: u64,
    /// Statically folded `BrFlags`.
    branches_folded: u64,
    /// Average dead flag defs per translated region.
    flags_killed_per_translation: f64,
    /// Host instructions per guest instruction, both configurations
    /// (equal when `deadflags` fully converges and nothing folds).
    host_insts_per_guest_on: f64,
    host_insts_per_guest_off: f64,
    /// The same ratio split by owner: App-owned instructions are the
    /// translated guest code (quality of emitted code), Tol-owned are
    /// the software layer's own modeled execution (where the cost of
    /// eager flag emission plus the analysis passes shows up).
    app_insts_per_guest_on: f64,
    app_insts_per_guest_off: f64,
    tol_insts_per_guest_on: f64,
    tol_insts_per_guest_off: f64,
    /// Wall-clock milliseconds in `deadflags` + `rangesimp` (on-run).
    analysis_wall_ms: f64,
    /// Per-pass accounting with wall time, pipeline order.
    passes: Vec<PassRow>,
}

#[derive(Serialize)]
struct PolicyRow {
    installed: u64,
    flushes: u64,
    evictions: u64,
    unchains: u64,
    retranslations: u64,
    /// End-of-run fraction of the capacity allocated (live + dead).
    occupancy: f64,
    /// End-of-run fraction of allocated space that is dead (replaced
    /// blocks the flush policy cannot reclaim until the next flush).
    dead_space_ratio: f64,
    resident: u32,
    wall_seconds: f64,
}

#[derive(Serialize)]
struct CodeCacheBlock {
    /// Constrained capacity (host instructions) used for the
    /// flush-vs-fifo comparison; small enough that the quicktest
    /// working set does not fit.
    capacity: u32,
    flush: PolicyRow,
    fifo: PolicyRow,
}

#[derive(Serialize)]
struct HostBlock {
    /// Logical processors listed in `/proc/cpuinfo` (0 when the file is
    /// unavailable, e.g. off Linux).
    cpus: usize,
    /// `std::thread::available_parallelism()` — what the translation
    /// pool and `run-set` default to.
    available_parallelism: usize,
}

fn host_block() -> HostBlock {
    let cpus = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .unwrap_or(0);
    HostBlock {
        cpus,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

#[derive(Serialize)]
struct TranslationBlock {
    /// What the sync-vs-pool wall-clock comparison measures on this
    /// host: `"overlap"` on a multi-core machine, or
    /// `"channel-overhead-only"` when only one CPU is available — the
    /// pool cannot overlap compile work with emulation there, so
    /// `speedup` hovers at or below 1.0 by construction and must not
    /// be read as a regression.
    comparison: &'static str,
    /// Pool size used for the overlapped runs.
    workers: usize,
    /// Best wall seconds with `translate_workers = 0` (synchronous).
    sync_wall_seconds: f64,
    /// Best wall seconds with the pool enabled.
    pool_wall_seconds: f64,
    /// `sync_wall_seconds / pool_wall_seconds`; on a single-core host
    /// this hovers around 1.0 (the overlap buys nothing, the channel
    /// overhead costs almost nothing).
    speedup: f64,
    /// Compile jobs handed to the pool.
    jobs_enqueued: u64,
    /// Installs that consumed a pool result instead of recompiling.
    installed_from_pool: u64,
    /// Pool results that were already finished at the install point.
    ready_at_install: u64,
    /// Install points that had to block on an in-flight job.
    stalls_at_install: u64,
    /// Pending jobs discarded because guest code pages were written
    /// between enqueue and install (SMC safety).
    discarded_smc: u64,
    /// Pending jobs discarded because the re-formed region differed
    /// from the snapshot (profile drift between enqueue and install).
    discarded_stale: u64,
    /// High-water mark of concurrently pending jobs.
    max_in_flight: u64,
    /// Total seconds workers spent compiling (summed across workers).
    worker_busy_seconds: f64,
    /// `worker_busy_seconds / (workers * pool_wall_seconds)`.
    worker_utilization: f64,
}

fn run_translation(scale: f64, workers: usize) -> (Report, darco_tol::TranslationPoolStats, f64) {
    let mut cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        ..SystemConfig::default()
    };
    cfg.tol.translate_workers = workers;
    let w = generate(&suites::quicktest_profile(), scale);
    let mut sys = System::new(w, cfg);
    let t0 = std::time::Instant::now();
    let report = sys.run_to_completion();
    let secs = t0.elapsed().as_secs_f64();
    (report, sys.tol().pool_stats(), secs)
}

fn translation_block(scale: f64, reps: usize, workers: usize, cpus: usize) -> TranslationBlock {
    // Warm-up + best-of per configuration; counters come from the first
    // timed pool run (the wall-clock-dependent ready/stall split is the
    // only nondeterministic part).
    let (sync_report, _, _) = run_translation(scale, 0);
    let mut sync_wall = f64::MAX;
    for _ in 0..reps.max(1) {
        sync_wall = sync_wall.min(run_translation(scale, 0).2);
    }
    let (pool_report, stats, first_wall) = run_translation(scale, workers);
    let mut pool_wall = first_wall;
    for _ in 1..reps.max(1) {
        pool_wall = pool_wall.min(run_translation(scale, workers).2);
    }
    // The tentpole guarantee: the pool changes wall-clock only.
    let sync_json = serde_json::to_string(&sync_report).expect("serialize");
    let pool_json = serde_json::to_string(&pool_report).expect("serialize");
    assert_eq!(sync_json, pool_json, "translation pool changed the serialized report");
    TranslationBlock {
        comparison: if cpus <= 1 { "channel-overhead-only" } else { "overlap" },
        workers: stats.workers,
        sync_wall_seconds: sync_wall,
        pool_wall_seconds: pool_wall,
        speedup: sync_wall / pool_wall,
        jobs_enqueued: stats.jobs_enqueued,
        installed_from_pool: stats.installed_from_pool,
        ready_at_install: stats.ready_at_install,
        stalls_at_install: stats.stalls_at_install,
        discarded_smc: stats.discarded_smc,
        discarded_stale: stats.discarded_stale,
        max_in_flight: stats.max_in_flight,
        worker_busy_seconds: stats.worker_busy_ns as f64 / 1e9,
        worker_utilization: stats.worker_busy_ns as f64
            / 1e9
            / (stats.workers.max(1) as f64 * pool_wall),
    }
}

#[derive(Serialize)]
struct BlockMemoBlock {
    /// Best wall seconds with the memo on (the shipping default).
    memo_wall_seconds: f64,
    /// Best wall seconds with the memo off (per-instruction oracle).
    oracle_wall_seconds: f64,
    /// `oracle_wall_seconds / memo_wall_seconds`.
    speedup: f64,
    /// Engine side: `BlockRetire` macro-events emitted.
    macro_events: u64,
    /// Per-instruction `Retire` events those macro-events replaced.
    insts_suppressed: u64,
    /// Engine-side stream (re-)records.
    engine_records: u64,
    /// Engine-side memos dropped (evictions, flushes, gen bumps).
    engine_invalidations: u64,
    /// Blocks whose collection was abandoned after repeated changes.
    abandoned: u64,
    /// Timing side: macro-events whose footprint replayed (precondition
    /// held, deltas bulk-applied).
    memo_hits: u64,
    /// Timing side: footprints recorded (first sight or stream change).
    memo_records: u64,
    /// Replays refused because touched state had changed underneath.
    precondition_misses: u64,
    /// Timing-side memos dropped for generation/stream mismatches.
    memo_invalidations: u64,
    /// Instructions whose timing came from a bulk-applied footprint.
    insts_replayed: u64,
}

/// One full-system run with the memo switched on or off (both the
/// engine's macro-event emission and the timing-side memoization).
fn run_block_memo(
    scale: f64,
    on: bool,
) -> (Report, darco_tol::EngineMemoStats, darco_timing::MemoStats, f64) {
    let mut cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        ..SystemConfig::default()
    };
    cfg.tol.block_memo = on;
    cfg.timing.block_memo = on;
    let w = generate(&suites::quicktest_profile(), scale);
    let mut sys = System::new(w, cfg);
    let t0 = std::time::Instant::now();
    let report = sys.run_to_completion();
    let secs = t0.elapsed().as_secs_f64();
    (report, sys.tol().memo_stats(), sys.memo_stats(), secs)
}

fn block_memo_block(scale: f64, reps: usize) -> BlockMemoBlock {
    let (memo_report, eng, tim, first_wall) = run_block_memo(scale, true);
    let mut memo_wall = first_wall;
    for _ in 1..reps.max(1) {
        memo_wall = memo_wall.min(run_block_memo(scale, true).3);
    }
    let (oracle_report, _, _, oracle_first) = run_block_memo(scale, false);
    let mut oracle_wall = oracle_first;
    for _ in 1..reps.max(1) {
        oracle_wall = oracle_wall.min(run_block_memo(scale, false).3);
    }
    // The tentpole guarantee: memoization changes wall-clock only.
    let memo_json = serde_json::to_string(&memo_report).expect("serialize");
    let oracle_json = serde_json::to_string(&oracle_report).expect("serialize");
    assert_eq!(memo_json, oracle_json, "block memoization changed the serialized report");
    BlockMemoBlock {
        memo_wall_seconds: memo_wall,
        oracle_wall_seconds: oracle_wall,
        speedup: oracle_wall / memo_wall,
        macro_events: eng.macro_events,
        insts_suppressed: eng.insts_suppressed,
        engine_records: eng.records,
        engine_invalidations: eng.invalidations,
        abandoned: eng.abandoned,
        memo_hits: tim.hits,
        memo_records: tim.records,
        precondition_misses: tim.precondition_misses,
        memo_invalidations: tim.invalidations,
        insts_replayed: tim.insts_replayed,
    }
}

#[derive(Serialize)]
struct GuestExecBlock {
    /// Guest instructions retired to `Halt` (identical on both paths by
    /// construction — asserted).
    guest_insts: u64,
    /// Best wall seconds of the raw functional-emulation loop through
    /// the decode-per-step byte oracle (`exec::step`, width-native
    /// memory access off).
    oracle_wall_seconds: f64,
    /// Best wall seconds through the micro-op fast path (`ExecCtx` on
    /// fast-path memory).
    fast_wall_seconds: f64,
    /// Guest MIPS, byte oracle.
    oracle_mips: f64,
    /// Guest MIPS, fast path.
    fast_mips: f64,
    /// `oracle_wall_seconds / fast_wall_seconds`.
    speedup: f64,
    /// Steps served from cached micro-op buffers.
    uop_hits: u64,
    /// Blocks pre-decoded.
    blocks_built: u64,
    /// Cached blocks dropped after a generation-stamp mismatch (SMC).
    invalidations: u64,
    /// Lazy flag definitions recorded.
    flag_defs: u64,
    /// Definitions actually materialized (the gap is the win).
    flag_forces: u64,
    /// Full-system wall seconds with `guest_fast_path` off / on — the
    /// end-to-end view, where translated execution dilutes the
    /// interpreter-side gain.
    system_oracle_wall_seconds: f64,
    system_fast_wall_seconds: f64,
    /// `system_oracle_wall_seconds / system_fast_wall_seconds`.
    system_speedup: f64,
}

/// Raw functional-emulation run to `Halt` on the byte oracle.
fn run_guest_oracle(w: &darco_workloads::Workload) -> (darco_guest::CpuState, u64) {
    let mut mem = w.mem.clone();
    mem.set_fast_path(false);
    let mut cpu = w.initial.clone();
    let mut n = 0u64;
    while !cpu.halted {
        darco_guest::exec::step(&mut cpu, &mut mem).expect("oracle decode");
        n += 1;
        assert!(n < 2_000_000_000, "oracle runaway");
    }
    (cpu, n)
}

/// Raw functional-emulation run to `Halt` through the micro-op fast
/// path; lazy flags are forced at the end so the state is comparable.
fn run_guest_fast(
    w: &darco_workloads::Workload,
) -> (darco_guest::CpuState, darco_guest::GuestMem, darco_guest::FastStats) {
    let mut mem = w.mem.clone();
    let mut cpu = w.initial.clone();
    let mut ctx = darco_guest::ExecCtx::new();
    let mut n = 0u64;
    while !cpu.halted {
        ctx.step(&mut cpu, &mut mem).expect("fast decode");
        n += 1;
        assert!(n < 2_000_000_000, "fast runaway");
    }
    ctx.force_flags(&mut cpu);
    (cpu, mem, ctx.stats)
}

/// One full-system run with the guest fast path switched.
fn run_system_guest(scale: f64, fast: bool) -> (Report, f64) {
    let mut cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        ..SystemConfig::default()
    };
    cfg.tol.guest_fast_path = fast;
    let w = generate(&suites::quicktest_profile(), scale);
    let mut sys = System::new(w, cfg);
    let t0 = std::time::Instant::now();
    let report = sys.run_to_completion();
    (report, t0.elapsed().as_secs_f64())
}

fn guest_exec_block(scale: f64, reps: usize) -> GuestExecBlock {
    let w = generate(&suites::quicktest_profile(), scale);

    // Correctness pin before the timed runs: identical final register
    // state (flags forced) and identical guest memory.
    let (oracle_cpu, guest_insts) = run_guest_oracle(&w);
    let (fast_cpu, fast_mem, stats) = run_guest_fast(&w);
    assert!(
        oracle_cpu.arch_eq(&fast_cpu),
        "guest fast path diverged from the byte oracle:\noracle: {oracle_cpu}\nfast:   {fast_cpu}"
    );
    let mut oracle_mem = w.mem.clone();
    oracle_mem.set_fast_path(false);
    let mut cpu = w.initial.clone();
    while !cpu.halted {
        darco_guest::exec::step(&mut cpu, &mut oracle_mem).expect("oracle decode");
    }
    assert_eq!(oracle_mem.first_difference(&fast_mem), None, "guest fast path diverged in memory");
    assert!(stats.uop_hits > 0, "fast path never engaged on the bench workload");

    let oracle_wall = best_of(reps, || run_guest_oracle(&w));
    let fast_wall = best_of(reps, || run_guest_fast(&w));

    let (fast_report, first_fast) = run_system_guest(scale, true);
    let mut system_fast = first_fast;
    for _ in 1..reps.max(1) {
        system_fast = system_fast.min(run_system_guest(scale, true).1);
    }
    let (oracle_report, first_oracle) = run_system_guest(scale, false);
    let mut system_oracle = first_oracle;
    for _ in 1..reps.max(1) {
        system_oracle = system_oracle.min(run_system_guest(scale, false).1);
    }
    // The tentpole guarantee: the fast path changes wall-clock only.
    let fast_json = serde_json::to_string(&fast_report).expect("serialize");
    let oracle_json = serde_json::to_string(&oracle_report).expect("serialize");
    assert_eq!(fast_json, oracle_json, "guest fast path changed the serialized report");

    GuestExecBlock {
        guest_insts,
        oracle_wall_seconds: oracle_wall,
        fast_wall_seconds: fast_wall,
        oracle_mips: guest_insts as f64 / oracle_wall / 1e6,
        fast_mips: guest_insts as f64 / fast_wall / 1e6,
        speedup: oracle_wall / fast_wall,
        uop_hits: stats.uop_hits,
        blocks_built: stats.blocks_built,
        invalidations: stats.invalidations,
        flag_defs: stats.flag_defs,
        flag_forces: stats.flag_forces,
        system_oracle_wall_seconds: system_oracle,
        system_fast_wall_seconds: system_fast,
        system_speedup: system_oracle / system_fast,
    }
}

#[derive(Serialize)]
struct BenchReport {
    benchmark: String,
    scale: f64,
    reps: usize,
    best_wall_seconds: f64,
    guest_insts: u64,
    host_events: u64,
    guest_mips: f64,
    host_events_per_sec: f64,
    mode_shares: ModeShares,
    host: HostBlock,
    timing: TimingBlock,
    analysis: AnalysisBlock,
    code_cache: CodeCacheBlock,
    translation: TranslationBlock,
    block_memo: BlockMemoBlock,
    guest_exec: GuestExecBlock,
}

fn run_once(scale: f64) -> (Report, f64) {
    let cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        ..SystemConfig::default()
    };
    let w = generate(&suites::quicktest_profile(), scale);
    let mut sys = System::new(w, cfg);
    let t0 = std::time::Instant::now();
    let report = sys.run_to_completion();
    (report, t0.elapsed().as_secs_f64())
}

/// Best-of-`reps` wall seconds of `f` (one warm-up pass first).
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let _ = f();
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn timing_block(reps: usize, cpus: usize) -> TimingBlock {
    let batches = record_stream();
    let events: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let rate = |secs: f64| events as f64 / secs;

    let fast_1p = best_of(reps, || replay_sink(&batches, 1, true));
    let oracle_1p = best_of(reps, || replay_sink(&batches, 1, false));
    let fast_3p = best_of(reps, || replay_sink(&batches, 3, true));
    let oracle_3p = best_of(reps, || replay_sink(&batches, 3, false));
    TimingBlock {
        comparison: if cpus <= 1 { "channel-overhead-only" } else { "overlap" },
        replay_events: events,
        sink_events_per_sec: SinkRates {
            one_pipeline: rate(fast_1p),
            three_pipeline: rate(fast_3p),
        },
        oracle_events_per_sec: SinkRates {
            one_pipeline: rate(oracle_1p),
            three_pipeline: rate(oracle_3p),
        },
        sink_speedup_3p: oracle_3p / fast_3p,
        backend_wall_seconds: BackendWall {
            inline: best_of(reps, || replay_backend(&batches, TimingBackendKind::Inline)),
            threaded: best_of(reps, || replay_backend(&batches, TimingBackendKind::Threaded)),
            fanout: best_of(reps, || replay_backend(&batches, TimingBackendKind::Fanout)),
        },
    }
}

/// One run with the analysis passes toggled; returns the report, the
/// per-pass wall-clock samples, the analysis-pass total, and wall secs.
fn run_analysis(scale: f64, analysis_on: bool) -> (Report, Vec<(String, u64)>, u64, f64) {
    let mut cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        ..SystemConfig::default()
    };
    cfg.tol.opt_deadflags = analysis_on;
    cfg.tol.opt_rangesimp = analysis_on;
    let w = generate(&suites::quicktest_profile(), scale);
    let mut sys = System::new(w, cfg);
    let t0 = std::time::Instant::now();
    let report = sys.run_to_completion();
    let secs = t0.elapsed().as_secs_f64();
    (report, sys.tol().pass_nanos().to_vec(), sys.tol().analysis_ns(), secs)
}

fn analysis_block(scale: f64, reps: usize) -> AnalysisBlock {
    // Warm-up, then best-of-reps per configuration; results are
    // deterministic, so any rep's report serves.
    let (report, nanos, analysis_ns, _) = run_analysis(scale, true);
    let mut best_on = f64::MAX;
    for _ in 0..reps.max(1) {
        best_on = best_on.min(run_analysis(scale, true).3);
    }
    let (report_off, _, _, _) = run_analysis(scale, false);
    let mut best_off = f64::MAX;
    for _ in 0..reps.max(1) {
        best_off = best_off.min(run_analysis(scale, false).3);
    }

    let c = &report.tol.counters;
    let translations = report.tol.installed.max(1);
    let passes = report
        .tol
        .pass_deltas
        .iter()
        .map(|d| PassRow {
            pass: d.pass.clone(),
            runs: d.runs,
            insts_removed: d.insts_removed,
            flags_killed: d.flags_killed,
            branches_folded: d.branches_folded,
            wall_ms: nanos.iter().find(|(p, _)| *p == d.pass).map_or(0.0, |(_, n)| *n as f64 / 1e6),
        })
        .collect();
    AnalysisBlock {
        guest_mips_on: report.guest_insts as f64 / best_on / 1e6,
        guest_mips_off: report_off.guest_insts as f64 / best_off / 1e6,
        flags_killed: c.flags_killed,
        branches_folded: c.branches_folded,
        flags_killed_per_translation: c.flags_killed as f64 / translations as f64,
        host_insts_per_guest_on: report.timing.total_insts() as f64
            / report.guest_insts.max(1) as f64,
        host_insts_per_guest_off: report_off.timing.total_insts() as f64
            / report_off.guest_insts.max(1) as f64,
        app_insts_per_guest_on: report.timing.owner_insts(Owner::App) as f64
            / report.guest_insts.max(1) as f64,
        app_insts_per_guest_off: report_off.timing.owner_insts(Owner::App) as f64
            / report_off.guest_insts.max(1) as f64,
        tol_insts_per_guest_on: report.timing.owner_insts(Owner::Tol) as f64
            / report.guest_insts.max(1) as f64,
        tol_insts_per_guest_off: report_off.timing.owner_insts(Owner::Tol) as f64
            / report_off.guest_insts.max(1) as f64,
        analysis_wall_ms: analysis_ns as f64 / 1e6,
        passes,
    }
}

/// Capacity (host instructions) for the lifecycle comparison: small
/// enough that the quicktest working set churns the cache even at the
/// default `--scale 0.05` (whose hot translations occupy ~1.6k host
/// instructions), so flush actually flushes and fifo actually evicts.
const CACHE_COMPARE_CAPACITY: u32 = 1_200;

fn run_policy(scale: f64, policy: darco_tol::codecache::CachePolicy) -> (Report, f64) {
    let mut cfg = SystemConfig { cosim: false, ..SystemConfig::default() };
    cfg.tol.code_cache_capacity = CACHE_COMPARE_CAPACITY;
    cfg.tol.cache_policy = policy;
    let w = generate(&suites::quicktest_profile(), scale);
    let mut sys = System::new(w, cfg);
    let t0 = std::time::Instant::now();
    let report = sys.run_to_completion();
    (report, t0.elapsed().as_secs_f64())
}

fn policy_row(report: &Report, wall: f64) -> PolicyRow {
    let c = &report.tol.cache;
    PolicyRow {
        installed: report.tol.installed,
        flushes: report.tol.flushes,
        evictions: c.evictions,
        unchains: c.unchains,
        retranslations: c.retranslations,
        occupancy: c.occupancy(),
        dead_space_ratio: c.dead_space_ratio(),
        resident: c.resident,
        wall_seconds: wall,
    }
}

fn code_cache_block(scale: f64, reps: usize) -> CodeCacheBlock {
    use darco_tol::codecache::CachePolicy;
    let (flush_report, _) = run_policy(scale, CachePolicy::Flush);
    let mut flush_wall = f64::MAX;
    for _ in 0..reps.max(1) {
        flush_wall = flush_wall.min(run_policy(scale, CachePolicy::Flush).1);
    }
    let (fifo_report, _) = run_policy(scale, CachePolicy::Fifo);
    let mut fifo_wall = f64::MAX;
    for _ in 0..reps.max(1) {
        fifo_wall = fifo_wall.min(run_policy(scale, CachePolicy::Fifo).1);
    }
    // The policies trade cache behavior, never guest-visible results.
    assert_eq!(
        flush_report.guest_insts, fifo_report.guest_insts,
        "cache policy changed guest-architectural execution"
    );
    CodeCacheBlock {
        capacity: CACHE_COMPARE_CAPACITY,
        flush: policy_row(&flush_report, flush_wall),
        fifo: policy_row(&fifo_report, fifo_wall),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from("BENCH_report.json");
    let mut scale = 0.05;
    let mut reps = 3usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --scale needs a number");
                    std::process::exit(2)
                });
            }
            "--reps" => {
                reps = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --reps needs a count");
                    std::process::exit(2)
                });
            }
            path if !path.starts_with('-') => out = path.to_owned(),
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2)
            }
        }
    }

    // One warm-up run, then keep the fastest of `reps` timed runs.
    let (report, _) = run_once(scale);
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let (_, secs) = run_once(scale);
        best = best.min(secs);
    }

    let dyn_dist = report.tol.dyn_dist;
    let dyn_total: u64 = dyn_dist.iter().sum();
    let share = |n: u64| n as f64 / dyn_total.max(1) as f64;
    let host = host_block();
    let cpus = host.cpus.max(host.available_parallelism);
    let summary = BenchReport {
        benchmark: report.name.clone(),
        scale,
        reps,
        best_wall_seconds: best,
        guest_insts: report.guest_insts,
        host_events: report.trace.retired,
        guest_mips: report.guest_insts as f64 / best / 1e6,
        host_events_per_sec: report.trace.retired as f64 / best,
        mode_shares: ModeShares {
            im: share(dyn_dist[0]),
            bbm: share(dyn_dist[1]),
            sbm: share(dyn_dist[2]),
        },
        host,
        timing: timing_block(reps, cpus),
        analysis: analysis_block(scale, reps),
        code_cache: code_cache_block(scale, reps),
        translation: translation_block(
            scale,
            reps,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
            cpus,
        ),
        block_memo: block_memo_block(scale, reps),
        guest_exec: guest_exec_block(scale, reps),
    };
    let json = serde_json::to_string_pretty(&summary).expect("serialize report");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("error: write {out}: {e}");
        std::process::exit(1)
    });
    println!("{json}");
    eprintln!("wrote {out}");
}
