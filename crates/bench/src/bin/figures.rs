//! Regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! figures <command> [--scale S] [--quick] [--jobs N] [--json FILE]
//!
//! commands:
//!   all        every figure below
//!   table1     the host processor configuration (the paper's only table)
//!   fig5a      static guest-code distribution across IM/BBM/SBM
//!   fig5b      dynamic guest-code distribution across IM/BBM/SBM
//!   fig6       execution-time split TOL vs application (+ overlays)
//!   fig7       TOL time split into its modules (+ indirect overlay)
//!   fig8       TOL-in-isolation IPC / miss rates / mispredictions
//!   fig9       cycle breakdown into bubbles, TOL vs APP
//!   fig10      relative cycles without interaction
//!   fig11      potential gains per resource (TOL and APP)
//!   startup    start-up vs steady-state timeline (Sec. II-B)
//!   ablate-thresholds   IM/BBth and BB/SBth sweep (paper assumes 5/10K)
//!   ablate-ibtc         IBTC size sweep (Sec. III-E, indirect branches)
//!   ablate-passes       SBM optimization-pass ablation
//!   ablate-codecache    code-cache capacity / flush-policy sweep
//!   ablate-future       the paper's Sec. III-E proposals, implemented:
//!                       software prefetching, speculative indirect
//!                       resolution, code placement
//! ```

use darco_core::experiments::{self, BenchRun, RunConfig};
use darco_core::report::{pct, render_table};
use darco_tol::TolConfig;
use darco_workloads::suites;
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut scale: Option<f64> = None;
    let mut quick = false;
    let mut jobs: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--scale needs a number")),
                );
            }
            "--quick" => quick = true,
            "--jobs" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a thread count"));
                if n == 0 {
                    die("--jobs must be at least 1");
                }
                jobs = Some(n);
            }
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| die("--json needs a path")).clone());
            }
            "--help" | "-h" => {
                println!("{}", HELP);
                return;
            }
            c if !c.starts_with('-') => command = c.to_string(),
            other => die(&format!("unknown flag {other}")),
        }
    }

    let mut cfg = if quick { RunConfig::quick() } else { RunConfig::default() };
    if let Some(s) = scale {
        cfg.scale = s;
    }

    match command.as_str() {
        "ablate-thresholds" => return ablate_thresholds(&cfg),
        "ablate-ibtc" => return ablate_ibtc(&cfg),
        "ablate-passes" => return ablate_passes(&cfg),
        "ablate-codecache" => return ablate_codecache(&cfg),
        "ablate-future" => return ablate_future(&cfg),
        "startup" => return startup(&cfg),
        "table1" => return table1(&cfg),
        _ => {}
    }

    eprintln!("running {} benchmarks at scale {} ...", suites::all_profiles().len(), cfg.scale);
    let runs = run_all(&cfg, jobs);
    if let Some(path) = &json_path {
        let json = serde_json::to_string_pretty(&runs).expect("serialize runs");
        std::fs::write(path, json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote raw results to {path}");
    }

    match command.as_str() {
        "all" => {
            fig5a(&runs);
            fig5b(&runs);
            fig6(&runs);
            fig7(&runs);
            fig8(&runs);
            fig9(&runs);
            fig10(&runs);
            fig11(&runs);
        }
        "fig5a" => fig5a(&runs),
        "fig5b" => fig5b(&runs),
        "fig6" => fig6(&runs),
        "fig7" => fig7(&runs),
        "fig8" => fig8(&runs),
        "fig9" => fig9(&runs),
        "fig10" => fig10(&runs),
        "fig11" => fig11(&runs),
        other => die(&format!("unknown command {other}")),
    }
}

const HELP: &str = "figures <all|table1|fig5a|fig5b|fig6|fig7|fig8|fig9|fig10|fig11|startup|\
ablate-thresholds|ablate-ibtc|ablate-passes|ablate-codecache|ablate-future> \
[--scale S] [--quick] [--jobs N] [--json FILE]";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{HELP}");
    std::process::exit(2)
}

fn run_all(cfg: &RunConfig, jobs: Option<usize>) -> Vec<BenchRun> {
    let profiles = suites::all_profiles();
    let threads =
        jobs.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    eprintln!("  using {threads} worker threads");
    let t0 = std::time::Instant::now();
    let runs = experiments::run_set_parallel(&profiles, cfg, threads);
    eprintln!("  {} runs in {:.2?} with --jobs {threads}", runs.len(), t0.elapsed());
    runs
}

fn heading(title: &str) {
    println!("\n=== {title} ===\n");
}

// ------------------------------------------------------------------ Fig 5

fn fig5a(runs: &[BenchRun]) {
    heading("Figure 5a: static guest code distribution (IM / BBM / SBM)");
    let rows = experiments::fig5(runs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![r.name.clone(), pct(r.static_pct[0]), pct(r.static_pct[1]), pct(r.static_pct[2])]
        })
        .collect();
    println!("{}", render_table(&["benchmark", "IM", "BBM", "SBM"], &table));
    let avg: Vec<Vec<String>> = experiments::fig5_suite_averages(&rows)
        .into_iter()
        .map(|(label, st, _)| vec![label, pct(st[0]), pct(st[1]), pct(st[2])])
        .collect();
    println!("{}", render_table(&["suite average", "IM", "BBM", "SBM"], &avg));
    println!("paper anchors: on average ~36% of static code stays in IM, ~50% in BBM, ~14% in SBM");
}

fn fig5b(runs: &[BenchRun]) {
    heading("Figure 5b: dynamic guest code distribution (IM / BBM / SBM)");
    let rows = experiments::fig5(runs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.name.clone(), pct(r.dyn_pct[0]), pct(r.dyn_pct[1]), pct(r.dyn_pct[2])])
        .collect();
    println!("{}", render_table(&["benchmark", "IM", "BBM", "SBM"], &table));
    let avg: Vec<Vec<String>> = experiments::fig5_suite_averages(&rows)
        .into_iter()
        .map(|(label, _, dy)| vec![label, pct(dy[0]), pct(dy[1]), pct(dy[2])])
        .collect();
    println!("{}", render_table(&["suite average", "IM", "BBM", "SBM"], &avg));
    println!("paper anchor: ~97% of the dynamic stream comes from SBM code (14% of static)");
}

// ------------------------------------------------------------------ Fig 6

fn fig6(runs: &[BenchRun]) {
    heading("Figure 6: execution time breakdown - TOL overhead vs application");
    let rows = experiments::fig6(runs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                pct(r.overhead),
                pct(r.application),
                format!("{:.0}", r.dyn_static_ratio),
                r.sbm_invocations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["benchmark", "overhead", "application", "dyn/static", "SBM invocations"],
            &table
        )
    );
    let avg: Vec<Vec<String>> = experiments::fig6_suite_averages(&rows)
        .into_iter()
        .map(|(s, o)| vec![s.label().to_owned(), pct(o)])
        .collect();
    println!("{}", render_table(&["suite average", "overhead"], &avg));
    println!("paper anchors: Mediabench 28%, Physicsbench 22%, SPEC INT 22%, SPEC FP 12%");
}

// ------------------------------------------------------------------ Fig 7

fn fig7(runs: &[BenchRun]) {
    heading("Figure 7: TOL execution time split into modules");
    let rows = experiments::fig7(runs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut v = vec![r.name.clone()];
            v.extend(r.shares.iter().map(|s| pct(*s)));
            v.push(r.indirect_branches.to_string());
            v
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "TOL others",
                "IM",
                "BBM",
                "SBM",
                "Chaining",
                "Code$ look-up",
                "indirect branches"
            ],
            &table
        )
    );
    println!("paper anchor: code-cache look-ups and transitions dominate for indirect-branch-heavy guests (perlbench-class)");
}

// ------------------------------------------------------------------ Fig 8

fn fig8(runs: &[BenchRun]) {
    heading("Figure 8: TOL performance characteristics (TOL stream in isolation)");
    let rows = experiments::fig8(runs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}", r.ipc),
                pct(r.d_miss_rate),
                pct(r.i_miss_rate),
                pct(r.mispredict_rate),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["benchmark", "TOL IPC", "D$ miss", "I$ miss", "BP miss"], &table)
    );
    let (lo, hi) = rows.iter().fold((f64::MAX, 0f64), |(lo, hi), r| (lo.min(r.ipc), hi.max(r.ipc)));
    println!("TOL IPC range: {lo:.2} .. {hi:.2} (paper: 0.85 for 445.gobmk .. 1.48 for 433.milc)");
}

// ------------------------------------------------------------------ Fig 9

fn outlier_runs(runs: &[BenchRun]) -> Vec<BenchRun> {
    suites::outliers()
        .iter()
        .filter_map(|p| runs.iter().find(|r| r.name == p.name))
        .cloned()
        .collect()
}

fn fig9(runs: &[BenchRun]) {
    heading("Figure 9: cycle breakdown into bubbles and instructions, TOL vs APP");
    let outs = outlier_runs(runs);
    let mut rows = experiments::fig9(&outs);
    rows.extend(experiments::fig9_suite_averages(runs));
    let headers = [
        "bar",
        "TOL D$",
        "APP D$",
        "TOL I$",
        "APP I$",
        "TOL br",
        "APP br",
        "TOL sched",
        "APP sched",
        "TOL insts",
        "APP insts",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut v = vec![r.label.clone()];
            v.extend(r.categories.iter().map(|c| pct(*c)));
            v
        })
        .collect();
    println!("{}", render_table(&headers, &table));
    // The paper's aggregate: bubbles ~48% of time (26% D$, 6% I$,
    // 4% branch, 12% scheduling).
    let mut agg = [0.0; 10];
    let all = experiments::fig9(runs);
    for r in &all {
        for (a, c) in agg.iter_mut().zip(r.categories.iter()) {
            *a += c / all.len() as f64;
        }
    }
    println!(
        "overall: bubbles {} (D$ {}, I$ {}, branch {}, scheduling {})",
        pct(agg[..8].iter().sum::<f64>()),
        pct(agg[0] + agg[1]),
        pct(agg[2] + agg[3]),
        pct(agg[4] + agg[5]),
        pct(agg[6] + agg[7]),
    );
    println!("paper anchors: bubbles 48% of time: D$ 26%, I$ 6%, branch 4%, scheduling 12%");
}

// ------------------------------------------------------------------ Fig 10

fn fig10(runs: &[BenchRun]) {
    heading("Figure 10: relative cycles when TOL and APP do not interact (w/o / w/)");
    let outs = outlier_runs(runs);
    let mut rows = experiments::fig10(&outs);
    rows.extend(experiments::fig10_suite_averages(runs));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.3}", r.app_rel),
                format!("{:.3}", r.tol_rel),
                pct(1.0 - (r.app_rel + r.tol_rel) / 2.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["bar", "APP w/o / w/", "TOL w/o / w/", "interaction penalty"], &table)
    );
    println!(
        "paper anchors: SPEC INT ~10% degradation, SPEC FP ~3%, 400.perlbench ~20%, 470.lbm ~0%"
    );
}

// ------------------------------------------------------------------ Fig 11

fn fig11(runs: &[BenchRun]) {
    heading("Figure 11: potential improvement if interaction were eliminated");
    let outs = outlier_runs(runs);
    for (title, rows) in [
        ("(a) for TOL", experiments::fig11_tol(&outs)),
        ("(b) for APP", experiments::fig11_app(&outs)),
    ] {
        println!("{title}:");
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut v = vec![r.label.clone()];
                v.extend(r.gains.iter().map(|g| pct(*g)));
                v
            })
            .collect();
        println!(
            "{}",
            render_table(&["benchmark", "D$ miss", "I$ miss", "scheduling", "branch"], &table)
        );
    }
    println!("paper anchor: the data cache is the component with the largest potential gain");
}

// --------------------------------------------------------------- ablations

/// A small representative subset for the sweeps.
fn ablation_profiles() -> Vec<darco_workloads::BenchProfile> {
    ["400.perlbench", "401.bzip2", "433.milc", "007.jpg2000enc"]
        .iter()
        .map(|n| suites::by_name(n).expect("profile"))
        .collect()
}

fn overhead_of(
    cfg: &RunConfig,
    profiles: &[darco_workloads::BenchProfile],
) -> BTreeMap<String, f64> {
    profiles
        .iter()
        .map(|p| {
            let r = experiments::run_bench(p, cfg);
            (p.name.clone(), r.report.timing.tol_overhead_share())
        })
        .collect()
}

fn ablate_thresholds(base: &RunConfig) {
    heading(
        "Ablation: promotion thresholds (the paper assumes IM/BBth=5, BB/SBth=10K scaled to 50)",
    );
    let mut table = Vec::new();
    for (im, sb) in [(2u32, 50u32), (5, 50), (20, 50), (5, 10), (5, 200), (5, 1000)] {
        let cfg = RunConfig {
            tol: TolConfig { im_bb_threshold: im, bb_sb_threshold: sb, ..base.tol.clone() },
            ..base.clone()
        };
        for (name, ov) in overhead_of(&cfg, &ablation_profiles()) {
            table.push(vec![format!("{im}/{sb}"), name, pct(ov)]);
        }
    }
    println!("{}", render_table(&["IM/BBth / BB/SBth", "benchmark", "overhead"], &table));
}

fn ablate_ibtc(base: &RunConfig) {
    heading("Ablation: IBTC size (indirect-branch handling, Sec. III-E)");
    let mut table = Vec::new();
    for entries in [16u32, 64, 512, 4096] {
        let cfg = RunConfig {
            tol: TolConfig { ibtc_entries: entries, ..base.tol.clone() },
            ..base.clone()
        };
        for p in ablation_profiles() {
            let r = experiments::run_bench(&p, &cfg);
            let hits = r.report.tol.ibtc_hits;
            let total = hits + r.report.tol.ibtc_misses;
            table.push(vec![
                entries.to_string(),
                p.name.clone(),
                pct(r.report.timing.tol_overhead_share()),
                if total > 0 { pct(hits as f64 / total as f64) } else { "-".into() },
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["IBTC entries", "benchmark", "overhead", "IBTC hit rate"], &table)
    );
}

fn ablate_passes(base: &RunConfig) {
    heading("Ablation: SBM optimization passes");
    let variants: Vec<(&str, TolConfig)> = vec![
        ("all passes", base.tol.clone()),
        ("no scheduling", TolConfig { opt_schedule: false, ..base.tol.clone() }),
        ("no CSE", TolConfig { opt_cse: false, ..base.tol.clone() }),
        (
            "no const prop/fold",
            TolConfig { opt_const_prop: false, opt_const_fold: false, ..base.tol.clone() },
        ),
        ("no DCE", TolConfig { opt_dce: false, ..base.tol.clone() }),
        (
            "none (translate only)",
            TolConfig {
                opt_schedule: false,
                opt_cse: false,
                opt_const_prop: false,
                opt_const_fold: false,
                opt_dce: false,
                bbm_peephole: false,
                ..base.tol.clone()
            },
        ),
    ];
    let mut table = Vec::new();
    for (label, tol) in variants {
        let cfg = RunConfig { tol, ..base.clone() };
        for p in ablation_profiles() {
            let r = experiments::run_bench(&p, &cfg);
            table.push(vec![
                label.to_string(),
                p.name.clone(),
                r.report.timing.total_cycles.to_string(),
                format!("{:.3}", r.report.timing.ipc()),
            ]);
        }
    }
    println!("{}", render_table(&["passes", "benchmark", "cycles", "IPC"], &table));
}

fn ablate_codecache(base: &RunConfig) {
    heading("Ablation: code cache capacity (bounded cache with flush, cf. [33])");
    let mut table = Vec::new();
    for cap in [1u32 << 14, 1 << 16, 1 << 18, 1 << 20] {
        let cfg = RunConfig {
            tol: TolConfig { code_cache_capacity: cap, ..base.tol.clone() },
            ..base.clone()
        };
        for p in ablation_profiles() {
            let r = experiments::run_bench(&p, &cfg);
            table.push(vec![
                format!("{}Ki insts", cap >> 10),
                p.name.clone(),
                pct(r.report.timing.tol_overhead_share()),
                r.report.tol.flushes.to_string(),
            ]);
        }
    }
    println!("{}", render_table(&["capacity", "benchmark", "overhead", "flushes"], &table));
}

fn startup(base: &RunConfig) {
    heading("Start-up vs steady state (Sec. II-B transitional effects)");
    use darco_core::{System, SystemConfig};
    use darco_workloads::generate;
    for name in ["462.libquantum", "400.perlbench", "000.cjpeg"] {
        let p = suites::by_name(name).expect("profile");
        let cfg = SystemConfig {
            tol: base.tol.clone(),
            timing: base.timing.clone(),
            cosim: false,
            window_guest_insts: 100_000,
            ..SystemConfig::default()
        };
        let mut sys = System::new(generate(&p, base.scale), cfg);
        let r = sys.run_to_completion();
        println!("{name}: TOL share of host instructions per 100K-guest-instruction window");
        let mut line = String::from("  ");
        for w in r.timeline.iter().take(30) {
            line.push_str(&format!("{:4.0}% ", w.overhead_share() * 100.0));
        }
        println!("{line}");
    }
    println!(
        "\nThe paper's point: a heavy interpreter or translator makes this start-up\n\
         transient a first-order effect, which is why simulation must start from the\n\
         first instruction rather than fast-forwarding to steady state."
    );
}

fn ablate_future(base: &RunConfig) {
    heading("Ablation: the paper's Sec. III-E proposals, implemented");
    let variants: Vec<(&str, TolConfig)> = vec![
        ("baseline", base.tol.clone()),
        ("+ software prefetching", TolConfig { opt_sw_prefetch: true, ..base.tol.clone() }),
        ("+ speculative indirect", TolConfig { speculate_indirect: true, ..base.tol.clone() }),
        ("scattered code placement", TolConfig { codecache_scattered: true, ..base.tol.clone() }),
    ];
    let mut table = Vec::new();
    for (label, tol) in variants {
        let cfg = RunConfig { tol, ..base.clone() };
        for p in ablation_profiles() {
            let r = experiments::run_bench(&p, &cfg);
            let t = &r.report.timing;
            table.push(vec![
                label.to_string(),
                p.name.clone(),
                t.total_cycles.to_string(),
                format!("{:.3}", t.ipc()),
                pct(t.d_miss_rate(darco_host::Owner::App)),
                pct(t.i_miss_rate(darco_host::Owner::App)),
                format!(
                    "{}/{}",
                    r.report.tol.counters.spec_hits, r.report.tol.counters.spec_misses
                ),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "variant",
                "benchmark",
                "cycles",
                "IPC",
                "APP D$ miss",
                "APP I$ miss",
                "spec hit/miss"
            ],
            &table
        )
    );
    println!(
        "expected: prefetching trims D$ misses; speculation pays off for stable indirect\n\
              targets; scattered placement inflates I$ misses (why code placement matters)."
    );
}

fn table1(cfg: &RunConfig) {
    heading("Table I: host processor microarchitectural parameters");
    let t = &cfg.timing;
    let rows: Vec<Vec<String>> = vec![
        vec!["General".into(), "Issue width".into(), t.issue_width.to_string()],
        vec!["Instruction queue".into(), "Size".into(), t.iq_size.to_string()],
        vec![
            "Branch predictor".into(),
            "Size of history register".into(),
            t.bp_history_bits.to_string(),
        ],
        vec!["L1 I-Cache / D-Cache".into(), "Size".into(), format!("{}KB", t.l1i.size / 1024)],
        vec![
            "".into(),
            "Block size/Associativity".into(),
            format!("{}B/{}", t.l1i.block, t.l1i.ways),
        ],
        vec!["".into(), "Replacement policy".into(), "PLRU".into()],
        vec!["".into(), "Hit latency".into(), t.l1i.hit_latency.to_string()],
        vec![
            "Stride prefetcher".into(),
            "Number of entries".into(),
            t.prefetcher_entries.to_string(),
        ],
        vec!["L2 U-Cache".into(), "Size".into(), format!("{}KB", t.l2.size / 1024)],
        vec![
            "".into(),
            "Block size/Associativity".into(),
            format!("{}B/{}", t.l2.block, t.l2.ways),
        ],
        vec!["".into(), "Replacement policy".into(), "PLRU".into()],
        vec!["".into(), "Hit latency".into(), t.l2.hit_latency.to_string()],
        vec!["Main memory".into(), "Hit latency".into(), t.mem_latency.to_string()],
        vec!["L1 TLB".into(), "Entries".into(), format!("{}/{} way", t.tlb1.entries, t.tlb1.ways)],
        vec!["".into(), "Hit latency".into(), t.tlb1.hit_latency.to_string()],
        vec!["L2 TLB".into(), "Entries".into(), format!("{}/{} way", t.tlb2.entries, t.tlb2.ways)],
        vec!["".into(), "Hit latency".into(), t.tlb2.hit_latency.to_string()],
    ];
    println!("{}", render_table(&["Component", "Parameter", "Value"], &rows));
    println!("matches the paper's Table I exactly (TimingConfig::default()).");
}
