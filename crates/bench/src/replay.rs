//! Timing-layer replay harness, shared by the `timing_throughput`
//! criterion bench and the `timing` block of `bench_report`.
//!
//! One functional run of the quicktest profile is recorded into
//! `Arc<[HostEvent]>` batches (with periodic `WindowMark`s so timeline
//! sampling stays on the measured path); replaying those identical
//! batches through a [`TimingSink`] or a full [`TimingBackend`] then
//! measures exactly the timing layer — no functional emulation, no
//! translation, no event-bus production cost.

use std::sync::Arc;

use darco_core::{SystemConfig, TimingBackend, TimingBackendKind, TimingSink};
use darco_host::{HostEvent, HostEventSink};
use darco_tol::Tol;
use darco_workloads::{generate, suites};

/// Workload scale for the recorded stream (matches `retire_throughput`).
pub const SCALE: f64 = 0.05;

/// Guest instructions between injected `WindowMark`s (the default
/// `SystemConfig::window_guest_insts` is the same order of magnitude).
const WINDOW_EVERY: u64 = 20_000;

/// Records the quicktest profile's host-event stream once, chunked into
/// shared batches with a `WindowMark` after every `WINDOW_EVERY` retired
/// events, mirroring what the controller feeds the sinks.
pub fn record_stream() -> Vec<Arc<[HostEvent]>> {
    let w = generate(&suites::quicktest_profile(), SCALE);
    let mut mem = w.mem.clone();
    let mut tol = Tol::new(SystemConfig::default().tol, w.entry);
    tol.set_state(&w.initial);
    let mut raw: Vec<HostEvent> = Vec::new();
    tol.run(&mut mem, &mut raw, u64::MAX).expect("tol run");

    let mut batches = Vec::new();
    let mut batch = Vec::with_capacity(darco_host::events::EVENT_BATCH);
    let mut retired = 0u64;
    let mut next_mark = WINDOW_EVERY;
    for e in raw {
        if matches!(e, HostEvent::Retire(_)) {
            retired += 1;
        }
        batch.push(e);
        if retired >= next_mark {
            batch.push(HostEvent::WindowMark { guest_insts: retired });
            next_mark += WINDOW_EVERY;
        }
        if batch.len() >= darco_host::events::EVENT_BATCH {
            batches.push(Arc::from(std::mem::take(&mut batch).into_boxed_slice()));
        }
    }
    if !batch.is_empty() {
        batches.push(Arc::from(batch.into_boxed_slice()));
    }
    batches
}

/// A system configuration with `pipelines` timing pipelines (1 or 3) and
/// the memory-model fast paths toggled together (`fast = false` is the
/// legacy-layout full-probe oracle, the configuration PR 3 shipped).
pub fn replay_config(pipelines: usize, fast: bool) -> SystemConfig {
    let mut cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: pipelines == 3,
        tol_only_pipeline: pipelines == 3,
        ..SystemConfig::default()
    };
    cfg.timing.flat_mem = fast;
    cfg.timing.mem_shortcuts = fast;
    cfg
}

/// Replays the recorded stream through a bare [`TimingSink`] (the inline
/// consume path) and returns total cycles, so the work cannot be elided.
pub fn replay_sink(batches: &[Arc<[HostEvent]>], pipelines: usize, fast: bool) -> u64 {
    let cfg = replay_config(pipelines, fast);
    let mut sink = TimingSink::new(&cfg);
    for b in batches {
        sink.consume(b);
    }
    let (stats, _, _, windows) = sink.into_parts();
    stats.total_cycles + windows.len() as u64
}

/// Replays the recorded stream through a full backend — spawn, shared
/// `Arc` broadcast, join — on the 3-pipeline set; returns total cycles.
pub fn replay_backend(batches: &[Arc<[HostEvent]>], kind: TimingBackendKind) -> u64 {
    let mut cfg = replay_config(3, true);
    cfg.timing_backend = kind;
    let mut backend = TimingBackend::new(&cfg);
    for b in batches {
        backend.consume_shared(b.clone());
    }
    let (stats, _, _, _) = backend.finish().into_parts();
    stats.total_cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_schedule_and_layout_independent() {
        let batches = record_stream();
        assert!(batches.iter().map(|b| b.len()).sum::<usize>() > 10_000);
        let inline = replay_backend(&batches, TimingBackendKind::Inline);
        assert_eq!(inline, replay_backend(&batches, TimingBackendKind::Threaded));
        assert_eq!(inline, replay_backend(&batches, TimingBackendKind::Fanout));
        assert_eq!(replay_sink(&batches, 3, true), replay_sink(&batches, 3, false));
    }
}
