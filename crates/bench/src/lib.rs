//! # darco-bench — benchmark harness and figure regeneration
//!
//! Two entry points:
//!
//! * the **`figures` binary** regenerates every table/figure of the
//!   paper's evaluation (Figs. 5–11) plus the ablation studies listed in
//!   DESIGN.md §8 — run `figures all`, or `figures fig6 --quick` for a
//!   fast pass;
//! * the **Criterion benches** (`cargo bench`) measure the throughput of
//!   the infrastructure itself and exercise each figure's pipeline at a
//!   small scale.

pub mod replay;

use darco_core::{run_bench, BenchRun, RunConfig};
use darco_workloads::suites;

/// Runs the first `n` benchmarks of the roster at a small scale —
/// shared across the Criterion benches.
pub fn quick_runs(n: usize) -> Vec<BenchRun> {
    let cfg = RunConfig::quick();
    suites::all_profiles().into_iter().take(n).map(|p| run_bench(&p, &cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_runs_produce_reports() {
        let runs = quick_runs(1);
        assert_eq!(runs.len(), 1);
        assert!(runs[0].report.timing.total_cycles > 0);
    }
}
