//! Functional-emulation throughput: guest MIPS through the guest-layer
//! fast path (DESIGN.md §17) versus the decode-per-step byte oracle.
//!
//! Two workloads, each run to `Halt` both ways:
//!
//! * `guest_exec/{fast,oracle}_mixed_loop` — a hand-built counted loop
//!   mixing ALU, narrow/wide memory, flag-producing and branching
//!   instructions, hot enough that the micro-op cache and lazy-flag
//!   elision dominate. This isolates exactly the code the fast path
//!   replaced: `decode` + `exec_decoded` per step.
//! * `guest_exec/{fast,oracle}_quicktest` — the generated quicktest
//!   workload (what `bench_report` measures), with realistic mode and
//!   instruction mixes.
//!
//! Plus the interpreter inside the full TOL engine:
//!
//! * `guest_interp/{fast,oracle}_engine` — the whole TOL (null sink,
//!   promotion disabled so every instruction goes through the
//!   interpreter) with `guest_fast_path` on vs off.
//!
//! Architectural equality of the two paths is asserted before timing;
//! throughput is guest instructions per iteration. Results land in
//! EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use darco_guest::asm::Asm;
use darco_guest::{
    exec, AluOp, Cond, CpuState, ExecCtx, Gpr, GuestMem, Inst, MemRef, MemWidth, Scale, ShiftOp,
};
use darco_tol::{Tol, TolConfig};
use darco_workloads::{generate, suites};

const SCALE: f64 = 0.05;

/// A counted loop mixing ALU, memory and branch work: every iteration
/// defines flags several times (only the loop branch consumes them),
/// loads and stores at width 1/2/4, and takes a conditional skip.
fn mixed_loop() -> (GuestMem, CpuState) {
    let mut a = Asm::new(0x1000);
    let slot = MemRef { base: None, index: Some(Gpr::Esi), scale: Scale::S4, disp: 0x4_0000 };
    let byte_slot = MemRef { base: None, index: Some(Gpr::Esi), scale: Scale::S1, disp: 0x5_0000 };
    a.push(Inst::MovRI { dst: Gpr::Ecx, imm: 40_000 });
    a.push(Inst::MovRI { dst: Gpr::Esi, imm: 0 });
    let top = a.fresh_label();
    a.bind(top);
    a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 7 });
    a.push(Inst::Load { dst: Gpr::Edx, addr: slot });
    a.push(Inst::AluRR { op: AluOp::Xor, dst: Gpr::Eax, src: Gpr::Edx });
    a.push(Inst::Shift { op: ShiftOp::Shl, dst: Gpr::Edx, amount: 3 });
    a.push(Inst::StoreN { addr: byte_slot, src: Gpr::Eax, width: MemWidth::B1 });
    a.push(Inst::AluMR { op: AluOp::Add, addr: slot, src: Gpr::Eax });
    a.push(Inst::CmpRI { a: Gpr::Eax, imm: 0 });
    let skip = a.fresh_label();
    a.push_jcc(Cond::L, skip);
    a.push(Inst::Not { dst: Gpr::Ebx });
    a.bind(skip);
    a.push(Inst::AluRI { op: AluOp::And, dst: Gpr::Esi, imm: 0xFF });
    a.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Ecx, imm: 1 });
    a.push_jcc(Cond::Ne, top);
    a.push(Inst::Halt);
    let p = a.assemble();
    let mut mem = GuestMem::new();
    mem.write_bytes(p.base, &p.bytes);
    let mut cpu = CpuState::at(p.base);
    cpu.set_gpr(Gpr::Esp, 0x9_0000);
    (mem, cpu)
}

/// Runs to `Halt` through the decode-per-step byte oracle.
fn run_oracle(mem: &GuestMem, cpu: &CpuState) -> (CpuState, u64) {
    let mut mem = mem.clone();
    mem.set_fast_path(false);
    let mut cpu = cpu.clone();
    let mut n = 0u64;
    while !cpu.halted {
        exec::step(&mut cpu, &mut mem).expect("oracle decode");
        n += 1;
    }
    (cpu, n)
}

/// Runs to `Halt` through the micro-op fast path, forcing lazy flags at
/// the end so the final state is comparable.
fn run_fast(mem: &GuestMem, cpu: &CpuState) -> (CpuState, u64) {
    let mut mem = mem.clone();
    let mut cpu = cpu.clone();
    let mut ctx = ExecCtx::new();
    let mut n = 0u64;
    while !cpu.halted {
        ctx.step(&mut cpu, &mut mem).expect("fast decode");
        n += 1;
    }
    ctx.force_flags(&mut cpu);
    (cpu, n)
}

/// The whole TOL engine, promotion disabled (interpreter only).
fn tol_interp_run(mem: &GuestMem, cpu: &CpuState, fast: bool) -> u64 {
    let mut mem = mem.clone();
    let cfg =
        TolConfig { im_bb_threshold: u32::MAX, guest_fast_path: fast, ..TolConfig::default() };
    let mut tol = Tol::new(cfg, cpu.eip);
    tol.set_state(cpu);
    let mut sink = darco_host::NullSink;
    tol.run(&mut mem, &mut sink, u64::MAX).expect("tol run")
}

fn bench(c: &mut Criterion) {
    let (mem, cpu) = mixed_loop();
    let (oracle_cpu, insts) = run_oracle(&mem, &cpu);
    let (fast_cpu, fast_insts) = run_fast(&mem, &cpu);
    assert!(oracle_cpu.arch_eq(&fast_cpu), "paths must halt in the same state");
    assert_eq!(insts, fast_insts, "paths must retire identically");

    let mut g = c.benchmark_group("guest_exec");
    g.throughput(Throughput::Elements(insts));
    g.bench_function("fast_mixed_loop", |b| b.iter(|| black_box(run_fast(&mem, &cpu))));
    g.bench_function("oracle_mixed_loop", |b| b.iter(|| black_box(run_oracle(&mem, &cpu))));

    let w = generate(&suites::quicktest_profile(), SCALE);
    let (q_oracle, q_insts) = run_oracle(&w.mem, &w.initial);
    let (q_fast, q_fast_insts) = run_fast(&w.mem, &w.initial);
    assert!(q_oracle.arch_eq(&q_fast), "quicktest paths must agree");
    assert_eq!(q_insts, q_fast_insts);
    g.throughput(Throughput::Elements(q_insts));
    g.bench_function("fast_quicktest", |b| b.iter(|| black_box(run_fast(&w.mem, &w.initial))));
    g.bench_function("oracle_quicktest", |b| b.iter(|| black_box(run_oracle(&w.mem, &w.initial))));
    g.finish();

    let engine_insts = tol_interp_run(&mem, &cpu, true);
    assert_eq!(engine_insts, tol_interp_run(&mem, &cpu, false), "engine paths must agree");
    let mut g = c.benchmark_group("guest_interp");
    g.throughput(Throughput::Elements(engine_insts));
    g.bench_function("fast_engine", |b| b.iter(|| black_box(tol_interp_run(&mem, &cpu, true))));
    g.bench_function("oracle_engine", |b| b.iter(|| black_box(tol_interp_run(&mem, &cpu, false))));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
