//! End-to-end system throughput: one small profile through the full
//! `System::run_to_completion` (functional emulation, TOL, event bus and
//! all three timing pipelines), in the shipping configuration.
//!
//! This is the number `scripts/bench.sh` reports: it reflects every
//! layer at once, so it moves with any retirement-path change even when
//! a microbenchmark would not.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use darco_core::{System, SystemConfig};
use darco_workloads::{generate, suites};

const SCALE: f64 = 0.05;

fn run_once() -> u64 {
    let cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        ..SystemConfig::default()
    };
    let w = generate(&suites::quicktest_profile(), SCALE);
    let mut sys = System::new(w, cfg);
    sys.run_to_completion().trace.retired
}

fn bench(c: &mut Criterion) {
    let events = run_once();
    let mut g = c.benchmark_group("bench_system");
    g.throughput(Throughput::Elements(events));
    g.bench_function("quicktest_full_system", |b| b.iter(|| black_box(run_once())));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
