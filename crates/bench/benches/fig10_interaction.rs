//! Bench for the Fig. 10/11 pipeline: interaction analysis from the
//! shared and filtered timing models.

use criterion::{criterion_group, criterion_main, Criterion};
use darco_core::experiments::{fig10, fig11_app, fig11_tol, run_bench, RunConfig};
use darco_workloads::suites;

fn bench(c: &mut Criterion) {
    let profile = suites::quicktest_profile();
    let cfg = RunConfig { scale: 0.05, ..RunConfig::default() };
    let runs = vec![run_bench(&profile, &cfg)];
    c.bench_function("fig10_fig11_reduce", |b| {
        b.iter(|| {
            let f10 = fig10(&runs);
            let f11a = fig11_tol(&runs);
            let f11b = fig11_app(&runs);
            (f10, f11a, f11b)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
