//! Bench for the Fig. 5 pipeline: full system run plus static/dynamic
//! mode-distribution reduction on a small workload.

use criterion::{criterion_group, criterion_main, Criterion};
use darco_core::experiments::{fig5, run_bench, RunConfig};
use darco_workloads::suites;

fn bench(c: &mut Criterion) {
    let profile = suites::quicktest_profile();
    let cfg = RunConfig { scale: 0.05, ..RunConfig::default() };
    c.bench_function("fig5_run_and_reduce", |b| {
        b.iter(|| {
            let runs = vec![run_bench(&profile, &cfg)];
            let rows = fig5(&runs);
            assert!((rows[0].dyn_pct.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
