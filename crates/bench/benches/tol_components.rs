//! Micro-benchmarks of the infrastructure's hot components: guest
//! decode, basic-block translation, the superblock optimizer, the
//! timing pipeline and the cache model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use darco_guest::{decode, encode, Gpr, GuestMem, Inst};
use darco_host::stream::{int_reg, DynInst};
use darco_host::{Component, ExecClass};
use darco_timing::cache::Cache;
use darco_timing::{Pipeline, TimingConfig};
use darco_tol::config::TolConfig;
use darco_tol::opt;
use darco_tol::translate::{decode_bb, translate_region};

fn guest_block() -> (GuestMem, u32) {
    use darco_guest::asm::Asm;
    use darco_guest::{AluOp, MemRef};
    let mut a = Asm::new(0x1000);
    for i in 0..20 {
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: i });
        a.push(Inst::Load { dst: Gpr::Edx, addr: MemRef::base(Gpr::Esi, 4 * i) });
        a.push(Inst::AluRR { op: AluOp::Xor, dst: Gpr::Ebx, src: Gpr::Edx });
    }
    a.push(Inst::Ret);
    let p = a.assemble();
    let mut mem = GuestMem::new();
    mem.write_bytes(p.base, &p.bytes);
    (mem, p.base)
}

fn bench(c: &mut Criterion) {
    // Guest decode throughput.
    let bytes = encode::encode_to_vec(&Inst::AluRI {
        op: darco_guest::AluOp::Add,
        dst: Gpr::Eax,
        imm: 100_000,
    });
    let mut g = c.benchmark_group("components");
    g.throughput(Throughput::Elements(1));
    g.bench_function("guest_decode", |b| b.iter(|| decode(&bytes).unwrap()));

    // Basic-block translation.
    let (mem, entry) = guest_block();
    g.bench_function("bb_translate", |b| {
        b.iter(|| {
            let bb = decode_bb(&mem, entry).unwrap();
            translate_region(&bb)
        })
    });

    // Superblock optimization.
    let bb = decode_bb(&mem, entry).unwrap();
    let ir = translate_region(&bb);
    let cfg = TolConfig::default();
    g.bench_function("sbm_optimize", |b| b.iter(|| opt::optimize(ir.clone(), &cfg).unwrap()));

    // Timing pipeline retire throughput.
    let insts: Vec<DynInst> = (0..64)
        .map(|i| {
            DynInst::plain(i * 4, ExecClass::SimpleInt, Component::AppCode)
                .with_dst(int_reg((i % 8) as u8 + 1))
        })
        .collect();
    g.throughput(Throughput::Elements(insts.len() as u64));
    g.bench_function("pipeline_retire", |b| {
        let mut p = Pipeline::new(TimingConfig::default());
        b.iter(|| {
            for d in &insts {
                p.retire(d);
            }
        })
    });

    // Cache access throughput.
    g.throughput(Throughput::Elements(64));
    g.bench_function("cache_access", |b| {
        let mut cache = Cache::new(TimingConfig::default().l1d);
        let mut a = 0u64;
        b.iter(|| {
            for _ in 0..64 {
                a = a.wrapping_add(0x40);
                cache.access(a % (1 << 20));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
