//! Bench for the Fig. 8 pipeline: the TOL-only timing model.

use criterion::{criterion_group, criterion_main, Criterion};
use darco_core::experiments::{fig8, run_bench, RunConfig};
use darco_workloads::suites;

fn bench(c: &mut Criterion) {
    let profile = suites::quicktest_profile();
    let cfg = RunConfig { scale: 0.05, ..RunConfig::default() };
    let runs = vec![run_bench(&profile, &cfg)];
    c.bench_function("fig8_reduce", |b| {
        b.iter(|| {
            let rows = fig8(&runs);
            assert!(rows[0].ipc > 0.0);
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
