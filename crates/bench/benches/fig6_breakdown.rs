//! Bench for the Fig. 6 pipeline: execution-time breakdown extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use darco_core::experiments::{fig6, fig6_suite_averages, run_bench, RunConfig};
use darco_workloads::suites;

fn bench(c: &mut Criterion) {
    let profile = suites::quicktest_profile();
    let cfg = RunConfig { scale: 0.05, ..RunConfig::default() };
    let runs = vec![run_bench(&profile, &cfg)];
    c.bench_function("fig6_reduce", |b| {
        b.iter(|| {
            let rows = fig6(&runs);
            fig6_suite_averages(&rows)
        })
    });
    c.bench_function("fig6_full_run", |b| b.iter(|| run_bench(&profile, &cfg)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
