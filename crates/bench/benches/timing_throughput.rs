//! Timing-backend throughput: how fast the timing layer digests a
//! prerecorded host-event stream, isolated from functional emulation.
//!
//! The recorded stream and replay harness live in
//! [`darco_bench::replay`]; every benchmark replays the identical
//! `Arc<[HostEvent]>` batches, so the comparisons below measure exactly
//! the timing layer:
//!
//! * `timing_sink/{1,3}p_fast`   — `TimingSink::consume` with the
//!   shipping memory model (flat tag layout + last-line/last-page
//!   shortcuts), one pipeline vs all three,
//! * `timing_sink/{1,3}p_oracle` — the same stream through the legacy
//!   per-set layout with shortcuts off (`flat_mem = false`,
//!   `mem_shortcuts = false`), the configuration PR 3 shipped,
//! * `timing_backend/{inline,threaded,fanout}_3p` — the full backend
//!   (spawn, zero-copy broadcast, join) on the 3-pipeline set.
//!
//! Throughput is host events consumed per iteration; scripts/bench.sh
//! summarizes the same replay into the `timing` block of
//! BENCH_report.json, and the numbers land in EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use darco_bench::replay::{record_stream, replay_backend, replay_sink};
use darco_core::TimingBackendKind;

fn bench(c: &mut Criterion) {
    let batches = record_stream();
    let events: u64 = batches.iter().map(|b| b.len() as u64).sum();

    // The replay must be schedule-independent before it is worth timing.
    let inline = replay_backend(&batches, TimingBackendKind::Inline);
    assert_eq!(inline, replay_backend(&batches, TimingBackendKind::Threaded));
    assert_eq!(inline, replay_backend(&batches, TimingBackendKind::Fanout));
    assert_eq!(
        replay_sink(&batches, 3, true),
        replay_sink(&batches, 3, false),
        "fast and oracle memory paths must cycle-match"
    );

    let mut g = c.benchmark_group("timing_sink");
    g.throughput(Throughput::Elements(events));
    g.bench_function("1p_fast", |b| b.iter(|| black_box(replay_sink(&batches, 1, true))));
    g.bench_function("1p_oracle", |b| b.iter(|| black_box(replay_sink(&batches, 1, false))));
    g.bench_function("3p_fast", |b| b.iter(|| black_box(replay_sink(&batches, 3, true))));
    g.bench_function("3p_oracle", |b| b.iter(|| black_box(replay_sink(&batches, 3, false))));
    g.finish();

    let mut g = c.benchmark_group("timing_backend");
    g.throughput(Throughput::Elements(events));
    g.bench_function("inline_3p", |b| {
        b.iter(|| black_box(replay_backend(&batches, TimingBackendKind::Inline)))
    });
    g.bench_function("threaded_3p", |b| {
        b.iter(|| black_box(replay_backend(&batches, TimingBackendKind::Threaded)))
    });
    g.bench_function("fanout_3p", |b| {
        b.iter(|| black_box(replay_backend(&batches, TimingBackendKind::Fanout)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
