//! Retirement-path throughput: how fast the system moves host events
//! from the functional emulation loop into the timing pipelines.
//!
//! Three delivery schedules over the identical workload:
//!
//! * `inline_batched`   — default batch size, timing consumed inline,
//! * `inline_per_inst`  — `event_batch = 1`, reproducing the old
//!   one-callback-per-retired-instruction delivery,
//! * `threaded_batched` — default batch size, timing overlapped on a
//!   worker thread.
//!
//! Throughput is host events retired per iteration; results land in
//! EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use darco_core::{System, SystemConfig};
use darco_workloads::{generate, suites};

const SCALE: f64 = 0.05;

fn run_once(event_batch: usize, threaded: bool) -> u64 {
    let mut cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        threaded_timing: threaded,
        ..SystemConfig::default()
    };
    cfg.tol.event_batch = event_batch;
    let w = generate(&suites::quicktest_profile(), SCALE);
    let mut sys = System::new(w, cfg);
    sys.run_to_completion().trace.retired
}

fn bench(c: &mut Criterion) {
    // One throwaway run sizes the throughput declaration.
    let events = run_once(darco_host::events::EVENT_BATCH, false);

    let mut g = c.benchmark_group("retire_throughput");
    g.throughput(Throughput::Elements(events));
    g.bench_function("inline_batched", |b| {
        b.iter(|| black_box(run_once(darco_host::events::EVENT_BATCH, false)))
    });
    g.bench_function("inline_per_inst", |b| b.iter(|| black_box(run_once(1, false))));
    g.bench_function("threaded_batched", |b| {
        b.iter(|| black_box(run_once(darco_host::events::EVENT_BATCH, true)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
