//! Retirement-path throughput: how fast the system moves host events
//! from the functional emulation loop into the timing pipelines.
//!
//! Three delivery schedules over the identical workload:
//!
//! * `inline_batched`   — default batch size, timing consumed inline,
//! * `inline_per_inst`  — `event_batch = 1`, reproducing the old
//!   one-callback-per-retired-instruction delivery,
//! * `threaded_batched` — default batch size, timing overlapped on a
//!   worker thread,
//! * `fanout_batched`   — default batch size, one worker per timing
//!   pipeline fed by the zero-copy `Arc` broadcast.
//!
//! Plus the template ablation, twice:
//!
//! * `retire_templates/{templates,rederive}_translated_block` — the
//!   translated-block schedule: replay one block's retirement stream
//!   (template copy + dynamic-field patch vs full per-retire metadata
//!   derivation) into a null-sinked event buffer, with no functional
//!   execution. This isolates exactly the code the templates replaced.
//! * `retire_templates/{templates,rederive}_engine` — the whole TOL
//!   engine (exec + retire, null sink) on a hot translated loop, where
//!   the derivation win is diluted by guest emulation itself.
//!
//! Plus the translation scratch-arena ablation:
//!
//! * `translate_scratch/{scratch_reuse,fresh_alloc}` — repeatedly
//!   translate the same decoded region to IR, either recycling one
//!   [`IrScratch`] arena (what the engine's synchronous path and every
//!   pool worker do since DESIGN.md §15) or allocating fresh vectors
//!   per translation (the old behavior). The emitted IR is pinned
//!   identical; only allocator traffic differs.
//!
//! Throughput is host events retired per iteration; results land in
//! EXPERIMENTS.md.
//!
//! [`IrScratch`]: darco_tol::translate::IrScratch

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use darco_core::{System, SystemConfig, TimingBackendKind};
use darco_guest::asm::Asm;
use darco_guest::{AluOp, Cond, Gpr, GuestMem, Inst, MemRef, Scale};
use darco_host::events::EventBuffer;
use darco_host::layout::guest_to_host;
use darco_host::stream::{fp_reg, int_reg, NO_REG};
use darco_host::{
    compile_block, BranchKind, Component, DynInst, Exit, HAluOp, HCond, HFreg, HInst, HReg,
    RetireDyn, Width,
};
use darco_tol::{Tol, TolConfig};
use darco_workloads::{generate, suites};

const SCALE: f64 = 0.05;

/// A counted loop whose body stays hot: after a few iterations all
/// retirement comes from translated blocks, so this isolates the
/// per-retire cost of `exec_block` itself.
fn hot_loop() -> (GuestMem, u32) {
    let mut a = Asm::new(0x1000);
    let slot = MemRef { base: None, index: Some(Gpr::Esi), scale: Scale::S4, disp: 0x4_0000 };
    a.push(Inst::MovRI { dst: Gpr::Ecx, imm: 60_000 });
    a.push(Inst::MovRI { dst: Gpr::Esi, imm: 0 });
    let top = a.here();
    a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 3 });
    a.push(Inst::AluRR { op: AluOp::Xor, dst: Gpr::Eax, src: Gpr::Edx });
    a.push(Inst::Load { dst: Gpr::Edx, addr: slot });
    a.push(Inst::AluRR { op: AluOp::Or, dst: Gpr::Edx, src: Gpr::Eax });
    a.push(Inst::MovRR { dst: Gpr::Ebx, src: Gpr::Eax });
    a.push(Inst::AluRI { op: AluOp::And, dst: Gpr::Esi, imm: 0xFF });
    a.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Ecx, imm: 1 });
    a.push(Inst::Jcc { cond: Cond::Ne, target: top });
    a.push(Inst::Halt);
    let p = a.assemble();
    let mut mem = GuestMem::new();
    mem.write_bytes(p.base, &p.bytes);
    (mem, p.base)
}

/// A varied translated-block population, like a warm code cache: many
/// distinct instruction sequences, so the per-retire metadata match in
/// the re-derivation path sees realistic (unpredictable) control flow
/// rather than one trained pattern.
fn block_insts() -> Vec<HInst> {
    use darco_guest::FpOp;
    let r = HReg;
    let mut insts = Vec::new();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..512 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let a = r(8 + (x >> 8) as u8 % 24);
        let b = r(8 + (x >> 16) as u8 % 24);
        let d = r(8 + (x >> 24) as u8 % 24);
        let f = HFreg((x >> 32) as u8 % 16);
        let off = ((x >> 40) & 0xFFF) as i32;
        insts.push(match x % 11 {
            0 => HInst::Alu { op: HAluOp::Add, rd: d, ra: a, rb: b },
            1 => HInst::AluI { op: HAluOp::Xor, rd: d, ra: a, imm: off },
            2 => HInst::Li { rd: d, imm: off as i64 },
            3 => HInst::Ld { rd: d, base: a, off, width: Width::W4 },
            4 => HInst::St { rs: a, base: b, off, width: Width::W4 },
            5 => HInst::Mul { rd: d, ra: a, rb: b },
            6 => HInst::FLd { fd: f, base: a, off },
            7 => HInst::FSt { fs: f, base: a, off },
            8 => HInst::FArith { op: FpOp::Mul, fd: f, fa: f, fb: f },
            9 => HInst::Br { cond: HCond::Ne, ra: a, rb: b, target: 0 },
            _ => HInst::Exit(Exit::Direct { guest_target: 0x1000, link: None }),
        });
    }
    insts
}

const BLOCK_BASE: u64 = 0x2_0000_0000;
const BLOCK_REPLAYS: usize = 1_000;

/// The translated-block schedule, template path: copy the prebuilt
/// record and patch only the dynamic fields — what `exec_block` does
/// per retire, minus the functional execution.
fn replay_templates(insts: &[HInst], regs: &[u32; 64], replays: usize, ev: &mut EventBuffer<'_>) {
    let templates = compile_block(insts, BLOCK_BASE);
    for _ in 0..replays {
        for tpl in &templates {
            let mut d = tpl.inst;
            if let RetireDyn::Mem { base, off } = tpl.dyn_kind {
                let addr = guest_to_host(regs[base.0 as usize].wrapping_add(off as u32));
                if let Some(m) = d.mem.as_mut() {
                    m.addr = addr;
                }
            }
            match tpl.dyn_kind {
                RetireDyn::CondBranch => {
                    if let Some(b) = d.branch.as_mut() {
                        b.2 = false;
                    }
                }
                RetireDyn::DirectExit => {
                    d = d.with_branch(
                        BranchKind::UncondDirect,
                        darco_host::layout::TOL_CODE_BASE,
                        true,
                    );
                }
                RetireDyn::Fixed | RetireDyn::Mem { .. } => {}
            }
            ev.retire(d);
        }
    }
}

/// The translated-block schedule, re-derivation oracle: build every
/// record from the instruction's own metadata, exactly like the
/// pre-template `exec_block`.
fn replay_rederive(insts: &[HInst], regs: &[u32; 64], replays: usize, ev: &mut EventBuffer<'_>) {
    let reg = |r: HReg| regs[r.0 as usize];
    for _ in 0..replays {
        for (idx, inst) in insts.iter().enumerate() {
            let pc = BLOCK_BASE + 4 * idx as u64;
            let mem_event = match *inst {
                HInst::Prefetch { base, off } => {
                    Some((guest_to_host(reg(base).wrapping_add(off as u32)), 64, false))
                }
                HInst::Ld { base, off, width, .. } => {
                    Some((guest_to_host(reg(base).wrapping_add(off as u32)), width.bytes(), false))
                }
                HInst::St { base, off, width, .. } => {
                    Some((guest_to_host(reg(base).wrapping_add(off as u32)), width.bytes(), true))
                }
                HInst::FLd { base, off, .. } => {
                    Some((guest_to_host(reg(base).wrapping_add(off as u32)), 8, false))
                }
                HInst::FSt { base, off, .. } => {
                    Some((guest_to_host(reg(base).wrapping_add(off as u32)), 8, true))
                }
                _ => None,
            };
            let mut d = DynInst::plain(pc, inst.class(), Component::AppCode);
            if let Some((addr, size, is_store)) = mem_event {
                if matches!(inst, HInst::Prefetch { .. }) {
                    d = d.with_prefetch(addr);
                } else {
                    d = d.with_mem(addr, size, is_store);
                }
            }
            if let Some(r) = inst.dst() {
                d.dst = int_reg(r.0);
            } else if let Some(f) = inst.fdst() {
                d.dst = fp_reg(f.0);
            }
            let mut srcs = [NO_REG; 2];
            let mut si = 0;
            for s in inst.srcs().into_iter().flatten() {
                if si < 2 {
                    srcs[si] = int_reg(s.0);
                    si += 1;
                }
            }
            for s in inst.fsrcs().into_iter().flatten() {
                if si < 2 {
                    srcs[si] = fp_reg(s.0);
                    si += 1;
                }
            }
            d.srcs = srcs;
            d.recompute_ops();
            match *inst {
                HInst::Br { target, .. } | HInst::BrFlags { target, .. } => {
                    d = d.with_branch(
                        BranchKind::CondDirect,
                        BLOCK_BASE + 4 * target as u64,
                        false,
                    );
                }
                HInst::Jump { target } => {
                    d = d.with_branch(
                        BranchKind::UncondDirect,
                        BLOCK_BASE + 4 * target as u64,
                        true,
                    );
                }
                HInst::Exit(Exit::Direct { .. }) => {
                    d = d.with_branch(
                        BranchKind::UncondDirect,
                        darco_host::layout::TOL_CODE_BASE,
                        true,
                    );
                }
                _ => {}
            }
            ev.retire(d);
        }
    }
}

fn replay_regs() -> [u32; 64] {
    let mut regs = [0u32; 64];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = 0x4_0000 + (i as u32) * 0x100;
    }
    regs
}

/// Runs one replay schedule into a null-sinked event buffer.
fn replay_run(f: impl Fn(&[HInst], &[u32; 64], usize, &mut EventBuffer<'_>)) -> u64 {
    let insts = block_insts();
    let regs = replay_regs();
    let mut sink = darco_host::NullSink;
    let mut ev = EventBuffer::new(darco_host::events::EVENT_BATCH, &mut sink);
    f(&insts, &regs, BLOCK_REPLAYS, &mut ev);
    ev.flush();
    (insts.len() * BLOCK_REPLAYS) as u64
}

/// One collected pass of each replay schedule, to pin that the bench's
/// two paths emit the same stream.
fn replay_streams_match() {
    let insts = block_insts();
    let regs = replay_regs();
    let t = collect_replay(&insts, &regs, replay_templates);
    let o = collect_replay(&insts, &regs, replay_rederive);
    assert_eq!(t, o, "replay schedules diverged");
}

fn collect_replay(
    insts: &[HInst],
    regs: &[u32; 64],
    f: impl Fn(&[HInst], &[u32; 64], usize, &mut EventBuffer<'_>),
) -> Vec<DynInst> {
    let mut v: Vec<DynInst> = Vec::new();
    let mut sink = darco_host::events::RetireSink(|d: &DynInst| v.push(*d));
    let mut ev = EventBuffer::new(darco_host::events::EVENT_BATCH, &mut sink);
    f(insts, regs, 1, &mut ev);
    ev.flush();
    v
}

/// Translations per iteration of the scratch-arena ablation.
const TRANSLATE_REPLAYS: usize = 2_000;

/// Repeatedly lowers the same region to IR, recycling one arena.
fn translate_scratch_reuse(region: &[darco_tol::translate::RegionInst]) -> usize {
    use darco_tol::translate::{translate_region_scratch, IrScratch};
    let mut scratch = IrScratch::default();
    let mut ops = 0usize;
    for _ in 0..TRANSLATE_REPLAYS {
        let block = translate_region_scratch(black_box(region), true, &mut scratch);
        ops += block.ops.len();
        scratch.recycle(block);
    }
    ops
}

/// The fresh-allocation oracle: every translation starts from
/// `Vec::new()`, like the engine before the arena existed.
fn translate_fresh_alloc(region: &[darco_tol::translate::RegionInst]) -> usize {
    use darco_tol::translate::translate_region_with;
    let mut ops = 0usize;
    for _ in 0..TRANSLATE_REPLAYS {
        ops += translate_region_with(black_box(region), true).ops.len();
    }
    ops
}

fn tol_run(mem: &GuestMem, entry: u32, templates: bool) -> u64 {
    let mut mem = mem.clone();
    let cfg = TolConfig {
        im_bb_threshold: 1,
        bb_sb_threshold: 16,
        retire_templates: templates,
        interp_decode_cache: templates,
        ..TolConfig::default()
    };
    let mut tol = Tol::new(cfg, entry);
    let mut sink = darco_host::NullSink;
    tol.run(&mut mem, &mut sink, u64::MAX).expect("tol run")
}

fn run_once(event_batch: usize, backend: TimingBackendKind) -> u64 {
    let mut cfg = SystemConfig {
        cosim: false,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        timing_backend: backend,
        ..SystemConfig::default()
    };
    cfg.tol.event_batch = event_batch;
    let w = generate(&suites::quicktest_profile(), SCALE);
    let mut sys = System::new(w, cfg);
    sys.run_to_completion().trace.retired
}

fn bench(c: &mut Criterion) {
    // One throwaway run sizes the throughput declaration.
    let events = run_once(darco_host::events::EVENT_BATCH, TimingBackendKind::Inline);

    let mut g = c.benchmark_group("retire_throughput");
    g.throughput(Throughput::Elements(events));
    g.bench_function("inline_batched", |b| {
        b.iter(|| black_box(run_once(darco_host::events::EVENT_BATCH, TimingBackendKind::Inline)))
    });
    g.bench_function("inline_per_inst", |b| {
        b.iter(|| black_box(run_once(1, TimingBackendKind::Inline)))
    });
    g.bench_function("threaded_batched", |b| {
        b.iter(|| black_box(run_once(darco_host::events::EVENT_BATCH, TimingBackendKind::Threaded)))
    });
    g.bench_function("fanout_batched", |b| {
        b.iter(|| black_box(run_once(darco_host::events::EVENT_BATCH, TimingBackendKind::Fanout)))
    });
    g.finish();

    // The translated-block schedule: retire-path cost in isolation.
    replay_streams_match();
    let events = replay_run(replay_templates);
    let mut g = c.benchmark_group("retire_templates");
    g.throughput(Throughput::Elements(events));
    g.bench_function("templates_translated_block", |b| {
        b.iter(|| black_box(replay_run(replay_templates)))
    });
    g.bench_function("rederive_translated_block", |b| {
        b.iter(|| black_box(replay_run(replay_rederive)))
    });

    // The whole engine on a hot translated loop (exec + retire).
    let (mem, entry) = hot_loop();
    let guest = tol_run(&mem, entry, true);
    assert_eq!(guest, tol_run(&mem, entry, false), "paths must retire identically");
    g.bench_function("templates_engine", |b| b.iter(|| black_box(tol_run(&mem, entry, true))));
    g.bench_function("rederive_engine", |b| b.iter(|| black_box(tol_run(&mem, entry, false))));
    g.finish();

    // The scratch-arena ablation: identical IR, different allocations.
    let region = darco_tol::translate::decode_bb(&mem, entry).expect("decode hot-loop entry block");
    {
        use darco_tol::translate::{translate_region_scratch, translate_region_with, IrScratch};
        let mut scratch = IrScratch::default();
        let reused = translate_region_scratch(&region, true, &mut scratch);
        let fresh = translate_region_with(&region, true);
        assert_eq!(
            format!("{reused:?}"),
            format!("{fresh:?}"),
            "scratch reuse changed the emitted IR"
        );
    }
    let mut g = c.benchmark_group("translate_scratch");
    g.throughput(Throughput::Elements(TRANSLATE_REPLAYS as u64));
    g.bench_function("scratch_reuse", |b| b.iter(|| black_box(translate_scratch_reuse(&region))));
    g.bench_function("fresh_alloc", |b| b.iter(|| black_box(translate_fresh_alloc(&region))));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
