//! # darco-guest — the guest ISA of the DARCO reproduction
//!
//! This crate defines **g86**, a compact x86-like CISC guest instruction
//! set, together with everything DARCO's *x86 Component* needs:
//!
//! * the architectural state ([`CpuState`]: eight general-purpose
//!   registers, eight floating-point registers, `eip` and [`Flags`]),
//! * a variable-length binary [`encode()`]/[`decode()`] pair (instructions
//!   occupy 1–10 bytes, like real x86),
//! * a sparse paged guest memory ([`GuestMem`]),
//! * a functional emulator ([`exec::step`]) that is the *authoritative*
//!   reference the rest of the system is checked against
//!   (co-simulation, Sec. II-A of the paper),
//! * a tiny assembler ([`asm::Asm`]) used by the workload generator and
//!   by tests.
//!
//! The ISA keeps the structural properties the paper's software layer is
//! sensitive to — variable-length decode, condition flags written by most
//! arithmetic, CISC memory operands, direct and *indirect* control flow —
//! without aiming for x86 binary compatibility (see `DESIGN.md` §2).
//!
//! ```
//! use darco_guest::{asm::Asm, exec, CpuState, Gpr, GuestMem, Inst};
//!
//! let mut a = Asm::new(0x1000);
//! a.push(Inst::MovRI { dst: Gpr::Eax, imm: 20 });
//! a.push(Inst::AluRI { op: darco_guest::AluOp::Add, dst: Gpr::Eax, imm: 22 });
//! a.push(Inst::Halt);
//! let prog = a.assemble();
//!
//! let mut mem = GuestMem::new();
//! mem.write_bytes(prog.base, &prog.bytes);
//! let mut cpu = CpuState::at(prog.base);
//! while !cpu.halted {
//!     exec::step(&mut cpu, &mut mem).unwrap();
//! }
//! assert_eq!(cpu.gpr(Gpr::Eax), 42);
//! ```

pub mod asm;
pub mod decode;
pub mod encode;
pub mod exec;
pub mod inst;
pub mod mem;
pub mod state;
pub mod uops;

pub use decode::{decode, disassemble, DecodeError};
pub use encode::encode;
pub use inst::{AluOp, Cond, FpOp, FpReg, Gpr, Inst, MemRef, MemWidth, Scale, ShiftOp};
pub use mem::GuestMem;
pub use state::{CpuState, Flags};
pub use uops::{ExecCtx, FastStats, LazyFlags};

/// Broad class of a guest instruction, used for instruction-mix statistics
/// and by the TOL cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum GuestClass {
    /// Integer ALU work (moves, arithmetic, logic, shifts).
    Int,
    /// Integer multiply/divide (complex integer).
    IntComplex,
    /// Floating-point add/sub/convert (simple FP).
    Fp,
    /// Floating-point multiply/divide (complex FP).
    FpComplex,
    /// Explicit loads, plus the load half of CISC read-modify-write ops.
    Load,
    /// Explicit stores.
    Store,
    /// Direct conditional or unconditional branches.
    Branch,
    /// Direct calls.
    Call,
    /// Returns (indirect by nature).
    Ret,
    /// Register- or memory-indirect jumps and calls.
    IndirectBranch,
    /// Everything else (`Nop`, `Syscall`, `Halt`).
    Other,
}
