//! Binary decoding of guest instructions.
//!
//! Mirrors [`crate::encode()`]; see that module for the format. The decoder
//! is total over the byte stream: malformed input yields a
//! [`DecodeError`] rather than a panic, since the interpreter may be
//! pointed at arbitrary guest memory by wild indirect branches.

use crate::encode::opcodes as op;
use crate::inst::{AluOp, Cond, FpOp, FpReg, Gpr, Inst, MemRef, MemWidth, Scale, ShiftOp};
use std::fmt;

/// Error decoding a guest instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended before the instruction was complete.
    Truncated,
    /// The opcode byte does not name any instruction.
    BadOpcode(u8),
    /// An operand field held an out-of-range value.
    BadOperand(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction bytes truncated"),
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            DecodeError::BadOperand(b) => write!(f, "invalid operand byte {b:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let s = self.bytes.get(self.pos..self.pos + 4).ok_or(DecodeError::Truncated)?;
        self.pos += 4;
        Ok(i32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        self.i32().map(|v| v as u32)
    }

    fn gpr(&mut self) -> Result<Gpr, DecodeError> {
        let b = self.u8()?;
        if b < 8 {
            Ok(Gpr::from_index(b as usize))
        } else {
            Err(DecodeError::BadOperand(b))
        }
    }

    fn gpr_pair(&mut self) -> Result<(Gpr, Gpr), DecodeError> {
        let b = self.u8()?;
        let hi = b >> 4;
        let lo = b & 0x0F;
        if hi < 8 && lo < 8 {
            Ok((Gpr::from_index(hi as usize), Gpr::from_index(lo as usize)))
        } else {
            Err(DecodeError::BadOperand(b))
        }
    }

    fn fpr_pair(&mut self) -> Result<(FpReg, FpReg), DecodeError> {
        let b = self.u8()?;
        let hi = b >> 4;
        let lo = b & 0x0F;
        if hi < FpReg::COUNT && lo < FpReg::COUNT {
            Ok((FpReg(hi), FpReg(lo)))
        } else {
            Err(DecodeError::BadOperand(b))
        }
    }

    /// Immediate whose size bit lives in bit 7 of an earlier byte.
    fn imm(&mut self, size_byte: u8) -> Result<i32, DecodeError> {
        if size_byte & 0x80 != 0 {
            self.i32()
        } else {
            Ok(self.u8()? as i8 as i32)
        }
    }

    fn mem(&mut self) -> Result<MemRef, DecodeError> {
        let flags = self.u8()?;
        let base =
            if flags & 1 != 0 { Some(Gpr::from_index(((flags >> 1) & 7) as usize)) } else { None };
        let index = if flags & (1 << 4) != 0 {
            let b = self.u8()?;
            if b >= 8 {
                return Err(DecodeError::BadOperand(b));
            }
            Some(Gpr::from_index(b as usize))
        } else {
            None
        };
        let disp = if flags & (1 << 5) != 0 { self.i32()? } else { self.u8()? as i8 as i32 };
        Ok(MemRef { base, index, scale: Scale::from_bits(flags >> 6), disp })
    }
}

/// Decodes one instruction from the front of `bytes`.
///
/// Returns the instruction and the number of bytes it occupied.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes are truncated, the opcode is
/// unknown, or an operand field is out of range.
pub fn decode(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    let opc = c.u8()?;
    let inst = match opc {
        op::NOP => Inst::Nop,
        op::HALT => Inst::Halt,
        op::SYSCALL => Inst::Syscall,
        op::MOV_RR => {
            let (dst, src) = c.gpr_pair()?;
            Inst::MovRR { dst, src }
        }
        op::MOV_RI => {
            let b = c.u8()?;
            let dst = reg_low(b)?;
            let imm = c.imm(b)?;
            Inst::MovRI { dst, imm }
        }
        op::LOAD => {
            let dst = c.gpr()?;
            let addr = c.mem()?;
            Inst::Load { dst, addr }
        }
        op::STORE => {
            let src = c.gpr()?;
            let addr = c.mem()?;
            Inst::Store { addr, src }
        }
        op::STORE_I => {
            let b = c.u8()?;
            let addr = c.mem()?;
            let imm = c.imm(b)?;
            Inst::StoreI { addr, imm }
        }
        op::LEA => {
            let dst = c.gpr()?;
            let addr = c.mem()?;
            Inst::Lea { dst, addr }
        }
        op::LOAD_ZX | op::LOAD_SX | op::STORE_N => {
            let b = c.u8()?;
            let reg_idx = b & 0x07;
            if b & !0x17 != 0 {
                return Err(DecodeError::BadOperand(b));
            }
            let reg = Gpr::from_index(reg_idx as usize);
            let width = MemWidth::from_bit(b >> 4);
            let addr = c.mem()?;
            match opc {
                op::LOAD_ZX => Inst::LoadZx { dst: reg, addr, width },
                op::LOAD_SX => Inst::LoadSx { dst: reg, addr, width },
                _ => Inst::StoreN { addr, src: reg, width },
            }
        }
        _ if (op::ALU_RR_BASE..op::ALU_RR_BASE + 5).contains(&opc) => {
            let o = AluOp::from_bits(opc - op::ALU_RR_BASE).ok_or(DecodeError::BadOpcode(opc))?;
            let (dst, src) = c.gpr_pair()?;
            Inst::AluRR { op: o, dst, src }
        }
        _ if (op::ALU_RI_BASE..op::ALU_RI_BASE + 5).contains(&opc) => {
            let o = AluOp::from_bits(opc - op::ALU_RI_BASE).ok_or(DecodeError::BadOpcode(opc))?;
            let b = c.u8()?;
            let dst = reg_low(b)?;
            let imm = c.imm(b)?;
            Inst::AluRI { op: o, dst, imm }
        }
        _ if (op::ALU_RM_BASE..op::ALU_RM_BASE + 5).contains(&opc) => {
            let o = AluOp::from_bits(opc - op::ALU_RM_BASE).ok_or(DecodeError::BadOpcode(opc))?;
            let dst = c.gpr()?;
            let addr = c.mem()?;
            Inst::AluRM { op: o, dst, addr }
        }
        _ if (op::ALU_MR_BASE..op::ALU_MR_BASE + 5).contains(&opc) => {
            let o = AluOp::from_bits(opc - op::ALU_MR_BASE).ok_or(DecodeError::BadOpcode(opc))?;
            let src = c.gpr()?;
            let addr = c.mem()?;
            Inst::AluMR { op: o, addr, src }
        }
        op::CMP_RR => {
            let (a, b) = c.gpr_pair()?;
            Inst::CmpRR { a, b }
        }
        op::CMP_RI => {
            let b = c.u8()?;
            let a = reg_low(b)?;
            let imm = c.imm(b)?;
            Inst::CmpRI { a, imm }
        }
        op::TEST_RR => {
            let (a, b) = c.gpr_pair()?;
            Inst::TestRR { a, b }
        }
        _ if (op::SHIFT_BASE..op::SHIFT_BASE + 3).contains(&opc) => {
            let o = ShiftOp::from_bits(opc - op::SHIFT_BASE).ok_or(DecodeError::BadOpcode(opc))?;
            let b = c.u8()?;
            Inst::Shift { op: o, dst: Gpr::from_index((b & 7) as usize), amount: b >> 3 }
        }
        _ if (op::SHIFT_CL_BASE..op::SHIFT_CL_BASE + 3).contains(&opc) => {
            let o =
                ShiftOp::from_bits(opc - op::SHIFT_CL_BASE).ok_or(DecodeError::BadOpcode(opc))?;
            let dst = c.gpr()?;
            Inst::ShiftCl { op: o, dst }
        }
        op::IMUL => {
            let (dst, src) = c.gpr_pair()?;
            Inst::Imul { dst, src }
        }
        op::IDIV => {
            let (dst, src) = c.gpr_pair()?;
            Inst::Idiv { dst, src }
        }
        op::NEG => Inst::Neg { dst: c.gpr()? },
        op::NOT => Inst::Not { dst: c.gpr()? },
        op::PUSH => Inst::Push { src: c.gpr()? },
        op::POP => Inst::Pop { dst: c.gpr()? },
        op::JCC => {
            let b = c.u8()?;
            let cond = Cond::from_bits(b).ok_or(DecodeError::BadOperand(b))?;
            let target = c.u32()?;
            Inst::Jcc { cond, target }
        }
        op::JMP => Inst::Jmp { target: c.u32()? },
        op::JMP_IND => Inst::JmpInd { reg: c.gpr()? },
        op::JMP_MEM => Inst::JmpMem { addr: c.mem()? },
        op::CALL => Inst::Call { target: c.u32()? },
        op::CALL_IND => Inst::CallInd { reg: c.gpr()? },
        op::RET => Inst::Ret,
        op::FMOV_RR => {
            let (dst, src) = c.fpr_pair()?;
            Inst::FMovRR { dst, src }
        }
        op::FLOAD => {
            let b = c.u8()?;
            if b >= FpReg::COUNT {
                return Err(DecodeError::BadOperand(b));
            }
            let addr = c.mem()?;
            Inst::FLoad { dst: FpReg(b), addr }
        }
        op::FSTORE => {
            let b = c.u8()?;
            if b >= FpReg::COUNT {
                return Err(DecodeError::BadOperand(b));
            }
            let addr = c.mem()?;
            Inst::FStore { addr, src: FpReg(b) }
        }
        _ if (op::FARITH_BASE..op::FARITH_BASE + 4).contains(&opc) => {
            let o = FpOp::from_bits(opc - op::FARITH_BASE).ok_or(DecodeError::BadOpcode(opc))?;
            let (dst, src) = c.fpr_pair()?;
            Inst::FArith { op: o, dst, src }
        }
        op::CVT_IF => {
            let b = c.u8()?;
            let hi = b >> 4;
            let lo = b & 0x0F;
            if hi >= FpReg::COUNT || lo >= 8 {
                return Err(DecodeError::BadOperand(b));
            }
            Inst::CvtIF { dst: FpReg(hi), src: Gpr::from_index(lo as usize) }
        }
        op::CVT_FI => {
            let b = c.u8()?;
            let hi = b >> 4;
            let lo = b & 0x0F;
            if hi >= 8 || lo >= FpReg::COUNT {
                return Err(DecodeError::BadOperand(b));
            }
            Inst::CvtFI { dst: Gpr::from_index(hi as usize), src: FpReg(lo) }
        }
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((inst, c.pos))
}

/// Statically disassembles up to `max` instructions starting at `addr`,
/// stopping at the first undecodable byte or a `Halt`. Used by the
/// controller's debugging commands; decoding never perturbs memory.
pub fn disassemble(mem: &crate::GuestMem, addr: u32, max: usize) -> Vec<(u32, Inst)> {
    let mut out = Vec::new();
    let mut pc = addr;
    for _ in 0..max {
        let window = mem.window(pc, crate::exec::MAX_INST_LEN);
        let Ok((inst, len)) = decode(&window) else { break };
        out.push((pc, inst));
        pc = pc.wrapping_add(len as u32);
        if inst == Inst::Halt {
            break;
        }
    }
    out
}

fn reg_low(b: u8) -> Result<Gpr, DecodeError> {
    let idx = b & 0x07;
    // Bits 3..7 must be clear (bit 7 is the immediate size flag).
    if b & 0x78 != 0 {
        return Err(DecodeError::BadOperand(b));
    }
    Ok(Gpr::from_index(idx as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_to_vec;

    fn roundtrip(i: Inst) {
        let bytes = encode_to_vec(&i);
        let (d, len) = decode(&bytes).unwrap();
        assert_eq!(d, i, "roundtrip mismatch for {i}");
        assert_eq!(len, bytes.len());
    }

    #[test]
    fn roundtrip_representative_instructions() {
        use crate::inst::*;
        let mem = MemRef::base_index(Gpr::Ebx, Gpr::Esi, Scale::S4, -123456);
        let small_mem = MemRef::base(Gpr::Esp, 8);
        for i in [
            Inst::Nop,
            Inst::Halt,
            Inst::Syscall,
            Inst::MovRR { dst: Gpr::Eax, src: Gpr::Edi },
            Inst::MovRI { dst: Gpr::Ebp, imm: -1 },
            Inst::MovRI { dst: Gpr::Ebp, imm: i32::MAX },
            Inst::Load { dst: Gpr::Ecx, addr: mem },
            Inst::Store { addr: small_mem, src: Gpr::Edx },
            Inst::StoreI { addr: mem, imm: 300 },
            Inst::Lea { dst: Gpr::Esi, addr: mem },
            Inst::LoadZx { dst: Gpr::Eax, addr: small_mem, width: MemWidth::B1 },
            Inst::LoadZx { dst: Gpr::Edi, addr: mem, width: MemWidth::B2 },
            Inst::LoadSx { dst: Gpr::Ecx, addr: small_mem, width: MemWidth::B1 },
            Inst::LoadSx { dst: Gpr::Ebx, addr: mem, width: MemWidth::B2 },
            Inst::StoreN { addr: small_mem, src: Gpr::Edx, width: MemWidth::B1 },
            Inst::StoreN { addr: mem, src: Gpr::Esi, width: MemWidth::B2 },
            Inst::AluRR { op: AluOp::Xor, dst: Gpr::Eax, src: Gpr::Eax },
            Inst::AluRI { op: AluOp::Add, dst: Gpr::Esp, imm: -16 },
            Inst::AluRM { op: AluOp::Sub, dst: Gpr::Eax, addr: small_mem },
            Inst::AluMR { op: AluOp::Or, addr: mem, src: Gpr::Ebx },
            Inst::CmpRR { a: Gpr::Eax, b: Gpr::Ebx },
            Inst::CmpRI { a: Gpr::Ecx, imm: 100000 },
            Inst::TestRR { a: Gpr::Edx, b: Gpr::Edx },
            Inst::Shift { op: ShiftOp::Sar, dst: Gpr::Eax, amount: 31 },
            Inst::ShiftCl { op: ShiftOp::Shl, dst: Gpr::Ebx },
            Inst::Imul { dst: Gpr::Eax, src: Gpr::Ecx },
            Inst::Idiv { dst: Gpr::Eax, src: Gpr::Ecx },
            Inst::Neg { dst: Gpr::Edi },
            Inst::Not { dst: Gpr::Esi },
            Inst::Push { src: Gpr::Ebp },
            Inst::Pop { dst: Gpr::Ebp },
            Inst::Jcc { cond: Cond::Le, target: 0xDEAD_BEEF },
            Inst::Jmp { target: 0x1000 },
            Inst::JmpInd { reg: Gpr::Eax },
            Inst::JmpMem { addr: mem },
            Inst::Call { target: 0x2000 },
            Inst::CallInd { reg: Gpr::Edx },
            Inst::Ret,
            Inst::FMovRR { dst: FpReg(0), src: FpReg(7) },
            Inst::FLoad { dst: FpReg(3), addr: small_mem },
            Inst::FStore { addr: mem, src: FpReg(5) },
            Inst::FArith { op: FpOp::Div, dst: FpReg(1), src: FpReg(2) },
            Inst::CvtIF { dst: FpReg(4), src: Gpr::Eax },
            Inst::CvtFI { dst: Gpr::Ebx, src: FpReg(6) },
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(&[0xFF]), Err(DecodeError::BadOpcode(0xFF)));
        assert_eq!(decode(&[0x03]), Err(DecodeError::BadOpcode(0x03)));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        // mov eax, imm32 missing bytes
        assert_eq!(decode(&[0x11, 0x80, 0x01]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_operand_rejected() {
        // mov with register index 9 in high nibble
        assert_eq!(decode(&[0x10, 0x9F]), Err(DecodeError::BadOperand(0x9F)));
        // jcc with condition 15
        assert!(matches!(decode(&[0x60, 15, 0, 0, 0, 0]), Err(DecodeError::BadOperand(15))));
    }

    #[test]
    fn disassemble_listing() {
        use crate::asm::Asm;
        let mut a = Asm::new(0x100);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 1 });
        a.push(Inst::Nop);
        a.push(Inst::Halt);
        a.push(Inst::Nop); // beyond halt: not listed
        let p = a.assemble();
        let mut mem = crate::GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        let listing = disassemble(&mem, p.base, 10);
        assert_eq!(listing.len(), 3, "stops at halt");
        assert_eq!(listing[0], (0x100, Inst::MovRI { dst: Gpr::Eax, imm: 1 }));
        assert_eq!(listing[2].1, Inst::Halt);
        // Garbage bytes stop the listing without panicking.
        let mut junk = crate::GuestMem::new();
        junk.write_u8(0x200, 0xFF);
        assert!(disassemble(&junk, 0x200, 4).is_empty());
    }

    #[test]
    fn error_display() {
        assert_eq!(DecodeError::Truncated.to_string(), "instruction bytes truncated");
        assert!(DecodeError::BadOpcode(0xAB).to_string().contains("0xab"));
    }
}
