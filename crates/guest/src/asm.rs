//! A small two-pass assembler for guest programs.
//!
//! Used by the workload generator and by tests to build guest code with
//! symbolic branch targets. Direct branch targets occupy a fixed four
//! bytes in the encoding, so label resolution never changes layout: the
//! assembler records fixup offsets on the first pass and patches them
//! once all labels are bound.

use crate::encode::encode;
use crate::inst::{Cond, Inst};

/// A symbolic code location, created by [`Asm::fresh_label`] and bound
/// with [`Asm::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An assembled guest program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Load address of the first byte.
    pub base: u32,
    /// Encoded instruction bytes.
    pub bytes: Vec<u8>,
    /// Resolved label addresses, indexed by label id.
    labels: Vec<u32>,
    /// Byte offset of each instruction, in program order.
    pub inst_offsets: Vec<u32>,
}

impl Program {
    /// Address a label resolved to.
    ///
    /// # Panics
    ///
    /// Panics if the label was never bound.
    pub fn label_addr(&self, l: Label) -> u32 {
        let a = self.labels[l.0];
        assert_ne!(a, u32::MAX, "label {:?} was never bound", l);
        a
    }

    /// Number of static instructions in the program.
    pub fn static_len(&self) -> usize {
        self.inst_offsets.len()
    }

    /// Address one past the last byte.
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }
}

/// Builder for guest programs; see the [module docs](self).
#[derive(Debug)]
pub struct Asm {
    base: u32,
    bytes: Vec<u8>,
    labels: Vec<u32>,
    fixups: Vec<(usize, Label)>,
    inst_offsets: Vec<u32>,
}

impl Asm {
    /// Starts a program that will be loaded at `base`.
    pub fn new(base: u32) -> Asm {
        Asm {
            base,
            bytes: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            inst_offsets: Vec::new(),
        }
    }

    /// Current emission address.
    pub fn here(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// Number of instructions emitted so far.
    pub fn inst_count(&self) -> usize {
        self.inst_offsets.len()
    }

    /// Creates an unbound label.
    pub fn fresh_label(&mut self) -> Label {
        self.labels.push(u32::MAX);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert_eq!(self.labels[label.0], u32::MAX, "label bound twice");
        self.labels[label.0] = self.here();
    }

    /// Appends an instruction with fully resolved operands.
    pub fn push(&mut self, inst: Inst) {
        self.inst_offsets.push(self.bytes.len() as u32);
        encode(&inst, &mut self.bytes);
    }

    fn push_with_target_fixup(&mut self, inst: Inst, label: Label) {
        self.inst_offsets.push(self.bytes.len() as u32);
        let start = self.bytes.len();
        encode(&inst, &mut self.bytes);
        // Direct targets are always the trailing four bytes.
        self.fixups.push((self.bytes.len() - 4, label));
        debug_assert!(self.bytes.len() - start >= 5);
    }

    /// Appends `jmp label`.
    pub fn push_jmp(&mut self, label: Label) {
        self.push_with_target_fixup(Inst::Jmp { target: 0 }, label);
    }

    /// Appends `jcc label`.
    pub fn push_jcc(&mut self, cond: Cond, label: Label) {
        self.push_with_target_fixup(Inst::Jcc { cond, target: 0 }, label);
    }

    /// Appends `call label`.
    pub fn push_call(&mut self, label: Label) {
        self.push_with_target_fixup(Inst::Call { target: 0 }, label);
    }

    /// Resolves all fixups and returns the finished program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn assemble(mut self) -> Program {
        for (offset, label) in &self.fixups {
            let addr = self.labels[label.0];
            assert_ne!(addr, u32::MAX, "unbound label {label:?}");
            self.bytes[*offset..*offset + 4].copy_from_slice(&addr.to_le_bytes());
        }
        Program {
            base: self.base,
            bytes: self.bytes,
            labels: self.labels,
            inst_offsets: self.inst_offsets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::inst::Gpr;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new(0x100);
        let fwd = a.fresh_label();
        let back = a.fresh_label();
        a.bind(back);
        a.push(Inst::Nop);
        a.push_jmp(fwd);
        a.push_jcc(Cond::E, back);
        a.bind(fwd);
        a.push(Inst::Halt);
        let p = a.assemble();
        assert_eq!(p.label_addr(back), 0x100);
        // Decode the jmp at offset 1 and check its target.
        let (inst, _) = decode(&p.bytes[1..]).unwrap();
        assert_eq!(inst, Inst::Jmp { target: p.label_addr(fwd) });
    }

    #[test]
    fn inst_offsets_track_layout() {
        let mut a = Asm::new(0);
        a.push(Inst::Nop); // 1 byte
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 1 }); // 3 bytes
        a.push(Inst::Halt);
        let p = a.assemble();
        assert_eq!(p.inst_offsets, vec![0, 1, 4]);
        assert_eq!(p.static_len(), 3);
        assert_eq!(p.end(), 5);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new(0);
        let l = a.fresh_label();
        a.push_jmp(l);
        let _ = a.assemble();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new(0);
        let l = a.fresh_label();
        a.bind(l);
        a.bind(l);
    }
}
