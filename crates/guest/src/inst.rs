//! Guest instruction definitions.
//!
//! The g86 instruction set is a compact x86-like CISC ISA: eight
//! general-purpose registers, condition flags written by most arithmetic,
//! base+index*scale+displacement memory operands, read-modify-write memory
//! forms, and both direct and indirect control flow.

use crate::GuestClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A general-purpose guest register (32-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Gpr {
    /// Accumulator.
    Eax = 0,
    /// Counter (implicit operand of [`Inst::ShiftCl`]).
    Ecx = 1,
    /// Data.
    Edx = 2,
    /// Base.
    Ebx = 3,
    /// Stack pointer (implicit operand of push/pop/call/ret).
    Esp = 4,
    /// Frame pointer.
    Ebp = 5,
    /// Source index.
    Esi = 6,
    /// Destination index.
    Edi = 7,
}

impl Gpr {
    /// All eight registers in encoding order.
    pub const ALL: [Gpr; 8] =
        [Gpr::Eax, Gpr::Ecx, Gpr::Edx, Gpr::Ebx, Gpr::Esp, Gpr::Ebp, Gpr::Esi, Gpr::Edi];

    /// Encoding index in `0..8`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Gpr::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[inline]
    pub fn from_index(i: usize) -> Gpr {
        Gpr::ALL[i]
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Gpr::Eax => "eax",
            Gpr::Ecx => "ecx",
            Gpr::Edx => "edx",
            Gpr::Ebx => "ebx",
            Gpr::Esp => "esp",
            Gpr::Ebp => "ebp",
            Gpr::Esi => "esi",
            Gpr::Edi => "edi",
        };
        f.write_str(s)
    }
}

/// A floating-point guest register (holds an `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FpReg(pub u8);

impl FpReg {
    /// Number of architectural FP registers.
    pub const COUNT: u8 = 8;

    /// Creates an FP register, wrapping the index into range.
    #[inline]
    pub fn new(i: u8) -> FpReg {
        FpReg(i % Self::COUNT)
    }

    /// Encoding index in `0..8`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Scale factor of the index register in a [`MemRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Scale {
    /// ×1
    S1 = 0,
    /// ×2
    S2 = 1,
    /// ×4
    S4 = 2,
    /// ×8
    S8 = 3,
}

impl Scale {
    /// The multiplication factor (1, 2, 4 or 8).
    #[inline]
    pub fn factor(self) -> u32 {
        1 << (self as u32)
    }

    /// Decodes the two-bit encoding.
    #[inline]
    pub fn from_bits(bits: u8) -> Scale {
        match bits & 3 {
            0 => Scale::S1,
            1 => Scale::S2,
            2 => Scale::S4,
            _ => Scale::S8,
        }
    }
}

/// An x86-style memory operand: `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Optional base register.
    pub base: Option<Gpr>,
    /// Optional scaled index register.
    pub index: Option<Gpr>,
    /// Scale applied to the index register.
    pub scale: Scale,
    /// Signed displacement.
    pub disp: i32,
}

impl MemRef {
    /// Absolute address operand: `[disp]`.
    pub fn abs(disp: u32) -> MemRef {
        MemRef { base: None, index: None, scale: Scale::S1, disp: disp as i32 }
    }

    /// Base-register operand: `[base + disp]`.
    pub fn base(base: Gpr, disp: i32) -> MemRef {
        MemRef { base: Some(base), index: None, scale: Scale::S1, disp }
    }

    /// Fully general operand: `[base + index*scale + disp]`.
    pub fn base_index(base: Gpr, index: Gpr, scale: Scale, disp: i32) -> MemRef {
        MemRef { base: Some(base), index: Some(index), scale, disp }
    }

    /// Registers read when computing the effective address.
    pub fn regs(&self) -> impl Iterator<Item = Gpr> + '_ {
        self.base.into_iter().chain(self.index)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{i}*{}", self.scale.factor())?;
            first = false;
        }
        if self.disp != 0 || first {
            if !first && self.disp >= 0 {
                write!(f, "+")?;
            }
            write!(f, "{:#x}", self.disp)?;
        }
        write!(f, "]")
    }
}

/// Binary integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AluOp {
    /// Addition; writes CF/OF/ZF/SF/PF.
    Add = 0,
    /// Subtraction; writes CF/OF/ZF/SF/PF.
    Sub = 1,
    /// Bitwise AND; clears CF/OF, writes ZF/SF/PF.
    And = 2,
    /// Bitwise OR; clears CF/OF, writes ZF/SF/PF.
    Or = 3,
    /// Bitwise XOR; clears CF/OF, writes ZF/SF/PF.
    Xor = 4,
}

impl AluOp {
    /// All operations in encoding order.
    pub const ALL: [AluOp; 5] = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor];

    /// Decodes the three-bit encoding.
    pub fn from_bits(bits: u8) -> Option<AluOp> {
        Self::ALL.get(bits as usize).copied()
    }
}

/// Shift operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum ShiftOp {
    /// Logical left shift.
    Shl = 0,
    /// Logical right shift.
    Shr = 1,
    /// Arithmetic right shift.
    Sar = 2,
}

impl ShiftOp {
    /// All operations in encoding order.
    pub const ALL: [ShiftOp; 3] = [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar];

    /// Decodes the two-bit encoding.
    pub fn from_bits(bits: u8) -> Option<ShiftOp> {
        Self::ALL.get(bits as usize).copied()
    }
}

/// Floating-point binary operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum FpOp {
    /// Addition (simple FP in the host pipeline).
    Add = 0,
    /// Subtraction (simple FP).
    Sub = 1,
    /// Multiplication (complex FP).
    Mul = 2,
    /// Division (complex FP).
    Div = 3,
}

impl FpOp {
    /// All operations in encoding order.
    pub const ALL: [FpOp; 4] = [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div];

    /// Decodes the two-bit encoding.
    pub fn from_bits(bits: u8) -> Option<FpOp> {
        Self::ALL.get(bits as usize).copied()
    }
}

/// Width of a sub-word memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MemWidth {
    /// One byte.
    B1 = 0,
    /// Two bytes (halfword).
    B2 = 1,
}

impl MemWidth {
    /// Width in bytes.
    pub fn bytes(self) -> u8 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
        }
    }

    /// Decodes the one-bit encoding.
    pub fn from_bit(bit: u8) -> MemWidth {
        if bit & 1 == 0 {
            MemWidth::B1
        } else {
            MemWidth::B2
        }
    }
}

/// Branch condition, evaluated against [`crate::Flags`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Cond {
    /// Equal (ZF).
    E = 0,
    /// Not equal (!ZF).
    Ne = 1,
    /// Signed less (SF != OF).
    L = 2,
    /// Signed less-or-equal (ZF or SF != OF).
    Le = 3,
    /// Signed greater (!ZF and SF == OF).
    G = 4,
    /// Signed greater-or-equal (SF == OF).
    Ge = 5,
    /// Unsigned below (CF).
    B = 6,
    /// Unsigned below-or-equal (CF or ZF).
    Be = 7,
    /// Unsigned above (!CF and !ZF).
    A = 8,
    /// Unsigned above-or-equal (!CF).
    Ae = 9,
    /// Sign set.
    S = 10,
    /// Sign clear.
    Ns = 11,
}

impl Cond {
    /// All conditions in encoding order.
    pub const ALL: [Cond; 12] = [
        Cond::E,
        Cond::Ne,
        Cond::L,
        Cond::Le,
        Cond::G,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
        Cond::S,
        Cond::Ns,
    ];

    /// Decodes the four-bit encoding.
    pub fn from_bits(bits: u8) -> Option<Cond> {
        Self::ALL.get(bits as usize).copied()
    }

    /// The logically opposite condition (`E` ↔ `Ne`, `L` ↔ `Ge`, …),
    /// used when a superblock inlines the taken path of a branch.
    pub fn negated(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::L => Cond::Ge,
            Cond::Ge => Cond::L,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
        }
    }
}

/// A decoded guest instruction.
///
/// Targets of direct control flow are absolute guest addresses; indirect
/// control flow reads its target from a register or memory at run time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Stops the emulated program (models `exit`).
    Halt,
    /// System call, modeled as a no-op with a fixed cost (the paper skips
    /// non-user code, Sec. II-A).
    Syscall,
    /// `dst <- src`.
    MovRR {
        /// Destination register.
        dst: Gpr,
        /// Source register.
        src: Gpr,
    },
    /// `dst <- imm`.
    MovRI {
        /// Destination register.
        dst: Gpr,
        /// Immediate value.
        imm: i32,
    },
    /// `dst <- [addr]` (32-bit load).
    Load {
        /// Destination register.
        dst: Gpr,
        /// Memory operand.
        addr: MemRef,
    },
    /// `[addr] <- src` (32-bit store).
    Store {
        /// Memory operand.
        addr: MemRef,
        /// Source register.
        src: Gpr,
    },
    /// `[addr] <- imm` (32-bit store of an immediate).
    StoreI {
        /// Memory operand.
        addr: MemRef,
        /// Immediate value.
        imm: i32,
    },
    /// Zero-extending sub-word load: `dst <- zx([addr])` (like x86
    /// `movzx`).
    LoadZx {
        /// Destination register.
        dst: Gpr,
        /// Memory operand.
        addr: MemRef,
        /// Access width.
        width: MemWidth,
    },
    /// Sign-extending sub-word load: `dst <- sx([addr])` (like x86
    /// `movsx`).
    LoadSx {
        /// Destination register.
        dst: Gpr,
        /// Memory operand.
        addr: MemRef,
        /// Access width.
        width: MemWidth,
    },
    /// Sub-word store: `[addr] <- low_bytes(src)`.
    StoreN {
        /// Memory operand.
        addr: MemRef,
        /// Source register (low byte/halfword stored).
        src: Gpr,
        /// Access width.
        width: MemWidth,
    },
    /// `dst <- effective_address(addr)`; does not touch memory or flags.
    Lea {
        /// Destination register.
        dst: Gpr,
        /// Address expression.
        addr: MemRef,
    },
    /// `dst <- dst op src`; writes flags.
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Gpr,
        /// Right operand.
        src: Gpr,
    },
    /// `dst <- dst op imm`; writes flags.
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Gpr,
        /// Immediate right operand.
        imm: i32,
    },
    /// CISC load-op: `dst <- dst op [addr]`; writes flags.
    AluRM {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Gpr,
        /// Memory right operand.
        addr: MemRef,
    },
    /// CISC read-modify-write: `[addr] <- [addr] op src`; writes flags.
    AluMR {
        /// Operation.
        op: AluOp,
        /// Memory destination.
        addr: MemRef,
        /// Register right operand.
        src: Gpr,
    },
    /// Compare: computes `a - b` flags only.
    CmpRR {
        /// Left operand.
        a: Gpr,
        /// Right operand.
        b: Gpr,
    },
    /// Compare with immediate.
    CmpRI {
        /// Left operand.
        a: Gpr,
        /// Immediate right operand.
        imm: i32,
    },
    /// Test: computes `a & b` flags only.
    TestRR {
        /// Left operand.
        a: Gpr,
        /// Right operand.
        b: Gpr,
    },
    /// Shift by a constant amount; writes flags.
    Shift {
        /// Operation.
        op: ShiftOp,
        /// Destination.
        dst: Gpr,
        /// Shift amount, masked to 0..32.
        amount: u8,
    },
    /// Shift by `ecx & 31`; writes flags.
    ShiftCl {
        /// Operation.
        op: ShiftOp,
        /// Destination.
        dst: Gpr,
    },
    /// `dst <- dst * src` (low 32 bits); writes flags (complex integer).
    Imul {
        /// Destination (and left operand).
        dst: Gpr,
        /// Right operand.
        src: Gpr,
    },
    /// `dst <- dst / src` (signed, total: division by zero yields 0,
    /// `i32::MIN / -1` yields `i32::MIN`); writes flags (complex integer).
    Idiv {
        /// Destination (and dividend).
        dst: Gpr,
        /// Divisor.
        src: Gpr,
    },
    /// Two's-complement negate; writes flags.
    Neg {
        /// Destination.
        dst: Gpr,
    },
    /// Bitwise NOT; flags unaffected (as on x86).
    Not {
        /// Destination.
        dst: Gpr,
    },
    /// `esp -= 4; [esp] <- src`.
    Push {
        /// Source register.
        src: Gpr,
    },
    /// `dst <- [esp]; esp += 4`.
    Pop {
        /// Destination register.
        dst: Gpr,
    },
    /// Conditional direct branch.
    Jcc {
        /// Condition.
        cond: Cond,
        /// Absolute target address.
        target: u32,
    },
    /// Unconditional direct branch.
    Jmp {
        /// Absolute target address.
        target: u32,
    },
    /// Register-indirect jump (e.g. a computed goto).
    JmpInd {
        /// Register holding the target address.
        reg: Gpr,
    },
    /// Memory-indirect jump (e.g. a switch jump table).
    JmpMem {
        /// Memory operand holding the target address.
        addr: MemRef,
    },
    /// Direct call: pushes the return address, jumps to `target`.
    Call {
        /// Absolute target address.
        target: u32,
    },
    /// Register-indirect call (e.g. a virtual call).
    CallInd {
        /// Register holding the target address.
        reg: Gpr,
    },
    /// Return: pops the return address and jumps to it.
    Ret,
    /// `dst <- src` between FP registers.
    FMovRR {
        /// Destination FP register.
        dst: FpReg,
        /// Source FP register.
        src: FpReg,
    },
    /// `dst <- [addr]` (64-bit FP load).
    FLoad {
        /// Destination FP register.
        dst: FpReg,
        /// Memory operand.
        addr: MemRef,
    },
    /// `[addr] <- src` (64-bit FP store).
    FStore {
        /// Memory operand.
        addr: MemRef,
        /// Source FP register.
        src: FpReg,
    },
    /// FP arithmetic `dst <- dst op src`; does not write integer flags.
    FArith {
        /// Operation.
        op: FpOp,
        /// Destination (and left operand).
        dst: FpReg,
        /// Right operand.
        src: FpReg,
    },
    /// Convert integer register to FP: `dst <- f64(src)`.
    CvtIF {
        /// Destination FP register.
        dst: FpReg,
        /// Source integer register.
        src: Gpr,
    },
    /// Convert FP register to integer (truncating, saturating): `dst <- i32(src)`.
    CvtFI {
        /// Destination integer register.
        dst: Gpr,
        /// Source FP register.
        src: FpReg,
    },
}

impl Inst {
    /// Broad classification used for statistics and cost models.
    pub fn class(&self) -> GuestClass {
        use Inst::*;
        match self {
            Nop | Syscall | Halt => GuestClass::Other,
            MovRR { .. }
            | MovRI { .. }
            | Lea { .. }
            | AluRR { .. }
            | AluRI { .. }
            | CmpRR { .. }
            | CmpRI { .. }
            | TestRR { .. }
            | Shift { .. }
            | ShiftCl { .. }
            | Neg { .. }
            | Not { .. } => GuestClass::Int,
            Imul { .. } | Idiv { .. } => GuestClass::IntComplex,
            Load { .. } | LoadZx { .. } | LoadSx { .. } | AluRM { .. } | Pop { .. } => {
                GuestClass::Load
            }
            Store { .. } | StoreI { .. } | StoreN { .. } | AluMR { .. } | Push { .. } => {
                GuestClass::Store
            }
            Jcc { .. } | Jmp { .. } => GuestClass::Branch,
            Call { .. } => GuestClass::Call,
            Ret => GuestClass::Ret,
            JmpInd { .. } | JmpMem { .. } | CallInd { .. } => GuestClass::IndirectBranch,
            FMovRR { .. } | CvtIF { .. } | CvtFI { .. } => GuestClass::Fp,
            FArith { op, .. } => match op {
                FpOp::Add | FpOp::Sub => GuestClass::Fp,
                FpOp::Mul | FpOp::Div => GuestClass::FpComplex,
            },
            FLoad { .. } => GuestClass::Load,
            FStore { .. } => GuestClass::Store,
        }
    }

    /// Whether this instruction ends a basic block (any control transfer
    /// or `Halt`).
    pub fn is_block_end(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Jcc { .. }
                | Jmp { .. }
                | JmpInd { .. }
                | JmpMem { .. }
                | Call { .. }
                | CallInd { .. }
                | Ret
                | Halt
        )
    }

    /// Whether the instruction writes the condition flags.
    pub fn writes_flags(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            AluRR { .. }
                | AluRI { .. }
                | AluRM { .. }
                | AluMR { .. }
                | CmpRR { .. }
                | CmpRI { .. }
                | TestRR { .. }
                | Shift { .. }
                | ShiftCl { .. }
                | Imul { .. }
                | Idiv { .. }
                | Neg { .. }
        )
    }

    /// Whether the instruction reads the condition flags.
    pub fn reads_flags(&self) -> bool {
        matches!(self, Inst::Jcc { .. })
    }

    /// Whether the instruction's control-flow target is computed at run
    /// time (indirect jump/call or return).
    pub fn is_indirect(&self) -> bool {
        use Inst::*;
        matches!(self, JmpInd { .. } | JmpMem { .. } | CallInd { .. } | Ret)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match self {
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
            Syscall => write!(f, "syscall"),
            MovRR { dst, src } => write!(f, "mov {dst}, {src}"),
            MovRI { dst, imm } => write!(f, "mov {dst}, {imm}"),
            Load { dst, addr } => write!(f, "mov {dst}, {addr}"),
            LoadZx { dst, addr, width } => write!(f, "movzx{} {dst}, {addr}", width.bytes()),
            LoadSx { dst, addr, width } => write!(f, "movsx{} {dst}, {addr}", width.bytes()),
            StoreN { addr, src, width } => write!(f, "mov{} {addr}, {src}", width.bytes()),
            Store { addr, src } => write!(f, "mov {addr}, {src}"),
            StoreI { addr, imm } => write!(f, "mov {addr}, {imm}"),
            Lea { dst, addr } => write!(f, "lea {dst}, {addr}"),
            AluRR { op, dst, src } => write!(f, "{op:?} {dst}, {src}"),
            AluRI { op, dst, imm } => write!(f, "{op:?} {dst}, {imm}"),
            AluRM { op, dst, addr } => write!(f, "{op:?} {dst}, {addr}"),
            AluMR { op, addr, src } => write!(f, "{op:?} {addr}, {src}"),
            CmpRR { a, b } => write!(f, "cmp {a}, {b}"),
            CmpRI { a, imm } => write!(f, "cmp {a}, {imm}"),
            TestRR { a, b } => write!(f, "test {a}, {b}"),
            Shift { op, dst, amount } => write!(f, "{op:?} {dst}, {amount}"),
            ShiftCl { op, dst } => write!(f, "{op:?} {dst}, cl"),
            Imul { dst, src } => write!(f, "imul {dst}, {src}"),
            Idiv { dst, src } => write!(f, "idiv {dst}, {src}"),
            Neg { dst } => write!(f, "neg {dst}"),
            Not { dst } => write!(f, "not {dst}"),
            Push { src } => write!(f, "push {src}"),
            Pop { dst } => write!(f, "pop {dst}"),
            Jcc { cond, target } => write!(f, "j{cond:?} {target:#x}"),
            Jmp { target } => write!(f, "jmp {target:#x}"),
            JmpInd { reg } => write!(f, "jmp {reg}"),
            JmpMem { addr } => write!(f, "jmp {addr}"),
            Call { target } => write!(f, "call {target:#x}"),
            CallInd { reg } => write!(f, "call {reg}"),
            Ret => write!(f, "ret"),
            FMovRR { dst, src } => write!(f, "fmov {dst}, {src}"),
            FLoad { dst, addr } => write!(f, "fld {dst}, {addr}"),
            FStore { addr, src } => write!(f, "fst {addr}, {src}"),
            FArith { op, dst, src } => write!(f, "f{op:?} {dst}, {src}"),
            CvtIF { dst, src } => write!(f, "cvtif {dst}, {src}"),
            CvtFI { dst, src } => write!(f, "cvtfi {dst}, {src}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_index_roundtrip() {
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Gpr::from_index(i), *r);
        }
    }

    #[test]
    fn scale_factor() {
        assert_eq!(Scale::S1.factor(), 1);
        assert_eq!(Scale::S2.factor(), 2);
        assert_eq!(Scale::S4.factor(), 4);
        assert_eq!(Scale::S8.factor(), 8);
        for bits in 0..4u8 {
            assert_eq!(Scale::from_bits(bits) as u8, bits);
        }
    }

    #[test]
    fn classes_are_consistent() {
        assert_eq!(Inst::Nop.class(), GuestClass::Other);
        assert_eq!(Inst::Imul { dst: Gpr::Eax, src: Gpr::Ebx }.class(), GuestClass::IntComplex);
        assert_eq!(Inst::Ret.class(), GuestClass::Ret);
        assert!(Inst::Ret.is_indirect());
        assert!(Inst::Ret.is_block_end());
        assert!(!Inst::Nop.is_block_end());
        let fmul = Inst::FArith { op: FpOp::Mul, dst: FpReg(0), src: FpReg(1) };
        assert_eq!(fmul.class(), GuestClass::FpComplex);
    }

    #[test]
    fn flags_metadata() {
        let add = Inst::AluRR { op: AluOp::Add, dst: Gpr::Eax, src: Gpr::Ebx };
        assert!(add.writes_flags());
        assert!(!add.reads_flags());
        let jcc = Inst::Jcc { cond: Cond::E, target: 0 };
        assert!(jcc.reads_flags());
        assert!(!jcc.writes_flags());
        let not = Inst::Not { dst: Gpr::Eax };
        assert!(!not.writes_flags());
    }

    #[test]
    fn memref_display() {
        let m = MemRef::base_index(Gpr::Eax, Gpr::Ebx, Scale::S4, 16);
        assert_eq!(m.to_string(), "[eax+ebx*4+0x10]");
        assert_eq!(MemRef::abs(0x100).to_string(), "[0x100]");
        let regs: Vec<_> = m.regs().collect();
        assert_eq!(regs, vec![Gpr::Eax, Gpr::Ebx]);
    }
}
