//! Binary encoding of guest instructions.
//!
//! The format is variable length (1–8 bytes), like real x86: a one-byte
//! opcode followed by operand bytes. Memory operands and immediates use
//! short forms when they fit in a byte, so the decoder — and the software
//! layer's interpreter and translator on top of it — must handle genuinely
//! variable-length code.
//!
//! Layout summary:
//!
//! * register pairs pack into one byte (`dst << 4 | src`),
//! * immediates are 1 byte (sign-extended) or 4 bytes little-endian,
//!   selected by a size bit in the preceding operand byte,
//! * memory operands are a flags byte (`has_base`, base, `has_index`,
//!   `disp32`, scale), an optional index byte, and a 1- or 4-byte
//!   displacement,
//! * direct branch targets are absolute 4-byte little-endian addresses.

use crate::inst::{Inst, MemRef};

/// Opcode byte values. Kept in one place so the decoder mirrors it.
pub(crate) mod op {
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const SYSCALL: u8 = 0x02;
    pub const MOV_RR: u8 = 0x10;
    pub const MOV_RI: u8 = 0x11;
    pub const LOAD: u8 = 0x12;
    pub const STORE: u8 = 0x13;
    pub const STORE_I: u8 = 0x14;
    pub const LEA: u8 = 0x15;
    pub const LOAD_ZX: u8 = 0x16;
    pub const LOAD_SX: u8 = 0x17;
    pub const STORE_N: u8 = 0x18;
    pub const ALU_RR_BASE: u8 = 0x20; // +AluOp (5)
    pub const ALU_RI_BASE: u8 = 0x28; // +AluOp (5)
    pub const ALU_RM_BASE: u8 = 0x30; // +AluOp (5)
    pub const ALU_MR_BASE: u8 = 0x38; // +AluOp (5)
    pub const CMP_RR: u8 = 0x40;
    pub const CMP_RI: u8 = 0x41;
    pub const TEST_RR: u8 = 0x42;
    pub const SHIFT_BASE: u8 = 0x43; // +ShiftOp (3)
    pub const SHIFT_CL_BASE: u8 = 0x46; // +ShiftOp (3)
    pub const IMUL: u8 = 0x49;
    pub const IDIV: u8 = 0x4A;
    pub const NEG: u8 = 0x4B;
    pub const NOT: u8 = 0x4C;
    pub const PUSH: u8 = 0x50;
    pub const POP: u8 = 0x51;
    pub const JCC: u8 = 0x60;
    pub const JMP: u8 = 0x61;
    pub const JMP_IND: u8 = 0x62;
    pub const JMP_MEM: u8 = 0x63;
    pub const CALL: u8 = 0x64;
    pub const CALL_IND: u8 = 0x65;
    pub const RET: u8 = 0x66;
    pub const FMOV_RR: u8 = 0x70;
    pub const FLOAD: u8 = 0x71;
    pub const FSTORE: u8 = 0x72;
    pub const FARITH_BASE: u8 = 0x73; // +FpOp (4)
    pub const CVT_IF: u8 = 0x77;
    pub const CVT_FI: u8 = 0x78;
}

#[inline]
fn pack_regs(hi: usize, lo: usize) -> u8 {
    ((hi as u8) << 4) | lo as u8
}

fn push_imm(out: &mut Vec<u8>, size_byte_index: usize, imm: i32) {
    if let Ok(v) = i8::try_from(imm) {
        out.push(v as u8);
    } else {
        out[size_byte_index] |= 0x80;
        out.extend_from_slice(&imm.to_le_bytes());
    }
}

fn push_mem(out: &mut Vec<u8>, m: &MemRef) {
    let disp32 = i8::try_from(m.disp).is_err();
    let mut flags = 0u8;
    if let Some(b) = m.base {
        flags |= 1 | ((b.index() as u8) << 1);
    }
    if m.index.is_some() {
        flags |= 1 << 4;
    }
    if disp32 {
        flags |= 1 << 5;
    }
    flags |= (m.scale as u8) << 6;
    out.push(flags);
    if let Some(i) = m.index {
        out.push(i.index() as u8);
    }
    if disp32 {
        out.extend_from_slice(&m.disp.to_le_bytes());
    } else {
        out.push(m.disp as i8 as u8);
    }
}

/// Encodes one instruction, appending its bytes to `out`, and returns the
/// encoded length.
///
/// The encoding is canonical: immediates and displacements that fit in a
/// signed byte always use the short form, so
/// `decode(encode(i)) == i` and re-encoding a decoded instruction
/// reproduces the original bytes.
pub fn encode(inst: &Inst, out: &mut Vec<u8>) -> usize {
    use Inst::*;
    let start = out.len();
    match *inst {
        Nop => out.push(op::NOP),
        Halt => out.push(op::HALT),
        Syscall => out.push(op::SYSCALL),
        MovRR { dst, src } => {
            out.push(op::MOV_RR);
            out.push(pack_regs(dst.index(), src.index()));
        }
        MovRI { dst, imm } => {
            out.push(op::MOV_RI);
            out.push(dst.index() as u8);
            let idx = out.len() - 1;
            push_imm(out, idx, imm);
        }
        Load { dst, addr } => {
            out.push(op::LOAD);
            out.push(dst.index() as u8);
            push_mem(out, &addr);
        }
        Store { addr, src } => {
            out.push(op::STORE);
            out.push(src.index() as u8);
            push_mem(out, &addr);
        }
        StoreI { addr, imm } => {
            out.push(op::STORE_I);
            out.push(0);
            let idx = out.len() - 1;
            push_mem(out, &addr);
            push_imm(out, idx, imm);
        }
        LoadZx { dst, addr, width } => {
            out.push(op::LOAD_ZX);
            out.push(dst.index() as u8 | (width as u8) << 4);
            push_mem(out, &addr);
        }
        LoadSx { dst, addr, width } => {
            out.push(op::LOAD_SX);
            out.push(dst.index() as u8 | (width as u8) << 4);
            push_mem(out, &addr);
        }
        StoreN { addr, src, width } => {
            out.push(op::STORE_N);
            out.push(src.index() as u8 | (width as u8) << 4);
            push_mem(out, &addr);
        }
        Lea { dst, addr } => {
            out.push(op::LEA);
            out.push(dst.index() as u8);
            push_mem(out, &addr);
        }
        AluRR { op: o, dst, src } => {
            out.push(op::ALU_RR_BASE + o as u8);
            out.push(pack_regs(dst.index(), src.index()));
        }
        AluRI { op: o, dst, imm } => {
            out.push(op::ALU_RI_BASE + o as u8);
            out.push(dst.index() as u8);
            let idx = out.len() - 1;
            push_imm(out, idx, imm);
        }
        AluRM { op: o, dst, addr } => {
            out.push(op::ALU_RM_BASE + o as u8);
            out.push(dst.index() as u8);
            push_mem(out, &addr);
        }
        AluMR { op: o, addr, src } => {
            out.push(op::ALU_MR_BASE + o as u8);
            out.push(src.index() as u8);
            push_mem(out, &addr);
        }
        CmpRR { a, b } => {
            out.push(op::CMP_RR);
            out.push(pack_regs(a.index(), b.index()));
        }
        CmpRI { a, imm } => {
            out.push(op::CMP_RI);
            out.push(a.index() as u8);
            let idx = out.len() - 1;
            push_imm(out, idx, imm);
        }
        TestRR { a, b } => {
            out.push(op::TEST_RR);
            out.push(pack_regs(a.index(), b.index()));
        }
        Shift { op: o, dst, amount } => {
            out.push(op::SHIFT_BASE + o as u8);
            out.push(dst.index() as u8 | ((amount & 31) << 3));
        }
        ShiftCl { op: o, dst } => {
            out.push(op::SHIFT_CL_BASE + o as u8);
            out.push(dst.index() as u8);
        }
        Imul { dst, src } => {
            out.push(op::IMUL);
            out.push(pack_regs(dst.index(), src.index()));
        }
        Idiv { dst, src } => {
            out.push(op::IDIV);
            out.push(pack_regs(dst.index(), src.index()));
        }
        Neg { dst } => {
            out.push(op::NEG);
            out.push(dst.index() as u8);
        }
        Not { dst } => {
            out.push(op::NOT);
            out.push(dst.index() as u8);
        }
        Push { src } => {
            out.push(op::PUSH);
            out.push(src.index() as u8);
        }
        Pop { dst } => {
            out.push(op::POP);
            out.push(dst.index() as u8);
        }
        Jcc { cond, target } => {
            out.push(op::JCC);
            out.push(cond as u8);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Jmp { target } => {
            out.push(op::JMP);
            out.extend_from_slice(&target.to_le_bytes());
        }
        JmpInd { reg } => {
            out.push(op::JMP_IND);
            out.push(reg.index() as u8);
        }
        JmpMem { addr } => {
            out.push(op::JMP_MEM);
            push_mem(out, &addr);
        }
        Call { target } => {
            out.push(op::CALL);
            out.extend_from_slice(&target.to_le_bytes());
        }
        CallInd { reg } => {
            out.push(op::CALL_IND);
            out.push(reg.index() as u8);
        }
        Ret => out.push(op::RET),
        FMovRR { dst, src } => {
            out.push(op::FMOV_RR);
            out.push(pack_regs(dst.index(), src.index()));
        }
        FLoad { dst, addr } => {
            out.push(op::FLOAD);
            out.push(dst.index() as u8);
            push_mem(out, &addr);
        }
        FStore { addr, src } => {
            out.push(op::FSTORE);
            out.push(src.index() as u8);
            push_mem(out, &addr);
        }
        FArith { op: o, dst, src } => {
            out.push(op::FARITH_BASE + o as u8);
            out.push(pack_regs(dst.index(), src.index()));
        }
        CvtIF { dst, src } => {
            out.push(op::CVT_IF);
            out.push(pack_regs(dst.index(), src.index()));
        }
        CvtFI { dst, src } => {
            out.push(op::CVT_FI);
            out.push(pack_regs(dst.index(), src.index()));
        }
    }
    out.len() - start
}

/// Convenience: encodes one instruction into a fresh vector.
pub fn encode_to_vec(inst: &Inst) -> Vec<u8> {
    let mut v = Vec::with_capacity(8);
    encode(inst, &mut v);
    v
}

// Re-exported constants used by the decoder; keep the two modules in sync.
pub(crate) use op as opcodes;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, FpOp, FpReg, Gpr, Scale, ShiftOp};

    #[test]
    fn one_byte_instructions() {
        assert_eq!(encode_to_vec(&Inst::Nop), vec![op::NOP]);
        assert_eq!(encode_to_vec(&Inst::Halt), vec![op::HALT]);
        assert_eq!(encode_to_vec(&Inst::Ret), vec![op::RET]);
    }

    #[test]
    fn short_and_long_immediates() {
        let short = encode_to_vec(&Inst::MovRI { dst: Gpr::Eax, imm: -5 });
        assert_eq!(short.len(), 3);
        let long = encode_to_vec(&Inst::MovRI { dst: Gpr::Eax, imm: 100_000 });
        assert_eq!(long.len(), 6);
        assert_eq!(long[1] & 0x80, 0x80);
    }

    #[test]
    fn mem_operand_lengths() {
        let short = encode_to_vec(&Inst::Load { dst: Gpr::Eax, addr: MemRef::base(Gpr::Ebp, -8) });
        // op + reg + flags + disp8
        assert_eq!(short.len(), 4);
        let long = encode_to_vec(&Inst::Load {
            dst: Gpr::Eax,
            addr: MemRef::base_index(Gpr::Ebp, Gpr::Esi, Scale::S8, 0x1000),
        });
        // op + reg + flags + index + disp32
        assert_eq!(long.len(), 8);
    }

    #[test]
    fn branch_targets_are_absolute_le() {
        let b = encode_to_vec(&Inst::Jmp { target: 0x1234_5678 });
        assert_eq!(b, vec![op::JMP, 0x78, 0x56, 0x34, 0x12]);
        let j = encode_to_vec(&Inst::Jcc { cond: Cond::Ne, target: 0xAABB });
        assert_eq!(j.len(), 6);
        assert_eq!(j[1], Cond::Ne as u8);
    }

    #[test]
    fn farith_opcodes_distinct() {
        let mut seen = std::collections::HashSet::new();
        for o in FpOp::ALL {
            let v = encode_to_vec(&Inst::FArith { op: o, dst: FpReg(1), src: FpReg(2) });
            assert!(seen.insert(v[0]));
        }
    }

    #[test]
    fn shift_packs_amount() {
        let v = encode_to_vec(&Inst::Shift { op: ShiftOp::Shl, dst: Gpr::Edx, amount: 7 });
        assert_eq!(v.len(), 2);
        assert_eq!(v[1] & 7, Gpr::Edx.index() as u8);
        assert_eq!(v[1] >> 3, 7);
    }
}
