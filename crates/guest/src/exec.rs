//! Functional execution of guest instructions.
//!
//! [`step`] is the single source of truth for g86 semantics. The
//! authoritative emulator (DARCO's *x86 Component*) calls it directly;
//! the software layer's interpreter wraps it and charges emulation costs;
//! and the state checker uses it to validate translated code.

use crate::decode::{decode, DecodeError};
use crate::inst::{AluOp, Cond, FpOp, Gpr, Inst, MemRef, MemWidth, ShiftOp};
use crate::mem::GuestMem;
use crate::state::{CpuState, Flags};

/// Longest possible instruction encoding, in bytes (`StoreI` with a
/// fully general memory operand and a 32-bit immediate: opcode + size
/// byte + 6 memory-operand bytes + 4 immediate bytes).
pub const MAX_INST_LEN: usize = 12;

/// What an instruction did to control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Fell through to the next sequential instruction.
    Next,
    /// Transferred control: `target` is the new `eip`.
    Jump {
        /// New instruction pointer.
        target: u32,
        /// For conditional branches, whether the branch was taken
        /// (`true` for unconditional transfers).
        taken: bool,
    },
    /// The program halted.
    Halt,
}

/// One guest memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Guest virtual address.
    pub addr: u32,
    /// Access size in bytes (4 or 8).
    pub size: u8,
    /// `true` for stores.
    pub is_store: bool,
}

/// Result of executing one instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct StepInfo {
    /// The decoded instruction.
    pub inst: Inst,
    /// Encoded length in bytes.
    pub len: usize,
    /// Control-flow outcome.
    pub control: Control,
    /// Data accesses performed (at most three: RMW + stack never combine).
    pub accesses: AccessList,
}

/// Fixed-capacity list of memory accesses (no instruction performs more
/// than two data accesses).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccessList {
    items: [Option<MemAccess>; 2],
    len: u8,
}

impl AccessList {
    /// Appends an access.
    ///
    /// # Panics
    ///
    /// Panics if more than two accesses are recorded (an ISA invariant
    /// violation, not a runtime condition).
    pub fn push(&mut self, a: MemAccess) {
        self.items[self.len as usize] = Some(a);
        self.len += 1;
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no accesses were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the recorded accesses.
    pub fn iter(&self) -> impl Iterator<Item = &MemAccess> {
        self.items.iter().take(self.len as usize).flatten()
    }
}

/// Evaluates a branch condition against the flags.
pub fn cond_holds(cond: Cond, f: Flags) -> bool {
    match cond {
        Cond::E => f.zf,
        Cond::Ne => !f.zf,
        Cond::L => f.sf != f.of,
        Cond::Le => f.zf || f.sf != f.of,
        Cond::G => !f.zf && f.sf == f.of,
        Cond::Ge => f.sf == f.of,
        Cond::B => f.cf,
        Cond::Be => f.cf || f.zf,
        Cond::A => !f.cf && !f.zf,
        Cond::Ae => !f.cf,
        Cond::S => f.sf,
        Cond::Ns => !f.sf,
    }
}

/// Computes the effective address of a memory operand.
pub fn effective_address(m: &MemRef, cpu: &CpuState) -> u32 {
    let mut a = m.disp as u32;
    if let Some(b) = m.base {
        a = a.wrapping_add(cpu.gpr(b));
    }
    if let Some(i) = m.index {
        a = a.wrapping_add(cpu.gpr(i).wrapping_mul(m.scale.factor()));
    }
    a
}

fn alu(op: AluOp, a: u32, b: u32) -> (u32, Flags) {
    match op {
        AluOp::Add => (a.wrapping_add(b), Flags::add(a, b)),
        AluOp::Sub => (a.wrapping_sub(b), Flags::sub(a, b)),
        AluOp::And => (a & b, Flags::logic(a & b)),
        AluOp::Or => (a | b, Flags::logic(a | b)),
        AluOp::Xor => (a ^ b, Flags::logic(a ^ b)),
    }
}

fn shift(op: ShiftOp, v: u32, amount: u32) -> (u32, Flags) {
    let amt = amount & 31;
    if amt == 0 {
        // Flags unchanged on zero shift handled by the caller.
        return (v, Flags::from_result(v));
    }
    let (r, cf) = match op {
        ShiftOp::Shl => (v << amt, (v >> (32 - amt)) & 1 != 0),
        ShiftOp::Shr => (v >> amt, (v >> (amt - 1)) & 1 != 0),
        ShiftOp::Sar => (((v as i32) >> amt) as u32, ((v as i32) >> (amt - 1)) & 1 != 0),
    };
    let mut f = Flags::from_result(r);
    f.cf = cf;
    f.of = false;
    (r, f)
}

/// Signed, total division: divide-by-zero yields 0; `MIN / -1` yields `MIN`.
fn total_div(a: i32, b: i32) -> i32 {
    if b == 0 {
        0
    } else {
        a.wrapping_div(b)
    }
}

/// Executes the instruction at `cpu.eip`, updating state and memory.
///
/// Returns a [`StepInfo`] describing what happened, which callers use to
/// account instruction mixes, branch outcomes and data accesses.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes at `eip` do not decode; the CPU
/// state is left unchanged in that case.
pub fn step(cpu: &mut CpuState, mem: &mut GuestMem) -> Result<StepInfo, DecodeError> {
    debug_assert!(!cpu.halted, "step() after halt");
    let mut window = [0u8; MAX_INST_LEN];
    mem.read_bytes(cpu.eip, &mut window);
    let (inst, len) = decode(&window)?;
    Ok(exec_decoded(cpu, mem, inst, len))
}

/// Executes an already-decoded instruction at `cpu.eip` (`len` is its
/// encoded length). This is [`step`] minus the fetch/decode, for callers
/// that cache decode results; execution itself cannot fail.
pub fn exec_decoded(cpu: &mut CpuState, mem: &mut GuestMem, inst: Inst, len: usize) -> StepInfo {
    let next = cpu.eip.wrapping_add(len as u32);
    let mut accesses = AccessList::default();
    let mut control = Control::Next;

    use Inst::*;
    match inst {
        Nop | Syscall => {}
        Halt => {
            cpu.halted = true;
            control = Control::Halt;
        }
        MovRR { dst, src } => cpu.set_gpr(dst, cpu.gpr(src)),
        MovRI { dst, imm } => cpu.set_gpr(dst, imm as u32),
        Load { dst, addr } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: 4, is_store: false });
            cpu.set_gpr(dst, mem.read_u32(a));
        }
        Store { addr, src } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: 4, is_store: true });
            mem.write_u32(a, cpu.gpr(src));
        }
        StoreI { addr, imm } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: 4, is_store: true });
            mem.write_u32(a, imm as u32);
        }
        LoadZx { dst, addr, width } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: width.bytes(), is_store: false });
            let v = match width {
                MemWidth::B1 => mem.read_u8(a) as u32,
                MemWidth::B2 => mem.read_u16(a) as u32,
            };
            cpu.set_gpr(dst, v);
        }
        LoadSx { dst, addr, width } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: width.bytes(), is_store: false });
            let v = match width {
                MemWidth::B1 => mem.read_u8(a) as i8 as i32 as u32,
                MemWidth::B2 => mem.read_u16(a) as i16 as i32 as u32,
            };
            cpu.set_gpr(dst, v);
        }
        StoreN { addr, src, width } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: width.bytes(), is_store: true });
            match width {
                MemWidth::B1 => mem.write_u8(a, cpu.gpr(src) as u8),
                MemWidth::B2 => mem.write_u16(a, cpu.gpr(src) as u16),
            }
        }
        Lea { dst, addr } => cpu.set_gpr(dst, effective_address(&addr, cpu)),
        AluRR { op, dst, src } => {
            let (r, f) = alu(op, cpu.gpr(dst), cpu.gpr(src));
            cpu.set_gpr(dst, r);
            cpu.flags = f;
        }
        AluRI { op, dst, imm } => {
            let (r, f) = alu(op, cpu.gpr(dst), imm as u32);
            cpu.set_gpr(dst, r);
            cpu.flags = f;
        }
        AluRM { op, dst, addr } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: 4, is_store: false });
            let (r, f) = alu(op, cpu.gpr(dst), mem.read_u32(a));
            cpu.set_gpr(dst, r);
            cpu.flags = f;
        }
        AluMR { op, addr, src } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: 4, is_store: false });
            accesses.push(MemAccess { addr: a, size: 4, is_store: true });
            let (r, f) = alu(op, mem.read_u32(a), cpu.gpr(src));
            mem.write_u32(a, r);
            cpu.flags = f;
        }
        CmpRR { a, b } => cpu.flags = Flags::sub(cpu.gpr(a), cpu.gpr(b)),
        CmpRI { a, imm } => cpu.flags = Flags::sub(cpu.gpr(a), imm as u32),
        TestRR { a, b } => cpu.flags = Flags::logic(cpu.gpr(a) & cpu.gpr(b)),
        Shift { op, dst, amount } => {
            if amount & 31 != 0 {
                let (r, f) = shift(op, cpu.gpr(dst), amount as u32);
                cpu.set_gpr(dst, r);
                cpu.flags = f;
            }
        }
        ShiftCl { op, dst } => {
            // Unlike the immediate form, the CL form always writes flags
            // (logic flags of the unchanged value when the amount is
            // zero), so translated straight-line code needs no
            // conditional skip.
            let amt = cpu.gpr(Gpr::Ecx) & 31;
            if amt != 0 {
                let (r, f) = shift(op, cpu.gpr(dst), amt);
                cpu.set_gpr(dst, r);
                cpu.flags = f;
            } else {
                cpu.flags = Flags::logic(cpu.gpr(dst));
            }
        }
        Imul { dst, src } => {
            let a = cpu.gpr(dst) as i32 as i64;
            let b = cpu.gpr(src) as i32 as i64;
            let wide = a * b;
            let r = wide as i32;
            let overflow = wide != r as i64;
            cpu.set_gpr(dst, r as u32);
            let mut f = Flags::from_result(r as u32);
            f.cf = overflow;
            f.of = overflow;
            cpu.flags = f;
        }
        Idiv { dst, src } => {
            let r = total_div(cpu.gpr(dst) as i32, cpu.gpr(src) as i32);
            cpu.set_gpr(dst, r as u32);
            cpu.flags = Flags::from_result(r as u32);
        }
        Neg { dst } => {
            let v = cpu.gpr(dst);
            let (r, mut f) = alu(AluOp::Sub, 0, v);
            f.cf = v != 0;
            cpu.set_gpr(dst, r);
            cpu.flags = f;
        }
        Not { dst } => cpu.set_gpr(dst, !cpu.gpr(dst)),
        Push { src } => {
            let sp = cpu.gpr(Gpr::Esp).wrapping_sub(4);
            cpu.set_gpr(Gpr::Esp, sp);
            accesses.push(MemAccess { addr: sp, size: 4, is_store: true });
            mem.write_u32(sp, cpu.gpr(src));
        }
        Pop { dst } => {
            let sp = cpu.gpr(Gpr::Esp);
            accesses.push(MemAccess { addr: sp, size: 4, is_store: false });
            let v = mem.read_u32(sp);
            cpu.set_gpr(Gpr::Esp, sp.wrapping_add(4));
            cpu.set_gpr(dst, v);
        }
        Jcc { cond, target } => {
            if cond_holds(cond, cpu.flags) {
                control = Control::Jump { target, taken: true };
            } else {
                control = Control::Jump { target: next, taken: false };
            }
        }
        Jmp { target } => control = Control::Jump { target, taken: true },
        JmpInd { reg } => {
            control = Control::Jump { target: cpu.gpr(reg), taken: true };
        }
        JmpMem { addr } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: 4, is_store: false });
            control = Control::Jump { target: mem.read_u32(a), taken: true };
        }
        Call { target } => {
            let sp = cpu.gpr(Gpr::Esp).wrapping_sub(4);
            cpu.set_gpr(Gpr::Esp, sp);
            accesses.push(MemAccess { addr: sp, size: 4, is_store: true });
            mem.write_u32(sp, next);
            control = Control::Jump { target, taken: true };
        }
        CallInd { reg } => {
            let target = cpu.gpr(reg);
            let sp = cpu.gpr(Gpr::Esp).wrapping_sub(4);
            cpu.set_gpr(Gpr::Esp, sp);
            accesses.push(MemAccess { addr: sp, size: 4, is_store: true });
            mem.write_u32(sp, next);
            control = Control::Jump { target, taken: true };
        }
        Ret => {
            let sp = cpu.gpr(Gpr::Esp);
            accesses.push(MemAccess { addr: sp, size: 4, is_store: false });
            let target = mem.read_u32(sp);
            cpu.set_gpr(Gpr::Esp, sp.wrapping_add(4));
            control = Control::Jump { target, taken: true };
        }
        FMovRR { dst, src } => cpu.set_fpr(dst, cpu.fpr(src)),
        FLoad { dst, addr } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: 8, is_store: false });
            cpu.set_fpr(dst, mem.read_f64(a));
        }
        FStore { addr, src } => {
            let a = effective_address(&addr, cpu);
            accesses.push(MemAccess { addr: a, size: 8, is_store: true });
            mem.write_f64(a, cpu.fpr(src));
        }
        FArith { op, dst, src } => {
            let a = cpu.fpr(dst);
            let b = cpu.fpr(src);
            let r = match op {
                FpOp::Add => a + b,
                FpOp::Sub => a - b,
                FpOp::Mul => a * b,
                FpOp::Div => a / b,
            };
            cpu.set_fpr(dst, r);
        }
        CvtIF { dst, src } => cpu.set_fpr(dst, cpu.gpr(src) as i32 as f64),
        CvtFI { dst, src } => {
            let v = cpu.fpr(src);
            let r = if v.is_nan() { 0 } else { v.clamp(i32::MIN as f64, i32::MAX as f64) as i32 };
            cpu.set_gpr(dst, r as u32);
        }
    }

    cpu.eip = match control {
        Control::Next => next,
        Control::Jump { target, .. } => target,
        Control::Halt => cpu.eip,
    };

    StepInfo { inst, len, control, accesses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::inst::Scale;

    fn run(insts: &[Inst]) -> (CpuState, GuestMem) {
        let mut a = Asm::new(0x1000);
        for i in insts {
            a.push(*i);
        }
        a.push(Inst::Halt);
        let prog = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(prog.base, &prog.bytes);
        let mut cpu = CpuState::at(prog.base);
        cpu.set_gpr(Gpr::Esp, 0x8_0000);
        for _ in 0..10_000 {
            if cpu.halted {
                break;
            }
            step(&mut cpu, &mut mem).unwrap();
        }
        assert!(cpu.halted, "program did not halt");
        (cpu, mem)
    }

    #[test]
    fn arithmetic_and_flags() {
        let (cpu, _) = run(&[
            Inst::MovRI { dst: Gpr::Eax, imm: 7 },
            Inst::MovRI { dst: Gpr::Ebx, imm: 5 },
            Inst::Imul { dst: Gpr::Eax, src: Gpr::Ebx },
            Inst::AluRI { op: AluOp::Sub, dst: Gpr::Eax, imm: 35 },
        ]);
        assert_eq!(cpu.gpr(Gpr::Eax), 0);
        assert!(cpu.flags.zf);
    }

    #[test]
    fn division_is_total() {
        let (cpu, _) = run(&[
            Inst::MovRI { dst: Gpr::Eax, imm: 10 },
            Inst::MovRI { dst: Gpr::Ebx, imm: 0 },
            Inst::Idiv { dst: Gpr::Eax, src: Gpr::Ebx },
        ]);
        assert_eq!(cpu.gpr(Gpr::Eax), 0);
        let (cpu, _) = run(&[
            Inst::MovRI { dst: Gpr::Eax, imm: i32::MIN },
            Inst::MovRI { dst: Gpr::Ebx, imm: -1 },
            Inst::Idiv { dst: Gpr::Eax, src: Gpr::Ebx },
        ]);
        assert_eq!(cpu.gpr(Gpr::Eax) as i32, i32::MIN);
    }

    #[test]
    fn memory_rmw() {
        let (cpu, mem) = run(&[
            Inst::MovRI { dst: Gpr::Esi, imm: 0x4000 },
            Inst::StoreI { addr: MemRef::base(Gpr::Esi, 0), imm: 10 },
            Inst::MovRI { dst: Gpr::Eax, imm: 32 },
            Inst::AluMR { op: AluOp::Add, addr: MemRef::base(Gpr::Esi, 0), src: Gpr::Eax },
        ]);
        assert_eq!(mem.read_u32(0x4000), 42);
        assert!(!cpu.flags.zf);
    }

    #[test]
    fn push_pop_call_ret() {
        // call a function that adds 1 to eax and returns.
        let mut a = Asm::new(0x1000);
        let func = a.fresh_label();
        let done = a.fresh_label();
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 41 });
        a.push_call(func);
        a.push_jmp(done);
        a.bind(func);
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
        a.push(Inst::Ret);
        a.bind(done);
        a.push(Inst::Halt);
        let prog = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(prog.base, &prog.bytes);
        let mut cpu = CpuState::at(prog.base);
        cpu.set_gpr(Gpr::Esp, 0x8_0000);
        while !cpu.halted {
            step(&mut cpu, &mut mem).unwrap();
        }
        assert_eq!(cpu.gpr(Gpr::Eax), 42);
        assert_eq!(cpu.gpr(Gpr::Esp), 0x8_0000);
    }

    #[test]
    fn conditional_branch_loop() {
        // for (eax = 0; eax != 10; eax++);
        let mut a = Asm::new(0x2000);
        let top = a.fresh_label();
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 0 });
        a.bind(top);
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
        a.push(Inst::CmpRI { a: Gpr::Eax, imm: 10 });
        a.push_jcc(Cond::Ne, top);
        a.push(Inst::Halt);
        let prog = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(prog.base, &prog.bytes);
        let mut cpu = CpuState::at(prog.base);
        while !cpu.halted {
            step(&mut cpu, &mut mem).unwrap();
        }
        assert_eq!(cpu.gpr(Gpr::Eax), 10);
    }

    #[test]
    fn indirect_jump_table() {
        // Jump table with two entries, select entry 1.
        let mut a = Asm::new(0x3000);
        let table = 0x9000u32;
        let t0 = a.fresh_label();
        let t1 = a.fresh_label();
        a.push(Inst::MovRI { dst: Gpr::Ecx, imm: 1 });
        a.push(Inst::JmpMem {
            addr: MemRef {
                base: None,
                index: Some(Gpr::Ecx),
                scale: Scale::S4,
                disp: table as i32,
            },
        });
        a.bind(t0);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 100 });
        a.push(Inst::Halt);
        a.bind(t1);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 200 });
        a.push(Inst::Halt);
        let prog = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(prog.base, &prog.bytes);
        mem.write_u32(table, prog.label_addr(t0));
        mem.write_u32(table + 4, prog.label_addr(t1));
        let mut cpu = CpuState::at(prog.base);
        while !cpu.halted {
            step(&mut cpu, &mut mem).unwrap();
        }
        assert_eq!(cpu.gpr(Gpr::Eax), 200);
    }

    #[test]
    fn subword_loads_and_stores() {
        let (cpu, mem) = run(&[
            Inst::MovRI { dst: Gpr::Esi, imm: 0x4000 },
            // Store 0xFFEE as a halfword, read back pieces.
            Inst::MovRI { dst: Gpr::Eax, imm: 0xFFEE },
            Inst::StoreN { addr: MemRef::base(Gpr::Esi, 0), src: Gpr::Eax, width: MemWidth::B2 },
            Inst::LoadZx { dst: Gpr::Ebx, addr: MemRef::base(Gpr::Esi, 0), width: MemWidth::B1 },
            Inst::LoadSx { dst: Gpr::Ecx, addr: MemRef::base(Gpr::Esi, 0), width: MemWidth::B1 },
            Inst::LoadZx { dst: Gpr::Edx, addr: MemRef::base(Gpr::Esi, 0), width: MemWidth::B2 },
            Inst::LoadSx { dst: Gpr::Edi, addr: MemRef::base(Gpr::Esi, 0), width: MemWidth::B2 },
        ]);
        assert_eq!(mem.read_u16(0x4000), 0xFFEE);
        assert_eq!(cpu.gpr(Gpr::Ebx), 0xEE, "zero-extended byte");
        assert_eq!(cpu.gpr(Gpr::Ecx) as i32, -18, "sign-extended byte (0xEE)");
        assert_eq!(cpu.gpr(Gpr::Edx), 0xFFEE, "zero-extended halfword");
        assert_eq!(cpu.gpr(Gpr::Edi) as i32, -18, "sign-extended halfword (0xFFEE)");
    }

    #[test]
    fn fp_pipeline() {
        use crate::inst::FpReg;
        let (cpu, _) = run(&[
            Inst::MovRI { dst: Gpr::Eax, imm: 3 },
            Inst::CvtIF { dst: FpReg(0), src: Gpr::Eax },
            Inst::MovRI { dst: Gpr::Ebx, imm: 4 },
            Inst::CvtIF { dst: FpReg(1), src: Gpr::Ebx },
            Inst::FArith { op: FpOp::Mul, dst: FpReg(0), src: FpReg(1) },
            Inst::FArith { op: FpOp::Add, dst: FpReg(0), src: FpReg(0) },
            Inst::CvtFI { dst: Gpr::Edx, src: FpReg(0) },
        ]);
        assert_eq!(cpu.gpr(Gpr::Edx), 24);
    }

    #[test]
    fn shift_by_zero_preserves_flags() {
        let (cpu, _) = run(&[
            Inst::MovRI { dst: Gpr::Eax, imm: 5 },
            Inst::CmpRI { a: Gpr::Eax, imm: 5 }, // sets ZF
            Inst::Shift { op: ShiftOp::Shl, dst: Gpr::Eax, amount: 0 },
        ]);
        assert!(cpu.flags.zf, "zero shift must not clobber flags");
        assert_eq!(cpu.gpr(Gpr::Eax), 5);
    }

    #[test]
    fn cond_coverage() {
        let f = Flags::sub(1, 2); // 1 < 2
        assert!(cond_holds(Cond::L, f));
        assert!(cond_holds(Cond::Le, f));
        assert!(cond_holds(Cond::Ne, f));
        assert!(cond_holds(Cond::B, f));
        assert!(cond_holds(Cond::Be, f));
        assert!(cond_holds(Cond::S, f));
        assert!(!cond_holds(Cond::G, f));
        assert!(!cond_holds(Cond::Ge, f));
        assert!(!cond_holds(Cond::A, f));
        assert!(!cond_holds(Cond::Ae, f));
        assert!(!cond_holds(Cond::E, f));
        assert!(!cond_holds(Cond::Ns, f));
    }
}
