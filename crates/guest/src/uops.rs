//! Pre-decoded execution micro-ops and lazy flag materialization.
//!
//! This is the gated fast path through the functional guest layer.
//! [`crate::exec::step`] — decode-then-`match` on [`Inst`] every step —
//! remains the always-available byte-equality oracle; [`ExecCtx::step`]
//! produces bit-identical architectural state, memory contents and
//! [`StepInfo`] streams while doing strictly less work per step:
//!
//! * **Micro-op buffers.** Straight-line runs of instructions are decoded
//!   once into per-block [`ExecOp`] buffers: operand registers resolved to
//!   raw indices, effective-address recipes precomputed, and a fn-pointer
//!   handler selected per op, executed by a tight dispatch loop. Blocks
//!   are cached direct-mapped by entry pc and invalidated by the same
//!   per-page write-generation stamps the interpreter's decode cache uses
//!   ([`GuestMem::page_gen`]): a block is valid while the stamps of its
//!   first and last byte's pages match the values seen at build time
//!   (block spans are < 4 KiB, so at most one page boundary is crossed).
//! * **Lazy EFLAGS.** Flag-writing arithmetic records `{op kind,
//!   operands}` in a [`LazyFlags`] side slot instead of computing the five
//!   flag bits; they are materialized into `cpu.flags` only when a
//!   consumer demands them — a conditional branch, a checker snapshot, or
//!   a `StepBoundary` state capture. Most definitions are overwritten
//!   before any consumer looks (the analysis layer measures ~5.6 dead
//!   flag definitions per translation region), so most materializations
//!   are elided entirely.
//!
//! # Self-modifying code
//!
//! The oracle re-decodes from guest memory on every step, so a store that
//! rewrites an instruction is visible at the very next step. The fast
//! path preserves this: every step revalidates the current block against
//! the global write-generation counter (one integer compare when nothing
//! was written; two page-stamp lookups after any store anywhere), and a
//! stale block is discarded and rebuilt from current bytes before the
//! next op executes.

use crate::decode::{decode, DecodeError};
use crate::exec::{cond_holds, AccessList, Control, MemAccess, StepInfo, MAX_INST_LEN};
use crate::inst::{Gpr, Inst, MemRef};
use crate::mem::GuestMem;
use crate::state::{CpuState, Flags};
use crate::GuestClass;

/// Entries in the direct-mapped micro-op block cache.
pub const UOP_CACHE_ENTRIES: usize = 512;

/// Maximum ops per block. Bounds the span to `48 * MAX_INST_LEN = 576`
/// bytes — below the 4 KiB page size, so a block crosses at most one
/// page boundary and the first/last-byte stamp check in
/// `span_gen` covers every byte of the block.
pub const UOP_BLOCK_CAP: usize = 48;

/// Write-generation stamp covering `len` bytes at `pc`: the max of the
/// first and last byte's page stamps. Only valid for spans that cross at
/// most one page boundary (guaranteed by [`UOP_BLOCK_CAP`]). Mirrors the
/// interpreter decode cache's validation in `darco-tol`.
#[inline]
fn span_gen(mem: &GuestMem, pc: u32, len: u32) -> u64 {
    let first = mem.page_gen(pc);
    let last = mem.page_gen(pc.wrapping_add(len.saturating_sub(1)));
    first.max(last)
}

/// A pending (not yet materialized) flag definition. Each variant holds
/// just enough to reproduce, bit for bit, the [`Flags`] value the oracle
/// would have computed eagerly at the defining instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LazyFlags {
    /// `cpu.flags` is current; nothing pending.
    #[default]
    Current,
    /// `Flags::add(a, b)`.
    Add(u32, u32),
    /// `Flags::sub(a, b)` (also `Cmp` and `Neg`, the latter as
    /// `Sub(0, v)` whose borrow-out is exactly `v != 0`).
    Sub(u32, u32),
    /// `Flags::logic(r)` — result flags with `cf`/`of` cleared.
    Logic(u32),
    /// `Flags::from_result(r)` — `Idiv`.
    Result(u32),
    /// Non-zero-amount shift: result flags, carry from the shifted-out
    /// bit, `of` cleared.
    ShiftCf {
        /// Shift result.
        result: u32,
        /// Last bit shifted out.
        cf: bool,
    },
    /// `Imul`: result flags with `cf = of = overflow`.
    MulOv {
        /// Truncated product.
        result: u32,
        /// Whether the wide product overflowed 32 bits.
        ov: bool,
    },
}

impl LazyFlags {
    /// Whether a definition is pending (i.e. `cpu.flags` is stale).
    #[inline]
    pub fn is_pending(&self) -> bool {
        *self != LazyFlags::Current
    }

    /// Materializes the pending definition into `cpu.flags` (bit-exact
    /// with the eager oracle) and marks the slot current.
    #[inline]
    pub fn force(&mut self, cpu: &mut CpuState) {
        let f = match *self {
            LazyFlags::Current => return,
            LazyFlags::Add(a, b) => Flags::add(a, b),
            LazyFlags::Sub(a, b) => Flags::sub(a, b),
            LazyFlags::Logic(r) => Flags::logic(r),
            LazyFlags::Result(r) => Flags::from_result(r),
            LazyFlags::ShiftCf { result, cf } => {
                let mut f = Flags::from_result(result);
                f.cf = cf;
                f.of = false;
                f
            }
            LazyFlags::MulOv { result, ov } => {
                let mut f = Flags::from_result(result);
                f.cf = ov;
                f.of = ov;
                f
            }
        };
        cpu.flags = f;
        *self = LazyFlags::Current;
    }
}

/// No-register sentinel in an [`AddrRecipe`].
const NO_REG: u8 = 0xFF;

/// Precomputed effective-address recipe: `disp + base + (index << shift)`
/// with wrapping arithmetic, registers resolved to raw indices
/// (`NO_REG` = absent).
#[derive(Debug, Clone, Copy)]
struct AddrRecipe {
    base: u8,
    index: u8,
    shift: u8,
    disp: u32,
}

impl AddrRecipe {
    fn from_ref(m: &MemRef) -> AddrRecipe {
        AddrRecipe {
            base: m.base.map_or(NO_REG, |r| r.index() as u8),
            index: m.index.map_or(NO_REG, |r| r.index() as u8),
            shift: m.scale as u8,
            disp: m.disp as u32,
        }
    }

    #[inline]
    fn ea(&self, cpu: &CpuState) -> u32 {
        let mut a = self.disp;
        if self.base != NO_REG {
            a = a.wrapping_add(cpu.gprs[self.base as usize]);
        }
        if self.index != NO_REG {
            a = a.wrapping_add(cpu.gprs[self.index as usize].wrapping_shl(self.shift as u32));
        }
        a
    }
}

type Handler =
    fn(&ExecOp, &mut CpuState, &mut GuestMem, &mut LazyFlags, u32, &mut AccessList) -> Control;

/// One pre-decoded instruction: resolved operands, address recipe,
/// dispatch handler, and the static metadata every per-step consumer
/// needs (length, emission shape, block-end/indirect/flag bits).
#[derive(Debug, Clone, Copy)]
pub struct ExecOp {
    handler: Handler,
    /// The decoded instruction (carried for [`StepInfo`]).
    pub inst: Inst,
    /// Encoded length in bytes.
    pub len: u8,
    /// Byte offset of this op from its block's entry pc.
    off: u16,
    /// Precomputed interpreter emission shape (see
    /// [`emission_shape`]); consumed by the software layer so the hot
    /// loop never re-derives it.
    pub shape: u16,
    /// `inst.writes_flags()`.
    pub wf: bool,
    /// `inst.reads_flags()`.
    pub rf: bool,
    /// Ends a basic block.
    block_end: bool,
    /// Primary register index (destination, or source for stores).
    a: u8,
    /// Secondary register index.
    b: u8,
    /// Small discriminant: `AluOp` / `ShiftOp` / `FpOp` / `Cond` as u8,
    /// or a [`MemWidth`] byte count.
    sub: u8,
    /// Immediate (shift amount for `Shift`).
    imm: u32,
    /// Direct branch target.
    target: u32,
    addr: AddrRecipe,
}

/// A cached run of pre-decoded ops starting at `entry`.
#[derive(Debug, Clone)]
struct UopBlock {
    entry: u32,
    /// Total encoded bytes covered by `ops`.
    span: u32,
    /// [`span_gen`] over the block bytes at build time.
    gen: u64,
    /// Global write-generation last seen while this block validated;
    /// lets the per-step check short-circuit to one integer compare
    /// when nothing has been written since.
    wg: u64,
    ops: Vec<ExecOp>,
}

impl UopBlock {
    /// Cheap per-step validation: identical write-generation means
    /// nothing anywhere was written; otherwise re-check the page stamps
    /// (detects self-modifying stores to this block's pages).
    #[inline]
    fn valid(&mut self, mem: &GuestMem) -> bool {
        let wg = mem.write_gen();
        if self.wg == wg {
            return true;
        }
        if span_gen(mem, self.entry, self.span) == self.gen {
            self.wg = wg;
            return true;
        }
        false
    }
}

/// Engagement and elision counters for the fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastStats {
    /// Ops executed from a cached block (entry hits + continuations).
    pub uop_hits: u64,
    /// Blocks decoded and compiled into micro-ops.
    pub blocks_built: u64,
    /// Cached blocks discarded after a generation-stamp mismatch
    /// (self-modifying code).
    pub invalidations: u64,
    /// Flag-writing instructions executed (lazy definitions recorded).
    pub flag_defs: u64,
    /// Pending definitions actually materialized; `flag_defs -
    /// flag_forces` definitions were dead and never computed.
    pub flag_forces: u64,
}

/// Execution context for the fast path: the micro-op block cache, an
/// intra-block cursor, the lazy-flags slot, and counters.
///
/// Drop-in alternative to [`crate::exec::step`]: [`ExecCtx::step`]
/// produces identical [`StepInfo`] values and identical architectural
/// state — except that `cpu.flags` may be stale while a [`LazyFlags`]
/// definition is pending. Every consumer of flags must call
/// [`ExecCtx::force_flags`] first (conditional branches inside
/// [`ExecCtx::step`] do this automatically).
#[derive(Debug, Clone)]
pub struct ExecCtx {
    blocks: Box<[Option<UopBlock>]>,
    /// Continuation cursor: `(slot, op index)` of the next sequential op
    /// when the previous step fell through inside a block.
    cur: Option<(usize, usize)>,
    /// The pending flag definition, if any.
    pub lazy: LazyFlags,
    /// Engagement counters.
    pub stats: FastStats,
}

impl Default for ExecCtx {
    fn default() -> ExecCtx {
        ExecCtx::new()
    }
}

impl ExecCtx {
    /// Creates an empty context.
    pub fn new() -> ExecCtx {
        ExecCtx {
            blocks: std::iter::repeat_with(|| None).take(UOP_CACHE_ENTRIES).collect(),
            cur: None,
            lazy: LazyFlags::Current,
            stats: FastStats::default(),
        }
    }

    /// Materializes any pending flag definition into `cpu.flags`.
    /// Consumers of architectural flags (checker snapshots, state
    /// capture at `StepBoundary`) must call this before reading.
    #[inline]
    pub fn force_flags(&mut self, cpu: &mut CpuState) {
        if self.lazy.is_pending() {
            self.stats.flag_forces += 1;
            self.lazy.force(cpu);
        }
    }

    /// Discards any pending flag definition *without* materializing it.
    /// For error paths that throw away the CPU state the definition
    /// refers to.
    pub fn discard_pending(&mut self) {
        self.lazy = LazyFlags::Current;
        self.cur = None;
    }

    /// Executes the instruction at `cpu.eip`. Semantically identical to
    /// [`crate::exec::step`] modulo lazy flags (see type docs).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the bytes at `eip` do not decode;
    /// the CPU state is left unchanged (though flags pending from
    /// *earlier* steps stay pending — callers that discard the state on
    /// error should call [`ExecCtx::discard_pending`]).
    pub fn step(
        &mut self,
        cpu: &mut CpuState,
        mem: &mut GuestMem,
    ) -> Result<StepInfo, DecodeError> {
        self.step_shaped(cpu, mem).map(|(info, _)| info)
    }

    /// [`ExecCtx::step`] returning the op's precomputed emission shape
    /// alongside, for the software-layer interpreter.
    pub fn step_shaped(
        &mut self,
        cpu: &mut CpuState,
        mem: &mut GuestMem,
    ) -> Result<(StepInfo, u16), DecodeError> {
        debug_assert!(!cpu.halted, "step() after halt");
        let pc = cpu.eip;

        // Intra-block continuation: the common case in straight-line
        // code. One pc compare plus the write-generation check.
        if let Some((slot, idx)) = self.cur {
            if let Some(b) = self.blocks[slot].as_mut() {
                if idx < b.ops.len() && b.entry.wrapping_add(b.ops[idx].off as u32) == pc {
                    if b.valid(mem) {
                        self.stats.uop_hits += 1;
                        return Ok(self.run_at(slot, idx, cpu, mem));
                    }
                    self.stats.invalidations += 1;
                    self.blocks[slot] = None;
                }
            }
        }

        // Block-entry lookup.
        let slot = pc as usize & (UOP_CACHE_ENTRIES - 1);
        let hit = match self.blocks[slot].as_mut() {
            Some(b) if b.entry == pc => {
                if b.valid(mem) {
                    true
                } else {
                    self.stats.invalidations += 1;
                    self.blocks[slot] = None;
                    false
                }
            }
            _ => false,
        };
        if hit {
            self.stats.uop_hits += 1;
            return Ok(self.run_at(slot, 0, cpu, mem));
        }

        let block = build_block(pc, mem)?;
        self.stats.blocks_built += 1;
        self.blocks[slot] = Some(block);
        Ok(self.run_at(slot, 0, cpu, mem))
    }

    /// Executes op `idx` of the (validated) block in `slot`.
    fn run_at(
        &mut self,
        slot: usize,
        idx: usize,
        cpu: &mut CpuState,
        mem: &mut GuestMem,
    ) -> (StepInfo, u16) {
        let (op, n_ops) = {
            let b = self.blocks[slot].as_ref().expect("validated block");
            (b.ops[idx], b.ops.len())
        };
        if op.wf {
            self.stats.flag_defs += 1;
        }
        if op.rf {
            // The handler will force; count it here where the counters
            // live (only conditional branches read flags).
            if self.lazy.is_pending() {
                self.stats.flag_forces += 1;
            }
        }
        let next = cpu.eip.wrapping_add(op.len as u32);
        let mut accesses = AccessList::default();
        let control = (op.handler)(&op, cpu, mem, &mut self.lazy, next, &mut accesses);
        cpu.eip = match control {
            Control::Next => next,
            Control::Jump { target, .. } => target,
            Control::Halt => cpu.eip,
        };
        self.cur =
            if control == Control::Next && idx + 1 < n_ops { Some((slot, idx + 1)) } else { None };
        (StepInfo { inst: op.inst, len: op.len as usize, control, accesses }, op.shape)
    }
}

/// Decodes a run of instructions starting at `pc` into a micro-op
/// block. The block ends at the first block-ending instruction, at
/// [`UOP_BLOCK_CAP`] ops, or just before a pc that fails to decode (the
/// error then surfaces when execution actually reaches it, exactly as
/// the per-step oracle would report it).
///
/// # Errors
///
/// Returns a [`DecodeError`] only if the *first* instruction fails to
/// decode.
fn build_block(pc: u32, mem: &GuestMem) -> Result<UopBlock, DecodeError> {
    let mut ops = Vec::with_capacity(8);
    let mut p = pc;
    loop {
        let mut window = [0u8; MAX_INST_LEN];
        mem.read_bytes(p, &mut window);
        let (inst, len) = match decode(&window) {
            Ok(d) => d,
            Err(e) if ops.is_empty() => return Err(e),
            Err(_) => break,
        };
        let op = compile_op(inst, len, p.wrapping_sub(pc) as u16);
        let end = op.block_end;
        ops.push(op);
        p = p.wrapping_add(len as u32);
        if end || ops.len() >= UOP_BLOCK_CAP {
            break;
        }
    }
    let span = p.wrapping_sub(pc);
    Ok(UopBlock { entry: pc, span, gen: span_gen(mem, pc, span), wg: mem.write_gen(), ops })
}

/// Mirrors `darco-tol`'s interpreter emission shape key, computed from
/// the instruction statically (access pattern and jump presence are
/// fully determined by the variant). The software layer debug-asserts
/// the two formulas agree on every step.
pub fn emission_shape(inst: &Inst) -> u16 {
    let opcode = match inst.class() {
        GuestClass::Int => 0u32,
        GuestClass::IntComplex => 1,
        GuestClass::Fp => 2,
        GuestClass::FpComplex => 3,
        GuestClass::Load => 4,
        GuestClass::Store => 5,
        GuestClass::Branch => 6,
        GuestClass::Call => 7,
        GuestClass::Ret => 8,
        GuestClass::IndirectBranch => 9,
        GuestClass::Other => 10,
    };
    let wf = u32::from(inst.writes_flags());
    // Access pattern in base 3, slot-ordered: none=0, load=1, store=2.
    use Inst::*;
    let acc: u32 = match inst {
        Load { .. }
        | LoadZx { .. }
        | LoadSx { .. }
        | AluRM { .. }
        | Pop { .. }
        | JmpMem { .. }
        | Ret
        | FLoad { .. } => 1,
        Store { .. }
        | StoreI { .. }
        | StoreN { .. }
        | Push { .. }
        | Call { .. }
        | CallInd { .. }
        | FStore { .. } => 2,
        AluMR { .. } => 1 + 2 * 3,
        _ => 0,
    };
    let jump = u32::from(matches!(
        inst,
        Jcc { .. }
            | Jmp { .. }
            | JmpInd { .. }
            | JmpMem { .. }
            | Call { .. }
            | CallInd { .. }
            | Ret
    ));
    (((opcode * 2 + wf) * 9 + acc) * 2 + jump) as u16
}

/// Resolves one decoded instruction into an [`ExecOp`].
fn compile_op(inst: Inst, len: usize, off: u16) -> ExecOp {
    let mut op = ExecOp {
        handler: h_nop,
        inst,
        len: len as u8,
        off,
        shape: emission_shape(&inst),
        wf: inst.writes_flags(),
        rf: inst.reads_flags(),
        block_end: inst.is_block_end(),
        a: 0,
        b: 0,
        sub: 0,
        imm: 0,
        target: 0,
        addr: AddrRecipe { base: NO_REG, index: NO_REG, shift: 0, disp: 0 },
    };
    use Inst::*;
    match inst {
        Nop | Syscall => op.handler = h_nop,
        Halt => op.handler = h_halt,
        MovRR { dst, src } => {
            op.handler = h_mov_rr;
            op.a = dst.index() as u8;
            op.b = src.index() as u8;
        }
        MovRI { dst, imm } => {
            op.handler = h_mov_ri;
            op.a = dst.index() as u8;
            op.imm = imm as u32;
        }
        Load { dst, addr } => {
            op.handler = h_load;
            op.a = dst.index() as u8;
            op.addr = AddrRecipe::from_ref(&addr);
        }
        Store { addr, src } => {
            op.handler = h_store;
            op.a = src.index() as u8;
            op.addr = AddrRecipe::from_ref(&addr);
        }
        StoreI { addr, imm } => {
            op.handler = h_store_i;
            op.imm = imm as u32;
            op.addr = AddrRecipe::from_ref(&addr);
        }
        LoadZx { dst, addr, width } => {
            op.handler = h_load_zx;
            op.a = dst.index() as u8;
            op.sub = width.bytes();
            op.addr = AddrRecipe::from_ref(&addr);
        }
        LoadSx { dst, addr, width } => {
            op.handler = h_load_sx;
            op.a = dst.index() as u8;
            op.sub = width.bytes();
            op.addr = AddrRecipe::from_ref(&addr);
        }
        StoreN { addr, src, width } => {
            op.handler = h_store_n;
            op.a = src.index() as u8;
            op.sub = width.bytes();
            op.addr = AddrRecipe::from_ref(&addr);
        }
        Lea { dst, addr } => {
            op.handler = h_lea;
            op.a = dst.index() as u8;
            op.addr = AddrRecipe::from_ref(&addr);
        }
        AluRR { op: o, dst, src } => {
            op.handler = h_alu_rr;
            op.sub = o as u8;
            op.a = dst.index() as u8;
            op.b = src.index() as u8;
        }
        AluRI { op: o, dst, imm } => {
            op.handler = h_alu_ri;
            op.sub = o as u8;
            op.a = dst.index() as u8;
            op.imm = imm as u32;
        }
        AluRM { op: o, dst, addr } => {
            op.handler = h_alu_rm;
            op.sub = o as u8;
            op.a = dst.index() as u8;
            op.addr = AddrRecipe::from_ref(&addr);
        }
        AluMR { op: o, addr, src } => {
            op.handler = h_alu_mr;
            op.sub = o as u8;
            op.a = src.index() as u8;
            op.addr = AddrRecipe::from_ref(&addr);
        }
        CmpRR { a, b } => {
            op.handler = h_cmp_rr;
            op.a = a.index() as u8;
            op.b = b.index() as u8;
        }
        CmpRI { a, imm } => {
            op.handler = h_cmp_ri;
            op.a = a.index() as u8;
            op.imm = imm as u32;
        }
        TestRR { a, b } => {
            op.handler = h_test_rr;
            op.a = a.index() as u8;
            op.b = b.index() as u8;
        }
        Shift { op: o, dst, amount } => {
            op.handler = h_shift;
            op.sub = o as u8;
            op.a = dst.index() as u8;
            op.imm = amount as u32;
        }
        ShiftCl { op: o, dst } => {
            op.handler = h_shift_cl;
            op.sub = o as u8;
            op.a = dst.index() as u8;
        }
        Imul { dst, src } => {
            op.handler = h_imul;
            op.a = dst.index() as u8;
            op.b = src.index() as u8;
        }
        Idiv { dst, src } => {
            op.handler = h_idiv;
            op.a = dst.index() as u8;
            op.b = src.index() as u8;
        }
        Neg { dst } => {
            op.handler = h_neg;
            op.a = dst.index() as u8;
        }
        Not { dst } => {
            op.handler = h_not;
            op.a = dst.index() as u8;
        }
        Push { src } => {
            op.handler = h_push;
            op.a = src.index() as u8;
        }
        Pop { dst } => {
            op.handler = h_pop;
            op.a = dst.index() as u8;
        }
        Jcc { cond, target } => {
            op.handler = h_jcc;
            op.sub = cond as u8;
            op.target = target;
        }
        Jmp { target } => {
            op.handler = h_jmp;
            op.target = target;
        }
        JmpInd { reg } => {
            op.handler = h_jmp_ind;
            op.a = reg.index() as u8;
        }
        JmpMem { addr } => {
            op.handler = h_jmp_mem;
            op.addr = AddrRecipe::from_ref(&addr);
        }
        Call { target } => {
            op.handler = h_call;
            op.target = target;
        }
        CallInd { reg } => {
            op.handler = h_call_ind;
            op.a = reg.index() as u8;
        }
        Ret => op.handler = h_ret,
        FMovRR { dst, src } => {
            op.handler = h_fmov_rr;
            op.a = dst.index() as u8;
            op.b = src.index() as u8;
        }
        FLoad { dst, addr } => {
            op.handler = h_fload;
            op.a = dst.index() as u8;
            op.addr = AddrRecipe::from_ref(&addr);
        }
        FStore { addr, src } => {
            op.handler = h_fstore;
            op.a = src.index() as u8;
            op.addr = AddrRecipe::from_ref(&addr);
        }
        FArith { op: o, dst, src } => {
            op.handler = h_farith;
            op.sub = o as u8;
            op.a = dst.index() as u8;
            op.b = src.index() as u8;
        }
        CvtIF { dst, src } => {
            op.handler = h_cvt_if;
            op.a = dst.index() as u8;
            op.b = src.index() as u8;
        }
        CvtFI { dst, src } => {
            op.handler = h_cvt_fi;
            op.a = dst.index() as u8;
            op.b = src.index() as u8;
        }
    }
    op
}

// ---------------------------------------------------------------------
// Handlers. Each mirrors the corresponding arm of
// `crate::exec::exec_decoded` exactly, with eager flag computation
// replaced by a `LazyFlags` record.
// ---------------------------------------------------------------------

/// ALU with lazy flags; `sub` is the `AluOp` discriminant.
#[inline]
fn alu_lazy(sub: u8, a: u32, b: u32, lazy: &mut LazyFlags) -> u32 {
    match sub {
        0 => {
            *lazy = LazyFlags::Add(a, b);
            a.wrapping_add(b)
        }
        1 => {
            *lazy = LazyFlags::Sub(a, b);
            a.wrapping_sub(b)
        }
        2 => {
            let r = a & b;
            *lazy = LazyFlags::Logic(r);
            r
        }
        3 => {
            let r = a | b;
            *lazy = LazyFlags::Logic(r);
            r
        }
        _ => {
            let r = a ^ b;
            *lazy = LazyFlags::Logic(r);
            r
        }
    }
}

/// Non-zero-amount shift with lazy flags; `sub` is the `ShiftOp`
/// discriminant.
#[inline]
fn shift_lazy(sub: u8, v: u32, amt: u32, lazy: &mut LazyFlags) -> u32 {
    debug_assert!(amt != 0 && amt < 32);
    let (r, cf) = match sub {
        0 => (v << amt, (v >> (32 - amt)) & 1 != 0),
        1 => (v >> amt, (v >> (amt - 1)) & 1 != 0),
        _ => (((v as i32) >> amt) as u32, ((v as i32) >> (amt - 1)) & 1 != 0),
    };
    *lazy = LazyFlags::ShiftCf { result: r, cf };
    r
}

const ESP: usize = Gpr::Esp as usize;
const ECX: usize = Gpr::Ecx as usize;

fn h_nop(
    _op: &ExecOp,
    _cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    Control::Next
}

fn h_halt(
    _op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    cpu.halted = true;
    Control::Halt
}

fn h_mov_rr(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    cpu.gprs[op.a as usize] = cpu.gprs[op.b as usize];
    Control::Next
}

fn h_mov_ri(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    cpu.gprs[op.a as usize] = op.imm;
    Control::Next
}

fn h_load(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: 4, is_store: false });
    cpu.gprs[op.a as usize] = mem.read_u32(a);
    Control::Next
}

fn h_store(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: 4, is_store: true });
    mem.write_u32(a, cpu.gprs[op.a as usize]);
    Control::Next
}

fn h_store_i(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: 4, is_store: true });
    mem.write_u32(a, op.imm);
    Control::Next
}

fn h_load_zx(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: op.sub, is_store: false });
    cpu.gprs[op.a as usize] =
        if op.sub == 1 { mem.read_u8(a) as u32 } else { mem.read_u16(a) as u32 };
    Control::Next
}

fn h_load_sx(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: op.sub, is_store: false });
    cpu.gprs[op.a as usize] = if op.sub == 1 {
        mem.read_u8(a) as i8 as i32 as u32
    } else {
        mem.read_u16(a) as i16 as i32 as u32
    };
    Control::Next
}

fn h_store_n(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: op.sub, is_store: true });
    let v = cpu.gprs[op.a as usize];
    if op.sub == 1 {
        mem.write_u8(a, v as u8);
    } else {
        mem.write_u16(a, v as u16);
    }
    Control::Next
}

fn h_lea(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    cpu.gprs[op.a as usize] = op.addr.ea(cpu);
    Control::Next
}

fn h_alu_rr(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    cpu.gprs[op.a as usize] =
        alu_lazy(op.sub, cpu.gprs[op.a as usize], cpu.gprs[op.b as usize], lz);
    Control::Next
}

fn h_alu_ri(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    cpu.gprs[op.a as usize] = alu_lazy(op.sub, cpu.gprs[op.a as usize], op.imm, lz);
    Control::Next
}

fn h_alu_rm(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: 4, is_store: false });
    cpu.gprs[op.a as usize] = alu_lazy(op.sub, cpu.gprs[op.a as usize], mem.read_u32(a), lz);
    Control::Next
}

fn h_alu_mr(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: 4, is_store: false });
    acc.push(MemAccess { addr: a, size: 4, is_store: true });
    let r = alu_lazy(op.sub, mem.read_u32(a), cpu.gprs[op.a as usize], lz);
    mem.write_u32(a, r);
    Control::Next
}

fn h_cmp_rr(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    *lz = LazyFlags::Sub(cpu.gprs[op.a as usize], cpu.gprs[op.b as usize]);
    Control::Next
}

fn h_cmp_ri(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    *lz = LazyFlags::Sub(cpu.gprs[op.a as usize], op.imm);
    Control::Next
}

fn h_test_rr(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    *lz = LazyFlags::Logic(cpu.gprs[op.a as usize] & cpu.gprs[op.b as usize]);
    Control::Next
}

fn h_shift(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    // Zero shift amount leaves the value *and* the pending flag
    // definition untouched (the oracle preserves flags here).
    let amt = op.imm & 31;
    if amt != 0 {
        cpu.gprs[op.a as usize] = shift_lazy(op.sub, cpu.gprs[op.a as usize], amt, lz);
    }
    Control::Next
}

fn h_shift_cl(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    let amt = cpu.gprs[ECX] & 31;
    if amt != 0 {
        cpu.gprs[op.a as usize] = shift_lazy(op.sub, cpu.gprs[op.a as usize], amt, lz);
    } else {
        // CL form always (re)defines flags, even at amount zero.
        *lz = LazyFlags::Logic(cpu.gprs[op.a as usize]);
    }
    Control::Next
}

fn h_imul(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    let a = cpu.gprs[op.a as usize] as i32 as i64;
    let b = cpu.gprs[op.b as usize] as i32 as i64;
    let wide = a * b;
    let r = wide as i32;
    let ov = wide != r as i64;
    cpu.gprs[op.a as usize] = r as u32;
    *lz = LazyFlags::MulOv { result: r as u32, ov };
    Control::Next
}

fn h_idiv(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    let a = cpu.gprs[op.a as usize] as i32;
    let b = cpu.gprs[op.b as usize] as i32;
    let r = if b == 0 { 0 } else { a.wrapping_div(b) };
    cpu.gprs[op.a as usize] = r as u32;
    *lz = LazyFlags::Result(r as u32);
    Control::Next
}

fn h_neg(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    // `Flags::sub(0, v)` has borrow-out exactly when `v != 0`, which is
    // the oracle's explicit `cf = v != 0` fixup — `Sub(0, v)` encodes
    // the whole thing.
    let v = cpu.gprs[op.a as usize];
    cpu.gprs[op.a as usize] = 0u32.wrapping_sub(v);
    *lz = LazyFlags::Sub(0, v);
    Control::Next
}

fn h_not(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    cpu.gprs[op.a as usize] = !cpu.gprs[op.a as usize];
    Control::Next
}

fn h_push(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let sp = cpu.gprs[ESP].wrapping_sub(4);
    cpu.gprs[ESP] = sp;
    acc.push(MemAccess { addr: sp, size: 4, is_store: true });
    mem.write_u32(sp, cpu.gprs[op.a as usize]);
    Control::Next
}

fn h_pop(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let sp = cpu.gprs[ESP];
    acc.push(MemAccess { addr: sp, size: 4, is_store: false });
    let v = mem.read_u32(sp);
    cpu.gprs[ESP] = sp.wrapping_add(4);
    cpu.gprs[op.a as usize] = v;
    Control::Next
}

fn h_jcc(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    lz: &mut LazyFlags,
    next: u32,
    _acc: &mut AccessList,
) -> Control {
    lz.force(cpu);
    let cond = match op.inst {
        Inst::Jcc { cond, .. } => cond,
        _ => unreachable!("h_jcc compiled from a non-Jcc instruction"),
    };
    if cond_holds(cond, cpu.flags) {
        Control::Jump { target: op.target, taken: true }
    } else {
        Control::Jump { target: next, taken: false }
    }
}

fn h_jmp(
    op: &ExecOp,
    _cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    Control::Jump { target: op.target, taken: true }
}

fn h_jmp_ind(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    Control::Jump { target: cpu.gprs[op.a as usize], taken: true }
}

fn h_jmp_mem(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: 4, is_store: false });
    Control::Jump { target: mem.read_u32(a), taken: true }
}

fn h_call(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    next: u32,
    acc: &mut AccessList,
) -> Control {
    let sp = cpu.gprs[ESP].wrapping_sub(4);
    cpu.gprs[ESP] = sp;
    acc.push(MemAccess { addr: sp, size: 4, is_store: true });
    mem.write_u32(sp, next);
    Control::Jump { target: op.target, taken: true }
}

fn h_call_ind(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    next: u32,
    acc: &mut AccessList,
) -> Control {
    let target = cpu.gprs[op.a as usize];
    let sp = cpu.gprs[ESP].wrapping_sub(4);
    cpu.gprs[ESP] = sp;
    acc.push(MemAccess { addr: sp, size: 4, is_store: true });
    mem.write_u32(sp, next);
    Control::Jump { target, taken: true }
}

fn h_ret(
    _op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let sp = cpu.gprs[ESP];
    acc.push(MemAccess { addr: sp, size: 4, is_store: false });
    let target = mem.read_u32(sp);
    cpu.gprs[ESP] = sp.wrapping_add(4);
    Control::Jump { target, taken: true }
}

fn h_fmov_rr(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    cpu.fprs[op.a as usize] = cpu.fprs[op.b as usize];
    Control::Next
}

fn h_fload(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: 8, is_store: false });
    cpu.fprs[op.a as usize] = mem.read_f64(a);
    Control::Next
}

fn h_fstore(
    op: &ExecOp,
    cpu: &mut CpuState,
    mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    acc: &mut AccessList,
) -> Control {
    let a = op.addr.ea(cpu);
    acc.push(MemAccess { addr: a, size: 8, is_store: true });
    mem.write_f64(a, cpu.fprs[op.a as usize]);
    Control::Next
}

fn h_farith(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    let a = cpu.fprs[op.a as usize];
    let b = cpu.fprs[op.b as usize];
    cpu.fprs[op.a as usize] = match op.sub {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        _ => a / b,
    };
    Control::Next
}

fn h_cvt_if(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    cpu.fprs[op.a as usize] = cpu.gprs[op.b as usize] as i32 as f64;
    Control::Next
}

fn h_cvt_fi(
    op: &ExecOp,
    cpu: &mut CpuState,
    _mem: &mut GuestMem,
    _lz: &mut LazyFlags,
    _next: u32,
    _acc: &mut AccessList,
) -> Control {
    let v = cpu.fprs[op.b as usize];
    let r = if v.is_nan() { 0 } else { v.clamp(i32::MIN as f64, i32::MAX as f64) as i32 };
    cpu.gprs[op.a as usize] = r as u32;
    Control::Next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::exec;
    use crate::inst::{AluOp, Cond, FpOp, FpReg, MemRef, Scale, ShiftOp};

    /// Runs a program to halt under both paths, forcing flags at every
    /// step, and asserts identical StepInfo streams, architectural
    /// state and memory.
    fn assert_paths_agree(base: u32, bytes: &[u8], extra_mem: &[(u32, u32)], max_steps: usize) {
        let mut mem_o = GuestMem::new();
        mem_o.set_fast_path(false);
        mem_o.write_bytes(base, bytes);
        let mut mem_f = GuestMem::new();
        mem_f.write_bytes(base, bytes);
        for &(a, v) in extra_mem {
            mem_o.write_u32(a, v);
            mem_f.write_u32(a, v);
        }
        let mut cpu_o = CpuState::at(base);
        cpu_o.set_gpr(Gpr::Esp, 0x8_0000);
        let mut cpu_f = cpu_o.clone();
        let mut ctx = ExecCtx::new();
        for step_no in 0..max_steps {
            if cpu_o.halted {
                break;
            }
            let io = exec::step(&mut cpu_o, &mut mem_o);
            let fo = ctx.step(&mut cpu_f, &mut mem_f);
            match (io, fo) {
                (Ok(io), Ok(fo)) => {
                    assert_eq!(io, fo, "StepInfo diverged at step {step_no}");
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "decode errors diverged at step {step_no}");
                    break;
                }
                (a, b) => panic!("one path errored at step {step_no}: {a:?} vs {b:?}"),
            }
            ctx.force_flags(&mut cpu_f);
            assert!(cpu_o.arch_eq(&cpu_f), "state diverged at step {step_no}");
            assert_eq!(mem_o.first_difference(&mem_f), None, "memory diverged at step {step_no}");
        }
        assert_eq!(cpu_o.halted, cpu_f.halted);
    }

    fn assemble(base: u32, insts: &[Inst]) -> Vec<u8> {
        let mut a = Asm::new(base);
        for i in insts {
            a.push(*i);
        }
        a.push(Inst::Halt);
        a.assemble().bytes
    }

    #[test]
    fn mixed_program_matches_oracle() {
        let base = 0x1000;
        let prog = assemble(
            base,
            &[
                Inst::MovRI { dst: Gpr::Eax, imm: 7 },
                Inst::MovRI { dst: Gpr::Ebx, imm: 5 },
                Inst::Imul { dst: Gpr::Eax, src: Gpr::Ebx },
                Inst::AluRI { op: AluOp::Sub, dst: Gpr::Eax, imm: 35 },
                Inst::MovRI { dst: Gpr::Esi, imm: 0x4000 },
                Inst::StoreI { addr: MemRef::base(Gpr::Esi, 0), imm: 10 },
                Inst::AluMR { op: AluOp::Add, addr: MemRef::base(Gpr::Esi, 0), src: Gpr::Ebx },
                Inst::Load { dst: Gpr::Edx, addr: MemRef::base(Gpr::Esi, 0) },
                Inst::Push { src: Gpr::Edx },
                Inst::Pop { dst: Gpr::Edi },
                Inst::Neg { dst: Gpr::Edi },
                Inst::Not { dst: Gpr::Edi },
                Inst::Shift { op: ShiftOp::Shl, dst: Gpr::Ebx, amount: 3 },
                Inst::Shift { op: ShiftOp::Sar, dst: Gpr::Ebx, amount: 1 },
                Inst::MovRI { dst: Gpr::Ecx, imm: 0 },
                Inst::ShiftCl { op: ShiftOp::Shr, dst: Gpr::Ebx },
                Inst::CvtIF { dst: FpReg(0), src: Gpr::Ebx },
                Inst::FArith { op: FpOp::Mul, dst: FpReg(0), src: FpReg(0) },
                Inst::FStore { addr: MemRef::base(Gpr::Esi, 8), src: FpReg(0) },
                Inst::FLoad { dst: FpReg(1), addr: MemRef::base(Gpr::Esi, 8) },
                Inst::CvtFI { dst: Gpr::Eax, src: FpReg(1) },
            ],
        );
        assert_paths_agree(base, &prog, &[], 1000);
    }

    #[test]
    fn loop_with_conditional_branches_matches_oracle() {
        let base = 0x2000;
        let mut a = Asm::new(base);
        let top = a.fresh_label();
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 0 });
        a.push(Inst::MovRI { dst: Gpr::Ebx, imm: 0 });
        a.bind(top);
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
        a.push(Inst::AluRR { op: AluOp::Add, dst: Gpr::Ebx, src: Gpr::Eax });
        a.push(Inst::CmpRI { a: Gpr::Eax, imm: 50 });
        a.push_jcc(Cond::Ne, top);
        a.push(Inst::Halt);
        let prog = a.assemble();
        assert_paths_agree(base, &prog.bytes, &[], 10_000);
    }

    #[test]
    fn call_ret_and_indirect_jumps_match_oracle() {
        let base = 0x3000;
        let table = 0x9000u32;
        let mut a = Asm::new(base);
        let func = a.fresh_label();
        let done = a.fresh_label();
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 41 });
        a.push_call(func);
        a.push(Inst::MovRI { dst: Gpr::Ecx, imm: 0 });
        a.push(Inst::JmpMem {
            addr: MemRef {
                base: None,
                index: Some(Gpr::Ecx),
                scale: Scale::S4,
                disp: table as i32,
            },
        });
        a.bind(func);
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 });
        a.push(Inst::Ret);
        a.bind(done);
        a.push(Inst::Halt);
        let prog = a.assemble();
        let entry0 = prog.label_addr(done);
        assert_paths_agree(base, &prog.bytes, &[(table, entry0)], 1000);
    }

    /// A store that rewrites an instruction inside a cached block must
    /// invalidate the block and be visible at the very next step.
    #[test]
    fn smc_invalidates_cached_block() {
        let base = 0x4000;
        // eax = 1; store rewrites the *following* MovRI's immediate
        // field; the rewritten value must be observed.
        let mut a = Asm::new(base);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 1 });
        // Run once to learn the layout: we need the pc of the final MovRI.
        a.push(Inst::Nop);
        a.push(Inst::MovRI { dst: Gpr::Ebx, imm: 0x11 });
        a.push(Inst::Halt);
        let prog = a.assemble();

        // Pass 1: warm the uop cache with the original bytes.
        let mut mem = GuestMem::new();
        mem.write_bytes(base, &prog.bytes);
        let mut ctx = ExecCtx::new();
        let mut cpu = CpuState::at(base);
        while !cpu.halted {
            ctx.step(&mut cpu, &mut mem).unwrap();
        }
        assert_eq!(cpu.gpr(Gpr::Ebx), 0x11);
        assert!(ctx.stats.blocks_built > 0);

        // Pass 2: patch the MovRI immediate in guest memory, then
        // re-run from the entry. The cached block must be invalidated.
        let mut tmp = Vec::new();
        let pre = crate::encode::encode(&Inst::MovRI { dst: Gpr::Eax, imm: 1 }, &mut tmp)
            + crate::encode::encode(&Inst::Nop, &mut tmp);
        let movri_pc = base + pre as u32;
        // MovRI (short form) is opcode + reg byte + imm8: patch the imm.
        mem.write_u8(movri_pc + 2, 0x22);
        let built_before = ctx.stats.blocks_built;
        let mut cpu = CpuState::at(base);
        while !cpu.halted {
            ctx.step(&mut cpu, &mut mem).unwrap();
        }
        assert_eq!(cpu.gpr(Gpr::Ebx), 0x22, "stale micro-op block served after SMC");
        assert!(ctx.stats.invalidations > 0, "no invalidation recorded");
        assert!(ctx.stats.blocks_built > built_before, "block was not rebuilt");
    }

    /// Dead flag definitions must be elided: only consumers force.
    #[test]
    fn lazy_flags_elide_dead_definitions() {
        let base = 0x5000;
        let prog = assemble(
            base,
            &[
                // Four flag defs, no consumer in between.
                Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 },
                Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 2 },
                Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 3 },
                Inst::CmpRI { a: Gpr::Eax, imm: 6 },
            ],
        );
        let mut mem = GuestMem::new();
        mem.write_bytes(base, &prog);
        let mut ctx = ExecCtx::new();
        let mut cpu = CpuState::at(base);
        while !cpu.halted {
            ctx.step(&mut cpu, &mut mem).unwrap();
        }
        assert_eq!(ctx.stats.flag_defs, 4);
        assert_eq!(ctx.stats.flag_forces, 0, "no consumer ran, nothing should materialize");
        // The final CmpRI is still pending; forcing it must yield ZF.
        ctx.force_flags(&mut cpu);
        assert_eq!(ctx.stats.flag_forces, 1);
        assert!(cpu.flags.zf);
    }

    /// Zero-amount immediate shifts preserve a pending definition.
    #[test]
    fn zero_shift_preserves_pending_flags() {
        let base = 0x6000;
        let prog = assemble(
            base,
            &[
                Inst::MovRI { dst: Gpr::Eax, imm: 5 },
                Inst::CmpRI { a: Gpr::Eax, imm: 5 },
                Inst::Shift { op: ShiftOp::Shl, dst: Gpr::Eax, amount: 0 },
            ],
        );
        let mut mem = GuestMem::new();
        mem.write_bytes(base, &prog);
        let mut ctx = ExecCtx::new();
        let mut cpu = CpuState::at(base);
        while !cpu.halted {
            ctx.step(&mut cpu, &mut mem).unwrap();
        }
        ctx.force_flags(&mut cpu);
        assert!(cpu.flags.zf, "zero shift must not clobber the pending compare");
        assert_eq!(cpu.gpr(Gpr::Eax), 5);
    }
}
