//! Architectural guest state: registers, flags, instruction pointer.

use crate::inst::{FpReg, Gpr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Guest condition flags (a subset of x86 EFLAGS that the ISA uses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flags {
    /// Carry flag.
    pub cf: bool,
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Overflow flag.
    pub of: bool,
    /// Parity flag (of the low byte, as on x86).
    pub pf: bool,
}

impl Flags {
    /// Packs the flags into a word (bit 0 CF, 1 ZF, 2 SF, 3 OF, 4 PF).
    pub fn to_word(self) -> u32 {
        (self.cf as u32)
            | (self.zf as u32) << 1
            | (self.sf as u32) << 2
            | (self.of as u32) << 3
            | (self.pf as u32) << 4
    }

    /// Inverse of [`Flags::to_word`]; ignores unused bits.
    pub fn from_word(w: u32) -> Flags {
        Flags { cf: w & 1 != 0, zf: w & 2 != 0, sf: w & 4 != 0, of: w & 8 != 0, pf: w & 16 != 0 }
    }

    /// Flags produced by a logic operation (AND/OR/XOR/TEST/NOT result):
    /// CF and OF cleared, ZF/SF/PF from the result.
    pub fn logic(result: u32) -> Flags {
        Flags { cf: false, of: false, ..Flags::from_result(result) }
    }

    /// ZF/SF/PF computed from a result, CF/OF left clear.
    pub fn from_result(result: u32) -> Flags {
        Flags {
            cf: false,
            of: false,
            zf: result == 0,
            sf: (result as i32) < 0,
            pf: (result as u8).count_ones().is_multiple_of(2),
        }
    }

    /// Flags for `a + b`.
    pub fn add(a: u32, b: u32) -> Flags {
        let (r, carry) = a.overflowing_add(b);
        let of = ((a ^ r) & (b ^ r)) >> 31 != 0;
        Flags { cf: carry, of, ..Flags::from_result(r) }
    }

    /// Flags for `a - b` (also used by `cmp`).
    pub fn sub(a: u32, b: u32) -> Flags {
        let (r, borrow) = a.overflowing_sub(b);
        let of = ((a ^ b) & (a ^ r)) >> 31 != 0;
        Flags { cf: borrow, of, ..Flags::from_result(r) }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}{}]",
            if self.cf { 'C' } else { '-' },
            if self.zf { 'Z' } else { '-' },
            if self.sf { 'S' } else { '-' },
            if self.of { 'O' } else { '-' },
            if self.pf { 'P' } else { '-' },
        )
    }
}

/// Complete guest architectural state.
///
/// Two copies of this exist at run time, exactly as in DARCO (paper
/// Fig. 2): the *authoritative* state owned by the functional emulator,
/// and the *emulated* state maintained by the software layer; the state
/// checker compares them at basic-block boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuState {
    /// General-purpose registers, indexed by [`Gpr::index`].
    pub gprs: [u32; 8],
    /// Floating-point registers.
    pub fprs: [f64; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Condition flags.
    pub flags: Flags,
    /// Set once a `Halt` retires; no further instructions execute.
    pub halted: bool,
}

impl CpuState {
    /// A zeroed state with `eip` at `entry`.
    pub fn at(entry: u32) -> CpuState {
        CpuState {
            gprs: [0; 8],
            fprs: [0.0; 8],
            eip: entry,
            flags: Flags::default(),
            halted: false,
        }
    }

    /// Reads a general-purpose register.
    #[inline]
    pub fn gpr(&self, r: Gpr) -> u32 {
        self.gprs[r.index()]
    }

    /// Writes a general-purpose register.
    #[inline]
    pub fn set_gpr(&mut self, r: Gpr, v: u32) {
        self.gprs[r.index()] = v;
    }

    /// Reads a floating-point register.
    #[inline]
    pub fn fpr(&self, r: FpReg) -> f64 {
        self.fprs[r.index()]
    }

    /// Writes a floating-point register.
    #[inline]
    pub fn set_fpr(&mut self, r: FpReg, v: f64) {
        self.fprs[r.index()] = v;
    }

    /// Compares two states for architectural equality, treating FP
    /// registers bit-exactly (NaN == NaN if same bits). `eip` is included.
    pub fn arch_eq(&self, other: &CpuState) -> bool {
        self.gprs == other.gprs
            && self.eip == other.eip
            && self.flags == other.flags
            && self.halted == other.halted
            && self.fprs.iter().zip(other.fprs.iter()).all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

impl Default for CpuState {
    fn default() -> CpuState {
        CpuState::at(0)
    }
}

impl fmt::Display for CpuState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "eip={:#010x} flags={} halted={}", self.eip, self.flags, self.halted)?;
        for (i, r) in Gpr::ALL.iter().enumerate() {
            write!(f, "{r}={:#010x} ", self.gprs[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_word_roundtrip() {
        for w in 0..32u32 {
            assert_eq!(Flags::from_word(w).to_word(), w);
        }
    }

    #[test]
    fn add_flags() {
        let f = Flags::add(u32::MAX, 1);
        assert!(f.cf && f.zf && !f.sf && !f.of);
        let f = Flags::add(i32::MAX as u32, 1);
        assert!(f.of && f.sf && !f.cf);
        let f = Flags::add(1, 2);
        assert!(!f.cf && !f.zf && !f.of && !f.sf);
    }

    #[test]
    fn sub_flags() {
        let f = Flags::sub(0, 1);
        assert!(f.cf && f.sf && !f.zf);
        let f = Flags::sub(5, 5);
        assert!(f.zf && !f.cf);
        let f = Flags::sub(i32::MIN as u32, 1);
        assert!(f.of);
    }

    #[test]
    fn parity_matches_x86_convention() {
        // 0b11 has two set bits -> even parity -> PF set.
        assert!(Flags::from_result(3).pf);
        // 0b1 has one set bit -> PF clear.
        assert!(!Flags::from_result(1).pf);
        // Only the low byte counts.
        assert!(Flags::from_result(0x0100).pf);
    }

    #[test]
    fn state_accessors() {
        let mut s = CpuState::at(0x400);
        s.set_gpr(Gpr::Esp, 0x8000);
        s.set_fpr(FpReg(2), 2.5);
        assert_eq!(s.gpr(Gpr::Esp), 0x8000);
        assert_eq!(s.fpr(FpReg(2)), 2.5);
        assert_eq!(s.eip, 0x400);
        let t = s.clone();
        assert!(s.arch_eq(&t));
    }

    #[test]
    fn arch_eq_is_bit_exact_for_fp() {
        let mut a = CpuState::at(0);
        let mut b = CpuState::at(0);
        a.set_fpr(FpReg(0), f64::NAN);
        b.set_fpr(FpReg(0), f64::NAN);
        assert!(a.arch_eq(&b));
        b.set_fpr(FpReg(0), f64::from_bits(f64::NAN.to_bits() ^ 1));
        assert!(!a.arch_eq(&b));
    }
}
