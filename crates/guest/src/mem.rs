//! Sparse paged guest memory.
//!
//! The guest sees a flat 32-bit address space. Pages (4 KiB) are allocated
//! lazily on first touch, so programs with large but sparsely-used
//! footprints stay cheap to model.
//!
//! # Zero-fill semantics
//!
//! Reads of memory never touched by a write return zero — this is a
//! contract, not an accident, and the workload generator relies on it for
//! its data regions. It interacts with the generation stamps as follows:
//! an unmapped page reads as all-zero *and* reports [`GuestMem::page_gen`]
//! of 0; the first write to it allocates the page and stamps it with a
//! non-zero generation. Any cache layered on top (the interpreter's decode
//! cache, the micro-op buffers, or the internal L0 page-pointer cache
//! here) therefore must never memoize "page absent" — a later first-touch
//! write would not be observable through a cached negative. The L0 cache
//! below only ever holds *present* pages, so a first-touch write is always
//! seen (the page was a miss before it, and its slot is found through the
//! authoritative index after it).
//!
//! # Fast path vs. byte oracle
//!
//! Historically every multi-byte access was composed from per-byte
//! `HashMap` page lookups. That byte-wise code is retained as the
//! always-available oracle (`fast_path(false)`), while the default fast
//! path serves aligned-enough in-page accesses with a single page lookup
//! through a small most-recently-used page-pointer cache. Both paths
//! produce bit-identical memory contents *and* bit-identical generation
//! stamps: a width-`N` fast write advances the global write-generation
//! counter by `N` and stamps the page with the final value, exactly as
//! `N` byte writes would.

use std::cell::Cell;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Ways in the L0 page-pointer cache (most-recently-used order).
const L0_WAYS: usize = 4;

/// One L0 entry: page number -> slot index. `pn == u32::MAX` marks an
/// empty way (u32::MAX is a legal *address* but not a legal page number,
/// since page numbers are `addr >> 12`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct L0Entry {
    pn: u32,
    slot: u32,
}

const L0_EMPTY: L0Entry = L0Entry { pn: u32::MAX, slot: 0 };

/// Sparse 32-bit guest address space with 4 KiB pages.
///
/// Every write bumps a global write-generation counter and stamps the
/// touched page with it, so consumers that cache derived views of memory
/// (e.g. the interpreter's decoded-instruction cache and the micro-op
/// buffers) can detect self-modifying code with one
/// [`GuestMem::page_gen`] comparison.
///
/// Page storage is a slot table (`slots`) addressed through an index map;
/// pages are never deallocated, so slot indices are stable for the life
/// of the address space and can be cached in the L0 page-pointer cache.
#[derive(Debug, Clone)]
pub struct GuestMem {
    /// Page frames. Stable: pages are only ever appended.
    slots: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Page number -> index into `slots`.
    index: std::collections::HashMap<u32, u32>,
    /// Write generation per touched page (absent pages are generation 0).
    gens: std::collections::HashMap<u32, u64>,
    write_gen: u64,
    /// Gates the width-native access paths and the L0 cache. Off = the
    /// original per-byte oracle path.
    fast: bool,
    /// L0 page-pointer cache, MRU-ordered. Interior-mutable so reads can
    /// refresh it; this costs `Sync` (the type stays `Send`), which is
    /// fine — the address space is never shared across threads.
    l0: Cell<[L0Entry; L0_WAYS]>,
}

impl Default for GuestMem {
    fn default() -> GuestMem {
        GuestMem {
            slots: Vec::new(),
            index: std::collections::HashMap::new(),
            gens: std::collections::HashMap::new(),
            write_gen: 0,
            fast: true,
            l0: Cell::new([L0_EMPTY; L0_WAYS]),
        }
    }
}

impl GuestMem {
    /// Creates an empty address space (all bytes read as zero) with the
    /// fast path enabled.
    pub fn new() -> GuestMem {
        GuestMem::default()
    }

    /// Enables or disables the width-native fast path and L0 cache.
    /// Either setting produces bit-identical contents and generation
    /// stamps; off is the per-byte oracle.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast = on;
        self.l0.set([L0_EMPTY; L0_WAYS]);
    }

    /// Whether the width-native fast path is enabled.
    pub fn fast_path(&self) -> bool {
        self.fast
    }

    /// Number of pages that have been touched by a write.
    pub fn resident_pages(&self) -> usize {
        self.index.len()
    }

    /// Looks up the slot of a *present* page, consulting and refreshing
    /// the L0 cache when the fast path is on. Never caches absence (see
    /// the module docs on zero-fill semantics).
    #[inline]
    fn slot_of(&self, pn: u32) -> Option<u32> {
        if self.fast {
            let mut l0 = self.l0.get();
            for i in 0..L0_WAYS {
                if l0[i].pn == pn {
                    if i != 0 {
                        l0.swap(0, i);
                        self.l0.set(l0);
                    }
                    return Some(l0[0].slot);
                }
            }
            let slot = *self.index.get(&pn)?;
            for i in (1..L0_WAYS).rev() {
                l0[i] = l0[i - 1];
            }
            l0[0] = L0Entry { pn, slot };
            self.l0.set(l0);
            Some(slot)
        } else {
            self.index.get(&pn).copied()
        }
    }

    /// Returns the page frame for `pn`, allocating it (zero-filled) on
    /// first touch.
    #[inline]
    fn slot_mut(&mut self, pn: u32) -> &mut [u8; PAGE_SIZE] {
        let slot = match self.index.get(&pn) {
            Some(&s) => s,
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Box::new([0u8; PAGE_SIZE]));
                self.index.insert(pn, s);
                s
            }
        };
        &mut self.slots[slot as usize]
    }

    /// Reads one byte. Untouched memory reads as zero.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.slot_of(addr >> PAGE_SHIFT) {
            Some(s) => self.slots[s as usize][(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, val: u8) {
        let pn = addr >> PAGE_SHIFT;
        self.write_gen += 1;
        self.gens.insert(pn, self.write_gen);
        self.slot_mut(pn)[(addr & PAGE_MASK) as usize] = val;
    }

    /// Write generation of the page containing `addr`: strictly
    /// monotonic across writes anywhere, per-page precise. A page never
    /// written is generation 0 (and reads as zero — see the module docs).
    #[inline]
    pub fn page_gen(&self, addr: u32) -> u64 {
        self.gens.get(&(addr >> PAGE_SHIFT)).copied().unwrap_or(0)
    }

    /// The global write-generation counter (total bytes written).
    pub fn write_gen(&self) -> u64 {
        self.write_gen
    }

    /// Reads `W` little-endian bytes in one page lookup when the access
    /// stays within a page; returns `None` (caller falls back to the
    /// byte path) on page-crossing or when the fast path is off.
    #[inline]
    fn read_in_page<const W: usize>(&self, addr: u32) -> Option<[u8; W]> {
        let off = (addr & PAGE_MASK) as usize;
        if !self.fast || off > PAGE_SIZE - W {
            return None;
        }
        Some(match self.slot_of(addr >> PAGE_SHIFT) {
            Some(s) => {
                let p = &self.slots[s as usize];
                p[off..off + W].try_into().expect("in-page slice of width W")
            }
            None => [0u8; W],
        })
    }

    /// Writes `W` little-endian bytes in one page lookup when in-page;
    /// generation arithmetic is identical to `W` byte writes (counter
    /// advances by `W`, page stamped with the final value). Returns
    /// `false` (caller falls back) on page-crossing or fast-path-off.
    #[inline]
    fn write_in_page<const W: usize>(&mut self, addr: u32, bytes: [u8; W]) -> bool {
        let off = (addr & PAGE_MASK) as usize;
        if !self.fast || off > PAGE_SIZE - W {
            return false;
        }
        let pn = addr >> PAGE_SHIFT;
        self.write_gen += W as u64;
        self.gens.insert(pn, self.write_gen);
        self.slot_mut(pn)[off..off + W].copy_from_slice(&bytes);
        true
    }

    /// Reads a little-endian 16-bit halfword.
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        if let Some(b) = self.read_in_page::<2>(addr) {
            return u16::from_le_bytes(b);
        }
        self.read_u8(addr) as u16 | (self.read_u8(addr.wrapping_add(1)) as u16) << 8
    }

    /// Writes a little-endian 16-bit halfword.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, val: u16) {
        if self.write_in_page(addr, val.to_le_bytes()) {
            return;
        }
        self.write_u8(addr, val as u8);
        self.write_u8(addr.wrapping_add(1), (val >> 8) as u8);
    }

    /// Reads a little-endian 32-bit word (unaligned is fine, wrapping at
    /// the top of the address space).
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        if let Some(b) = self.read_in_page::<4>(addr) {
            return u32::from_le_bytes(b);
        }
        let mut v = 0u32;
        for i in 0..4 {
            v |= (self.read_u8(addr.wrapping_add(i)) as u32) << (8 * i);
        }
        v
    }

    /// Writes a little-endian 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, val: u32) {
        if self.write_in_page(addr, val.to_le_bytes()) {
            return;
        }
        for (i, b) in val.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Reads a little-endian 64-bit word.
    #[inline]
    pub fn read_u64(&self, addr: u32) -> u64 {
        if let Some(b) = self.read_in_page::<8>(addr) {
            return u64::from_le_bytes(b);
        }
        let lo = self.read_u32(addr) as u64;
        let hi = self.read_u32(addr.wrapping_add(4)) as u64;
        lo | (hi << 32)
    }

    /// Writes a little-endian 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, addr: u32, val: u64) {
        if self.write_in_page(addr, val.to_le_bytes()) {
            return;
        }
        self.write_u32(addr, val as u32);
        self.write_u32(addr.wrapping_add(4), (val >> 32) as u32);
    }

    /// Reads an `f64` stored with [`GuestMem::write_f64`].
    pub fn read_f64(&self, addr: u32) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, addr: u32, val: f64) {
        self.write_u64(addr, val.to_bits());
    }

    /// Copies a byte slice into memory starting at `addr`. Under the
    /// fast path this goes page-chunk at a time with the same generation
    /// arithmetic as the byte loop (each touched page is stamped with
    /// the counter value after its last byte, in ascending order).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        if !self.fast {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b);
            }
            return;
        }
        let mut a = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (a & PAGE_MASK) as usize;
            let n = rest.len().min(PAGE_SIZE - off);
            let pn = a >> PAGE_SHIFT;
            self.write_gen += n as u64;
            self.gens.insert(pn, self.write_gen);
            self.slot_mut(pn)[off..off + n].copy_from_slice(&rest[..n]);
            a = a.wrapping_add(n as u32);
            rest = &rest[n..];
        }
    }

    /// Copies `buf.len()` bytes out of memory starting at `addr`
    /// (untouched ranges read as zero).
    pub fn read_bytes(&self, addr: u32, buf: &mut [u8]) {
        if !self.fast {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u32));
            }
            return;
        }
        let mut a = addr;
        let mut rest = &mut buf[..];
        while !rest.is_empty() {
            let off = (a & PAGE_MASK) as usize;
            let n = rest.len().min(PAGE_SIZE - off);
            match self.slot_of(a >> PAGE_SHIFT) {
                Some(s) => rest[..n].copy_from_slice(&self.slots[s as usize][off..off + n]),
                None => rest[..n].fill(0),
            }
            a = a.wrapping_add(n as u32);
            rest = &mut rest[n..];
        }
    }

    /// Returns up to `max` bytes starting at `addr`, for use by the
    /// instruction decoder.
    pub fn window(&self, addr: u32, max: usize) -> Vec<u8> {
        let mut buf = vec![0u8; max];
        self.read_bytes(addr, &mut buf);
        buf
    }

    /// Compares two address spaces byte-for-byte and returns the address
    /// of the first difference, treating absent pages as zero-filled.
    pub fn first_difference(&self, other: &GuestMem) -> Option<u32> {
        let mut pages: Vec<u32> = self.index.keys().chain(other.index.keys()).copied().collect();
        pages.sort_unstable();
        pages.dedup();
        const ZERO: [u8; PAGE_SIZE] = [0; PAGE_SIZE];
        for p in pages {
            let a = self.index.get(&p).map_or(&ZERO, |&s| &*self.slots[s as usize]);
            let b = other.index.get(&p).map_or(&ZERO, |&s| &*other.slots[s as usize]);
            if a != b {
                let off = a.iter().zip(b.iter()).position(|(x, y)| x != y).unwrap_or(0);
                return Some((p << PAGE_SHIFT) + off as u32);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = GuestMem::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u32(0xFFFF_FFFC), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    /// Pins the contract documented at the top of this module: an
    /// unmapped page reads as zero with generation 0, and the first
    /// write is visible immediately through every access path — the L0
    /// cache must never have memoized the page's absence.
    #[test]
    fn zero_fill_first_touch_is_visible() {
        for fast in [false, true] {
            let mut m = GuestMem::new();
            m.set_fast_path(fast);
            // Read the page while unmapped (would prime any negative cache).
            assert_eq!(m.read_u32(0x9000), 0);
            assert_eq!(m.read_u8(0x9002), 0);
            assert_eq!(m.page_gen(0x9000), 0);
            // First-touch write must be observed by both access widths.
            m.write_u8(0x9002, 0xAB);
            assert_eq!(m.read_u8(0x9002), 0xAB);
            assert_eq!(m.read_u32(0x9000), 0x00AB_0000);
            assert!(m.page_gen(0x9000) > 0, "fast={fast}");
        }
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = GuestMem::new();
        m.write_u32(0x1000, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF);
        assert_eq!(m.read_u8(0x1000), 0xEF);
        assert_eq!(m.read_u8(0x1003), 0xDE);
        m.write_u64(0x2000, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0x2000), 0x0123_4567_89AB_CDEF);
        m.write_f64(0x3000, -1.5);
        assert_eq!(m.read_f64(0x3000), -1.5);
    }

    #[test]
    fn unaligned_cross_page() {
        let mut m = GuestMem::new();
        // Straddles the page boundary at 0x1000.
        m.write_u32(0x0FFE, 0xAABB_CCDD);
        assert_eq!(m.read_u32(0x0FFE), 0xAABB_CCDD);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn u16_roundtrip() {
        let mut m = GuestMem::new();
        m.write_u16(0x7FF, 0xBEEF); // straddles nothing special
        assert_eq!(m.read_u16(0x7FF), 0xBEEF);
        assert_eq!(m.read_u8(0x7FF), 0xEF);
        assert_eq!(m.read_u8(0x800), 0xBE);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = GuestMem::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x5000, &data);
        let mut back = vec![0u8; 256];
        m.read_bytes(0x5000, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn write_generations_are_per_page_precise() {
        let mut m = GuestMem::new();
        assert_eq!(m.page_gen(0x1000), 0);
        m.write_u8(0x1000, 1);
        let g1 = m.page_gen(0x1000);
        assert!(g1 > 0);
        // A write to a *different* page leaves this page's stamp alone.
        m.write_u8(0x5000, 2);
        assert_eq!(m.page_gen(0x1000), g1);
        assert!(m.page_gen(0x5000) > g1);
        // A second write to the same page advances its stamp.
        m.write_u8(0x1FFF, 3);
        assert!(m.page_gen(0x1000) > g1);
        assert_eq!(m.write_gen(), 3);
    }

    #[test]
    fn address_wraparound() {
        let mut m = GuestMem::new();
        m.write_u32(u32::MAX - 1, 0x1122_3344);
        assert_eq!(m.read_u32(u32::MAX - 1), 0x1122_3344);
        assert_eq!(m.read_u8(0), 0x22);
        assert_eq!(m.read_u8(1), 0x11);
    }

    /// Fast and oracle paths must agree on contents *and* generation
    /// stamps for every width, including page-straddling accesses.
    #[test]
    fn fast_path_matches_byte_oracle() {
        let addrs =
            [0x1000, 0x1001, 0x0FFE, 0x0FFF, 0x1FFC, 0x1FFD, 0x2FFA, u32::MAX - 3, u32::MAX];
        let mut fast = GuestMem::new();
        let mut oracle = GuestMem::new();
        oracle.set_fast_path(false);
        let mut x = 0x1234_5678_9ABC_DEFFu64;
        for &a in &addrs {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            fast.write_u8(a, x as u8);
            oracle.write_u8(a, x as u8);
            fast.write_u16(a.wrapping_add(2), x as u16);
            oracle.write_u16(a.wrapping_add(2), x as u16);
            fast.write_u32(a.wrapping_add(4), x as u32);
            oracle.write_u32(a.wrapping_add(4), x as u32);
            fast.write_u64(a.wrapping_add(8), x);
            oracle.write_u64(a.wrapping_add(8), x);
            fast.write_bytes(a.wrapping_add(16), &x.to_le_bytes());
            oracle.write_bytes(a.wrapping_add(16), &x.to_le_bytes());
        }
        assert_eq!(fast.write_gen(), oracle.write_gen());
        assert_eq!(fast.first_difference(&oracle), None);
        for &a in &addrs {
            assert_eq!(fast.page_gen(a), oracle.page_gen(a), "page_gen at {a:#x}");
            for off in 0..24u32 {
                let p = a.wrapping_add(off);
                assert_eq!(fast.read_u8(p), oracle.read_u8(p));
                assert_eq!(fast.read_u16(p), oracle.read_u16(p));
                assert_eq!(fast.read_u32(p), oracle.read_u32(p));
                assert_eq!(fast.read_u64(p), oracle.read_u64(p));
            }
            let mut bf = [0u8; 40];
            let mut bo = [0u8; 40];
            fast.read_bytes(a, &mut bf);
            oracle.read_bytes(a, &mut bo);
            assert_eq!(bf, bo);
        }
    }
}
