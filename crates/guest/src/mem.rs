//! Sparse paged guest memory.
//!
//! The guest sees a flat 32-bit address space. Pages (4 KiB) are allocated
//! lazily on first touch, so programs with large but sparsely-used
//! footprints stay cheap to model. Reads of untouched memory return zero,
//! which is also what the workload generator assumes for its data regions.

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Sparse 32-bit guest address space with 4 KiB pages.
///
/// Every write bumps a global write-generation counter and stamps the
/// touched page with it, so consumers that cache derived views of memory
/// (e.g. the interpreter's decoded-instruction cache) can detect
/// self-modifying code with one [`GuestMem::page_gen`] comparison.
#[derive(Debug, Clone, Default)]
pub struct GuestMem {
    pages: std::collections::HashMap<u32, Box<[u8; PAGE_SIZE]>>,
    /// Write generation per touched page (absent pages are generation 0).
    gens: std::collections::HashMap<u32, u64>,
    write_gen: u64,
}

impl GuestMem {
    /// Creates an empty address space (all bytes read as zero).
    pub fn new() -> GuestMem {
        GuestMem::default()
    }

    /// Number of pages that have been touched by a write.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, val: u8) {
        let pn = addr >> PAGE_SHIFT;
        self.write_gen += 1;
        self.gens.insert(pn, self.write_gen);
        let page = self.pages.entry(pn).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = val;
    }

    /// Write generation of the page containing `addr`: strictly
    /// monotonic across writes anywhere, per-page precise. A page never
    /// written is generation 0.
    #[inline]
    pub fn page_gen(&self, addr: u32) -> u64 {
        self.gens.get(&(addr >> PAGE_SHIFT)).copied().unwrap_or(0)
    }

    /// The global write-generation counter (total writes performed).
    pub fn write_gen(&self) -> u64 {
        self.write_gen
    }

    /// Reads a little-endian 16-bit halfword.
    pub fn read_u16(&self, addr: u32) -> u16 {
        self.read_u8(addr) as u16 | (self.read_u8(addr.wrapping_add(1)) as u16) << 8
    }

    /// Writes a little-endian 16-bit halfword.
    pub fn write_u16(&mut self, addr: u32, val: u16) {
        self.write_u8(addr, val as u8);
        self.write_u8(addr.wrapping_add(1), (val >> 8) as u8);
    }

    /// Reads a little-endian 32-bit word (byte-wise; unaligned is fine,
    /// wrapping at the top of the address space).
    pub fn read_u32(&self, addr: u32) -> u32 {
        let mut v = 0u32;
        for i in 0..4 {
            v |= (self.read_u8(addr.wrapping_add(i)) as u32) << (8 * i);
        }
        v
    }

    /// Writes a little-endian 32-bit word.
    pub fn write_u32(&mut self, addr: u32, val: u32) {
        for (i, b) in val.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Reads a little-endian 64-bit word.
    pub fn read_u64(&self, addr: u32) -> u64 {
        let lo = self.read_u32(addr) as u64;
        let hi = self.read_u32(addr.wrapping_add(4)) as u64;
        lo | (hi << 32)
    }

    /// Writes a little-endian 64-bit word.
    pub fn write_u64(&mut self, addr: u32, val: u64) {
        self.write_u32(addr, val as u32);
        self.write_u32(addr.wrapping_add(4), (val >> 32) as u32);
    }

    /// Reads an `f64` stored with [`GuestMem::write_f64`].
    pub fn read_f64(&self, addr: u32) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, addr: u32, val: f64) {
        self.write_u64(addr, val.to_bits());
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Copies `buf.len()` bytes out of memory starting at `addr`.
    pub fn read_bytes(&self, addr: u32, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u32));
        }
    }

    /// Returns up to `max` bytes starting at `addr` without crossing more
    /// than one page boundary, for use by the instruction decoder.
    pub fn window(&self, addr: u32, max: usize) -> Vec<u8> {
        let mut buf = vec![0u8; max];
        self.read_bytes(addr, &mut buf);
        buf
    }

    /// Compares two address spaces byte-for-byte and returns the address
    /// of the first difference, treating absent pages as zero-filled.
    pub fn first_difference(&self, other: &GuestMem) -> Option<u32> {
        let mut pages: Vec<u32> = self.pages.keys().chain(other.pages.keys()).copied().collect();
        pages.sort_unstable();
        pages.dedup();
        const ZERO: [u8; PAGE_SIZE] = [0; PAGE_SIZE];
        for p in pages {
            let a = self.pages.get(&p).map_or(&ZERO, |b| &**b);
            let b = other.pages.get(&p).map_or(&ZERO, |b| &**b);
            if a != b {
                let off = a.iter().zip(b.iter()).position(|(x, y)| x != y).unwrap_or(0);
                return Some((p << PAGE_SHIFT) + off as u32);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = GuestMem::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u32(0xFFFF_FFFC), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = GuestMem::new();
        m.write_u32(0x1000, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF);
        assert_eq!(m.read_u8(0x1000), 0xEF);
        assert_eq!(m.read_u8(0x1003), 0xDE);
        m.write_u64(0x2000, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0x2000), 0x0123_4567_89AB_CDEF);
        m.write_f64(0x3000, -1.5);
        assert_eq!(m.read_f64(0x3000), -1.5);
    }

    #[test]
    fn unaligned_cross_page() {
        let mut m = GuestMem::new();
        // Straddles the page boundary at 0x1000.
        m.write_u32(0x0FFE, 0xAABB_CCDD);
        assert_eq!(m.read_u32(0x0FFE), 0xAABB_CCDD);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn u16_roundtrip() {
        let mut m = GuestMem::new();
        m.write_u16(0x7FF, 0xBEEF); // straddles nothing special
        assert_eq!(m.read_u16(0x7FF), 0xBEEF);
        assert_eq!(m.read_u8(0x7FF), 0xEF);
        assert_eq!(m.read_u8(0x800), 0xBE);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = GuestMem::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x5000, &data);
        let mut back = vec![0u8; 256];
        m.read_bytes(0x5000, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn write_generations_are_per_page_precise() {
        let mut m = GuestMem::new();
        assert_eq!(m.page_gen(0x1000), 0);
        m.write_u8(0x1000, 1);
        let g1 = m.page_gen(0x1000);
        assert!(g1 > 0);
        // A write to a *different* page leaves this page's stamp alone.
        m.write_u8(0x5000, 2);
        assert_eq!(m.page_gen(0x1000), g1);
        assert!(m.page_gen(0x5000) > g1);
        // A second write to the same page advances its stamp.
        m.write_u8(0x1FFF, 3);
        assert!(m.page_gen(0x1000) > g1);
        assert_eq!(m.write_gen(), 3);
    }

    #[test]
    fn address_wraparound() {
        let mut m = GuestMem::new();
        m.write_u32(u32::MAX - 1, 0x1122_3344);
        assert_eq!(m.read_u32(u32::MAX - 1), 0x1122_3344);
        assert_eq!(m.read_u8(0), 0x22);
        assert_eq!(m.read_u8(1), 0x11);
    }
}
