//! Property tests for the host ISA: total execution, ALU algebra, and
//! metadata consistency. Driven by a seeded deterministic generator
//! (no crates.io access, so `proptest` is replaced by case loops over
//! a `SmallRng`).

use darco_guest::GuestMem;
use darco_host::{eval_alu, exec_inst, HAluOp, HInst, HReg, HostState, Outcome, Width};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn hreg(rng: &mut SmallRng) -> HReg {
    HReg(rng.gen_range(0u8..64))
}

const ALU_OPS: [HAluOp; 10] = [
    HAluOp::Add,
    HAluOp::Sub,
    HAluOp::And,
    HAluOp::Or,
    HAluOp::Xor,
    HAluOp::Shl,
    HAluOp::Shr,
    HAluOp::Sar,
    HAluOp::SltS,
    HAluOp::SltU,
];

fn alu_op(rng: &mut SmallRng) -> HAluOp {
    ALU_OPS[rng.gen_range(0..ALU_OPS.len())]
}

/// The ALU is total and shift amounts are masked like 32-bit
/// hardware.
#[test]
fn alu_is_total_and_masks_shifts() {
    let mut rng = SmallRng::seed_from_u64(0x05_0001);
    for _ in 0..4096 {
        let op = alu_op(&mut rng);
        let a: u32 = rng.gen();
        let b: u32 = rng.gen();
        let r = eval_alu(op, a, b);
        match op {
            HAluOp::Add => assert_eq!(r, a.wrapping_add(b)),
            HAluOp::Sub => assert_eq!(r, a.wrapping_sub(b)),
            HAluOp::Shl => assert_eq!(r, a << (b & 31)),
            HAluOp::Shr => assert_eq!(r, a >> (b & 31)),
            HAluOp::Sar => assert_eq!(r, ((a as i32) >> (b & 31)) as u32),
            HAluOp::SltS => assert_eq!(r, ((a as i32) < (b as i32)) as u32),
            HAluOp::SltU => assert_eq!(r, (a < b) as u32),
            _ => {}
        }
    }
}

/// Random ALU/memory instructions execute without panicking and
/// never write `r0`.
#[test]
fn execution_is_total_and_r0_is_zero() {
    let mut rng = SmallRng::seed_from_u64(0x05_0002);
    for _ in 0..1024 {
        let op = alu_op(&mut rng);
        let rd = hreg(&mut rng);
        let ra = hreg(&mut rng);
        let rb = hreg(&mut rng);
        let addr = rng.gen_range(0u32..0x10_0000);
        let v: u32 = rng.gen();

        let mut st = HostState::new();
        let mut mem = GuestMem::new();
        st.set_reg(ra, v);
        let out = exec_inst(&mut st, &HInst::Alu { op, rd, ra, rb }, &mut mem);
        assert_eq!(out, Outcome::Next);
        assert_eq!(st.reg(HReg(0)), 0);

        st.set_reg(HReg(1), addr);
        exec_inst(
            &mut st,
            &HInst::St { rs: ra, base: HReg(1), off: 0, width: Width::W4 },
            &mut mem,
        );
        exec_inst(&mut st, &HInst::Ld { rd, base: HReg(1), off: 0, width: Width::W4 }, &mut mem);
        if rd.0 != 0 {
            assert_eq!(st.reg(rd), st.reg(ra));
        } else {
            assert_eq!(st.reg(rd), 0);
        }
    }
}

/// Source/destination metadata agrees with functional behavior: an
/// instruction never changes a register it does not declare as its
/// destination.
#[test]
fn dst_metadata_is_exhaustive() {
    let mut rng = SmallRng::seed_from_u64(0x05_0003);
    for _ in 0..1024 {
        let op = alu_op(&mut rng);
        let rd = HReg(rng.gen_range(1u8..64));
        let ra = hreg(&mut rng);
        let rb = hreg(&mut rng);
        let seed: u64 = rng.gen();

        let mut st = HostState::new();
        let mut x = seed | 1;
        for i in 1..64u8 {
            x ^= x << 13;
            x ^= x >> 7;
            st.set_reg(HReg(i), x as u32);
        }
        let before: Vec<u32> = (0..64u8).map(|i| st.reg(HReg(i))).collect();
        let inst = HInst::Alu { op, rd, ra, rb };
        let mut mem = GuestMem::new();
        exec_inst(&mut st, &inst, &mut mem);
        for i in 0..64u8 {
            if Some(HReg(i)) != inst.dst() {
                assert_eq!(st.reg(HReg(i)), before[i as usize], "register r{i} changed");
            }
        }
    }
}
