//! Property tests for the host ISA: total execution, ALU algebra, and
//! metadata consistency.

use darco_guest::GuestMem;
use darco_host::{eval_alu, exec_inst, HAluOp, HInst, HReg, HostState, Outcome, Width};
use proptest::prelude::*;

fn hreg() -> impl Strategy<Value = HReg> {
    (0u8..64).prop_map(HReg)
}

fn alu_op() -> impl Strategy<Value = HAluOp> {
    prop_oneof![
        Just(HAluOp::Add),
        Just(HAluOp::Sub),
        Just(HAluOp::And),
        Just(HAluOp::Or),
        Just(HAluOp::Xor),
        Just(HAluOp::Shl),
        Just(HAluOp::Shr),
        Just(HAluOp::Sar),
        Just(HAluOp::SltS),
        Just(HAluOp::SltU),
    ]
}

proptest! {
    /// The ALU is total and shift amounts are masked like 32-bit
    /// hardware.
    #[test]
    fn alu_is_total_and_masks_shifts(op in alu_op(), a in any::<u32>(), b in any::<u32>()) {
        let r = eval_alu(op, a, b);
        match op {
            HAluOp::Add => prop_assert_eq!(r, a.wrapping_add(b)),
            HAluOp::Sub => prop_assert_eq!(r, a.wrapping_sub(b)),
            HAluOp::Shl => prop_assert_eq!(r, a << (b & 31)),
            HAluOp::Shr => prop_assert_eq!(r, a >> (b & 31)),
            HAluOp::Sar => prop_assert_eq!(r, ((a as i32) >> (b & 31)) as u32),
            HAluOp::SltS => prop_assert_eq!(r, ((a as i32) < (b as i32)) as u32),
            HAluOp::SltU => prop_assert_eq!(r, (a < b) as u32),
            _ => {}
        }
    }

    /// Random ALU/memory instructions execute without panicking and
    /// never write `r0`.
    #[test]
    fn execution_is_total_and_r0_is_zero(
        op in alu_op(),
        rd in hreg(),
        ra in hreg(),
        rb in hreg(),
        addr in 0u32..0x10_0000,
        v in any::<u32>(),
    ) {
        let mut st = HostState::new();
        let mut mem = GuestMem::new();
        st.set_reg(ra, v);
        let out = exec_inst(&mut st, &HInst::Alu { op, rd, ra, rb }, &mut mem);
        prop_assert_eq!(out, Outcome::Next);
        prop_assert_eq!(st.reg(HReg(0)), 0);

        st.set_reg(HReg(1), addr);
        exec_inst(&mut st, &HInst::St { rs: ra, base: HReg(1), off: 0, width: Width::W4 }, &mut mem);
        exec_inst(&mut st, &HInst::Ld { rd, base: HReg(1), off: 0, width: Width::W4 }, &mut mem);
        if rd.0 != 0 {
            prop_assert_eq!(st.reg(rd), st.reg(ra));
        } else {
            prop_assert_eq!(st.reg(rd), 0);
        }
    }

    /// Source/destination metadata agrees with functional behavior: an
    /// instruction never changes a register it does not declare as its
    /// destination.
    #[test]
    fn dst_metadata_is_exhaustive(
        op in alu_op(),
        rd in (1u8..64).prop_map(HReg),
        ra in hreg(),
        rb in hreg(),
        seed in any::<u64>(),
    ) {
        let mut st = HostState::new();
        let mut x = seed | 1;
        for i in 1..64u8 {
            x ^= x << 13;
            x ^= x >> 7;
            st.set_reg(HReg(i), x as u32);
        }
        let before: Vec<u32> = (0..64u8).map(|i| st.reg(HReg(i))).collect();
        let inst = HInst::Alu { op, rd, ra, rb };
        let mut mem = GuestMem::new();
        exec_inst(&mut st, &inst, &mut mem);
        for i in 0..64u8 {
            if Some(HReg(i)) != inst.dst() {
                prop_assert_eq!(st.reg(HReg(i)), before[i as usize], "register r{} changed", i);
            }
        }
    }
}
