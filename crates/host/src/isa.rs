//! Host RISC instruction definitions.
//!
//! The host ISA is deliberately simple — the whole point of a co-designed
//! processor is a simple, energy-efficient host whose performance comes
//! from the software layer's optimizations (paper Sec. I). Instructions
//! are fixed-width; control flow inside a translation uses *local*
//! instruction-index targets, and control leaving a translation is an
//! explicit [`Exit`] marker the dispatcher or chained successor handles.

use darco_guest::{Cond, FpOp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A host integer register, `r0`–`r63`.
///
/// `r0` is hardwired to zero. The file is logically split: the
/// application's translated code uses `r0`–`r31`, the software layer
/// uses `r32`–`r63` (paper Sec. II-A-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HReg(pub u8);

impl HReg {
    /// Total number of integer registers.
    pub const COUNT: u8 = 64;
    /// The hardwired-zero register.
    pub const ZERO: HReg = HReg(0);
    /// First register of the software-layer half.
    pub const TOL_BASE: u8 = 32;

    /// Whether this register belongs to the software-layer half.
    pub fn is_tol(self) -> bool {
        self.0 >= Self::TOL_BASE
    }
}

impl fmt::Display for HReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A host floating-point register, `f0`–`f31`.
///
/// Split like the integer file: `f0`–`f15` application, `f16`–`f31`
/// software layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HFreg(pub u8);

impl HFreg {
    /// Total number of FP registers.
    pub const COUNT: u8 = 32;
}

impl fmt::Display for HFreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Simple integer ALU operation (1-cycle execution units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HAluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right (on the low 32 bits).
    Shr,
    /// Arithmetic shift right (on the low 32 bits).
    Sar,
    /// Set-if-less-than, signed 32-bit compare.
    SltS,
    /// Set-if-less-than, unsigned 32-bit compare.
    SltU,
}

/// Host branch condition (register–register compare).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than (32-bit).
    LtS,
    /// Signed greater-or-equal (32-bit).
    GeS,
    /// Unsigned less-than (32-bit).
    LtU,
    /// Unsigned greater-or-equal (32-bit).
    GeU,
}

/// Which guest flags computation a [`HInst::FlagsArith`] performs.
///
/// Emulating CISC flag semantics is a major cost of translation (paper
/// Sec. III-C: "generating code for a `mov` is cheaper than an `add`
/// since the latter also modifies the x86 EFLAGS"). This helper models a
/// flag-materialization sequence as one complex-integer host instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlagsKind {
    /// Flags of `a + b`.
    Add,
    /// Flags of `a - b` (also `cmp`, `neg`).
    Sub,
    /// Flags of a logic result (operand `a` is the result; CF/OF clear).
    Logic,
    /// Flags of `a << (b & 31)`.
    Shl,
    /// Flags of `a >> (b & 31)` (logical).
    Shr,
    /// Flags of `a >> (b & 31)` (arithmetic).
    Sar,
    /// Flags of the 32-bit multiply `a * b` (CF=OF=overflow).
    Mul,
}

/// Access width of a host memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Width {
    /// One byte (zero-extended on load).
    W1,
    /// Two bytes (zero-extended on load).
    W2,
    /// Four bytes.
    W4,
    /// Eight bytes.
    W8,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u8 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }
}

/// Generation-tagged handle to a code-cache translation.
///
/// `idx` names a storage slot in the cache; `gen` is the slot's
/// generation when the handle was issued. Every eviction (and every
/// whole-cache flush) bumps the slot generation, so a handle that
/// outlives its translation is *detectably* stale instead of silently
/// naming whatever got installed into the slot next. Consumers that hold
/// potentially-old handles — chain links, IBTC entries, promotion
/// redirects — validate them against the cache and fall back to the
/// software-layer dispatcher when the target is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockId {
    /// Storage slot index.
    pub idx: u32,
    /// Slot generation at handle-issue time.
    pub gen: u32,
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.idx, self.gen)
    }
}

/// Where control goes when it leaves a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exit {
    /// To a known guest address. `link` is filled in by chaining: when
    /// set, execution continues directly at that code-cache block without
    /// a transition to the software layer. The handle may go stale if the
    /// linked block is evicted; the cache unpatches such links eagerly,
    /// and executors treat a stale link as unchained (software-layer
    /// exit) as defense in depth.
    Direct {
        /// Guest address execution should continue at.
        guest_target: u32,
        /// Chained successor block, if the code cache has linked it.
        link: Option<BlockId>,
    },
    /// To a guest address computed at run time (indirect jump/call,
    /// return): the target guest address is in `reg`; the IBTC and, on
    /// miss, a full code-cache lookup resolve it.
    Indirect {
        /// Host register holding the guest target address.
        reg: HReg,
    },
    /// The guest program halted.
    Halt,
}

/// One host instruction.
///
/// Branch/jump targets inside a translation (`target`) are *instruction
/// indices local to the translation block*; the timing simulator sees
/// real host PCs via the block's base address.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HInst {
    /// No operation.
    Nop,
    /// Register-register ALU: `rd <- ra op rb`.
    Alu {
        /// Operation.
        op: HAluOp,
        /// Destination.
        rd: HReg,
        /// Left operand.
        ra: HReg,
        /// Right operand.
        rb: HReg,
    },
    /// Register-immediate ALU: `rd <- ra op imm`.
    AluI {
        /// Operation.
        op: HAluOp,
        /// Destination.
        rd: HReg,
        /// Left operand.
        ra: HReg,
        /// Immediate right operand.
        imm: i32,
    },
    /// Load immediate: `rd <- imm`.
    Li {
        /// Destination.
        rd: HReg,
        /// Immediate value (sign-extended to 64 bits).
        imm: i64,
    },
    /// 32-bit multiply (complex integer unit): `rd <- ra * rb`.
    Mul {
        /// Destination.
        rd: HReg,
        /// Left operand.
        ra: HReg,
        /// Right operand.
        rb: HReg,
    },
    /// 32-bit signed total divide (complex integer unit).
    Div {
        /// Destination.
        rd: HReg,
        /// Dividend.
        ra: HReg,
        /// Divisor.
        rb: HReg,
    },
    /// Computes a guest flags word into `rd` (complex integer unit).
    FlagsArith {
        /// Which flags computation.
        kind: FlagsKind,
        /// Destination (flags word).
        rd: HReg,
        /// First operand (see [`FlagsKind`]).
        ra: HReg,
        /// Second operand.
        rb: HReg,
    },
    /// Software prefetch: brings `mem[base + off]`'s line toward the
    /// core without producing a value or stalling (inserted by the
    /// layer's optional prefetching pass, paper Sec. III-E).
    Prefetch {
        /// Base register.
        base: HReg,
        /// Byte offset.
        off: i32,
    },
    /// Load: `rd <- mem[ra + off]`.
    Ld {
        /// Destination.
        rd: HReg,
        /// Base register.
        base: HReg,
        /// Byte offset.
        off: i32,
        /// Access width.
        width: Width,
    },
    /// Store: `mem[base + off] <- rs`.
    St {
        /// Source.
        rs: HReg,
        /// Base register.
        base: HReg,
        /// Byte offset.
        off: i32,
        /// Access width.
        width: Width,
    },
    /// FP load (8 bytes): `fd <- mem[base + off]`.
    FLd {
        /// Destination FP register.
        fd: HFreg,
        /// Base register.
        base: HReg,
        /// Byte offset.
        off: i32,
    },
    /// FP store (8 bytes): `mem[base + off] <- fs`.
    FSt {
        /// Source FP register.
        fs: HFreg,
        /// Base register.
        base: HReg,
        /// Byte offset.
        off: i32,
    },
    /// FP register move.
    FMov {
        /// Destination FP register.
        fd: HFreg,
        /// Source FP register.
        fa: HFreg,
    },
    /// FP arithmetic: `fd <- fa op fb`.
    FArith {
        /// Operation (add/sub simple FP; mul/div complex FP).
        op: FpOp,
        /// Destination.
        fd: HFreg,
        /// Left operand.
        fa: HFreg,
        /// Right operand.
        fb: HFreg,
    },
    /// Integer-to-FP convert: `fd <- f64(ra as i32)`.
    CvtIF {
        /// Destination FP register.
        fd: HFreg,
        /// Source integer register.
        ra: HReg,
    },
    /// FP-to-integer convert (truncating, saturating).
    CvtFI {
        /// Destination integer register.
        rd: HReg,
        /// Source FP register.
        fa: HFreg,
    },
    /// Conditional branch to a local instruction index.
    Br {
        /// Condition.
        cond: HCond,
        /// Left compare operand.
        ra: HReg,
        /// Right compare operand.
        rb: HReg,
        /// Local target (instruction index within the block).
        target: u32,
    },
    /// Branch if a guest condition holds on the flags word in `flags`.
    BrFlags {
        /// Guest condition to evaluate.
        cond: Cond,
        /// Register holding the guest flags word.
        flags: HReg,
        /// Local target (instruction index within the block).
        target: u32,
    },
    /// Unconditional local jump.
    Jump {
        /// Local target (instruction index within the block).
        target: u32,
    },
    /// Control leaves the translation.
    Exit(Exit),
}

impl HInst {
    /// Destination integer register, if any (register 0 writes are
    /// discarded but still reported).
    pub fn dst(&self) -> Option<HReg> {
        use HInst::*;
        match *self {
            Alu { rd, .. }
            | AluI { rd, .. }
            | Li { rd, .. }
            | Mul { rd, .. }
            | Div { rd, .. }
            | FlagsArith { rd, .. }
            | Ld { rd, .. }
            | CvtFI { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Integer source registers (up to two).
    pub fn srcs(&self) -> [Option<HReg>; 2] {
        use HInst::*;
        match *self {
            Alu { ra, rb, .. }
            | Mul { ra, rb, .. }
            | Div { ra, rb, .. }
            | FlagsArith { ra, rb, .. }
            | Br { ra, rb, .. } => [Some(ra), Some(rb)],
            AluI { ra, .. } | CvtIF { ra, .. } => [Some(ra), None],
            Ld { base, .. } | FLd { base, .. } | Prefetch { base, .. } => [Some(base), None],
            St { rs, base, .. } => [Some(rs), Some(base)],
            FSt { base, .. } => [Some(base), None],
            BrFlags { flags, .. } => [Some(flags), None],
            Exit(self::Exit::Indirect { reg }) => [Some(reg), None],
            _ => [None, None],
        }
    }

    /// Destination FP register, if any.
    pub fn fdst(&self) -> Option<HFreg> {
        use HInst::*;
        match *self {
            FLd { fd, .. } | FMov { fd, .. } | FArith { fd, .. } | CvtIF { fd, .. } => Some(fd),
            _ => None,
        }
    }

    /// FP source registers (up to two).
    pub fn fsrcs(&self) -> [Option<HFreg>; 2] {
        use HInst::*;
        match *self {
            FArith { fa, fb, .. } => [Some(fa), Some(fb)],
            FMov { fa, .. } | CvtFI { fa, .. } => [Some(fa), None],
            FSt { fs, .. } => [Some(fs), None],
            _ => [None, None],
        }
    }

    /// Execution class used by the timing model.
    pub fn class(&self) -> crate::stream::ExecClass {
        use crate::stream::ExecClass as C;
        use HInst::*;
        match self {
            Nop | Alu { .. } | AluI { .. } | Li { .. } => C::SimpleInt,
            Mul { .. } | Div { .. } | FlagsArith { .. } => C::ComplexInt,
            Ld { .. } | FLd { .. } | Prefetch { .. } => C::Load,
            St { .. } | FSt { .. } => C::Store,
            FMov { .. } | CvtIF { .. } | CvtFI { .. } => C::SimpleFp,
            FArith { op, .. } => match op {
                FpOp::Add | FpOp::Sub => C::SimpleFp,
                FpOp::Mul | FpOp::Div => C::ComplexFp,
            },
            Br { .. } | BrFlags { .. } => C::Branch,
            Jump { .. } | Exit(_) => C::Jump,
        }
    }
}

impl fmt::Display for Exit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exit::Direct { guest_target, link: Some(b) } => {
                write!(f, "exit -> {guest_target:#x} [chained to block {b}]")
            }
            Exit::Direct { guest_target, link: None } => write!(f, "exit -> {guest_target:#x}"),
            Exit::Indirect { reg } => write!(f, "exit.ind [{reg}]"),
            Exit::Halt => write!(f, "exit.halt"),
        }
    }
}

impl fmt::Display for HInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use HInst::*;
        match self {
            Nop => write!(f, "nop"),
            Alu { op, rd, ra, rb } => write!(f, "{} {rd}, {ra}, {rb}", alu_mnemonic(*op)),
            AluI { op, rd, ra, imm } => write!(f, "{}i {rd}, {ra}, {imm}", alu_mnemonic(*op)),
            Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Mul { rd, ra, rb } => write!(f, "mul {rd}, {ra}, {rb}"),
            Div { rd, ra, rb } => write!(f, "div {rd}, {ra}, {rb}"),
            FlagsArith { kind, rd, ra, rb } => {
                write!(f, "flags.{} {rd}, {ra}, {rb}", format!("{kind:?}").to_lowercase())
            }
            Prefetch { base, off } => write!(f, "prefetch {off}({base})"),
            Ld { rd, base, off, width } => {
                write!(f, "ld.w{} {rd}, {off}({base})", width.bytes())
            }
            St { rs, base, off, width } => {
                write!(f, "st.w{} {rs}, {off}({base})", width.bytes())
            }
            FLd { fd, base, off } => write!(f, "fld {fd}, {off}({base})"),
            FSt { fs, base, off } => write!(f, "fst {fs}, {off}({base})"),
            FMov { fd, fa } => write!(f, "fmov {fd}, {fa}"),
            FArith { op, fd, fa, fb } => {
                write!(f, "f{} {fd}, {fa}, {fb}", format!("{op:?}").to_lowercase())
            }
            CvtIF { fd, ra } => write!(f, "cvt.if {fd}, {ra}"),
            CvtFI { rd, fa } => write!(f, "cvt.fi {rd}, {fa}"),
            Br { cond, ra, rb, target } => {
                write!(f, "b{} {ra}, {rb}, @{target}", format!("{cond:?}").to_lowercase())
            }
            BrFlags { cond, flags, target } => {
                write!(f, "bf.{} {flags}, @{target}", format!("{cond:?}").to_lowercase())
            }
            Jump { target } => write!(f, "j @{target}"),
            Exit(e) => write!(f, "{e}"),
        }
    }
}

fn alu_mnemonic(op: HAluOp) -> &'static str {
    match op {
        HAluOp::Add => "add",
        HAluOp::Sub => "sub",
        HAluOp::And => "and",
        HAluOp::Or => "or",
        HAluOp::Xor => "xor",
        HAluOp::Shl => "shl",
        HAluOp::Shr => "shr",
        HAluOp::Sar => "sar",
        HAluOp::SltS => "slts",
        HAluOp::SltU => "sltu",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ExecClass;

    #[test]
    fn display_disassembly() {
        assert_eq!(
            HInst::Alu { op: HAluOp::Add, rd: HReg(3), ra: HReg(1), rb: HReg(2) }.to_string(),
            "add r3, r1, r2"
        );
        assert_eq!(
            HInst::Ld { rd: HReg(5), base: HReg(2), off: -8, width: Width::W4 }.to_string(),
            "ld.w4 r5, -8(r2)"
        );
        assert_eq!(HInst::Prefetch { base: HReg(2), off: 64 }.to_string(), "prefetch 64(r2)");
        assert_eq!(
            HInst::Exit(Exit::Direct { guest_target: 0x2000, link: None }).to_string(),
            "exit -> 0x2000"
        );
        assert_eq!(
            HInst::BrFlags { cond: darco_guest::Cond::Ne, flags: HReg(9), target: 7 }.to_string(),
            "bf.ne r9, @7"
        );
    }

    #[test]
    fn prefetch_metadata() {
        let p = HInst::Prefetch { base: HReg(4), off: 64 };
        assert_eq!(p.class(), ExecClass::Load);
        assert_eq!(p.dst(), None);
        assert_eq!(p.srcs(), [Some(HReg(4)), None]);
    }

    #[test]
    fn register_halves() {
        assert!(!HReg(31).is_tol());
        assert!(HReg(32).is_tol());
        assert_eq!(HReg::ZERO, HReg(0));
    }

    #[test]
    fn dst_src_metadata() {
        let i = HInst::Alu { op: HAluOp::Add, rd: HReg(5), ra: HReg(1), rb: HReg(2) };
        assert_eq!(i.dst(), Some(HReg(5)));
        assert_eq!(i.srcs(), [Some(HReg(1)), Some(HReg(2))]);

        let st = HInst::St { rs: HReg(3), base: HReg(4), off: 8, width: Width::W4 };
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs(), [Some(HReg(3)), Some(HReg(4))]);

        let f = HInst::FArith { op: FpOp::Mul, fd: HFreg(1), fa: HFreg(2), fb: HFreg(3) };
        assert_eq!(f.fdst(), Some(HFreg(1)));
        assert_eq!(f.fsrcs(), [Some(HFreg(2)), Some(HFreg(3))]);
    }

    #[test]
    fn exec_classes() {
        assert_eq!(HInst::Nop.class(), ExecClass::SimpleInt);
        assert_eq!(
            HInst::Mul { rd: HReg(1), ra: HReg(2), rb: HReg(3) }.class(),
            ExecClass::ComplexInt
        );
        assert_eq!(
            HInst::FArith { op: FpOp::Div, fd: HFreg(0), fa: HFreg(1), fb: HFreg(2) }.class(),
            ExecClass::ComplexFp
        );
        assert_eq!(
            HInst::FArith { op: FpOp::Add, fd: HFreg(0), fa: HFreg(1), fb: HFreg(2) }.class(),
            ExecClass::SimpleFp
        );
        assert_eq!(HInst::Exit(Exit::Halt).class(), ExecClass::Jump);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W4.bytes(), 4);
        assert_eq!(Width::W8.bytes(), 8);
    }
}
