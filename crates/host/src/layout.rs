//! Host physical address map.
//!
//! The software layer works with physical addresses (which is why the
//! modeled TLB exists only for data, paper Sec. II-A-2). The map places
//! the emulated guest's RAM in the low 4 GiB and the software layer's own
//! structures above it, so the timing simulator can attribute every
//! memory access to an owner by address alone.

/// Base of the emulated guest application's memory (identity-mapped
/// 32-bit space).
pub const GUEST_BASE: u64 = 0;

/// One past the end of guest memory.
pub const GUEST_END: u64 = 1 << 32;

/// Base of the software layer's data structures (translation map, IBTC,
/// profile tables, workspace).
pub const TOL_DATA_BASE: u64 = 0x1_0000_0000;

/// Base of the code cache (translated guest code lives here).
pub const CODE_CACHE_BASE: u64 = 0x2_0000_0000;

/// Base of the software layer's own static code (interpreter loop,
/// translator, optimizer). Its footprint is small, which is why the
/// paper finds TOL's I$ impact negligible (Sec. III-C).
pub const TOL_CODE_BASE: u64 = 0x3_0000_0000;

/// Converts a guest address to a host physical address.
#[inline]
pub fn guest_to_host(addr: u32) -> u64 {
    GUEST_BASE + addr as u64
}

/// Whether a host address belongs to the emulated guest's memory.
#[inline]
pub fn is_guest_addr(addr: u64) -> bool {
    (GUEST_BASE..GUEST_END).contains(&addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        const { assert!(GUEST_END <= TOL_DATA_BASE) };
        const { assert!(TOL_DATA_BASE < CODE_CACHE_BASE) };
        const { assert!(CODE_CACHE_BASE < TOL_CODE_BASE) };
    }

    #[test]
    fn guest_mapping() {
        assert_eq!(guest_to_host(0), GUEST_BASE);
        assert!(is_guest_addr(guest_to_host(u32::MAX)));
        assert!(!is_guest_addr(TOL_DATA_BASE));
    }
}
