//! # darco-host — the host ISA of the DARCO reproduction
//!
//! The paper's co-designed processor executes a *simple RISC host ISA*
//! (Sec. II-A). This crate defines that ISA and the pieces shared by the
//! software layer (which generates host code) and the timing simulator
//! (which consumes the dynamic host instruction stream):
//!
//! * [`HInst`] — fixed-width RISC instructions: ALU, multiply/divide,
//!   loads/stores, FP, branches, plus a `FlagsArith` helper that computes
//!   a guest flags word (the cost CISC flag semantics impose on
//!   translation, Sec. III-C) and [`Exit`] markers where control leaves a
//!   translation,
//! * a register file of 64 integer registers **logically split between
//!   the application (r0–r31) and the software layer (r32–r63)** to
//!   reduce transition overheads, exactly as in the paper's host
//!   (Sec. II-A-2), plus 32 FP registers,
//! * [`HostState`] and a functional executor ([`exec_inst`]) used to run
//!   translated code against guest memory,
//! * [`stream::DynInst`] — one record per executed host instruction,
//!   tagged with the [`stream::Component`] that produced it; this is the
//!   interface the timing simulator meters,
//! * [`events`] — the typed [`events::HostEvent`] retirement stream and
//!   the batched [`events::HostEventSink`] trait that decouple the
//!   functional emulation loop from its consumers (timing, checking,
//!   statistics),
//! * [`layout`] — the host physical address map (guest RAM window, TOL
//!   data, code cache, TOL code).
//!
//! ```
//! use darco_host::{exec_inst, HAluOp, HInst, HReg, HostState, Outcome};
//! use darco_guest::GuestMem;
//!
//! let mut st = HostState::new();
//! let mut mem = GuestMem::new();
//! let add = HInst::AluI { op: HAluOp::Add, rd: HReg(1), ra: HReg(0), imm: 42 };
//! assert_eq!(exec_inst(&mut st, &add, &mut mem), Outcome::Next);
//! assert_eq!(st.reg(HReg(1)), 42);
//! assert_eq!(add.to_string(), "addi r1, r0, 42");
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod isa;
pub mod layout;
pub mod state;
pub mod stream;
pub mod template;

pub use events::{
    EventBuffer, ExecMode, HostEvent, HostEventSink, NullSink, RetireSink, TraceStats,
    TraceStatsSink, TranslationKind,
};
pub use isa::{BlockId, Exit, FlagsKind, HAluOp, HCond, HFreg, HInst, HReg, Width};
pub use state::{eval_alu, eval_flags, exec_inst, HostState, Outcome};
pub use stream::{BranchKind, Component, DynInst, ExecClass, MemEvent, Owner};
pub use template::{compile_block, rebase_templates, RetireDyn, RetireTemplate};
