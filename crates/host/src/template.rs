//! Precomputed retirement templates for translated code.
//!
//! Every executed host instruction of a translation retires as a
//! [`DynInst`], and almost everything in that record — pc, execution
//! class, component, destination and source registers, memory width and
//! direction, branch kind and static target — is knowable the moment the
//! block is installed in the code cache. Re-deriving it per retirement
//! (`class()`/`dst()`/`srcs()`/`fsrcs()` plus a match over [`HInst`])
//! puts five enum walks on the hottest loop in the system. A
//! [`RetireTemplate`] hoists all of that to install time: the execution
//! loop copies the prebuilt record and patches only the fields
//! [`RetireDyn`] says are dynamic.
//!
//! The one field that can change *after* install is a direct exit's
//! chain link (chaining mutates `Exit::Direct { link }` in place, and
//! eviction unpatches it again), which is why
//! [`RetireDyn::DirectExit`] leaves the branch to be resolved at
//! execution time instead of baking a target. The link is a
//! generation-tagged [`BlockId`](crate::isa::BlockId): resolvers
//! validate it against the live cache and fall back to the
//! software-layer exit when the target has been evicted.

use crate::isa::{Exit, HInst, HReg};
use crate::stream::{fp_reg, int_reg, BranchKind, Component, DynInst, NO_REG};

/// The dynamic residue of one host instruction's retirement record:
/// what the execution loop still has to fill in per retirement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetireDyn {
    /// Nothing — the prebuilt [`DynInst`] is retired verbatim.
    Fixed,
    /// Memory operand: the effective address (`reg(base) + off`,
    /// translated to host space) is patched into the prebuilt
    /// [`MemEvent`](crate::stream::MemEvent) before execution, since the
    /// instruction itself may overwrite `base`.
    Mem {
        /// Base register of the effective address.
        base: HReg,
        /// Byte offset added to the base.
        off: i32,
    },
    /// Conditional direct branch: only the taken bit is patched (the
    /// target is static and prebaked).
    CondBranch,
    /// Direct exit: the branch target depends on the exit's *current*
    /// chain link (which may have been patched, unpatched, or gone stale
    /// since install), so the whole branch record is attached at
    /// execution time.
    DirectExit,
}

/// A prebuilt retirement record plus its dynamic residue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetireTemplate {
    /// The [`DynInst`] as far as it is statically known; dynamic fields
    /// hold placeholders until patched per [`RetireDyn`].
    pub inst: DynInst,
    /// Which fields the execution loop must patch.
    pub dyn_kind: RetireDyn,
}

/// Compiles a translated block's host instructions into retirement
/// templates, given the block's base host address. Index `i` of the
/// result corresponds to host pc `host_base + 4 * i`.
pub fn compile_block(insts: &[HInst], host_base: u64) -> Vec<RetireTemplate> {
    insts
        .iter()
        .enumerate()
        .map(|(idx, inst)| {
            let pc = host_base + 4 * idx as u64;
            let mut d = DynInst::plain(pc, inst.class(), Component::AppCode);
            let mut dyn_kind = RetireDyn::Fixed;
            match *inst {
                HInst::Prefetch { base, off } => {
                    d = d.with_prefetch(0);
                    dyn_kind = RetireDyn::Mem { base, off };
                }
                HInst::Ld { base, off, width, .. } => {
                    d = d.with_mem(0, width.bytes(), false);
                    dyn_kind = RetireDyn::Mem { base, off };
                }
                HInst::St { base, off, width, .. } => {
                    d = d.with_mem(0, width.bytes(), true);
                    dyn_kind = RetireDyn::Mem { base, off };
                }
                HInst::FLd { base, off, .. } => {
                    d = d.with_mem(0, 8, false);
                    dyn_kind = RetireDyn::Mem { base, off };
                }
                HInst::FSt { base, off, .. } => {
                    d = d.with_mem(0, 8, true);
                    dyn_kind = RetireDyn::Mem { base, off };
                }
                HInst::Br { target, .. } | HInst::BrFlags { target, .. } => {
                    d = d.with_branch(BranchKind::CondDirect, host_base + 4 * target as u64, false);
                    dyn_kind = RetireDyn::CondBranch;
                }
                HInst::Jump { target } => {
                    d = d.with_branch(
                        BranchKind::UncondDirect,
                        host_base + 4 * target as u64,
                        true,
                    );
                }
                HInst::Exit(Exit::Direct { .. }) => dyn_kind = RetireDyn::DirectExit,
                _ => {}
            }
            if let Some(r) = inst.dst() {
                d.dst = int_reg(r.0);
            } else if let Some(f) = inst.fdst() {
                d.dst = fp_reg(f.0);
            }
            let mut srcs = [NO_REG; 2];
            let mut si = 0;
            for s in inst.srcs().into_iter().flatten() {
                if si < 2 {
                    srcs[si] = int_reg(s.0);
                    si += 1;
                }
            }
            for s in inst.fsrcs().into_iter().flatten() {
                if si < 2 {
                    srcs[si] = fp_reg(s.0);
                    si += 1;
                }
            }
            d.srcs = srcs;
            d.recompute_ops();
            RetireTemplate { inst: d, dyn_kind }
        })
        .collect()
}

/// Rebases templates compiled at host base 0 to `host_base`, shifting
/// every prebuilt pc and every baked direct-branch target. Because
/// [`compile_block`] derives both as `host_base + 4 * index`, rebasing a
/// base-0 compilation is exactly equal to compiling at `host_base` —
/// which lets a background translation worker compile templates before
/// the code cache has decided the block's placement. Direct exits are
/// unaffected (their branch is resolved at execution time and stays
/// `None` in the template).
pub fn rebase_templates(templates: &mut [RetireTemplate], host_base: u64) {
    for t in templates {
        t.inst.pc += host_base;
        if let Some(b) = t.inst.branch.as_mut() {
            b.1 += host_base;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{HAluOp, HFreg, Width};
    use crate::stream::ExecClass;

    #[test]
    fn static_fields_are_prebaked() {
        let insts = vec![
            HInst::Alu { op: HAluOp::Add, rd: HReg(3), ra: HReg(1), rb: HReg(2) },
            HInst::Ld { rd: HReg(4), base: HReg(5), off: 8, width: Width::W4 },
            HInst::FArith { op: darco_guest::FpOp::Mul, fd: HFreg(1), fa: HFreg(2), fb: HFreg(3) },
            HInst::Exit(Exit::Direct { guest_target: 0x200, link: None }),
        ];
        let t = compile_block(&insts, 0x1000);
        assert_eq!(t.len(), 4);

        assert_eq!(t[0].inst.pc, 0x1000);
        assert_eq!(t[0].inst.class, ExecClass::SimpleInt);
        assert_eq!(t[0].inst.dst, int_reg(3));
        assert_eq!(t[0].inst.srcs, [int_reg(1), int_reg(2)]);
        assert_eq!(t[0].dyn_kind, RetireDyn::Fixed);

        assert_eq!(t[1].inst.pc, 0x1004);
        assert_eq!(t[1].inst.dst, int_reg(4));
        let m = t[1].inst.mem.expect("load carries a mem event");
        assert_eq!((m.size, m.is_store), (4, false));
        assert_eq!(t[1].dyn_kind, RetireDyn::Mem { base: HReg(5), off: 8 });

        assert_eq!(t[2].inst.class, ExecClass::ComplexFp);
        assert_eq!(t[2].inst.dst, fp_reg(1));
        assert_eq!(t[2].inst.srcs, [fp_reg(2), fp_reg(3)]);

        assert_eq!(t[3].dyn_kind, RetireDyn::DirectExit);
        assert!(t[3].inst.branch.is_none(), "exit target resolved at exec time");
    }

    #[test]
    fn branch_targets_are_block_relative() {
        let insts = vec![
            HInst::Br { cond: crate::isa::HCond::Eq, ra: HReg(1), rb: HReg(2), target: 3 },
            HInst::Jump { target: 0 },
        ];
        let t = compile_block(&insts, 0x4000);
        assert_eq!(t[0].inst.branch, Some((BranchKind::CondDirect, 0x4000 + 12, false)));
        assert_eq!(t[0].dyn_kind, RetireDyn::CondBranch);
        assert_eq!(t[1].inst.branch, Some((BranchKind::UncondDirect, 0x4000, true)));
        assert_eq!(t[1].dyn_kind, RetireDyn::Fixed);
    }

    #[test]
    fn rebased_base_zero_compilation_equals_direct_compilation() {
        let insts = vec![
            HInst::Alu { op: HAluOp::Add, rd: HReg(3), ra: HReg(1), rb: HReg(2) },
            HInst::Ld { rd: HReg(4), base: HReg(5), off: 8, width: Width::W4 },
            HInst::Br { cond: crate::isa::HCond::Eq, ra: HReg(1), rb: HReg(2), target: 3 },
            HInst::Jump { target: 0 },
            HInst::Exit(Exit::Direct { guest_target: 0x200, link: None }),
        ];
        let mut rebased = compile_block(&insts, 0);
        rebase_templates(&mut rebased, 0x9_8000);
        assert_eq!(rebased, compile_block(&insts, 0x9_8000));
    }
}
