//! Functional execution of host instructions.
//!
//! Translated application code manipulates the emulated guest's 32-bit
//! state, so the architectural width that matters is 32 bits: integer
//! registers hold `u32` values and memory operands address guest memory
//! directly. `r0` is hardwired to zero.

use crate::isa::{Exit, FlagsKind, HAluOp, HCond, HFreg, HInst, HReg, Width};
use darco_guest::exec::cond_holds;
use darco_guest::{Flags, FpOp, GuestMem};

/// Host register state used when executing translated code.
#[derive(Debug, Clone, PartialEq)]
pub struct HostState {
    regs: [u32; HReg::COUNT as usize],
    fregs: [f64; HFreg::COUNT as usize],
}

impl Default for HostState {
    fn default() -> HostState {
        HostState::new()
    }
}

impl HostState {
    /// A zeroed register file.
    pub fn new() -> HostState {
        HostState { regs: [0; HReg::COUNT as usize], fregs: [0.0; HFreg::COUNT as usize] }
    }

    /// Reads an integer register (`r0` always reads zero).
    #[inline]
    pub fn reg(&self, r: HReg) -> u32 {
        self.regs[r.0 as usize]
    }

    /// Writes an integer register (writes to `r0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: HReg, v: u32) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Reads an FP register.
    #[inline]
    pub fn freg(&self, r: HFreg) -> f64 {
        self.fregs[r.0 as usize]
    }

    /// Writes an FP register.
    #[inline]
    pub fn set_freg(&mut self, r: HFreg, v: f64) {
        self.fregs[r.0 as usize] = v;
    }
}

/// Result of executing one host instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Fall through to the next instruction in the block.
    Next,
    /// Branch/jump taken to a local instruction index.
    Taken(u32),
    /// Control left the translation.
    Exited(Exit),
}

/// Evaluates a host ALU operation on 32-bit values (also used by the
/// software layer's constant folder, which must agree with execution).
pub fn eval_alu(op: HAluOp, a: u32, b: u32) -> u32 {
    alu(op, a, b)
}

fn alu(op: HAluOp, a: u32, b: u32) -> u32 {
    match op {
        HAluOp::Add => a.wrapping_add(b),
        HAluOp::Sub => a.wrapping_sub(b),
        HAluOp::And => a & b,
        HAluOp::Or => a | b,
        HAluOp::Xor => a ^ b,
        HAluOp::Shl => a.wrapping_shl(b & 31),
        HAluOp::Shr => a.wrapping_shr(b & 31),
        HAluOp::Sar => ((a as i32).wrapping_shr(b & 31)) as u32,
        HAluOp::SltS => ((a as i32) < (b as i32)) as u32,
        HAluOp::SltU => (a < b) as u32,
    }
}

/// Evaluates the flags word a [`FlagsKind`] materialization produces
/// for operands `a`, `b` — the same computation `exec_inst` performs
/// for `HInst::FlagsArith`. Exposed so the software layer's abstract
/// interpreter and constant folder agree with execution exactly.
pub fn eval_flags(kind: FlagsKind, a: u32, b: u32) -> u32 {
    flags_word(kind, a, b)
}

fn flags_word(kind: FlagsKind, a: u32, b: u32) -> u32 {
    let f = match kind {
        FlagsKind::Add => Flags::add(a, b),
        FlagsKind::Sub => Flags::sub(a, b),
        FlagsKind::Logic => Flags::logic(a),
        FlagsKind::Shl | FlagsKind::Shr | FlagsKind::Sar => {
            let amt = b & 31;
            if amt == 0 {
                // Callers must not emit zero-amount shift flags; treat as
                // logic flags of the unchanged value for totality.
                Flags::logic(a)
            } else {
                let (r, cf) = match kind {
                    FlagsKind::Shl => (a << amt, (a >> (32 - amt)) & 1 != 0),
                    FlagsKind::Shr => (a >> amt, (a >> (amt - 1)) & 1 != 0),
                    _ => (((a as i32) >> amt) as u32, ((a as i32) >> (amt - 1)) & 1 != 0),
                };
                let mut f = Flags::from_result(r);
                f.cf = cf;
                f
            }
        }
        FlagsKind::Mul => {
            let wide = (a as i32 as i64) * (b as i32 as i64);
            let overflow = wide != wide as i32 as i64;
            let mut f = Flags::from_result(wide as i32 as u32);
            f.cf = overflow;
            f.of = overflow;
            f
        }
    };
    f.to_word()
}

fn cond_eval(cond: HCond, a: u32, b: u32) -> bool {
    match cond {
        HCond::Eq => a == b,
        HCond::Ne => a != b,
        HCond::LtS => (a as i32) < (b as i32),
        HCond::GeS => (a as i32) >= (b as i32),
        HCond::LtU => a < b,
        HCond::GeU => a >= b,
    }
}

/// Executes one host instruction against guest memory.
///
/// Returns where control goes next. Memory operands address the guest's
/// 32-bit space directly (the identity mapping of
/// [`crate::layout::GUEST_BASE`]).
pub fn exec_inst(st: &mut HostState, inst: &HInst, mem: &mut GuestMem) -> Outcome {
    use HInst::*;
    match *inst {
        Nop => {}
        Alu { op, rd, ra, rb } => st.set_reg(rd, alu(op, st.reg(ra), st.reg(rb))),
        AluI { op, rd, ra, imm } => st.set_reg(rd, alu(op, st.reg(ra), imm as u32)),
        Li { rd, imm } => st.set_reg(rd, imm as u32),
        Mul { rd, ra, rb } => {
            st.set_reg(rd, (st.reg(ra) as i32).wrapping_mul(st.reg(rb) as i32) as u32)
        }
        Div { rd, ra, rb } => {
            let b = st.reg(rb) as i32;
            let r = if b == 0 { 0 } else { (st.reg(ra) as i32).wrapping_div(b) };
            st.set_reg(rd, r as u32);
        }
        FlagsArith { kind, rd, ra, rb } => st.set_reg(rd, flags_word(kind, st.reg(ra), st.reg(rb))),
        Prefetch { .. } => {} // a hint: no architectural effect
        Ld { rd, base, off, width } => {
            let a = st.reg(base).wrapping_add(off as u32);
            let v = match width {
                Width::W1 => mem.read_u8(a) as u32,
                Width::W2 => mem.read_u16(a) as u32,
                Width::W4 => mem.read_u32(a),
                Width::W8 => mem.read_u64(a) as u32,
            };
            st.set_reg(rd, v);
        }
        St { rs, base, off, width } => {
            let a = st.reg(base).wrapping_add(off as u32);
            match width {
                Width::W1 => mem.write_u8(a, st.reg(rs) as u8),
                Width::W2 => mem.write_u16(a, st.reg(rs) as u16),
                Width::W4 => mem.write_u32(a, st.reg(rs)),
                Width::W8 => mem.write_u64(a, st.reg(rs) as u64),
            }
        }
        FLd { fd, base, off } => {
            let a = st.reg(base).wrapping_add(off as u32);
            st.set_freg(fd, mem.read_f64(a));
        }
        FSt { fs, base, off } => {
            let a = st.reg(base).wrapping_add(off as u32);
            mem.write_f64(a, st.freg(fs));
        }
        FMov { fd, fa } => st.set_freg(fd, st.freg(fa)),
        FArith { op, fd, fa, fb } => {
            let a = st.freg(fa);
            let b = st.freg(fb);
            let r = match op {
                FpOp::Add => a + b,
                FpOp::Sub => a - b,
                FpOp::Mul => a * b,
                FpOp::Div => a / b,
            };
            st.set_freg(fd, r);
        }
        CvtIF { fd, ra } => st.set_freg(fd, st.reg(ra) as i32 as f64),
        CvtFI { rd, fa } => {
            let v = st.freg(fa);
            let r = if v.is_nan() { 0 } else { v.clamp(i32::MIN as f64, i32::MAX as f64) as i32 };
            st.set_reg(rd, r as u32);
        }
        Br { cond, ra, rb, target } => {
            if cond_eval(cond, st.reg(ra), st.reg(rb)) {
                return Outcome::Taken(target);
            }
        }
        BrFlags { cond, flags, target } => {
            if cond_holds(cond, Flags::from_word(st.reg(flags))) {
                return Outcome::Taken(target);
            }
        }
        Jump { target } => return Outcome::Taken(target),
        Exit(e) => return Outcome::Exited(e),
    }
    Outcome::Next
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::Cond;

    #[test]
    fn r0_is_hardwired_zero() {
        let mut st = HostState::new();
        st.set_reg(HReg(0), 123);
        assert_eq!(st.reg(HReg(0)), 0);
        st.set_reg(HReg(1), 123);
        assert_eq!(st.reg(HReg(1)), 123);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(alu(HAluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu(HAluOp::Sar, 0x8000_0000, 31), u32::MAX);
        assert_eq!(alu(HAluOp::Shr, 0x8000_0000, 31), 1);
        assert_eq!(alu(HAluOp::SltS, u32::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(alu(HAluOp::SltU, u32::MAX, 0), 0);
    }

    #[test]
    fn flags_match_guest_semantics() {
        // The host FlagsArith must agree with the guest's flag rules,
        // since translated code stores these words into the emulated
        // flags register.
        for (a, b) in [(0u32, 0u32), (5, 5), (0, 1), (u32::MAX, 1), (1 << 31, 1)] {
            assert_eq!(flags_word(FlagsKind::Add, a, b), Flags::add(a, b).to_word());
            assert_eq!(flags_word(FlagsKind::Sub, a, b), Flags::sub(a, b).to_word());
        }
        assert_eq!(flags_word(FlagsKind::Logic, 0, 0), Flags::logic(0).to_word());
    }

    #[test]
    fn memory_and_branches() {
        let mut st = HostState::new();
        let mut mem = GuestMem::new();
        st.set_reg(HReg(2), 0x1000);
        exec_inst(&mut st, &HInst::Li { rd: HReg(3), imm: 77 }, &mut mem);
        exec_inst(
            &mut st,
            &HInst::St { rs: HReg(3), base: HReg(2), off: 4, width: Width::W4 },
            &mut mem,
        );
        assert_eq!(mem.read_u32(0x1004), 77);
        exec_inst(
            &mut st,
            &HInst::Ld { rd: HReg(4), base: HReg(2), off: 4, width: Width::W4 },
            &mut mem,
        );
        assert_eq!(st.reg(HReg(4)), 77);

        let taken = exec_inst(
            &mut st,
            &HInst::Br { cond: HCond::Eq, ra: HReg(3), rb: HReg(4), target: 9 },
            &mut mem,
        );
        assert_eq!(taken, Outcome::Taken(9));
        let not = exec_inst(
            &mut st,
            &HInst::Br { cond: HCond::Ne, ra: HReg(3), rb: HReg(4), target: 9 },
            &mut mem,
        );
        assert_eq!(not, Outcome::Next);
    }

    #[test]
    fn brflags_agrees_with_guest_conditions() {
        let mut st = HostState::new();
        let mut mem = GuestMem::new();
        let f = Flags::sub(1, 2); // 1 < 2: L, B, Ne, S hold
        st.set_reg(HReg(9), f.to_word());
        for (cond, expect) in [
            (Cond::L, true),
            (Cond::B, true),
            (Cond::Ne, true),
            (Cond::E, false),
            (Cond::Ge, false),
        ] {
            let out =
                exec_inst(&mut st, &HInst::BrFlags { cond, flags: HReg(9), target: 1 }, &mut mem);
            assert_eq!(out == Outcome::Taken(1), expect, "cond {cond:?}");
        }
    }

    #[test]
    fn exits_propagate() {
        let mut st = HostState::new();
        let mut mem = GuestMem::new();
        let out = exec_inst(&mut st, &HInst::Exit(Exit::Halt), &mut mem);
        assert_eq!(out, Outcome::Exited(Exit::Halt));
    }

    #[test]
    fn fp_ops() {
        let mut st = HostState::new();
        let mut mem = GuestMem::new();
        st.set_reg(HReg(1), 6);
        exec_inst(&mut st, &HInst::CvtIF { fd: HFreg(0), ra: HReg(1) }, &mut mem);
        exec_inst(&mut st, &HInst::FMov { fd: HFreg(1), fa: HFreg(0) }, &mut mem);
        exec_inst(
            &mut st,
            &HInst::FArith { op: FpOp::Mul, fd: HFreg(0), fa: HFreg(0), fb: HFreg(1) },
            &mut mem,
        );
        exec_inst(&mut st, &HInst::CvtFI { rd: HReg(2), fa: HFreg(0) }, &mut mem);
        assert_eq!(st.reg(HReg(2)), 36);
    }
}
