//! The typed host-event stream that decouples functional emulation from
//! its observers.
//!
//! The software layer retires host instructions and performs
//! module-level activities (translation, chaining, code-cache
//! management, IBTC resolution) millions of times per run. Rather than
//! calling an observer closure once per retired instruction — which
//! couples the emulation loop to every consumer and forbids batching or
//! overlap — the layer pushes typed [`HostEvent`]s into an
//! [`EventBuffer`] and delivers them to a [`HostEventSink`] in batches.
//! Consumers (timing pipelines, the co-simulation checker, trace
//! statistics) implement the sink trait and receive whole batches, which
//! is what makes an overlapped (worker-thread) timing simulator possible
//! while keeping results bit-identical: the *order* of events inside and
//! across batches is exactly retire order.

use crate::stream::DynInst;
use darco_guest::CpuState;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Default [`EventBuffer`] capacity (events per delivered batch).
pub const EVENT_BATCH: usize = 4096;

/// Execution mode of the software layer (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// Interpretation.
    Im,
    /// Basic-block translation mode.
    Bbm,
    /// Superblock mode.
    Sbm,
}

impl ExecMode {
    /// Index into `[IM, BBM, SBM]` arrays.
    pub fn index(self) -> usize {
        match self {
            ExecMode::Im => 0,
            ExecMode::Bbm => 1,
            ExecMode::Sbm => 2,
        }
    }
}

/// What kind of translation a code-cache block holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TranslationKind {
    /// A basic block (BBM).
    Bb,
    /// An optimized superblock (SBM).
    Sb,
}

/// One event on the host retirement stream.
///
/// `Retire` dominates the stream by orders of magnitude; the remaining
/// variants are module-level markers that let sinks reconstruct the
/// layer's control flow without touching the engine.
#[derive(Debug, Clone)]
pub enum HostEvent {
    /// A host instruction retired.
    Retire(DynInst),
    /// A steady-state translated block retired as one macro-event: the
    /// engine proved the block's retired stream identical to `insts`
    /// (same instructions, same addresses, same branch outcomes) and
    /// collapsed the per-instruction `Retire` run into this single
    /// event. Consumers either expand it (`for d in insts.iter()`), or —
    /// like the block-memoizing timing sink — replay a recorded
    /// footprint keyed by `block` and the `Arc` identity of `insts`.
    /// The stream contract is unchanged: expanding every `BlockRetire`
    /// in place reproduces exactly the per-instruction stream.
    BlockRetire {
        /// Code-cache handle of the retiring translation; the `gen`
        /// field lets consumers drop state for recycled slots.
        block: crate::isa::BlockId,
        /// How many times this block has retired as a macro-event.
        iteration: u64,
        /// The block's invariant retired instruction stream.
        insts: Arc<[DynInst]>,
    },
    /// The dispatcher entered an execution mode for the next unit.
    ModeEnter(ExecMode),
    /// A region was translated (BBM) or formed + optimized (SBM).
    Translated {
        /// Guest entry address of the region.
        entry: u32,
        /// Block kind produced.
        kind: TranslationKind,
        /// Host instructions emitted into the code cache.
        host_len: u32,
    },
    /// A direct exit was patched to jump straight to its successor.
    Chained {
        /// Host PC of the patched exit instruction.
        site: u64,
    },
    /// A translation was installed into the code cache.
    CacheInsert {
        /// Guest entry address.
        entry: u32,
        /// Whether installing forced a full cache flush (eviction).
        flushed: bool,
    },
    /// A translation was evicted from the code cache — capacity
    /// pressure or a same-entry replacement under a partial-eviction
    /// policy, or a self-modifying-code invalidation under any policy.
    /// Whole-cache flushes are reported via
    /// [`HostEvent::CacheInsert`]`::flushed`, not per-block evictions.
    Evict {
        /// Guest entry address of the evicted translation.
        entry: u32,
        /// Whether a guest write to translated code forced the eviction.
        smc: bool,
    },
    /// A chain link into an evicted translation was unpatched, so the
    /// chaining site exits to the software layer again.
    Unchain {
        /// Host PC of the unpatched exit instruction.
        site: u64,
    },
    /// An indirect-branch target was looked up in the IBTC.
    IbtcResolve {
        /// Guest target address.
        target: u32,
        /// Whether the IBTC held the translation.
        hit: bool,
    },
    /// A dispatch-unit boundary: the controller finished one engine step.
    /// Carries the layer's emulated architectural state so a
    /// co-simulation sink can compare it against the authoritative
    /// emulator without reaching back into the engine.
    StepBoundary {
        /// Total guest instructions retired so far.
        guest_insts: u64,
        /// The emulated guest state at the boundary.
        emulated: Box<CpuState>,
    },
    /// A timeline-window boundary requested by the controller.
    WindowMark {
        /// Total guest instructions retired so far.
        guest_insts: u64,
    },
}

/// A consumer of the host-event stream.
///
/// Sinks receive events in batches; within and across batches the order
/// is exactly retire/emission order, so any per-instruction consumer can
/// be expressed as a batch consumer with identical results.
pub trait HostEventSink {
    /// Consumes one ordered batch of events.
    fn consume(&mut self, batch: &[HostEvent]);

    /// Whether this sink prefers whole batches handed over as shared
    /// `Arc<[HostEvent]>` allocations ([`HostEventSink::consume_shared`]).
    ///
    /// A broadcasting sink (one that fans the same batch out to several
    /// workers) answers `true`: the producer then *moves* its staging
    /// buffer into a refcounted allocation once, instead of the sink
    /// cloning the batch per consumer. Plain sinks keep the default and
    /// never see an `Arc`.
    fn wants_shared(&self) -> bool {
        false
    }

    /// Consumes one ordered batch delivered as a shared allocation.
    ///
    /// The default forwards to [`HostEventSink::consume`]; sinks that
    /// broadcast batches override this to clone the `Arc` (pointer copy)
    /// per consumer. The stream contract is unchanged: the batches and
    /// their order are exactly those `consume` would have seen.
    fn consume_shared(&mut self, batch: Arc<[HostEvent]>) {
        self.consume(&batch);
    }
}

/// Collects every event (useful in tests).
impl HostEventSink for Vec<HostEvent> {
    fn consume(&mut self, batch: &[HostEvent]) {
        self.extend_from_slice(batch);
    }
}

/// Discards the stream (functional-only runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl HostEventSink for NullSink {
    fn consume(&mut self, _batch: &[HostEvent]) {}
}

/// Adapts a per-retired-instruction closure to the batched interface,
/// ignoring non-retire events. Handy for counters and filters.
#[derive(Debug)]
pub struct RetireSink<F: FnMut(&DynInst)>(pub F);

impl<F: FnMut(&DynInst)> HostEventSink for RetireSink<F> {
    fn consume(&mut self, batch: &[HostEvent]) {
        for e in batch {
            match e {
                HostEvent::Retire(d) => (self.0)(d),
                HostEvent::BlockRetire { insts, .. } => {
                    for d in insts.iter() {
                        (self.0)(d);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Fixed-capacity staging buffer between an event producer and a sink.
///
/// `push` appends; when the buffer reaches capacity it flushes the whole
/// batch to the sink. Producers flush explicitly at natural boundaries
/// (budget expiry, control returning to the dispatcher), so a batch
/// never crosses a point where the controller needs the stream drained.
pub struct EventBuffer<'a> {
    buf: Vec<HostEvent>,
    capacity: usize,
    shared: bool,
    sink: &'a mut dyn HostEventSink,
}

impl<'a> EventBuffer<'a> {
    /// Creates a buffer delivering batches of at most `capacity` events.
    pub fn new(capacity: usize, sink: &'a mut dyn HostEventSink) -> EventBuffer<'a> {
        EventBuffer::from_storage(Vec::with_capacity(capacity.max(1)), capacity, sink)
    }

    /// Creates a buffer reusing an existing allocation (producers keep
    /// the storage across steps to avoid re-allocating per dispatch).
    pub fn from_storage(
        storage: Vec<HostEvent>,
        capacity: usize,
        sink: &'a mut dyn HostEventSink,
    ) -> EventBuffer<'a> {
        let shared = sink.wants_shared();
        EventBuffer { buf: storage, capacity: capacity.max(1), shared, sink }
    }

    /// Appends one event, flushing if the batch is full.
    #[inline]
    pub fn push(&mut self, e: HostEvent) {
        self.buf.push(e);
        if self.buf.len() >= self.capacity {
            self.flush();
        }
    }

    /// Appends a retired host instruction (the hot path).
    #[inline]
    pub fn retire(&mut self, d: DynInst) {
        self.push(HostEvent::Retire(d));
    }

    /// Delivers all buffered events to the sink, preserving order.
    ///
    /// For a sink that [`wants_shared`](HostEventSink::wants_shared)
    /// batches, the staging buffer is *moved* into one refcounted
    /// allocation (the arc-batch drain path) so a broadcasting sink can
    /// hand it to any number of consumers without per-consumer clones;
    /// otherwise the buffer is lent as a slice and its storage reused.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.shared {
            let batch: Arc<[HostEvent]> = std::mem::take(&mut self.buf).into();
            self.sink.consume_shared(batch);
            self.buf = Vec::with_capacity(self.capacity);
        } else {
            self.sink.consume(&self.buf);
            self.buf.clear();
        }
    }

    /// Flushes and returns the (empty) storage for reuse.
    pub fn into_storage(mut self) -> Vec<HostEvent> {
        self.flush();
        self.buf
    }

    /// Events currently staged.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

impl std::fmt::Debug for EventBuffer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBuffer")
            .field("pending", &self.buf.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// Aggregate statistics over the event stream, independent of any
/// timing model — what the controller's report exposes as the
/// trace-level view of a run.
///
/// `Serialize`/`Deserialize` are implemented by hand (not derived)
/// because the batch-accounting fields (`batches`, `max_batch`) must
/// stay *out* of the serialized form: batch boundaries legitimately
/// differ across event-batch sizes and between macro-event
/// ([`HostEvent::BlockRetire`]) and per-instruction streams, while
/// serialized reports are required to be byte-identical across those
/// purely-mechanical choices. Deserialized stats carry zeros there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Host instructions retired.
    pub retired: u64,
    /// Retired host instructions per [`Component`], in
    /// [`Component::ALL`] order.
    ///
    /// [`Component`]: crate::stream::Component
    /// [`Component::ALL`]: crate::stream::Component::ALL
    pub component_insts: [u64; 7],
    /// Dispatch-unit entries per mode `[IM, BBM, SBM]`.
    pub mode_enters: [u64; 3],
    /// Basic-block translations performed.
    pub bb_translations: u64,
    /// Superblocks formed and optimized.
    pub sb_translations: u64,
    /// Host instructions emitted into the code cache by translations.
    pub translated_host_insts: u64,
    /// Exit-chaining patches.
    pub chains: u64,
    /// Code-cache installs.
    pub cache_inserts: u64,
    /// Code-cache flushes triggered by installs.
    pub cache_flushes: u64,
    /// Per-block code-cache evictions (partial eviction + SMC).
    pub evictions: u64,
    /// Evictions forced by guest writes to translated code.
    pub smc_evictions: u64,
    /// Chain links unpatched because their target was evicted.
    pub unchains: u64,
    /// IBTC lookups that hit.
    pub ibtc_hits: u64,
    /// IBTC lookups that missed.
    pub ibtc_misses: u64,
    /// Dispatch-unit boundaries observed.
    pub step_boundaries: u64,
    /// Timeline-window marks observed.
    pub window_marks: u64,
    /// Batches delivered. Not serialized (see the type docs).
    pub batches: u64,
    /// Largest single batch. Not serialized (see the type docs).
    pub max_batch: u64,
}

/// `(name, get, set)` triples for the *serialized* subset of
/// [`TraceStats`] — everything except the batch accounting.
macro_rules! trace_stats_serialized_fields {
    ($m:ident) => {
        $m!(
            retired,
            component_insts,
            mode_enters,
            bb_translations,
            sb_translations,
            translated_host_insts,
            chains,
            cache_inserts,
            cache_flushes,
            evictions,
            smc_evictions,
            unchains,
            ibtc_hits,
            ibtc_misses,
            step_boundaries,
            window_marks
        )
    };
}

impl Serialize for TraceStats {
    fn to_value(&self) -> serde::Value {
        macro_rules! obj {
            ($($f:ident),*) => {
                serde::Value::Obj(vec![
                    $((stringify!($f).to_string(), Serialize::to_value(&self.$f)),)*
                ])
            };
        }
        trace_stats_serialized_fields!(obj)
    }
}

impl Deserialize for TraceStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        macro_rules! de {
            ($($f:ident),*) => {
                Ok(TraceStats {
                    $($f: Deserialize::from_value(serde::field(v, stringify!($f))?)?,)*
                    batches: 0,
                    max_batch: 0,
                })
            };
        }
        trace_stats_serialized_fields!(de)
    }
}

/// A sink that reduces the stream to [`TraceStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceStatsSink {
    /// The running totals.
    pub stats: TraceStats,
}

impl HostEventSink for TraceStatsSink {
    fn consume(&mut self, batch: &[HostEvent]) {
        let s = &mut self.stats;
        s.batches += 1;
        s.max_batch = s.max_batch.max(batch.len() as u64);
        for e in batch {
            match e {
                HostEvent::Retire(d) => {
                    s.retired += 1;
                    s.component_insts[d.component.index()] += 1;
                }
                HostEvent::BlockRetire { insts, .. } => {
                    s.retired += insts.len() as u64;
                    for d in insts.iter() {
                        s.component_insts[d.component.index()] += 1;
                    }
                }
                HostEvent::ModeEnter(m) => s.mode_enters[m.index()] += 1,
                HostEvent::Translated { kind, host_len, .. } => {
                    match kind {
                        TranslationKind::Bb => s.bb_translations += 1,
                        TranslationKind::Sb => s.sb_translations += 1,
                    }
                    s.translated_host_insts += u64::from(*host_len);
                }
                HostEvent::Chained { .. } => s.chains += 1,
                HostEvent::CacheInsert { flushed, .. } => {
                    s.cache_inserts += 1;
                    s.cache_flushes += u64::from(*flushed);
                }
                HostEvent::Evict { smc, .. } => {
                    s.evictions += 1;
                    s.smc_evictions += u64::from(*smc);
                }
                HostEvent::Unchain { .. } => s.unchains += 1,
                HostEvent::IbtcResolve { hit, .. } => {
                    if *hit {
                        s.ibtc_hits += 1;
                    } else {
                        s.ibtc_misses += 1;
                    }
                }
                HostEvent::StepBoundary { .. } => s.step_boundaries += 1,
                HostEvent::WindowMark { .. } => s.window_marks += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{Component, ExecClass};

    fn retire_at(pc: u64) -> HostEvent {
        HostEvent::Retire(DynInst::plain(pc, ExecClass::SimpleInt, Component::AppCode))
    }

    #[test]
    fn event_buffer_flush_preserves_retire_order() {
        // Push far more events than one batch holds; the delivered
        // stream must be the exact per-instruction retire order, with
        // batch boundaries invisible to the consumer.
        let mut out: Vec<HostEvent> = Vec::new();
        {
            let mut buf = EventBuffer::new(8, &mut out);
            for pc in 0..100u64 {
                buf.retire(DynInst::plain(pc * 4, ExecClass::SimpleInt, Component::AppCode));
            }
            assert!(buf.pending() < 8, "capacity flushes keep the buffer bounded");
            buf.flush();
        }
        assert_eq!(out.len(), 100);
        for (i, e) in out.iter().enumerate() {
            match e {
                HostEvent::Retire(d) => assert_eq!(d.pc, i as u64 * 4, "order broken at {i}"),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn event_buffer_batches_at_capacity() {
        let mut sink = TraceStatsSink::default();
        {
            let mut buf = EventBuffer::new(16, &mut sink);
            for pc in 0..40u64 {
                buf.push(retire_at(pc));
            }
            buf.flush();
        }
        assert_eq!(sink.stats.retired, 40);
        assert_eq!(sink.stats.batches, 3, "16 + 16 + 8");
        assert_eq!(sink.stats.max_batch, 16);
    }

    #[test]
    fn storage_round_trip_reuses_allocation() {
        let mut sink = NullSink;
        let storage = Vec::with_capacity(1024);
        let mut buf = EventBuffer::from_storage(storage, 1024, &mut sink);
        buf.push(retire_at(0));
        let back = buf.into_storage();
        assert!(back.is_empty());
        assert!(back.capacity() >= 1024, "allocation survives the round trip");
    }

    #[test]
    fn trace_stats_classify_events() {
        let mut sink = TraceStatsSink::default();
        sink.consume(&[
            retire_at(0),
            HostEvent::ModeEnter(ExecMode::Bbm),
            HostEvent::Translated { entry: 0x1000, kind: TranslationKind::Sb, host_len: 12 },
            HostEvent::Chained { site: 0x2_0000_0000 },
            HostEvent::CacheInsert { entry: 0x1000, flushed: true },
            HostEvent::Evict { entry: 0x1040, smc: false },
            HostEvent::Evict { entry: 0x1080, smc: true },
            HostEvent::Unchain { site: 0x2_0000_0010 },
            HostEvent::IbtcResolve { target: 0x1010, hit: true },
            HostEvent::IbtcResolve { target: 0x1014, hit: false },
            HostEvent::WindowMark { guest_insts: 10 },
        ]);
        let s = sink.stats;
        assert_eq!(s.retired, 1);
        assert_eq!(s.mode_enters, [0, 1, 0]);
        assert_eq!(s.sb_translations, 1);
        assert_eq!(s.translated_host_insts, 12);
        assert_eq!(s.chains, 1);
        assert_eq!((s.cache_inserts, s.cache_flushes), (1, 1));
        assert_eq!((s.evictions, s.smc_evictions, s.unchains), (2, 1, 1));
        assert_eq!((s.ibtc_hits, s.ibtc_misses), (1, 1));
        assert_eq!(s.window_marks, 1);
    }

    #[test]
    fn shared_drain_delivers_identical_batches() {
        // A sink that asks for shared batches receives the exact same
        // event sequence, with the same batch boundaries, as the slice
        // path — only the ownership transfer differs.
        struct ArcSink {
            batches: Vec<Arc<[HostEvent]>>,
        }
        impl HostEventSink for ArcSink {
            fn consume(&mut self, batch: &[HostEvent]) {
                self.batches.push(batch.to_vec().into());
            }
            fn wants_shared(&self) -> bool {
                true
            }
            fn consume_shared(&mut self, batch: Arc<[HostEvent]>) {
                self.batches.push(batch);
            }
        }
        let mut arc_sink = ArcSink { batches: Vec::new() };
        {
            let mut buf = EventBuffer::new(16, &mut arc_sink);
            for pc in 0..40u64 {
                buf.push(retire_at(pc * 4));
            }
            buf.flush();
        }
        let lens: Vec<usize> = arc_sink.batches.iter().map(|b| b.len()).collect();
        assert_eq!(lens, [16, 16, 8], "same batch boundaries as the slice path");
        let flat: Vec<&HostEvent> = arc_sink.batches.iter().flat_map(|b| b.iter()).collect();
        for (i, e) in flat.iter().enumerate() {
            match e {
                HostEvent::Retire(d) => assert_eq!(d.pc, i as u64 * 4),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn retire_sink_filters_non_retires() {
        let mut n = 0u64;
        let mut sink = RetireSink(|_d: &DynInst| n += 1);
        sink.consume(&[retire_at(0), HostEvent::ModeEnter(ExecMode::Im), retire_at(4)]);
        assert_eq!(n, 2);
    }

    fn block_retire(n: u64) -> HostEvent {
        let insts: Vec<DynInst> = (0..n)
            .map(|i| DynInst::plain(i * 4, ExecClass::SimpleInt, Component::AppCode))
            .collect();
        HostEvent::BlockRetire {
            block: crate::isa::BlockId { idx: 7, gen: 1 },
            iteration: 0,
            insts: insts.into(),
        }
    }

    #[test]
    fn block_retires_expand_in_trace_stats_and_retire_sinks() {
        // A macro-event must count exactly like its expansion.
        let mut macro_sink = TraceStatsSink::default();
        macro_sink.consume(&[block_retire(5), retire_at(0)]);
        assert_eq!(macro_sink.stats.retired, 6);
        assert_eq!(macro_sink.stats.component_insts[Component::AppCode.index()], 6);

        let mut n = 0u64;
        let mut sink = RetireSink(|_d: &DynInst| n += 1);
        sink.consume(&[block_retire(3), HostEvent::ModeEnter(ExecMode::Sbm)]);
        assert_eq!(n, 3);
    }

    #[test]
    fn trace_stats_serialization_omits_batch_accounting() {
        // Batch boundaries are a mechanical choice (batch size,
        // macro-events); serialized reports must not expose them.
        let mut sink = TraceStatsSink::default();
        {
            let mut buf = EventBuffer::new(4, &mut sink);
            for pc in 0..10u64 {
                buf.push(retire_at(pc * 4));
            }
            buf.flush();
        }
        let stats = sink.stats;
        assert!(stats.batches > 0 && stats.max_batch > 0);
        let back = TraceStats::from_value(&stats.to_value()).expect("round trip");
        assert_eq!((back.batches, back.max_batch), (0, 0), "not serialized");
        assert_eq!(TraceStats { batches: 0, max_batch: 0, ..stats }, back, "everything else is");
    }
}
