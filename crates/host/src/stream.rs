//! The dynamic host instruction stream.
//!
//! Every host instruction that retires — whether it belongs to translated
//! application code or to one of the software layer's activities — is
//! reported to the timing simulator as one [`DynInst`]. The record
//! carries exactly what an in-order pipeline model needs: PC (for the
//! I-cache and branch predictor), execution class (for unit latency),
//! register operands (for the scoreboard), memory event (for the D-cache
//! and TLB) and branch outcome (for the predictor). The [`Component`] tag
//! is what lets the simulator attribute cycles and bubbles to TOL modules
//! versus the application — the capability the paper highlights as what
//! makes DARCO's timing simulator suited to this study (Sec. II-A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Execution class of a host instruction: selects the unit and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecClass {
    /// 1-cycle integer (ALU, moves, immediates).
    SimpleInt,
    /// 2-cycle integer (multiply, divide, flags materialization).
    ComplexInt,
    /// 2-cycle FP (add, sub, moves, converts).
    SimpleFp,
    /// 5-cycle FP (multiply, divide).
    ComplexFp,
    /// Memory load (latency from the cache hierarchy).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (resolved in EXE; 6-cycle mispredict penalty).
    Branch,
    /// Unconditional jump, call, return or translation exit.
    Jump,
}

/// What kind of control transfer a branch-class instruction performs,
/// for branch-predictor modeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional direct branch (Gshare-predicted direction).
    CondDirect,
    /// Unconditional direct jump (BTB-predicted target).
    UncondDirect,
    /// Indirect jump (BTB-predicted target, often wrong on varying targets).
    Indirect,
    /// Return (indirect; predicted via BTB — the modeled host has no RAS).
    Return,
}

/// The entity a host instruction belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Owner {
    /// Translated/interpreted *application* work that makes forward
    /// progress.
    App,
    /// The software layer (any module).
    Tol,
}

/// Fine-grained producer of a host instruction: the paper's execution
/// time categories (Figs. 6 and 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Component {
    /// Translated application code executing from the code cache.
    AppCode,
    /// Interpreter emulating guest instructions (IM). The paper counts
    /// interpretation as overhead despite its forward progress, because
    /// of the high per-instruction cost (Sec. III-B).
    TolIm,
    /// Basic-block translation work (BBM).
    TolBbm,
    /// Superblock formation and optimization (SBM).
    TolSbm,
    /// Linking translations together.
    TolChaining,
    /// Code-cache lookups (translation map probes, IBTC misses).
    TolLookup,
    /// Everything else in the software layer: dispatch loop,
    /// entry/exit transitions, initialization (the paper's "TOL others").
    TolOthers,
}

impl Component {
    /// All components, in the paper's Fig. 7 legend order.
    pub const ALL: [Component; 7] = [
        Component::AppCode,
        Component::TolOthers,
        Component::TolIm,
        Component::TolBbm,
        Component::TolSbm,
        Component::TolChaining,
        Component::TolLookup,
    ];

    /// Position of this component in [`Component::ALL`] (stable index
    /// for per-component counter arrays).
    pub fn index(self) -> usize {
        match self {
            Component::AppCode => 0,
            Component::TolOthers => 1,
            Component::TolIm => 2,
            Component::TolBbm => 3,
            Component::TolSbm => 4,
            Component::TolChaining => 5,
            Component::TolLookup => 6,
        }
    }

    /// The owning entity.
    pub fn owner(self) -> Owner {
        match self {
            Component::AppCode => Owner::App,
            _ => Owner::Tol,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Component::AppCode => "Application",
            Component::TolIm => "IM",
            Component::TolBbm => "BBM",
            Component::TolSbm => "SBM",
            Component::TolChaining => "Chaining",
            Component::TolLookup => "Code$ look-up",
            Component::TolOthers => "TOL others",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A data-memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemEvent {
    /// Host physical address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// `true` for stores.
    pub is_store: bool,
    /// `true` for software prefetches: the line is brought in but the
    /// instruction neither produces a value nor stalls.
    pub is_prefetch: bool,
}

/// Sentinel meaning "no register" in [`DynInst`] operand slots.
pub const NO_REG: u8 = u8::MAX;

/// One retired host instruction, as seen by the timing simulator.
///
/// Integer registers are numbered `0..64`, FP registers `64..96`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynInst {
    /// Host PC of the instruction (drives I-cache and predictor).
    pub pc: u64,
    /// Execution class.
    pub class: ExecClass,
    /// Producing component (owner derives from it).
    pub component: Component,
    /// Data access, if any.
    pub mem: Option<MemEvent>,
    /// Control transfer, if any: `(kind, target_pc, taken)`.
    pub branch: Option<(BranchKind, u64, bool)>,
    /// Destination register id, or [`NO_REG`].
    pub dst: u8,
    /// Source register ids, [`NO_REG`]-padded.
    pub srcs: [u8; 2],
    /// Operand-presence mask: bit 0/1 set when `srcs[0]`/`srcs[1]` is a
    /// real register, bit 2 when `dst` is. Redundant with the operand
    /// fields, but precomputed at record-construction time so the
    /// timing scoreboard loop visits only live slots instead of testing
    /// all three against [`NO_REG`] per retirement. Code that writes
    /// `dst`/`srcs` directly (rather than through the builders) must
    /// call [`DynInst::recompute_ops`] afterwards.
    pub ops: u8,
}

/// Bit set in [`DynInst::ops`] when `srcs[0]` is a real register.
pub const OP_SRC0: u8 = 1 << 0;
/// Bit set in [`DynInst::ops`] when `srcs[1]` is a real register.
pub const OP_SRC1: u8 = 1 << 1;
/// Bit set in [`DynInst::ops`] when `dst` is a real register.
pub const OP_DST: u8 = 1 << 2;

impl DynInst {
    /// A plain instruction with no memory access or branch.
    pub fn plain(pc: u64, class: ExecClass, component: Component) -> DynInst {
        DynInst {
            pc,
            class,
            component,
            mem: None,
            branch: None,
            dst: NO_REG,
            srcs: [NO_REG, NO_REG],
            ops: 0,
        }
    }

    /// Sets the destination register (builder-style).
    pub fn with_dst(mut self, dst: u8) -> DynInst {
        self.dst = dst;
        self.recompute_ops();
        self
    }

    /// Sets the source registers (builder-style).
    pub fn with_srcs(mut self, a: u8, b: u8) -> DynInst {
        self.srcs = [a, b];
        self.recompute_ops();
        self
    }

    /// Rebuilds [`DynInst::ops`] from the current operand fields. Must
    /// be called after writing `dst`/`srcs` directly.
    #[inline]
    pub fn recompute_ops(&mut self) {
        self.ops = u8::from(self.srcs[0] != NO_REG)
            | u8::from(self.srcs[1] != NO_REG) << 1
            | u8::from(self.dst != NO_REG) << 2;
    }

    /// Whether [`DynInst::ops`] is consistent with the operand fields
    /// (debug-asserted on the timing hot path).
    pub fn ops_consistent(&self) -> bool {
        let mut expect = *self;
        expect.recompute_ops();
        expect.ops == self.ops
    }

    /// Attaches a memory event (builder-style).
    pub fn with_mem(mut self, addr: u64, size: u8, is_store: bool) -> DynInst {
        self.mem = Some(MemEvent { addr, size, is_store, is_prefetch: false });
        self
    }

    /// Attaches a software-prefetch memory event (builder-style).
    pub fn with_prefetch(mut self, addr: u64) -> DynInst {
        self.mem = Some(MemEvent { addr, size: 64, is_store: false, is_prefetch: true });
        self
    }

    /// Attaches a branch outcome (builder-style).
    pub fn with_branch(mut self, kind: BranchKind, target: u64, taken: bool) -> DynInst {
        self.branch = Some((kind, target, taken));
        self
    }

    /// The owning entity (shorthand for `component.owner()`).
    pub fn owner(&self) -> Owner {
        self.component.owner()
    }
}

/// Register id for an integer register.
#[inline]
pub fn int_reg(i: u8) -> u8 {
    debug_assert!(i < 64);
    i
}

/// Register id for an FP register.
#[inline]
pub fn fp_reg(i: u8) -> u8 {
    debug_assert!(i < 32);
    64 + i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_owners() {
        assert_eq!(Component::AppCode.owner(), Owner::App);
        for c in Component::ALL {
            if c != Component::AppCode {
                assert_eq!(c.owner(), Owner::Tol);
            }
        }
    }

    #[test]
    fn builder_chains() {
        let d = DynInst::plain(0x100, ExecClass::Load, Component::TolLookup)
            .with_dst(int_reg(40))
            .with_srcs(int_reg(41), NO_REG)
            .with_mem(0x1_0000_0100, 8, false);
        assert_eq!(d.owner(), Owner::Tol);
        assert_eq!(d.dst, 40);
        assert_eq!(d.mem.unwrap().size, 8);
        assert!(d.branch.is_none());
        assert_eq!(d.ops, OP_SRC0 | OP_DST);
        assert!(d.ops_consistent());
    }

    #[test]
    fn builders_maintain_operand_mask() {
        let plain = DynInst::plain(0, ExecClass::SimpleInt, Component::AppCode);
        assert_eq!(plain.ops, 0);
        assert_eq!(plain.with_dst(int_reg(1)).ops, OP_DST);
        assert_eq!(plain.with_srcs(NO_REG, int_reg(2)).ops, OP_SRC1);
        assert_eq!(plain.with_srcs(int_reg(1), int_reg(2)).with_dst(int_reg(3)).ops, 0b111);
        // Re-setting a slot to NO_REG clears its bit again.
        assert_eq!(plain.with_dst(int_reg(1)).with_dst(NO_REG).ops, 0);

        let mut direct = plain;
        direct.dst = int_reg(5);
        assert!(!direct.ops_consistent(), "direct writes must be followed by recompute_ops");
        direct.recompute_ops();
        assert!(direct.ops_consistent());
        assert_eq!(direct.ops, OP_DST);
    }

    #[test]
    fn reg_id_spaces_disjoint() {
        assert_eq!(int_reg(63), 63);
        assert_eq!(fp_reg(0), 64);
        assert_eq!(fp_reg(31), 95);
    }

    #[test]
    fn component_index_matches_all_order() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c} index out of sync with ALL");
        }
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Component::TolLookup.label(), "Code$ look-up");
        assert_eq!(Component::TolOthers.to_string(), "TOL others");
    }
}
